#include "model/train.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/scenario.h"

namespace rlbf::model {
namespace {

namespace fs = std::filesystem;

// Micro training budget: real PPO epochs, seconds not minutes.
TrainingSpec micro_spec(std::uint64_t seed = 5) {
  TrainingSpec spec;
  spec.name = "micro";
  spec.workload.workload = "SDSC-SP2";
  spec.workload.trace_jobs = 500;
  spec.trainer.epochs = 2;
  spec.trainer.trajectories_per_epoch = 3;
  spec.trainer.jobs_per_trajectory = 96;
  spec.trainer.ppo.train_iters = 5;
  spec.trainer.ppo.minibatch_size = 128;
  spec.trainer.eval_every = 1;
  spec.trainer.eval_samples = 2;
  spec.trainer.eval_sample_jobs = 128;
  spec.trainer.agent.obs.max_obsv_size = 24;
  spec.trainer.agent.obs.value_obsv_size = 8;
  spec.trainer.seed = seed;
  return spec;
}

std::string fresh_root(const std::string& name) {
  const std::string root = ::testing::TempDir() + "/rlbf_train_" + name;
  fs::remove_all(root);
  return root;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(TrainSpec, TrainsCommitsAndReportsProgress) {
  Store store(fresh_root("commit"));
  TrainOptions options;
  options.threads = 2;
  std::size_t progress_calls = 0;
  options.on_progress = [&](const TrainingSpec& spec, const TrainProgress& p) {
    EXPECT_EQ(spec.name, "micro");
    EXPECT_EQ(p.epoch, progress_calls + 1);
    ++progress_calls;
  };
  const TrainOutcome outcome = train_spec(micro_spec(), store, options);

  EXPECT_FALSE(outcome.cache_hit);
  EXPECT_EQ(outcome.epochs_run, 2u);
  EXPECT_EQ(progress_calls, 2u);
  EXPECT_FALSE(std::isnan(outcome.best_eval_bsld));
  EXPECT_TRUE(store.contains(outcome.entry.key));
  EXPECT_EQ(outcome.entry.meta.at("algorithm"), "ppo");
  EXPECT_EQ(outcome.entry.meta.at("workload"), "SDSC-SP2");
  // The best-so-far checkpoint is superseded by the committed entry.
  EXPECT_FALSE(fs::exists(store.checkpoint_path(outcome.entry.key)));
  EXPECT_TRUE(fs::exists(store.spec_path(outcome.entry.key)));
  EXPECT_EQ(file_bytes(store.spec_path(outcome.entry.key)),
            canonical_string(micro_spec()));
}

TEST(TrainSpec, SecondInvocationIsACacheHitAndSkipsRetraining) {
  Store store(fresh_root("cachehit"));
  TrainOptions options;
  options.threads = 2;
  const TrainOutcome first = train_spec(micro_spec(), store, options);
  ASSERT_FALSE(first.cache_hit);
  const std::string bytes_after_first = file_bytes(first.entry.path);

  std::size_t progress_calls = 0;
  options.on_progress = [&](const TrainingSpec&, const TrainProgress&) {
    ++progress_calls;
  };
  const TrainOutcome second = train_spec(micro_spec(), store, options);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.epochs_run, 0u);
  EXPECT_EQ(progress_calls, 0u) << "cache hit must not run any epoch";
  EXPECT_EQ(second.entry.key, first.entry.key);
  EXPECT_EQ(file_bytes(second.entry.path), bytes_after_first);

  // --force retrains (and, deterministically, rewrites identical bytes).
  options.force = true;
  const TrainOutcome forced = train_spec(micro_spec(), store, options);
  EXPECT_FALSE(forced.cache_hit);
  EXPECT_EQ(forced.epochs_run, 2u);
}

TEST(TrainSpec, DifferentSeedsGetDifferentStoreEntries) {
  Store store(fresh_root("seeds"));
  TrainOptions options;
  options.threads = 2;
  const TrainOutcome a = train_spec(micro_spec(5), store, options);
  const TrainOutcome b = train_spec(micro_spec(6), store, options);
  EXPECT_NE(a.entry.key, b.entry.key);
  EXPECT_EQ(store.list().size(), 2u);
}

TEST(TrainSpecs, MasterSeedPreSplitsPerSpecSeeds) {
  Store store(fresh_root("presplit"));
  TrainOptions options;
  options.threads = 2;
  const std::vector<TrainingSpec> specs = {micro_spec(), micro_spec()};
  const auto outcomes = train_specs(specs, store, options, /*master_seed=*/9);
  ASSERT_EQ(outcomes.size(), 2u);
  // Spec 0 runs at the master seed itself; spec 1 at a split seed — two
  // distinct entries even though the specs were identical.
  EXPECT_NE(outcomes[0].entry.key, outcomes[1].entry.key);
  TrainingSpec at_master = micro_spec(9);
  EXPECT_EQ(outcomes[0].entry.key, fingerprint(at_master));
}

// The acceptance contract: a train+run pipeline is byte-identical across
// thread counts. Gradient shards are fixed, trajectory seeds are
// pre-drawn, reduction order is shard-indexed — so 1 worker and 4
// workers must produce the same model file bytes and the same evaluation
// metrics.
TEST(TrainDeterminism, TrainAndRunAreByteIdenticalAcrossThreadCounts) {
  Store store1(fresh_root("det1"));
  Store store4(fresh_root("det4"));
  TrainOptions options1;
  options1.threads = 1;
  TrainOptions options4;
  options4.threads = 4;
  const TrainOutcome one = train_spec(micro_spec(), store1, options1);
  const TrainOutcome four = train_spec(micro_spec(), store4, options4);

  EXPECT_EQ(one.entry.key, four.entry.key);
  EXPECT_EQ(one.best_eval_bsld, four.best_eval_bsld);
  ASSERT_FALSE(one.cache_hit);
  ASSERT_FALSE(four.cache_hit);
  EXPECT_EQ(file_bytes(one.entry.path), file_bytes(four.entry.path))
      << "trained model bytes depend on the worker count";

  // And the deployment half: run a trained-agent scenario against each
  // store; metrics must match exactly.
  exp::ScenarioSpec scenario;
  scenario.name = "det";
  scenario.workload = "SDSC-SP2";
  scenario.trace_jobs = 400;
  scenario.scheduler.agent = one.entry.key;

  set_default_store_root(store1.root());
  clear_agent_cache();
  const exp::ScenarioRun run1 = exp::run_scenario(scenario, 11);
  set_default_store_root(store4.root());
  clear_agent_cache();
  scenario.scheduler.agent = four.entry.key;
  const exp::ScenarioRun run4 = exp::run_scenario(scenario, 11);

  EXPECT_EQ(run1.metrics.avg_bounded_slowdown, run4.metrics.avg_bounded_slowdown);
  EXPECT_EQ(run1.metrics.avg_wait_time, run4.metrics.avg_wait_time);
  EXPECT_EQ(run1.metrics.backfilled_jobs, run4.metrics.backfilled_jobs);
}

TEST(ResolveAgent, ResolvesSpecNamesKeysAndPaths) {
  const std::string root = fresh_root("resolve");
  set_default_store_root(root);
  clear_agent_cache();
  Store& store = default_store();

  // An untrained registered spec name names the fix in its error.
  try {
    resolve_agent("sdsc-tiny");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("sdsc-tiny"), std::string::npos);
    EXPECT_NE(message.find("rlbf_run train"), std::string::npos);
  }

  const TrainOutcome outcome = train_spec(micro_spec(), store, {});
  // By raw store key.
  const auto by_key = resolve_agent(outcome.entry.key);
  ASSERT_NE(by_key, nullptr);
  // By model file path.
  const auto by_path = resolve_agent(outcome.entry.path);
  ASSERT_NE(by_path, nullptr);
  // The resolution cache hands back the same instance per reference.
  EXPECT_EQ(by_key.get(), resolve_agent(outcome.entry.key).get());

  // Unknown references list the registered spec catalog.
  try {
    resolve_agent("garbage-ref");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("sdsc-fcfs"), std::string::npos);
  }
}

TEST(TrainOnTrace, ContentHashSeparatesTransformedTraces) {
  Store store(fresh_root("ontrace"));
  const std::shared_ptr<const swf::Trace> trace =
      exp::build_trace_cached(micro_spec().workload, 5);
  swf::Trace longer = *trace;
  for (auto& job : longer.mutable_jobs()) job.run_time += 10;

  TrainOptions options;
  options.threads = 2;
  const TrainOutcome a = train_on_trace(*trace, micro_spec(), store, options);
  const TrainOutcome b = train_on_trace(longer, micro_spec(), store, options);
  EXPECT_NE(a.entry.key, b.entry.key);
  // Identical (trace, spec) -> cache hit.
  EXPECT_TRUE(train_on_trace(*trace, micro_spec(), store, options).cache_hit);
}

// The training stats persisted with every entry let benches reproduce
// their tables from a cache hit (final-epoch stats, per-epoch eval
// curve) without retraining.
TEST(TrainSpec, PersistsTrainingStatsRecoverableOnCacheHit) {
  Store store(fresh_root("stats"));
  TrainOptions options;
  options.threads = 2;
  const TrainOutcome first = train_spec(micro_spec(), store, options);
  const TrainOutcome hit = train_spec(micro_spec(), store, options);
  ASSERT_TRUE(hit.cache_hit);
  for (const char* key :
       {"final_reward", "final_train_bsld", "final_steps", "eval_curve"}) {
    ASSERT_TRUE(first.entry.meta.count(key)) << key;
    EXPECT_EQ(hit.entry.meta.at(key), first.entry.meta.at(key)) << key;
  }
  // eval_every=1 -> one comma-separated value per epoch.
  const std::string curve = first.entry.meta.at("eval_curve");
  EXPECT_EQ(std::count(curve.begin(), curve.end(), ','), 1);  // 2 epochs
}

// Warm starting (TrainingSpec::init_agent): training resumes from a
// stored agent, the reference is part of the content address, and a
// missing prerequisite is an actionable error, not a silent cold start.
TEST(TrainSpec, WarmStartResolvesStoreKeyAndForksTheFingerprint) {
  Store store(fresh_root("warm"));
  TrainOptions options;
  options.threads = 2;
  const TrainOutcome source = train_spec(micro_spec(5), store, options);

  TrainingSpec fine = micro_spec(6);
  fine.name = "micro-finetune";
  fine.init_agent = source.entry.key;
  const TrainOutcome tuned = train_spec(fine, store, options);
  EXPECT_FALSE(tuned.cache_hit);
  EXPECT_NE(tuned.entry.key, source.entry.key);
  EXPECT_NE(tuned.entry.key, fingerprint(micro_spec(6)));
  EXPECT_EQ(tuned.entry.meta.at("init_agent"), source.entry.key);
  // Second invocation: cache hit, no retraining.
  EXPECT_TRUE(train_spec(fine, store, options).cache_hit);

  // An unresolvable init reference names itself in the error.
  TrainingSpec broken = fine;
  broken.init_agent = "feedfacefeedface";
  try {
    train_spec(broken, store, options);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("feedfacefeedface"), std::string::npos);
  }

  // A registered-but-untrained spec name points at the fix.
  TrainingSpec by_name = fine;
  by_name.init_agent = "abl-transfer-source";
  try {
    train_spec(by_name, store, options);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rlbf_run train"), std::string::npos);
  }
}

// CLI budget overrides change a source arm's content address but keep
// its spec name; a warm-start reference by name must then fall back to
// the unique same-name entry instead of demanding the registered
// fingerprint (the `rlbf_run train --ablations --epochs=N` path).
TEST(TrainSpec, WarmStartFallsBackToUniqueSameNameEntry) {
  Store store(fresh_root("warmname"));
  TrainOptions options;
  options.threads = 2;
  TrainingSpec source = micro_spec(5);
  source.name = "abl-transfer-source";  // registered name, overridden budget
  const TrainOutcome src = train_spec(source, store, options);
  ASSERT_NE(src.entry.key, fingerprint(find_training_spec("abl-transfer-source")));

  TrainingSpec fine = micro_spec(6);
  fine.name = "micro-ft-by-name";
  fine.init_agent = "abl-transfer-source";
  EXPECT_FALSE(train_spec(fine, store, options).cache_hit);
}

TEST(UnknownAlgorithm, Throws) {
  Store store(fresh_root("alg"));
  TrainingSpec spec = micro_spec();
  spec.algorithm = "sarsa";
  EXPECT_THROW(train_spec(spec, store, {}), std::invalid_argument);
}

}  // namespace
}  // namespace rlbf::model
