#include "model/training_spec.h"

#include <gtest/gtest.h>

#include "workload/presets.h"

namespace rlbf::model {
namespace {

TrainingSpec base_spec() {
  TrainingSpec spec;
  spec.name = "test";
  spec.workload.workload = "SDSC-SP2";
  spec.workload.trace_jobs = 1000;
  spec.trainer.epochs = 3;
  spec.trainer.seed = 7;
  return spec;
}

TEST(Fingerprint, EqualSpecsEqualFingerprints) {
  EXPECT_EQ(fingerprint(base_spec()), fingerprint(base_spec()));
}

TEST(Fingerprint, NameAndDescriptionAreNotFingerprinted) {
  TrainingSpec a = base_spec();
  TrainingSpec b = base_spec();
  b.name = "renamed";
  b.description = "different prose, same training run";
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, ThreadCountIsNotFingerprinted) {
  // Training is thread-count independent (fixed gradient shards,
  // pre-drawn trajectory seeds), so worker counts must not fork the
  // content address.
  TrainingSpec a = base_spec();
  TrainingSpec b = base_spec();
  b.trainer.threads = 16;
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, EveryTrainingRelevantFieldChangesTheKey) {
  const std::string base = fingerprint(base_spec());
  const auto differs = [&](auto mutate) {
    TrainingSpec spec = base_spec();
    mutate(spec);
    return fingerprint(spec) != base;
  };
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.trainer.seed = 8; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.trainer.epochs = 4; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.trainer.base_policy = "SJF"; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.algorithm = "dqn"; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.workload.workload = "HPC2N"; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.workload.trace_jobs = 2000; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.workload.load_factor = 1.5; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.trainer.ppo.policy_lr = 5e-4; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.trainer.ppo.grad_shards = 4; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) {
    s.trainer.env.delay_rule = core::DelayRule::EstimatePenalty;
  }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.trainer.agent.obs.max_obsv_size = 64; }));
  EXPECT_TRUE(differs(
      [](TrainingSpec& s) { s.trainer.agent.net.policy_hidden = {16, 8}; }));
}

// Cross-process stability: the fingerprint is a pure function of the
// canonical text, with no pointers, locales, or map iteration order
// involved. This golden pins it; an intentional format change (new
// fingerprinted field, enum reorder) should update the constant — that
// is exactly the "old cache entries no longer match" signal the store
// relies on.
TEST(Fingerprint, GoldenValueIsStableAcrossProcesses) {
  EXPECT_EQ(fnv1a_hex("rlbf"), "991df21fea8aaf27");
  const std::string canon = canonical_string(base_spec());
  EXPECT_EQ(canon.substr(0, 21), "rlbf-training-spec v1");
  EXPECT_EQ(fingerprint(base_spec()), fnv1a_hex(canon));
}

// Regression for the ablation-arm spec fields: an env-override that only
// exists for one algorithm must fork that algorithm's fingerprints...
TEST(Fingerprint, AlgorithmHyperparametersAreFingerprintedUnderTheirAlgorithm) {
  TrainingSpec a = base_spec();
  TrainingSpec b = base_spec();
  a.algorithm = b.algorithm = "dqn";
  b.dqn.epsilon_decay_epochs = 40;
  EXPECT_NE(fingerprint(a), fingerprint(b));

  TrainingSpec c = base_spec();
  TrainingSpec d = base_spec();
  c.algorithm = d.algorithm = "reinforce";
  d.reinforce.policy_lr = 3e-3;
  EXPECT_NE(fingerprint(c), fingerprint(d));
}

// ...while leaving every other algorithm's content address untouched: a
// PPO run does not read the DQN/REINFORCE blocks, so they must not
// invalidate existing PPO store entries.
TEST(Fingerprint, ForeignAlgorithmBlocksDoNotForkPpoKeys) {
  TrainingSpec a = base_spec();
  TrainingSpec b = base_spec();
  b.dqn.epsilon_decay_epochs = 40;
  b.reinforce.policy_lr = 3e-3;
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, WarmStartReferenceIsFingerprinted) {
  TrainingSpec a = base_spec();
  TrainingSpec b = base_spec();
  b.init_agent = "abl-transfer-source";
  EXPECT_NE(fingerprint(a), fingerprint(b));
  TrainingSpec c = base_spec();
  c.init_agent = "0123456789abcdef";
  EXPECT_NE(fingerprint(b), fingerprint(c));
}

TEST(Fingerprint, TraceFingerprintSeparatesTransformedTraces) {
  const swf::Trace trace =
      workload::make_preset(workload::sdsc_sp2_targets(), 200, 1);
  swf::Trace scaled = trace;
  for (auto& job : scaled.mutable_jobs()) job.run_time += 1;
  EXPECT_NE(trace_fingerprint(trace), trace_fingerprint(scaled));
  EXPECT_EQ(trace_fingerprint(trace), trace_fingerprint(swf::Trace(trace)));
}

TEST(TrainingRegistry, BuiltinsArePresentAndDistinct) {
  const auto names = training_spec_names();
  EXPECT_GE(names.size(), 5u);
  EXPECT_TRUE(TrainingRegistry::instance().contains("sdsc-fcfs"));
  EXPECT_TRUE(TrainingRegistry::instance().contains("sdsc-tiny"));
  // Every registered spec maps to a distinct content address.
  std::vector<std::string> keys;
  for (const auto& name : names) {
    keys.push_back(fingerprint(find_training_spec(name)));
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());
}

TEST(TrainingRegistry, AblationArmsAreRegistered) {
  const auto arms = ablation_arm_names();
  EXPECT_GE(arms.size(), 25u);
  // One representative per family.
  for (const char* name :
       {"abl-control", "abl-delay-est-2", "abl-delay-mask", "abl-obsv-8",
        "abl-net-flat", "abl-feat-no-slack", "abl-obj-wait", "abl-rl-dqn",
        "abl-rl-reinforce", "abl-transfer-finetune"}) {
    EXPECT_TRUE(TrainingRegistry::instance().contains(name)) << name;
  }
  // Family invariants: the DQN arm really is a DQN spec, the fine-tune
  // arm warm-starts from the source arm, knockouts clear exactly one bit.
  EXPECT_EQ(find_training_spec("abl-rl-dqn").algorithm, "dqn");
  EXPECT_EQ(find_training_spec("abl-rl-reinforce").reinforce.policy_lr, 3e-3);
  EXPECT_EQ(find_training_spec("abl-transfer-finetune").init_agent,
            "abl-transfer-source");
  EXPECT_EQ(find_training_spec("abl-feat-no-slack").trainer.agent.obs.feature_mask,
            0x3FFu & ~(1u << 5));
  EXPECT_FALSE(find_training_spec("abl-net-flat").trainer.agent.kernel_policy);
  // (Distinct fingerprints across ALL registered specs, arms included,
  // are asserted by BuiltinsArePresentAndDistinct above.)
}

TEST(TrainingRegistry, UnknownNameThrowsWithCatalog) {
  try {
    find_training_spec("no-such-spec");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no-such-spec"), std::string::npos);
    EXPECT_NE(message.find("sdsc-fcfs"), std::string::npos);
  }
}

}  // namespace
}  // namespace rlbf::model
