#include "model/training_spec.h"

#include <gtest/gtest.h>

#include "workload/presets.h"

namespace rlbf::model {
namespace {

TrainingSpec base_spec() {
  TrainingSpec spec;
  spec.name = "test";
  spec.workload.workload = "SDSC-SP2";
  spec.workload.trace_jobs = 1000;
  spec.trainer.epochs = 3;
  spec.trainer.seed = 7;
  return spec;
}

TEST(Fingerprint, EqualSpecsEqualFingerprints) {
  EXPECT_EQ(fingerprint(base_spec()), fingerprint(base_spec()));
}

TEST(Fingerprint, NameAndDescriptionAreNotFingerprinted) {
  TrainingSpec a = base_spec();
  TrainingSpec b = base_spec();
  b.name = "renamed";
  b.description = "different prose, same training run";
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, ThreadCountIsNotFingerprinted) {
  // Training is thread-count independent (fixed gradient shards,
  // pre-drawn trajectory seeds), so worker counts must not fork the
  // content address.
  TrainingSpec a = base_spec();
  TrainingSpec b = base_spec();
  b.trainer.threads = 16;
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, EveryTrainingRelevantFieldChangesTheKey) {
  const std::string base = fingerprint(base_spec());
  const auto differs = [&](auto mutate) {
    TrainingSpec spec = base_spec();
    mutate(spec);
    return fingerprint(spec) != base;
  };
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.trainer.seed = 8; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.trainer.epochs = 4; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.trainer.base_policy = "SJF"; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.algorithm = "dqn"; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.workload.workload = "HPC2N"; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.workload.trace_jobs = 2000; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.workload.load_factor = 1.5; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.trainer.ppo.policy_lr = 5e-4; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.trainer.ppo.grad_shards = 4; }));
  EXPECT_TRUE(differs([](TrainingSpec& s) {
    s.trainer.env.delay_rule = core::DelayRule::EstimatePenalty;
  }));
  EXPECT_TRUE(differs([](TrainingSpec& s) { s.trainer.agent.obs.max_obsv_size = 64; }));
  EXPECT_TRUE(differs(
      [](TrainingSpec& s) { s.trainer.agent.net.policy_hidden = {16, 8}; }));
}

// Cross-process stability: the fingerprint is a pure function of the
// canonical text, with no pointers, locales, or map iteration order
// involved. This golden pins it; an intentional format change (new
// fingerprinted field, enum reorder) should update the constant — that
// is exactly the "old cache entries no longer match" signal the store
// relies on.
TEST(Fingerprint, GoldenValueIsStableAcrossProcesses) {
  EXPECT_EQ(fnv1a_hex("rlbf"), "991df21fea8aaf27");
  const std::string canon = canonical_string(base_spec());
  EXPECT_EQ(canon.substr(0, 21), "rlbf-training-spec v1");
  EXPECT_EQ(fingerprint(base_spec()), fnv1a_hex(canon));
}

TEST(Fingerprint, TraceFingerprintSeparatesTransformedTraces) {
  const swf::Trace trace =
      workload::make_preset(workload::sdsc_sp2_targets(), 200, 1);
  swf::Trace scaled = trace;
  for (auto& job : scaled.mutable_jobs()) job.run_time += 1;
  EXPECT_NE(trace_fingerprint(trace), trace_fingerprint(scaled));
  EXPECT_EQ(trace_fingerprint(trace), trace_fingerprint(swf::Trace(trace)));
}

TEST(TrainingRegistry, BuiltinsArePresentAndDistinct) {
  const auto names = training_spec_names();
  EXPECT_GE(names.size(), 5u);
  EXPECT_TRUE(TrainingRegistry::instance().contains("sdsc-fcfs"));
  EXPECT_TRUE(TrainingRegistry::instance().contains("sdsc-tiny"));
  // Every registered spec maps to a distinct content address.
  std::vector<std::string> keys;
  for (const auto& name : names) {
    keys.push_back(fingerprint(find_training_spec(name)));
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());
}

TEST(TrainingRegistry, UnknownNameThrowsWithCatalog) {
  try {
    find_training_spec("no-such-spec");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no-such-spec"), std::string::npos);
    EXPECT_NE(message.find("sdsc-fcfs"), std::string::npos);
  }
}

}  // namespace
}  // namespace rlbf::model
