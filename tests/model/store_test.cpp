#include "model/store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "model/training_spec.h"

namespace rlbf::model {
namespace {

namespace fs = std::filesystem;

core::Agent tiny_agent(std::uint64_t seed = 3) {
  core::AgentConfig config;
  config.obs.max_obsv_size = 16;
  config.obs.value_obsv_size = 8;
  return core::Agent(config, seed);
}

std::string fresh_root(const std::string& name) {
  const std::string root = ::testing::TempDir() + "/rlbf_store_" + name;
  fs::remove_all(root);
  return root;
}

TEST(Store, PutLookupRoundTrip) {
  Store store(fresh_root("roundtrip"));
  const core::Agent agent = tiny_agent();
  const StoreEntry put_entry =
      store.put("aaaa000011112222", agent, "tiny", {{"epochs", "2"}}, "canon v1\n");

  EXPECT_TRUE(store.contains("aaaa000011112222"));
  const auto entry = store.lookup("aaaa000011112222");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->name, "tiny");
  EXPECT_EQ(entry->meta.at("epochs"), "2");
  EXPECT_EQ(entry->meta.at("spec_name"), "tiny");
  EXPECT_EQ(entry->path, put_entry.path);
  EXPECT_TRUE(fs::exists(store.spec_path("aaaa000011112222")));

  const core::Agent loaded = store.load("aaaa000011112222");
  EXPECT_EQ(loaded.config().obs.max_obsv_size, 16u);
  // Bit-exact model round trip (hexfloat serialization).
  const auto a = agent.model().policy_parameters();
  const auto b = loaded.model().policy_parameters();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->value, b[i]->value);
  }
}

TEST(Store, LookupMissReturnsNulloptAndLoadThrows) {
  Store store(fresh_root("miss"));
  EXPECT_FALSE(store.contains("ffff000000000000"));
  EXPECT_FALSE(store.lookup("ffff000000000000").has_value());
  EXPECT_THROW(store.load("ffff000000000000"), std::runtime_error);
}

TEST(Store, IndexSurvivesReopen) {
  const std::string root = fresh_root("reopen");
  {
    Store store(root);
    store.put("1111111111111111", tiny_agent(1), "one", {});
    store.put("2222222222222222", tiny_agent(2), "two", {});
  }
  Store reopened(root);
  const auto entries = reopened.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "1111111111111111");
  EXPECT_EQ(entries[1].key, "2222222222222222");
  EXPECT_EQ(entries[1].name, "two");
}

TEST(Store, IndexIsRebuiltFromScanWhenMissing) {
  const std::string root = fresh_root("rebuild");
  {
    Store store(root);
    store.put("3333333333333333", tiny_agent(), "three", {{"epochs", "9"}});
  }
  fs::remove(root + "/index.tsv");
  Store rebuilt(root);
  const auto entry = rebuilt.lookup("3333333333333333");
  ASSERT_TRUE(entry.has_value());
  // The name comes back out of the model file's own metadata.
  EXPECT_EQ(entry->name, "three");
  EXPECT_EQ(entry->meta.at("epochs"), "9");
  EXPECT_TRUE(fs::exists(root + "/index.tsv"));
}

TEST(Store, PruneRemovesOnlyUnreferencedEntries) {
  Store store(fresh_root("prune"));
  store.put("aaaaaaaaaaaaaaaa", tiny_agent(1), "keep", {});
  store.put("bbbbbbbbbbbbbbbb", tiny_agent(2), "drop", {});
  store.put("cccccccccccccccc", tiny_agent(3), "keep2", {});

  const auto removed =
      store.prune({"aaaaaaaaaaaaaaaa", "cccccccccccccccc", "not-present"});
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], "bbbbbbbbbbbbbbbb");
  EXPECT_TRUE(store.contains("aaaaaaaaaaaaaaaa"));
  EXPECT_FALSE(store.contains("bbbbbbbbbbbbbbbb"));
  EXPECT_TRUE(store.contains("cccccccccccccccc"));
  EXPECT_FALSE(fs::exists(store.model_path("bbbbbbbbbbbbbbbb")));
  EXPECT_TRUE(fs::exists(store.model_path("aaaaaaaaaaaaaaaa")));

  // Referenced set unchanged -> prune is a no-op.
  EXPECT_TRUE(store.prune({"aaaaaaaaaaaaaaaa", "cccccccccccccccc"}).empty());
}

// Regression guarding the ablation-arm spec-field additions: two specs
// whose canonical text differs ONLY in a newer env-override field (here
// the DQN exploration schedule) must land on distinct fingerprints, get
// distinct store entries, resolve independently through lookup, and
// survive prune independently. If a new spec field is ever left out of
// canonical_string, the two puts below collapse onto one key and this
// test fails.
TEST(Store, NewSpecFieldsSeparateEntriesThroughLookupAndPrune) {
  Store store(fresh_root("specfields"));
  TrainingSpec a;
  a.name = "arm-a";
  a.workload.workload = "SDSC-SP2";
  a.workload.trace_jobs = 1000;
  a.algorithm = "dqn";
  TrainingSpec b = a;
  b.name = "arm-b";
  b.dqn.epsilon_decay_epochs = a.dqn.epsilon_decay_epochs + 7;

  const std::string key_a = fingerprint(a);
  const std::string key_b = fingerprint(b);
  ASSERT_NE(key_a, key_b);

  store.put(key_a, tiny_agent(1), a.name, {}, canonical_string(a));
  store.put(key_b, tiny_agent(2), b.name, {}, canonical_string(b));
  ASSERT_EQ(store.list().size(), 2u);

  // Lookup resolves each arm to its own entry (and its own sidecar).
  const auto entry_a = store.lookup(key_a);
  const auto entry_b = store.lookup(key_b);
  ASSERT_TRUE(entry_a.has_value());
  ASSERT_TRUE(entry_b.has_value());
  EXPECT_EQ(entry_a->name, "arm-a");
  EXPECT_EQ(entry_b->name, "arm-b");
  EXPECT_NE(entry_a->path, entry_b->path);

  // Pruning with only arm-a referenced drops exactly arm-b.
  const auto removed = store.prune({key_a});
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], key_b);
  EXPECT_TRUE(store.contains(key_a));
  EXPECT_FALSE(store.contains(key_b));
}

// Regression: one corrupt model file (e.g. a crash mid-save) must not
// brick the whole store — the entry is dropped, everything else loads.
TEST(Store, CorruptIndexedModelIsDroppedNotFatal) {
  const std::string root = fresh_root("corrupt");
  {
    Store store(root);
    store.put("eeeeeeeeeeeeeeee", tiny_agent(1), "good", {});
    store.put("ffffffffffffffff", tiny_agent(2), "bad", {});
  }
  std::ofstream(root + "/ffffffffffffffff.model", std::ios::trunc)
      << "rlbf-model v1\nmeta spec_name bad\ngarbage";
  Store reopened(root);
  EXPECT_TRUE(reopened.contains("eeeeeeeeeeeeeeee"));
  EXPECT_FALSE(reopened.contains("ffffffffffffffff"));
  EXPECT_NO_THROW(reopened.load("eeeeeeeeeeeeeeee"));
}

TEST(Store, PutOverwritesExistingKeyInPlace) {
  Store store(fresh_root("overwrite"));
  store.put("dddddddddddddddd", tiny_agent(1), "v1", {{"epochs", "1"}});
  store.put("dddddddddddddddd", tiny_agent(2), "v2", {{"epochs", "2"}});
  const auto entries = store.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "v2");
  EXPECT_EQ(entries[0].meta.at("epochs"), "2");
}

TEST(DefaultStore, RootIsSwitchable) {
  const std::string root = fresh_root("default");
  set_default_store_root(root);
  EXPECT_EQ(default_store().root(), root);
  const std::string other = fresh_root("default2");
  set_default_store_root(other);
  EXPECT_EQ(default_store().root(), other);
}

}  // namespace
}  // namespace rlbf::model
