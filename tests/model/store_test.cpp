#include "model/store.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>

#include "model/training_spec.h"

namespace rlbf::model {
namespace {

namespace fs = std::filesystem;

core::Agent tiny_agent(std::uint64_t seed = 3) {
  core::AgentConfig config;
  config.obs.max_obsv_size = 16;
  config.obs.value_obsv_size = 8;
  return core::Agent(config, seed);
}

std::string fresh_root(const std::string& name) {
  const std::string root = ::testing::TempDir() + "/rlbf_store_" + name;
  fs::remove_all(root);
  return root;
}

TEST(Store, PutLookupRoundTrip) {
  Store store(fresh_root("roundtrip"));
  const core::Agent agent = tiny_agent();
  const StoreEntry put_entry =
      store.put("aaaa000011112222", agent, "tiny", {{"epochs", "2"}}, "canon v1\n");

  EXPECT_TRUE(store.contains("aaaa000011112222"));
  const auto entry = store.lookup("aaaa000011112222");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->name, "tiny");
  EXPECT_EQ(entry->meta.at("epochs"), "2");
  EXPECT_EQ(entry->meta.at("spec_name"), "tiny");
  EXPECT_EQ(entry->path, put_entry.path);
  EXPECT_TRUE(fs::exists(store.spec_path("aaaa000011112222")));

  const core::Agent loaded = store.load("aaaa000011112222");
  EXPECT_EQ(loaded.config().obs.max_obsv_size, 16u);
  // Bit-exact model round trip (hexfloat serialization).
  const auto a = agent.model().policy_parameters();
  const auto b = loaded.model().policy_parameters();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->value, b[i]->value);
  }
}

TEST(Store, LookupMissReturnsNulloptAndLoadThrows) {
  Store store(fresh_root("miss"));
  EXPECT_FALSE(store.contains("ffff000000000000"));
  EXPECT_FALSE(store.lookup("ffff000000000000").has_value());
  EXPECT_THROW(store.load("ffff000000000000"), std::runtime_error);
}

TEST(Store, IndexSurvivesReopen) {
  const std::string root = fresh_root("reopen");
  {
    Store store(root);
    store.put("1111111111111111", tiny_agent(1), "one", {});
    store.put("2222222222222222", tiny_agent(2), "two", {});
  }
  Store reopened(root);
  const auto entries = reopened.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "1111111111111111");
  EXPECT_EQ(entries[1].key, "2222222222222222");
  EXPECT_EQ(entries[1].name, "two");
}

TEST(Store, IndexIsRebuiltFromScanWhenMissing) {
  const std::string root = fresh_root("rebuild");
  {
    Store store(root);
    store.put("3333333333333333", tiny_agent(), "three", {{"epochs", "9"}});
  }
  fs::remove(root + "/index.tsv");
  Store rebuilt(root);
  const auto entry = rebuilt.lookup("3333333333333333");
  ASSERT_TRUE(entry.has_value());
  // The name comes back out of the model file's own metadata.
  EXPECT_EQ(entry->name, "three");
  EXPECT_EQ(entry->meta.at("epochs"), "9");
  EXPECT_TRUE(fs::exists(root + "/index.tsv"));
}

TEST(Store, PruneRemovesOnlyUnreferencedEntries) {
  Store store(fresh_root("prune"));
  store.put("aaaaaaaaaaaaaaaa", tiny_agent(1), "keep", {});
  store.put("bbbbbbbbbbbbbbbb", tiny_agent(2), "drop", {});
  store.put("cccccccccccccccc", tiny_agent(3), "keep2", {});

  const auto removed =
      store.prune({"aaaaaaaaaaaaaaaa", "cccccccccccccccc", "not-present"});
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], "bbbbbbbbbbbbbbbb");
  EXPECT_TRUE(store.contains("aaaaaaaaaaaaaaaa"));
  EXPECT_FALSE(store.contains("bbbbbbbbbbbbbbbb"));
  EXPECT_TRUE(store.contains("cccccccccccccccc"));
  EXPECT_FALSE(fs::exists(store.model_path("bbbbbbbbbbbbbbbb")));
  EXPECT_TRUE(fs::exists(store.model_path("aaaaaaaaaaaaaaaa")));

  // Referenced set unchanged -> prune is a no-op.
  EXPECT_TRUE(store.prune({"aaaaaaaaaaaaaaaa", "cccccccccccccccc"}).empty());
}

// Regression guarding the ablation-arm spec-field additions: two specs
// whose canonical text differs ONLY in a newer env-override field (here
// the DQN exploration schedule) must land on distinct fingerprints, get
// distinct store entries, resolve independently through lookup, and
// survive prune independently. If a new spec field is ever left out of
// canonical_string, the two puts below collapse onto one key and this
// test fails.
TEST(Store, NewSpecFieldsSeparateEntriesThroughLookupAndPrune) {
  Store store(fresh_root("specfields"));
  TrainingSpec a;
  a.name = "arm-a";
  a.workload.workload = "SDSC-SP2";
  a.workload.trace_jobs = 1000;
  a.algorithm = "dqn";
  TrainingSpec b = a;
  b.name = "arm-b";
  b.dqn.epsilon_decay_epochs = a.dqn.epsilon_decay_epochs + 7;

  const std::string key_a = fingerprint(a);
  const std::string key_b = fingerprint(b);
  ASSERT_NE(key_a, key_b);

  store.put(key_a, tiny_agent(1), a.name, {}, canonical_string(a));
  store.put(key_b, tiny_agent(2), b.name, {}, canonical_string(b));
  ASSERT_EQ(store.list().size(), 2u);

  // Lookup resolves each arm to its own entry (and its own sidecar).
  const auto entry_a = store.lookup(key_a);
  const auto entry_b = store.lookup(key_b);
  ASSERT_TRUE(entry_a.has_value());
  ASSERT_TRUE(entry_b.has_value());
  EXPECT_EQ(entry_a->name, "arm-a");
  EXPECT_EQ(entry_b->name, "arm-b");
  EXPECT_NE(entry_a->path, entry_b->path);

  // Pruning with only arm-a referenced drops exactly arm-b.
  const auto removed = store.prune({key_a});
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], key_b);
  EXPECT_TRUE(store.contains(key_a));
  EXPECT_FALSE(store.contains(key_b));
}

// Regression: one corrupt model file (e.g. a crash mid-save) must not
// brick the whole store — the entry is dropped, everything else loads.
TEST(Store, CorruptIndexedModelIsDroppedNotFatal) {
  const std::string root = fresh_root("corrupt");
  {
    Store store(root);
    store.put("eeeeeeeeeeeeeeee", tiny_agent(1), "good", {});
    store.put("ffffffffffffffff", tiny_agent(2), "bad", {});
  }
  std::ofstream(root + "/ffffffffffffffff.model", std::ios::trunc)
      << "rlbf-model v1\nmeta spec_name bad\ngarbage";
  Store reopened(root);
  EXPECT_TRUE(reopened.contains("eeeeeeeeeeeeeeee"));
  EXPECT_FALSE(reopened.contains("ffffffffffffffff"));
  EXPECT_NO_THROW(reopened.load("eeeeeeeeeeeeeeee"));
}

// A key dropped as unreadable at load must become persistable again the
// moment a valid model is put() under it — the blacklist protects the
// merged index save from resurrecting the corrupt file, not from the
// retrained replacement.
TEST(Store, RetrainAfterCorruptionPersistsInTheIndex) {
  const std::string root = fresh_root("retrain");
  {
    Store store(root);
    store.put("abcd000000000001", tiny_agent(1), "v1", {});
  }
  std::ofstream(root + "/abcd000000000001.model", std::ios::trunc)
      << "rlbf-model v1\ngarbage";
  Store store(root);  // drops (and blacklists) the corrupt entry
  EXPECT_FALSE(store.contains("abcd000000000001"));
  store.put("abcd000000000001", tiny_agent(2), "v2", {});
  EXPECT_TRUE(store.contains("abcd000000000001"));
  Store reopened(root);
  const auto entry = reopened.lookup("abcd000000000001");
  ASSERT_TRUE(entry.has_value());  // the retrain reached index.tsv
  EXPECT_EQ(entry->name, "v2");
}

TEST(Store, PutOverwritesExistingKeyInPlace) {
  Store store(fresh_root("overwrite"));
  store.put("dddddddddddddddd", tiny_agent(1), "v1", {{"epochs", "1"}});
  store.put("dddddddddddddddd", tiny_agent(2), "v2", {{"epochs", "2"}});
  const auto entries = store.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "v2");
  EXPECT_EQ(entries[0].meta.at("epochs"), "2");
}

// Regression: a failed fs::remove used to drop the entry from the index
// anyway, leaving an orphan .model that a later scan rebuild resurrects
// with stale meta. A removal failure must keep the entry.
TEST(Store, PruneKeepsEntryWhenRemovalFails) {
  const std::string root = fresh_root("prunefail");
  Store store(root);
  store.put("aaaa111122223333", tiny_agent(1), "stuck", {});
  store.put("bbbb111122223333", tiny_agent(2), "prunable", {});

  // Turn the first entry's .model into a non-empty directory behind the
  // store's back: fs::remove on it fails with directory_not_empty.
  const std::string stuck = store.model_path("aaaa111122223333");
  fs::remove(stuck);
  fs::create_directories(stuck);
  std::ofstream(stuck + "/blocker") << "x";

  const auto removed = store.prune({});
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], "bbbb111122223333");
  // The unremovable entry survives in the index; the removable one is gone.
  EXPECT_TRUE(store.contains("aaaa111122223333"));
  EXPECT_FALSE(store.contains("bbbb111122223333"));
  EXPECT_FALSE(fs::exists(store.model_path("bbbb111122223333")));
  fs::remove_all(stuck);
}

TEST(Store, V1IndexMigratesToV2WithZeroClocks) {
  const std::string root = fresh_root("v1migrate");
  {
    Store store(root);
    store.put("1234123412341234", tiny_agent(), "old", {});
  }
  // Rewrite the index in the v1 format (no last-used column).
  std::ofstream(root + "/index.tsv", std::ios::trunc)
      << "rlbf-model-store v1\n"
      << "1234123412341234\told\t1234123412341234.model\n";
  Store migrated(root);
  const auto entries = migrated.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, "1234123412341234");
  EXPECT_EQ(entries[0].last_used, 0u);
  // The migrated index is persisted as v2.
  std::ifstream in(root + "/index.tsv");
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "rlbf-model-store v2");
}

TEST(Store, LookupTouchesTheLruClockAndPersistsIt) {
  const std::string root = fresh_root("touch");
  {
    Store store(root);
    store.put("aaaa00000000000a", tiny_agent(1), "first", {});
    store.put("bbbb00000000000b", tiny_agent(2), "second", {});
    // contains() must NOT touch; lookup() must.
    EXPECT_TRUE(store.contains("aaaa00000000000a"));
    const auto before = store.list();
    ASSERT_TRUE(store.lookup("aaaa00000000000a").has_value());
    const auto after = store.list();
    EXPECT_GT(after[0].last_used, before[0].last_used);
    EXPECT_GT(after[0].last_used, after[1].last_used);
  }
  // The clock survives a reopen (it lives in index.tsv).
  Store reopened(root);
  const auto entries = reopened.list();
  EXPECT_GT(entries[0].last_used, entries[1].last_used);
}

// Two writers sharing one store root (two processes in the bundle/rsync
// story): each handle's index save must MERGE with the on-disk rows, so
// one put() never erases another's.
TEST(Store, ConcurrentPutsFromTwoHandlesBothSurvive) {
  const std::string root = fresh_root("twowriters");
  Store a(root);
  Store b(root);  // b's snapshot predates a's put
  a.put("aaaa00000000000a", tiny_agent(1), "from-a", {});
  b.put("bbbb00000000000b", tiny_agent(2), "from-b", {});
  Store fresh(root);
  EXPECT_TRUE(fresh.contains("aaaa00000000000a"));
  EXPECT_TRUE(fresh.contains("bbbb00000000000b"));
}

// Entries pruned by one handle stay pruned after another handle's save
// (removal propagates via .model existence, not index ownership).
TEST(Store, PruneByOneHandleSurvivesAnotherHandlesSave) {
  const std::string root = fresh_root("prunepropagate");
  Store a(root);
  a.put("aaaa00000000000a", tiny_agent(1), "keep", {});
  a.put("bbbb00000000000b", tiny_agent(2), "drop", {});
  Store b(root);  // loaded while both entries existed
  a.prune({"aaaa00000000000a"});
  b.put("cccc00000000000c", tiny_agent(3), "new", {});  // b saves its view
  Store fresh(root);
  EXPECT_TRUE(fresh.contains("aaaa00000000000a"));
  EXPECT_FALSE(fresh.contains("bbbb00000000000b"));  // stays pruned
  EXPECT_TRUE(fresh.contains("cccc00000000000c"));
}

// A reader's clock flush must MERGE into the on-disk index, not
// overwrite it: entries another store handle added after the reader
// loaded its snapshot have to survive the reader's teardown.
TEST(Store, ReaderTeardownDoesNotEraseConcurrentlyAddedEntries) {
  const std::string root = fresh_root("concurrent");
  {
    Store writer_setup(root);
    writer_setup.put("aaaa000000000001", tiny_agent(1), "old", {});
  }
  {
    Store reader(root);
    ASSERT_TRUE(reader.lookup("aaaa000000000001").has_value());  // dirty clock
    // A second handle (standing in for another process) adds an entry
    // and persists it while the reader still holds its stale snapshot.
    Store writer(root);
    writer.put("bbbb000000000002", tiny_agent(2), "new", {});
    // reader destructs last, flushing its touched clock.
  }
  Store reopened(root);
  EXPECT_TRUE(reopened.contains("bbbb000000000002"));  // survived the flush
  const auto touched = reopened.lookup("aaaa000000000001");
  ASSERT_TRUE(touched.has_value());
  EXPECT_GT(touched->last_used, 0u);  // the reader's touch was persisted
}

TEST(Store, EvictLruRemovesLeastRecentlyUsedFirstAndSparesReferenced) {
  Store store(fresh_root("evict"));
  store.put("aaaa00000000000a", tiny_agent(1), "a", {});
  store.put("bbbb00000000000b", tiny_agent(2), "b", {});
  store.put("cccc00000000000c", tiny_agent(3), "c", {});
  // Touch "a" so "b" becomes the least recently used unreferenced entry.
  ASSERT_TRUE(store.lookup("aaaa00000000000a").has_value());

  // Cap of 1 byte forces eviction of everything evictable; "c" is
  // referenced and must survive even though the store stays over cap.
  const auto result = store.evict_lru(1, {"cccc00000000000c"});
  EXPECT_EQ(result.removed,
            (std::vector<std::string>{"bbbb00000000000b", "aaaa00000000000a"}));
  EXPECT_GT(result.bytes_before, result.bytes_after);
  EXPECT_GT(result.bytes_after, 0u);  // the referenced entry's bytes remain
  EXPECT_TRUE(store.contains("cccc00000000000c"));
  EXPECT_FALSE(store.contains("aaaa00000000000a"));
  EXPECT_FALSE(store.contains("bbbb00000000000b"));
  EXPECT_FALSE(fs::exists(store.model_path("aaaa00000000000a")));

  // Already under any generous cap: nothing further to evict.
  EXPECT_TRUE(store.evict_lru(1u << 30).removed.empty());
}

// A spec whose canonical text genuinely hashes to its key, so bundle
// import's re-verification chain can pass end to end.
TrainingSpec bundle_spec(const std::string& name, std::size_t jobs) {
  TrainingSpec spec;
  spec.name = name;
  spec.workload.workload = "SDSC-SP2";
  spec.workload.trace_jobs = jobs;
  return spec;
}

TEST(Store, BundleExportImportRoundTrip) {
  const std::string bundle = fresh_root("bundle_dir");
  Store source(fresh_root("bundle_src"));
  const TrainingSpec spec_a = bundle_spec("arm-a", 500);
  const TrainingSpec spec_b = bundle_spec("arm-b", 700);
  const std::string key_a = fingerprint(spec_a);
  const std::string key_b = fingerprint(spec_b);
  const core::Agent agent_a = tiny_agent(1);
  source.put(key_a, agent_a, "arm-a", {{"epochs", "2"}}, canonical_string(spec_a));
  source.put(key_b, tiny_agent(2), "arm-b", {}, canonical_string(spec_b));

  const auto exported = source.export_bundle(bundle);
  EXPECT_EQ(exported, (std::vector<std::string>{key_a, key_b}));
  EXPECT_TRUE(fs::exists(bundle + "/bundle.tsv"));

  Store dest(fresh_root("bundle_dst"));
  const auto report = dest.import_bundle(bundle);
  EXPECT_EQ(report.imported, exported);
  EXPECT_TRUE(report.skipped_existing.empty());
  const auto entry = dest.lookup(key_a);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->name, "arm-a");
  EXPECT_EQ(entry->meta.at("epochs"), "2");
  EXPECT_TRUE(fs::exists(dest.spec_path(key_a)));

  // Bit-exact agent round trip through the bundle.
  const core::Agent loaded = dest.load(key_a);
  const auto a = agent_a.model().policy_parameters();
  const auto b = loaded.model().policy_parameters();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->value, b[i]->value);
  }

  // Re-import is a no-op: equal content addresses mean equal content.
  const auto again = dest.import_bundle(bundle);
  EXPECT_TRUE(again.imported.empty());
  EXPECT_EQ(again.skipped_existing, exported);
}

TEST(Store, ExportBundleRejectsUnknownKeys) {
  Store store(fresh_root("bundle_unknown"));
  EXPECT_THROW(store.export_bundle(fresh_root("bundle_unknown_dir"),
                                   {"ffffffffffffffff"}),
               std::runtime_error);
}

TEST(Store, ImportRejectsCorruptModels) {
  const std::string bundle = fresh_root("bundle_corrupt");
  Store source(fresh_root("bundle_corrupt_src"));
  const TrainingSpec spec = bundle_spec("arm-c", 900);
  source.put(fingerprint(spec), tiny_agent(), "arm-c", {}, canonical_string(spec));
  source.export_bundle(bundle);
  // Truncate the model mid-weights: import must reject, not adopt.
  const std::string model = bundle + "/" + fingerprint(spec) + ".model";
  fs::resize_file(model, fs::file_size(model) / 2);

  Store dest(fresh_root("bundle_corrupt_dst"));
  try {
    dest.import_bundle(bundle);
    FAIL() << "corrupt bundle model was imported";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(dest.list().empty());
  EXPECT_FALSE(fs::exists(dest.model_path(fingerprint(spec))));
}

TEST(Store, ImportRejectsFingerprintMismatches) {
  const std::string bundle = fresh_root("bundle_mismatch");
  Store source(fresh_root("bundle_mismatch_src"));
  const TrainingSpec spec = bundle_spec("arm-d", 1100);
  const std::string key = fingerprint(spec);
  source.put(key, tiny_agent(), "arm-d", {}, canonical_string(spec));
  source.export_bundle(bundle);
  // Rewrite the manifest to claim a different key for the same files: a
  // mismatched (say, renamed or swapped) model must be rejected.
  std::ofstream(bundle + "/bundle.tsv", std::ios::trunc)
      << "rlbf-model-bundle v1\n"
      << "deadbeefdeadbeef\tarm-d\t" << key << ".model\t" << key << ".spec\n";

  Store dest(fresh_root("bundle_mismatch_dst"));
  try {
    dest.import_bundle(bundle);
    FAIL() << "mismatched bundle model was imported";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
              std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(dest.list().empty());
}

// A bundle manifest is foreign input: keys and file references must be
// validated before they are spliced into store paths, or a crafted
// bundle could write outside the store root.
TEST(Store, ImportRejectsNonHexKeysAndPathEscapes) {
  const std::string bundle = fresh_root("bundle_traversal");
  fs::create_directories(bundle);
  std::ofstream(bundle + "/bundle.tsv")
      << "rlbf-model-bundle v1\n"
      << "../../escape-key\tbad\tx.model\t\n";
  Store dest(fresh_root("bundle_traversal_dst"));
  try {
    dest.import_bundle(bundle);
    FAIL() << "path-escaping bundle key was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("invalid bundle key"),
              std::string::npos)
        << e.what();
  }

  std::ofstream(bundle + "/bundle.tsv", std::ios::trunc)
      << "rlbf-model-bundle v1\n"
      << "aaaa000011112222\tbad\t../outside.model\t\n";
  try {
    dest.import_bundle(bundle);
    FAIL() << "path-escaping bundle file reference was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("invalid file reference"),
              std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(dest.list().empty());
}

// Orphaned per-process tmp files (crashed writers) are swept on open
// once they are old enough to be provably dead; fresh ones are left for
// their (possibly live) writer.
TEST(Store, StaleTmpFilesAreSweptOnOpen) {
  const std::string root = fresh_root("tmpsweep");
  fs::create_directories(root);
  const std::string stale = root + "/index.tsv.4242.tmp";
  const std::string recent = root + "/aaaa000011112222.model.4243.tmp";
  std::ofstream(stale) << "torn";
  std::ofstream(recent) << "in flight";
  fs::last_write_time(stale, fs::file_time_type::clock::now() -
                                 std::chrono::hours(2));
  Store store(root);
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(recent));
  fs::remove(recent);
}

TEST(Store, ImportRejectsTamperedSpecSidecars) {
  const std::string bundle = fresh_root("bundle_tampered");
  Store source(fresh_root("bundle_tampered_src"));
  const TrainingSpec spec = bundle_spec("arm-e", 1300);
  const std::string key = fingerprint(spec);
  source.put(key, tiny_agent(), "arm-e", {}, canonical_string(spec));
  source.export_bundle(bundle);
  // A spec sidecar that no longer hashes to the key means the canonical
  // audit text was edited (or the wrong spec shipped): reject.
  std::ofstream(bundle + "/" + key + ".spec", std::ios::app) << "tampered\n";

  Store dest(fresh_root("bundle_tampered_dst"));
  try {
    dest.import_bundle(bundle);
    FAIL() << "tampered spec sidecar was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("does not hash back"),
              std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(dest.list().empty());
}

TEST(DefaultStore, RootIsSwitchable) {
  const std::string root = fresh_root("default");
  set_default_store_root(root);
  EXPECT_EQ(default_store().root(), root);
  const std::string other = fresh_root("default2");
  set_default_store_root(other);
  EXPECT_EQ(default_store().root(), other);
}

}  // namespace
}  // namespace rlbf::model
