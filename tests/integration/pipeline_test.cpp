// End-to-end integration: the full RLBackfilling pipeline from trace
// generation through training, persistence, and deployment against the
// heuristic baselines — a miniature version of the paper's Table-4
// protocol.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/rl_backfill.h"
#include "core/trainer.h"
#include "sched/scheduler.h"
#include "util/log.h"
#include "workload/presets.h"

namespace rlbf {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override { util::set_log_level(util::LogLevel::Warn); }
  void TearDown() override { util::set_log_level(util::LogLevel::Info); }
};

TEST_F(PipelineTest, TrainSaveLoadDeployMatchesInMemoryAgent) {
  const swf::Trace trace = workload::sdsc_sp2_like(11, 2000);

  core::TrainerConfig cfg;
  cfg.epochs = 2;
  cfg.trajectories_per_epoch = 10;
  cfg.jobs_per_trajectory = 128;
  cfg.ppo.train_iters = 10;
  cfg.ppo.minibatch_size = 256;
  cfg.agent.obs.value_obsv_size = 8;
  cfg.threads = 4;
  core::Trainer trainer(trace, cfg);
  trainer.train();

  const std::string path = ::testing::TempDir() + "/pipeline_agent.model";
  ASSERT_TRUE(trainer.agent().save(path, {{"trace", trace.name()}}));
  const core::Agent loaded = core::Agent::load(path);
  std::remove(path.c_str());

  // Deploy both agents on an unseen sequence: identical schedules.
  util::Rng rng(77);
  const swf::Trace seq = trace.sample(512, rng);
  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  core::RlBackfillChooser chooser_mem(trainer.agent());
  core::RlBackfillChooser chooser_disk(loaded);
  const auto mem = sched::run_schedule(seq, fcfs, est, &chooser_mem);
  const auto disk = sched::run_schedule(seq, fcfs, est, &chooser_disk);
  EXPECT_DOUBLE_EQ(mem.metrics.avg_bounded_slowdown,
                   disk.metrics.avg_bounded_slowdown);
  EXPECT_GT(mem.metrics.backfilled_jobs, 0u);
}

TEST_F(PipelineTest, RlbfChooserRunsUnderEveryBasePolicy) {
  const swf::Trace trace = workload::lublin_1(12, 1500);
  const core::Agent agent(core::AgentConfig{}, 5);  // untrained: still valid
  sched::RequestTimeEstimator est;
  util::Rng rng(3);
  const swf::Trace seq = trace.sample(256, rng);
  for (const auto& name : sched::all_policy_names()) {
    const auto policy = sched::make_policy(name);
    core::RlBackfillChooser chooser(agent);
    const auto out = sched::run_schedule(seq, *policy, est, &chooser);
    EXPECT_EQ(out.results.size(), seq.size()) << name;
    EXPECT_GE(out.metrics.avg_bounded_slowdown, 1.0) << name;
  }
}

TEST_F(PipelineTest, TrainedAgentBeatsUntrainedOnTrainingDistribution) {
  // A coarse learning signal: after a short budget, the trained agent
  // should not be (much) worse than the untrained one on sequences from
  // the training trace. Seeds are fixed; the margin is generous to stay
  // robust while still catching sign errors in rewards/advantages.
  const swf::Trace trace = workload::sdsc_sp2_like(13, 2500);
  core::TrainerConfig cfg;
  cfg.epochs = 6;
  cfg.trajectories_per_epoch = 24;
  cfg.jobs_per_trajectory = 160;
  cfg.ppo.train_iters = 20;
  cfg.ppo.minibatch_size = 512;
  cfg.agent.obs.value_obsv_size = 8;
  cfg.threads = 8;
  cfg.seed = 21;
  core::Trainer trainer(trace, cfg);
  const core::Agent untrained = trainer.agent().clone();
  trainer.train();

  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  util::Rng rng(99);
  double trained_sum = 0.0, untrained_sum = 0.0;
  for (int rep = 0; rep < 6; ++rep) {
    const swf::Trace seq = trace.sample(512, rng);
    core::RlBackfillChooser trained_chooser(trainer.agent());
    core::RlBackfillChooser untrained_chooser(untrained);
    trained_sum +=
        sched::run_schedule(seq, fcfs, est, &trained_chooser).metrics.avg_bounded_slowdown;
    untrained_sum += sched::run_schedule(seq, fcfs, est, &untrained_chooser)
                         .metrics.avg_bounded_slowdown;
  }
  EXPECT_LT(trained_sum, untrained_sum * 1.3);
}

TEST_F(PipelineTest, Table4StyleComparisonProducesAllCells) {
  const swf::Trace trace = workload::hpc2n_like(14, 1500);
  util::Rng rng(5);
  const swf::Trace seq = trace.sample(384, rng);

  const std::vector<sched::SchedulerSpec> specs = {
      {"FCFS", sched::BackfillKind::Easy, sched::EstimateKind::RequestTime},
      {"FCFS", sched::BackfillKind::Easy, sched::EstimateKind::ActualRuntime},
      {"SJF", sched::BackfillKind::Easy, sched::EstimateKind::RequestTime},
      {"SJF", sched::BackfillKind::Easy, sched::EstimateKind::ActualRuntime},
      {"WFP3", sched::BackfillKind::Easy, sched::EstimateKind::RequestTime},
      {"F1", sched::BackfillKind::Easy, sched::EstimateKind::RequestTime},
  };
  for (const auto& spec : specs) {
    const auto out = sched::ConfiguredScheduler(spec).run(seq);
    EXPECT_GE(out.metrics.avg_bounded_slowdown, 1.0) << spec.label();
    EXPECT_EQ(out.results.size(), seq.size()) << spec.label();
  }
}

TEST_F(PipelineTest, CrossTraceDeploymentWorks) {
  // Table-5 mechanics: an agent trained on X applied to trace Y.
  const swf::Trace train_trace = workload::lublin_2(15, 1500);
  core::TrainerConfig cfg;
  cfg.epochs = 1;
  cfg.trajectories_per_epoch = 8;
  cfg.jobs_per_trajectory = 128;
  cfg.ppo.train_iters = 5;
  cfg.agent.obs.value_obsv_size = 8;
  cfg.threads = 4;
  core::Trainer trainer(train_trace, cfg);
  trainer.train();

  const swf::Trace other = workload::sdsc_sp2_like(16, 1000);
  util::Rng rng(8);
  const swf::Trace seq = other.sample(256, rng);
  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  core::RlBackfillChooser chooser(trainer.agent());
  const auto out = sched::run_schedule(seq, fcfs, est, &chooser);
  EXPECT_EQ(out.results.size(), seq.size());
}

}  // namespace
}  // namespace rlbf
