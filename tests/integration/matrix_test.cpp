// Exhaustive configuration sweep: every Table-2 workload crossed with
// every base policy, backfill strategy, and estimate source must produce
// a complete, consistent, deterministic schedule. One parameterized test
// generates the full matrix (4 traces x 4 policies x 4 backfills x 3
// estimators = 192 instances); invariants are the simulator's contract.
#include <gtest/gtest.h>

#include <map>

#include "sched/scheduler.h"
#include "workload/presets.h"

namespace rlbf {
namespace {

struct MatrixCase {
  std::string trace;
  std::string policy;
  sched::BackfillKind backfill;
  sched::EstimateKind estimate;
};

std::string backfill_name(sched::BackfillKind k) {
  switch (k) {
    case sched::BackfillKind::None: return "NOBF";
    case sched::BackfillKind::Easy: return "EASY";
    case sched::BackfillKind::EasySjf: return "EASYSJF";
    case sched::BackfillKind::EasyBestFit: return "EASYBF";
    case sched::BackfillKind::EasyWorstFit: return "EASYWF";
    case sched::BackfillKind::Conservative: return "CONS";
    case sched::BackfillKind::Slack: return "SLACK";
  }
  return "?";
}

std::string estimate_name(sched::EstimateKind k) {
  switch (k) {
    case sched::EstimateKind::RequestTime: return "RT";
    case sched::EstimateKind::ActualRuntime: return "AR";
    case sched::EstimateKind::Noisy: return "NOISY";
  }
  return "?";
}

/// Shared trace cache: generating each preset once keeps the 192-case
/// sweep fast (generation dominates otherwise).
const swf::Trace& cached_trace(const std::string& name) {
  static std::map<std::string, swf::Trace>* traces = [] {
    auto* m = new std::map<std::string, swf::Trace>();
    for (const auto& t : workload::all_targets()) {
      m->emplace(t.name, workload::make_preset(t, 400, 99));
    }
    return m;
  }();
  return traces->at(name);
}

class SchedulingMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(SchedulingMatrixTest, ScheduleIsCompleteConsistentAndDeterministic) {
  const MatrixCase& c = GetParam();
  const swf::Trace& trace = cached_trace(c.trace);

  sched::SchedulerSpec spec{c.policy, c.backfill, c.estimate};
  spec.noise_fraction = 0.2;
  spec.noise_seed = 5;
  const sched::ConfiguredScheduler scheduler(spec);
  const auto first = scheduler.run(trace);
  const auto second = scheduler.run(trace);

  ASSERT_EQ(first.results.size(), trace.size());
  for (std::size_t i = 0; i < first.results.size(); ++i) {
    const auto& r = first.results[i];
    // Completeness and consistency invariants.
    EXPECT_EQ(r.job_index, i);
    EXPECT_GE(r.start_time, trace[i].submit_time) << spec.label();
    EXPECT_EQ(r.run_time(), trace[i].run_time) << spec.label();
    EXPECT_EQ(r.procs, trace[i].procs()) << spec.label();
    // Determinism: bit-identical schedules run-to-run.
    EXPECT_EQ(r.start_time, second.results[i].start_time) << spec.label();
    EXPECT_EQ(r.backfilled, second.results[i].backfilled) << spec.label();
  }
  EXPECT_GE(first.metrics.avg_bounded_slowdown, 1.0);
  EXPECT_LE(first.metrics.utilization, 1.0 + 1e-9);
}

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> cases;
  for (const auto& trace : {"SDSC-SP2", "HPC2N", "Lublin-1", "Lublin-2"}) {
    for (const auto& policy : sched::all_policy_names()) {
      for (const auto backfill :
           {sched::BackfillKind::None, sched::BackfillKind::Easy,
            sched::BackfillKind::EasyBestFit, sched::BackfillKind::EasyWorstFit,
            sched::BackfillKind::Conservative, sched::BackfillKind::Slack}) {
        for (const auto estimate :
             {sched::EstimateKind::RequestTime, sched::EstimateKind::ActualRuntime,
              sched::EstimateKind::Noisy}) {
          cases.push_back({trace, policy, backfill, estimate});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(FullMatrix, SchedulingMatrixTest,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) {
                           const MatrixCase& c = info.param;
                           std::string name = c.trace + "_" + c.policy + "_" +
                                              backfill_name(c.backfill) + "_" +
                                              estimate_name(c.estimate);
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace rlbf
