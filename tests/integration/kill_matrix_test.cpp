// Integration sweep for the kill-at-request-time semantics crossed with
// estimate sources — including the under-predicting estimators that make
// reservations optimistic — on every Table-2 workload. Invariants:
// schedules stay complete and deterministic, killed jobs are truncated
// exactly at their request time, and honest traces (AR <= RT) see no
// kills at all.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "sched/easy_backfill.h"
#include "sched/predictors.h"
#include "sched/scheduler.h"
#include "workload/presets.h"

namespace rlbf {
namespace {

struct KillCase {
  std::string trace;
  std::string estimator;  // "RT" | "AR" | "UNDER" | "RECENT4"
  bool shrink_requests;   // rewrite RT := AR/2 to force overruns
};

const swf::Trace& cached_trace(const std::string& name) {
  static std::map<std::string, swf::Trace>* traces = [] {
    auto* m = new std::map<std::string, swf::Trace>();
    for (const auto& t : workload::all_targets()) {
      m->emplace(t.name, workload::make_preset(t, 300, 77));
    }
    return m;
  }();
  return traces->at(name);
}

std::unique_ptr<sim::RuntimeEstimator> make_estimator(const std::string& kind,
                                                      const swf::Trace& trace) {
  if (kind == "RT") return std::make_unique<sched::RequestTimeEstimator>();
  if (kind == "AR") return std::make_unique<sched::ActualRuntimeEstimator>();
  if (kind == "UNDER") return std::make_unique<sched::UnderNoisyEstimator>(0.5, 3);
  return std::make_unique<sched::RecentKEstimator>(trace, 4);
}

class KillMatrixTest : public ::testing::TestWithParam<KillCase> {};

TEST_P(KillMatrixTest, KilledSchedulesStayCompleteAndExact) {
  const KillCase& c = GetParam();
  swf::Trace trace = cached_trace(c.trace);
  if (c.shrink_requests) {
    for (auto& j : trace.mutable_jobs()) {
      if (j.run_time > 1) {
        j.requested_time = std::max<std::int64_t>(j.run_time / 2, 1);
      }
    }
  }

  const auto estimator = make_estimator(c.estimator, trace);
  sched::FcfsPolicy fcfs;
  sched::EasyBackfillChooser easy;
  sim::SimulationOptions opt;
  opt.kill_exceeding_request = true;

  const auto results = sim::simulate(trace, fcfs, *estimator, &easy, opt);
  const auto again = sim::simulate(trace, fcfs, *estimator, &easy, opt);
  ASSERT_EQ(results.size(), trace.size());

  std::size_t kills = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    EXPECT_GE(r.start_time, trace[i].submit_time);
    if (r.killed) {
      ++kills;
      EXPECT_EQ(r.run_time(), trace[i].request_time());
      EXPECT_LT(trace[i].request_time(), trace[i].run_time);
    } else {
      EXPECT_EQ(r.run_time(), trace[i].run_time);
    }
    // Determinism.
    EXPECT_EQ(r.start_time, again[i].start_time);
    EXPECT_EQ(r.killed, again[i].killed);
  }
  if (c.shrink_requests) {
    EXPECT_GT(kills, 0u) << "shrunken requests must force kills";
  } else {
    EXPECT_EQ(kills, 0u) << "honest traces must see no kills";
  }
}

std::vector<KillCase> all_cases() {
  std::vector<KillCase> cases;
  for (const auto& trace : {"SDSC-SP2", "HPC2N", "Lublin-1", "Lublin-2"}) {
    for (const auto& est : {"RT", "AR", "UNDER", "RECENT4"}) {
      for (const bool shrink : {false, true}) {
        cases.push_back({trace, est, shrink});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(KillMatrix, KillMatrixTest, ::testing::ValuesIn(all_cases()),
                         [](const auto& info) {
                           const KillCase& c = info.param;
                           std::string name = c.trace + "_" + c.estimator +
                                              (c.shrink_requests ? "_SHRUNK" : "_HONEST");
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace rlbf
