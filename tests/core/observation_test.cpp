#include "core/observation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "context_fixture.h"

namespace rlbf::core {
namespace {

using testing::ContextFixture;
using testing::make_job;

/// Machine 10. Job0 runs 6 procs until t=100 (4 free). Queue: job1
/// (rjob, 10 procs, blocked; shadow 100, extra 0), job2 (2 procs, runs
/// 50: finishes exactly at the shadow), job3 (2 procs, runs 200: would
/// overrun the reservation), job4 (4 procs, runs 30: fits easily).
ContextFixture standard_fixture() {
  return ContextFixture(
      {make_job(1, 0, 100, 6, 100), make_job(2, 10, 100, 10, 100),
       make_job(3, 20, 50, 2, 50), make_job(4, 30, 200, 2, 200),
       make_job(5, 40, 30, 4, 30)},
      10, {{0, 0}}, {1, 2, 3, 4}, 50);
}

TEST(Observation, RowsFollowSubmitOrderAndMaskCandidates) {
  const ContextFixture fx = standard_fixture();
  const ObservationBuilder builder{ObservationConfig{}};
  const auto ctx = fx.context();
  const PolicyObservation po = builder.build_policy(ctx);

  ASSERT_EQ(po.obs.rows(), 4u);  // no padding by default
  ASSERT_EQ(po.mask.size(), 4u);
  // Row 0 is the rjob (earliest submit): present but masked.
  EXPECT_DOUBLE_EQ(po.obs.at(0, 7), 1.0);
  EXPECT_EQ(po.mask[0], 0);
  EXPECT_EQ(po.row_to_candidate[0], kNoCandidate);
  // Rows 1..3 are the three feasible candidates.
  for (std::size_t r = 1; r < 4; ++r) {
    EXPECT_EQ(po.mask[r], 1) << r;
    ASSERT_NE(po.row_to_candidate[r], kNoCandidate);
    EXPECT_EQ(ctx.candidates[po.row_to_candidate[r]], fx.queue[r]);
  }
  EXPECT_TRUE(po.any_selectable());
}

TEST(Observation, FeatureValuesAreComputedPerJob) {
  const ContextFixture fx = standard_fixture();
  const ObservationBuilder builder{ObservationConfig{}};
  const PolicyObservation po = builder.build_policy(fx.context());

  const double week = std::log1p(7.0 * 24.0 * 3600.0);
  // Row 1 = job2: wait = 50 - 20 = 30; request 50; 2/10 procs; fits.
  EXPECT_NEAR(po.obs.at(1, 0), std::log1p(30.0) / week, 1e-12);
  EXPECT_NEAR(po.obs.at(1, 1), std::log1p(50.0) / week, 1e-12);
  EXPECT_NEAR(po.obs.at(1, 2), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(po.obs.at(1, 3), 1.0);
  // Free fraction is appended to every row (4 of 10 procs free).
  for (std::size_t r = 0; r < po.obs.rows(); ++r) {
    EXPECT_DOUBLE_EQ(po.obs.at(r, 6), 0.4);
  }
}

TEST(Observation, SlackFeatureSignalsEasyFit) {
  const ContextFixture fx = standard_fixture();
  const ObservationBuilder builder{ObservationConfig{}};
  const PolicyObservation po = builder.build_policy(fx.context());
  // Shadow is 100, now 50 -> gap 50. Job2 (est 50) fits exactly: slack 0.
  EXPECT_NEAR(po.obs.at(1, 5), 0.0, 1e-12);
  // Job3 (est 200) overshoots: negative slack, clamped to -1.
  EXPECT_DOUBLE_EQ(po.obs.at(2, 5), -1.0);
  // Job4 (est 30) fits with room: positive slack.
  EXPECT_GT(po.obs.at(3, 5), 0.0);
}

TEST(Observation, AdmissibleOnlyMasksDelayingCandidates) {
  const ContextFixture fx = standard_fixture();
  const ObservationBuilder builder{ObservationConfig{}};
  const PolicyObservation po =
      builder.build_policy(fx.context(), /*admissible_only=*/true);
  EXPECT_EQ(po.mask[1], 1);  // job2 finishes by the shadow
  EXPECT_EQ(po.mask[2], 0);  // job3 would overrun and extra procs are 0
  EXPECT_EQ(po.mask[3], 1);  // job4 fits
}

TEST(Observation, TruncationKeepsEarliestSubmitted) {
  ObservationConfig cfg;
  cfg.max_obsv_size = 2;
  const ContextFixture fx = standard_fixture();
  const ObservationBuilder builder(cfg);
  const PolicyObservation po = builder.build_policy(fx.context());
  ASSERT_EQ(po.obs.rows(), 2u);
  // Kept rows: rjob (submit 10) and job2 (submit 20); the rjob is
  // masked, so only one selectable action remains.
  EXPECT_EQ(po.mask[0], 0);
  EXPECT_EQ(po.mask[1], 1);
}

TEST(Observation, AllCandidatesTruncatedMeansNoneSelectable) {
  ObservationConfig cfg;
  cfg.max_obsv_size = 1;  // only the rjob survives the cutoff
  const ContextFixture fx = standard_fixture();
  const ObservationBuilder builder(cfg);
  const PolicyObservation po = builder.build_policy(fx.context());
  EXPECT_FALSE(po.any_selectable());
}

TEST(Observation, PaddingProducesFixedRowCount) {
  ObservationConfig cfg;
  cfg.max_obsv_size = 16;
  cfg.pad_policy_obs = true;
  const ContextFixture fx = standard_fixture();
  const ObservationBuilder builder(cfg);
  const PolicyObservation po = builder.build_policy(fx.context());
  ASSERT_EQ(po.obs.rows(), 16u);
  for (std::size_t r = 4; r < 16; ++r) {
    EXPECT_EQ(po.mask[r], 0);
    EXPECT_EQ(po.row_to_candidate[r], kNoCandidate);
    for (std::size_t c = 0; c < ObservationConfig::kFeatures; ++c) {
      EXPECT_DOUBLE_EQ(po.obs.at(r, c), 0.0);
    }
  }
}

TEST(Observation, ValueObservationHasFixedShape) {
  ObservationConfig cfg;
  cfg.value_obsv_size = 8;
  const ContextFixture fx = standard_fixture();
  const ObservationBuilder builder(cfg);
  const nn::Tensor v = builder.build_value(fx.context());
  EXPECT_EQ(v.rows(), 1u);
  EXPECT_EQ(v.cols(), 8u * ObservationConfig::kFeatures);
  // First job's features are present; padding slots are zero.
  EXPECT_GT(v.at(0, 1), 0.0);  // rjob request time
  EXPECT_DOUBLE_EQ(v.at(0, 4 * ObservationConfig::kFeatures + 1), 0.0);
}

TEST(Observation, ValueObservationTruncatesLikePolicy) {
  ObservationConfig cfg;
  cfg.value_obsv_size = 2;
  const ContextFixture fx = standard_fixture();
  const ObservationBuilder builder(cfg);
  const nn::Tensor v = builder.build_value(fx.context());
  EXPECT_EQ(v.cols(), 2u * ObservationConfig::kFeatures);
}

TEST(Observation, StopRowAppendedWhenEnabled) {
  ObservationConfig cfg;
  cfg.stop_action = true;
  const ContextFixture fx = standard_fixture();
  const ObservationBuilder builder(cfg);
  const PolicyObservation po = builder.build_policy(fx.context());
  ASSERT_EQ(po.obs.rows(), 5u);  // 4 queued jobs + stop
  const std::size_t stop = 4;
  EXPECT_EQ(po.mask[stop], 1);
  EXPECT_EQ(po.row_to_candidate[stop], kStopAction);
  EXPECT_DOUBLE_EQ(po.obs.at(stop, 8), 1.0);   // stop flag
  EXPECT_DOUBLE_EQ(po.obs.at(stop, 6), 0.4);   // free fraction still present
  // No job row carries the stop flag.
  for (std::size_t r = 0; r < stop; ++r) EXPECT_DOUBLE_EQ(po.obs.at(r, 8), 0.0);
}

TEST(Observation, StopRowAtFixedIndexWhenPadded) {
  ObservationConfig cfg;
  cfg.stop_action = true;
  cfg.max_obsv_size = 8;
  cfg.pad_policy_obs = true;
  const ContextFixture fx = standard_fixture();
  const ObservationBuilder builder(cfg);
  const PolicyObservation po = builder.build_policy(fx.context());
  ASSERT_EQ(po.obs.rows(), cfg.padded_policy_rows());
  EXPECT_EQ(po.obs.rows(), 9u);
  EXPECT_EQ(po.row_to_candidate[8], kStopAction);
  EXPECT_EQ(po.mask[8], 1);
}

TEST(Observation, StopRowAlwaysSelectableEvenWhenJobsAreNot) {
  ObservationConfig cfg;
  cfg.stop_action = true;
  cfg.max_obsv_size = 1;  // truncate every candidate away
  const ContextFixture fx = standard_fixture();
  const ObservationBuilder builder(cfg);
  const PolicyObservation po = builder.build_policy(fx.context());
  EXPECT_TRUE(po.any_selectable());
  EXPECT_EQ(po.row_to_candidate[po.obs.rows() - 1], kStopAction);
}

TEST(Observation, MaskInadmissibleConfigAppliesWithoutExplicitFlag) {
  ObservationConfig cfg;
  cfg.mask_inadmissible = true;
  const ContextFixture fx = standard_fixture();
  const ObservationBuilder builder(cfg);
  const PolicyObservation po = builder.build_policy(fx.context());
  EXPECT_EQ(po.mask[2], 0);  // job3 would overrun the reservation
  EXPECT_EQ(po.mask[1], 1);
}

TEST(Observation, FitRatioFeature) {
  const ContextFixture fx = standard_fixture();
  const ObservationBuilder builder{ObservationConfig{}};
  const PolicyObservation po = builder.build_policy(fx.context());
  // 4 procs free. Row 1 = job2 (2 procs): ratio 0.5. Row 3 = job4
  // (4 procs): ratio 1.0. Row 0 = rjob (10 procs): clamped to 1.
  EXPECT_DOUBLE_EQ(po.obs.at(1, 9), 0.5);
  EXPECT_DOUBLE_EQ(po.obs.at(3, 9), 1.0);
  EXPECT_DOUBLE_EQ(po.obs.at(0, 9), 1.0);
}

TEST(Observation, FeatureDimsConsistent) {
  ObservationConfig cfg;
  cfg.value_obsv_size = 32;
  EXPECT_EQ(cfg.policy_feature_dim(), ObservationConfig::kFeatures);
  EXPECT_EQ(cfg.value_feature_dim(), 32u * ObservationConfig::kFeatures);
}

}  // namespace
}  // namespace rlbf::core
