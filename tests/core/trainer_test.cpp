#include "core/trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/log.h"
#include "workload/presets.h"

namespace rlbf::core {
namespace {

TrainerConfig tiny_config() {
  TrainerConfig cfg;
  cfg.epochs = 2;
  cfg.trajectories_per_epoch = 8;
  cfg.jobs_per_trajectory = 96;
  cfg.ppo.train_iters = 5;
  cfg.ppo.minibatch_size = 128;
  cfg.agent.obs.value_obsv_size = 8;
  cfg.threads = 4;
  cfg.seed = 7;
  return cfg;
}

class TrainerTest : public ::testing::Test {
 protected:
  void SetUp() override { util::set_log_level(util::LogLevel::Warn); }
  void TearDown() override { util::set_log_level(util::LogLevel::Info); }
};

TEST_F(TrainerTest, RejectsDegenerateConfigs) {
  const swf::Trace trace = workload::lublin_1(1, 200);
  TrainerConfig cfg = tiny_config();
  cfg.jobs_per_trajectory = 500;  // longer than the trace
  EXPECT_THROW(Trainer(trace, cfg), std::invalid_argument);
  cfg = tiny_config();
  cfg.trajectories_per_epoch = 0;
  EXPECT_THROW(Trainer(trace, cfg), std::invalid_argument);
  cfg = tiny_config();
  cfg.base_policy = "BOGUS";
  EXPECT_THROW(Trainer(trace, cfg), std::invalid_argument);
}

TEST_F(TrainerTest, EpochProducesSaneStats) {
  const swf::Trace trace = workload::sdsc_sp2_like(2, 1500);
  Trainer trainer(trace, tiny_config());
  const EpochStats s = trainer.run_epoch();
  EXPECT_EQ(s.epoch, 1u);
  EXPECT_GT(s.steps, 0u);
  EXPECT_GT(s.mean_bsld, 0.0);
  EXPECT_GT(s.mean_baseline_bsld, 0.0);
  EXPECT_TRUE(std::isfinite(s.mean_reward));
  EXPECT_GT(s.ppo.policy_iters + s.ppo.value_iters, 0u);
  EXPECT_GT(s.wall_seconds, 0.0);
}

TEST_F(TrainerTest, EpochCounterAdvances) {
  const swf::Trace trace = workload::lublin_1(3, 1200);
  Trainer trainer(trace, tiny_config());
  EXPECT_EQ(trainer.run_epoch().epoch, 1u);
  EXPECT_EQ(trainer.run_epoch().epoch, 2u);
}

TEST_F(TrainerTest, TrainReturnsHistoryAndInvokesCallback) {
  const swf::Trace trace = workload::lublin_2(4, 1200);
  Trainer trainer(trace, tiny_config());
  std::size_t callbacks = 0;
  const auto history = trainer.train([&](const EpochStats&) { ++callbacks; });
  EXPECT_EQ(history.size(), 2u);
  EXPECT_EQ(callbacks, 2u);
}

TEST_F(TrainerTest, CollectionIsDeterministicInSeed) {
  const swf::Trace trace = workload::sdsc_sp2_like(5, 1500);
  const TrainerConfig cfg = tiny_config();
  Trainer a(trace, cfg);
  Trainer b(trace, cfg);
  const EpochStats sa = a.run_epoch();
  const EpochStats sb = b.run_epoch();
  // Same seeds -> identical sampled sequences, baselines, and (because
  // replicas start identical) identical collected trajectories.
  EXPECT_DOUBLE_EQ(sa.mean_baseline_bsld, sb.mean_baseline_bsld);
  EXPECT_DOUBLE_EQ(sa.mean_bsld, sb.mean_bsld);
  EXPECT_EQ(sa.steps, sb.steps);
}

TEST_F(TrainerTest, DifferentSeedsSampleDifferently) {
  const swf::Trace trace = workload::sdsc_sp2_like(5, 1500);
  TrainerConfig cfg = tiny_config();
  Trainer a(trace, cfg);
  cfg.seed = 12345;
  Trainer b(trace, cfg);
  EXPECT_NE(a.run_epoch().mean_baseline_bsld, b.run_epoch().mean_baseline_bsld);
}

TEST_F(TrainerTest, AgentParametersChangeAfterTraining) {
  const swf::Trace trace = workload::lublin_1(6, 1200);
  Trainer trainer(trace, tiny_config());
  const auto& model =
      dynamic_cast<const KernelActorCritic&>(trainer.agent().model());
  const nn::Tensor before = model.policy_net().parameters()[0]->value;
  trainer.run_epoch();
  const nn::Tensor after = model.policy_net().parameters()[0]->value;
  EXPECT_GT(nn::Tensor::max_abs_diff(before, after), 0.0);
}

TEST_F(TrainerTest, MaskDelayingModeTrainsToo) {
  const swf::Trace trace = workload::sdsc_sp2_like(7, 1500);
  TrainerConfig cfg = tiny_config();
  cfg.env.delay_rule = DelayRule::HardMask;
  Trainer trainer(trace, cfg);
  const EpochStats s = trainer.run_epoch();
  EXPECT_GT(s.steps, 0u);
  // Hard masking: no admissibility penalties, so the per-episode reward
  // is just the terminal improvement, bounded by 1 in magnitude from
  // above.
  EXPECT_LT(s.mean_reward, 1.0 + 1e-9);
}

TEST_F(TrainerTest, GreedyEvaluationIsRecordedAndDeterministic) {
  const swf::Trace trace = workload::sdsc_sp2_like(9, 1500);
  TrainerConfig cfg = tiny_config();
  cfg.eval_every = 1;
  cfg.eval_samples = 3;
  cfg.eval_sample_jobs = 256;
  Trainer trainer(trace, cfg);
  const double direct = trainer.evaluate_greedy();
  EXPECT_GT(direct, 0.0);
  // Fixed held-out seeds: re-evaluating the same agent is identical.
  EXPECT_DOUBLE_EQ(trainer.evaluate_greedy(), direct);
  const EpochStats s = trainer.run_epoch();
  (void)s;
  const auto history = trainer.train();
  for (const auto& h : history) EXPECT_FALSE(std::isnan(h.eval_bsld));
}

TEST_F(TrainerTest, KeepBestRestoresBestCheckpoint) {
  const swf::Trace trace = workload::sdsc_sp2_like(10, 1500);
  TrainerConfig cfg = tiny_config();
  cfg.epochs = 3;
  cfg.eval_every = 1;
  cfg.eval_samples = 3;
  cfg.eval_sample_jobs = 256;
  cfg.keep_best = true;
  Trainer trainer(trace, cfg);
  const auto history = trainer.train();
  double best = history[0].eval_bsld;
  for (const auto& h : history) best = std::min(best, h.eval_bsld);
  // The restored agent evaluates exactly at the best recorded value.
  EXPECT_DOUBLE_EQ(trainer.evaluate_greedy(), best);
}

TEST_F(TrainerTest, PenaltyModeGetsStopActionAutomatically) {
  const swf::Trace trace = workload::sdsc_sp2_like(11, 1200);
  TrainerConfig cfg = tiny_config();
  cfg.env.delay_rule = DelayRule::EstimatePenalty;
  Trainer trainer(trace, cfg);
  EXPECT_TRUE(trainer.agent().config().obs.stop_action);
  EXPECT_FALSE(trainer.agent().config().obs.mask_inadmissible);
}

TEST_F(TrainerTest, HardMaskModeMarksAgentConfig) {
  const swf::Trace trace = workload::sdsc_sp2_like(11, 1200);
  TrainerConfig cfg = tiny_config();
  cfg.env.delay_rule = DelayRule::HardMask;
  Trainer trainer(trace, cfg);
  EXPECT_TRUE(trainer.agent().config().obs.mask_inadmissible);
}

TEST_F(TrainerTest, SjfBasePolicySupported) {
  const swf::Trace trace = workload::sdsc_sp2_like(8, 1500);
  TrainerConfig cfg = tiny_config();
  cfg.base_policy = "SJF";
  Trainer trainer(trace, cfg);
  EXPECT_GT(trainer.run_epoch().steps, 0u);
}

}  // namespace
}  // namespace rlbf::core
