#include "core/networks.h"

#include <gtest/gtest.h>

namespace rlbf::core {
namespace {

ObservationConfig small_obs(bool padded = false) {
  ObservationConfig cfg;
  cfg.max_obsv_size = 8;
  cfg.value_obsv_size = 4;
  cfg.pad_policy_obs = padded;
  return cfg;
}

TEST(KernelNet, LogitsShapeFollowsRows) {
  util::Rng rng(1);
  KernelActorCritic model(small_obs(), NetworkConfig{}, rng);
  for (std::size_t rows : {1u, 3u, 8u, 20u}) {
    const nn::Tensor obs = nn::Tensor::randn(rows, ObservationConfig::kFeatures, rng);
    const nn::Tensor logits = model.policy_logits_nograd(obs);
    EXPECT_EQ(logits.rows(), rows);
    EXPECT_EQ(logits.cols(), 1u);
  }
}

TEST(KernelNet, ScoresAreRowIndependent) {
  // The kernel property: permuting observation rows permutes the scores.
  util::Rng rng(2);
  KernelActorCritic model(small_obs(), NetworkConfig{}, rng);
  const nn::Tensor obs = nn::Tensor::randn(5, ObservationConfig::kFeatures, rng);
  const nn::Tensor logits = model.policy_logits_nograd(obs);

  nn::Tensor reversed(5, ObservationConfig::kFeatures);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < obs.cols(); ++c) {
      reversed.at(r, c) = obs.at(4 - r, c);
    }
  }
  const nn::Tensor rev_logits = model.policy_logits_nograd(reversed);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(rev_logits.at(r, 0), logits.at(4 - r, 0), 1e-12);
  }
}

TEST(KernelNet, GraphAndNogradAgree) {
  util::Rng rng(3);
  KernelActorCritic model(small_obs(), NetworkConfig{}, rng);
  const nn::Tensor obs = nn::Tensor::randn(6, ObservationConfig::kFeatures, rng);
  EXPECT_LT(nn::Tensor::max_abs_diff(model.policy_logits(obs)->value,
                                     model.policy_logits_nograd(obs)),
            1e-12);
  const nn::Tensor vobs = nn::Tensor::randn(1, small_obs().value_feature_dim(), rng);
  EXPECT_NEAR(model.value(vobs)->value.item(), model.value_nograd(vobs), 1e-12);
}

TEST(KernelNet, PolicyAndValueParametersAreDisjoint) {
  util::Rng rng(4);
  KernelActorCritic model(small_obs(), NetworkConfig{}, rng);
  const auto p = model.policy_parameters();
  const auto v = model.value_parameters();
  EXPECT_FALSE(p.empty());
  EXPECT_FALSE(v.empty());
  for (const auto& a : p) {
    for (const auto& b : v) EXPECT_NE(a.get(), b.get());
  }
}

TEST(KernelNet, CloneAndSyncRoundTrip) {
  util::Rng rng(5);
  KernelActorCritic model(small_obs(), NetworkConfig{}, rng);
  auto copy = model.clone();
  const nn::Tensor obs = nn::Tensor::randn(4, ObservationConfig::kFeatures, rng);
  EXPECT_LT(nn::Tensor::max_abs_diff(copy->policy_logits_nograd(obs),
                                     model.policy_logits_nograd(obs)),
            1e-15);
  // Perturb the clone, then sync back from the original.
  copy->policy_parameters()[0]->value.fill(0.77);
  EXPECT_GT(nn::Tensor::max_abs_diff(copy->policy_logits_nograd(obs),
                                     model.policy_logits_nograd(obs)),
            1e-9);
  copy->sync_from(model);
  EXPECT_LT(nn::Tensor::max_abs_diff(copy->policy_logits_nograd(obs),
                                     model.policy_logits_nograd(obs)),
            1e-15);
}

TEST(KernelNet, RejectsMismatchedLoadedNetworks) {
  util::Rng rng(6);
  nn::Mlp wrong_policy({5, 4, 1}, nn::Activation::Relu, rng);  // wrong input dim
  nn::Mlp value({small_obs().value_feature_dim(), 8, 1}, nn::Activation::Relu, rng);
  EXPECT_THROW(KernelActorCritic(small_obs(), std::move(wrong_policy), std::move(value)),
               std::invalid_argument);
}

TEST(FlatNet, RequiresPaddedObservations) {
  util::Rng rng(7);
  EXPECT_THROW(FlatActorCritic(small_obs(false), NetworkConfig{}, rng),
               std::invalid_argument);
}

TEST(FlatNet, EmitsMaxObsvLogits) {
  util::Rng rng(8);
  const ObservationConfig cfg = small_obs(true);
  FlatActorCritic model(cfg, NetworkConfig{}, rng);
  const nn::Tensor obs =
      nn::Tensor::randn(cfg.max_obsv_size, ObservationConfig::kFeatures, rng);
  const nn::Tensor logits = model.policy_logits_nograd(obs);
  EXPECT_EQ(logits.rows(), cfg.max_obsv_size);
  EXPECT_EQ(logits.cols(), 1u);
  EXPECT_LT(nn::Tensor::max_abs_diff(model.policy_logits(obs)->value, logits), 1e-12);
}

TEST(FlatNet, RejectsUnpaddedInput) {
  util::Rng rng(9);
  const ObservationConfig cfg = small_obs(true);
  FlatActorCritic model(cfg, NetworkConfig{}, rng);
  const nn::Tensor obs = nn::Tensor::randn(3, ObservationConfig::kFeatures, rng);
  EXPECT_THROW(model.policy_logits(obs), std::invalid_argument);
}

TEST(FlatNet, IsOrderSensitiveUnlikeKernel) {
  // The flat MLP reads absolute positions, so permuting rows does NOT
  // simply permute scores — this is exactly what ablation A1 probes.
  util::Rng rng(10);
  const ObservationConfig cfg = small_obs(true);
  FlatActorCritic model(cfg, NetworkConfig{}, rng);
  nn::Tensor obs =
      nn::Tensor::randn(cfg.max_obsv_size, ObservationConfig::kFeatures, rng);
  const nn::Tensor logits = model.policy_logits_nograd(obs);
  nn::Tensor swapped = obs;
  for (std::size_t c = 0; c < obs.cols(); ++c) {
    std::swap(swapped.at(0, c), swapped.at(1, c));
  }
  const nn::Tensor swapped_logits = model.policy_logits_nograd(swapped);
  double permuted_diff = std::abs(swapped_logits.at(0, 0) - logits.at(1, 0)) +
                         std::abs(swapped_logits.at(1, 0) - logits.at(0, 0));
  EXPECT_GT(permuted_diff, 1e-9);
}

TEST(Networks, SyncFromWrongTypeThrows) {
  util::Rng rng(11);
  KernelActorCritic kernel(small_obs(), NetworkConfig{}, rng);
  FlatActorCritic flat(small_obs(true), NetworkConfig{}, rng);
  EXPECT_THROW(kernel.sync_from(flat), std::invalid_argument);
  EXPECT_THROW(flat.sync_from(kernel), std::invalid_argument);
}

}  // namespace
}  // namespace rlbf::core
