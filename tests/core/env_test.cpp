#include "core/backfill_env.h"

#include <gtest/gtest.h>

#include "context_fixture.h"
#include "sched/policies.h"
#include "sched/scheduler.h"
#include "workload/presets.h"

namespace rlbf::core {
namespace {

using testing::ContextFixture;
using testing::make_job;

AgentConfig small_config() {
  AgentConfig cfg;
  cfg.obs.max_obsv_size = 32;
  cfg.obs.value_obsv_size = 4;
  return cfg;
}

/// A fixture where the only candidate (200 s, 2 procs, extra 0) would
/// delay the rjob's reservation.
ContextFixture delaying_opportunity() {
  return ContextFixture({make_job(1, 0, 100, 6, 100), make_job(2, 10, 100, 10, 100),
                         make_job(3, 20, 200, 2, 200)},
                        10, {{0, 0}}, {1, 2}, 50);
}

TEST(TrainingEnv, RequiresBaselineBeforeEpisode) {
  Agent agent(small_config(), 1);
  TrainingEnv env(agent, EnvConfig{}, util::Rng(1));
  swf::Trace t("t", 4, {});
  EXPECT_THROW(env.episode_begin(t), std::logic_error);
}

TEST(TrainingEnv, RejectsNonPositiveBaseline) {
  Agent agent(small_config(), 1);
  TrainingEnv env(agent, EnvConfig{}, util::Rng(1));
  EXPECT_THROW(env.set_baseline_bsld(0.0), std::invalid_argument);
  EXPECT_THROW(env.set_baseline_bsld(-1.0), std::invalid_argument);
}

TEST(TrainingEnv, ChooseOutsideEpisodeThrows) {
  Agent agent(small_config(), 1);
  TrainingEnv env(agent, EnvConfig{}, util::Rng(1));
  const ContextFixture fx = delaying_opportunity();
  const auto ctx = fx.context();
  EXPECT_THROW(env.choose(ctx), std::logic_error);
}

TEST(TrainingEnv, RecordsStepsWithDelayPenalty) {
  Agent agent(small_config(), 1);
  EnvConfig cfg;
  cfg.delay_rule = DelayRule::EstimatePenalty;  // the paper's mechanism
  cfg.delay_penalty = 2.5;
  TrainingEnv env(agent, cfg, util::Rng(1));
  env.set_baseline_bsld(10.0);
  const ContextFixture fx = delaying_opportunity();
  swf::Trace dummy("d", 10, {});
  env.episode_begin(dummy);
  const auto ctx = fx.context();
  const auto pick = env.choose(ctx);
  ASSERT_TRUE(pick.has_value());
  // The only candidate delays the reservation: the step carries the
  // negative penalty immediately.
  env.episode_end({});
  const rl::Episode ep = env.take_episode();
  ASSERT_EQ(ep.steps.size(), 1u);
  EXPECT_DOUBLE_EQ(ep.steps[0].reward, -2.5);
  EXPECT_EQ(ep.steps[0].mask.size(), ep.steps[0].policy_obs.rows());
}

TEST(TrainingEnv, MaskDelayingHidesInadmissibleCandidates) {
  Agent agent(small_config(), 1);
  EnvConfig cfg;
  cfg.delay_rule = DelayRule::HardMask;
  TrainingEnv env(agent, cfg, util::Rng(1));
  env.set_baseline_bsld(10.0);
  swf::Trace dummy("d", 10, {});
  env.episode_begin(dummy);
  const ContextFixture fx = delaying_opportunity();
  const auto ctx = fx.context();
  // The only candidate is inadmissible, so the env must decline.
  EXPECT_FALSE(env.choose(ctx).has_value());
  env.episode_end({});
  EXPECT_TRUE(env.take_episode().steps.empty());
}

TEST(TrainingEnv, TerminalRewardIsRelativeImprovement) {
  Agent agent(small_config(), 2);
  EnvConfig cfg;
  cfg.delay_rule = DelayRule::EstimatePenalty;  // keep the candidate selectable
  TrainingEnv env(agent, cfg, util::Rng(2));
  env.set_baseline_bsld(20.0);
  swf::Trace dummy("d", 10, {});
  env.episode_begin(dummy);
  const ContextFixture fx = delaying_opportunity();
  const auto ctx = fx.context();
  (void)env.choose(ctx);

  // One finished job with known bsld: wait 90, run 10 -> (90+10)/10 = 10.
  sim::JobResult r;
  r.submit_time = 0;
  r.start_time = 90;
  r.end_time = 100;
  r.procs = 1;
  env.episode_end({r});
  EXPECT_DOUBLE_EQ(env.last_bsld(), 10.0);
  const rl::Episode ep = env.take_episode();
  // Terminal reward (20 - 10) / 20 = 0.5 added on top of the -delay
  // penalty of the same (only) step.
  EXPECT_DOUBLE_EQ(ep.steps.back().reward, -2.0 + 0.5);
}

TEST(TrainingEnv, BaselineMustBeResetEachEpisode) {
  Agent agent(small_config(), 1);
  TrainingEnv env(agent, EnvConfig{}, util::Rng(1));
  env.set_baseline_bsld(10.0);
  swf::Trace dummy("d", 10, {});
  env.episode_begin(dummy);
  env.episode_end({});
  (void)env.take_episode();
  // Second episode without a fresh baseline: rejected.
  EXPECT_THROW(env.episode_begin(dummy), std::logic_error);
}

TEST(TrainingEnv, TakeEpisodeOnlyAfterEnd) {
  Agent agent(small_config(), 1);
  TrainingEnv env(agent, EnvConfig{}, util::Rng(1));
  EXPECT_THROW(env.take_episode(), std::logic_error);
  env.set_baseline_bsld(5.0);
  swf::Trace dummy("d", 10, {});
  env.episode_begin(dummy);
  EXPECT_THROW(env.take_episode(), std::logic_error);
  env.episode_end({});
  EXPECT_NO_THROW(env.take_episode());
  EXPECT_THROW(env.take_episode(), std::logic_error);  // consumed
}

TEST(TrainingEnv, StopActionEndsOpportunityAndIsRecorded) {
  AgentConfig acfg = small_config();
  acfg.obs.stop_action = true;
  Agent agent(acfg, 4);
  EnvConfig cfg;
  cfg.delay_rule = DelayRule::EstimatePenalty;
  TrainingEnv env(agent, cfg, util::Rng(1));
  env.set_baseline_bsld(10.0);
  swf::Trace dummy("d", 10, {});
  env.episode_begin(dummy);
  const ContextFixture fx = delaying_opportunity();
  const auto ctx = fx.context();
  // Sample until the stop action fires at least once (2 valid actions,
  // near-uniform init: a handful of tries suffices).
  bool stopped = false;
  for (int i = 0; i < 64 && !stopped; ++i) stopped = !env.choose(ctx).has_value();
  EXPECT_TRUE(stopped);
  env.episode_end({});
  const rl::Episode ep = env.take_episode();
  EXPECT_GE(ep.steps.size(), 1u);
  // Stop steps carry no delay penalty.
  EXPECT_DOUBLE_EQ(ep.steps.back().reward, 0.0);
}

TEST(TrainingEnv, ActualDelayPenaltyChargesRetroactively) {
  Agent agent(small_config(), 5);
  EnvConfig cfg;
  cfg.delay_rule = DelayRule::ActualDelayPenalty;
  cfg.delay_penalty = 1.5;
  TrainingEnv env(agent, cfg, util::Rng(5));
  env.set_baseline_bsld(10.0);
  swf::Trace dummy("d", 10, {});
  env.episode_begin(dummy);
  const ContextFixture fx = delaying_opportunity();
  const auto ctx = fx.context();
  ASSERT_TRUE(env.choose(ctx).has_value());  // picks the only candidate

  // rjob is trace index 1; its reservation (shadow) was t=100. Report an
  // actual start after the shadow: the step must be charged.
  std::vector<sim::JobResult> results(3);
  results[1].submit_time = 10;
  results[1].start_time = 150;  // delayed past shadow 100
  results[1].end_time = 250;
  results[1].procs = 10;
  env.episode_end(results);
  rl::Episode ep = env.take_episode();
  ASSERT_EQ(ep.steps.size(), 1u);
  // bslds: 1, (140+100)/100 = 2.4, 1 -> mean 1.4667; terminal reward
  // (10 - 1.4667)/10 = 0.8533; total = -1.5 + 0.8533.
  EXPECT_NEAR(ep.steps[0].reward, -1.5 + 0.85333, 1e-3);

  // Same pick, but the rjob started on time: no charge.
  env.set_baseline_bsld(10.0);
  env.episode_begin(dummy);
  ASSERT_TRUE(env.choose(ctx).has_value());
  results[1].start_time = 90;
  results[1].end_time = 190;
  env.episode_end(results);
  ep = env.take_episode();
  // bslds: 1, 1.8, 1 -> mean 1.2667; terminal (10 - 1.2667)/10, no penalty.
  EXPECT_NEAR(ep.steps[0].reward, 0.87333, 1e-3);
}

TEST(TrainingEnv, FullSimulationCollectsCoherentEpisode) {
  const swf::Trace trace = workload::sdsc_sp2_like(5, 300);
  Agent agent(small_config(), 3);
  TrainingEnv env(agent, EnvConfig{}, util::Rng(3));
  env.set_baseline_bsld(50.0);
  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  const auto results = sim::simulate(trace, fcfs, est, &env);
  EXPECT_EQ(results.size(), trace.size());
  const rl::Episode ep = env.take_episode();
  EXPECT_GT(ep.steps.size(), 0u);
  for (const auto& s : ep.steps) {
    EXPECT_EQ(s.mask.size(), s.policy_obs.rows());
    EXPECT_EQ(s.value_obs.cols(), small_config().obs.value_feature_dim());
    EXPECT_LE(s.log_prob, 0.0);
    EXPECT_EQ(s.mask[s.action], 1);
  }
  EXPECT_GT(env.last_bsld(), 0.0);
}

TEST(TrainingEnv, ObjectiveValueMatchesMetrics) {
  std::vector<sim::JobResult> results(2);
  results[0].submit_time = 0;
  results[0].start_time = 100;   // wait 100
  results[0].end_time = 200;     // run 100, turnaround 200, bsld 2
  results[0].procs = 1;
  results[1].submit_time = 0;
  results[1].start_time = 0;     // wait 0
  results[1].end_time = 50;      // run 50, turnaround 50, bsld 1
  results[1].procs = 1;
  EXPECT_DOUBLE_EQ(objective_value(RewardObjective::BoundedSlowdown, results), 1.5);
  EXPECT_DOUBLE_EQ(objective_value(RewardObjective::AvgWaitTime, results), 50.0);
  EXPECT_DOUBLE_EQ(objective_value(RewardObjective::AvgTurnaround, results), 125.0);
}

TEST(TrainingEnv, AlternativeObjectiveDrivesTerminalReward) {
  Agent agent(small_config(), 6);
  EnvConfig cfg;
  cfg.delay_rule = DelayRule::EstimatePenalty;
  cfg.delay_penalty = 0.0;  // isolate the terminal term
  cfg.objective = RewardObjective::AvgWaitTime;
  TrainingEnv env(agent, cfg, util::Rng(6));
  env.set_baseline_bsld(200.0);  // baseline average wait: 200 s
  swf::Trace dummy("d", 10, {});
  env.episode_begin(dummy);
  const ContextFixture fx = delaying_opportunity();
  const auto ctx = fx.context();
  ASSERT_TRUE(env.choose(ctx).has_value());
  sim::JobResult r;
  r.submit_time = 0;
  r.start_time = 100;  // wait 100 s -> improvement (200-100)/200 = 0.5
  r.end_time = 150;
  r.procs = 1;
  env.episode_end({r});
  EXPECT_DOUBLE_EQ(env.last_bsld(), 100.0);
  const rl::Episode ep = env.take_episode();
  EXPECT_DOUBLE_EQ(ep.steps.back().reward, 0.5);
}

TEST(TrainingEnv, GreedyModeIsDeterministic) {
  const swf::Trace trace = workload::sdsc_sp2_like(6, 300);
  EnvConfig cfg;
  cfg.sample_actions = false;
  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  double bslds[2];
  for (int rep = 0; rep < 2; ++rep) {
    Agent agent(small_config(), 9);
    TrainingEnv env(agent, cfg, util::Rng(static_cast<std::uint64_t>(rep) + 100));
    env.set_baseline_bsld(50.0);
    (void)sim::simulate(trace, fcfs, est, &env);
    bslds[rep] = env.last_bsld();
  }
  // Different rngs, same greedy decisions: identical schedules.
  EXPECT_DOUBLE_EQ(bslds[0], bslds[1]);
}

}  // namespace
}  // namespace rlbf::core
