// Transport-parity proof at the trainer level: for each algorithm
// (PPO, DQN, REINFORCE) the epochs produced through the collector seam
// are bit-identical across thread counts — same stats to the last bit,
// same agent parameters byte-for-byte after training. This is the
// in-process half of the determinism contract in rl/collect.h; the
// cli_rollout_workers smoke extends it across process boundaries.
#include "core/collection.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/alt_trainers.h"
#include "core/trainer.h"
#include "util/log.h"
#include "workload/presets.h"

namespace rlbf::core {
namespace {

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  std::ostringstream msg;
  msg.precision(17);
  msg << a << " and " << b << " differ in bits";
  return ::testing::AssertionFailure() << msg.str();
}

/// The agent's full persisted form (parameters in exact %.17g text):
/// equal strings mean the trained models are interchangeable on disk.
std::string agent_bytes(const Agent& agent, const std::string& tag) {
  const std::string path = ::testing::TempDir() + "/parity_" + tag + ".model";
  if (!agent.save(path)) ADD_FAILURE() << "cannot save " << path;
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

class CollectionParityTest : public ::testing::Test {
 protected:
  void SetUp() override { util::set_log_level(util::LogLevel::Warn); }
  void TearDown() override { util::set_log_level(util::LogLevel::Info); }
};

/// Shared shrunken budget: 2 epochs of 6×64-job sequences, evaluation
/// off (held-out evals add wall time but no transport coverage).
template <typename Config>
Config tiny(std::size_t threads) {
  Config cfg;
  cfg.epochs = 2;
  cfg.trajectories_per_epoch = 6;
  cfg.jobs_per_trajectory = 64;
  cfg.agent.obs.value_obsv_size = 8;
  cfg.seed = 7;
  cfg.threads = threads;
  cfg.eval_every = 0;
  cfg.keep_best = false;
  return cfg;
}

TEST_F(CollectionParityTest, PpoEpochsAreBitIdenticalAcrossThreadCounts) {
  const swf::Trace trace = workload::sdsc_sp2_like(2, 1500);
  auto cfg1 = tiny<TrainerConfig>(1);
  cfg1.ppo.train_iters = 5;
  cfg1.ppo.minibatch_size = 128;
  auto cfg2 = cfg1;
  cfg2.threads = 2;
  Trainer a(trace, cfg1);
  Trainer b(trace, cfg2);
  for (std::size_t epoch = 0; epoch < 2; ++epoch) {
    const EpochStats sa = a.run_epoch();
    const EpochStats sb = b.run_epoch();
    EXPECT_EQ(sa.epoch, sb.epoch);
    EXPECT_EQ(sa.steps, sb.steps);
    EXPECT_TRUE(bits_equal(sa.mean_reward, sb.mean_reward));
    EXPECT_TRUE(bits_equal(sa.mean_bsld, sb.mean_bsld));
    EXPECT_TRUE(bits_equal(sa.mean_baseline_bsld, sb.mean_baseline_bsld));
    EXPECT_EQ(sa.ppo.policy_iters, sb.ppo.policy_iters);
    EXPECT_EQ(sa.ppo.value_iters, sb.ppo.value_iters);
  }
  EXPECT_EQ(agent_bytes(a.agent(), "ppo_t1"), agent_bytes(b.agent(), "ppo_t2"));
}

TEST_F(CollectionParityTest, DqnEpochsAreBitIdenticalAcrossThreadCounts) {
  const swf::Trace trace = workload::sdsc_sp2_like(3, 1500);
  const auto cfg1 = tiny<DqnTrainerConfig>(1);
  auto cfg2 = cfg1;
  cfg2.threads = 2;
  DqnTrainer a(trace, cfg1);
  DqnTrainer b(trace, cfg2);
  for (std::size_t epoch = 0; epoch < 2; ++epoch) {
    const AltEpochStats sa = a.run_epoch();
    const AltEpochStats sb = b.run_epoch();
    EXPECT_EQ(sa.epoch, sb.epoch);
    EXPECT_EQ(sa.steps, sb.steps);
    EXPECT_TRUE(bits_equal(sa.mean_reward, sb.mean_reward));
    EXPECT_TRUE(bits_equal(sa.mean_bsld, sb.mean_bsld));
    EXPECT_TRUE(bits_equal(sa.mean_baseline_bsld, sb.mean_baseline_bsld));
    EXPECT_TRUE(bits_equal(sa.loss, sb.loss));
    EXPECT_TRUE(bits_equal(sa.epsilon, sb.epsilon));
  }
  EXPECT_EQ(agent_bytes(a.agent(), "dqn_t1"), agent_bytes(b.agent(), "dqn_t2"));
}

TEST_F(CollectionParityTest, ReinforceEpochsAreBitIdenticalAcrossThreadCounts) {
  const swf::Trace trace = workload::lublin_1(4, 1200);
  const auto cfg1 = tiny<ReinforceTrainerConfig>(1);
  auto cfg2 = cfg1;
  cfg2.threads = 2;
  ReinforceTrainer a(trace, cfg1);
  ReinforceTrainer b(trace, cfg2);
  for (std::size_t epoch = 0; epoch < 2; ++epoch) {
    const AltEpochStats sa = a.run_epoch();
    const AltEpochStats sb = b.run_epoch();
    EXPECT_EQ(sa.epoch, sb.epoch);
    EXPECT_EQ(sa.steps, sb.steps);
    EXPECT_TRUE(bits_equal(sa.mean_reward, sb.mean_reward));
    EXPECT_TRUE(bits_equal(sa.mean_bsld, sb.mean_bsld));
    EXPECT_TRUE(bits_equal(sa.mean_baseline_bsld, sb.mean_baseline_bsld));
    EXPECT_TRUE(bits_equal(sa.loss, sb.loss));
  }
  EXPECT_EQ(agent_bytes(a.agent(), "rf_t1"), agent_bytes(b.agent(), "rf_t2"));
}

TEST_F(CollectionParityTest, SwappingInAnEquivalentCollectorChangesNothing) {
  // set_collector is the transport seam the process fan-out plugs into:
  // an externally-supplied ThreadCollector must reproduce the built-in
  // default exactly, and nullptr must restore the default.
  const swf::Trace trace = workload::sdsc_sp2_like(5, 1500);
  auto cfg = tiny<TrainerConfig>(2);
  cfg.ppo.train_iters = 5;
  cfg.ppo.minibatch_size = 128;
  Trainer with_default(trace, cfg);
  Trainer with_external(trace, cfg);
  util::ThreadPool external_pool(2);
  rl::ThreadCollector external(external_pool);
  with_external.set_collector(&external);
  const EpochStats sa = with_default.run_epoch();
  const EpochStats sb = with_external.run_epoch();
  EXPECT_EQ(sa.steps, sb.steps);
  EXPECT_TRUE(bits_equal(sa.mean_reward, sb.mean_reward));
  EXPECT_TRUE(bits_equal(sa.mean_bsld, sb.mean_bsld));
  with_external.set_collector(nullptr);  // back to the built-in default
  const EpochStats sa2 = with_default.run_epoch();
  const EpochStats sb2 = with_external.run_epoch();
  EXPECT_TRUE(bits_equal(sa2.mean_bsld, sb2.mean_bsld));
  EXPECT_EQ(agent_bytes(with_default.agent(), "seam_a"),
            agent_bytes(with_external.agent(), "seam_b"));
}

}  // namespace
}  // namespace rlbf::core
