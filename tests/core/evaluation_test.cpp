#include "core/evaluation.h"

#include <gtest/gtest.h>

#include "core/rl_backfill.h"
#include "workload/presets.h"

namespace rlbf::core {
namespace {

EvalProtocol small_protocol() {
  EvalProtocol p;
  p.samples = 5;
  p.sample_jobs = 256;
  p.seed = 9;
  return p;
}

TEST(Evaluation, SpecEvaluationProducesOneValuePerSample) {
  const swf::Trace trace = workload::sdsc_sp2_like(21, 1500);
  const sched::SchedulerSpec spec{"FCFS", sched::BackfillKind::Easy,
                                  sched::EstimateKind::RequestTime};
  const EvalResult r = evaluate_spec(trace, spec, small_protocol());
  ASSERT_EQ(r.samples.size(), 5u);
  for (double s : r.samples) EXPECT_GE(s, 1.0);
  EXPECT_GE(r.mean, 1.0);
  EXPECT_LE(r.ci_lo, r.mean);
  EXPECT_GE(r.ci_hi, r.mean);
}

TEST(Evaluation, IsDeterministicInProtocolSeed) {
  const swf::Trace trace = workload::sdsc_sp2_like(21, 1500);
  const sched::SchedulerSpec spec{"SJF", sched::BackfillKind::Easy,
                                  sched::EstimateKind::RequestTime};
  const EvalResult a = evaluate_spec(trace, spec, small_protocol());
  const EvalResult b = evaluate_spec(trace, spec, small_protocol());
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_DOUBLE_EQ(a.ci_lo, b.ci_lo);
  EXPECT_DOUBLE_EQ(a.ci_hi, b.ci_hi);
}

TEST(Evaluation, AllConfigurationsSeeTheSameSequences) {
  // A configuration that cannot affect sampling (no backfilling) and one
  // that can (EASY) must still draw identical sequences: the EASY run's
  // bsld can only differ because of scheduling, and with a no-op run on
  // the same seed the sample count and determinism checks above pin the
  // stream. Here we verify via the no-backfill spec twice under
  // different labels.
  const swf::Trace trace = workload::lublin_1(22, 1500);
  const sched::SchedulerSpec a{"FCFS", sched::BackfillKind::None,
                               sched::EstimateKind::RequestTime};
  const sched::SchedulerSpec b{"FCFS", sched::BackfillKind::None,
                               sched::EstimateKind::ActualRuntime};
  // Without backfilling, the estimator is never consulted: identical.
  const EvalResult ra = evaluate_spec(trace, a, small_protocol());
  const EvalResult rb = evaluate_spec(trace, b, small_protocol());
  EXPECT_EQ(ra.samples, rb.samples);
}

TEST(Evaluation, AgentEvaluationMatchesManualLoop) {
  const swf::Trace trace = workload::sdsc_sp2_like(23, 1500);
  AgentConfig cfg;
  cfg.obs.value_obsv_size = 8;
  const Agent agent(cfg, 3);
  const EvalProtocol protocol = small_protocol();
  const EvalResult via_api = evaluate_agent(trace, agent, "FCFS", protocol);

  // Manual replication of the documented protocol.
  util::Rng rng(protocol.seed ^ 0xe5a1e5a1e5a1ull);
  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  for (std::size_t s = 0; s < protocol.samples; ++s) {
    const swf::Trace seq = trace.sample(protocol.sample_jobs, rng);
    RlBackfillChooser chooser(agent);
    const auto out = sched::run_schedule(seq, fcfs, est, &chooser);
    EXPECT_DOUBLE_EQ(via_api.samples[s], out.metrics.avg_bounded_slowdown);
  }
}

TEST(Evaluation, SingleSampleHasDegenerateCi) {
  const swf::Trace trace = workload::lublin_2(24, 800);
  EvalProtocol p = small_protocol();
  p.samples = 1;
  const sched::SchedulerSpec spec{"FCFS", sched::BackfillKind::Easy,
                                  sched::EstimateKind::RequestTime};
  const EvalResult r = evaluate_spec(trace, spec, p);
  EXPECT_DOUBLE_EQ(r.ci_lo, r.mean);
  EXPECT_DOUBLE_EQ(r.ci_hi, r.mean);
}

TEST(Evaluation, BackfillKindsRankSensibly) {
  // On a congested trace: EASY <= no-backfill in mean bsld (property of
  // these workloads, checked with matched sequences).
  const swf::Trace trace = workload::sdsc_sp2_like(25, 2000);
  const sched::SchedulerSpec none{"FCFS", sched::BackfillKind::None,
                                  sched::EstimateKind::RequestTime};
  const sched::SchedulerSpec easy{"FCFS", sched::BackfillKind::Easy,
                                  sched::EstimateKind::RequestTime};
  const double none_bsld = evaluate_spec(trace, none, small_protocol()).mean;
  const double easy_bsld = evaluate_spec(trace, easy, small_protocol()).mean;
  EXPECT_LT(easy_bsld, none_bsld);
}

}  // namespace
}  // namespace rlbf::core
