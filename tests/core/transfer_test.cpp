// Warm-start / transfer training (Trainer's initial-agent constructor):
// the Table-5 generality setting made actionable — take a model trained
// on trace X and fine-tune it on trace Y.
#include <gtest/gtest.h>

#include <cmath>

#include "core/networks.h"
#include "core/trainer.h"
#include "util/log.h"
#include "workload/presets.h"

namespace rlbf::core {
namespace {

TrainerConfig tiny_config(std::uint64_t seed = 7) {
  TrainerConfig cfg;
  cfg.epochs = 2;
  cfg.trajectories_per_epoch = 8;
  cfg.jobs_per_trajectory = 96;
  cfg.ppo.train_iters = 5;
  cfg.ppo.minibatch_size = 128;
  cfg.agent.obs.value_obsv_size = 8;
  cfg.threads = 4;
  cfg.seed = seed;
  return cfg;
}

const nn::Tensor& first_policy_param(const Agent& agent) {
  return dynamic_cast<const KernelActorCritic&>(agent.model())
      .policy_net()
      .parameters()[0]
      ->value;
}

class TransferTest : public ::testing::Test {
 protected:
  void SetUp() override { util::set_log_level(util::LogLevel::Warn); }
  void TearDown() override { util::set_log_level(util::LogLevel::Info); }
};

TEST_F(TransferTest, WarmStartCopiesInitialParameters) {
  const swf::Trace source = workload::lublin_1(1, 1200);
  Trainer pre(source, tiny_config());
  pre.run_epoch();

  const swf::Trace target = workload::lublin_2(2, 1200);
  Trainer fine(target, tiny_config(), pre.agent());
  EXPECT_EQ(nn::Tensor::max_abs_diff(first_policy_param(pre.agent()),
                                     first_policy_param(fine.agent())),
            0.0);
}

TEST_F(TransferTest, WarmStartIsACopyNotAnAlias) {
  const swf::Trace source = workload::lublin_1(3, 1200);
  Trainer pre(source, tiny_config());
  const swf::Trace target = workload::lublin_2(4, 1200);
  Trainer fine(target, tiny_config(), pre.agent());
  const nn::Tensor pre_before = first_policy_param(pre.agent());
  fine.run_epoch();  // mutates only the fine-tuner's copy
  EXPECT_EQ(nn::Tensor::max_abs_diff(pre_before, first_policy_param(pre.agent())),
            0.0);
  EXPECT_GT(nn::Tensor::max_abs_diff(first_policy_param(pre.agent()),
                                     first_policy_param(fine.agent())),
            0.0);
}

TEST_F(TransferTest, InitialAgentConfigOverridesConfigAgent) {
  const swf::Trace source = workload::lublin_1(5, 1200);
  TrainerConfig src_cfg = tiny_config();
  src_cfg.agent.obs.value_obsv_size = 16;  // distinctive shape
  Trainer pre(source, src_cfg);

  TrainerConfig fine_cfg = tiny_config();
  fine_cfg.agent.obs.value_obsv_size = 8;  // would produce a different net
  Trainer fine(workload::lublin_2(6, 1200), fine_cfg, pre.agent());
  EXPECT_EQ(fine.agent().config().obs.value_obsv_size, 16u);
}

TEST_F(TransferTest, FineTuningRunsToCompletion) {
  const swf::Trace source = workload::sdsc_sp2_like(7, 1500);
  Trainer pre(source, tiny_config());
  pre.train();

  const swf::Trace target = workload::hpc2n_like(8, 1500);
  TrainerConfig fine_cfg = tiny_config(11);
  fine_cfg.eval_every = 1;
  fine_cfg.eval_samples = 2;
  fine_cfg.eval_sample_jobs = 256;
  Trainer fine(target, fine_cfg, pre.agent());
  const auto history = fine.train();
  EXPECT_EQ(history.size(), 2u);
  for (const auto& h : history) {
    EXPECT_GT(h.steps, 0u);
    EXPECT_TRUE(std::isfinite(h.mean_reward));
  }
}

TEST_F(TransferTest, WarmStartEvaluatesOnTargetImmediately) {
  // A transferred agent is deployable before any fine-tuning — the
  // zero-shot generality Table 5 measures.
  const swf::Trace source = workload::lublin_1(9, 1500);
  Trainer pre(source, tiny_config());
  pre.run_epoch();
  const swf::Trace target = workload::sdsc_sp2_like(10, 1500);
  TrainerConfig cfg = tiny_config();
  cfg.eval_samples = 2;
  cfg.eval_sample_jobs = 256;
  Trainer fine(target, cfg, pre.agent());
  const double zero_shot = fine.evaluate_greedy();
  EXPECT_GT(zero_shot, 0.0);
  EXPECT_TRUE(std::isfinite(zero_shot));
}

}  // namespace
}  // namespace rlbf::core
