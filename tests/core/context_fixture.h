// Shared helper for core tests: assembles a sim::BackfillContext over an
// explicit set of running and queued jobs, mirroring what the simulator
// passes to choosers at a backfilling opportunity.
#pragma once

#include <utility>
#include <vector>

#include "sched/runtime_estimator.h"
#include "sim/event_sim.h"

namespace rlbf::core::testing {

inline swf::Job make_job(std::int64_t id, std::int64_t submit, std::int64_t run,
                         std::int64_t procs, std::int64_t request = swf::kUnknown) {
  swf::Job j;
  j.id = id;
  j.submit_time = submit;
  j.run_time = run;
  j.requested_procs = procs;
  j.used_procs = procs;
  j.requested_time = request;
  return j;
}

class ContextFixture {
 public:
  /// `running` pairs are (trace index, start time); `queue_order` lists
  /// pending trace indices in base-policy order with the rjob first.
  ContextFixture(std::vector<swf::Job> jobs, std::int64_t machine,
                 std::vector<std::pair<std::size_t, std::int64_t>> running,
                 std::vector<std::size_t> queue_order, std::int64_t now)
      : trace("fixture", machine, std::move(jobs)),
        cluster(machine),
        queue(std::move(queue_order)),
        now(now) {
    for (const auto& [idx, start] : running) {
      cluster.start(idx, trace[idx].procs(), start, trace[idx].run_time);
    }
    for (std::size_t i = 1; i < queue.size(); ++i) {
      if (cluster.can_fit(trace[queue[i]].procs())) candidates.push_back(queue[i]);
    }
    reservation =
        sim::compute_reservation(cluster, trace, trace[queue[0]], estimator, now);
  }

  sim::BackfillContext context() const {
    return sim::BackfillContext{trace,       cluster, estimator, now,
                                queue.front(), reservation, queue, candidates};
  }

  swf::Trace trace;
  sim::ClusterState cluster;
  sched::RequestTimeEstimator estimator;
  std::vector<std::size_t> queue;
  std::vector<std::size_t> candidates;
  sim::Reservation reservation;
  std::int64_t now;
};

}  // namespace rlbf::core::testing
