#include "core/alt_trainers.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/networks.h"
#include "util/log.h"
#include "workload/presets.h"

namespace rlbf::core {
namespace {

DqnTrainerConfig tiny_dqn_config() {
  DqnTrainerConfig cfg;
  cfg.epochs = 2;
  cfg.trajectories_per_epoch = 8;
  cfg.jobs_per_trajectory = 96;
  cfg.dqn.updates_per_epoch = 5;
  cfg.dqn.batch_size = 32;
  cfg.dqn.min_replay = 32;
  cfg.agent.obs.value_obsv_size = 8;
  cfg.threads = 4;
  cfg.seed = 7;
  return cfg;
}

ReinforceTrainerConfig tiny_reinforce_config() {
  ReinforceTrainerConfig cfg;
  cfg.epochs = 2;
  cfg.trajectories_per_epoch = 8;
  cfg.jobs_per_trajectory = 96;
  cfg.reinforce.value_iters = 5;
  cfg.agent.obs.value_obsv_size = 8;
  cfg.threads = 4;
  cfg.seed = 7;
  return cfg;
}

class AltTrainersTest : public ::testing::Test {
 protected:
  void SetUp() override { util::set_log_level(util::LogLevel::Warn); }
  void TearDown() override { util::set_log_level(util::LogLevel::Info); }
};

// ---------------------------------------------------------- DqnTrainer --

TEST_F(AltTrainersTest, DqnRejectsDegenerateConfigs) {
  const swf::Trace trace = workload::lublin_1(1, 200);
  DqnTrainerConfig cfg = tiny_dqn_config();
  cfg.jobs_per_trajectory = 500;
  EXPECT_THROW(DqnTrainer(trace, cfg), std::invalid_argument);
  cfg = tiny_dqn_config();
  cfg.trajectories_per_epoch = 0;
  EXPECT_THROW(DqnTrainer(trace, cfg), std::invalid_argument);
}

TEST_F(AltTrainersTest, DqnEpochProducesSaneStats) {
  const swf::Trace trace = workload::sdsc_sp2_like(2, 1500);
  DqnTrainer trainer(trace, tiny_dqn_config());
  const AltEpochStats s = trainer.run_epoch();
  EXPECT_EQ(s.epoch, 1u);
  EXPECT_GT(s.steps, 0u);
  EXPECT_GT(s.mean_bsld, 0.0);
  EXPECT_GT(s.mean_baseline_bsld, 0.0);
  EXPECT_DOUBLE_EQ(s.epsilon, 1.0);  // first epoch of the decay
  EXPECT_TRUE(std::isfinite(s.loss));
}

TEST_F(AltTrainersTest, DqnEpsilonDecaysAcrossEpochs) {
  const swf::Trace trace = workload::lublin_1(3, 1200);
  DqnTrainerConfig cfg = tiny_dqn_config();
  cfg.dqn.epsilon_decay_epochs = 4;
  DqnTrainer trainer(trace, cfg);
  const double e1 = trainer.run_epoch().epsilon;
  const double e2 = trainer.run_epoch().epsilon;
  EXPECT_GT(e1, e2);
}

TEST_F(AltTrainersTest, DqnReplayPersistsAcrossEpochs) {
  const swf::Trace trace = workload::sdsc_sp2_like(4, 1500);
  DqnTrainer trainer(trace, tiny_dqn_config());
  trainer.run_epoch();
  const std::size_t after_one = trainer.dqn().replay().size();
  trainer.run_epoch();
  EXPECT_GT(trainer.dqn().replay().size(), after_one);
}

TEST_F(AltTrainersTest, DqnQParametersChangeAfterTraining) {
  const swf::Trace trace = workload::lublin_1(6, 1200);
  DqnTrainer trainer(trace, tiny_dqn_config());
  const auto& model =
      dynamic_cast<const KernelActorCritic&>(trainer.agent().model());
  const nn::Tensor before = model.policy_net().parameters()[0]->value;
  trainer.run_epoch();
  EXPECT_GT(nn::Tensor::max_abs_diff(before,
                                     model.policy_net().parameters()[0]->value),
            0.0);
}

TEST_F(AltTrainersTest, DqnTrainRunsHistoryCallbacksAndEval) {
  const swf::Trace trace = workload::sdsc_sp2_like(8, 1500);
  DqnTrainerConfig cfg = tiny_dqn_config();
  cfg.eval_every = 1;
  cfg.eval_samples = 2;
  cfg.eval_sample_jobs = 256;
  DqnTrainer trainer(trace, cfg);
  std::size_t callbacks = 0;
  const auto history = trainer.train([&](const AltEpochStats&) { ++callbacks; });
  EXPECT_EQ(history.size(), 2u);
  EXPECT_EQ(callbacks, 2u);
  for (const auto& h : history) EXPECT_FALSE(std::isnan(h.eval_bsld));
}

TEST_F(AltTrainersTest, DqnDeterministicCollectionInSeed) {
  const swf::Trace trace = workload::sdsc_sp2_like(5, 1500);
  const DqnTrainerConfig cfg = tiny_dqn_config();
  DqnTrainer a(trace, cfg);
  DqnTrainer b(trace, cfg);
  const AltEpochStats sa = a.run_epoch();
  const AltEpochStats sb = b.run_epoch();
  EXPECT_DOUBLE_EQ(sa.mean_baseline_bsld, sb.mean_baseline_bsld);
  EXPECT_DOUBLE_EQ(sa.mean_bsld, sb.mean_bsld);
  EXPECT_EQ(sa.steps, sb.steps);
}

TEST_F(AltTrainersTest, DqnWarmStartUsesInitialAgent) {
  const swf::Trace trace = workload::sdsc_sp2_like(9, 1500);
  const DqnTrainerConfig cfg = tiny_dqn_config();
  DqnTrainer source(trace, cfg);
  source.run_epoch();

  DqnTrainer fine_tuned(trace, cfg, source.agent());
  const auto& src =
      dynamic_cast<const KernelActorCritic&>(source.agent().model());
  const auto& dst =
      dynamic_cast<const KernelActorCritic&>(fine_tuned.agent().model());
  EXPECT_EQ(nn::Tensor::max_abs_diff(src.policy_net().parameters()[0]->value,
                                     dst.policy_net().parameters()[0]->value),
            0.0);
}

// ---------------------------------------------------- ReinforceTrainer --

TEST_F(AltTrainersTest, ReinforceRejectsDegenerateConfigs) {
  const swf::Trace trace = workload::lublin_1(1, 200);
  ReinforceTrainerConfig cfg = tiny_reinforce_config();
  cfg.jobs_per_trajectory = 500;
  EXPECT_THROW(ReinforceTrainer(trace, cfg), std::invalid_argument);
  cfg = tiny_reinforce_config();
  cfg.base_policy = "BOGUS";
  EXPECT_THROW(ReinforceTrainer(trace, cfg), std::invalid_argument);
}

TEST_F(AltTrainersTest, ReinforceEpochProducesSaneStats) {
  const swf::Trace trace = workload::sdsc_sp2_like(2, 1500);
  ReinforceTrainer trainer(trace, tiny_reinforce_config());
  const AltEpochStats s = trainer.run_epoch();
  EXPECT_EQ(s.epoch, 1u);
  EXPECT_GT(s.steps, 0u);
  EXPECT_GT(s.mean_bsld, 0.0);
  EXPECT_TRUE(std::isfinite(s.loss));
}

TEST_F(AltTrainersTest, ReinforcePolicyParametersChangeAfterEpoch) {
  const swf::Trace trace = workload::lublin_2(6, 1200);
  ReinforceTrainer trainer(trace, tiny_reinforce_config());
  const auto& model =
      dynamic_cast<const KernelActorCritic&>(trainer.agent().model());
  const nn::Tensor before = model.policy_net().parameters()[0]->value;
  trainer.run_epoch();
  EXPECT_GT(nn::Tensor::max_abs_diff(before,
                                     model.policy_net().parameters()[0]->value),
            0.0);
}

TEST_F(AltTrainersTest, ReinforceTrainReturnsHistory) {
  const swf::Trace trace = workload::lublin_1(4, 1200);
  ReinforceTrainer trainer(trace, tiny_reinforce_config());
  const auto history = trainer.train();
  EXPECT_EQ(history.size(), 2u);
  EXPECT_EQ(history[1].epoch, 2u);
}

TEST_F(AltTrainersTest, ReinforceDeterministicCollectionInSeed) {
  const swf::Trace trace = workload::sdsc_sp2_like(5, 1500);
  const ReinforceTrainerConfig cfg = tiny_reinforce_config();
  ReinforceTrainer a(trace, cfg);
  ReinforceTrainer b(trace, cfg);
  EXPECT_DOUBLE_EQ(a.run_epoch().mean_bsld, b.run_epoch().mean_bsld);
}

TEST_F(AltTrainersTest, ReinforceSjfBasePolicySupported) {
  const swf::Trace trace = workload::sdsc_sp2_like(8, 1500);
  ReinforceTrainerConfig cfg = tiny_reinforce_config();
  cfg.base_policy = "SJF";
  ReinforceTrainer trainer(trace, cfg);
  EXPECT_GT(trainer.run_epoch().steps, 0u);
}

TEST_F(AltTrainersTest, GreedyEvaluationDeterministic) {
  const swf::Trace trace = workload::sdsc_sp2_like(10, 1500);
  ReinforceTrainerConfig cfg = tiny_reinforce_config();
  cfg.eval_samples = 2;
  cfg.eval_sample_jobs = 256;
  ReinforceTrainer trainer(trace, cfg);
  const double first = trainer.evaluate_greedy();
  EXPECT_GT(first, 0.0);
  EXPECT_DOUBLE_EQ(trainer.evaluate_greedy(), first);
}

// Agents trained by any algorithm share the deployment path: a DQN
// agent's greedy chooser must schedule complete sequences like a PPO
// agent's does.
TEST_F(AltTrainersTest, DqnAgentDeploysThroughTheSameGreedyPath) {
  const swf::Trace trace = workload::sdsc_sp2_like(12, 1500);
  DqnTrainer trainer(trace, tiny_dqn_config());
  trainer.run_epoch();
  const double bsld = trainer.evaluate_greedy();
  EXPECT_GT(bsld, 0.0);
  EXPECT_TRUE(std::isfinite(bsld));
}

}  // namespace
}  // namespace rlbf::core
