// Action-selection modes of the TrainingEnv (EnvConfig::ActionSelection):
// softmax sampling (PPO/REINFORCE), epsilon-greedy (DQN), and pure greedy
// — plus the sample_actions back-compat alias.
#include <gtest/gtest.h>

#include <map>

#include "context_fixture.h"
#include "core/backfill_env.h"
#include "rl/ppo.h"

namespace rlbf::core {
namespace {

using testing::ContextFixture;
using testing::make_job;

AgentConfig small_config() {
  AgentConfig cfg;
  cfg.obs.max_obsv_size = 32;
  cfg.obs.value_obsv_size = 4;
  return cfg;
}

/// An opportunity with three admissible candidates (short narrow jobs
/// behind a blocked wide head), so selection behavior is observable.
ContextFixture multi_candidate_opportunity() {
  return ContextFixture(
      {make_job(1, 0, 100, 6, 100), make_job(2, 10, 100, 10, 100),
       make_job(3, 20, 30, 1, 30), make_job(4, 21, 40, 2, 40),
       make_job(5, 22, 20, 1, 20)},
      10, {{0, 0}}, {1, 2, 3, 4}, 50);
}

/// Run `n` single-decision episodes and count which candidate was picked.
std::map<std::size_t, int> pick_histogram(const EnvConfig& cfg, std::uint64_t seed,
                                          int n) {
  Agent agent(small_config(), 7);
  const ContextFixture fx = multi_candidate_opportunity();
  std::map<std::size_t, int> counts;
  TrainingEnv env(agent, cfg, util::Rng(seed));
  swf::Trace dummy("d", 10, {});
  for (int i = 0; i < n; ++i) {
    env.set_baseline_bsld(10.0);
    env.episode_begin(dummy);
    const auto ctx = fx.context();
    const auto pick = env.choose(ctx);
    if (pick.has_value()) ++counts[*pick];
    env.episode_end({});
    (void)env.take_episode();
  }
  return counts;
}

TEST(ActionSelection, GreedyIsDeterministic) {
  EnvConfig cfg;
  cfg.selection = ActionSelection::Greedy;
  const auto counts = pick_histogram(cfg, 3, 50);
  ASSERT_EQ(counts.size(), 1u);  // always the same candidate
  EXPECT_EQ(counts.begin()->second, 50);
}

TEST(ActionSelection, SampleActionsFalseAliasesGreedy) {
  EnvConfig sampled_off;
  sampled_off.selection = ActionSelection::SampleSoftmax;
  sampled_off.sample_actions = false;
  EXPECT_EQ(sampled_off.effective_selection(), ActionSelection::Greedy);
  EnvConfig eps;
  eps.selection = ActionSelection::EpsilonGreedy;
  eps.sample_actions = false;  // alias only affects SampleSoftmax
  EXPECT_EQ(eps.effective_selection(), ActionSelection::EpsilonGreedy);
}

TEST(ActionSelection, SoftmaxSamplingExploresAllCandidates) {
  EnvConfig cfg;
  cfg.selection = ActionSelection::SampleSoftmax;
  const auto counts = pick_histogram(cfg, 5, 400);
  // A fresh agent's near-uniform softmax (policy_output_scale 0.01) must
  // visit every admissible candidate.
  EXPECT_EQ(counts.size(), 3u);
}

TEST(ActionSelection, EpsilonOneIsUniformOverValidRows) {
  EnvConfig cfg;
  cfg.selection = ActionSelection::EpsilonGreedy;
  cfg.epsilon = 1.0;
  const auto counts = pick_histogram(cfg, 11, 600);
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [candidate, count] : counts) {
    EXPECT_NEAR(count / 600.0, 1.0 / 3.0, 0.08) << "candidate " << candidate;
  }
}

TEST(ActionSelection, EpsilonZeroIsGreedy) {
  EnvConfig eps;
  eps.selection = ActionSelection::EpsilonGreedy;
  eps.epsilon = 0.0;
  EnvConfig greedy;
  greedy.selection = ActionSelection::Greedy;
  const auto a = pick_histogram(eps, 13, 50);
  const auto b = pick_histogram(greedy, 13, 50);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a.begin()->first, b.begin()->first);
}

TEST(ActionSelection, IntermediateEpsilonMixesGreedyAndUniform) {
  EnvConfig cfg;
  cfg.selection = ActionSelection::EpsilonGreedy;
  cfg.epsilon = 0.3;
  const auto counts = pick_histogram(cfg, 17, 900);
  // The greedy candidate gets (1 - eps) + eps/3 = 0.8 of the mass.
  int max_count = 0, total = 0;
  for (const auto& [candidate, count] : counts) {
    max_count = std::max(max_count, count);
    total += count;
  }
  EXPECT_EQ(total, 900);
  EXPECT_NEAR(max_count / 900.0, 0.8, 0.06);
}

TEST(ActionSelection, EpsilonGreedyStepsRecordNormalizedLogProbs) {
  // Whatever selection produced the action, the recorded log-prob is the
  // softmax log-probability of that action (finite and <= 0).
  Agent agent(small_config(), 7);
  EnvConfig cfg;
  cfg.selection = ActionSelection::EpsilonGreedy;
  cfg.epsilon = 1.0;
  TrainingEnv env(agent, cfg, util::Rng(23));
  const ContextFixture fx = multi_candidate_opportunity();
  swf::Trace dummy("d", 10, {});
  env.set_baseline_bsld(10.0);
  env.episode_begin(dummy);
  const auto ctx = fx.context();
  (void)env.choose(ctx);
  env.episode_end({});
  const rl::Episode ep = env.take_episode();
  ASSERT_EQ(ep.steps.size(), 1u);
  EXPECT_LE(ep.steps[0].log_prob, 0.0);
  EXPECT_GT(ep.steps[0].log_prob, -20.0);
}

}  // namespace
}  // namespace rlbf::core
