#include "core/agent.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "context_fixture.h"

namespace rlbf::core {
namespace {

using testing::ContextFixture;
using testing::make_job;

ContextFixture opportunity() {
  return ContextFixture(
      {make_job(1, 0, 100, 6, 100), make_job(2, 10, 100, 10, 100),
       make_job(3, 20, 50, 2, 50), make_job(4, 30, 200, 2, 200)},
      10, {{0, 0}}, {1, 2, 3}, 50);
}

AgentConfig small_config() {
  AgentConfig cfg;
  cfg.obs.max_obsv_size = 16;
  cfg.obs.value_obsv_size = 4;
  return cfg;
}

TEST(Agent, GreedyChoosesAValidCandidate) {
  const Agent agent(small_config(), 1);
  const ContextFixture fx = opportunity();
  const auto pick = agent.choose_greedy(fx.context());
  ASSERT_TRUE(pick.has_value());
  EXPECT_LT(*pick, fx.candidates.size());
}

TEST(Agent, GreedyIsDeterministic) {
  const Agent agent(small_config(), 1);
  const ContextFixture fx = opportunity();
  const auto first = agent.choose_greedy(fx.context());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(agent.choose_greedy(fx.context()), first);
}

TEST(Agent, GreedyDeclinesWhenNothingSelectable) {
  AgentConfig cfg = small_config();
  cfg.obs.max_obsv_size = 1;  // only the (masked) rjob is observed
  const Agent agent(cfg, 1);
  const ContextFixture fx = opportunity();
  EXPECT_FALSE(agent.choose_greedy(fx.context()).has_value());
}

TEST(Agent, CloneActsIdentically) {
  const Agent agent(small_config(), 2);
  const Agent copy = agent.clone();
  const ContextFixture fx = opportunity();
  EXPECT_EQ(copy.choose_greedy(fx.context()), agent.choose_greedy(fx.context()));
}

TEST(Agent, DifferentSeedsGiveDifferentModels) {
  const Agent a(small_config(), 1);
  const Agent b(small_config(), 99);
  const auto pa = dynamic_cast<const KernelActorCritic&>(a.model())
                      .policy_net()
                      .parameters();
  const auto pb = dynamic_cast<const KernelActorCritic&>(b.model())
                      .policy_net()
                      .parameters();
  EXPECT_GT(nn::Tensor::max_abs_diff(pa[0]->value, pb[0]->value), 1e-9);
}

TEST(Agent, SaveLoadRoundTripPreservesDecisions) {
  const std::string path = ::testing::TempDir() + "/rlbf_agent_test.model";
  const Agent agent(small_config(), 3);
  ASSERT_TRUE(agent.save(path, {{"trace", "SDSC-SP2"}, {"epochs", "7"}}));

  const Agent loaded = Agent::load(path);
  EXPECT_EQ(loaded.config().obs.max_obsv_size, 16u);
  EXPECT_EQ(loaded.config().obs.value_obsv_size, 4u);
  EXPECT_TRUE(loaded.config().kernel_policy);

  const ContextFixture fx = opportunity();
  EXPECT_EQ(loaded.choose_greedy(fx.context()), agent.choose_greedy(fx.context()));
  std::remove(path.c_str());
}

// Regression: a truncated model file must throw with the offending path
// in the message, never build an agent from a partial bundle.
TEST(Agent, TruncatedModelFileThrowsWithPath) {
  const std::string path = ::testing::TempDir() + "/rlbf_agent_truncated.model";
  const Agent agent(small_config(), 6);
  ASSERT_TRUE(agent.save(path, {{"trace", "SDSC-SP2"}}));
  std::string text;
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  std::ofstream(path, std::ios::trunc) << text.substr(0, text.size() / 2);
  try {
    Agent::load(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error must name the file: " << e.what();
  }
  std::remove(path.c_str());
}

// Regression: garbled numeric metadata names the file and key instead of
// surfacing as a bare std::stoul exception.
TEST(Agent, CorruptMetaValueThrowsWithPathAndKey) {
  const std::string path = ::testing::TempDir() + "/rlbf_agent_badmeta.model";
  const Agent agent(small_config(), 7);
  ASSERT_TRUE(agent.save(path));
  std::string text;
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  const std::string needle = "meta max_obsv_size 16";
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "meta max_obsv_size not-a-number");
  std::ofstream(path, std::ios::trunc) << text;
  try {
    Agent::load(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("max_obsv_size"), std::string::npos) << message;
    EXPECT_NE(message.find(path), std::string::npos) << message;
  }
  std::remove(path.c_str());
}

TEST(Agent, SaveStoresMetadata) {
  const std::string path = ::testing::TempDir() + "/rlbf_agent_meta.model";
  const Agent agent(small_config(), 4);
  ASSERT_TRUE(agent.save(path, {{"trace", "HPC2N"}}));
  const auto meta = Agent::load_meta(path);
  EXPECT_EQ(meta.at("trace"), "HPC2N");
  EXPECT_EQ(meta.at("kernel_policy"), "1");
  std::remove(path.c_str());
}

TEST(Agent, FlatVariantRoundTrips) {
  AgentConfig cfg = small_config();
  cfg.kernel_policy = false;
  cfg.obs.pad_policy_obs = true;
  const std::string path = ::testing::TempDir() + "/rlbf_agent_flat.model";
  const Agent agent(cfg, 5);
  ASSERT_TRUE(agent.save(path));
  const Agent loaded = Agent::load(path);
  EXPECT_FALSE(loaded.config().kernel_policy);
  EXPECT_TRUE(loaded.config().obs.pad_policy_obs);
  const ContextFixture fx = opportunity();
  EXPECT_EQ(loaded.choose_greedy(fx.context()), agent.choose_greedy(fx.context()));
  std::remove(path.c_str());
}

TEST(Agent, FlatWithoutPaddingRejected) {
  AgentConfig cfg = small_config();
  cfg.kernel_policy = false;
  cfg.obs.pad_policy_obs = false;
  EXPECT_THROW(Agent(cfg, 1), std::invalid_argument);
}

TEST(Agent, LoadMissingFileThrows) {
  EXPECT_THROW(Agent::load("/nonexistent/agent.model"), std::runtime_error);
}

}  // namespace
}  // namespace rlbf::core
