// Observation feature masking (ablation A9's mechanism).
#include <gtest/gtest.h>

#include "core/agent.h"
#include "core/observation.h"
#include "sched/policies.h"
#include "sched/runtime_estimator.h"
#include "sim/event_sim.h"

#include <cstdio>
#include <filesystem>

namespace rlbf::core {
namespace {

swf::Job make_job(std::int64_t id, std::int64_t submit, std::int64_t run,
                  std::int64_t procs, std::int64_t request) {
  swf::Job j;
  j.id = id;
  j.submit_time = submit;
  j.run_time = run;
  j.requested_procs = procs;
  j.requested_time = request;
  return j;
}

/// A minimal blocked-head scenario providing a live BackfillContext.
struct Scenario {
  swf::Trace trace{"s", 8,
                   {make_job(1, 0, 100, 6, 150), make_job(2, 1, 100, 8, 150),
                    make_job(3, 2, 10, 2, 20)}};
  sim::ClusterState cluster{8};
  sched::RequestTimeEstimator estimator;
  std::vector<std::size_t> queue{1, 2};
  std::vector<std::size_t> candidates{2};
  sim::Reservation reservation;
  std::int64_t now = 5;

  Scenario() {
    cluster.start(0, 6, 0, 100);
    reservation =
        sim::compute_reservation(cluster, trace, trace[1], estimator, now);
  }

  sim::BackfillContext ctx() const {
    return sim::BackfillContext{trace,       cluster, estimator, now, 1,
                                reservation, queue,   candidates};
  }
};

TEST(FeatureMask, DefaultEnablesAllFeatures) {
  ObservationConfig cfg;
  for (std::size_t f = 0; f < ObservationConfig::kFeatures; ++f) {
    EXPECT_TRUE(cfg.feature_enabled(f));
  }
}

TEST(FeatureMask, DisabledFeatureReadsZeroEverywhere) {
  Scenario s;
  ObservationConfig cfg;
  cfg.max_obsv_size = 8;
  ObservationBuilder full(cfg);
  cfg.feature_mask = 0x3FFu & ~(1u << 1);  // drop requested time
  ObservationBuilder masked(cfg);

  const auto po_full = full.build_policy(s.ctx());
  const auto po_masked = masked.build_policy(s.ctx());
  ASSERT_EQ(po_full.obs.rows(), po_masked.obs.rows());
  bool full_has_nonzero = false;
  for (std::size_t r = 0; r < po_full.obs.rows(); ++r) {
    if (po_full.obs.at(r, 1) != 0.0) full_has_nonzero = true;
    EXPECT_EQ(po_masked.obs.at(r, 1), 0.0);
    // Other features are untouched.
    EXPECT_EQ(po_masked.obs.at(r, 0), po_full.obs.at(r, 0));
    EXPECT_EQ(po_masked.obs.at(r, 4), po_full.obs.at(r, 4));
  }
  EXPECT_TRUE(full_has_nonzero);
}

TEST(FeatureMask, MaskingDoesNotChangeShapesOrMask) {
  Scenario s;
  ObservationConfig cfg;
  cfg.max_obsv_size = 8;
  cfg.feature_mask = 1;  // only feature 0 survives
  ObservationBuilder builder(cfg);
  const auto po = builder.build_policy(s.ctx());
  EXPECT_EQ(po.obs.cols(), ObservationConfig::kFeatures);
  EXPECT_TRUE(po.any_selectable());
  const auto value = builder.build_value(s.ctx());
  EXPECT_EQ(value.cols(), cfg.value_feature_dim());
}

TEST(FeatureMask, ValueObservationIsMaskedToo) {
  Scenario s;
  ObservationConfig cfg;
  cfg.value_obsv_size = 4;
  cfg.feature_mask = 0x3FFu & ~(1u << 2);  // drop requested procs
  ObservationBuilder builder(cfg);
  const auto value = builder.build_value(s.ctx());
  // Flattened layout: row r feature f at index r * kFeatures + f.
  for (std::size_t r = 0; r < cfg.value_obsv_size; ++r) {
    EXPECT_EQ(value.at(0, r * ObservationConfig::kFeatures + 2), 0.0);
  }
}

TEST(FeatureMask, StopRowIndicatorCannotBeDisabled) {
  ObservationConfig cfg;
  cfg.stop_action = true;
  cfg.feature_mask = 0x3FFu & ~(1u << 8);
  EXPECT_THROW(ObservationBuilder{cfg}, std::invalid_argument);
}

TEST(FeatureMask, SurvivesAgentSaveLoadRoundTrip) {
  AgentConfig cfg;
  cfg.obs.value_obsv_size = 4;
  cfg.obs.feature_mask = 0x2A5;
  const Agent agent(cfg, /*seed=*/5);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rlbf_feature_mask.model").string();
  ASSERT_TRUE(agent.save(path));
  const Agent loaded = Agent::load(path);
  EXPECT_EQ(loaded.config().obs.feature_mask, 0x2A5u);
  std::remove(path.c_str());
}

TEST(FeatureMask, AgentsWithDifferentMasksScoreDifferently) {
  Scenario s;
  AgentConfig cfg;
  cfg.obs.max_obsv_size = 8;
  cfg.obs.value_obsv_size = 4;
  const Agent full(cfg, /*seed=*/3);
  cfg.obs.feature_mask = 1;  // nearly blind agent
  const Agent blind(cfg, /*seed=*/3);  // same weights, different inputs
  const auto po_full = full.observer().build_policy(s.ctx());
  const auto po_blind = blind.observer().build_policy(s.ctx());
  const nn::Tensor logits_full = full.model().policy_logits_nograd(po_full.obs);
  const nn::Tensor logits_blind = blind.model().policy_logits_nograd(po_blind.obs);
  EXPECT_GT(nn::Tensor::max_abs_diff(logits_full, logits_blind), 0.0);
}

}  // namespace
}  // namespace rlbf::core
