// Property sweeps on the fairness metrics: Jain's index bounds and
// invariances over randomized inputs, and conservation properties of the
// per-user aggregation over simulated schedules.
#include <gtest/gtest.h>

#include "sched/easy_backfill.h"
#include "sched/policies.h"
#include "sched/runtime_estimator.h"
#include "sim/fairness.h"
#include "util/rng.h"
#include "workload/presets.h"

namespace rlbf::sim {
namespace {

class JainPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JainPropertyTest, BoundedBetweenOneOverNAndOne) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 50));
    std::vector<double> values(n);
    bool any_positive = false;
    for (auto& v : values) {
      v = rng.uniform(0.0, 100.0);
      any_positive |= v > 0.0;
    }
    const double j = jain_fairness_index(values);
    EXPECT_LE(j, 1.0 + 1e-12);
    if (any_positive) {
      EXPECT_GE(j, 1.0 / static_cast<double>(n) - 1e-12);
    }
  }
}

TEST_P(JainPropertyTest, ScaleInvariant) {
  util::Rng rng(GetParam() ^ 0xf00d);
  for (int trial = 0; trial < 100; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 20));
    std::vector<double> values(n), scaled(n);
    const double factor = rng.uniform(0.1, 50.0);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = rng.uniform(0.0, 10.0);
      scaled[i] = values[i] * factor;
    }
    EXPECT_NEAR(jain_fairness_index(values), jain_fairness_index(scaled), 1e-9);
  }
}

TEST_P(JainPropertyTest, PermutationInvariant) {
  util::Rng rng(GetParam() ^ 0xbeef);
  for (int trial = 0; trial < 100; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 20));
    std::vector<double> values(n);
    for (auto& v : values) v = rng.uniform(0.0, 10.0);
    const double before = jain_fairness_index(values);
    const auto perm = rng.permutation(n);
    std::vector<double> shuffled(n);
    for (std::size_t i = 0; i < n; ++i) shuffled[i] = values[perm[i]];
    EXPECT_NEAR(jain_fairness_index(shuffled), before, 1e-12);
  }
}

TEST_P(JainPropertyTest, EqualizingTransferNeverDecreasesTheIndex) {
  // Pigou-Dalton-style property: moving value from a larger entry to a
  // smaller one (without overshooting) cannot make the index worse.
  util::Rng rng(GetParam() ^ 0xcafe);
  for (int trial = 0; trial < 100; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 12));
    std::vector<double> values(n);
    for (auto& v : values) v = rng.uniform(1.0, 10.0);
    std::size_t hi = 0, lo = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (values[i] > values[hi]) hi = i;
      if (values[i] < values[lo]) lo = i;
    }
    if (hi == lo) continue;
    const double before = jain_fairness_index(values);
    const double delta = (values[hi] - values[lo]) * rng.uniform(0.0, 0.5);
    values[hi] -= delta;
    values[lo] += delta;
    EXPECT_GE(jain_fairness_index(values), before - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JainPropertyTest, ::testing::Values(1u, 2u, 3u));

class FairnessScheduleSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(FairnessScheduleSweep, UserPartitionConservesJobsAndBackfills) {
  swf::Trace trace;
  if (GetParam() == "SDSC-SP2") trace = workload::sdsc_sp2_like(17, 700);
  else if (GetParam() == "HPC2N") trace = workload::hpc2n_like(17, 700);
  else trace = workload::lublin_2(17, 700);

  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator rt;
  sched::EasyBackfillChooser easy;
  const auto results = simulate(trace, fcfs, rt, &easy);
  const auto metrics = compute_metrics(results, trace.machine_procs());
  const auto report = fairness_report(results, trace);

  std::size_t jobs = 0, backfills = 0;
  double bsld_weighted = 0.0;
  for (const auto& u : report.users) {
    jobs += u.job_count;
    backfills += u.backfilled_jobs;
    bsld_weighted += u.avg_bounded_slowdown * static_cast<double>(u.job_count);
  }
  EXPECT_EQ(jobs, results.size());
  EXPECT_EQ(backfills, metrics.backfilled_jobs);
  // Per-user means, job-weighted, recompose into the global mean.
  EXPECT_NEAR(bsld_weighted / static_cast<double>(results.size()),
              metrics.avg_bounded_slowdown, 1e-9);
  EXPECT_GT(report.bsld_jain, 0.0);
  EXPECT_LE(report.bsld_jain, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Traces, FairnessScheduleSweep,
                         ::testing::Values("SDSC-SP2", "HPC2N", "Lublin-2"));

}  // namespace
}  // namespace rlbf::sim
