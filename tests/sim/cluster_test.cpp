#include "sim/cluster.h"

#include <gtest/gtest.h>

namespace rlbf::sim {
namespace {

TEST(Cluster, StartsFullyFree) {
  ClusterState c(64);
  EXPECT_EQ(c.total_procs(), 64);
  EXPECT_EQ(c.free_procs(), 64);
  EXPECT_EQ(c.used_procs(), 0);
  EXPECT_DOUBLE_EQ(c.free_fraction(), 1.0);
  EXPECT_EQ(c.running_count(), 0u);
}

TEST(Cluster, RejectsNonPositiveSize) {
  EXPECT_THROW(ClusterState(0), std::invalid_argument);
  EXPECT_THROW(ClusterState(-4), std::invalid_argument);
}

TEST(Cluster, AllocationAccounting) {
  ClusterState c(10);
  c.start(0, 4, 100, 50);
  EXPECT_EQ(c.free_procs(), 6);
  EXPECT_DOUBLE_EQ(c.free_fraction(), 0.6);
  c.start(1, 6, 100, 20);
  EXPECT_EQ(c.free_procs(), 0);
  EXPECT_FALSE(c.can_fit(1));
}

TEST(Cluster, OversubscriptionThrows) {
  ClusterState c(8);
  c.start(0, 6, 0, 10);
  EXPECT_THROW(c.start(1, 3, 0, 10), std::runtime_error);
}

TEST(Cluster, RejectsBadJobParameters) {
  ClusterState c(8);
  EXPECT_THROW(c.start(0, 0, 0, 10), std::invalid_argument);
  EXPECT_THROW(c.start(0, -1, 0, 10), std::invalid_argument);
  EXPECT_THROW(c.start(0, 2, 0, -5), std::invalid_argument);
}

TEST(Cluster, NextCompletionIsEarliestEnd) {
  ClusterState c(16);
  c.start(0, 2, 0, 100);   // ends 100
  c.start(1, 2, 10, 30);   // ends 40
  c.start(2, 2, 20, 500);  // ends 520
  EXPECT_EQ(c.next_completion_time(), 40);
}

TEST(Cluster, NextCompletionThrowsWhenIdle) {
  ClusterState c(4);
  EXPECT_THROW(c.next_completion_time(), std::runtime_error);
}

TEST(Cluster, CompleteUntilReleasesInOrder) {
  ClusterState c(16);
  c.start(0, 4, 0, 100);
  c.start(1, 4, 0, 50);
  c.start(2, 4, 0, 150);
  const auto done = c.complete_until(100);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].job_index, 1u);  // end 50 first
  EXPECT_EQ(done[1].job_index, 0u);  // end 100 second
  EXPECT_EQ(c.free_procs(), 12);
  EXPECT_EQ(c.running_count(), 1u);
}

TEST(Cluster, CompleteUntilBeforeAnyEndIsEmpty) {
  ClusterState c(16);
  c.start(0, 4, 0, 100);
  EXPECT_TRUE(c.complete_until(99).empty());
  EXPECT_EQ(c.free_procs(), 12);
}

TEST(Cluster, ZeroRuntimeJobCompletesImmediately) {
  ClusterState c(4);
  c.start(0, 2, 10, 0);
  const auto done = c.complete_until(10);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].end_time, 10);
  EXPECT_EQ(c.free_procs(), 4);
}

TEST(Cluster, RunningJobsSnapshotDoesNotDisturbHeap) {
  ClusterState c(16);
  c.start(0, 2, 0, 100);
  c.start(1, 2, 0, 50);
  const auto snapshot = c.running_jobs();
  EXPECT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(c.next_completion_time(), 50);
  EXPECT_EQ(c.running_count(), 2u);
}

TEST(Cluster, RunningJobsSnapshotMatchesPopOrderIncludingTies) {
  // The snapshot must list jobs exactly as complete_until would pop
  // them — including heap tie resolution for equal end times — because
  // reservation code sorts the snapshot with an unstable sort and its
  // tie behavior depends on the input sequence.
  ClusterState c(64);
  c.start(0, 4, 0, 100);
  c.start(1, 4, 0, 50);
  c.start(2, 4, 0, 100);  // ties with job 0
  c.start(3, 4, 0, 50);   // ties with job 1
  c.start(4, 4, 0, 75);
  const auto snapshot = c.running_jobs();
  const auto popped = c.complete_until(1000);
  ASSERT_EQ(snapshot.size(), popped.size());
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(snapshot[i].job_index, popped[i].job_index) << "position " << i;
    EXPECT_EQ(snapshot[i].end_time, popped[i].end_time);
  }
}

TEST(Cluster, RunningJobsIntoReusesBufferAndMatchesRunningJobs) {
  ClusterState c(32);
  c.start(0, 2, 0, 30);
  c.start(1, 2, 0, 10);
  c.start(2, 2, 0, 20);
  std::vector<RunningJob> scratch(17);  // stale contents must be replaced
  c.running_jobs_into(scratch);
  const auto fresh = c.running_jobs();
  ASSERT_EQ(scratch.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(scratch[i].job_index, fresh[i].job_index);
    EXPECT_EQ(scratch[i].end_time, fresh[i].end_time);
  }
  EXPECT_EQ(scratch[0].end_time, 10);  // pop order is ascending end time
  EXPECT_EQ(scratch[2].end_time, 30);
}

TEST(Cluster, FullLifecycleConservesProcs) {
  ClusterState c(32);
  for (int i = 0; i < 8; ++i) c.start(static_cast<std::size_t>(i), 4, i, 10 + i);
  EXPECT_EQ(c.free_procs(), 0);
  c.complete_until(1000);
  EXPECT_EQ(c.free_procs(), 32);
  EXPECT_EQ(c.running_count(), 0u);
}

}  // namespace
}  // namespace rlbf::sim
