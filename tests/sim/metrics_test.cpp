#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace rlbf::sim {
namespace {

JobResult make_result(std::int64_t submit, std::int64_t start, std::int64_t run,
                      std::int64_t procs = 1) {
  JobResult r;
  r.submit_time = submit;
  r.start_time = start;
  r.end_time = start + run;
  r.procs = procs;
  return r;
}

TEST(Metrics, DerivedTimes) {
  const JobResult r = make_result(10, 30, 100, 4);
  EXPECT_EQ(r.wait_time(), 20);
  EXPECT_EQ(r.run_time(), 100);
  EXPECT_EQ(r.turnaround(), 120);
}

TEST(Metrics, BoundedSlowdownNoWaitIsOne) {
  EXPECT_DOUBLE_EQ(make_result(0, 0, 100).bounded_slowdown(), 1.0);
}

TEST(Metrics, BoundedSlowdownLongJob) {
  // wait 100, run 100 -> (100+100)/100 = 2.
  EXPECT_DOUBLE_EQ(make_result(0, 100, 100).bounded_slowdown(), 2.0);
}

TEST(Metrics, BoundedSlowdownShortJobUsesThreshold) {
  // run 1 s, wait 9 s: unbounded slowdown would be 10; bounded uses the
  // 10 s threshold: (9 + 1) / 10 = 1.
  EXPECT_DOUBLE_EQ(make_result(0, 9, 1).bounded_slowdown(), 1.0);
  // wait 99 s: (99 + 1) / 10 = 10, not 100.
  EXPECT_DOUBLE_EQ(make_result(0, 99, 1).bounded_slowdown(), 10.0);
}

TEST(Metrics, BoundedSlowdownCustomThreshold) {
  EXPECT_DOUBLE_EQ(make_result(0, 99, 1).bounded_slowdown(1.0), 100.0);
}

TEST(Metrics, UnboundedSlowdownGuardsZeroRuntime) {
  const JobResult r = make_result(0, 50, 0);
  EXPECT_DOUBLE_EQ(r.slowdown(), 50.0);  // clamped run 1
}

TEST(Metrics, AggregateAverages) {
  std::vector<JobResult> rs = {make_result(0, 0, 100), make_result(0, 100, 100)};
  const ScheduleMetrics m = compute_metrics(rs, 16);
  EXPECT_EQ(m.job_count, 2u);
  EXPECT_DOUBLE_EQ(m.avg_bounded_slowdown, (1.0 + 2.0) / 2.0);
  EXPECT_DOUBLE_EQ(m.avg_wait_time, 50.0);
  EXPECT_DOUBLE_EQ(m.avg_turnaround, 150.0);
  EXPECT_DOUBLE_EQ(m.max_wait_time, 100.0);
  EXPECT_EQ(m.makespan, 200);
}

TEST(Metrics, UtilizationSingleJobFullMachine) {
  std::vector<JobResult> rs = {make_result(0, 0, 100, 16)};
  const ScheduleMetrics m = compute_metrics(rs, 16);
  EXPECT_DOUBLE_EQ(m.utilization, 1.0);
}

TEST(Metrics, UtilizationHalfMachine) {
  std::vector<JobResult> rs = {make_result(0, 0, 100, 8)};
  EXPECT_DOUBLE_EQ(compute_metrics(rs, 16).utilization, 0.5);
}

TEST(Metrics, UtilizationNeverExceedsOne) {
  std::vector<JobResult> rs = {make_result(0, 0, 100, 16), make_result(0, 0, 100, 16)};
  EXPECT_LE(compute_metrics(rs, 16).utilization, 1.0);
}

TEST(Metrics, BackfilledJobsCounted) {
  auto a = make_result(0, 0, 10);
  auto b = make_result(0, 0, 10);
  b.backfilled = true;
  const ScheduleMetrics m = compute_metrics({a, b}, 8);
  EXPECT_EQ(m.backfilled_jobs, 1u);
}

TEST(Metrics, EmptyResultsGiveZeros) {
  const ScheduleMetrics m = compute_metrics({}, 8);
  EXPECT_EQ(m.job_count, 0u);
  EXPECT_DOUBLE_EQ(m.avg_bounded_slowdown, 0.0);
  EXPECT_DOUBLE_EQ(m.utilization, 0.0);
}

}  // namespace
}  // namespace rlbf::sim
