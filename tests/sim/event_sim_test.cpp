#include "sim/event_sim.h"

#include <gtest/gtest.h>

#include "sched/easy_backfill.h"
#include "sched/policies.h"
#include "sched/runtime_estimator.h"
#include "workload/presets.h"

namespace rlbf::sim {
namespace {

using sched::ActualRuntimeEstimator;
using sched::EasyBackfillChooser;
using sched::FcfsPolicy;

constexpr std::int64_t kJobUnknown = swf::kUnknown;

swf::Job make_job(std::int64_t id, std::int64_t submit, std::int64_t run,
                  std::int64_t procs, std::int64_t request = kJobUnknown) {
  swf::Job j;
  j.id = id;
  j.submit_time = submit;
  j.run_time = run;
  j.requested_procs = procs;
  j.used_procs = procs;
  j.requested_time = request;
  return j;
}

TEST(EventSim, SingleJobStartsAtSubmit) {
  swf::Trace t("t", 8, {make_job(1, 50, 100, 4)});
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  const auto results = simulate(t, fcfs, ar, nullptr);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].start_time, 50);
  EXPECT_EQ(results[0].end_time, 150);
  EXPECT_FALSE(results[0].backfilled);
}

TEST(EventSim, ParallelJobsShareTheMachine) {
  swf::Trace t("t", 8, {make_job(1, 0, 100, 4), make_job(2, 0, 100, 4)});
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  const auto results = simulate(t, fcfs, ar, nullptr);
  EXPECT_EQ(results[0].start_time, 0);
  EXPECT_EQ(results[1].start_time, 0);
}

TEST(EventSim, FcfsBlocksUntilResourcesFree) {
  swf::Trace t("t", 8, {make_job(1, 0, 100, 8), make_job(2, 10, 50, 4)});
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  const auto results = simulate(t, fcfs, ar, nullptr);
  EXPECT_EQ(results[0].start_time, 0);
  EXPECT_EQ(results[1].start_time, 100);
}

TEST(EventSim, WithoutBackfillingSmallJobsWaitBehindWideHead) {
  // J2 is wide and blocked; J3 would fit now but must not jump without
  // a backfill chooser.
  swf::Trace t("t", 8,
               {make_job(1, 0, 100, 6), make_job(2, 10, 50, 8), make_job(3, 20, 10, 2)});
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  const auto results = simulate(t, fcfs, ar, nullptr);
  EXPECT_EQ(results[1].start_time, 100);  // J2 after J1
  EXPECT_EQ(results[2].start_time, 150);  // J3 after J2
}

TEST(EventSim, EasyBackfillsShortJobBeforeShadow) {
  // Machine 10. J1 holds 8 procs for 100 s; J2 (10 procs) is blocked
  // with shadow 100 and extra 0. J3 (2 procs, 50 s) fits the 2 free
  // procs and finishes by 70 <= 100: backfilled at its arrival.
  swf::Trace t("t", 10,
               {make_job(1, 0, 100, 8), make_job(2, 10, 100, 10),
                make_job(3, 20, 50, 2)});
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  EasyBackfillChooser easy;
  const auto results = simulate(t, fcfs, ar, &easy);
  EXPECT_EQ(results[2].start_time, 20);
  EXPECT_TRUE(results[2].backfilled);
  EXPECT_EQ(results[1].start_time, 100);  // reserved job not delayed
}

TEST(EventSim, EasyRejectsJobThatWouldDelayReservation) {
  // J3 runs 200 s > shadow(100) and exceeds the extra nodes: must wait.
  swf::Trace t("t", 10,
               {make_job(1, 0, 100, 8), make_job(2, 10, 100, 10),
                make_job(3, 20, 200, 2)});
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  EasyBackfillChooser easy;
  const auto results = simulate(t, fcfs, ar, &easy);
  EXPECT_FALSE(results[2].backfilled);
  EXPECT_EQ(results[1].start_time, 100);
  EXPECT_GE(results[2].start_time, 200);  // after J2 completes
}

TEST(EventSim, EasyExtraNodesRuleAdmitsLongNarrowJob) {
  // J1: 6 procs for 100 s. J2 (8 procs) blocked: shadow 100, extra 2.
  // J3: 2 procs for 1000 s overlaps the reservation but fits the extra
  // nodes, so EASY admits it.
  swf::Trace t("t", 10,
               {make_job(1, 0, 100, 6), make_job(2, 10, 100, 8),
                make_job(3, 20, 1000, 2)});
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  EasyBackfillChooser easy;
  const auto results = simulate(t, fcfs, ar, &easy);
  EXPECT_TRUE(results[2].backfilled);
  EXPECT_EQ(results[2].start_time, 20);
  EXPECT_EQ(results[1].start_time, 100);  // still on time
}

TEST(EventSim, ReservationComputation) {
  swf::Trace t("t", 10, {make_job(1, 0, 100, 6), make_job(2, 0, 200, 3)});
  ClusterState cluster(10);
  cluster.start(0, 6, 0, 100);
  cluster.start(1, 3, 0, 200);
  ActualRuntimeEstimator ar;
  const swf::Job rjob = make_job(3, 5, 50, 8);
  const Reservation res = compute_reservation(cluster, t, rjob, ar, 5);
  // free 1; J1 ends 100 -> free 7 < 8; J2 ends 200 -> free 10 >= 8.
  EXPECT_EQ(res.shadow_time, 200);
  EXPECT_EQ(res.extra_procs, 2);
}

TEST(EventSim, ReservationImmediateWhenJobFits) {
  swf::Trace t("t", 10, {make_job(1, 0, 100, 2)});
  ClusterState cluster(10);
  cluster.start(0, 2, 0, 100);
  ActualRuntimeEstimator ar;
  const Reservation res = compute_reservation(cluster, t, make_job(2, 5, 1, 4), ar, 5);
  EXPECT_EQ(res.shadow_time, 5);
  EXPECT_EQ(res.extra_procs, 4);
}

TEST(EventSim, ReservationClampsElapsedEstimates) {
  // The running job's estimate says it should already be done; the
  // reservation treats it as due at now + 1, not in the past.
  swf::Trace t("t", 4, {make_job(1, 0, 1000, 4, 10)});
  ClusterState cluster(4);
  cluster.start(0, 4, 0, 1000);
  sched::RequestTimeEstimator rt;  // estimate 10, elapsed at now=500
  const Reservation res = compute_reservation(cluster, t, make_job(2, 1, 1, 2), rt, 500);
  EXPECT_EQ(res.shadow_time, 501);
}

/// Chooser wrapper that records the head job's reservation at every
/// opportunity so tests can assert EASY's no-delay guarantee.
class RecordingChooser final : public BackfillChooser {
 public:
  explicit RecordingChooser(BackfillChooser& inner) : inner_(inner) {}
  std::optional<std::size_t> choose(const BackfillContext& ctx) override {
    observations.push_back({ctx.rjob, ctx.reservation.shadow_time});
    return inner_.choose(ctx);
  }
  std::string name() const override { return "recording"; }

  struct Observation {
    std::size_t rjob;
    std::int64_t shadow;
  };
  std::vector<Observation> observations;

 private:
  BackfillChooser& inner_;
};

TEST(EventSim, EasyNeverDelaysReservedJobUnderExactEstimates) {
  const swf::Trace trace = workload::lublin_1(5, 600);
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  EasyBackfillChooser easy;
  RecordingChooser recorder(easy);
  const auto results = simulate(trace, fcfs, ar, &recorder);
  ASSERT_FALSE(recorder.observations.empty());
  for (const auto& obs : recorder.observations) {
    EXPECT_LE(results[obs.rjob].start_time, obs.shadow)
        << "reserved job " << obs.rjob << " delayed past its shadow time";
  }
}

TEST(EventSim, MaxBackfillCapRespected) {
  // Three small jobs could all backfill; the cap allows only one per
  // opportunity.
  swf::Trace t("t", 10,
               {make_job(1, 0, 100, 7), make_job(2, 10, 100, 10),
                make_job(3, 20, 10, 1), make_job(4, 20, 10, 1),
                make_job(5, 20, 10, 1)});
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  EasyBackfillChooser easy;
  SimulationOptions opts;
  opts.max_backfills_per_opportunity = 1;
  const auto results = simulate(t, fcfs, ar, &easy, opts);
  int backfilled_at_20 = 0;
  for (const auto& r : results) {
    if (r.backfilled && r.start_time == 20) ++backfilled_at_20;
  }
  EXPECT_EQ(backfilled_at_20, 1);
}

class ThrowingChooser final : public BackfillChooser {
 public:
  std::optional<std::size_t> choose(const BackfillContext& ctx) override {
    return ctx.candidates.size() + 5;  // out of range
  }
  std::string name() const override { return "bad"; }
};

TEST(EventSim, OutOfRangeChooserPickThrows) {
  swf::Trace t("t", 10,
               {make_job(1, 0, 100, 8), make_job(2, 10, 100, 10),
                make_job(3, 20, 10, 1)});
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  ThrowingChooser bad;
  EXPECT_THROW(simulate(t, fcfs, ar, &bad), std::runtime_error);
}

TEST(EventSim, InvalidTraceRejected) {
  swf::Trace t("t", 4, {make_job(1, 0, 100, 8)});  // wider than machine
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  EXPECT_THROW(simulate(t, fcfs, ar, nullptr), std::runtime_error);
}

TEST(EventSim, EmptyTraceYieldsNoResults) {
  swf::Trace t("t", 4, {});
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  EXPECT_TRUE(simulate(t, fcfs, ar, nullptr).empty());
}

// ---- property tests over generated workloads ----

struct SimPropertyCase {
  const char* trace_name;
  std::uint64_t seed;
  bool backfill;
};

class SimPropertyTest : public ::testing::TestWithParam<SimPropertyCase> {};

TEST_P(SimPropertyTest, ScheduleIsCompleteAndConsistent) {
  const auto param = GetParam();
  swf::Trace trace = std::string(param.trace_name) == "SDSC-SP2"
                         ? workload::sdsc_sp2_like(param.seed, 800)
                         : workload::lublin_2(param.seed, 800);
  FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  EasyBackfillChooser easy;
  const auto results =
      simulate(trace, fcfs, est, param.backfill ? &easy : nullptr);

  ASSERT_EQ(results.size(), trace.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].job_index, i);
    EXPECT_GE(results[i].start_time, trace[i].submit_time) << "job " << i;
    EXPECT_EQ(results[i].end_time - results[i].start_time, trace[i].run_time);
    EXPECT_EQ(results[i].procs, trace[i].procs());
  }
  const ScheduleMetrics m = compute_metrics(results, trace.machine_procs());
  EXPECT_GT(m.avg_bounded_slowdown, 0.99);
  EXPECT_LE(m.utilization, 1.0 + 1e-9);
  EXPECT_GT(m.utilization, 0.0);
  if (param.backfill) {
    EXPECT_GT(m.backfilled_jobs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SimPropertyTest,
    ::testing::Values(SimPropertyCase{"SDSC-SP2", 1, false},
                      SimPropertyCase{"SDSC-SP2", 1, true},
                      SimPropertyCase{"SDSC-SP2", 2, true},
                      SimPropertyCase{"Lublin-2", 3, false},
                      SimPropertyCase{"Lublin-2", 3, true},
                      SimPropertyCase{"Lublin-2", 4, true}));

TEST(EventSim, DeterministicAcrossRuns) {
  const swf::Trace trace = workload::hpc2n_like(9, 500);
  FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  EasyBackfillChooser easy1, easy2;
  const auto a = simulate(trace, fcfs, est, &easy1);
  const auto b = simulate(trace, fcfs, est, &easy2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_time, b[i].start_time);
    EXPECT_EQ(a[i].backfilled, b[i].backfilled);
  }
}

/// Adversarial chooser: greedily starts the FIRST candidate every time,
/// ignoring reservations entirely. The simulator must still terminate,
/// schedule everything exactly once, and never oversubscribe.
class GreedyFirstChooser final : public BackfillChooser {
 public:
  std::optional<std::size_t> choose(const BackfillContext&) override { return 0; }
  std::string name() const override { return "greedy-first"; }
};

TEST(EventSim, AdversarialGreedyChooserStillYieldsValidSchedule) {
  const swf::Trace trace = workload::sdsc_sp2_like(41, 800);
  FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  GreedyFirstChooser greedy;
  const auto results = simulate(trace, fcfs, est, &greedy);
  ASSERT_EQ(results.size(), trace.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_GE(results[i].start_time, trace[i].submit_time);
    EXPECT_EQ(results[i].run_time(), trace[i].run_time);
  }
  // ClusterState::start throws on oversubscription, so completing at all
  // proves the resource invariant held throughout.
  const ScheduleMetrics m = compute_metrics(results, trace.machine_procs());
  EXPECT_LE(m.utilization, 1.0 + 1e-9);
}

TEST(EventSim, Wfp3PriorityIsDynamic) {
  // Two queued jobs behind a full machine: a long job that has waited
  // long and a short fresh job. Under WFP3 the long waiter's cubed
  // wait/runtime ratio eventually dominates; verify the late-submitted
  // short job does NOT overtake the long waiter once enough time passed.
  swf::Trace t("t", 8,
               {make_job(1, 0, 100000, 8),            // hogs the machine
                make_job(2, 10, 50000, 8, 50000),     // long, waits from t=10
                make_job(3, 99000, 100, 8, 100)});    // short, arrives late
  sched::Wfp3Policy wfp3;
  ActualRuntimeEstimator ar;
  const auto results = simulate(t, wfp3, ar, nullptr);
  // At t=100000: job2 ratio = (99990/50000)^3 * 8 ~ 64; job3 ratio =
  // (1000/100)^3 * 8 = 8000 -> job3's score is MORE negative, so WFP3
  // actually runs the short waiter first. Verify that ordering.
  EXPECT_LT(results[2].start_time, results[1].start_time);

  // Under FCFS the long waiter (earlier submit) would run first instead:
  FcfsPolicy fcfs;
  const auto fcfs_results = simulate(t, fcfs, ar, nullptr);
  EXPECT_LT(fcfs_results[1].start_time, fcfs_results[2].start_time);
}

TEST(EventSim, SimultaneousArrivalsKeepSubmissionOrderUnderFcfs) {
  swf::Trace t("t", 4,
               {make_job(1, 0, 50, 4), make_job(2, 10, 30, 4), make_job(3, 10, 20, 4)});
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  const auto results = simulate(t, fcfs, ar, nullptr);
  EXPECT_EQ(results[1].start_time, 50);
  EXPECT_EQ(results[2].start_time, 80);  // ties broken by trace order
}

TEST(EventSim, ZeroRuntimeJobsScheduleInstantly) {
  swf::Trace t("t", 4, {make_job(1, 0, 0, 4), make_job(2, 0, 10, 4)});
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  const auto results = simulate(t, fcfs, ar, nullptr);
  EXPECT_EQ(results[0].start_time, 0);
  EXPECT_EQ(results[0].end_time, 0);
  EXPECT_EQ(results[1].start_time, 0);  // machine free again immediately
}

/// Wraps a policy but reports it as time-varying, forcing the simulator
/// down the full re-sort path. Scheduling results must be identical to
/// the incremental (binary-insert, sort-skipping) path the real policy
/// takes when it declares itself time-invariant.
class ForcedResortPolicy final : public PriorityPolicy {
 public:
  explicit ForcedResortPolicy(const PriorityPolicy& inner) : inner_(inner) {}
  double score(const swf::Job& job, std::int64_t now) const override {
    return inner_.score(job, now);
  }
  std::string name() const override { return inner_.name(); }
  // time_invariant() deliberately stays false.

 private:
  const PriorityPolicy& inner_;
};

TEST(EventSim, IncrementalQueueMatchesFullResortPath) {
  const swf::Trace trace = workload::sdsc_sp2_like(7, 800);
  sched::RequestTimeEstimator est;
  for (const char* pname : {"FCFS", "SJF"}) {
    const auto policy = sched::make_policy(pname);
    ASSERT_TRUE(policy->time_invariant()) << pname;
    ForcedResortPolicy resort(*policy);
    EasyBackfillChooser easy_fast, easy_slow;
    const auto fast = simulate(trace, *policy, est, &easy_fast);
    const auto slow = simulate(trace, resort, est, &easy_slow);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].start_time, slow[i].start_time) << pname << " job " << i;
      EXPECT_EQ(fast[i].end_time, slow[i].end_time) << pname << " job " << i;
      EXPECT_EQ(fast[i].backfilled, slow[i].backfilled) << pname << " job " << i;
    }
  }
}

TEST(EventSim, CachedReservationMatchesPlainOverload) {
  // Equal estimated ends exercise the unstable sort's tie behavior; the
  // cached overload must resolve them identically because it feeds the
  // sort the same pop-order snapshot.
  swf::Trace t("t", 32,
               {make_job(1, 0, 500, 6, 100), make_job(2, 0, 500, 6, 100),
                make_job(3, 0, 400, 6, 80), make_job(4, 0, 600, 6, 100),
                make_job(5, 0, 300, 6, 50)});
  ClusterState cluster(32);
  for (std::size_t i = 0; i < 5; ++i) cluster.start(i, 6, 0, t[i].run_time);
  sched::RequestTimeEstimator est;
  FeatureCache cache(t.size());
  std::vector<RunningJob> scratch;
  for (std::int64_t need = 8; need <= 32; need += 6) {
    const swf::Job rjob = make_job(9, 1, 50, need);
    const Reservation plain = compute_reservation(cluster, t, rjob, est, 10);
    // Twice through the cached overload: cold estimates, then memoized.
    for (int pass = 0; pass < 2; ++pass) {
      const Reservation cached =
          compute_reservation(cluster, t, rjob, est, 10, &cache, scratch);
      EXPECT_EQ(cached.shadow_time, plain.shadow_time) << "need " << need;
      EXPECT_EQ(cached.extra_procs, plain.extra_procs) << "need " << need;
    }
  }
}

TEST(EventSim, BackfillingImprovesUtilizationOnBlockedWorkload) {
  const swf::Trace trace = workload::sdsc_sp2_like(21, 1000);
  FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  EasyBackfillChooser easy;
  const auto with = compute_metrics(simulate(trace, fcfs, est, &easy),
                                    trace.machine_procs());
  const auto without =
      compute_metrics(simulate(trace, fcfs, est, nullptr), trace.machine_procs());
  // EASY should strictly reduce the average wait on a congested trace.
  EXPECT_LT(with.avg_wait_time, without.avg_wait_time);
}

}  // namespace
}  // namespace rlbf::sim
