#include "sim/timeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sched/easy_backfill.h"
#include "sched/policies.h"
#include "sched/runtime_estimator.h"
#include "workload/presets.h"

namespace rlbf::sim {
namespace {

JobResult make_result(std::int64_t start, std::int64_t run, std::int64_t procs,
                      std::size_t idx = 0) {
  JobResult r;
  r.job_index = idx;
  r.submit_time = start;
  r.start_time = start;
  r.end_time = start + run;
  r.procs = procs;
  return r;
}

TEST(Timeline, EmptyResults) {
  EXPECT_TRUE(usage_timeline({}).empty());
  EXPECT_EQ(peak_usage({}), 0);
  EXPECT_TRUE(utilization_histogram({}, 8, 10).empty());
}

TEST(Timeline, SingleJobStepFunction) {
  const auto tl = usage_timeline({make_result(10, 100, 4)});
  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl[0].time, 10);
  EXPECT_EQ(tl[0].used, 4);
  EXPECT_EQ(tl[1].time, 110);
  EXPECT_EQ(tl[1].used, 0);
}

TEST(Timeline, OverlappingJobsStack) {
  const auto tl = usage_timeline({make_result(0, 100, 4), make_result(50, 100, 2)});
  ASSERT_EQ(tl.size(), 4u);
  EXPECT_EQ(tl[0].used, 4);   // [0, 50)
  EXPECT_EQ(tl[1].used, 6);   // [50, 100)
  EXPECT_EQ(tl[2].used, 2);   // [100, 150)
  EXPECT_EQ(tl[3].used, 0);
  EXPECT_EQ(peak_usage({make_result(0, 100, 4), make_result(50, 100, 2)}), 6);
}

TEST(Timeline, AdjacentJobsMergeCleanly) {
  // Same procs back-to-back: usage is constant across the boundary, so
  // the boundary point is merged away.
  const auto tl = usage_timeline({make_result(0, 50, 4), make_result(50, 50, 4)});
  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl[0].used, 4);
  EXPECT_EQ(tl[1].time, 100);
}

TEST(Timeline, ZeroLengthJobsIgnored) {
  EXPECT_TRUE(usage_timeline({make_result(5, 0, 4)}).empty());
}

TEST(Timeline, TimesStrictlyIncreasing) {
  const swf::Trace trace = workload::lublin_1(5, 400);
  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  sched::EasyBackfillChooser easy;
  const auto results = simulate(trace, fcfs, est, &easy);
  const auto tl = usage_timeline(results);
  ASSERT_FALSE(tl.empty());
  for (std::size_t i = 1; i < tl.size(); ++i) {
    EXPECT_LT(tl[i - 1].time, tl[i].time);
  }
}

TEST(Timeline, UsageNeverExceedsMachineOnRealSchedule) {
  const swf::Trace trace = workload::sdsc_sp2_like(6, 500);
  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  sched::EasyBackfillChooser easy;
  const auto results = simulate(trace, fcfs, est, &easy);
  EXPECT_LE(peak_usage(results), trace.machine_procs());
  for (const auto& p : usage_timeline(results)) EXPECT_GE(p.used, 0);
}

TEST(Timeline, HistogramConservesWork) {
  const std::vector<JobResult> rs = {make_result(0, 100, 4), make_result(30, 50, 2)};
  const auto hist = utilization_histogram(rs, 8, 10);
  double busy = 0.0;
  for (double h : hist) busy += h * 8.0 * 10.0;
  EXPECT_NEAR(busy, 100.0 * 4 + 50.0 * 2, 1e-9);
}

TEST(Timeline, HistogramBucketValues) {
  // One job, 4 of 8 procs, [0, 20); buckets of 10 s.
  const auto hist = utilization_histogram({make_result(0, 20, 4)}, 8, 10);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_DOUBLE_EQ(hist[0], 0.5);
  EXPECT_DOUBLE_EQ(hist[1], 0.5);
}

TEST(Timeline, HistogramPartialBucket) {
  // 15 s of 8/8 procs with 10 s buckets: second bucket half full.
  const auto hist = utilization_histogram({make_result(0, 15, 8)}, 8, 10);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_DOUBLE_EQ(hist[0], 1.0);
  EXPECT_DOUBLE_EQ(hist[1], 0.5);
}

TEST(Timeline, HistogramRejectsBadArgs) {
  EXPECT_THROW(utilization_histogram({make_result(0, 1, 1)}, 0, 10),
               std::invalid_argument);
  EXPECT_THROW(utilization_histogram({make_result(0, 1, 1)}, 8, 0),
               std::invalid_argument);
}

TEST(Timeline, CsvExportRoundTrips) {
  const std::string path = ::testing::TempDir() + "/rlbf_timeline.csv";
  auto r = make_result(10, 100, 4, 7);
  r.backfilled = true;
  ASSERT_TRUE(write_schedule_csv(path, {r}));
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "job,submit,start,end,procs,wait,bounded_slowdown,backfilled");
  EXPECT_EQ(row, "7,10,10,110,4,0,1,1");
  std::remove(path.c_str());
}

TEST(Timeline, CsvExportFailsOnBadPath) {
  EXPECT_FALSE(write_schedule_csv("/nonexistent-dir/x.csv", {}));
}

}  // namespace
}  // namespace rlbf::sim
