// Kill-at-request-time semantics (SimulationOptions::kill_exceeding_request),
// the paper's §2.1.2 contract: "The scheduler will cancel or kill jobs
// that surpass their Request Time."
#include <gtest/gtest.h>

#include "sched/easy_backfill.h"
#include "sched/policies.h"
#include "sched/predictors.h"
#include "sched/runtime_estimator.h"
#include "sim/event_sim.h"
#include "workload/presets.h"

namespace rlbf::sim {
namespace {

using sched::FcfsPolicy;
using sched::RequestTimeEstimator;

swf::Job make_job(std::int64_t id, std::int64_t submit, std::int64_t run,
                  std::int64_t procs, std::int64_t request = swf::kUnknown) {
  swf::Job j;
  j.id = id;
  j.submit_time = submit;
  j.run_time = run;
  j.requested_procs = procs;
  j.requested_time = request;
  return j;
}

SimulationOptions kill_on() {
  SimulationOptions opt;
  opt.kill_exceeding_request = true;
  return opt;
}

TEST(KillSemantics, OverrunningJobIsTruncatedAtRequestTime) {
  // Actual runtime 500 but the user requested 200: the job dies at 200.
  swf::Trace t("t", 8, {make_job(1, 0, 500, 4, 200)});
  FcfsPolicy fcfs;
  RequestTimeEstimator rt;
  const auto results = simulate(t, fcfs, rt, nullptr, kill_on());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].killed);
  EXPECT_EQ(results[0].end_time, 200);
  EXPECT_EQ(results[0].run_time(), 200);
}

TEST(KillSemantics, CompliantJobRunsToCompletion) {
  swf::Trace t("t", 8, {make_job(1, 0, 100, 4, 200)});
  FcfsPolicy fcfs;
  RequestTimeEstimator rt;
  const auto results = simulate(t, fcfs, rt, nullptr, kill_on());
  EXPECT_FALSE(results[0].killed);
  EXPECT_EQ(results[0].end_time, 100);
}

TEST(KillSemantics, ExactBoundaryIsNotAKill) {
  swf::Trace t("t", 8, {make_job(1, 0, 200, 4, 200)});
  FcfsPolicy fcfs;
  RequestTimeEstimator rt;
  const auto results = simulate(t, fcfs, rt, nullptr, kill_on());
  EXPECT_FALSE(results[0].killed);
  EXPECT_EQ(results[0].end_time, 200);
}

TEST(KillSemantics, DisabledByDefault) {
  swf::Trace t("t", 8, {make_job(1, 0, 500, 4, 200)});
  FcfsPolicy fcfs;
  RequestTimeEstimator rt;
  const auto results = simulate(t, fcfs, rt, nullptr);
  EXPECT_FALSE(results[0].killed);
  EXPECT_EQ(results[0].end_time, 500);  // runs past its request unharmed
}

TEST(KillSemantics, KillReleasesResourcesEarlier) {
  // Job 1 would hold the machine 500s, but is killed at 200; job 2 can
  // then start at 200 instead of 500.
  swf::Trace t("t", 8,
               {make_job(1, 0, 500, 8, 200), make_job(2, 10, 50, 8, 100)});
  FcfsPolicy fcfs;
  RequestTimeEstimator rt;
  const auto results = simulate(t, fcfs, rt, nullptr, kill_on());
  EXPECT_TRUE(results[0].killed);
  EXPECT_EQ(results[1].start_time, 200);
  EXPECT_FALSE(results[1].killed);
}

TEST(KillSemantics, MetricsCountKilledJobs) {
  swf::Trace t("t", 8,
               {make_job(1, 0, 500, 4, 200), make_job(2, 0, 100, 4, 200)});
  FcfsPolicy fcfs;
  RequestTimeEstimator rt;
  const auto results = simulate(t, fcfs, rt, nullptr, kill_on());
  const auto m = compute_metrics(results, 8);
  EXPECT_EQ(m.killed_jobs, 1u);
}

TEST(KillSemantics, JobWithoutRequestTimeIsNeverKilled) {
  // request_time() falls back to the actual runtime, so no overrun is
  // possible.
  swf::Trace t("t", 8, {make_job(1, 0, 500, 4)});
  FcfsPolicy fcfs;
  RequestTimeEstimator rt;
  const auto results = simulate(t, fcfs, rt, nullptr, kill_on());
  EXPECT_FALSE(results[0].killed);
  EXPECT_EQ(results[0].end_time, 500);
}

TEST(KillSemantics, UnderPredictionWithKillStillCompletesSchedule) {
  // Deflated predictions make reservations optimistic; with kills on,
  // every job still gets scheduled exactly once and the cluster is never
  // oversubscribed (validated inside the simulator).
  const swf::Trace trace = workload::sdsc_sp2_like(7, 400);
  FcfsPolicy fcfs;
  sched::UnderNoisyEstimator under(0.5, 11);
  sched::EasyBackfillChooser easy;
  const auto results = simulate(trace, fcfs, under, &easy, kill_on());
  ASSERT_EQ(results.size(), trace.size());
  for (const auto& r : results) {
    EXPECT_GE(r.start_time, r.submit_time);
    EXPECT_GE(r.end_time, r.start_time);
  }
}

TEST(KillSemantics, ArchiveLikeTraceHasNoKillsWithHonestRequests) {
  // The synthetic archive presets generate AR <= RT, so kills must not
  // fire spuriously.
  const swf::Trace trace = workload::sdsc_sp2_like(21, 500);
  FcfsPolicy fcfs;
  RequestTimeEstimator rt;
  const auto results = simulate(trace, fcfs, rt, nullptr, kill_on());
  for (const auto& r : results) EXPECT_FALSE(r.killed);
}

TEST(KillSemantics, ShrunkenRequestsKillProportionally) {
  // Halve every request time below the actual runtime: every such job
  // must be killed, and none other.
  swf::Trace trace = workload::sdsc_sp2_like(33, 300);
  std::size_t expected_kills = 0;
  for (auto& j : trace.mutable_jobs()) {
    if (j.requested_time > 0 && j.run_time > 1) {
      j.requested_time = std::max<std::int64_t>(j.run_time / 2, 1);
      ++expected_kills;
    }
  }
  FcfsPolicy fcfs;
  RequestTimeEstimator rt;
  const auto results = simulate(trace, fcfs, rt, nullptr, kill_on());
  std::size_t kills = 0;
  for (const auto& r : results) {
    if (r.killed) ++kills;
  }
  // Jobs with run_time/2 == run_time (run <= 1) aside, the counts match.
  EXPECT_GT(kills, 0u);
  EXPECT_LE(kills, expected_kills);
}

}  // namespace
}  // namespace rlbf::sim
