#include "sim/fairness.h"

#include <gtest/gtest.h>

#include "sched/policies.h"
#include "sched/runtime_estimator.h"
#include "sched/scheduler.h"
#include "sim/event_sim.h"
#include "workload/presets.h"

namespace rlbf::sim {
namespace {

swf::Job make_job(std::int64_t id, std::int64_t user, std::int64_t submit,
                  std::int64_t run, std::int64_t procs) {
  swf::Job j;
  j.id = id;
  j.user_id = user;
  j.submit_time = submit;
  j.run_time = run;
  j.requested_procs = procs;
  return j;
}

JobResult make_result(std::size_t idx, std::int64_t submit, std::int64_t start,
                      std::int64_t end, bool backfilled = false) {
  JobResult r;
  r.job_index = idx;
  r.submit_time = submit;
  r.start_time = start;
  r.end_time = end;
  r.procs = 1;
  r.backfilled = backfilled;
  return r;
}

// ------------------------------------------------------- Jain's index --

TEST(JainIndex, PerfectEqualityIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({3.0, 3.0, 3.0, 3.0}), 1.0);
}

TEST(JainIndex, SingleNonZeroAmongNIsOneOverN) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({5.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(JainIndex, EmptyAndAllZeroAreOne) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.0, 0.0}), 1.0);
}

TEST(JainIndex, ScaleInvariant) {
  const std::vector<double> base = {1.0, 2.0, 4.0};
  const std::vector<double> scaled = {10.0, 20.0, 40.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(base), jain_fairness_index(scaled));
}

TEST(JainIndex, NegativeValueThrows) {
  EXPECT_THROW(jain_fairness_index({1.0, -0.5}), std::invalid_argument);
}

TEST(JainIndex, KnownTwoValueCase) {
  // (1+3)^2 / (2 * (1+9)) = 16/20 = 0.8
  EXPECT_DOUBLE_EQ(jain_fairness_index({1.0, 3.0}), 0.8);
}

// -------------------------------------------------- per_user_metrics --

TEST(PerUserMetrics, GroupsByUserAndAggregates) {
  const swf::Trace t("t", 8,
                     {make_job(1, 10, 0, 100, 1), make_job(2, 10, 0, 100, 1),
                      make_job(3, 20, 0, 100, 1)});
  const std::vector<JobResult> results = {
      make_result(0, 0, 0, 100),            // user 10: no wait
      make_result(1, 0, 100, 200, true),    // user 10: 100s wait, backfilled
      make_result(2, 0, 300, 400),          // user 20: 300s wait
  };
  const auto users = per_user_metrics(results, t);
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0].user_id, 10);
  EXPECT_EQ(users[0].job_count, 2u);
  EXPECT_DOUBLE_EQ(users[0].avg_wait_time, 50.0);
  EXPECT_DOUBLE_EQ(users[0].max_wait_time, 100.0);
  EXPECT_EQ(users[0].backfilled_jobs, 1u);
  EXPECT_EQ(users[1].user_id, 20);
  EXPECT_DOUBLE_EQ(users[1].avg_wait_time, 300.0);
}

TEST(PerUserMetrics, UnknownUserCollectsInSentinelBucket) {
  const swf::Trace t("t", 8, {make_job(1, swf::kUnknown, 0, 100, 1)});
  const auto users = per_user_metrics({make_result(0, 0, 0, 100)}, t);
  ASSERT_EQ(users.size(), 1u);
  EXPECT_EQ(users[0].user_id, swf::kUnknown);
}

TEST(PerUserMetrics, OutOfRangeJobIndexThrows) {
  const swf::Trace t("t", 8, {make_job(1, 1, 0, 100, 1)});
  EXPECT_THROW(per_user_metrics({make_result(5, 0, 0, 100)}, t),
               std::invalid_argument);
}

TEST(PerUserMetrics, EmptyResultsYieldNoUsers) {
  const swf::Trace t("t", 8, {make_job(1, 1, 0, 100, 1)});
  EXPECT_TRUE(per_user_metrics({}, t).empty());
}

// ----------------------------------------------------- fairness_report --

TEST(FairnessReport, EqualUsersScorePerfectFairness) {
  const swf::Trace t("t", 8,
                     {make_job(1, 1, 0, 100, 1), make_job(2, 2, 0, 100, 1)});
  const std::vector<JobResult> results = {make_result(0, 0, 50, 150),
                                          make_result(1, 0, 50, 150)};
  const auto report = fairness_report(results, t);
  EXPECT_EQ(report.user_count, 2u);
  EXPECT_DOUBLE_EQ(report.bsld_jain, 1.0);
  EXPECT_DOUBLE_EQ(report.wait_jain, 1.0);
  EXPECT_DOUBLE_EQ(report.bsld_spread, 1.0);
}

TEST(FairnessReport, SkewedWaitingLowersTheIndex) {
  const swf::Trace t("t", 8,
                     {make_job(1, 1, 0, 100, 1), make_job(2, 2, 0, 100, 1)});
  const std::vector<JobResult> results = {
      make_result(0, 0, 0, 100),        // user 1 never waits
      make_result(1, 0, 900, 1000),     // user 2 waits 900s
  };
  const auto report = fairness_report(results, t);
  EXPECT_LT(report.bsld_jain, 1.0);
  EXPECT_LT(report.wait_jain, 0.6);
  EXPECT_GT(report.bsld_spread, 5.0);
}

TEST(FairnessReport, EmptyScheduleIsNeutral) {
  const swf::Trace t("t", 8, {});
  const auto report = fairness_report({}, t);
  EXPECT_EQ(report.user_count, 0u);
  EXPECT_DOUBLE_EQ(report.bsld_jain, 1.0);
}

TEST(FairnessReport, EndToEndOnSimulatedSchedule) {
  // Schedule an archive-like trace and sanity-check the report: indices
  // in (0, 1], spread >= 1, user partition covers all jobs.
  const swf::Trace trace = workload::sdsc_sp2_like(3, 600);
  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator rt;
  const auto outcome = sched::run_schedule(trace, fcfs, rt, nullptr);
  const auto report = fairness_report(outcome.results, trace);
  EXPECT_GT(report.user_count, 10u);
  EXPECT_GT(report.bsld_jain, 0.0);
  EXPECT_LE(report.bsld_jain, 1.0);
  EXPECT_GE(report.bsld_spread, 1.0);
  std::size_t jobs = 0;
  for (const auto& u : report.users) jobs += u.job_count;
  EXPECT_EQ(jobs, trace.size());
}

TEST(FairnessReport, BackfillingChangesTheDistribution) {
  // EASY backfilling reorders who waits; the per-user aggregation must
  // reflect a different distribution than no-backfill FCFS (weak check:
  // at least the backfilled-job counts move).
  const swf::Trace trace = workload::sdsc_sp2_like(9, 800);
  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator rt;
  const auto plain = sched::run_schedule(trace, fcfs, rt, nullptr);
  sched::EasyBackfillChooser easy;
  const auto backfilled = sched::run_schedule(trace, fcfs, rt, &easy);
  const auto rep_plain = fairness_report(plain.results, trace);
  const auto rep_bf = fairness_report(backfilled.results, trace);
  std::size_t bf_plain = 0, bf_easy = 0;
  for (const auto& u : rep_plain.users) bf_plain += u.backfilled_jobs;
  for (const auto& u : rep_bf.users) bf_easy += u.backfilled_jobs;
  EXPECT_EQ(bf_plain, 0u);
  EXPECT_GT(bf_easy, 0u);
}

}  // namespace
}  // namespace rlbf::sim
