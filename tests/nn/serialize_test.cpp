#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rlbf::nn {
namespace {

ModelBundle make_bundle() {
  util::Rng rng(3);
  ModelBundle bundle;
  bundle.meta["trace"] = "SDSC-SP2";
  bundle.meta["epochs"] = "50";
  bundle.mlps.emplace_back("policy", Mlp({8, 32, 16, 8, 1}, Activation::Relu, rng));
  bundle.mlps.emplace_back("value", Mlp({256, 64, 32, 1}, Activation::Relu, rng));
  return bundle;
}

TEST(Serialize, RoundTripIsExact) {
  const ModelBundle original = make_bundle();
  std::stringstream buf;
  save_model(buf, original);
  const ModelBundle loaded = load_model(buf);

  EXPECT_EQ(loaded.meta.at("trace"), "SDSC-SP2");
  EXPECT_EQ(loaded.meta.at("epochs"), "50");
  ASSERT_EQ(loaded.mlps.size(), 2u);
  for (std::size_t m = 0; m < original.mlps.size(); ++m) {
    EXPECT_EQ(loaded.mlps[m].first, original.mlps[m].first);
    const auto orig_params = original.mlps[m].second.parameters();
    const auto load_params = loaded.mlps[m].second.parameters();
    ASSERT_EQ(orig_params.size(), load_params.size());
    for (std::size_t p = 0; p < orig_params.size(); ++p) {
      // hexfloat serialization: bit-exact round trip.
      EXPECT_EQ(orig_params[p]->value, load_params[p]->value);
    }
  }
}

TEST(Serialize, PreservesActivationAndDims) {
  util::Rng rng(1);
  ModelBundle bundle;
  bundle.mlps.emplace_back("m", Mlp({4, 7, 2}, Activation::Tanh, rng));
  std::stringstream buf;
  save_model(buf, bundle);
  const ModelBundle loaded = load_model(buf);
  const Mlp* m = loaded.find("m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->dims(), (std::vector<std::size_t>{4, 7, 2}));
  EXPECT_EQ(m->hidden_activation(), Activation::Tanh);
}

TEST(Serialize, LoadedModelPredictsIdentically) {
  const ModelBundle original = make_bundle();
  std::stringstream buf;
  save_model(buf, original);
  const ModelBundle loaded = load_model(buf);
  util::Rng rng(9);
  const Tensor x = Tensor::randn(3, 8, rng);
  EXPECT_EQ(original.mlps[0].second.forward_value(x),
            loaded.mlps[0].second.forward_value(x));
}

TEST(Serialize, FindReturnsNullForUnknownName) {
  const ModelBundle bundle = make_bundle();
  EXPECT_EQ(bundle.find("nonexistent"), nullptr);
  EXPECT_NE(bundle.find("policy"), nullptr);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream buf("not-a-model v1\n");
  EXPECT_THROW(load_model(buf), std::runtime_error);
}

TEST(Serialize, RejectsWrongVersion) {
  std::stringstream buf("rlbf-model v9\n");
  EXPECT_THROW(load_model(buf), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedTensor) {
  ModelBundle bundle = make_bundle();
  std::stringstream buf;
  save_model(buf, bundle);
  std::string text = buf.str();
  text.resize(text.size() / 2);
  std::stringstream cut(text);
  EXPECT_THROW(load_model(cut), std::runtime_error);
}

TEST(Serialize, RejectsUnknownTag) {
  std::stringstream buf("rlbf-model v1\nbogus stuff\n");
  EXPECT_THROW(load_model(buf), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rlbf_model_test.txt";
  const ModelBundle original = make_bundle();
  ASSERT_TRUE(save_model_file(path, original));
  const ModelBundle loaded = load_model_file(path);
  EXPECT_EQ(loaded.mlps.size(), original.mlps.size());
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_model_file("/nonexistent/model.txt"), std::runtime_error);
}

// Regression: a truncated model file must throw naming the offending
// path and line — never silently yield a partial bundle (historically a
// clean truncation at a tag boundary loaded as a shorter model).
TEST(Serialize, TruncatedFileErrorNamesPathAndLine) {
  const std::string path = ::testing::TempDir() + "/rlbf_truncated.model";
  const ModelBundle original = make_bundle();
  ASSERT_TRUE(save_model_file(path, original));
  std::string text;
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  // Cut mid-way through the tensor data.
  std::ofstream(path, std::ios::trunc) << text.substr(0, text.size() * 2 / 3);
  try {
    load_model_file(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(path), std::string::npos)
        << "error must name the file: " << message;
    EXPECT_NE(message.find("line "), std::string::npos)
        << "error must name the line: " << message;
  }
  std::remove(path.c_str());
}

// Regression: a corrupt numeric token must throw, not strtod-to-zero
// (the old loader parsed junk values as 0.0 and kept going).
TEST(Serialize, JunkTensorValueThrowsWithLine) {
  std::stringstream buf(
      "rlbf-model v1\n"
      "mlp m 2 2 1 relu\n"
      "tensor 2 1\n"
      "0x1p+0\n"
      "garbage\n");
  try {
    load_model(buf);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("garbage"), std::string::npos) << message;
    EXPECT_NE(message.find("line 5"), std::string::npos) << message;
  }
}

TEST(Serialize, TruncatedMlpHeaderThrows) {
  std::stringstream buf("rlbf-model v1\nmlp m 3 8 4\n");
  EXPECT_THROW(load_model(buf), std::runtime_error);
}

// Regression: a meta line with no value ("meta key\n") yields an empty
// value — the tokenizer must not swallow the next line as the value.
TEST(Serialize, EmptyMetaValueDoesNotEatTheNextLine) {
  std::stringstream buf(
      "rlbf-model v1\n"
      "meta note\n"
      "mlp m 2 2 1 relu\n"
      "tensor 2 1\n0x1p+0\n0x1p+1\n"
      "tensor 1 1\n0x1p+0\n");
  const ModelBundle bundle = load_model(buf);
  EXPECT_EQ(bundle.meta.at("note"), "");
  ASSERT_NE(bundle.find("m"), nullptr) << "mlp section was swallowed";
}

// Regression: overflowing values ("1e999999") are corruption, while
// subnormal underflow is a legitimate tiny weight.
TEST(Serialize, OverflowingTensorValueThrowsButSubnormalLoads) {
  std::stringstream over(
      "rlbf-model v1\nmlp m 2 2 1 relu\ntensor 2 1\n1e999999\n0\n");
  EXPECT_THROW(load_model(over), std::runtime_error);
  std::stringstream tiny(
      "rlbf-model v1\nmlp m 2 2 1 relu\ntensor 2 1\n0x1p-1060\n0x1p+0\n"
      "tensor 1 1\n0x1p+0\n");
  const ModelBundle bundle = load_model(tiny);
  EXPECT_GT(bundle.find("m")->parameters()[0]->value[0], 0.0);
}

// Regression: strtoull silently wraps negative numbers; a corrupt
// "tensor -1 4" header must throw, not allocate ~2^64 rows.
TEST(Serialize, NegativeTensorDimsThrow) {
  std::stringstream buf(
      "rlbf-model v1\nmlp m 2 2 1 relu\ntensor -1 4\n");
  EXPECT_THROW(load_model(buf), std::runtime_error);
  std::stringstream dims("rlbf-model v1\nmlp m -2 2 1 relu\n");
  EXPECT_THROW(load_model(dims), std::runtime_error);
}

TEST(Serialize, MetaOnlyLoadSkipsTensorData) {
  const ModelBundle original = make_bundle();
  std::stringstream buf;
  save_model(buf, original);
  // Corrupt a tensor value: a meta-only read must not notice, a full
  // load must throw.
  std::string text = buf.str();
  const auto pos = text.find("0x");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 2, "zz");
  std::stringstream meta_in(text);
  const auto meta = load_model_meta(meta_in);
  EXPECT_EQ(meta.at("trace"), "SDSC-SP2");
  std::stringstream full_in(text);
  EXPECT_THROW(load_model(full_in), std::runtime_error);
}

}  // namespace
}  // namespace rlbf::nn
