#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace rlbf::nn {
namespace {

ModelBundle make_bundle() {
  util::Rng rng(3);
  ModelBundle bundle;
  bundle.meta["trace"] = "SDSC-SP2";
  bundle.meta["epochs"] = "50";
  bundle.mlps.emplace_back("policy", Mlp({8, 32, 16, 8, 1}, Activation::Relu, rng));
  bundle.mlps.emplace_back("value", Mlp({256, 64, 32, 1}, Activation::Relu, rng));
  return bundle;
}

TEST(Serialize, RoundTripIsExact) {
  const ModelBundle original = make_bundle();
  std::stringstream buf;
  save_model(buf, original);
  const ModelBundle loaded = load_model(buf);

  EXPECT_EQ(loaded.meta.at("trace"), "SDSC-SP2");
  EXPECT_EQ(loaded.meta.at("epochs"), "50");
  ASSERT_EQ(loaded.mlps.size(), 2u);
  for (std::size_t m = 0; m < original.mlps.size(); ++m) {
    EXPECT_EQ(loaded.mlps[m].first, original.mlps[m].first);
    const auto orig_params = original.mlps[m].second.parameters();
    const auto load_params = loaded.mlps[m].second.parameters();
    ASSERT_EQ(orig_params.size(), load_params.size());
    for (std::size_t p = 0; p < orig_params.size(); ++p) {
      // hexfloat serialization: bit-exact round trip.
      EXPECT_EQ(orig_params[p]->value, load_params[p]->value);
    }
  }
}

TEST(Serialize, PreservesActivationAndDims) {
  util::Rng rng(1);
  ModelBundle bundle;
  bundle.mlps.emplace_back("m", Mlp({4, 7, 2}, Activation::Tanh, rng));
  std::stringstream buf;
  save_model(buf, bundle);
  const ModelBundle loaded = load_model(buf);
  const Mlp* m = loaded.find("m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->dims(), (std::vector<std::size_t>{4, 7, 2}));
  EXPECT_EQ(m->hidden_activation(), Activation::Tanh);
}

TEST(Serialize, LoadedModelPredictsIdentically) {
  const ModelBundle original = make_bundle();
  std::stringstream buf;
  save_model(buf, original);
  const ModelBundle loaded = load_model(buf);
  util::Rng rng(9);
  const Tensor x = Tensor::randn(3, 8, rng);
  EXPECT_EQ(original.mlps[0].second.forward_value(x),
            loaded.mlps[0].second.forward_value(x));
}

TEST(Serialize, FindReturnsNullForUnknownName) {
  const ModelBundle bundle = make_bundle();
  EXPECT_EQ(bundle.find("nonexistent"), nullptr);
  EXPECT_NE(bundle.find("policy"), nullptr);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream buf("not-a-model v1\n");
  EXPECT_THROW(load_model(buf), std::runtime_error);
}

TEST(Serialize, RejectsWrongVersion) {
  std::stringstream buf("rlbf-model v9\n");
  EXPECT_THROW(load_model(buf), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedTensor) {
  ModelBundle bundle = make_bundle();
  std::stringstream buf;
  save_model(buf, bundle);
  std::string text = buf.str();
  text.resize(text.size() / 2);
  std::stringstream cut(text);
  EXPECT_THROW(load_model(cut), std::runtime_error);
}

TEST(Serialize, RejectsUnknownTag) {
  std::stringstream buf("rlbf-model v1\nbogus stuff\n");
  EXPECT_THROW(load_model(buf), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rlbf_model_test.txt";
  const ModelBundle original = make_bundle();
  ASSERT_TRUE(save_model_file(path, original));
  const ModelBundle loaded = load_model_file(path);
  EXPECT_EQ(loaded.mlps.size(), original.mlps.size());
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_model_file("/nonexistent/model.txt"), std::runtime_error);
}

}  // namespace
}  // namespace rlbf::nn
