// Randomized finite-difference property sweeps over the autograd op set.
// Where autograd_test.cpp checks each op's gradient at hand-picked
// points, this suite drives every differentiable op (and random deep
// compositions of them) through central-difference checks at many random
// inputs and shapes — the strongest guarantee a from-scratch autograd
// substrate can offer PPO/DQN training on top of it.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/autograd.h"
#include "util/rng.h"

namespace rlbf::nn {
namespace {

/// Scalar-valued function of one leaf tensor.
using ScalarFn = std::function<VarPtr(const VarPtr&)>;

/// Central-difference check of d(f)/d(x) against backward() at every
/// element of x. `h` trades truncation against cancellation error.
void check_gradient(const ScalarFn& f, Tensor x, double tol = 2e-5,
                    double h = 1e-5) {
  const VarPtr leaf = make_var(x, /*requires_grad=*/true);
  const VarPtr y = f(leaf);
  ASSERT_EQ(y->value.size(), 1u) << "loss must be scalar";
  backward(y);
  ASSERT_TRUE(leaf->has_grad());

  for (std::size_t i = 0; i < x.size(); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += h;
    xm[i] -= h;
    const double fp = f(make_var(xp))->value.item();
    const double fm = f(make_var(xm))->value.item();
    const double numeric = (fp - fm) / (2.0 * h);
    EXPECT_NEAR(leaf->grad[i], numeric, tol)
        << "element " << i << " of " << x.shape_str();
  }
}

struct OpCase {
  std::string name;
  ScalarFn fn;
  /// Inputs are drawn uniform from this range (avoids kink points for
  /// piecewise ops when margin > 0).
  double lo = -2.0, hi = 2.0;
};

std::vector<OpCase> unary_cases() {
  return {
      {"sum", [](const VarPtr& x) { return sum(x); }},
      {"mean", [](const VarPtr& x) { return mean(x); }},
      {"neg_sum", [](const VarPtr& x) { return sum(neg(x)); }},
      {"tanh", [](const VarPtr& x) { return sum(tanh_act(x)); }},
      {"exp", [](const VarPtr& x) { return sum(exp_act(x)); }},
      {"square", [](const VarPtr& x) { return sum(square(x)); }},
      // Piecewise ops sampled away from their kinks: relu on (0.1, 2),
      // clamp interior, huber away from |x| = delta.
      {"relu_positive", [](const VarPtr& x) { return sum(relu(x)); }, 0.1, 2.0},
      {"clamp_interior",
       [](const VarPtr& x) { return sum(clamp(x, -10.0, 10.0)); }},
      {"huber_quadratic",
       [](const VarPtr& x) { return sum(huber(x, 5.0)); }, -2.0, 2.0},
      {"huber_linear",
       [](const VarPtr& x) { return sum(huber(x, 0.05)); }, 0.5, 2.0},
      {"mul_scalar",
       [](const VarPtr& x) { return sum(mul_scalar(x, -3.7)); }},
      {"reshape",
       [](const VarPtr& x) {
         return sum(square(reshape(x, x->value.size(), 1)));
       }},
  };
}

class UnaryOpGradientSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(UnaryOpGradientSweep, MatchesFiniteDifferencesAtRandomInputs) {
  const auto& [case_index, seed] = GetParam();
  const OpCase c = unary_cases()[case_index];
  util::Rng rng(seed * 7919 + case_index);
  for (int trial = 0; trial < 6; ++trial) {
    const auto rows = static_cast<std::size_t>(rng.uniform_int(1, 5));
    const auto cols = static_cast<std::size_t>(rng.uniform_int(1, 5));
    Tensor x(rows, cols);
    for (auto& v : x.data()) v = rng.uniform(c.lo, c.hi);
    check_gradient(c.fn, x);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryOpGradientSweep,
    ::testing::Combine(::testing::Range<std::size_t>(0, 12),
                       ::testing::Values(1u, 2u)),
    [](const auto& info) {
      return unary_cases()[std::get<0>(info.param)].name + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(BinaryOpGradientSweep, MatmulBothSidesAtRandomShapes) {
  util::Rng rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 4));
    const auto k = static_cast<std::size_t>(rng.uniform_int(1, 4));
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 4));
    Tensor a(m, k), b(k, n);
    for (auto& v : a.data()) v = rng.uniform(-1.5, 1.5);
    for (auto& v : b.data()) v = rng.uniform(-1.5, 1.5);
    // Gradient wrt the left operand (right held constant)...
    check_gradient(
        [&](const VarPtr& x) { return sum(square(matmul(x, constant(b)))); }, a);
    // ...and wrt the right operand.
    check_gradient(
        [&](const VarPtr& x) { return sum(square(matmul(constant(a), x))); }, b);
  }
}

TEST(BinaryOpGradientSweep, MulAndSubAndMinimumAtRandomInputs) {
  util::Rng rng(47);
  for (int trial = 0; trial < 8; ++trial) {
    const auto rows = static_cast<std::size_t>(rng.uniform_int(1, 4));
    const auto cols = static_cast<std::size_t>(rng.uniform_int(1, 4));
    Tensor a(rows, cols), b(rows, cols);
    for (auto& v : a.data()) v = rng.uniform(-2.0, 2.0);
    // Keep b clear of a so minimum() has no ties (non-differentiable).
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = a[i] + (rng.bernoulli(0.5) ? 0.5 : -0.5) + rng.uniform(0.0, 0.3);
    }
    check_gradient([&](const VarPtr& x) { return sum(mul(x, constant(b))); }, a);
    check_gradient([&](const VarPtr& x) { return sum(sub(x, constant(b))); }, a);
    check_gradient(
        [&](const VarPtr& x) { return sum(minimum(x, constant(b))); }, a);
  }
}

TEST(CompositionGradientSweep, RandomDeepChainsMatchFiniteDifferences) {
  // Random 4-op chains over smooth ops: if any op mis-scattered its
  // gradient, deep compositions would drift from the numeric value.
  util::Rng rng(59);
  const std::vector<std::function<VarPtr(const VarPtr&)>> smooth = {
      [](const VarPtr& x) { return tanh_act(x); },
      [](const VarPtr& x) { return mul_scalar(x, 0.7); },
      [](const VarPtr& x) { return square(x); },
      [](const VarPtr& x) { return add(x, scalar(0.3)); },
      [](const VarPtr& x) { return neg(x); },
  };
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::size_t> chain;
    for (int d = 0; d < 4; ++d) {
      chain.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(smooth.size()) - 1)));
    }
    Tensor x(2, 3);
    for (auto& v : x.data()) v = rng.uniform(-1.0, 1.0);
    check_gradient(
        [&](const VarPtr& in) {
          VarPtr v = in;
          for (const std::size_t op : chain) v = smooth[op](v);
          return mean(v);
        },
        x, /*tol=*/5e-5);
  }
}

TEST(CompositionGradientSweep, MaskedPolicyLossPipelineMatches) {
  // The exact op pipeline PPO differentiates: logits -> masked
  // log-softmax -> pick -> scaled loss (+ entropy bonus).
  util::Rng rng(67);
  for (int trial = 0; trial < 10; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 8));
    Tensor logits(n, 1);
    for (auto& v : logits.data()) v = rng.uniform(-2.0, 2.0);
    std::vector<std::uint8_t> mask(n, 0);
    std::size_t valid = 0;
    for (auto& m : mask) {
      m = rng.bernoulli(0.7) ? 1 : 0;
      valid += m;
    }
    if (valid == 0) mask[0] = 1, valid = 1;
    // Pick a valid action.
    std::size_t action = 0;
    while (!mask[action]) ++action;

    check_gradient(
        [&](const VarPtr& x) {
          const VarPtr logp = masked_log_softmax(x, mask);
          const VarPtr logp_a = pick(logp, action, 0);
          const VarPtr entropy = masked_entropy(logp, mask);
          return sub(neg(mul_scalar(logp_a, 1.7)), mul_scalar(entropy, 0.01));
        },
        logits, /*tol=*/5e-5);
  }
}

TEST(CompositionGradientSweep, SharedLeafAccumulatesBothPaths) {
  // x appears twice in the graph: grad must be the sum of both paths'
  // contributions (d/dx [sum(x*x) + sum(tanh x)]).
  util::Rng rng(71);
  Tensor x(3, 2);
  for (auto& v : x.data()) v = rng.uniform(-1.0, 1.0);
  check_gradient(
      [](const VarPtr& in) { return add(sum(mul(in, in)), sum(tanh_act(in))); },
      x);
}

}  // namespace
}  // namespace rlbf::nn
