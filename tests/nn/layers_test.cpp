#include "nn/layers.h"

#include <gtest/gtest.h>

namespace rlbf::nn {
namespace {

TEST(Linear, ForwardComputesXwPlusB) {
  util::Rng rng(1);
  Linear layer(2, 3, rng);
  // Overwrite parameters with known values.
  layer.weight()->value = Tensor{{1.0, 0.0, 2.0}, {0.0, 1.0, 3.0}};
  layer.bias()->value = Tensor{{10.0, 20.0, 30.0}};
  const auto y = layer.forward(make_var(Tensor{{2.0, 5.0}}));
  EXPECT_DOUBLE_EQ(y->value.at(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(y->value.at(0, 1), 25.0);
  EXPECT_DOUBLE_EQ(y->value.at(0, 2), 2.0 * 2.0 + 5.0 * 3.0 + 30.0);
}

TEST(Linear, BatchedForwardAppliesRowwise) {
  util::Rng rng(2);
  Linear layer(2, 1, rng);
  const auto y = layer.forward(make_var(Tensor{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}}));
  EXPECT_EQ(y->value.rows(), 3u);
  EXPECT_EQ(y->value.cols(), 1u);
}

TEST(Linear, RejectsZeroDimensions) {
  util::Rng rng(1);
  EXPECT_THROW(Linear(0, 3, rng), std::invalid_argument);
  EXPECT_THROW(Linear(3, 0, rng), std::invalid_argument);
}

TEST(Linear, CloneIsIndependent) {
  util::Rng rng(3);
  Linear a(2, 2, rng);
  Linear b = a.clone();
  EXPECT_LT(Tensor::max_abs_diff(a.weight()->value, b.weight()->value), 1e-15);
  b.weight()->value.fill(99.0);
  EXPECT_GT(Tensor::max_abs_diff(a.weight()->value, b.weight()->value), 1.0);
}

TEST(Mlp, RequiresAtLeastTwoDims) {
  util::Rng rng(1);
  EXPECT_THROW(Mlp({5}, Activation::Relu, rng), std::invalid_argument);
}

TEST(Mlp, DimsAccessors) {
  util::Rng rng(1);
  Mlp mlp({8, 32, 16, 1}, Activation::Tanh, rng);
  EXPECT_EQ(mlp.in_features(), 8u);
  EXPECT_EQ(mlp.out_features(), 1u);
  EXPECT_EQ(mlp.parameters().size(), 6u);  // 3 layers x (W, b)
  EXPECT_EQ(mlp.parameter_count(), 8u * 32 + 32 + 32u * 16 + 16 + 16u * 1 + 1);
}

class MlpActivationTest : public ::testing::TestWithParam<Activation> {};

TEST_P(MlpActivationTest, GraphAndValueForwardAgree) {
  util::Rng rng(7);
  Mlp mlp({4, 8, 3}, GetParam(), rng);
  const Tensor x = Tensor::randn(5, 4, rng);
  const Tensor via_graph = mlp.forward(make_var(x))->value;
  const Tensor via_value = mlp.forward_value(x);
  EXPECT_LT(Tensor::max_abs_diff(via_graph, via_value), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllActivations, MlpActivationTest,
                         ::testing::Values(Activation::None, Activation::Relu,
                                           Activation::Tanh));

// ---- batched-inference parity suite -------------------------------------
// The hot-path contract: the graph forward, the nograd forward, and the
// buffer-reusing batched path must agree BIT-FOR-BIT (operator==, not a
// tolerance) for every activation and batch size, and a multi-row batch
// must reproduce the per-row passes exactly. The golden byte-identity
// suite leans on this.

class MlpParityTest
    : public ::testing::TestWithParam<std::tuple<Activation, std::size_t>> {};

TEST_P(MlpParityTest, GraphValueAndBatchedPathsAreBitIdentical) {
  const auto [act, batch] = GetParam();
  util::Rng rng(23);
  const Mlp mlp({10, 32, 16, 8, 1}, act, rng);
  const Tensor x = Tensor::randn(batch, 10, rng);

  const Tensor via_graph = mlp.forward(make_var(x))->value;
  const Tensor via_value = mlp.forward_value(x);
  Tensor via_into, scratch;
  mlp.forward_value_into(x, via_into, scratch);

  EXPECT_TRUE(via_graph == via_value);
  EXPECT_TRUE(via_value == via_into);

  // One batched pass == the per-row passes, bit for bit.
  for (std::size_t r = 0; r < batch; ++r) {
    const Tensor row_out = mlp.forward_value(x.row(r));
    ASSERT_EQ(row_out.rows(), 1u);
    for (std::size_t c = 0; c < row_out.cols(); ++c) {
      EXPECT_EQ(via_value.at(r, c), row_out.at(0, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ActivationsAndBatchSizes, MlpParityTest,
    ::testing::Combine(::testing::Values(Activation::None, Activation::Relu,
                                         Activation::Tanh),
                       ::testing::Values(std::size_t{1}, std::size_t{7},
                                         std::size_t{64})));

TEST(Mlp, ForwardValueHandlesEmptyCandidateBatch) {
  util::Rng rng(29);
  const Mlp mlp({10, 8, 1}, Activation::Relu, rng);
  const Tensor empty(0, 10);
  const Tensor out = mlp.forward_value(empty);
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.cols(), 1u);
}

TEST(Mlp, ForwardValueIntoReusesBuffersAcrossShapes) {
  util::Rng rng(31);
  const Mlp mlp({6, 12, 4, 1}, Activation::Tanh, rng);
  Tensor out, scratch;
  // Warm with a large batch, then shrink and grow again: every call must
  // match a fresh forward_value exactly despite the recycled buffers.
  for (const std::size_t batch : {64u, 1u, 7u, 64u}) {
    const Tensor x = Tensor::randn(batch, 6, rng);
    mlp.forward_value_into(x, out, scratch);
    EXPECT_TRUE(out == mlp.forward_value(x));
  }
}

TEST(Mlp, HiddenActivationIsNotAppliedToOutput) {
  util::Rng rng(9);
  Mlp mlp({2, 4, 1}, Activation::Relu, rng);
  // Push weights negative so a final ReLU would zero the output.
  for (const auto& p : mlp.parameters()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      p->value[i] = -std::abs(p->value[i]) - 0.1;
    }
  }
  const Tensor y = mlp.forward_value(Tensor{{1.0, 1.0}});
  EXPECT_LT(y.item(), 0.0);  // output stayed negative: no output ReLU
}

TEST(Mlp, CloneSharesNothing) {
  util::Rng rng(11);
  Mlp a({3, 4, 1}, Activation::Tanh, rng);
  Mlp b = a.clone();
  const Tensor x = Tensor::randn(1, 3, rng);
  EXPECT_LT(Tensor::max_abs_diff(a.forward_value(x), b.forward_value(x)), 1e-15);
  b.parameters()[0]->value.fill(0.5);
  EXPECT_GT(Tensor::max_abs_diff(a.forward_value(x), b.forward_value(x)), 1e-12);
}

TEST(Mlp, CopyParametersFrom) {
  util::Rng rng(13);
  Mlp a({3, 4, 1}, Activation::Tanh, rng);
  Mlp b({3, 4, 1}, Activation::Tanh, rng);
  const Tensor x = Tensor::randn(1, 3, rng);
  ASSERT_GT(Tensor::max_abs_diff(a.forward_value(x), b.forward_value(x)), 1e-12);
  b.copy_parameters_from(a);
  EXPECT_LT(Tensor::max_abs_diff(a.forward_value(x), b.forward_value(x)), 1e-15);
}

TEST(Mlp, CopyParametersShapeMismatchThrows) {
  util::Rng rng(13);
  Mlp a({3, 4, 1}, Activation::Tanh, rng);
  Mlp b({3, 5, 1}, Activation::Tanh, rng);
  EXPECT_THROW(b.copy_parameters_from(a), std::invalid_argument);
}

TEST(Mlp, ScaleOutputLayerShrinksOutputsOnly) {
  util::Rng rng(19);
  Mlp mlp({3, 8, 2}, Activation::Tanh, rng);
  const Tensor x = Tensor::randn(4, 3, rng);
  const Tensor before = mlp.forward_value(x);
  mlp.scale_output_layer(0.01);
  const Tensor after = mlp.forward_value(x);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(after[i], before[i] * 0.01, 1e-12);
  }
  // Hidden layers untouched: rescaling back restores the original.
  mlp.scale_output_layer(100.0);
  EXPECT_LT(Tensor::max_abs_diff(mlp.forward_value(x), before), 1e-9);
}

TEST(Mlp, BackwardReachesAllParameters) {
  util::Rng rng(17);
  Mlp mlp({3, 4, 2, 1}, Activation::Tanh, rng);
  const auto y = mlp.forward(make_var(Tensor::randn(2, 3, rng)));
  backward(sum(y));
  for (const auto& p : mlp.parameters()) {
    ASSERT_TRUE(p->has_grad());
    EXPECT_GT(p->grad.norm(), 0.0);
  }
}

}  // namespace
}  // namespace rlbf::nn
