#include "nn/autograd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace rlbf::nn {
namespace {

/// Central finite-difference gradient check: builds the graph twice per
/// perturbed element and compares the analytic gradient of a scalar
/// function of `input` against (f(x+h) - f(x-h)) / 2h.
void grad_check(const Tensor& input,
                const std::function<VarPtr(const VarPtr&)>& fn, double h = 1e-5,
                double tol = 1e-6) {
  auto x = make_var(input, /*requires_grad=*/true);
  auto y = fn(x);
  ASSERT_EQ(y->value.size(), 1u) << "grad_check needs a scalar output";
  backward(y);
  ASSERT_TRUE(x->has_grad());
  const Tensor analytic = x->grad;

  for (std::size_t i = 0; i < input.size(); ++i) {
    Tensor plus = input;
    plus[i] += h;
    Tensor minus = input;
    minus[i] -= h;
    const double f_plus = fn(make_var(plus, true))->value.item();
    const double f_minus = fn(make_var(minus, true))->value.item();
    const double numeric = (f_plus - f_minus) / (2.0 * h);
    EXPECT_NEAR(analytic[i], numeric, tol * std::max(1.0, std::abs(numeric)))
        << "element " << i;
  }
}

Tensor arange(std::size_t rows, std::size_t cols, double start = 0.1,
              double step = 0.3) {
  Tensor t(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = start + step * static_cast<double>(i);
  return t;
}

TEST(Autograd, AddForwardSameShape) {
  auto a = make_var(Tensor{{1.0, 2.0}});
  auto b = make_var(Tensor{{10.0, 20.0}});
  EXPECT_DOUBLE_EQ(add(a, b)->value.at(0, 1), 22.0);
}

TEST(Autograd, AddRowBroadcastForward) {
  auto a = make_var(Tensor{{1.0, 2.0}, {3.0, 4.0}});
  auto b = make_var(Tensor{{10.0, 20.0}});
  const auto c = add(a, b);
  EXPECT_DOUBLE_EQ(c->value.at(1, 1), 24.0);
}

TEST(Autograd, AddScalarBroadcastForward) {
  auto a = make_var(Tensor{{1.0}, {2.0}});
  EXPECT_DOUBLE_EQ(add(a, scalar(5.0))->value.at(1, 0), 7.0);
}

TEST(Autograd, AddIncompatibleShapesThrow) {
  auto a = make_var(Tensor(2, 3));
  auto b = make_var(Tensor(3, 2));
  EXPECT_THROW(add(a, b), std::invalid_argument);
}

TEST(Autograd, GradSumOfInput) {
  grad_check(arange(2, 3), [](const VarPtr& x) { return sum(x); });
}

TEST(Autograd, GradMeanOfInput) {
  grad_check(arange(3, 2), [](const VarPtr& x) { return mean(x); });
}

TEST(Autograd, GradAddBroadcastIntoBias) {
  // d/db of sum(x + b) where b is a broadcast row.
  const Tensor xval = arange(3, 2);
  grad_check(Tensor{{0.5, -0.25}}, [&](const VarPtr& b) {
    return sum(add(constant(xval), b));
  });
}

TEST(Autograd, GradMulElementwise) {
  const Tensor other = arange(2, 2, -0.4, 0.7);
  grad_check(arange(2, 2), [&](const VarPtr& x) {
    return sum(mul(x, constant(other)));
  });
}

TEST(Autograd, GradMulScalar) {
  grad_check(arange(2, 2), [](const VarPtr& x) { return sum(mul_scalar(x, -2.5)); });
}

TEST(Autograd, GradMatmulLeft) {
  const Tensor b = arange(3, 2, 0.2, 0.5);
  grad_check(arange(2, 3), [&](const VarPtr& x) {
    return sum(matmul(x, constant(b)));
  });
}

TEST(Autograd, GradMatmulRight) {
  const Tensor a = arange(2, 3, -0.3, 0.4);
  grad_check(arange(3, 2), [&](const VarPtr& x) {
    return sum(matmul(constant(a), x));
  });
}

TEST(Autograd, GradMatmulChained) {
  const Tensor a = arange(2, 2, 0.1, 0.2);
  grad_check(arange(2, 2, 0.4, -0.3), [&](const VarPtr& x) {
    return sum(matmul(matmul(constant(a), x), x));
  });
}

TEST(Autograd, GradRelu) {
  // Keep points away from the kink at 0.
  Tensor in{{-1.0, -0.4}, {0.3, 2.0}};
  grad_check(in, [](const VarPtr& x) { return sum(relu(x)); });
}

TEST(Autograd, GradTanh) {
  grad_check(arange(2, 2, -0.8, 0.5), [](const VarPtr& x) {
    return sum(tanh_act(x));
  });
}

TEST(Autograd, GradExp) {
  grad_check(arange(1, 3, -0.5, 0.4), [](const VarPtr& x) {
    return sum(exp_act(x));
  });
}

TEST(Autograd, GradSquare) {
  grad_check(arange(2, 2, -0.7, 0.45), [](const VarPtr& x) {
    return sum(square(x));
  });
}

TEST(Autograd, GradSub) {
  const Tensor b = arange(2, 2, 0.9, -0.2);
  grad_check(arange(2, 2), [&](const VarPtr& x) {
    return sum(sub(x, constant(b)));
  });
}

TEST(Autograd, GradClampInterior) {
  // All elements strictly inside (lo, hi): gradient 1.
  grad_check(arange(1, 4, -0.3, 0.2), [](const VarPtr& x) {
    return sum(clamp(x, -2.0, 2.0));
  });
}

TEST(Autograd, ClampBlocksGradientOutside) {
  auto x = make_var(Tensor{{-5.0, 0.0, 5.0}}, true);
  auto y = sum(clamp(x, -1.0, 1.0));
  backward(y);
  EXPECT_DOUBLE_EQ(x->grad.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(x->grad.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(x->grad.at(0, 2), 0.0);
}

TEST(Autograd, GradMinimum) {
  const Tensor b = arange(2, 2, 0.5, 0.1);
  grad_check(arange(2, 2, 0.2, 0.3), [&](const VarPtr& x) {
    return sum(minimum(x, constant(b)));
  });
}

TEST(Autograd, MinimumRoutesGradientToSmaller) {
  auto a = make_var(Tensor{{1.0, 5.0}}, true);
  auto b = make_var(Tensor{{2.0, 3.0}}, true);
  backward(sum(minimum(a, b)));
  EXPECT_DOUBLE_EQ(a->grad.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a->grad.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(b->grad.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(b->grad.at(0, 1), 1.0);
}

TEST(Autograd, GradPick) {
  grad_check(arange(3, 2), [](const VarPtr& x) { return pick(x, 2, 1); });
}

TEST(Autograd, PickOutOfRangeThrows) {
  auto x = make_var(Tensor(2, 2));
  EXPECT_THROW(pick(x, 2, 0), std::out_of_range);
}

TEST(Autograd, GradReshape) {
  grad_check(arange(2, 3), [](const VarPtr& x) {
    return pick(reshape(x, 3, 2), 2, 1);
  });
}

TEST(Autograd, MaskedLogSoftmaxNormalizesOverValidEntries) {
  auto z = make_var(Tensor{{1.0}, {2.0}, {3.0}});
  const std::vector<std::uint8_t> mask = {1, 0, 1};
  const auto lp = masked_log_softmax(z, mask);
  EXPECT_DOUBLE_EQ(lp->value.at(1, 0), kMaskedLogProb);
  const double p0 = std::exp(lp->value.at(0, 0));
  const double p2 = std::exp(lp->value.at(2, 0));
  EXPECT_NEAR(p0 + p2, 1.0, 1e-12);
  EXPECT_GT(p2, p0);
}

TEST(Autograd, MaskedLogSoftmaxAllMaskedThrows) {
  auto z = make_var(Tensor(2, 1));
  EXPECT_THROW(masked_log_softmax(z, {0, 0}), std::invalid_argument);
}

TEST(Autograd, MaskedLogSoftmaxStableUnderLargeLogits) {
  auto z = make_var(Tensor{{1000.0}, {1001.0}});
  const auto lp = masked_log_softmax(z, {1, 1});
  EXPECT_TRUE(std::isfinite(lp->value.at(0, 0)));
  EXPECT_NEAR(std::exp(lp->value.at(0, 0)) + std::exp(lp->value.at(1, 0)), 1.0, 1e-9);
}

TEST(Autograd, GradMaskedLogSoftmaxPickedEntry) {
  const std::vector<std::uint8_t> mask = {1, 1, 0, 1};
  grad_check(arange(4, 1, -0.5, 0.6), [&](const VarPtr& x) {
    return pick(masked_log_softmax(x, mask), 1, 0);
  });
}

TEST(Autograd, GradMaskedEntropy) {
  const std::vector<std::uint8_t> mask = {1, 0, 1, 1};
  grad_check(arange(4, 1, -0.4, 0.5), [&](const VarPtr& x) {
    return masked_entropy(masked_log_softmax(x, mask), mask);
  });
}

TEST(Autograd, EntropyOfUniformIsLogN) {
  auto z = make_var(Tensor(4, 1, 0.0));
  const std::vector<std::uint8_t> mask = {1, 1, 1, 1};
  const auto h = masked_entropy(masked_log_softmax(z, mask), mask);
  EXPECT_NEAR(h->value.item(), std::log(4.0), 1e-12);
}

TEST(Autograd, DiamondGraphAccumulatesBothPaths) {
  // y = sum(x * x_used_twice): d/dx of sum(x + x) = 2.
  auto x = make_var(Tensor{{3.0}}, true);
  backward(add(x, x));
  EXPECT_DOUBLE_EQ(x->grad.item(), 2.0);
}

TEST(Autograd, GradDiamondThroughSquare) {
  grad_check(arange(1, 2, 0.3, 0.4), [](const VarPtr& x) {
    // f = sum(x^2 + 3x): mixes two paths from the same leaf.
    return add(sum(square(x)), mul_scalar(sum(x), 3.0));
  });
}

TEST(Autograd, BackwardRequiresScalarRoot) {
  auto x = make_var(Tensor(2, 2), true);
  EXPECT_THROW(backward(add(x, x)), std::invalid_argument);
}

TEST(Autograd, NoGradThroughConstants) {
  auto c = constant(Tensor{{1.0, 2.0}});
  auto y = sum(mul_scalar(c, 3.0));
  backward(y);
  EXPECT_FALSE(c->has_grad());
}

TEST(Autograd, GradAccumulatesAcrossBackwardCalls) {
  // Parameter-style accumulation: two graphs, grads add up.
  auto x = make_var(Tensor{{2.0}}, true);
  backward(sum(mul_scalar(x, 3.0)));
  backward(sum(mul_scalar(x, 4.0)));
  EXPECT_DOUBLE_EQ(x->grad.item(), 7.0);
  x->zero_grad();
  EXPECT_DOUBLE_EQ(x->grad.item(), 0.0);
}

TEST(Autograd, RandomCompositeGraphsGradCheck) {
  // Stress: random small graphs combining matmul/tanh/mul/add/mean.
  util::Rng rng(61);
  for (int iter = 0; iter < 10; ++iter) {
    const Tensor w1 = Tensor::randn(3, 4, rng, 0.5);
    const Tensor w2 = Tensor::randn(4, 2, rng, 0.5);
    const Tensor other = Tensor::randn(2, 2, rng, 0.5);
    grad_check(Tensor::randn(2, 3, rng, 0.5), [&](const VarPtr& x) {
      auto h = tanh_act(matmul(x, constant(w1)));
      auto y = matmul(h, constant(w2));
      return mean(mul(y, constant(other)));
    }, 1e-5, 1e-4);
  }
}

TEST(Autograd, DeepChainGradCheck) {
  // 12 stacked tanh layers: gradients survive a deep graph.
  util::Rng rng(62);
  const Tensor w = Tensor::randn(3, 3, rng, 0.4);
  grad_check(Tensor::randn(1, 3, rng, 0.5), [&](const VarPtr& x) {
    VarPtr h = x;
    for (int i = 0; i < 12; ++i) h = tanh_act(matmul(h, constant(w)));
    return sum(h);
  }, 1e-5, 1e-3);
}

TEST(Autograd, MaskedSoftmaxSingleValidEntryHasZeroGradient) {
  // With one valid action its probability is pinned at 1: logp = 0 and
  // d logp / d z = 0 — forced moves contribute nothing to learning.
  auto z = make_var(Tensor{{5.0}, {1.0}}, true);
  const std::vector<std::uint8_t> mask = {1, 0};
  auto lp = masked_log_softmax(z, mask);
  EXPECT_DOUBLE_EQ(lp->value.at(0, 0), 0.0);
  backward(pick(lp, 0, 0));
  EXPECT_DOUBLE_EQ(z->grad.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(z->grad.at(1, 0), 0.0);
}

TEST(Autograd, ExtremeNegativeLogitsStayFinite) {
  auto z = make_var(Tensor{{-1e8}, {-1e8 + 1.0}});
  const auto lp = masked_log_softmax(z, {1, 1});
  EXPECT_TRUE(std::isfinite(lp->value.at(0, 0)));
  EXPECT_TRUE(std::isfinite(lp->value.at(1, 0)));
  EXPECT_NEAR(std::exp(lp->value.at(0, 0)) + std::exp(lp->value.at(1, 0)), 1.0, 1e-9);
}

TEST(Autograd, GraphReuseOfLeafAcrossTwoRoots) {
  // Backward through two separate roots sharing a leaf accumulates.
  auto x = make_var(Tensor{{1.0, 2.0}}, true);
  auto y1 = sum(square(x));     // grad: 2x = {2, 4}
  auto y2 = mean(x);            // grad: {0.5, 0.5}
  backward(y1);
  backward(y2);
  EXPECT_DOUBLE_EQ(x->grad.at(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(x->grad.at(0, 1), 4.5);
}

TEST(Autograd, PpoClipObjectiveGradCheck) {
  // The full clipped-surrogate composite used by Ppo::policy_shard.
  const std::vector<std::uint8_t> mask = {1, 1, 1};
  const double old_logp = -1.0;
  const double adv = 0.7;
  grad_check(arange(3, 1, -0.2, 0.35), [&](const VarPtr& logits) {
    const auto lp = masked_log_softmax(logits, mask);
    const auto ratio = exp_act(sub(pick(lp, 1, 0), scalar(old_logp)));
    const auto s1 = mul_scalar(ratio, adv);
    const auto s2 = mul_scalar(clamp(ratio, 0.8, 1.2), adv);
    return neg(minimum(s1, s2));
  }, 1e-6, 1e-4);
}

}  // namespace
}  // namespace rlbf::nn
