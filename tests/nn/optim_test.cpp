#include "nn/optim.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rlbf::nn {
namespace {

TEST(Optim, RejectsNonParameterVariables) {
  auto v = make_var(Tensor(1, 1), /*requires_grad=*/false);
  EXPECT_THROW(Sgd({v}, 0.1), std::invalid_argument);
}

TEST(Sgd, SingleStepDescendsGradient) {
  auto p = make_var(Tensor{{1.0, 2.0}}, true);
  p->accumulate_grad(Tensor{{0.5, -1.0}});
  Sgd opt({p}, 0.1);
  opt.step();
  EXPECT_DOUBLE_EQ(p->value.at(0, 0), 0.95);
  EXPECT_DOUBLE_EQ(p->value.at(0, 1), 2.1);
}

TEST(Sgd, SkipsParametersWithoutGradients) {
  auto p = make_var(Tensor{{1.0}}, true);
  Sgd opt({p}, 0.1);
  opt.step();  // no grad yet: must not touch the value
  EXPECT_DOUBLE_EQ(p->value.item(), 1.0);
}

TEST(Optim, ZeroGradClears) {
  auto p = make_var(Tensor{{1.0}}, true);
  p->accumulate_grad(Tensor{{3.0}});
  Sgd opt({p}, 0.1);
  opt.zero_grad();
  EXPECT_DOUBLE_EQ(p->grad.item(), 0.0);
}

TEST(Optim, ClipGradNormScalesDown) {
  auto a = make_var(Tensor{{3.0}}, true);
  auto b = make_var(Tensor{{4.0}}, true);
  a->accumulate_grad(Tensor{{3.0}});
  b->accumulate_grad(Tensor{{4.0}});
  Sgd opt({a, b}, 0.1);
  const double pre = opt.clip_grad_norm(1.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(a->grad.item(), 0.6, 1e-12);
  EXPECT_NEAR(b->grad.item(), 0.8, 1e-12);
}

TEST(Optim, ClipGradNormLeavesSmallGradients) {
  auto a = make_var(Tensor{{1.0}}, true);
  a->accumulate_grad(Tensor{{0.3}});
  Sgd opt({a}, 0.1);
  opt.clip_grad_norm(10.0);
  EXPECT_DOUBLE_EQ(a->grad.item(), 0.3);
}

/// Minimize f(x) = (x - 3)^2 by gradient steps; Adam should converge
/// quickly and much faster than vanilla SGD at the same learning rate
/// scale for this conditioning.
double optimize_quadratic(Optimizer& opt, const VarPtr& x, int iters) {
  for (int i = 0; i < iters; ++i) {
    opt.zero_grad();
    auto loss = square(sub(x, scalar(3.0)));
    backward(loss);
    opt.step();
  }
  return x->value.item();
}

TEST(Adam, ConvergesOnQuadratic) {
  auto x = make_var(Tensor{{-5.0}}, true);
  Adam opt({x}, 0.1);
  const double final_x = optimize_quadratic(opt, x, 500);
  EXPECT_NEAR(final_x, 3.0, 1e-2);
}

TEST(Sgd, ConvergesOnQuadratic) {
  auto x = make_var(Tensor{{-5.0}}, true);
  Sgd opt({x}, 0.1);
  const double final_x = optimize_quadratic(opt, x, 200);
  EXPECT_NEAR(final_x, 3.0, 1e-3);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // Bias correction makes Adam's very first step ~= lr * sign(grad).
  auto x = make_var(Tensor{{0.0}}, true);
  x->accumulate_grad(Tensor{{7.3}});
  Adam opt({x}, 0.01);
  opt.step();
  EXPECT_NEAR(x->value.item(), -0.01, 1e-6);
}

TEST(Adam, HandlesSparseGradientsAcrossSteps) {
  auto a = make_var(Tensor{{1.0}}, true);
  auto b = make_var(Tensor{{1.0}}, true);
  Adam opt({a, b}, 0.1);
  a->accumulate_grad(Tensor{{1.0}});
  opt.step();  // b has no grad on this step
  EXPECT_DOUBLE_EQ(b->value.item(), 1.0);
  EXPECT_LT(a->value.item(), 1.0);
}

TEST(Adam, LearningRateAdjustable) {
  auto x = make_var(Tensor{{0.0}}, true);
  Adam opt({x}, 0.1);
  EXPECT_DOUBLE_EQ(opt.lr(), 0.1);
  opt.set_lr(0.001);
  EXPECT_DOUBLE_EQ(opt.lr(), 0.001);
}

TEST(Adam, MinimizesTwoParameterMlpLoss) {
  util::Rng rng(5);
  // Fit y = 2x - 1 with a linear model via Adam on MSE.
  auto w = make_var(Tensor{{0.0}}, true);
  auto b = make_var(Tensor{{0.0}}, true);
  Adam opt({w, b}, 0.05);
  for (int iter = 0; iter < 800; ++iter) {
    opt.zero_grad();
    const double xval = rng.uniform(-1.0, 1.0);
    const double target = 2.0 * xval - 1.0;
    auto pred = add(mul_scalar(w, xval), b);
    backward(square(sub(pred, scalar(target))));
    opt.step();
  }
  EXPECT_NEAR(w->value.item(), 2.0, 0.1);
  EXPECT_NEAR(b->value.item(), -1.0, 0.1);
}

}  // namespace
}  // namespace rlbf::nn
