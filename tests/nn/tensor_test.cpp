#include "nn/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rlbf::nn {
namespace {

TEST(Tensor, ConstructionAndFill) {
  Tensor t(2, 3, 1.5);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(t[i], 1.5);
}

TEST(Tensor, InitializerList) {
  Tensor t{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(t.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 3.0);
}

TEST(Tensor, RaggedInitializerThrows) {
  EXPECT_THROW((Tensor{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Tensor, ItemRequiresScalar) {
  EXPECT_DOUBLE_EQ(Tensor::full(1, 1, 7.0).item(), 7.0);
  EXPECT_THROW(Tensor(2, 1).item(), std::logic_error);
}

TEST(Tensor, MatmulKnownValues) {
  Tensor a{{1.0, 2.0}, {3.0, 4.0}};
  Tensor b{{5.0, 6.0}, {7.0, 8.0}};
  const Tensor c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(Tensor, MatmulShapeMismatchThrows) {
  Tensor a(2, 3);
  Tensor b(2, 3);
  EXPECT_THROW(a.matmul(b), std::invalid_argument);
}

TEST(Tensor, MatmulTransposedVariantsAgree) {
  util::Rng rng(1);
  const Tensor a = Tensor::randn(4, 3, rng);
  const Tensor b = Tensor::randn(3, 5, rng);
  const Tensor expected = a.matmul(b);

  Tensor via_ta;
  Tensor::matmul_into(a.transpose(), b, via_ta, /*trans_a=*/true, false);
  EXPECT_LT(Tensor::max_abs_diff(expected, via_ta), 1e-12);

  Tensor via_tb;
  Tensor::matmul_into(a, b.transpose(), via_tb, false, /*trans_b=*/true);
  EXPECT_LT(Tensor::max_abs_diff(expected, via_tb), 1e-12);
}

TEST(Tensor, MatmulAccumulate) {
  Tensor a{{1.0}};
  Tensor b{{2.0}};
  Tensor out = Tensor::full(1, 1, 10.0);
  Tensor::matmul_into(a, b, out, false, false, /*accumulate=*/true);
  EXPECT_DOUBLE_EQ(out.item(), 12.0);
}

TEST(Tensor, Transpose) {
  Tensor t{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Tensor tt = t.transpose();
  EXPECT_EQ(tt.rows(), 3u);
  EXPECT_EQ(tt.cols(), 2u);
  EXPECT_DOUBLE_EQ(tt.at(2, 1), 6.0);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a{{1.0, 2.0}};
  Tensor b{{3.0, 4.0}};
  Tensor c = a;
  c.add_(b);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 6.0);
  c.sub_(b);
  EXPECT_LT(Tensor::max_abs_diff(c, a), 1e-15);
  c.hadamard_(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 3.0);
  c.mul_(2.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 16.0);
}

TEST(Tensor, ElementwiseShapeMismatchThrows) {
  Tensor a(1, 2);
  Tensor b(2, 1);
  EXPECT_THROW(a.add_(b), std::invalid_argument);
  EXPECT_THROW(a.hadamard_(b), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t{{1.0, -2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(t.sum(), 6.0);
  EXPECT_DOUBLE_EQ(t.mean(), 1.5);
  EXPECT_DOUBLE_EQ(t.min(), -2.0);
  EXPECT_DOUBLE_EQ(t.max(), 4.0);
  EXPECT_DOUBLE_EQ(t.norm(), std::sqrt(1.0 + 4.0 + 9.0 + 16.0));
}

TEST(Tensor, RowExtraction) {
  Tensor t{{1.0, 2.0}, {3.0, 4.0}};
  const Tensor r = t.row(1);
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 3.0);
  EXPECT_THROW(t.row(2), std::out_of_range);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t{{1.0, 2.0, 3.0, 4.0}};
  const Tensor r = t.reshaped(2, 2);
  EXPECT_DOUBLE_EQ(r.at(1, 0), 3.0);
  EXPECT_THROW(t.reshaped(3, 2), std::invalid_argument);
}

TEST(Tensor, XavierBounds) {
  util::Rng rng(3);
  const Tensor w = Tensor::xavier(100, 50, rng);
  const double bound = std::sqrt(6.0 / 150.0);
  EXPECT_LE(w.max(), bound);
  EXPECT_GE(w.min(), -bound);
  EXPECT_NEAR(w.mean(), 0.0, 0.01);
}

TEST(Tensor, RandnMoments) {
  util::Rng rng(4);
  const Tensor t = Tensor::randn(200, 200, rng, 2.0);
  EXPECT_NEAR(t.mean(), 0.0, 0.05);
  double ss = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) ss += t[i] * t[i];
  EXPECT_NEAR(ss / static_cast<double>(t.size()), 4.0, 0.15);
}

TEST(Tensor, EqualityAndDiff) {
  Tensor a{{1.0, 2.0}};
  Tensor b{{1.0, 2.5}};
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
  EXPECT_DOUBLE_EQ(Tensor::max_abs_diff(a, b), 0.5);
}

}  // namespace
}  // namespace rlbf::nn
