#include <gtest/gtest.h>

#include <cmath>

#include "nn/autograd.h"

namespace rlbf::nn {
namespace {

TEST(Huber, QuadraticInsideDelta) {
  Tensor x(1, 3);
  x.at(0, 0) = 0.5;
  x.at(0, 1) = -0.5;
  x.at(0, 2) = 0.0;
  const VarPtr v = huber(make_var(x), 1.0);
  EXPECT_DOUBLE_EQ(v->value.at(0, 0), 0.125);
  EXPECT_DOUBLE_EQ(v->value.at(0, 1), 0.125);
  EXPECT_DOUBLE_EQ(v->value.at(0, 2), 0.0);
}

TEST(Huber, LinearOutsideDelta) {
  Tensor x(1, 2);
  x.at(0, 0) = 3.0;
  x.at(0, 1) = -3.0;
  const VarPtr v = huber(make_var(x), 1.0);
  // delta * (|x| - delta/2) = 1 * (3 - 0.5) = 2.5
  EXPECT_DOUBLE_EQ(v->value.at(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(v->value.at(0, 1), 2.5);
}

TEST(Huber, ContinuousAtDelta) {
  const double delta = 1.5;
  for (const double eps : {1e-6, -1e-6}) {
    Tensor lo(1, 1, delta - std::abs(eps));
    Tensor hi(1, 1, delta + std::abs(eps));
    const double vlo = huber(make_var(lo), delta)->value.item();
    const double vhi = huber(make_var(hi), delta)->value.item();
    EXPECT_NEAR(vlo, vhi, 1e-5);
  }
}

TEST(Huber, RejectsNonPositiveDelta) {
  const VarPtr x = make_var(Tensor(1, 1, 0.0));
  EXPECT_THROW(huber(x, 0.0), std::invalid_argument);
  EXPECT_THROW(huber(x, -1.0), std::invalid_argument);
}

TEST(Huber, GradientMatchesFiniteDifferences) {
  // Check d/dx huber(x) at points inside, outside, and near delta.
  const double delta = 1.0;
  for (const double x0 : {-2.5, -0.7, 0.0, 0.3, 0.99, 1.01, 4.0}) {
    const VarPtr x = make_var(Tensor(1, 1, x0), /*requires_grad=*/true);
    const VarPtr y = huber(x, delta);
    backward(y);
    const double analytic = x->grad.item();

    const double h = 1e-6;
    const double f_plus = huber(make_var(Tensor(1, 1, x0 + h)), delta)->value.item();
    const double f_minus = huber(make_var(Tensor(1, 1, x0 - h)), delta)->value.item();
    const double numeric = (f_plus - f_minus) / (2.0 * h);
    EXPECT_NEAR(analytic, numeric, 1e-4) << "x0=" << x0;
  }
}

TEST(Huber, GradientClampsAtDelta) {
  // Outliers contribute bounded gradient — the robustness property DQN
  // relies on when TD targets spike.
  const VarPtr x = make_var(Tensor(1, 1, 100.0), /*requires_grad=*/true);
  const VarPtr y = huber(x, 2.0);
  backward(y);
  EXPECT_DOUBLE_EQ(x->grad.item(), 2.0);
}

TEST(Huber, ComposesIntoScalarLoss) {
  // mean(huber(pred - target)) backpropagates into pred.
  Tensor pred_t(3, 1);
  pred_t.at(0, 0) = 1.0;
  pred_t.at(1, 0) = 2.0;
  pred_t.at(2, 0) = 3.0;
  const VarPtr pred = make_var(pred_t, /*requires_grad=*/true);
  Tensor target_t(3, 1);
  target_t.at(0, 0) = 1.0;
  target_t.at(1, 0) = 0.0;
  target_t.at(2, 0) = 3.5;
  const VarPtr loss = mean(huber(sub(pred, constant(target_t)), 1.0));
  backward(loss);
  // Residuals: 0, 2 (linear region), -0.5 (quadratic region).
  EXPECT_NEAR(loss->value.item(), (0.0 + 1.5 + 0.125) / 3.0, 1e-12);
  EXPECT_NEAR(pred->grad.at(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(pred->grad.at(1, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(pred->grad.at(2, 0), -0.5 / 3.0, 1e-12);
}

}  // namespace
}  // namespace rlbf::nn
