// The self-time contract: nested spans subtract from their immediate
// parent (and only the overlapping part), marks count but add no time,
// rows sort deterministically, and the rendered table is byte-stable.
#include "obs/profile.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace rlbf;

obs::PidTraceEvent ev(const std::string& name, std::int64_t ts,
                      std::int64_t dur, std::uint32_t pid = 1,
                      std::uint32_t tid = 0) {
  obs::PidTraceEvent e;
  e.event.name = name;
  e.event.category = "test";
  e.event.ts_us = ts;
  e.event.dur_us = dur;
  e.event.tid = tid;
  e.pid = pid;
  return e;
}

const obs::ProfileRow& row(const std::vector<obs::ProfileRow>& rows,
                           const std::string& name) {
  for (const obs::ProfileRow& r : rows) {
    if (r.name == name) return r;
  }
  ADD_FAILURE() << "no row named " << name;
  static const obs::ProfileRow missing;
  return missing;
}

TEST(ProfileTest, NestedSpansSubtractFromTheImmediateParent) {
  // outer [0,1000) > mid [100,500) > inner [200,300): inner's time
  // comes out of mid only; mid's full extent comes out of outer.
  const std::vector<obs::ProfileRow> rows = obs::profile_report({
      ev("outer", 0, 1000),
      ev("mid", 100, 400),
      ev("inner", 200, 100),
  });
  EXPECT_DOUBLE_EQ(row(rows, "outer").total_seconds, 1000e-6);
  EXPECT_DOUBLE_EQ(row(rows, "outer").self_seconds, 600e-6);
  EXPECT_DOUBLE_EQ(row(rows, "mid").total_seconds, 400e-6);
  EXPECT_DOUBLE_EQ(row(rows, "mid").self_seconds, 300e-6);
  EXPECT_DOUBLE_EQ(row(rows, "inner").self_seconds, 100e-6);
  EXPECT_EQ(row(rows, "outer").count, 1u);
}

TEST(ProfileTest, SiblingsOnDifferentLanesDoNotNest) {
  // Identical timestamps on a different tid/pid: no parent-child
  // relation, each span keeps its full self time.
  const std::vector<obs::ProfileRow> rows = obs::profile_report({
      ev("a", 0, 100, 1, 0),
      ev("b", 10, 50, 1, 1),   // other thread
      ev("c", 10, 50, 2, 0),   // other process
  });
  EXPECT_DOUBLE_EQ(row(rows, "a").self_seconds, 100e-6);
  EXPECT_DOUBLE_EQ(row(rows, "b").self_seconds, 50e-6);
  EXPECT_DOUBLE_EQ(row(rows, "c").self_seconds, 50e-6);
}

TEST(ProfileTest, PartialOverlapSubtractsOnlyTheOverlap) {
  // Clock-skewed merge case: child [50,150) sticks out past parent
  // [0,100). Parent loses the 50us overlap, not the child's full 100us
  // — self never goes negative.
  const std::vector<obs::ProfileRow> rows = obs::profile_report({
      ev("parent", 0, 100),
      ev("child", 50, 100),
  });
  EXPECT_DOUBLE_EQ(row(rows, "parent").self_seconds, 50e-6);
  EXPECT_DOUBLE_EQ(row(rows, "child").self_seconds, 100e-6);
}

TEST(ProfileTest, MarksCountButAddNoTime) {
  const std::vector<obs::ProfileRow> rows = obs::profile_report({
      ev("work", 0, 100),
      ev("retry", 10, 0),
      ev("retry", 20, 0),
  });
  EXPECT_EQ(row(rows, "retry").count, 2u);
  EXPECT_DOUBLE_EQ(row(rows, "retry").total_seconds, 0.0);
  EXPECT_DOUBLE_EQ(row(rows, "retry").self_seconds, 0.0);
  // Marks don't subtract from the enclosing span either.
  EXPECT_DOUBLE_EQ(row(rows, "work").self_seconds, 100e-6);
}

TEST(ProfileTest, RepeatedNamesAggregateAcrossSpans) {
  const std::vector<obs::ProfileRow> rows = obs::profile_report({
      ev("step", 0, 100),
      ev("step", 200, 300),
  });
  const obs::ProfileRow& r = row(rows, "step");
  EXPECT_EQ(r.count, 2u);
  EXPECT_DOUBLE_EQ(r.total_seconds, 400e-6);
  EXPECT_DOUBLE_EQ(r.mean_seconds, 200e-6);
  EXPECT_GT(r.p95_seconds, 0.0);
  EXPECT_GE(r.p99_seconds, r.p50_seconds);
}

TEST(ProfileTest, RowsSortBySelfThenTotalThenName) {
  const std::vector<obs::ProfileRow> rows = obs::profile_report({
      ev("small", 0, 10),
      ev("big", 1000, 500),
      ev("alpha", 2000, 10),  // ties with "small" on self AND total
  });
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "big");
  EXPECT_EQ(rows[1].name, "alpha");  // name ascending breaks the tie
  EXPECT_EQ(rows[2].name, "small");
}

TEST(ProfileTest, ReportIsInputOrderInvariantAndTableIsByteStable) {
  const std::vector<obs::PidTraceEvent> forward = {
      ev("outer", 0, 1000),
      ev("mid", 100, 400),
      ev("inner", 200, 100),
      ev("other", 0, 700, 2),
  };
  std::vector<obs::PidTraceEvent> reversed(forward.rbegin(), forward.rend());
  std::ostringstream a;
  std::ostringstream b;
  obs::write_profile_table(a, obs::profile_report(forward));
  obs::write_profile_table(b, obs::profile_report(reversed));
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("self_s"), std::string::npos);
}

TEST(ProfileTest, TopTruncationIsNamed) {
  std::vector<obs::PidTraceEvent> events;
  for (int i = 0; i < 5; ++i) {
    events.push_back(ev("span" + std::to_string(i), i * 100, 10 + i));
  }
  std::ostringstream os;
  obs::write_profile_table(os, obs::profile_report(events), 2);
  const std::string table = os.str();
  EXPECT_NE(table.find("3 more span names below --top=2"), std::string::npos)
      << table;
  EXPECT_EQ(table.find("span0"), std::string::npos) << table;  // truncated
}

TEST(ProfileTest, CsvCoversEveryRowAndEscapesNames) {
  std::ostringstream os;
  obs::write_profile_csv(os, obs::profile_report({
                                 ev("plain", 0, 100),
                                 ev("with,comma \"q\"", 200, 50),
                             }));
  const std::string csv = os.str();
  EXPECT_NE(csv.find("span,count,self_s,total_s,mean_s,p50_s,p95_s,p99_s"),
            std::string::npos);
  EXPECT_NE(csv.find("\"with,comma \"\"q\"\"\""), std::string::npos) << csv;
  EXPECT_NE(csv.find("plain,1,"), std::string::npos) << csv;
}

TEST(ProfileTest, EmptyInputYieldsEmptyReport) {
  EXPECT_TRUE(obs::profile_report({}).empty());
  std::ostringstream os;
  obs::write_profile_table(os, {});
  EXPECT_NE(os.str().find("span"), std::string::npos);  // header still prints
}

}  // namespace
