// The obs/trace contract: RAII spans render as Chrome trace_event
// complete events, per-thread buffers survive their threads, and the
// disabled mode records nothing at all.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace {

using namespace rlbf;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_tracing(true);
    obs::clear_trace();
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::clear_trace();
  }

  static std::vector<obs::TraceEvent> events_named(const std::string& name) {
    std::vector<obs::TraceEvent> out;
    for (obs::TraceEvent& ev : obs::trace_events_snapshot()) {
      if (ev.name == name) out.push_back(std::move(ev));
    }
    return out;
  }
};

TEST_F(TraceTest, SpanRecordsCompleteEvent) {
  {
    obs::Span span("unit_span", "test");
    EXPECT_TRUE(span.active());
  }
  const std::vector<obs::TraceEvent> events = events_named("unit_span");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].category, "test");
  EXPECT_GE(events[0].ts_us, 0);
  EXPECT_GE(events[0].dur_us, 0);
}

TEST_F(TraceTest, LabeledSpanCopiesDynamicName) {
  const std::string name = "labeled span " + std::to_string(42);
  {
    obs::Span span = obs::Span::labeled(name, "test");
    EXPECT_TRUE(span.active());
  }
  EXPECT_EQ(events_named("labeled span 42").size(), 1u);
}

TEST_F(TraceTest, EndIsIdempotent) {
  obs::Span span("ended_twice", "test");
  span.end();
  span.end();  // second end records nothing
  EXPECT_EQ(events_named("ended_twice").size(), 1u);
}

TEST_F(TraceTest, MoveTransfersOwnershipOfTheRecord) {
  {
    obs::Span outer = [] {
      obs::Span inner = obs::Span::labeled("moved_span", "test");
      return inner;  // moved out; inner's destructor must not record
    }();
    EXPECT_TRUE(outer.active());
  }
  EXPECT_EQ(events_named("moved_span").size(), 1u);
}

TEST_F(TraceTest, MarkRecordsZeroDuration) {
  obs::trace_mark("marker", "test");
  const std::vector<obs::TraceEvent> events = events_named("marker");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].dur_us, 0);
}

TEST_F(TraceTest, PoolThreadsGetDistinctTidsAndSurvivePoolTeardown) {
  constexpr std::size_t kTasks = 32;
  {
    util::ThreadPool pool(4);
    pool.parallel_for(kTasks, [&](std::size_t i) {
      obs::Span span =
          obs::Span::labeled("pool_span_" + std::to_string(i), "test");
    });
  }  // pool (and its threads) destroyed; events must survive
  std::size_t found = 0;
  std::vector<std::uint32_t> tids;
  for (const obs::TraceEvent& ev : obs::trace_events_snapshot()) {
    if (ev.name.rfind("pool_span_", 0) == 0) {
      ++found;
      tids.push_back(ev.tid);
    }
  }
  EXPECT_EQ(found, kTasks);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_GE(tids.size(), 1u);  // tids are assigned; with 4 workers, up to 4
  EXPECT_LE(tids.size(), 4u);
}

TEST_F(TraceTest, WriteTraceJsonIsChromeShaped) {
  {
    obs::Span span("json \"quoted\" span", "test\\cat");
  }
  std::ostringstream os;
  obs::write_trace_json(os);
  const std::string doc = os.str();
  EXPECT_EQ(doc.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"pid\": 1"), std::string::npos);
  // Escaping keeps the document valid through hostile names.
  EXPECT_NE(doc.find("json \\\"quoted\\\" span"), std::string::npos);
  EXPECT_NE(doc.find("test\\\\cat"), std::string::npos);
  // The document closes with the wall-clock anchor that lets
  // obs::merge align this trace with other processes'.
  EXPECT_NE(doc.find("], \"epochAnchorUs\": "), std::string::npos);
  EXPECT_EQ(doc.substr(doc.size() - 2), "}\n");
}

TEST_F(TraceTest, EmptyTraceIsStillAValidDocument) {
  obs::clear_trace();
  std::ostringstream os;
  obs::write_trace_json(os);
  EXPECT_EQ(os.str().rfind("{\"traceEvents\": [], \"epochAnchorUs\": ", 0), 0u);
}

TEST_F(TraceTest, EpochAnchorIsLatchedOnceTracingEnables) {
  // The fixture enabled tracing, so the anchor must be latched — and
  // stable across calls (it is latched exactly once per process).
  const std::int64_t anchor = obs::trace_epoch_anchor_us();
  EXPECT_GT(anchor, 0);
  EXPECT_EQ(obs::trace_epoch_anchor_us(), anchor);
}

TEST(TraceDisabledTest, DisabledSpansRecordNothing) {
  obs::set_tracing(false);
  obs::clear_trace();
  {
    obs::Span span("disabled_span", "test");
    EXPECT_FALSE(span.active());
    obs::Span labeled = obs::Span::labeled("disabled_labeled", "test");
    EXPECT_FALSE(labeled.active());
    obs::trace_mark("disabled_mark", "test");
  }
  EXPECT_TRUE(obs::trace_events_snapshot().empty());
  EXPECT_EQ(obs::trace_now_us(), 0);
}

TEST(TraceDisabledTest, SpanStartedDisabledStaysInertAfterEnable) {
  obs::set_tracing(false);
  obs::clear_trace();
  {
    obs::Span span("late_enable_span", "test");
    obs::set_tracing(true);
  }  // decided at construction: must not record
  const std::vector<obs::TraceEvent> events = obs::trace_events_snapshot();
  obs::set_tracing(false);
  for (const obs::TraceEvent& ev : events) {
    EXPECT_NE(ev.name, "late_enable_span");
  }
}

}  // namespace
