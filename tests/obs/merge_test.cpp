// The fleet-aggregation contract: the JSON reader round-trips the
// registry's own dumps, counters sum exactly, gauges keep a last-write
// source tag, histogram bucket-merge is associative, trace splicing
// remaps colliding pids and aligns epochs — and every bad input
// (missing sidecar, empty file, layout mismatch, duplicate label) is a
// NAMED error, never a crash.
#include "obs/merge.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace {

using namespace rlbf;

// ---- json reader --------------------------------------------------------

TEST(JsonTest, ParsesScalarsArraysAndObjects) {
  const obs::json::Value v = obs::json::parse(
      R"({"a": 1.5, "b": "x\n\"y\"", "c": [true, false, null], "d": {"e": -2}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.number_at("a"), 1.5);
  EXPECT_EQ(v.string_at("b"), "x\n\"y\"");
  const obs::json::Value& c = v.at("c");
  ASSERT_TRUE(c.is_array());
  ASSERT_EQ(c.items.size(), 3u);
  EXPECT_TRUE(c.items[0].boolean);
  EXPECT_FALSE(c.items[1].boolean);
  EXPECT_TRUE(c.items[2].is_null());
  EXPECT_DOUBLE_EQ(v.at("d").number_at("e"), -2.0);
}

TEST(JsonTest, InfRenderingRoundTrips) {
  // The obs dumps render +inf as 1e999; from_chars overflows, and the
  // reader maps that back to infinity instead of failing.
  const obs::json::Value v = obs::json::parse(R"({"p": 1e999, "n": -1e999})");
  EXPECT_TRUE(std::isinf(v.number_at("p")));
  EXPECT_GT(v.number_at("p"), 0.0);
  EXPECT_TRUE(std::isinf(v.number_at("n")));
  EXPECT_LT(v.number_at("n"), 0.0);
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  const obs::json::Value v =
      obs::json::parse(R"({"s": "é😀"})");
  EXPECT_EQ(v.string_at("s"), "\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(JsonTest, ErrorsNameOriginAndOffset) {
  try {
    obs::json::parse("{\"a\": }", "worker0.metrics.json");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("worker0.metrics.json"), std::string::npos) << what;
    EXPECT_NE(what.find("at byte"), std::string::npos) << what;
  }
  EXPECT_THROW(obs::json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("{\"a\": 1,}"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("\"unterminated"), std::runtime_error);
}

// ---- metrics parse + merge ----------------------------------------------

/// A registry dump with known contents, via the REAL writer — the
/// parser must consume exactly what Registry::write_json emits.
std::string registry_dump(std::uint64_t events, double util, double obs1,
                          double obs2) {
  obs::set_enabled(true);
  obs::Registry::instance().reset();
  obs::counter("sim.events").add(events);
  obs::gauge("dist.util").set(util);
  obs::Histogram& h = obs::histogram("t.seconds");
  h.observe(obs1);
  h.observe(obs2);
  std::string dump = obs::Registry::instance().to_json();
  obs::Registry::instance().reset();
  obs::set_enabled(false);
  return dump;
}

TEST(MergeMetricsTest, ParsesTheRegistrysOwnDump) {
  const obs::MetricsDoc doc =
      obs::parse_metrics_json(registry_dump(42, 0.75, 1e-6, 2.5), "dump");
  EXPECT_EQ(doc.counters.at("sim.events"), 42u);
  EXPECT_DOUBLE_EQ(doc.gauges.at("dist.util"), 0.75);
  const obs::Histogram::Snapshot& snap = doc.histograms.at("t.seconds");
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.sum, 1e-6 + 2.5);
  EXPECT_DOUBLE_EQ(snap.min, 1e-6);
  EXPECT_DOUBLE_EQ(snap.max, 2.5);
  // The registry's duration layout survives the round trip.
  EXPECT_EQ(snap.upper_bounds, obs::duration_buckets().upper_bounds);
  EXPECT_EQ(snap.bucket_counts.size(), snap.upper_bounds.size() + 1);
}

TEST(MergeMetricsTest, CountersSumAndGaugesTagLastWriter) {
  std::vector<obs::LabeledMetrics> docs;
  docs.push_back({"worker0", obs::parse_metrics_json(
                                 registry_dump(10, 0.25, 1e-6, 1e-6), "w0")});
  docs.push_back({"worker1", obs::parse_metrics_json(
                                 registry_dump(32, 0.50, 2.5, 2.5), "w1")});
  const obs::MergedMetrics merged = obs::merge_metrics(docs);
  ASSERT_EQ(merged.sources.size(), 2u);
  EXPECT_EQ(merged.counters.at("sim.events"), 42u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("dist.util").value, 0.50);
  EXPECT_EQ(merged.gauges.at("dist.util").source, "worker1");
  const obs::Histogram::Snapshot& snap = merged.histograms.at("t.seconds");
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.min, 1e-6);
  EXPECT_DOUBLE_EQ(snap.max, 2.5);
}

TEST(MergeMetricsTest, NamedErrorsOnBadInput) {
  const obs::MetricsDoc doc = obs::parse_metrics_json(
      registry_dump(1, 0.0, 1e-6, 1e-6), "doc");
  EXPECT_THROW(obs::merge_metrics({}), std::invalid_argument);
  try {
    obs::merge_metrics({{"same", doc}, {"same", doc}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate source label 'same'"),
              std::string::npos);
  }
  // Layout mismatch: the error names the metric and the source.
  obs::MetricsDoc other = doc;
  other.histograms.at("t.seconds").upper_bounds.pop_back();
  other.histograms.at("t.seconds").bucket_counts.pop_back();
  try {
    obs::merge_metrics({{"a", doc}, {"b", other}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("t.seconds"), std::string::npos) << what;
    EXPECT_NE(what.find("'b'"), std::string::npos) << what;
  }
}

TEST(MergeMetricsTest, LoadFileNamesMissingAndEmptySidecars) {
  try {
    obs::load_metrics_file("no/such/worker3.metrics.json");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no/such/worker3.metrics.json"),
              std::string::npos);
  }
  const std::string empty_path = "merge_test_empty.metrics.json";
  std::ofstream(empty_path, std::ios::trunc).close();
  try {
    obs::load_metrics_file(empty_path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("empty"), std::string::npos) << what;
    EXPECT_NE(what.find(empty_path), std::string::npos) << what;
  }
  std::filesystem::remove(empty_path);
}

TEST(MergeHistogramTest, BucketMergeIsAssociative) {
  // Exactly representable values, so sums (the only FP accumulation)
  // are order-independent and the associativity check is byte-exact.
  const auto make = [](double a, double b) {
    obs::Histogram h(obs::exponential_buckets(1.0, 2.0, 4));
    h.observe(a);
    h.observe(b);
    return h.snapshot();
  };
  const obs::Histogram::Snapshot x = make(0.5, 1.5);
  const obs::Histogram::Snapshot y = make(2.5, 40.0);
  const obs::Histogram::Snapshot z = make(0.25, 8.0);
  const obs::Histogram::Snapshot left =
      obs::merge_histogram(obs::merge_histogram(x, y), z);
  const obs::Histogram::Snapshot right =
      obs::merge_histogram(x, obs::merge_histogram(y, z));
  EXPECT_EQ(left.bucket_counts, right.bucket_counts);
  EXPECT_EQ(left.count, right.count);
  EXPECT_DOUBLE_EQ(left.sum, right.sum);
  EXPECT_DOUBLE_EQ(left.min, right.min);
  EXPECT_DOUBLE_EQ(left.max, right.max);
  // Identity-ish: merging with an empty snapshot keeps the extremes.
  obs::Histogram empty(obs::exponential_buckets(1.0, 2.0, 4));
  const obs::Histogram::Snapshot with_empty =
      obs::merge_histogram(x, empty.snapshot());
  EXPECT_DOUBLE_EQ(with_empty.min, x.min);
  EXPECT_DOUBLE_EQ(with_empty.max, x.max);
  EXPECT_EQ(with_empty.count, x.count);
}

TEST(MergeMetricsTest, MergedJsonRoundTripsThroughTheParser) {
  std::vector<obs::LabeledMetrics> docs;
  docs.push_back({"worker0", obs::parse_metrics_json(
                                 registry_dump(7, 0.5, 1e-6, 1e-6), "w0")});
  docs.push_back({"supervisor", obs::parse_metrics_json(
                                    registry_dump(0, 0.9, 2.5, 2.5), "sup")});
  const obs::MergedMetrics merged = obs::merge_metrics(docs);
  std::ostringstream os;
  obs::write_merged_metrics_json(os, merged);
  const obs::json::Value v = obs::json::parse(os.str(), "merged");
  ASSERT_TRUE(v.at("sources").is_array());
  EXPECT_EQ(v.at("sources").items[1].text, "supervisor");
  EXPECT_DOUBLE_EQ(v.at("counters").number_at("sim.events"), 7.0);
  EXPECT_EQ(v.at("gauges").at("dist.util").string_at("source"), "supervisor");
  // Histograms render through the same writer as the registry dump,
  // percentiles included.
  const obs::json::Value& hist = v.at("histograms").at("t.seconds");
  EXPECT_DOUBLE_EQ(hist.number_at("count"), 4.0);
  EXPECT_TRUE(hist.find("p50") != nullptr);
  EXPECT_TRUE(hist.find("p99") != nullptr);
}

// ---- trace parse + splice -----------------------------------------------

obs::PidTraceEvent make_event(const std::string& name, std::int64_t ts,
                              std::int64_t dur, std::uint32_t pid,
                              std::uint32_t tid = 0) {
  obs::PidTraceEvent ev;
  ev.event.name = name;
  ev.event.category = "test";
  ev.event.ts_us = ts;
  ev.event.dur_us = dur;
  ev.event.tid = tid;
  ev.pid = pid;
  return ev;
}

TEST(SpliceTraceTest, RemapsCollidingPidsAndAlignsEpochs) {
  // Both workers report pid 1 (every single-process trace does), with
  // anchors 1000us apart: the later worker's spans shift right.
  obs::TraceDoc w0;
  w0.epoch_anchor_us = 1'000'000;
  w0.events.push_back(make_event("a", 10, 5, 1));
  obs::TraceDoc w1;
  w1.epoch_anchor_us = 1'001'000;
  w1.events.push_back(make_event("b", 10, 5, 1));
  const obs::SplicedTrace spliced =
      obs::splice_traces({{"worker0", w0}, {"worker1", w1}});
  ASSERT_EQ(spliced.events.size(), 2u);
  EXPECT_NE(spliced.events[0].pid, spliced.events[1].pid);
  EXPECT_EQ(spliced.epoch_anchor_us, 1'000'000);
  EXPECT_EQ(spliced.events[0].event.ts_us, 10);
  EXPECT_EQ(spliced.events[1].event.ts_us, 1010);  // +1000us anchor delta
  ASSERT_EQ(spliced.processes.size(), 2u);
  EXPECT_EQ(spliced.processes[0].name, "worker0");
  EXPECT_EQ(spliced.processes[1].name, "worker1");
}

TEST(SpliceTraceTest, MultiPidSourceKeepsDistinctRows) {
  // A source that is ITSELF a merged trace (two pids) stays two
  // processes, each named by its source pid.
  obs::TraceDoc doc;
  doc.events.push_back(make_event("a", 0, 1, 1));
  doc.events.push_back(make_event("b", 0, 1, 2));
  const obs::SplicedTrace spliced = obs::splice_traces({{"fleet", doc}});
  ASSERT_EQ(spliced.processes.size(), 2u);
  EXPECT_EQ(spliced.processes[0].name, "fleet/pid1");
  EXPECT_EQ(spliced.processes[1].name, "fleet/pid2");
  EXPECT_NE(spliced.events[0].pid, spliced.events[1].pid);
}

TEST(SpliceTraceTest, UnanchoredSourcesAreNotShifted) {
  obs::TraceDoc anchored;
  anchored.epoch_anchor_us = 2'000'000;
  anchored.events.push_back(make_event("a", 10, 5, 1));
  obs::TraceDoc unanchored;  // epoch_anchor_us == 0: nothing to align by
  unanchored.events.push_back(make_event("b", 10, 5, 1));
  const obs::SplicedTrace spliced =
      obs::splice_traces({{"sup", anchored}, {"old", unanchored}});
  EXPECT_EQ(spliced.events[0].event.ts_us, 10);
  EXPECT_EQ(spliced.events[1].event.ts_us, 10);
  EXPECT_EQ(spliced.epoch_anchor_us, 2'000'000);
  EXPECT_THROW(obs::splice_traces({}), std::invalid_argument);
  EXPECT_THROW(obs::splice_traces({{"x", anchored}, {"x", unanchored}}),
               std::invalid_argument);
}

TEST(SpliceTraceTest, WrittenTraceRoundTripsAndDropsMetadataOnReparse) {
  obs::TraceDoc doc;
  doc.epoch_anchor_us = 5;
  doc.events.push_back(make_event("span \"q\"", 1, 2, 1, 3));
  const obs::SplicedTrace spliced = obs::splice_traces({{"w", doc}});
  std::ostringstream os;
  obs::write_spliced_trace_json(os, spliced);
  // The document parses as a trace again: process_name metadata events
  // are skipped, spans and the anchor survive with escapes intact.
  const obs::TraceDoc reparsed = obs::parse_trace_json(os.str(), "spliced");
  ASSERT_EQ(reparsed.events.size(), 1u);
  EXPECT_EQ(reparsed.events[0].event.name, "span \"q\"");
  EXPECT_EQ(reparsed.events[0].event.ts_us, 1);
  EXPECT_EQ(reparsed.events[0].event.dur_us, 2);
  EXPECT_EQ(reparsed.events[0].event.tid, 3u);
  EXPECT_EQ(reparsed.epoch_anchor_us, 5);
  // And the raw text carries the Chrome metadata for the process row.
  EXPECT_NE(os.str().find("\"process_name\""), std::string::npos);
}

// ---- percentiles (used by dumps, merge, and profile) --------------------

TEST(PercentileTest, InterpolatesWithinBucketsAndClampsToExtremes) {
  obs::Histogram h(obs::exponential_buckets(1.0, 2.0, 3));  // 1,2,4,+inf
  for (int i = 0; i < 100; ++i) h.observe(1.5);
  const obs::Histogram::Snapshot snap = h.snapshot();
  // All mass in (1,2]; clamped to the exact observed extremes.
  EXPECT_DOUBLE_EQ(obs::percentile(snap, 0.0), 1.5);
  EXPECT_DOUBLE_EQ(obs::percentile(snap, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(obs::percentile(snap, 1.0), 1.5);
  obs::Histogram empty(obs::exponential_buckets(1.0, 2.0, 3));
  EXPECT_DOUBLE_EQ(obs::percentile(empty.snapshot(), 0.5), 0.0);
  // Spread mass: the median of 1@0.5 and 1@3.0 lands between them.
  obs::Histogram two(obs::exponential_buckets(1.0, 2.0, 3));
  two.observe(0.5);
  two.observe(3.0);
  const double p50 = obs::percentile(two.snapshot(), 0.5);
  EXPECT_GE(p50, 0.5);
  EXPECT_LE(p50, 3.0);
}

}  // namespace
