// The obs/metrics contract: deterministic dumps, exact concurrent
// aggregation, fixed bucket semantics — and the disabled mode the golden
// byte-identity promise rests on: hooks that allocate nothing and
// register nothing.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.h"

// ---- allocation counter -------------------------------------------------
// Replacing global operator new in this TU counts every heap allocation
// in the test binary; the zero-allocation test brackets the disabled
// hooks with it. Counting is relaxed-atomic so the concurrent tests in
// this binary stay exact too.
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace rlbf;

/// Every test owns the global switches it relies on.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Registry::instance().reset();
  }
  void TearDown() override { obs::set_enabled(false); }
};

TEST_F(MetricsTest, CounterAddsExactly) {
  obs::Counter& c = obs::counter("test.counter");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Lookup under the same name returns the same metric.
  EXPECT_EQ(&obs::counter("test.counter"), &c);
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(MetricsTest, ExponentialBucketEdges) {
  const obs::HistogramLayout layout = obs::exponential_buckets(1e-6, 4.0, 3);
  ASSERT_EQ(layout.upper_bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(layout.upper_bounds[0], 1e-6);
  EXPECT_DOUBLE_EQ(layout.upper_bounds[1], 4e-6);
  EXPECT_DOUBLE_EQ(layout.upper_bounds[2], 16e-6);
  EXPECT_THROW(obs::exponential_buckets(0.0, 4.0, 3), std::invalid_argument);
  EXPECT_THROW(obs::exponential_buckets(1.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(obs::exponential_buckets(1.0, 4.0, 0), std::invalid_argument);
}

TEST_F(MetricsTest, HistogramBucketAssignmentIsLe) {
  obs::HistogramLayout layout;
  layout.upper_bounds = {1.0, 2.0, 4.0};
  obs::Histogram h(std::move(layout));
  // A value equal to an upper bound belongs to THAT bucket (le
  // semantics), one past it to the next, and past the last bound to the
  // implicit +inf bucket.
  h.observe(0.5);   // bucket 0 (le 1)
  h.observe(1.0);   // bucket 0 (le 1, inclusive)
  h.observe(1.001); // bucket 1 (le 2)
  h.observe(4.0);   // bucket 2 (le 4, inclusive)
  h.observe(100.0); // bucket 3 (inf)
  const obs::Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.bucket_counts.size(), 4u);
  EXPECT_EQ(snap.bucket_counts[0], 2u);
  EXPECT_EQ(snap.bucket_counts[1], 1u);
  EXPECT_EQ(snap.bucket_counts[2], 1u);
  EXPECT_EQ(snap.bucket_counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.001 + 4.0 + 100.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
}

TEST_F(MetricsTest, HistogramRelayoutThrows) {
  obs::histogram("test.relayout", obs::duration_buckets());
  EXPECT_NO_THROW(obs::histogram("test.relayout", obs::duration_buckets()));
  EXPECT_THROW(
      obs::histogram("test.relayout", obs::exponential_buckets(1.0, 2.0, 2)),
      std::invalid_argument);
}

TEST_F(MetricsTest, JsonDumpIsDeterministicAndSorted) {
  // Register deliberately out of order; the dump must come back sorted
  // by name regardless, and repeated dumps must be byte-identical.
  obs::counter("test.z_last").add(3);
  obs::counter("test.a_first").add(1);
  obs::gauge("test.m_gauge").set(0.5);
  obs::histogram("test.h").observe(2.5e-6);

  const std::string dump = obs::Registry::instance().to_json();
  EXPECT_EQ(dump, obs::Registry::instance().to_json());

  const std::size_t a = dump.find("\"test.a_first\": 1");
  const std::size_t z = dump.find("\"test.z_last\": 3");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, z);
  EXPECT_NE(dump.find("\"test.m_gauge\": 0.5"), std::string::npos);
  // The histogram entry renders count/sum/min/max and the le buckets,
  // terminated by the implicit inf bucket.
  EXPECT_NE(dump.find("\"count\": 1, \"sum\": 2.5e-06"), std::string::npos);
  EXPECT_NE(dump.find("{\"le\": \"inf\", \"count\": 0}"), std::string::npos);

  // Sorted-name promise, wholesale: the registry's own name listings.
  const std::vector<std::string> names =
      obs::Registry::instance().counter_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(MetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  obs::Counter& c = obs::counter("test.reset_me");
  c.add(7);
  obs::Registry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  const std::vector<std::string> names =
      obs::Registry::instance().counter_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.reset_me"),
            names.end());
}

TEST_F(MetricsTest, ConcurrentScopedTimersAggregateExactly) {
  obs::Histogram& hist =
      obs::histogram("test.concurrent_timer", obs::duration_buckets());
  hist.reset();
  constexpr std::size_t kTasks = 256;
  util::ThreadPool pool(8);
  pool.parallel_for(kTasks, [&](std::size_t) {
    obs::ScopedTimer timer(hist);
    // A little real work so durations are nonzero.
    volatile double sink = 0.0;
    for (int i = 0; i < 100; ++i) sink = sink + 1.0;
  });
  const obs::Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kTasks);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t n : snap.bucket_counts) bucket_total += n;
  EXPECT_EQ(bucket_total, kTasks);  // every merge landed in exactly one bucket
  EXPECT_GE(snap.sum, 0.0);
  EXPECT_LE(snap.min, snap.max);
}

TEST_F(MetricsTest, ConcurrentCountersAreExact) {
  obs::Counter& c = obs::counter("test.concurrent_counter");
  c.reset();
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 1000;
  util::ThreadPool pool(8);
  pool.parallel_for(kTasks, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) c.add(1);
  });
  EXPECT_EQ(c.value(), kTasks * kPerTask);
}

TEST_F(MetricsTest, ScopedTimerStopIsIdempotentAndReturnsSeconds) {
  obs::Histogram& hist =
      obs::histogram("test.timer_stop", obs::duration_buckets());
  hist.reset();
  obs::ScopedTimer timer(hist);
  EXPECT_TRUE(timer.active());
  const double first = timer.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_FALSE(timer.active());
  EXPECT_EQ(timer.stop(), 0.0);  // second stop merges nothing
  EXPECT_EQ(hist.count(), 1u);
}

// ---- the disabled mode --------------------------------------------------

TEST(MetricsDisabledTest, HooksAllocateNothingAndRegisterNothing) {
  obs::set_enabled(false);
  const std::size_t counters_before =
      obs::Registry::instance().counter_names().size();

  const std::size_t allocations_before =
      g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    // The documented hook shape: branch on the atomic flag, touch the
    // registry only when enabled.
    if (obs::enabled()) {
      obs::counter("test.disabled_counter").add(1);
    }
    // RAII hooks constructed unconditionally must stay inert too.
    obs::ScopedTimer timer("test.disabled_timer");
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed),
            allocations_before);

  const std::vector<std::string> names =
      obs::Registry::instance().counter_names();
  EXPECT_EQ(names.size(), counters_before);
  EXPECT_EQ(std::find(names.begin(), names.end(), "test.disabled_counter"),
            names.end());
}

// ---- CachedCounter / registry-generation regression ---------------------
// The historical hot-path idiom latched `static obs::Counter&` once per
// process; if the registry was ever cleared/swapped within a process the
// latched reference kept counting into (or dangling off) the old node.
// CachedCounter revalidates against Registry::generation().

TEST(CachedCounterTest, ResolvesLazilyAndCounts) {
  obs::CachedCounter handle("test.cached_counter_basic");
  handle.add(2);
  handle.add();
  EXPECT_EQ(obs::counter("test.cached_counter_basic").value(), 3u);
}

TEST(CachedCounterTest, ReresolvesAfterRegistryClear) {
  obs::CachedCounter handle("test.cached_counter_clear");
  handle.add(5);
  EXPECT_EQ(obs::counter("test.cached_counter_clear").value(), 5u);

  const std::uint64_t gen_before = obs::Registry::instance().generation();
  obs::Registry::instance().clear_for_testing();
  EXPECT_GT(obs::Registry::instance().generation(), gen_before);

  // The name is gone until something re-registers it...
  const std::vector<std::string> names =
      obs::Registry::instance().counter_names();
  EXPECT_EQ(std::find(names.begin(), names.end(), "test.cached_counter_clear"),
            names.end());

  // ...and the handle lands its next increment in the NEW node instead
  // of the stale pre-clear one (which a static-latched reference would
  // still be pointing at).
  handle.add(7);
  EXPECT_EQ(obs::counter("test.cached_counter_clear").value(), 7u);
}

TEST(CachedCounterTest, ConcurrentAddsAcrossClearStayOnLiveNode) {
  obs::CachedCounter handle("test.cached_counter_threads");
  rlbf::util::ThreadPool pool(4);
  pool.parallel_for(64, [&](std::size_t) { handle.add(); });
  EXPECT_EQ(obs::counter("test.cached_counter_threads").value(), 64u);
  obs::Registry::instance().clear_for_testing();
  pool.parallel_for(64, [&](std::size_t) { handle.add(); });
  EXPECT_EQ(obs::counter("test.cached_counter_threads").value(), 64u);
}

TEST(MetricsDisabledTest, TimerStartedDisabledNeverMerges) {
  obs::set_enabled(false);
  obs::ScopedTimer timer("test.disabled_timer_merge");
  EXPECT_FALSE(timer.active());
  // Enabling mid-scope must not retroactively activate it: the golden
  // contract is decided at construction.
  obs::set_enabled(true);
  EXPECT_EQ(timer.stop(), 0.0);
  obs::set_enabled(false);
  const std::vector<std::string> names =
      obs::Registry::instance().histogram_names();
  EXPECT_EQ(std::find(names.begin(), names.end(),
                      "test.disabled_timer_merge"),
            names.end());
}

}  // namespace
