// The time-series contract: the JSONL writer round-trips through the
// strict reader byte-for-byte on re-render, the registry sampler keys
// samples by ordinal (never the wall clock) and records counter deltas,
// the worker-tagged merge is associative, and every malformed input —
// missing header, truncated line, garbage, mistyped member — is a NAMED
// error carrying the origin and line number, never a crash or a silent
// partial parse.
#include "obs/series.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace {

using namespace rlbf;

std::string render(const std::vector<obs::Series>& series,
                   std::int64_t anchor) {
  std::ostringstream os;
  obs::write_series_jsonl(os, series, anchor);
  return os.str();
}

/// EXPECT that `fn` throws `E` and that the message contains `needle`.
template <typename E, typename Fn>
void expect_throw_containing(Fn fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected an exception mentioning: " << needle;
  } catch (const E& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

// ---- recorder + round trip ----------------------------------------------

TEST(SeriesTest, RecorderRoundTripsThroughWriterAndReader) {
  obs::SeriesRecorder recorder;
  recorder.record("train.policy_loss", 1, 0.25);
  recorder.record("train.policy_loss", 2, 0.125);
  recorder.record("train.eval_bsld", 2, 3.5);
  recorder.record("dist.job_seconds", 0, 1.5);
  EXPECT_FALSE(recorder.empty());

  const std::string text =
      render(recorder.snapshot(), recorder.epoch_anchor_us());
  const obs::SeriesDoc doc = obs::parse_series_jsonl(text, "roundtrip");
  EXPECT_EQ(doc.epoch_anchor_us, recorder.epoch_anchor_us());
  ASSERT_EQ(doc.series.size(), 3u);
  // Reader output is sorted by (name, source).
  EXPECT_EQ(doc.series[0].name, "dist.job_seconds");
  EXPECT_EQ(doc.series[1].name, "train.eval_bsld");
  EXPECT_EQ(doc.series[2].name, "train.policy_loss");
  ASSERT_EQ(doc.series[2].points.size(), 2u);
  EXPECT_EQ(doc.series[2].points[0].step, 1);
  EXPECT_DOUBLE_EQ(doc.series[2].points[0].value, 0.25);
  EXPECT_EQ(doc.series[2].points[1].step, 2);
  EXPECT_DOUBLE_EQ(doc.series[2].points[1].value, 0.125);

  // Re-rendering the parsed document reproduces the file byte-for-byte
  // (the recorder snapshot is already name-sorted, like the reader).
  EXPECT_EQ(render(doc.series, doc.epoch_anchor_us), text);
}

TEST(SeriesTest, EmptyDocumentStillCarriesTheMetaHeader) {
  // Every dump has at least the header line, so a worker sidecar that
  // recorded nothing still loads cleanly instead of tripping the
  // empty-file check.
  const std::string text = render({}, 42);
  EXPECT_EQ(text.substr(0, 1), "{");
  const obs::SeriesDoc doc = obs::parse_series_jsonl(text, "empty");
  EXPECT_EQ(doc.epoch_anchor_us, 42);
  EXPECT_TRUE(doc.series.empty());
}

TEST(SeriesTest, SourceTagSurvivesTheRoundTrip) {
  obs::Series s;
  s.name = "train.entropy";
  s.source = "worker0";
  s.points = {{1, 0.5, 123}, {2, 0.25, 456}};
  const std::string text = render({s}, 7);
  const obs::SeriesDoc doc = obs::parse_series_jsonl(text, "tagged");
  ASSERT_EQ(doc.series.size(), 1u);
  EXPECT_EQ(doc.series[0].source, "worker0");
  ASSERT_EQ(doc.series[0].points.size(), 2u);
  EXPECT_EQ(doc.series[0].points[1].wall_us, 456);
  EXPECT_EQ(render(doc.series, doc.epoch_anchor_us), text);
}

// ---- reader errors ------------------------------------------------------

TEST(SeriesTest, ReaderRequiresTheMetaHeader) {
  expect_throw_containing<std::runtime_error>(
      [] {
        obs::parse_series_jsonl(
            R"({"series": "a", "step": 1, "value": 2, "wall_us": 3})",
            "headless.jsonl");
      },
      "series meta header");
  expect_throw_containing<std::runtime_error>(
      [] { obs::parse_series_jsonl("", "blank.jsonl"); },
      "no series meta header found");
}

TEST(SeriesTest, ReaderRejectsUnsupportedVersions) {
  expect_throw_containing<std::runtime_error>(
      [] {
        obs::parse_series_jsonl(
            R"({"meta": "series", "version": 2, "epoch_anchor_us": 0})",
            "v2.jsonl");
      },
      "unsupported series version");
}

TEST(SeriesTest, ReaderNamesTheTruncatedLine) {
  const std::string text =
      "{\"meta\": \"series\", \"version\": 1, \"epoch_anchor_us\": 0}\n"
      "{\"series\": \"a\", \"step\": 1, \"va";
  expect_throw_containing<std::runtime_error>(
      [&] { obs::parse_series_jsonl(text, "cut.jsonl"); }, "cut.jsonl:2");
}

TEST(SeriesTest, ReaderNamesTheGarbageLine) {
  const std::string text =
      "{\"meta\": \"series\", \"version\": 1, \"epoch_anchor_us\": 0}\n"
      "{\"series\": \"a\", \"step\": 1, \"value\": 2, \"wall_us\": 3}\n"
      "not json at all\n";
  expect_throw_containing<std::runtime_error>(
      [&] { obs::parse_series_jsonl(text, "garbage.jsonl"); },
      "garbage.jsonl:3");
}

TEST(SeriesTest, ReaderRejectsMistypedMembers) {
  const std::string header =
      "{\"meta\": \"series\", \"version\": 1, \"epoch_anchor_us\": 0}\n";
  expect_throw_containing<std::runtime_error>(
      [&] {
        obs::parse_series_jsonl(
            header + R"({"series": 5, "step": 1, "value": 2})", "t.jsonl");
      },
      "expected string member \"series\"");
  expect_throw_containing<std::runtime_error>(
      [&] {
        obs::parse_series_jsonl(
            header + R"({"series": "a", "value": 2})", "t.jsonl");
      },
      "expected number member \"step\"");
  expect_throw_containing<std::runtime_error>(
      [&] {
        obs::parse_series_jsonl(
            header + R"({"series": "a", "step": 1, "value": "x"})", "t.jsonl");
      },
      "expected number member \"value\"");
}

TEST(SeriesTest, LoadNamesMissingAndEmptyFiles) {
  const std::string dir = ::testing::TempDir();
  expect_throw_containing<std::runtime_error>(
      [&] { obs::load_series_file(dir + "/does_not_exist.jsonl"); },
      "cannot open series file");
  const std::string empty_path = dir + "/empty_series.jsonl";
  std::ofstream(empty_path, std::ios::binary | std::ios::trunc).flush();
  expect_throw_containing<std::runtime_error>(
      [&] { obs::load_series_file(empty_path); }, "series file is empty");
  std::filesystem::remove(empty_path);
}

// ---- merge --------------------------------------------------------------

obs::SeriesDoc doc_with(const std::string& name,
                        const std::vector<obs::SeriesPoint>& points,
                        std::int64_t anchor) {
  obs::SeriesDoc doc;
  obs::Series s;
  s.name = name;
  s.points = points;
  doc.series.push_back(std::move(s));
  doc.epoch_anchor_us = anchor;
  return doc;
}

TEST(SeriesMergeTest, TagsUntaggedSeriesWithTheDocumentLabel) {
  const obs::SeriesDoc a = doc_with("train.loss", {{1, 0.5, 10}}, 100);
  const obs::SeriesDoc b = doc_with("train.loss", {{1, 0.25, 20}}, 50);
  const obs::SeriesDoc merged =
      obs::merge_series({{"worker0", a}, {"worker1", b}});
  ASSERT_EQ(merged.series.size(), 2u);
  EXPECT_EQ(merged.series[0].source, "worker0");
  EXPECT_EQ(merged.series[1].source, "worker1");
  // Earliest nonzero anchor wins.
  EXPECT_EQ(merged.epoch_anchor_us, 50);
}

TEST(SeriesMergeTest, MergeIsAssociativeBecauseTagsStick) {
  const obs::SeriesDoc a = doc_with("s", {{1, 1.0, 0}}, 30);
  const obs::SeriesDoc b = doc_with("s", {{1, 2.0, 0}}, 20);
  const obs::SeriesDoc c = doc_with("s", {{1, 3.0, 0}}, 10);
  const obs::SeriesDoc flat =
      obs::merge_series({{"x", a}, {"y", b}, {"z", c}});
  // merge(merge(A, B), C): the inner result's series are already
  // tagged x/y, so the outer label "inner" never applies to them.
  const obs::SeriesDoc nested = obs::merge_series(
      {{"inner", obs::merge_series({{"x", a}, {"y", b}})}, {"z", c}});
  EXPECT_EQ(render(flat.series, flat.epoch_anchor_us),
            render(nested.series, nested.epoch_anchor_us));
}

TEST(SeriesMergeTest, SameNameAndSourceConcatenatesInInputOrder) {
  obs::SeriesDoc tagged;
  obs::Series s;
  s.name = "s";
  s.source = "w";
  s.points = {{1, 1.0, 0}};
  tagged.series.push_back(s);
  obs::SeriesDoc tagged2 = tagged;
  tagged2.series[0].points = {{2, 2.0, 0}};
  const obs::SeriesDoc merged =
      obs::merge_series({{"a", tagged}, {"b", tagged2}});
  ASSERT_EQ(merged.series.size(), 1u);
  ASSERT_EQ(merged.series[0].points.size(), 2u);
  EXPECT_EQ(merged.series[0].points[0].step, 1);
  EXPECT_EQ(merged.series[0].points[1].step, 2);
}

TEST(SeriesMergeTest, EmptyInputAndDuplicateLabelsAreNamedErrors) {
  expect_throw_containing<std::invalid_argument>(
      [] { obs::merge_series({}); }, "no documents");
  const obs::SeriesDoc a = doc_with("s", {{1, 1.0, 0}}, 0);
  expect_throw_containing<std::invalid_argument>(
      [&] { obs::merge_series({{"w", a}, {"w", a}}); }, "duplicate label");
}

// ---- registry sampler ---------------------------------------------------

/// Each sampler test starts from a metric-free registry so ordinals and
/// series sets are exact; clear_for_testing invalidates references other
/// tests held, which none of this binary's tests keep across TESTs.
class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Registry::instance().clear_for_testing();
  }
  void TearDown() override {
    obs::Registry::instance().clear_for_testing();
    obs::set_enabled(false);
  }
};

TEST_F(SamplerTest, StepsAreSampleOrdinalsAndCountersAreDeltas) {
  obs::SeriesRecorder recorder;
  obs::RegistrySampler sampler(recorder);
  obs::counter("t.work").add(5);
  obs::gauge("t.level").set(2.5);
  sampler.sample_once();
  obs::counter("t.work").add(3);
  obs::gauge("t.level").set(1.5);
  sampler.sample_once();
  sampler.sample_once();  // no change: delta 0, gauge repeated

  const std::vector<obs::Series> series = recorder.snapshot();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].name, "registry.t.level");
  EXPECT_EQ(series[1].name, "registry.t.work");
  ASSERT_EQ(series[1].points.size(), 3u);
  // Step keys are the sample ordinals — 0, 1, 2 — regardless of when
  // the samples were taken; the wall clock is display data only.
  EXPECT_EQ(series[1].points[0].step, 0);
  EXPECT_EQ(series[1].points[1].step, 1);
  EXPECT_EQ(series[1].points[2].step, 2);
  EXPECT_DOUBLE_EQ(series[1].points[0].value, 5.0);  // first = absolute
  EXPECT_DOUBLE_EQ(series[1].points[1].value, 3.0);  // then deltas
  EXPECT_DOUBLE_EQ(series[1].points[2].value, 0.0);
  EXPECT_DOUBLE_EQ(series[0].points[1].value, 1.5);  // gauges: instantaneous
}

TEST_F(SamplerTest, EmptyRegistryRecordsNothingAndConsumesNoStep) {
  obs::SeriesRecorder recorder;
  obs::RegistrySampler sampler(recorder);
  sampler.sample_once();
  sampler.sample_once();
  EXPECT_TRUE(recorder.empty());
  // The first real sample still lands on step 0: empty samples did not
  // consume ordinals, so late-enabled metrics stay aligned from zero.
  obs::counter("t.late").add(1);
  sampler.sample_once();
  const std::vector<obs::Series> series = recorder.snapshot();
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].points.size(), 1u);
  EXPECT_EQ(series[0].points[0].step, 0);
}

TEST_F(SamplerTest, CounterResetRestartsTheDelta) {
  obs::SeriesRecorder recorder;
  obs::RegistrySampler sampler(recorder);
  obs::counter("t.c").add(10);
  sampler.sample_once();
  obs::Registry::instance().reset();  // bench-style mid-run reset
  obs::counter("t.c").add(4);
  sampler.sample_once();
  const std::vector<obs::Series> series = recorder.snapshot();
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].points[0].value, 10.0);
  // 4 < 10: treated as a restart, recorded as the new absolute value.
  EXPECT_DOUBLE_EQ(series[0].points[1].value, 4.0);
}

}  // namespace
