#include "swf/parser.h"

#include <gtest/gtest.h>

#include <sstream>

#include "swf/writer.h"
#include "util/rng.h"

namespace rlbf::swf {
namespace {

constexpr const char* kFixture = R"(; Computer: Test SP2
; MaxProcs: 128
; UnixStartTime: 870000000
;
1 0 5 100 4 -1 -1 4 200 -1 1 1 1 -1 -1 -1 -1 -1
2 10 0 50 2 12.5 -1 2 60 -1 1 2 1 -1 -1 -1 -1 -1
3 20 3 300 8 -1 -1 8 400 -1 1 1 2 -1 -1 -1 -1 -1
)";

TEST(Parser, ReadsJobsAndHeader) {
  std::istringstream in(kFixture);
  const ParseResult r = parse_swf(in, "fixture");
  EXPECT_EQ(r.trace.size(), 3u);
  EXPECT_EQ(r.trace.machine_procs(), 128);
  EXPECT_EQ(r.header.at("MaxProcs"), "128");
  EXPECT_EQ(r.header.at("Computer"), "Test SP2");
  EXPECT_EQ(r.skipped_jobs, 0u);
}

TEST(Parser, ParsesAllEighteenFields) {
  std::istringstream in(kFixture);
  const ParseResult r = parse_swf(in, "fixture");
  const Job& j = r.trace[1];
  EXPECT_EQ(j.submit_time, 10);
  EXPECT_EQ(j.run_time, 50);
  EXPECT_EQ(j.used_procs, 2);
  EXPECT_DOUBLE_EQ(j.avg_cpu_time, 12.5);
  EXPECT_EQ(j.requested_procs, 2);
  EXPECT_EQ(j.requested_time, 60);
  EXPECT_EQ(j.status, 1);
  EXPECT_EQ(j.user_id, 2);
}

TEST(Parser, SkipsInvalidJobsByDefault) {
  std::istringstream in(
      "; MaxProcs: 64\n"
      "1 0 -1 -1 -1 -1 -1 -1 -1 -1 0 -1 -1 -1 -1 -1 -1 -1\n"  // cancelled
      "2 5 0 10 1 -1 -1 1 20 -1 1 1 1 -1 -1 -1 -1 -1\n");
  const ParseResult r = parse_swf(in, "x");
  EXPECT_EQ(r.trace.size(), 1u);
  EXPECT_EQ(r.skipped_jobs, 1u);
}

TEST(Parser, StrictModeRejectsInvalidJobs) {
  std::istringstream in(
      "1 0 -1 -1 -1 -1 -1 -1 -1 -1 0 -1 -1 -1 -1 -1 -1 -1\n");
  ParseOptions opts;
  opts.skip_invalid_jobs = false;
  EXPECT_THROW(parse_swf(in, "x", opts), std::runtime_error);
}

TEST(Parser, MalformedLineThrows) {
  std::istringstream in("1 2 3 not-a-number\n");
  EXPECT_THROW(parse_swf(in, "x"), std::runtime_error);
}

TEST(Parser, MachineSizeFallsBackToWidestJob) {
  std::istringstream in("1 0 0 10 16 -1 -1 16 20 -1 1 1 1 -1 -1 -1 -1 -1\n");
  const ParseResult r = parse_swf(in, "x");
  EXPECT_EQ(r.trace.machine_procs(), 16);
}

TEST(Parser, ClampsOverWideRequests) {
  std::istringstream in(
      "; MaxProcs: 8\n"
      "1 0 0 10 4 -1 -1 99 20 -1 1 1 1 -1 -1 -1 -1 -1\n");
  const ParseResult r = parse_swf(in, "x");
  EXPECT_EQ(r.trace[0].requested_procs, 8);
  EXPECT_NO_THROW(r.trace.validate());
}

TEST(Parser, NormalizesOutOfOrderSubmits) {
  std::istringstream in(
      "; MaxProcs: 8\n"
      "1 100 0 10 1 -1 -1 1 20 -1 1 1 1 -1 -1 -1 -1 -1\n"
      "2 50 0 10 1 -1 -1 1 20 -1 1 1 1 -1 -1 -1 -1 -1\n");
  const ParseResult r = parse_swf(in, "x");
  EXPECT_EQ(r.trace[0].submit_time, 50);
  EXPECT_EQ(r.trace[0].id, 1);  // renumbered
}

TEST(Parser, HandlesBlankLinesAndDosEndings) {
  std::istringstream in(
      "; MaxProcs: 8\r\n"
      "\r\n"
      "   \n"
      "1 0 0 10 1 -1 -1 1 20 -1 1 1 1 -1 -1 -1 -1 -1\r\n");
  const ParseResult r = parse_swf(in, "x");
  EXPECT_EQ(r.trace.size(), 1u);
  EXPECT_EQ(r.trace.machine_procs(), 8);
}

TEST(Parser, HeaderEqualsSignStyle) {
  std::istringstream in("; MaxProcs = 31\n");
  const ParseResult r = parse_swf(in, "x");
  EXPECT_EQ(r.header.at("MaxProcs"), "31");
}

TEST(Parser, WriterRoundTrip) {
  std::istringstream in(kFixture);
  const ParseResult original = parse_swf(in, "fixture");

  std::ostringstream out;
  write_swf(out, original.trace);
  std::istringstream in2(out.str());
  const ParseResult reparsed = parse_swf(in2, "fixture");

  ASSERT_EQ(reparsed.trace.size(), original.trace.size());
  EXPECT_EQ(reparsed.trace.machine_procs(), original.trace.machine_procs());
  for (std::size_t i = 0; i < original.trace.size(); ++i) {
    EXPECT_EQ(reparsed.trace[i].submit_time, original.trace[i].submit_time);
    EXPECT_EQ(reparsed.trace[i].run_time, original.trace[i].run_time);
    EXPECT_EQ(reparsed.trace[i].requested_procs, original.trace[i].requested_procs);
    EXPECT_EQ(reparsed.trace[i].requested_time, original.trace[i].requested_time);
  }
}

TEST(Parser, FuzzedInputNeverCrashes) {
  // Failure injection: arbitrary byte soup must either parse (yielding a
  // possibly empty trace) or throw std::runtime_error — never crash or
  // hang. Deterministic pseudo-random fuzz corpus.
  util::Rng rng(0xf022);
  for (int iter = 0; iter < 200; ++iter) {
    std::string soup;
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 400));
    for (std::size_t i = 0; i < len; ++i) {
      // Mix digits, whitespace, signs, newlines, and raw bytes.
      static const char alphabet[] = "0123456789 -;.\n\r\te+xyzABC";
      soup += alphabet[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sizeof(alphabet)) - 2))];
    }
    std::istringstream in(soup);
    try {
      const ParseResult r = parse_swf(in, "fuzz");
      EXPECT_GE(r.trace.machine_procs(), 0);
    } catch (const std::runtime_error&) {
      // acceptable outcome
    }
  }
}

TEST(Parser, TruncatedJobLineThrows) {
  std::istringstream in("1 0 0 10 1 -1 -1 1 20\n");  // only 9 fields
  EXPECT_THROW(parse_swf(in, "x"), std::runtime_error);
}

TEST(Parser, HeaderOnlyFileYieldsEmptyTrace) {
  std::istringstream in("; MaxProcs: 64\n; Computer: Ghost\n");
  const ParseResult r = parse_swf(in, "empty");
  EXPECT_EQ(r.trace.size(), 0u);
  EXPECT_EQ(r.trace.machine_procs(), 64);
}

TEST(Parser, MissingFileThrows) {
  EXPECT_THROW(parse_swf_file("/nonexistent/trace.swf"), std::runtime_error);
}

TEST(Parser, FileRoundTripWithName) {
  std::istringstream in(kFixture);
  const ParseResult original = parse_swf(in, "fixture");
  const std::string path = ::testing::TempDir() + "/roundtrip.swf";
  ASSERT_TRUE(write_swf_file(path, original.trace));
  const ParseResult reparsed = parse_swf_file(path);
  EXPECT_EQ(reparsed.trace.name(), "roundtrip");
  EXPECT_EQ(reparsed.trace.size(), original.trace.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rlbf::swf
