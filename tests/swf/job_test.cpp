#include "swf/job.h"

#include <gtest/gtest.h>

#include <sstream>

namespace rlbf::swf {
namespace {

TEST(Job, ProcsPrefersRequested) {
  Job j;
  j.requested_procs = 8;
  j.used_procs = 4;
  EXPECT_EQ(j.procs(), 8);
}

TEST(Job, ProcsFallsBackToUsed) {
  Job j;
  j.requested_procs = kUnknown;
  j.used_procs = 4;
  EXPECT_EQ(j.procs(), 4);
}

TEST(Job, RequestTimePrefersUserEstimate) {
  Job j;
  j.requested_time = 3600;
  j.run_time = 100;
  EXPECT_EQ(j.request_time(), 3600);
}

TEST(Job, RequestTimeFallsBackToActualRuntime) {
  Job j;
  j.requested_time = kUnknown;
  j.run_time = 100;
  EXPECT_EQ(j.request_time(), 100);
}

TEST(Job, ValidRequiresSizeAndRuntime) {
  Job j;
  j.requested_procs = 2;
  j.run_time = 10;
  EXPECT_TRUE(j.valid());
  j.run_time = kUnknown;
  EXPECT_FALSE(j.valid());
  j.run_time = 10;
  j.requested_procs = kUnknown;
  j.used_procs = kUnknown;
  EXPECT_FALSE(j.valid());
}

TEST(Job, ZeroRuntimeJobIsValid) {
  // Archive traces contain zero-second jobs; they must schedule.
  Job j;
  j.requested_procs = 1;
  j.run_time = 0;
  EXPECT_TRUE(j.valid());
}

TEST(Job, SwfLineHasEighteenFields) {
  Job j;
  j.id = 7;
  j.submit_time = 100;
  j.run_time = 50;
  j.requested_procs = 4;
  j.requested_time = 60;
  const std::string line = to_swf_line(j);
  std::istringstream is(line);
  int fields = 0;
  std::string tok;
  while (is >> tok) ++fields;
  EXPECT_EQ(fields, 18);
}

TEST(Job, SwfLineEncodesValues) {
  Job j;
  j.id = 3;
  j.submit_time = 42;
  j.run_time = 17;
  j.requested_procs = 5;
  j.requested_time = 99;
  std::istringstream is(to_swf_line(j));
  std::int64_t id, submit, wait, run;
  is >> id >> submit >> wait >> run;
  EXPECT_EQ(id, 3);
  EXPECT_EQ(submit, 42);
  EXPECT_EQ(wait, kUnknown);
  EXPECT_EQ(run, 17);
}

}  // namespace
}  // namespace rlbf::swf
