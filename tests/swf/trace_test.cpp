#include "swf/trace.h"

#include <gtest/gtest.h>

namespace rlbf::swf {
namespace {

Job make_job(std::int64_t id, std::int64_t submit, std::int64_t run,
             std::int64_t procs, std::int64_t request = kUnknown) {
  Job j;
  j.id = id;
  j.submit_time = submit;
  j.run_time = run;
  j.requested_procs = procs;
  j.used_procs = procs;
  j.requested_time = request;
  return j;
}

Trace small_trace() {
  return Trace("test", 16,
               {make_job(1, 0, 100, 4, 200), make_job(2, 10, 50, 2, 60),
                make_job(3, 20, 300, 8, 400), make_job(4, 30, 10, 1, 20),
                make_job(5, 40, 80, 16, 100)});
}

TEST(Trace, BasicAccessors) {
  const Trace t = small_trace();
  EXPECT_EQ(t.name(), "test");
  EXPECT_EQ(t.machine_procs(), 16);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t[2].id, 3);
}

TEST(Trace, NormalizeSortsAndRenumbers) {
  Trace t("x", 16,
          {make_job(9, 50, 10, 1), make_job(7, 5, 10, 1), make_job(8, 25, 10, 1)});
  t.normalize();
  EXPECT_EQ(t[0].submit_time, 5);
  EXPECT_EQ(t[1].submit_time, 25);
  EXPECT_EQ(t[2].submit_time, 50);
  EXPECT_EQ(t[0].id, 1);
  EXPECT_EQ(t[2].id, 3);
}

TEST(Trace, NormalizeIsStableForTies) {
  Trace t("x", 16, {make_job(1, 10, 1, 1), make_job(2, 10, 2, 1)});
  t.normalize();
  EXPECT_EQ(t[0].run_time, 1);
  EXPECT_EQ(t[1].run_time, 2);
}

TEST(Trace, ValidatePassesOnGoodTrace) {
  EXPECT_NO_THROW(small_trace().validate());
}

TEST(Trace, ValidateRejectsWideJob) {
  Trace t("x", 4, {make_job(1, 0, 10, 8)});
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Trace, ValidateRejectsUnknownRuntime) {
  Trace t("x", 4, {make_job(1, 0, kUnknown, 2)});
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Trace, ValidateRejectsUnsortedSubmits) {
  Trace t("x", 4, {make_job(1, 100, 10, 1), make_job(2, 50, 10, 1)});
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Trace, ValidateRejectsBadMachine) {
  Trace t("x", 0, {});
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Trace, PrefixTakesFirstJobsRebased) {
  const Trace t = small_trace();
  const Trace p = t.prefix(3);
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0].submit_time, 0);
  EXPECT_EQ(p[2].submit_time, 20);
  EXPECT_EQ(p.machine_procs(), 16);
}

TEST(Trace, PrefixLargerThanTraceReturnsAll) {
  EXPECT_EQ(small_trace().prefix(100).size(), 5u);
}

TEST(Trace, WindowRebasesSubmitTimes) {
  const Trace w = small_trace().window(2, 2);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].submit_time, 0);   // was 20
  EXPECT_EQ(w[1].submit_time, 10);  // was 30
}

TEST(Trace, WindowOutOfRangeThrows) {
  EXPECT_THROW(small_trace().window(4, 3), std::out_of_range);
  EXPECT_THROW(small_trace().window(6, 1), std::out_of_range);
}

TEST(Trace, SampleReturnsRequestedCount) {
  util::Rng rng(1);
  const Trace s = small_trace().sample(3, rng);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].submit_time, 0);
}

TEST(Trace, SampleWholeTraceWhenShort) {
  util::Rng rng(1);
  EXPECT_EQ(small_trace().sample(10, rng).size(), 5u);
}

TEST(Trace, SampleIsContiguous) {
  util::Rng rng(3);
  const Trace t = small_trace();
  for (int rep = 0; rep < 20; ++rep) {
    const Trace s = t.sample(2, rng);
    ASSERT_EQ(s.size(), 2u);
    // Gap between the two jobs must match some adjacent pair in t.
    const std::int64_t gap = s[1].submit_time - s[0].submit_time;
    EXPECT_EQ(gap, 10);
  }
}

TEST(Trace, StatsMatchHandComputation) {
  const TraceStats s = small_trace().stats();
  EXPECT_EQ(s.job_count, 5u);
  EXPECT_EQ(s.max_procs, 16);
  // Interarrivals: 10,10,10,10 -> mean 10.
  EXPECT_DOUBLE_EQ(s.mean_interarrival, 10.0);
  EXPECT_DOUBLE_EQ(s.mean_requested_procs, (4 + 2 + 8 + 1 + 16) / 5.0);
  EXPECT_DOUBLE_EQ(s.mean_request_time, (200 + 60 + 400 + 20 + 100) / 5.0);
  EXPECT_DOUBLE_EQ(s.mean_run_time, (100 + 50 + 300 + 10 + 80) / 5.0);
  EXPECT_TRUE(s.has_user_estimates);
}

TEST(Trace, StatsDetectsMissingEstimates) {
  Trace t("x", 8, {make_job(1, 0, 10, 1), make_job(2, 5, 20, 2)});
  EXPECT_FALSE(t.stats().has_user_estimates);
}

TEST(Trace, StatsOnEmptyTrace) {
  const TraceStats s = Trace("e", 8, {}).stats();
  EXPECT_EQ(s.job_count, 0u);
  EXPECT_DOUBLE_EQ(s.mean_interarrival, 0.0);
}

}  // namespace
}  // namespace rlbf::swf
