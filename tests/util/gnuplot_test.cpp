#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/table.h"

namespace rlbf::util {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(GnuplotScript, RejectsZeroSeries) {
  EXPECT_THROW(write_gnuplot_script(temp_path("g0.gnuplot"), "x.csv", "t", "x",
                                    "y", 0),
               std::invalid_argument);
}

TEST(GnuplotScript, EmitsOnePlotClausePerSeries) {
  const std::string script = temp_path("g1.gnuplot");
  ASSERT_TRUE(write_gnuplot_script(script, "data.csv", "Title", "X", "Y", 3));
  const std::string body = slurp(script);
  // Series read CSV columns 2, 3, 4 with x tick labels from column 1.
  EXPECT_NE(body.find("using 2:xtic(1)"), std::string::npos);
  EXPECT_NE(body.find("using 3:xtic(1)"), std::string::npos);
  EXPECT_NE(body.find("using 4:xtic(1)"), std::string::npos);
  EXPECT_EQ(body.find("using 5"), std::string::npos);
  std::filesystem::remove(script);
}

TEST(GnuplotScript, OutputPngDerivesFromCsvName) {
  const std::string script = temp_path("g2.gnuplot");
  ASSERT_TRUE(write_gnuplot_script(script, "results/fig.csv", "t", "x", "y", 1));
  const std::string body = slurp(script);
  EXPECT_NE(body.find("set output 'results/fig.png'"), std::string::npos);
  std::filesystem::remove(script);
}

TEST(GnuplotScript, TitleAndAxesAppearVerbatim) {
  const std::string script = temp_path("g3.gnuplot");
  ASSERT_TRUE(write_gnuplot_script(script, "d.csv", "My Figure", "epochs",
                                   "bsld", 2));
  const std::string body = slurp(script);
  EXPECT_NE(body.find("set title 'My Figure'"), std::string::npos);
  EXPECT_NE(body.find("set xlabel 'epochs'"), std::string::npos);
  EXPECT_NE(body.find("set ylabel 'bsld'"), std::string::npos);
  EXPECT_EQ(body.find("logscale"), std::string::npos);  // default linear
  std::filesystem::remove(script);
}

TEST(GnuplotScript, LogScaleIsOptIn) {
  const std::string script = temp_path("g4.gnuplot");
  ASSERT_TRUE(write_gnuplot_script(script, "d.csv", "t", "x", "y", 1,
                                   /*log_y=*/true));
  EXPECT_NE(slurp(script).find("set logscale y"), std::string::npos);
  std::filesystem::remove(script);
}

TEST(GnuplotScript, MissingCellsAreDeclared) {
  // Tables emit "-" for NaN; the script must tell gnuplot to skip them.
  const std::string script = temp_path("g5.gnuplot");
  ASSERT_TRUE(write_gnuplot_script(script, "d.csv", "t", "x", "y", 1));
  EXPECT_NE(slurp(script).find("set datafile missing '-'"), std::string::npos);
  std::filesystem::remove(script);
}

TEST(GnuplotScript, UnwritablePathReturnsFalse) {
  EXPECT_FALSE(write_gnuplot_script("/nonexistent-dir/x.gnuplot", "d.csv", "t",
                                    "x", "y", 1));
}

}  // namespace
}  // namespace rlbf::util
