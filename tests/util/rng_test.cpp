#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace rlbf::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 9.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 9.25);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntThrowsOnInvertedBounds) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(4, 2), std::invalid_argument);
}

TEST(Rng, UniformIntUnbiasedAcrossSmallRange) {
  Rng rng(17);
  std::vector<int> counts(4, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(5);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(9);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

struct GammaParams {
  double alpha;
  double theta;
};

class RngGammaTest : public ::testing::TestWithParam<GammaParams> {};

TEST_P(RngGammaTest, MomentsMatchShapeScale) {
  const auto [alpha, theta] = GetParam();
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(alpha, theta);
    ASSERT_GT(x, 0.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, alpha * theta, 0.03 * alpha * theta + 0.01);
  EXPECT_NEAR(var, alpha * theta * theta, 0.10 * alpha * theta * theta + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RngGammaTest,
                         ::testing::Values(GammaParams{0.45, 2.0},
                                           GammaParams{1.0, 1.0},
                                           GammaParams{4.2, 0.94},
                                           GammaParams{312.0, 0.03}));

TEST(Rng, GammaRejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(rng.gamma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.gamma(1.0, -1.0), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(21);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(31);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalRejectsDegenerateWeights) {
  Rng rng(31);
  std::vector<double> zero = {0.0, 0.0};
  std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(rng.categorical(zero), std::invalid_argument);
  EXPECT_THROW(rng.categorical(negative), std::invalid_argument);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(41);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(41);
  const auto p = rng.permutation(50);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) fixed += (p[i] == i) ? 1 : 0;
  EXPECT_LT(fixed, 10u);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1(), child2());
  // Child differs from the parent's continued stream.
  Rng parent3(99);
  Rng child3 = parent3.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child3() == parent3()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace rlbf::util
