#include "util/log.h"

#include <gtest/gtest.h>

namespace rlbf::util {
namespace {

/// RAII guard restoring the global level after each test.
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

TEST(Log, LevelRoundTrips) {
  LevelGuard guard;
  for (LogLevel level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                         LogLevel::Error, LogLevel::Off}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, EmittingBelowLevelIsSilentAndSafe) {
  LevelGuard guard;
  set_log_level(LogLevel::Off);
  // No observable output assertions possible on stderr without capture;
  // the contract under test is "does not crash and does not evaluate
  // into the sink" for every level.
  log_debug("dropped ", 1);
  log_info("dropped ", 2.5);
  log_warn("dropped ", "three");
  log_error("dropped ", 'x');
}

TEST(Log, VariadicFormattingConcatenates) {
  LevelGuard guard;
  set_log_level(LogLevel::Off);  // keep test output clean
  // Exercise the template expansion across mixed types.
  log_info("a=", 1, " b=", 2.5, " c=", std::string("str"), " d=", true);
}

TEST(Log, LevelOrdering) {
  EXPECT_LT(static_cast<int>(LogLevel::Debug), static_cast<int>(LogLevel::Info));
  EXPECT_LT(static_cast<int>(LogLevel::Info), static_cast<int>(LogLevel::Warn));
  EXPECT_LT(static_cast<int>(LogLevel::Warn), static_cast<int>(LogLevel::Error));
  EXPECT_LT(static_cast<int>(LogLevel::Error), static_cast<int>(LogLevel::Off));
}

}  // namespace
}  // namespace rlbf::util
