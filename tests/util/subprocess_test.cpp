#include "util/subprocess.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rlbf::util {
namespace {

TEST(SubprocessTest, CapturesStdoutAndExitCode) {
  const SubprocessResult result = run_subprocess({"/bin/sh", "-c", "echo hi"});
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.stdout_text, "hi\n");
  EXPECT_EQ(result.stderr_text, "");
  EXPECT_EQ(result.status(), "exit 0");
}

TEST(SubprocessTest, CapturesStderrSeparately) {
  const SubprocessResult result =
      run_subprocess({"/bin/sh", "-c", "echo out; echo err >&2; exit 3"});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.exit_code, 3);
  EXPECT_EQ(result.stdout_text, "out\n");
  EXPECT_EQ(result.stderr_text, "err\n");
  EXPECT_EQ(result.status(), "exit 3");
}

TEST(SubprocessTest, LargeOutputIsNotTruncatedOrDeadlocked) {
  // Well past the 64K pipe buffer on both streams at once: the reader
  // must interleave, not block the child.
  const SubprocessResult result = run_subprocess(
      {"/bin/sh", "-c",
       "i=0; while [ $i -lt 20000 ]; do echo 0123456789; echo 9876543210 >&2; "
       "i=$((i+1)); done"});
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.stdout_text.size(), 20000u * 11u);
  EXPECT_EQ(result.stderr_text.size(), 20000u * 11u);
}

TEST(SubprocessTest, ExecFailureReportsShellStyle127) {
  const SubprocessResult result =
      run_subprocess({"/definitely/not/a/real/binary"});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.exit_code, 127);
  EXPECT_NE(result.stderr_text.find("exec failed"), std::string::npos)
      << result.stderr_text;
}

TEST(SubprocessTest, TimeoutKillsTheProcess) {
  SubprocessOptions options;
  options.timeout_seconds = 0.2;
  const SubprocessResult result =
      run_subprocess({"/bin/sh", "-c", "sleep 30"}, options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.status(), "timeout");
}

TEST(SubprocessTest, TimeoutAppliesAfterStdioCloses) {
  // A daemonizing child closes its stdio but keeps running: EOF ends
  // the pipe loop, and the deadline must still bound the reap.
  SubprocessOptions options;
  options.timeout_seconds = 0.3;
  const SubprocessResult result = run_subprocess(
      {"/bin/sh", "-c", "exec >/dev/null 2>&1; sleep 30"}, options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.timed_out);
}

TEST(SubprocessTest, ChdirOptionRunsInThatDirectory) {
  SubprocessOptions options;
  options.chdir = "/";
  const SubprocessResult result = run_subprocess({"/bin/pwd"}, options);
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.stdout_text, "/\n");
}

TEST(SubprocessTest, EmptyArgvThrows) {
  EXPECT_THROW(run_subprocess({}), std::invalid_argument);
}

TEST(SubprocessTest, ShellQuoteSurvivesHostileArguments) {
  const std::string hostile = "a b'c\"d$e`f;g";
  const SubprocessResult result = run_subprocess(
      {"/bin/sh", "-c", "printf %s " + shell_quote(hostile)});
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.stdout_text, hostile);
}

TEST(SubprocessTest, TailLinesKeepsOnlyTheTail) {
  EXPECT_EQ(tail_lines("a\nb\nc\n", 2), "b\nc\n");
  EXPECT_EQ(tail_lines("a\nb\nc", 2), "b\nc");
  EXPECT_EQ(tail_lines("a\nb\nc\n", 10), "a\nb\nc\n");
  EXPECT_EQ(tail_lines("single", 3), "single");
  EXPECT_EQ(tail_lines("", 3), "");
  EXPECT_EQ(tail_lines("a\nb\n", 0), "");
}

TEST(SubprocessTest, CurrentExecutableResolvesToARealFile) {
  const std::string path = current_executable("fallback");
  // Under /proc this is the test binary itself; the fallback only fires
  // on exotic platforms.
  EXPECT_FALSE(path.empty());
  EXPECT_NE(path, "fallback");
}

}  // namespace
}  // namespace rlbf::util
