#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rlbf::util {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> x{0};
  pool.submit([&] { x = 42; }).get();
  EXPECT_EQ(x, 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroTasksIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "should not run"; });
}

TEST(ThreadPool, ParallelForAggregatesIntoCallerSlots) {
  ThreadPool pool(8);
  std::vector<std::size_t> out(1000);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ActuallyRunsConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  pool.parallel_for(8, [&](std::size_t) {
    const int now = ++in_flight;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    --in_flight;
  });
  EXPECT_GE(peak, 2);
}

TEST(ThreadPool, ManySmallTasksComplete) {
  ThreadPool pool(8);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(10000, [&](std::size_t i) { sum += static_cast<std::int64_t>(i); });
  EXPECT_EQ(sum, 10000LL * 9999 / 2);
}

}  // namespace
}  // namespace rlbf::util
