#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace rlbf::util {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Stats, VarianceUnbiased) {
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({3.0}), 0.0);
  // {1,2,3,4}: mean 2.5, ss = 5, var = 5/3.
  EXPECT_NEAR(variance({1.0, 2.0, 3.0, 4.0}), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stddev({1.0, 2.0, 3.0, 4.0}), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 100.0), 4.0);
}

TEST(Stats, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min({3.0, -1.0, 2.0}), -1.0);
  EXPECT_DOUBLE_EQ(max({3.0, -1.0, 2.0}), 3.0);
  EXPECT_THROW(min({}), std::invalid_argument);
  EXPECT_THROW(max({}), std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = ys;
  for (auto& y : neg) y = -y;
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  EXPECT_DOUBLE_EQ(pearson({1.0, 2.0, 3.0}, {5.0, 5.0, 5.0}), 0.0);
}

TEST(Stats, PearsonRejectsMismatch) {
  EXPECT_THROW(pearson({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(pearson({}, {}), std::invalid_argument);
}

TEST(Stats, BootstrapCiCoversTrueMean) {
  Rng rng(77);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(10.0, 2.0));
  Rng boot(78);
  const auto ci = bootstrap_mean_ci(xs, boot, 2000, 0.95);
  EXPECT_LT(ci.lo, 10.0 + 0.6);
  EXPECT_GT(ci.hi, 10.0 - 0.6);
  EXPECT_LT(ci.lo, ci.hi);
}

TEST(Stats, BootstrapRejectsBadArgs) {
  Rng rng(1);
  EXPECT_THROW(bootstrap_mean_ci({}, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, rng, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, rng, 10, 1.0), std::invalid_argument);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(5);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max(xs));
}

TEST(Stats, RunningStatsEdgeCases) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(4.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 4.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 4.0);
  EXPECT_DOUBLE_EQ(rs.max(), 4.0);
}

}  // namespace
}  // namespace rlbf::util
