#include "util/table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace rlbf::util {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, CountsRowsAndCols) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"x", "123456"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header and row present, header padded at least as wide as the data.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("123456"), std::string::npos);
  const auto header_end = out.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  EXPECT_GE(header_end, std::string("name  123456").size() - 1);
}

TEST(Table, FmtFormatsNumbers) {
  EXPECT_EQ(Table::fmt(292.8249, 2), "292.82");
  EXPECT_EQ(Table::fmt(1.0, 0), "1");
  EXPECT_EQ(Table::fmt(std::nan(""), 2), "-");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"k", "v"});
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, CsvRoundTripThroughFile) {
  Table t({"trace", "bsld"});
  t.add_row({"SDSC-SP2", "292.82"});
  const std::string path = ::testing::TempDir() + "/rlbf_table_test.csv";
  ASSERT_TRUE(t.save_csv(path));
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "trace,bsld");
  EXPECT_EQ(line2, "SDSC-SP2,292.82");
  std::remove(path.c_str());
}

TEST(Table, SaveCsvFailsOnBadPath) {
  Table t({"a"});
  EXPECT_FALSE(t.save_csv("/nonexistent-dir-xyz/file.csv"));
}

}  // namespace
}  // namespace rlbf::util
