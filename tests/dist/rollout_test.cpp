// Process-transport tests that need no worker binary: seed-list
// round-tripping, request-fingerprint sensitivity, and ProcessCollector
// construction-time validation (a malformed transport must fail before
// any epoch runs, not at job 7).
#include "dist/rollout.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace rlbf::dist {
namespace {

TEST(SeedListTest, RoundTripsIncludingExtremes) {
  const std::vector<std::uint64_t> seeds = {
      0, 1, 42, std::numeric_limits<std::uint64_t>::max()};
  EXPECT_EQ(parse_seed_list(format_seed_list(seeds)), seeds);
  EXPECT_EQ(format_seed_list({7}), "7");
  EXPECT_EQ(parse_seed_list("7"), (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(format_seed_list({}), "");
  EXPECT_TRUE(parse_seed_list("").empty());
}

TEST(SeedListTest, MalformedListsAreNamedErrors) {
  EXPECT_THROW(parse_seed_list("1,,2"), std::invalid_argument);
  EXPECT_THROW(parse_seed_list("1,2,"), std::invalid_argument);
  try {
    parse_seed_list("1,banana,3");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(parse_seed_list("-1"), std::invalid_argument);
}

TEST(RequestFingerprintTest, BindsEveryPartOfTheRequest) {
  const std::vector<std::string> args = {"--spec=sdsc-tiny", "--seed=1"};
  const std::vector<std::uint64_t> seeds = {10, 20, 30};
  const std::string base = rollout_request_fingerprint(args, 1, 0, seeds);
  EXPECT_FALSE(base.empty());
  // Deterministic: the supervisor (at planning) and the worker response
  // check (at decode) must agree without communicating.
  EXPECT_EQ(rollout_request_fingerprint(args, 1, 0, seeds), base);
  // Any changed request component yields a different fingerprint, so a
  // stale file from epoch N-1, another worker, or another setup can
  // never satisfy this request's check.
  EXPECT_NE(rollout_request_fingerprint(args, 2, 0, seeds), base);
  EXPECT_NE(rollout_request_fingerprint(args, 1, 1, seeds), base);
  EXPECT_NE(rollout_request_fingerprint(args, 1, 0, {10, 20}), base);
  EXPECT_NE(rollout_request_fingerprint(args, 1, 0, {10, 20, 31}), base);
  EXPECT_NE(
      rollout_request_fingerprint({"--spec=sdsc-tiny", "--seed=2"}, 1, 0, seeds),
      base);
}

RolloutTransportOptions valid_options() {
  RolloutTransportOptions options;
  options.worker = "/bin/true";
  options.worker_args = {"--spec=x"};
  options.work_dir = ::testing::TempDir() + "/rollout_ctor_scratch";
  options.workers = 2;
  return options;
}

TEST(ProcessCollectorTest, ConstructionValidatesTheTransport) {
  EXPECT_NO_THROW(ProcessCollector{valid_options()});

  RolloutTransportOptions options = valid_options();
  options.worker.clear();
  EXPECT_THROW(ProcessCollector{options}, std::invalid_argument);

  options = valid_options();
  options.work_dir.clear();
  EXPECT_THROW(ProcessCollector{options}, std::invalid_argument);

  options = valid_options();
  options.workers = 0;
  EXPECT_THROW(ProcessCollector{options}, std::invalid_argument);

  // Hosts without a command template: nothing would use them — reject
  // rather than silently running locally.
  options = valid_options();
  options.hosts = {"h0"};
  EXPECT_THROW(ProcessCollector{options}, std::invalid_argument);

  // A command template is validated by the CommandLauncher it builds.
  options = valid_options();
  options.hosts = {"h0"};
  options.command_template = "ssh {host}";  // no {command}
  EXPECT_THROW(ProcessCollector{options}, std::invalid_argument);
  options.command_template = "ssh {host} {qcommand}";
  EXPECT_NO_THROW(ProcessCollector{options});
}

TEST(ProcessCollectorTest, NeverRunsTheSequenceFnInProcess) {
  ProcessCollector collector(valid_options());
  EXPECT_EQ(collector.slots(1), 0u);
  EXPECT_EQ(collector.slots(100), 0u);
}

TEST(ProcessCollectorTest, EmptyPlanIsANoOp) {
  // No model save hook installed, no scratch dir created — an empty
  // epoch must not need either.
  ProcessCollector collector(valid_options());
  const std::vector<rl::SequenceResult> results = collector.collect(
      rl::CollectionPlan{}, [](std::size_t, std::uint64_t, std::size_t) {
        return rl::SequenceResult{};
      });
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(collector.jobs().empty());
}

TEST(ProcessCollectorTest, CollectWithoutAModelWriterIsALogicError) {
  ProcessCollector collector(valid_options());
  rl::CollectionPlan plan;
  plan.seeds = {1};
  plan.epoch = 1;
  EXPECT_THROW(collector.collect(plan,
                                 [](std::size_t, std::uint64_t, std::size_t) {
                                   return rl::SequenceResult{};
                                 }),
               std::logic_error);
}

}  // namespace
}  // namespace rlbf::dist
