// Launcher tests: template rendering and host-list validation fail
// loudly before anything runs, and both launchers really execute the
// command they were given.
#include <gtest/gtest.h>

#include <stdexcept>

#include "dist/launcher.h"

namespace rlbf::dist {
namespace {

TEST(RenderTemplateTest, SubstitutesEveryPlaceholder) {
  EXPECT_EQ(render_template("ssh {host} {command}",
                            {{"host", "a"}, {"command", "run"}}),
            "ssh a run");
  EXPECT_EQ(render_template("no placeholders", {}), "no placeholders");
  EXPECT_EQ(render_template("{x}{x}", {{"x", "y"}}), "yy");
}

TEST(RenderTemplateTest, UnknownPlaceholderIsANamedError) {
  try {
    render_template("ssh {host} {command}", {{"command", "c"}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown placeholder '{host}'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("{command}"), std::string::npos) << what;  // known list
  }
}

TEST(RenderTemplateTest, UnterminatedPlaceholderIsANamedError) {
  EXPECT_THROW(render_template("ssh {host", {{"host", "a"}}),
               std::invalid_argument);
}

TEST(RenderTemplateTest, DoubleBraceIsALiteralBrace) {
  EXPECT_EQ(render_template("cd ${{WORK}} && {c}", {{"c", "run"}}),
            "cd ${WORK} && run");
  EXPECT_EQ(render_template("awk '{{print $1}}'", {}), "awk '{print $1}'");
}

TEST(CommandLauncherTest, QcommandSurvivesARemoteShellReEvaluation) {
  // `sh -c "$*"` stands in for ssh: it joins its arguments and
  // re-evaluates the result in a second shell. With {qcommand} the
  // worker argv survives intact, metacharacters included.
  CommandLauncher launcher("sh -c 'eval \"$*\"' remote {qcommand}", {"h0"});
  JobSpec job;
  job.id = 0;
  job.name = "j";
  job.argv = {"/bin/sh", "-c", "printf %s \"$1\"", "w", "a;b c"};
  const LaunchResult result = launcher.launch(job);
  EXPECT_TRUE(result.process.ok()) << result.process.status() << " "
                                   << result.process.stderr_text;
  EXPECT_EQ(result.process.stdout_text, "a;b c");
}

TEST(ParseHostsTest, SplitsAndValidates) {
  EXPECT_EQ(parse_hosts("a"), (std::vector<std::string>{"a"}));
  EXPECT_EQ(parse_hosts("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_THROW(parse_hosts(""), std::invalid_argument);
  EXPECT_THROW(parse_hosts("a,,b"), std::invalid_argument);
  EXPECT_THROW(parse_hosts("a,"), std::invalid_argument);
}

TEST(CommandLauncherTest, RejectsMalformedConstruction) {
  // No {command}: the worker command would be silently dropped.
  EXPECT_THROW(CommandLauncher("ssh {host}", {"a"}), std::invalid_argument);
  // Typo'd placeholder caught at construction, not at job 7.
  EXPECT_THROW(CommandLauncher("ssh {hots} {command}", {"a"}),
               std::invalid_argument);
  EXPECT_THROW(CommandLauncher("{command}", {}), std::invalid_argument);
  EXPECT_THROW(CommandLauncher("{command}", {"a", ""}), std::invalid_argument);
  EXPECT_THROW(CommandLauncher("{command}", {"a"}, "cp {remot} {local}"),
               std::invalid_argument);
}

TEST(CommandLauncherTest, AssignsHostsRoundRobin) {
  CommandLauncher launcher("{command}", {"a", "b"});
  JobSpec job;
  job.id = 0;
  EXPECT_EQ(launcher.host_for(job), "a");
  job.id = 1;
  EXPECT_EQ(launcher.host_for(job), "b");
  job.id = 2;
  EXPECT_EQ(launcher.host_for(job), "a");
}

TEST(CommandLauncherTest, RetryAdvancesToTheNextHost) {
  // (id + attempt - 1) % hosts: attempt 1 is the plain round-robin
  // assignment, every retry moves one host further — never back onto
  // the host that just failed (unless there is only one).
  CommandLauncher launcher("{command}", {"a", "b", "c"});
  JobSpec job;
  job.id = 1;
  EXPECT_EQ(launcher.host_for(job), "b");  // attempt defaults to 1
  job.attempt = 2;
  EXPECT_EQ(launcher.host_for(job), "c");
  job.attempt = 3;
  EXPECT_EQ(launcher.host_for(job), "a");
  job.attempt = 4;
  EXPECT_EQ(launcher.host_for(job), "b");  // wraps back around

  CommandLauncher single("{command}", {"only"});
  job.attempt = 1;
  EXPECT_EQ(single.host_for(job), "only");
  job.attempt = 2;
  EXPECT_EQ(single.host_for(job), "only");  // nowhere else to go
}

TEST(CommandLauncherTest, RendersAndRunsTheTemplate) {
  CommandLauncher launcher("echo host={host} job={job}; {command}", {"h0"});
  JobSpec job;
  job.id = 0;
  job.name = "sweep-shard0/1";
  job.argv = {"/bin/sh", "-c", "echo from-worker"};
  const LaunchResult result = launcher.launch(job);
  EXPECT_TRUE(result.process.ok()) << result.process.status();
  EXPECT_EQ(result.process.stdout_text,
            "host=h0 job=sweep-shard0/1\nfrom-worker\n");
  // The logged command is the rendered line, not the raw template.
  EXPECT_EQ(result.command.find("{host}"), std::string::npos) << result.command;
  EXPECT_NE(result.command.find("host=h0"), std::string::npos) << result.command;
}

TEST(CommandLauncherTest, EmptyFetchTemplateIsANoOp) {
  CommandLauncher launcher("{command}", {"a"});
  JobSpec job;
  const LaunchResult fetched = launcher.fetch(job);
  EXPECT_TRUE(fetched.process.ok());
}

TEST(CommandLauncherTest, FetchTemplateRuns) {
  CommandLauncher launcher("{command}", {"h0"},
                           "echo fetch {host} {remote} {local}");
  JobSpec job;
  job.id = 0;
  job.output_dir = "out0";
  const LaunchResult fetched = launcher.fetch(job);
  EXPECT_TRUE(fetched.process.ok()) << fetched.process.status();
  EXPECT_EQ(fetched.process.stdout_text, "fetch h0 out0 out0\n");
}

TEST(LocalLauncherTest, RunsTheArgvDirectly) {
  LocalLauncher launcher;
  JobSpec job;
  job.argv = {"/bin/sh", "-c", "echo local; exit 5"};
  const LaunchResult result = launcher.launch(job);
  EXPECT_EQ(result.process.exit_code, 5);
  EXPECT_EQ(result.process.stdout_text, "local\n");
  // The default fetch is a successful no-op (outputs are already local).
  EXPECT_TRUE(launcher.fetch(job).process.ok());
}

}  // namespace
}  // namespace rlbf::dist
