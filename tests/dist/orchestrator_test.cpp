// Supervisor tests: the retry budget really reruns failed jobs, an
// exhausted job surfaces as a named failure carrying its stderr tail,
// and collection refuses to run over an incomplete set.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "dist/orchestrator.h"

namespace rlbf::dist {
namespace {

/// A job that succeeds when run as planned but fails once the
/// orchestrator appends the injected-failure flag: `sh -c SCRIPT name
/// extra-args` exposes the extra argument as $#.
JobSpec flag_sensitive_job(std::size_t id) {
  JobSpec job;
  job.id = id;
  job.name = "job" + std::to_string(id);
  job.argv = {"/bin/sh", "-c",
              "if [ $# -gt 0 ]; then echo \"injected: $1\" >&2; exit 9; fi",
              "worker"};
  return job;
}

JobSpec failing_job(std::size_t id, const std::string& message, int code) {
  JobSpec job;
  job.id = id;
  job.name = "job" + std::to_string(id);
  job.argv = {"/bin/sh", "-c",
              "echo '" + message + "' >&2; exit " + std::to_string(code)};
  return job;
}

TEST(OrchestratorTest, AllJobsSucceedFirstAttempt) {
  LocalLauncher launcher;
  std::vector<JobSpec> jobs = {flag_sensitive_job(0), flag_sensitive_job(1)};
  const OrchestrationReport report = run_jobs(jobs, launcher);
  EXPECT_TRUE(report.all_ok);
  EXPECT_EQ(report.total_attempts, 2u);
  for (const JobOutcome& outcome : report.jobs) {
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.attempts, 1u);
    EXPECT_EQ(outcome.status, "exit 0");
    EXPECT_TRUE(outcome.stderr_tail.empty());
  }
}

TEST(OrchestratorTest, InjectedFailureIsRetriedToSuccess) {
  LocalLauncher launcher;
  std::vector<JobSpec> jobs = {flag_sensitive_job(0), flag_sensitive_job(1)};
  OrchestratorOptions options;
  options.max_attempts = 2;
  options.inject_failures = {{1, 1}};  // job 1's first attempt fails
  std::vector<std::string> events;
  options.on_event = [&](const std::string& line) { events.push_back(line); };
  const OrchestrationReport report = run_jobs(jobs, launcher, options);
  EXPECT_TRUE(report.all_ok);
  EXPECT_EQ(report.jobs[0].attempts, 1u);
  EXPECT_EQ(report.jobs[1].attempts, 2u);
  EXPECT_TRUE(report.jobs[1].ok);
  // Once the job passed, no stale failure text lingers in the outcome.
  EXPECT_TRUE(report.jobs[1].stderr_tail.empty());
  EXPECT_EQ(report.total_attempts, 3u);
  bool saw_retry = false;
  for (const std::string& line : events) {
    saw_retry = saw_retry || line.find("retrying") != std::string::npos;
  }
  EXPECT_TRUE(saw_retry);
}

TEST(OrchestratorTest, StampsTheAttemptOnEveryLaunchAndFetch) {
  // The orchestrator hands launchers the ATTEMPT-STAMPED job (and
  // fetches from that same stamped spec), so host-rotating launchers
  // see which try this is. Planned jobs always carry attempt 1.
  class RecordingLauncher : public LocalLauncher {
   public:
    LaunchResult launch(const JobSpec& job) override {
      launch_attempts.push_back(job.attempt);
      return LocalLauncher::launch(job);
    }
    LaunchResult fetch(const JobSpec& job) override {
      fetch_attempts.push_back(job.attempt);
      return LocalLauncher::fetch(job);
    }
    std::vector<std::size_t> launch_attempts;
    std::vector<std::size_t> fetch_attempts;
  };
  RecordingLauncher launcher;
  OrchestratorOptions options;
  options.max_attempts = 3;
  options.inject_failures = {{0, 2}};  // attempts 1 and 2 fail, 3 passes
  const OrchestrationReport report =
      run_jobs({flag_sensitive_job(0)}, launcher, options);
  EXPECT_TRUE(report.all_ok);
  EXPECT_EQ(launcher.launch_attempts, (std::vector<std::size_t>{1, 2, 3}));
  // Only the successful attempt fetches, and from the stamped spec.
  EXPECT_EQ(launcher.fetch_attempts, (std::vector<std::size_t>{3}));
}

TEST(OrchestratorTest, RetryLandsOnADifferentHost) {
  // Elastic retry through a real CommandLauncher: the template renders
  // {host}, so the recorded command shows where each attempt ran. Job 0
  // maps to h0 on attempt 1; the retry must rotate to h1.
  CommandLauncher launcher("echo host={host}; {command}", {"h0", "h1"});
  OrchestratorOptions options;
  options.max_attempts = 2;
  options.inject_failures = {{0, 1}};
  std::vector<std::string> events;
  options.on_event = [&](const std::string& line) { events.push_back(line); };
  const OrchestrationReport report =
      run_jobs({flag_sensitive_job(0)}, launcher, options);
  EXPECT_TRUE(report.all_ok);
  EXPECT_EQ(report.jobs[0].attempts, 2u);
  // The outcome records the LAST command that ran — the retry, on h1.
  EXPECT_NE(report.jobs[0].command.find("host=h1"), std::string::npos)
      << report.jobs[0].command;
  bool attempt1_on_h0 = false;
  for (const std::string& line : events) {
    attempt1_on_h0 =
        attempt1_on_h0 || (line.find("attempt 1/2") != std::string::npos &&
                           line.find("injected failure") != std::string::npos);
  }
  EXPECT_TRUE(attempt1_on_h0) << "no injected attempt-1 event recorded";
}

TEST(OrchestratorTest, ExhaustedRetriesAreNamedWithStderrTail) {
  LocalLauncher launcher;
  std::vector<JobSpec> jobs = {flag_sensitive_job(0),
                               failing_job(1, "disk exploded", 3)};
  OrchestratorOptions options;
  options.max_attempts = 3;
  const OrchestrationReport report = run_jobs(jobs, launcher, options);
  EXPECT_FALSE(report.all_ok);
  EXPECT_TRUE(report.jobs[0].ok);
  const JobOutcome& failed = report.jobs[1];
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.attempts, 3u);
  EXPECT_EQ(failed.status, "exit 3");
  EXPECT_NE(failed.stderr_tail.find("disk exploded"), std::string::npos);

  const std::string summary = report.failure_summary();
  EXPECT_NE(summary.find("job job1 failed after 3 attempt(s): exit 3"),
            std::string::npos)
      << summary;
  EXPECT_NE(summary.find("disk exploded"), std::string::npos) << summary;
  // The passing job stays out of the failure log.
  EXPECT_EQ(summary.find("job0"), std::string::npos) << summary;
}

TEST(OrchestratorTest, StderrTailIsBounded) {
  LocalLauncher launcher;
  JobSpec noisy;
  noisy.id = 0;
  noisy.name = "noisy";
  noisy.argv = {"/bin/sh", "-c",
                "i=0; while [ $i -lt 100 ]; do echo line$i >&2; i=$((i+1)); "
                "done; exit 1"};
  OrchestratorOptions options;
  options.max_attempts = 1;
  options.stderr_tail = 3;
  const OrchestrationReport report = run_jobs({noisy}, launcher, options);
  EXPECT_EQ(report.jobs[0].stderr_tail, "line97\nline98\nline99\n");
}

TEST(OrchestratorTest, EmptyPlanIsAnError) {
  LocalLauncher launcher;
  EXPECT_THROW(run_jobs({}, launcher), std::invalid_argument);
}

TEST(OrchestratorTest, CollectRefusesAnIncompleteRun) {
  LocalLauncher launcher;
  OrchestratorOptions options;
  options.max_attempts = 1;
  const OrchestrationReport report =
      run_jobs({failing_job(0, "boom", 2)}, launcher, options);
  ASSERT_FALSE(report.all_ok);
  try {
    collect_sweep(report, "never_written");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("refusing to collect"), std::string::npos) << what;
    EXPECT_NE(what.find("job0"), std::string::npos) << what;
    EXPECT_NE(what.find("boom"), std::string::npos) << what;
  }
  EXPECT_FALSE(std::filesystem::exists("never_written"));
}

TEST(OrchestratorTest, FailedFetchFailsTheAttempt) {
  // A launcher whose launch succeeds but whose fetch always fails: the
  // job must be reported failed with the fetch status.
  class FetchFailLauncher : public LocalLauncher {
   public:
    LaunchResult fetch(const JobSpec& job) override {
      (void)job;
      LaunchResult result;
      result.command = "fetch-cmd";
      result.process.exit_code = 4;
      result.process.stderr_text = "copy refused\n";
      return result;
    }
  };
  FetchFailLauncher launcher;
  OrchestratorOptions options;
  options.max_attempts = 2;
  const OrchestrationReport report =
      run_jobs({flag_sensitive_job(0)}, launcher, options);
  EXPECT_FALSE(report.all_ok);
  EXPECT_EQ(report.jobs[0].attempts, 2u);
  EXPECT_EQ(report.jobs[0].status, "fetch failed: exit 4");
  EXPECT_NE(report.jobs[0].stderr_tail.find("copy refused"), std::string::npos);
}

TEST(OrchestratorTest, ParallelismIsBoundedButComplete) {
  // 8 jobs through 2 slots: everything still completes exactly once.
  LocalLauncher launcher;
  std::vector<JobSpec> jobs;
  for (std::size_t i = 0; i < 8; ++i) jobs.push_back(flag_sensitive_job(i));
  OrchestratorOptions options;
  options.max_parallel = 2;
  const OrchestrationReport report = run_jobs(jobs, launcher, options);
  EXPECT_TRUE(report.all_ok);
  EXPECT_EQ(report.total_attempts, 8u);
}

}  // namespace
}  // namespace rlbf::dist
