// Plan-builder and partition tests: jobs are pure functions of their
// options, shard flags and output directories are exactly where the
// collector will look, and the training partition keeps warm-start
// consumers with their sources.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "dist/job.h"
#include "model/train.h"

namespace rlbf {
namespace {

bool has_arg(const dist::JobSpec& job, const std::string& arg) {
  return std::find(job.argv.begin(), job.argv.end(), arg) != job.argv.end();
}

dist::PlanOptions sweep_options() {
  dist::PlanOptions options;
  options.worker = "/usr/bin/rlbf_run";
  options.args = {"--scenario=sdsc-easy", "--seed=7"};
  options.workers = 3;
  options.work_dir = "scratch";
  return options;
}

TEST(PlanTest, SweepPlanPartitionsIntoShardJobs) {
  const std::vector<dist::JobSpec> jobs = dist::plan_sweep_jobs(sweep_options());
  ASSERT_EQ(jobs.size(), 3u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);
    EXPECT_EQ(jobs[i].name,
              "sweep-shard" + std::to_string(i) + "/3");
    EXPECT_EQ(jobs[i].argv[0], "/usr/bin/rlbf_run");
    EXPECT_EQ(jobs[i].argv[1], "sweep");
    EXPECT_TRUE(has_arg(jobs[i], "--scenario=sdsc-easy"));
    EXPECT_TRUE(has_arg(jobs[i], "--seed=7"));
    EXPECT_TRUE(has_arg(jobs[i], "--shard=" + std::to_string(i) + "/3"));
    EXPECT_EQ(jobs[i].output_dir, "scratch/shard" + std::to_string(i));
    EXPECT_TRUE(has_arg(jobs[i], "--out_dir=" + jobs[i].output_dir));
  }
}

TEST(PlanTest, SweepPlanIsDeterministic) {
  const auto a = dist::plan_sweep_jobs(sweep_options());
  const auto b = dist::plan_sweep_jobs(sweep_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].argv, b[i].argv);
    EXPECT_EQ(a[i].output_dir, b[i].output_dir);
  }
}

TEST(PlanTest, TrainPlanGivesEachWorkerAPrivateStoreAndBundle) {
  dist::PlanOptions options;
  options.worker = "rlbf_run";
  options.args = {"--ablations", "--epochs=1"};
  options.workers = 2;
  options.work_dir = "w";
  const std::vector<dist::JobSpec> jobs = dist::plan_train_jobs(options);
  ASSERT_EQ(jobs.size(), 2u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::string worker_dir = "w/worker" + std::to_string(i);
    EXPECT_EQ(jobs[i].argv[1], "train");
    EXPECT_TRUE(has_arg(jobs[i], "--ablations"));
    EXPECT_TRUE(has_arg(jobs[i], "--shard=" + std::to_string(i) + "/2"));
    EXPECT_TRUE(has_arg(jobs[i], "--store=" + worker_dir + "/store"));
    EXPECT_TRUE(has_arg(jobs[i], "--export_bundle=" + worker_dir + "/bundle"));
    EXPECT_EQ(jobs[i].output_dir, worker_dir + "/bundle");
  }
}

TEST(PlanTest, MalformedPlanOptionsAreNamedErrors) {
  dist::PlanOptions options = sweep_options();
  options.workers = 0;
  EXPECT_THROW(dist::plan_sweep_jobs(options), std::invalid_argument);
  options = sweep_options();
  options.worker = "";
  EXPECT_THROW(dist::plan_sweep_jobs(options), std::invalid_argument);
  options = sweep_options();
  options.work_dir = "";
  EXPECT_THROW(dist::plan_train_jobs(options), std::invalid_argument);
}

TEST(PlanTest, CommandLineQuotesEveryArgument) {
  dist::JobSpec job;
  job.argv = {"bin", "--flag=a b"};
  EXPECT_EQ(job.command_line(), "'bin' '--flag=a b'");
}

// ---- the train-grid partition (model::train_shard_indices) ----

std::vector<model::TrainingSpec> specs_named(
    const std::vector<std::string>& names) {
  std::vector<model::TrainingSpec> specs;
  for (const std::string& name : names) {
    model::TrainingSpec spec;
    spec.name = name;
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(TrainShardTest, PlainRoundRobinWithoutWarmStarts) {
  const auto specs = specs_named({"a", "b", "c", "d", "e"});
  EXPECT_EQ(model::train_shard_indices(specs, 0, 2),
            (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(model::train_shard_indices(specs, 1, 2),
            (std::vector<std::size_t>{1, 3}));
  // 0/1 is "everything", matching the unsharded default.
  EXPECT_EQ(model::train_shard_indices(specs, 0, 1),
            (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(TrainShardTest, ShardsBeyondTheGridAreEmpty) {
  const auto specs = specs_named({"a", "b"});
  EXPECT_TRUE(model::train_shard_indices(specs, 2, 4).empty());
  EXPECT_TRUE(model::train_shard_indices(specs, 0, 3).size() == 1);
}

TEST(TrainShardTest, WarmStartConsumerSharesItsSourcesShard) {
  auto specs = specs_named({"source", "b", "c", "finetune", "d"});
  specs[3].init_agent = "source";
  // Groups in first-member order: {source, finetune}=0, {b}=1, {c}=2,
  // {d}=3 — round-robin over groups keeps the chain together on shard 0
  // and wraps group 3 back onto shard 0.
  const auto shard0 = model::train_shard_indices(specs, 0, 3);
  const auto shard1 = model::train_shard_indices(specs, 1, 3);
  const auto shard2 = model::train_shard_indices(specs, 2, 3);
  EXPECT_EQ(shard0, (std::vector<std::size_t>{0, 3, 4}));  // chain + d
  EXPECT_EQ(shard1, (std::vector<std::size_t>{1}));        // b
  EXPECT_EQ(shard2, (std::vector<std::size_t>{2}));        // c
  // The union over all shards is the whole grid, disjointly.
  std::vector<std::size_t> all;
  for (const auto* shard : {&shard0, &shard1, &shard2}) {
    all.insert(all.end(), shard->begin(), shard->end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(TrainShardTest, TransitiveWarmStartChainsStayTogether) {
  auto specs = specs_named({"a", "b", "c"});
  specs[1].init_agent = "a";  // b warm-starts from a
  specs[2].init_agent = "b";  // c from b: one 3-spec group
  EXPECT_EQ(model::train_shard_indices(specs, 0, 2),
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(model::train_shard_indices(specs, 1, 2).empty());
}

TEST(TrainShardTest, ExternalWarmStartReferencesDoNotGroup) {
  // init_agent naming a store key / file path (not a spec in the list)
  // leaves the spec an independent group.
  auto specs = specs_named({"a", "b"});
  specs[1].init_agent = "0123456789abcdef";
  EXPECT_EQ(model::train_shard_indices(specs, 0, 2),
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(model::train_shard_indices(specs, 1, 2),
            (std::vector<std::size_t>{1}));
}

TEST(TrainShardTest, MalformedShardsAreNamedErrors) {
  const auto specs = specs_named({"a"});
  EXPECT_THROW(model::train_shard_indices(specs, 0, 0), std::invalid_argument);
  EXPECT_THROW(model::train_shard_indices(specs, 2, 2), std::invalid_argument);
  try {
    model::train_shard_indices(specs, 3, 2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("shard index 3"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace rlbf
