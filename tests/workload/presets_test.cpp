#include "workload/presets.h"

#include <gtest/gtest.h>

namespace rlbf::workload {
namespace {

class PresetCalibrationTest : public ::testing::TestWithParam<PresetTargets> {};

TEST_P(PresetCalibrationTest, MatchesTable2Statistics) {
  const PresetTargets t = GetParam();
  const swf::Trace trace = make_preset(t, 6000, 42);
  EXPECT_NO_THROW(trace.validate());
  const swf::TraceStats s = trace.stats();

  EXPECT_EQ(s.max_procs, t.machine_procs);
  EXPECT_EQ(s.job_count, 6000u);
  // Calibrated means land within 15% of the published Table-2 values
  // (sampling noise differs between the pilot batch and the final trace).
  EXPECT_NEAR(s.mean_interarrival, t.mean_interarrival, 0.15 * t.mean_interarrival);
  const double rt = t.user_estimates ? s.mean_request_time : s.mean_run_time;
  EXPECT_NEAR(rt, t.mean_request_time, 0.15 * t.mean_request_time);
  // Size means are matched analytically, not calibrated: wider tolerance.
  EXPECT_NEAR(s.mean_requested_procs, t.mean_requested_procs,
              0.30 * t.mean_requested_procs);
  EXPECT_EQ(s.has_user_estimates, t.user_estimates);
}

INSTANTIATE_TEST_SUITE_P(Table2, PresetCalibrationTest,
                         ::testing::Values(sdsc_sp2_targets(), hpc2n_targets(),
                                           lublin1_targets(), lublin2_targets()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(Presets, DeterministicInSeed) {
  const swf::Trace a = sdsc_sp2_like(7, 300);
  const swf::Trace b = sdsc_sp2_like(7, 300);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].run_time, b[i].run_time);
    EXPECT_EQ(a[i].requested_time, b[i].requested_time);
  }
}

TEST(Presets, DifferentSeedsDiffer) {
  const swf::Trace a = lublin_1(1, 300);
  const swf::Trace b = lublin_1(2, 300);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].run_time == b[i].run_time) ++same;
  }
  EXPECT_LT(same, 50);
}

TEST(Presets, RealLikeTracesOverestimate) {
  const swf::Trace t = sdsc_sp2_like(3, 2000);
  std::size_t over = 0;
  for (const auto& j : t.jobs()) {
    ASSERT_GE(j.requested_time, j.run_time);
    if (j.requested_time > j.run_time) ++over;
  }
  // The vast majority of users over-request.
  EXPECT_GT(over, t.size() * 3 / 4);
}

TEST(Presets, SyntheticTracesExposeOnlyActualRuntime) {
  const swf::Trace t = lublin_2(3, 500);
  for (const auto& j : t.jobs()) EXPECT_EQ(j.requested_time, swf::kUnknown);
}

TEST(Presets, AllPresetsReturnsFourTable2Rows) {
  const auto traces = all_presets(1, 400);
  ASSERT_EQ(traces.size(), 4u);
  EXPECT_EQ(traces[0].name(), "SDSC-SP2");
  EXPECT_EQ(traces[1].name(), "HPC2N");
  EXPECT_EQ(traces[2].name(), "Lublin-1");
  EXPECT_EQ(traces[3].name(), "Lublin-2");
  for (const auto& t : traces) EXPECT_EQ(t.size(), 400u);
}

TEST(Presets, OfferedLoadIsRealistic) {
  // The paper's traces describe busy production machines. Offered load
  // = mean(run * procs) / (mean interarrival * machine size) should be
  // meaningfully above idle and below saturation for every preset.
  for (const auto& t : all_presets(11, 4000)) {
    const auto s = t.stats();
    double work = 0.0;
    for (const auto& j : t.jobs()) {
      work += static_cast<double>(j.run_time) * static_cast<double>(j.procs());
    }
    work /= static_cast<double>(t.size());
    const double load =
        work / (s.mean_interarrival * static_cast<double>(t.machine_procs()));
    // Note: offered load uses mean(run * procs), so the size-runtime
    // correlation can push it slightly above 1 even when the served
    // utilization stays below capacity.
    EXPECT_GT(load, 0.15) << t.name();
    EXPECT_LT(load, 1.3) << t.name();
  }
}

}  // namespace
}  // namespace rlbf::workload
