#include "workload/lublin.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace rlbf::workload {
namespace {

TEST(DailyCycle, ZeroStrengthIsFlat) {
  const auto w = daily_cycle_weights(0.0);
  for (double x : w) EXPECT_NEAR(x, 1.0, 1e-12);
}

TEST(DailyCycle, HarmonicMeanIsOne) {
  for (double strength : {0.2, 0.5, 0.8, 1.0}) {
    const auto w = daily_cycle_weights(strength);
    double inv = 0.0;
    for (double x : w) {
      ASSERT_GT(x, 0.0);
      inv += 1.0 / x;
    }
    EXPECT_NEAR(inv / static_cast<double>(w.size()), 1.0, 1e-9) << strength;
  }
}

TEST(DailyCycle, WorkHoursBusierThanNight) {
  const auto w = daily_cycle_weights(0.8);
  const double at_2pm = w[28];  // 14:00
  const double at_4am = w[8];   // 04:00
  EXPECT_GT(at_2pm, 1.5 * at_4am);
}

TEST(Lublin, SizesWithinMachineBounds) {
  LublinConfig cfg;
  cfg.machine_procs = 256;
  const LublinGenerator gen(cfg);
  util::Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const auto s = gen.sample_size(rng);
    ASSERT_GE(s, 1);
    ASSERT_LE(s, 256);
  }
}

TEST(Lublin, SerialFractionMatchesConfig) {
  LublinConfig cfg;
  cfg.serial_prob = 0.35;
  const LublinGenerator gen(cfg);
  util::Rng rng(2);
  int serial = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) serial += gen.sample_size(rng) == 1 ? 1 : 0;
  // Some non-serial draws can also land on 1 after rounding, so >=.
  EXPECT_GE(serial / static_cast<double>(n), 0.33);
  EXPECT_LE(serial / static_cast<double>(n), 0.45);
}

TEST(Lublin, PowerOfTwoEmphasis) {
  LublinConfig cfg;
  cfg.pow2_prob = 0.576;
  cfg.serial_prob = 0.0;
  const LublinGenerator gen(cfg);
  util::Rng rng(3);
  int pow2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto s = gen.sample_size(rng);
    if ((s & (s - 1)) == 0) ++pow2;
  }
  // At least the snapped fraction should be powers of two.
  EXPECT_GT(pow2 / static_cast<double>(n), 0.55);
}

TEST(Lublin, RuntimesWithinCaps) {
  LublinConfig cfg;
  cfg.min_runtime = 5;
  cfg.max_runtime = 50000;
  const LublinGenerator gen(cfg);
  util::Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    const auto rt = gen.sample_runtime(8, rng);
    ASSERT_GE(rt, 5);
    ASSERT_LE(rt, 50000);
  }
}

TEST(Lublin, RuntimeScaleIsMultiplicative) {
  LublinConfig a;
  LublinConfig b = a;
  b.runtime_scale = 2.0;
  b.max_runtime = a.max_runtime * 2;
  const LublinGenerator ga(a);
  const LublinGenerator gb(b);
  util::Rng r1(5), r2(5);
  double sa = 0.0, sb = 0.0;
  for (int i = 0; i < 30000; ++i) {
    sa += static_cast<double>(ga.sample_runtime(4, r1));
    sb += static_cast<double>(gb.sample_runtime(4, r2));
  }
  EXPECT_NEAR(sb / sa, 2.0, 0.05);
}

TEST(Lublin, WideJobsRunLongerOnAverage) {
  // pa < 0 shrinks the short-gamma weight as size grows, so mean runtime
  // should increase with size (the paper's size-runtime correlation).
  LublinConfig cfg;
  const LublinGenerator gen(cfg);
  util::Rng rng(6);
  double narrow = 0.0, wide = 0.0;
  const int n = 60000;
  for (int i = 0; i < n; ++i) narrow += static_cast<double>(gen.sample_runtime(1, rng));
  for (int i = 0; i < n; ++i) wide += static_cast<double>(gen.sample_runtime(128, rng));
  EXPECT_GT(wide, 1.2 * narrow);
}

TEST(Lublin, GapsArePositiveWithConfiguredMean) {
  LublinConfig cfg;
  cfg.mean_interarrival = 600.0;
  cfg.daily_cycle_strength = 0.0;  // isolate the gamma mean
  const LublinGenerator gen(cfg);
  util::Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = gen.sample_gap(12 * 3600.0, rng);
    ASSERT_GT(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / n, 600.0, 15.0);
}

TEST(Lublin, GapsShorterDuringPeakHours) {
  LublinConfig cfg;
  cfg.daily_cycle_strength = 0.9;
  const LublinGenerator gen(cfg);
  util::Rng rng(8);
  double day = 0.0, night = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) day += gen.sample_gap(14 * 3600.0, rng);
  for (int i = 0; i < n; ++i) night += gen.sample_gap(4 * 3600.0, rng);
  EXPECT_LT(day, night);
}

TEST(Lublin, GenerateProducesValidSortedTrace) {
  LublinConfig cfg;
  const LublinGenerator gen(cfg);
  util::Rng rng(9);
  const swf::Trace t = gen.generate("gen", 2000, rng);
  EXPECT_EQ(t.size(), 2000u);
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t[0].id, 1);
  // Synthetic traces expose AR only.
  EXPECT_EQ(t[0].requested_time, swf::kUnknown);
  EXPECT_FALSE(t.stats().has_user_estimates);
}

TEST(Lublin, GenerateIsDeterministicInSeed) {
  LublinConfig cfg;
  const LublinGenerator gen(cfg);
  util::Rng r1(10), r2(10);
  const swf::Trace a = gen.generate("a", 500, r1);
  const swf::Trace b = gen.generate("b", 500, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].run_time, b[i].run_time);
    EXPECT_EQ(a[i].requested_procs, b[i].requested_procs);
  }
}

TEST(Lublin, SizeRuntimeCorrelationInGeneratedTrace) {
  LublinConfig cfg;
  const LublinGenerator gen(cfg);
  util::Rng rng(11);
  const swf::Trace t = gen.generate("corr", 20000, rng);
  std::vector<double> sizes, runtimes;
  for (const auto& j : t.jobs()) {
    sizes.push_back(static_cast<double>(j.procs()));
    runtimes.push_back(std::log(static_cast<double>(std::max<std::int64_t>(j.run_time, 1))));
  }
  EXPECT_GT(util::pearson(sizes, runtimes), 0.02);
}

}  // namespace
}  // namespace rlbf::workload
