#include "workload/overestimate.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/lublin.h"

namespace rlbf::workload {
namespace {

TEST(Overestimate, RequestNeverBelowRuntime) {
  const OverestimateModel model{OverestimateConfig{}};
  util::Rng rng(1);
  for (std::int64_t ar : {0LL, 1LL, 59LL, 60LL, 3600LL, 100000LL, 700000LL}) {
    for (int rep = 0; rep < 200; ++rep) {
      EXPECT_GE(model.sample_request(ar, rng), std::max<std::int64_t>(ar, 1));
    }
  }
}

TEST(Overestimate, MenuIsSortedAscending) {
  const auto& m = OverestimateModel::menu();
  EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
  EXPECT_GT(m.size(), 5u);
}

TEST(Overestimate, RoundedRequestsLandOnMenu) {
  OverestimateConfig cfg;
  cfg.exact_prob = 0.0;
  cfg.round_to_menu = true;
  const OverestimateModel model(cfg);
  util::Rng rng(2);
  const auto& menu = OverestimateModel::menu();
  for (int rep = 0; rep < 500; ++rep) {
    const auto req = model.sample_request(500, rng);
    EXPECT_TRUE(std::binary_search(menu.begin(), menu.end(), req))
        << "request " << req << " not a menu value";
  }
}

TEST(Overestimate, ExactEstimatorsRoundUpToMinute) {
  OverestimateConfig cfg;
  cfg.exact_prob = 1.0;
  const OverestimateModel model(cfg);
  util::Rng rng(3);
  EXPECT_EQ(model.sample_request(61, rng), 120);
  EXPECT_EQ(model.sample_request(60, rng), 60);
  EXPECT_EQ(model.sample_request(1, rng), 60);
}

TEST(Overestimate, CapIsRespected) {
  OverestimateConfig cfg;
  cfg.exact_prob = 0.0;
  cfg.max_request = 7200;
  cfg.mean_pad_seconds = 1e9;  // force the cap
  const OverestimateModel model(cfg);
  util::Rng rng(4);
  for (int rep = 0; rep < 100; ++rep) {
    EXPECT_LE(model.sample_request(100, rng), 7200);
  }
}

TEST(Overestimate, CapNeverUndercutsRuntime) {
  OverestimateConfig cfg;
  cfg.max_request = 100;
  const OverestimateModel model(cfg);
  util::Rng rng(5);
  // Runtime exceeds the cap: the estimate must still cover the runtime.
  EXPECT_GE(model.sample_request(5000, rng), 5000);
}

TEST(Overestimate, AdditiveMeanApproximatesRuntimePlusPad) {
  OverestimateConfig cfg;
  cfg.exact_prob = 0.0;
  cfg.mean_pad_seconds = 3000.0;
  cfg.round_to_menu = false;
  const OverestimateModel model(cfg);
  util::Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(model.sample_request(2000, rng));
  EXPECT_NEAR(sum / n, 5000.0, 60.0);
}

TEST(Overestimate, AdditiveFactorShrinksWithRuntime) {
  OverestimateConfig cfg;
  cfg.exact_prob = 0.0;
  const OverestimateModel model(cfg);
  util::Rng rng(7);
  double short_factor = 0.0, long_factor = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    short_factor += static_cast<double>(model.sample_request(120, rng)) / 120.0;
    long_factor += static_cast<double>(model.sample_request(40000, rng)) / 40000.0;
  }
  EXPECT_GT(short_factor / n, 5.0);   // minutes-long jobs overestimate wildly
  EXPECT_LT(long_factor / n, 2.0);    // half-day jobs are close to honest
}

TEST(Overestimate, MultiplicativeModeScalesWithRuntime) {
  OverestimateConfig cfg;
  cfg.mode = OverestimateMode::Multiplicative;
  cfg.exact_prob = 0.0;
  cfg.mean_factor = 3.0;
  cfg.round_to_menu = false;
  const OverestimateModel model(cfg);
  util::Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(model.sample_request(1000, rng));
  EXPECT_NEAR(sum / n, 3000.0, 100.0);
}

TEST(Overestimate, ApplyFillsEveryJob) {
  LublinConfig lcfg;
  const LublinGenerator gen(lcfg);
  util::Rng rng(9);
  swf::Trace trace = gen.generate("t", 500, rng);
  const OverestimateModel model{OverestimateConfig{}};
  model.apply(trace, rng);
  for (const auto& j : trace.jobs()) {
    EXPECT_GE(j.requested_time, std::max<std::int64_t>(j.run_time, 1));
  }
  EXPECT_TRUE(trace.stats().has_user_estimates);
}

}  // namespace
}  // namespace rlbf::workload
