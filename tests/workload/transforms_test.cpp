#include "workload/transforms.h"

#include <gtest/gtest.h>

#include "workload/presets.h"

namespace rlbf::workload {
namespace {

swf::Job make_job(std::int64_t id, std::int64_t submit, std::int64_t run,
                  std::int64_t procs) {
  swf::Job j;
  j.id = id;
  j.submit_time = submit;
  j.run_time = run;
  j.requested_procs = procs;
  return j;
}

swf::Trace small_trace() {
  return swf::Trace("t", 16,
                    {make_job(1, 0, 100, 4), make_job(2, 100, 50, 2),
                     make_job(3, 300, 10, 8), make_job(4, 600, 200, 1)});
}

TEST(ScaleLoad, DoubleRateHalvesGaps) {
  const swf::Trace scaled = scale_load(small_trace(), 2.0);
  ASSERT_EQ(scaled.size(), 4u);
  EXPECT_EQ(scaled[0].submit_time, 0);
  EXPECT_EQ(scaled[1].submit_time, 50);
  EXPECT_EQ(scaled[2].submit_time, 150);
  EXPECT_EQ(scaled[3].submit_time, 300);
}

TEST(ScaleLoad, HalfRateDoublesGaps) {
  const swf::Trace scaled = scale_load(small_trace(), 0.5);
  EXPECT_EQ(scaled[3].submit_time, 1200);
}

TEST(ScaleLoad, JobBodiesUnchanged) {
  const swf::Trace scaled = scale_load(small_trace(), 3.0);
  const swf::Trace original = small_trace();
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    EXPECT_EQ(scaled[i].run_time, original[i].run_time);
    EXPECT_EQ(scaled[i].procs(), original[i].procs());
  }
}

TEST(ScaleLoad, FactorOneIsIdentity) {
  const swf::Trace scaled = scale_load(small_trace(), 1.0);
  const swf::Trace original = small_trace();
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    EXPECT_EQ(scaled[i].submit_time, original[i].submit_time);
  }
}

TEST(ScaleLoad, RejectsNonPositiveFactor) {
  EXPECT_THROW(scale_load(small_trace(), 0.0), std::invalid_argument);
  EXPECT_THROW(scale_load(small_trace(), -1.0), std::invalid_argument);
}

TEST(ScaleLoad, ScalesOfferedLoadProportionally) {
  const swf::Trace trace = sdsc_sp2_like(3, 2000);
  const double base = offered_load(trace);
  const double doubled = offered_load(scale_load(trace, 2.0));
  EXPECT_NEAR(doubled / base, 2.0, 0.05);
}

TEST(TimeWindow, SelectsAndRebases) {
  const swf::Trace w = time_window(small_trace(), 100, 400);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].submit_time, 0);    // was 100
  EXPECT_EQ(w[1].submit_time, 200);  // was 300
}

TEST(TimeWindow, HalfOpenBoundaries) {
  const swf::Trace w = time_window(small_trace(), 0, 100);
  ASSERT_EQ(w.size(), 1u);  // job at 100 excluded
}

TEST(TimeWindow, RejectsInvertedWindow) {
  EXPECT_THROW(time_window(small_trace(), 400, 100), std::invalid_argument);
}

TEST(FilterJobs, KeepsMatchingJobs) {
  const swf::Trace narrow =
      filter_jobs(small_trace(), [](const swf::Job& j) { return j.procs() <= 2; });
  ASSERT_EQ(narrow.size(), 2u);
  for (const auto& j : narrow.jobs()) EXPECT_LE(j.procs(), 2);
  // Submit times preserved (then ids renumbered by normalize).
  EXPECT_EQ(narrow[0].submit_time, 100);
  EXPECT_EQ(narrow[1].submit_time, 600);
}

TEST(FilterJobs, EmptyResultIsValid) {
  const swf::Trace none =
      filter_jobs(small_trace(), [](const swf::Job&) { return false; });
  EXPECT_TRUE(none.empty());
}

TEST(OfferedLoad, HandComputedValue) {
  // work/job = (100*4 + 50*2 + 10*8 + 200*1)/4 = 195; it = 200; size 16.
  EXPECT_NEAR(offered_load(small_trace()), 195.0 / (200.0 * 16.0), 1e-12);
}

TEST(InjectHeavyTail, DeterministicAndOnlyStretches) {
  const swf::Trace base = sdsc_sp2_like(1, 400);
  HeavyTailParams params;
  params.prob = 0.2;
  const swf::Trace a = inject_heavy_tail(base, params, 42);
  const swf::Trace b = inject_heavy_tail(base, params, 42);
  ASSERT_EQ(a.size(), base.size());
  std::size_t stretched = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].run_time, b[i].run_time);
    EXPECT_EQ(a[i].submit_time, base[i].submit_time);
    EXPECT_EQ(a[i].requested_time, base[i].requested_time);  // requests kept
    EXPECT_GE(a[i].run_time, base[i].run_time);              // never shrinks
    EXPECT_LE(a[i].run_time, params.max_run_seconds);
    if (a[i].run_time > base[i].run_time) ++stretched;
  }
  // ~20% of 400 jobs; the Pareto factor is > 1 almost surely.
  EXPECT_GT(stretched, 40u);
  EXPECT_LT(stretched, 160u);
}

TEST(InjectHeavyTail, CreatesOverrunsForKillStudies) {
  const swf::Trace base = sdsc_sp2_like(1, 400);
  HeavyTailParams params;
  params.prob = 0.3;
  const swf::Trace tailed = inject_heavy_tail(base, params, 7);
  std::size_t overruns = 0;
  for (const auto& j : tailed.jobs()) {
    if (j.requested_time > 0 && j.run_time > j.requested_time) ++overruns;
  }
  EXPECT_GT(overruns, 0u);
}

TEST(InjectHeavyTail, ZeroProbabilityIsIdentity) {
  const swf::Trace base = sdsc_sp2_like(2, 100);
  HeavyTailParams params;
  params.prob = 0.0;
  const swf::Trace out = inject_heavy_tail(base, params, 3);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(out[i].run_time, base[i].run_time);
  }
}

TEST(InjectHeavyTail, NeverShrinksJobsAlreadyAboveTheCap) {
  // prob=1 so every job draws a stretch; a job above max_run_seconds must
  // keep its original runtime rather than being clamped down to the cap.
  swf::Trace base("long", 16, {make_job(1, 0, 100, 1)});
  base.mutable_jobs()[0].run_time = 2000;
  HeavyTailParams params;
  params.prob = 1.0;
  params.max_run_seconds = 1000;
  const swf::Trace out = inject_heavy_tail(base, params, 11);
  EXPECT_EQ(out[0].run_time, 2000);
}

TEST(InjectHeavyTail, ExtremeTailStaysFiniteAndPositive) {
  const swf::Trace base = sdsc_sp2_like(1, 200);
  HeavyTailParams params;
  params.prob = 1.0;
  params.alpha = 0.05;  // violently heavy tail: factors overflow doubles
  const swf::Trace out = inject_heavy_tail(base, params, 13);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out[i].run_time, base[i].run_time);
    EXPECT_LE(out[i].run_time,
              std::max(base[i].run_time, params.max_run_seconds));
  }
}

TEST(InjectHeavyTail, RejectsBadParameters) {
  HeavyTailParams params;
  params.prob = 1.5;
  EXPECT_THROW(inject_heavy_tail(small_trace(), params, 1), std::invalid_argument);
  params.prob = 0.1;
  params.alpha = 0.0;
  EXPECT_THROW(inject_heavy_tail(small_trace(), params, 1), std::invalid_argument);
}

TEST(OfferedLoad, DegenerateTraces) {
  EXPECT_DOUBLE_EQ(offered_load(swf::Trace("e", 8, {})), 0.0);
  EXPECT_DOUBLE_EQ(offered_load(swf::Trace("one", 8, {make_job(1, 0, 10, 1)})), 0.0);
}

}  // namespace
}  // namespace rlbf::workload
