#include "workload/transforms.h"

#include <gtest/gtest.h>

#include "workload/presets.h"

namespace rlbf::workload {
namespace {

swf::Job make_job(std::int64_t id, std::int64_t submit, std::int64_t run,
                  std::int64_t procs) {
  swf::Job j;
  j.id = id;
  j.submit_time = submit;
  j.run_time = run;
  j.requested_procs = procs;
  return j;
}

swf::Trace small_trace() {
  return swf::Trace("t", 16,
                    {make_job(1, 0, 100, 4), make_job(2, 100, 50, 2),
                     make_job(3, 300, 10, 8), make_job(4, 600, 200, 1)});
}

TEST(ScaleLoad, DoubleRateHalvesGaps) {
  const swf::Trace scaled = scale_load(small_trace(), 2.0);
  ASSERT_EQ(scaled.size(), 4u);
  EXPECT_EQ(scaled[0].submit_time, 0);
  EXPECT_EQ(scaled[1].submit_time, 50);
  EXPECT_EQ(scaled[2].submit_time, 150);
  EXPECT_EQ(scaled[3].submit_time, 300);
}

TEST(ScaleLoad, HalfRateDoublesGaps) {
  const swf::Trace scaled = scale_load(small_trace(), 0.5);
  EXPECT_EQ(scaled[3].submit_time, 1200);
}

TEST(ScaleLoad, JobBodiesUnchanged) {
  const swf::Trace scaled = scale_load(small_trace(), 3.0);
  const swf::Trace original = small_trace();
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    EXPECT_EQ(scaled[i].run_time, original[i].run_time);
    EXPECT_EQ(scaled[i].procs(), original[i].procs());
  }
}

TEST(ScaleLoad, FactorOneIsIdentity) {
  const swf::Trace scaled = scale_load(small_trace(), 1.0);
  const swf::Trace original = small_trace();
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    EXPECT_EQ(scaled[i].submit_time, original[i].submit_time);
  }
}

TEST(ScaleLoad, RejectsNonPositiveFactor) {
  EXPECT_THROW(scale_load(small_trace(), 0.0), std::invalid_argument);
  EXPECT_THROW(scale_load(small_trace(), -1.0), std::invalid_argument);
}

TEST(ScaleLoad, ScalesOfferedLoadProportionally) {
  const swf::Trace trace = sdsc_sp2_like(3, 2000);
  const double base = offered_load(trace);
  const double doubled = offered_load(scale_load(trace, 2.0));
  EXPECT_NEAR(doubled / base, 2.0, 0.05);
}

TEST(TimeWindow, SelectsAndRebases) {
  const swf::Trace w = time_window(small_trace(), 100, 400);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w[0].submit_time, 0);    // was 100
  EXPECT_EQ(w[1].submit_time, 200);  // was 300
}

TEST(TimeWindow, HalfOpenBoundaries) {
  const swf::Trace w = time_window(small_trace(), 0, 100);
  ASSERT_EQ(w.size(), 1u);  // job at 100 excluded
}

TEST(TimeWindow, RejectsInvertedWindow) {
  EXPECT_THROW(time_window(small_trace(), 400, 100), std::invalid_argument);
}

TEST(FilterJobs, KeepsMatchingJobs) {
  const swf::Trace narrow =
      filter_jobs(small_trace(), [](const swf::Job& j) { return j.procs() <= 2; });
  ASSERT_EQ(narrow.size(), 2u);
  for (const auto& j : narrow.jobs()) EXPECT_LE(j.procs(), 2);
  // Submit times preserved (then ids renumbered by normalize).
  EXPECT_EQ(narrow[0].submit_time, 100);
  EXPECT_EQ(narrow[1].submit_time, 600);
}

TEST(FilterJobs, EmptyResultIsValid) {
  const swf::Trace none =
      filter_jobs(small_trace(), [](const swf::Job&) { return false; });
  EXPECT_TRUE(none.empty());
}

TEST(OfferedLoad, HandComputedValue) {
  // work/job = (100*4 + 50*2 + 10*8 + 200*1)/4 = 195; it = 200; size 16.
  EXPECT_NEAR(offered_load(small_trace()), 195.0 / (200.0 * 16.0), 1e-12);
}

TEST(OfferedLoad, DegenerateTraces) {
  EXPECT_DOUBLE_EQ(offered_load(swf::Trace("e", 8, {})), 0.0);
  EXPECT_DOUBLE_EQ(offered_load(swf::Trace("one", 8, {make_job(1, 0, 10, 1)})), 0.0);
}

}  // namespace
}  // namespace rlbf::workload
