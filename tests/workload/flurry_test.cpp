#include <gtest/gtest.h>

#include "workload/presets.h"
#include "workload/transforms.h"

namespace rlbf::workload {
namespace {

swf::Job make_job(std::int64_t id, std::int64_t user, std::int64_t submit) {
  swf::Job j;
  j.id = id;
  j.user_id = user;
  j.submit_time = submit;
  j.run_time = 60;
  j.requested_time = 120;
  j.requested_procs = 1;
  return j;
}

swf::Trace sparse_trace(std::size_t n, std::int64_t user = 1,
                        std::int64_t gap = 7200) {
  std::vector<swf::Job> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    jobs.push_back(make_job(static_cast<std::int64_t>(i + 1), user,
                            static_cast<std::int64_t>(i) * gap));
  }
  return swf::Trace("sparse", 8, std::move(jobs));
}

// -------------------------------------------------------- remove_flurries --

TEST(RemoveFlurries, RejectsDegenerateParams) {
  const swf::Trace t = sparse_trace(3);
  FlurryParams p;
  p.window_seconds = 0;
  EXPECT_THROW(remove_flurries(t, p), std::invalid_argument);
  p = FlurryParams{};
  p.max_jobs_per_window = 0;
  EXPECT_THROW(remove_flurries(t, p), std::invalid_argument);
}

TEST(RemoveFlurries, SparseSubmissionsSurviveIntact) {
  const swf::Trace t = sparse_trace(20);
  FlurryReport report;
  const swf::Trace cleaned = remove_flurries(t, {}, &report);
  EXPECT_EQ(cleaned.size(), 20u);
  EXPECT_EQ(report.removed_jobs, 0u);
  EXPECT_EQ(report.flagged_users, 0u);
}

TEST(RemoveFlurries, DenseBurstFromOneUserIsCut) {
  // 100 jobs, 5 s apart (all inside one hour) — well past the default
  // 50-per-hour threshold.
  const swf::Trace burst = inject_flurry(sparse_trace(10), /*user=*/99,
                                         /*start=*/1000, /*count=*/100);
  FlurryReport report;
  const swf::Trace cleaned = remove_flurries(burst, {}, &report);
  EXPECT_EQ(report.flagged_users, 1u);
  EXPECT_EQ(report.removed_jobs, 100u);
  EXPECT_EQ(cleaned.size(), 10u);
  for (const auto& j : cleaned.jobs()) EXPECT_NE(j.user_id, 99);
}

TEST(RemoveFlurries, ThresholdIsPerUserNotGlobal)  {
  // 30 users each submit 3 jobs in the same hour: 90 jobs/hour globally,
  // but no single user crosses the threshold.
  std::vector<swf::Job> jobs;
  std::int64_t id = 1;
  for (std::int64_t u = 1; u <= 30; ++u) {
    for (int k = 0; k < 3; ++k) {
      const std::int64_t jid = id++;
      jobs.push_back(make_job(jid, u, 100 + jid));
    }
  }
  const swf::Trace t("busy-hour", 8, std::move(jobs));
  FlurryReport report;
  const swf::Trace cleaned = remove_flurries(t, {}, &report);
  EXPECT_EQ(report.removed_jobs, 0u);
  EXPECT_EQ(cleaned.size(), 90u);
}

TEST(RemoveFlurries, TighterThresholdCutsMore) {
  const swf::Trace burst = inject_flurry(sparse_trace(10, /*user=*/1, /*gap=*/600),
                                         /*user=*/99, 1000, 30);
  FlurryParams loose;  // default threshold 50: the 30-job burst survives
  FlurryReport loose_report;
  remove_flurries(burst, loose, &loose_report);
  EXPECT_EQ(loose_report.removed_jobs, 0u);

  FlurryParams tight;
  tight.max_jobs_per_window = 10;
  FlurryReport tight_report;
  const swf::Trace cleaned = remove_flurries(burst, tight, &tight_report);
  EXPECT_EQ(tight_report.removed_jobs, 30u);
  EXPECT_EQ(cleaned.size(), 10u);
}

TEST(RemoveFlurries, SurvivorsKeepSubmitTimes) {
  const swf::Trace t = sparse_trace(5);
  const swf::Trace burst = inject_flurry(t, 99, 500, 60);
  const swf::Trace cleaned = remove_flurries(burst);
  ASSERT_EQ(cleaned.size(), 5u);
  // normalize() renumbers ids but preserves the submit times.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(cleaned[i].submit_time, t[i].submit_time);
  }
}

TEST(RemoveFlurries, NullReportIsAccepted) {
  EXPECT_NO_THROW(remove_flurries(sparse_trace(5)));
}

TEST(RemoveFlurries, WindowBoundaryIsInclusive) {
  // Jobs exactly window_seconds apart are in the SAME window (diff <=
  // window), so 3 jobs with threshold 2 get flagged.
  std::vector<swf::Job> jobs = {make_job(1, 1, 0), make_job(2, 1, 1800),
                                make_job(3, 1, 3600)};
  const swf::Trace t("edge", 8, std::move(jobs));
  FlurryParams p;
  p.max_jobs_per_window = 2;
  FlurryReport report;
  remove_flurries(t, p, &report);
  EXPECT_EQ(report.removed_jobs, 3u);
}

// --------------------------------------------------------- inject_flurry --

TEST(InjectFlurry, AddsExactlyCountJobs) {
  const swf::Trace t = sparse_trace(10);
  const swf::Trace burst = inject_flurry(t, 42, 777, 25);
  EXPECT_EQ(burst.size(), 35u);
  std::size_t from_42 = 0;
  for (const auto& j : burst.jobs()) {
    if (j.user_id == 42) ++from_42;
  }
  EXPECT_EQ(from_42, 25u);
}

TEST(InjectFlurry, JobsArriveAtConfiguredGap) {
  const swf::Trace burst =
      inject_flurry(swf::Trace("empty", 8, {}), 1, 1000, 4, /*gap=*/30);
  ASSERT_EQ(burst.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(burst[i].submit_time, 1000 + static_cast<std::int64_t>(i) * 30);
  }
}

TEST(InjectFlurry, RejectsBadGapOrRuntime) {
  const swf::Trace t = sparse_trace(2);
  EXPECT_THROW(inject_flurry(t, 1, 0, 3, -1), std::invalid_argument);
  EXPECT_THROW(inject_flurry(t, 1, 0, 3, 5, 0), std::invalid_argument);
}

TEST(InjectFlurry, RoundTripWithScrubRestoresOriginalSize) {
  const swf::Trace base = hpc2n_like(17, 400);
  const swf::Trace burst = inject_flurry(base, /*user=*/9999, 5000, 200);
  FlurryReport report;
  const swf::Trace cleaned = remove_flurries(burst, {}, &report);
  EXPECT_EQ(report.removed_jobs, 200u);
  EXPECT_EQ(cleaned.size(), base.size());
}

TEST(InjectFlurry, FlurryDistortsMeanBsldScrubRestoresIt) {
  // The archive's rationale for cleaning: one user's burst dominates the
  // aggregate. We only check the trace-level statistics here (the
  // scheduling effect is covered by the benches): the flurry shifts the
  // mean interarrival sharply; scrubbing restores it.
  const swf::Trace base = sdsc_sp2_like(3, 500);
  const double base_it = base.stats().mean_interarrival;
  const swf::Trace burst = inject_flurry(base, 9999, 10000, 400, 2);
  EXPECT_LT(burst.stats().mean_interarrival, base_it * 0.75);
  const swf::Trace cleaned = remove_flurries(burst);
  EXPECT_NEAR(cleaned.stats().mean_interarrival, base_it, base_it * 0.01);
}

}  // namespace
}  // namespace rlbf::workload
