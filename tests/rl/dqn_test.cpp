#include "rl/dqn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "bandit_fixture.h"

namespace rlbf::rl {
namespace {

using rlbf::rl::testing::TestActorCritic;
using rlbf::rl::testing::bandit_accuracy;
using rlbf::rl::testing::collect_bandit_eps;

TEST(Dqn, RejectsZeroBatchSize) {
  TestActorCritic model(1);
  DqnConfig cfg;
  cfg.batch_size = 0;
  EXPECT_THROW(Dqn(model, cfg), std::invalid_argument);
}

TEST(Dqn, EpsilonDecaysLinearlyToFloor) {
  TestActorCritic model(1);
  DqnConfig cfg;
  cfg.epsilon_start = 1.0;
  cfg.epsilon_end = 0.1;
  cfg.epsilon_decay_epochs = 10;
  Dqn dqn(model, cfg);
  EXPECT_DOUBLE_EQ(dqn.epsilon(0), 1.0);
  EXPECT_NEAR(dqn.epsilon(5), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(dqn.epsilon(10), 0.1);
  EXPECT_DOUBLE_EQ(dqn.epsilon(100), 0.1);  // clamped at the floor
}

TEST(Dqn, ZeroDecayEpochsMeansConstantFloor) {
  TestActorCritic model(1);
  DqnConfig cfg;
  cfg.epsilon_decay_epochs = 0;
  cfg.epsilon_end = 0.07;
  Dqn dqn(model, cfg);
  EXPECT_DOUBLE_EQ(dqn.epsilon(0), 0.07);
}

TEST(Dqn, UpdateIsNoOpBelowMinReplay) {
  TestActorCritic model(2);
  DqnConfig cfg;
  cfg.min_replay = 100;
  Dqn dqn(model, cfg);
  util::Rng rng(3);
  RolloutBuffer buf = collect_bandit_eps(model, rng, 10, 1.0);
  for (const auto& ep : buf.episodes()) dqn.absorb(ep);
  const DqnStats stats = dqn.update(rng);
  EXPECT_EQ(stats.gradient_steps, 0u);
  EXPECT_EQ(stats.replay_size, 10u);
}

TEST(Dqn, LearnsContextualBandit) {
  TestActorCritic model(7);
  DqnConfig cfg;
  cfg.batch_size = 64;
  cfg.updates_per_epoch = 60;
  cfg.min_replay = 64;
  cfg.target_sync_every = 50;
  cfg.lr = 3e-3;
  Dqn dqn(model, cfg);
  util::Rng rng(11);

  for (int epoch = 0; epoch < 12; ++epoch) {
    const double eps = dqn.epsilon(static_cast<std::size_t>(epoch));
    RolloutBuffer buf = collect_bandit_eps(model, rng, 128, eps);
    for (const auto& ep : buf.episodes()) dqn.absorb(ep);
    dqn.update(rng);
  }
  EXPECT_GT(bandit_accuracy(model, rng, 500), 0.9);
}

TEST(Dqn, QValuesApproachBanditRewards) {
  // On the bandit, Q(s, good) -> 1 and Q(s, other) -> 0 (terminal
  // one-step episodes, so no bootstrapping is involved).
  TestActorCritic model(5);
  DqnConfig cfg;
  cfg.batch_size = 64;
  cfg.updates_per_epoch = 80;
  cfg.min_replay = 64;
  cfg.lr = 3e-3;
  Dqn dqn(model, cfg);
  util::Rng rng(17);
  for (int epoch = 0; epoch < 15; ++epoch) {
    RolloutBuffer buf = collect_bandit_eps(model, rng, 128, 0.5);
    for (const auto& ep : buf.episodes()) dqn.absorb(ep);
    dqn.update(rng);
  }
  std::size_t good;
  const nn::Tensor obs = rlbf::rl::testing::bandit_obs(rng, good);
  const nn::Tensor q = model.policy_logits_nograd(obs);
  EXPECT_NEAR(q.at(good, 0), 1.0, 0.35);
  for (std::size_t r = 0; r < 4; ++r) {
    if (r != good) EXPECT_NEAR(q.at(r, 0), 0.0, 0.35);
  }
}

TEST(Dqn, BootstrapsThroughMultiStepEpisodes) {
  // Two-step chain: step 1 (obs A) has reward 0, step 2 (obs B) is
  // terminal with reward 1 regardless of action. With gamma = 1 the
  // Q-values at A must rise toward 1 purely through bootstrapping —
  // A's immediate reward is always 0.
  TestActorCritic model(9);
  DqnConfig cfg;
  cfg.batch_size = 32;
  cfg.updates_per_epoch = 50;
  cfg.min_replay = 32;
  cfg.target_sync_every = 25;
  cfg.lr = 3e-3;
  cfg.gamma = 1.0;
  Dqn dqn(model, cfg);
  util::Rng rng(23);

  const nn::Tensor obs_a(4, 2, 0.3);
  const nn::Tensor obs_b(4, 2, -0.7);
  for (int e = 0; e < 200; ++e) {
    Episode ep;
    Step s1;
    s1.policy_obs = obs_a;
    s1.mask = {1, 1, 1, 1};
    s1.action = static_cast<std::size_t>(rng.uniform_int(0, 3));
    s1.reward = 0.0;
    Step s2;
    s2.policy_obs = obs_b;
    s2.mask = {1, 1, 1, 1};
    s2.action = static_cast<std::size_t>(rng.uniform_int(0, 3));
    s2.reward = 1.0;
    ep.steps.push_back(std::move(s1));
    ep.steps.push_back(std::move(s2));
    dqn.absorb(ep);
  }
  for (int epoch = 0; epoch < 12; ++epoch) dqn.update(rng);

  const nn::Tensor q_a = model.policy_logits_nograd(obs_a);
  double best = q_a.at(0, 0);
  for (std::size_t r = 1; r < 4; ++r) best = std::max(best, q_a.at(r, 0));
  EXPECT_NEAR(best, 1.0, 0.4);
}

TEST(Dqn, TargetNetworkSyncsOnSchedule) {
  TestActorCritic model(2);
  DqnConfig cfg;
  cfg.batch_size = 8;
  cfg.updates_per_epoch = 10;
  cfg.min_replay = 8;
  cfg.target_sync_every = 4;
  Dqn dqn(model, cfg);
  util::Rng rng(5);
  RolloutBuffer buf = collect_bandit_eps(model, rng, 32, 1.0);
  for (const auto& ep : buf.episodes()) dqn.absorb(ep);
  const DqnStats stats = dqn.update(rng);
  EXPECT_EQ(stats.gradient_steps, 10u);
  EXPECT_EQ(stats.target_syncs, 2u);  // steps 4 and 8
}

TEST(Dqn, StatsAreFiniteAfterUpdate) {
  TestActorCritic model(3);
  DqnConfig cfg;
  cfg.batch_size = 16;
  cfg.updates_per_epoch = 5;
  cfg.min_replay = 16;
  Dqn dqn(model, cfg);
  util::Rng rng(7);
  RolloutBuffer buf = collect_bandit_eps(model, rng, 32, 1.0);
  for (const auto& ep : buf.episodes()) dqn.absorb(ep);
  const DqnStats stats = dqn.update(rng);
  EXPECT_TRUE(std::isfinite(stats.loss));
  EXPECT_TRUE(std::isfinite(stats.mean_q));
  EXPECT_TRUE(std::isfinite(stats.mean_target));
  EXPECT_EQ(stats.replay_size, 32u);
}

TEST(Dqn, VanillaAndDoubleTargetsBothLearn) {
  for (const bool double_dqn : {false, true}) {
    TestActorCritic model(31);
    DqnConfig cfg;
    cfg.double_dqn = double_dqn;
    cfg.batch_size = 64;
    cfg.updates_per_epoch = 60;
    cfg.min_replay = 64;
    cfg.lr = 3e-3;
    Dqn dqn(model, cfg);
    util::Rng rng(13);
    for (int epoch = 0; epoch < 12; ++epoch) {
      RolloutBuffer buf =
          collect_bandit_eps(model, rng, 128, dqn.epsilon(static_cast<std::size_t>(epoch)));
      for (const auto& ep : buf.episodes()) dqn.absorb(ep);
      dqn.update(rng);
    }
    EXPECT_GT(bandit_accuracy(model, rng, 500), 0.85)
        << "double_dqn=" << double_dqn;
  }
}

TEST(Dqn, DeterministicAtFixedSeeds) {
  std::vector<nn::Tensor> finals[2];
  for (int run = 0; run < 2; ++run) {
    TestActorCritic model(41);
    DqnConfig cfg;
    cfg.batch_size = 16;
    cfg.updates_per_epoch = 8;
    cfg.min_replay = 16;
    Dqn dqn(model, cfg);
    util::Rng collect_rng(42);
    RolloutBuffer buf = collect_bandit_eps(model, collect_rng, 64, 0.7);
    for (const auto& ep : buf.episodes()) dqn.absorb(ep);
    util::Rng update_rng(43);
    dqn.update(update_rng);
    for (const auto& p : model.policy_parameters()) finals[run].push_back(p->value);
  }
  ASSERT_EQ(finals[0].size(), finals[1].size());
  for (std::size_t i = 0; i < finals[0].size(); ++i) {
    EXPECT_EQ(finals[0][i], finals[1][i]) << "parameter " << i;
  }
}

}  // namespace
}  // namespace rlbf::rl
