// Wire-format tests: a rollout file round-trips bit-exactly, and every
// way a file can be wrong — truncation, foreign bytes, version skew,
// corruption, a stale fingerprint, trailing garbage — is a named
// WireError, never a silent misread.
#include "rl/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace rlbf::rl {
namespace {

std::uint64_t fnv1a64(const char* data, std::size_t size) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Re-stamp the trailing checksum after a deliberate edit, so tests can
/// target the field UNDER the checksum (version, counts, trailing junk)
/// without tripping the corruption check first.
std::string with_recomputed_checksum(std::string bytes) {
  bytes.resize(bytes.size() - 8);
  const std::uint64_t hash = fnv1a64(bytes.data(), bytes.size());
  for (int i = 0; i < 8; ++i) {
    bytes += static_cast<char>((hash >> (8 * i)) & 0xff);
  }
  return bytes;
}

nn::Tensor tensor2x3(double base) {
  nn::Tensor t(2, 3);
  for (std::size_t i = 0; i < t.data().size(); ++i) {
    t.data()[i] = base + static_cast<double>(i) * 0.125;
  }
  return t;
}

std::vector<SequenceResult> sample_results() {
  std::vector<SequenceResult> results(2);
  results[0].bsld = 3.141592653589793;
  results[0].baseline_bsld = 7.25;
  Step s0;
  s0.policy_obs = tensor2x3(1.0);
  s0.mask = {1, 0, 1};
  s0.action = 2;
  s0.log_prob = -0.6931471805599453;
  s0.value_obs = tensor2x3(-4.0);
  s0.value = 0.0078125;
  s0.reward = -1e-300;  // subnormal-adjacent: must survive bit-exactly
  Step s1;
  s1.policy_obs = nn::Tensor(1, 1);
  s1.policy_obs.data()[0] = 42.0;
  s1.mask = {1};
  s1.action = 0;
  s1.log_prob = 0.0;
  s1.value_obs = nn::Tensor(0, 0);
  s1.value = -2.5;
  s1.reward = 11.0;
  results[0].episode.steps = {s0, s1};
  results[1].bsld = 1.5;
  results[1].baseline_bsld = 2.0;
  // Second sequence has no steps (a legal degenerate episode).
  return results;
}

void expect_equal(const std::vector<SequenceResult>& a,
                  const std::vector<SequenceResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bsld, b[i].bsld);
    EXPECT_EQ(a[i].baseline_bsld, b[i].baseline_bsld);
    ASSERT_EQ(a[i].episode.steps.size(), b[i].episode.steps.size());
    for (std::size_t j = 0; j < a[i].episode.steps.size(); ++j) {
      const Step& x = a[i].episode.steps[j];
      const Step& y = b[i].episode.steps[j];
      EXPECT_EQ(x.policy_obs.rows(), y.policy_obs.rows());
      EXPECT_EQ(x.policy_obs.cols(), y.policy_obs.cols());
      EXPECT_EQ(x.policy_obs.data(), y.policy_obs.data());
      EXPECT_EQ(x.mask, y.mask);
      EXPECT_EQ(x.action, y.action);
      EXPECT_EQ(x.log_prob, y.log_prob);
      EXPECT_EQ(x.value_obs.data(), y.value_obs.data());
      EXPECT_EQ(x.value, y.value);
      EXPECT_EQ(x.reward, y.reward);
    }
  }
}

void expect_wire_error(const std::string& bytes, const std::string& expected_fp,
                       const std::string& needle) {
  try {
    decode_rollouts(bytes, expected_fp);
    FAIL() << "expected WireError containing '" << needle << "'";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(WireTest, RoundTripIsBitExact) {
  const std::vector<SequenceResult> original = sample_results();
  const std::string bytes = encode_rollouts(original, "fp-abc");
  const std::vector<SequenceResult> decoded = decode_rollouts(bytes, "fp-abc");
  expect_equal(original, decoded);
}

TEST(WireTest, AdvantageAndReturnAreNotTransported) {
  // GAE outputs are learner-side derivations; the wire restores their
  // collection-time zeros even if the sender had finished its buffer.
  std::vector<SequenceResult> results = sample_results();
  results[0].episode.steps[0].advantage = 9.0;
  results[0].episode.steps[0].ret = -9.0;
  const std::vector<SequenceResult> decoded =
      decode_rollouts(encode_rollouts(results, ""), "");
  EXPECT_EQ(decoded[0].episode.steps[0].advantage, 0.0);
  EXPECT_EQ(decoded[0].episode.steps[0].ret, 0.0);
}

TEST(WireTest, EmptyResultSetRoundTrips) {
  const std::string bytes = encode_rollouts({}, "fp");
  EXPECT_TRUE(decode_rollouts(bytes, "fp").empty());
}

TEST(WireTest, EmptyExpectedFingerprintSkipsTheCheck) {
  const std::string bytes = encode_rollouts(sample_results(), "whatever");
  expect_equal(sample_results(), decode_rollouts(bytes, ""));
}

TEST(WireTest, FingerprintMismatchIsANamedError) {
  const std::string bytes = encode_rollouts({}, "epoch1-worker0");
  expect_wire_error(bytes, "epoch2-worker0", "fingerprint mismatch");
  expect_wire_error(bytes, "epoch2-worker0", "epoch1-worker0");  // names both
}

TEST(WireTest, BadMagicIsANamedError) {
  std::string bytes = encode_rollouts({}, "fp");
  bytes[0] = 'X';
  expect_wire_error(bytes, "fp", "bad magic");
  expect_wire_error("", "", "truncated");
  expect_wire_error("RLBF", "", "truncated");  // shorter than the magic
}

TEST(WireTest, UnsupportedVersionIsANamedError) {
  std::string bytes = encode_rollouts({}, "fp");
  bytes[8] = 2;  // version lives right after the 8-byte magic
  expect_wire_error(with_recomputed_checksum(std::move(bytes)), "fp",
                    "unsupported version 2");
}

TEST(WireTest, FlippedByteIsCorruptionNotAFieldError) {
  const std::vector<SequenceResult> results = sample_results();
  std::string bytes = encode_rollouts(results, "fp");
  // Flip one payload byte deep in the body: the checksum must catch it
  // before the decoder trusts whatever field the byte landed in.
  bytes[bytes.size() / 2] ^= 0x40;
  expect_wire_error(bytes, "fp", "checksum mismatch");
}

TEST(WireTest, TruncationIsANamedError) {
  const std::string bytes = encode_rollouts(sample_results(), "fp");
  // Any prefix shorter than the file must fail as truncation/corruption,
  // never decode: the checksum trailer guards most cuts, the bounds
  // checks guard the rest.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() - 9, bytes.size() / 2,
        std::size_t{14}, std::size_t{8}}) {
    EXPECT_THROW(decode_rollouts(bytes.substr(0, keep), "fp"), WireError)
        << "prefix of " << keep << " byte(s) decoded";
  }
}

TEST(WireTest, CorruptedCountIsTruncationNotAGiantAllocation) {
  std::string bytes = encode_rollouts(sample_results(), "fp");
  // The sequence count sits after magic(8) + version(4) + fp len(8) +
  // "fp"(2); write 2^56 over it and re-stamp the checksum.
  const std::size_t count_at = 8 + 4 + 8 + 2;
  for (int i = 0; i < 8; ++i) bytes[count_at + i] = (i == 7) ? 1 : 0;
  expect_wire_error(with_recomputed_checksum(std::move(bytes)), "fp",
                    "truncated");
}

TEST(WireTest, TrailingBytesAreANamedError) {
  std::string bytes = encode_rollouts(sample_results(), "fp");
  bytes.resize(bytes.size() - 8);  // drop the checksum
  bytes += "junk";                 // garbage after the last sequence
  bytes += std::string(8, '\0');   // placeholder checksum, re-stamped below
  expect_wire_error(with_recomputed_checksum(std::move(bytes)), "fp",
                    "trailing byte(s)");
}

TEST(WireTest, SaveLoadRoundTripsAndNamesThePathOnError) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/rollouts_test.bin";
  const std::vector<SequenceResult> original = sample_results();
  save_rollouts(path, original, "fp-77");
  // Atomic write: no .tmp litter once save returns.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  expect_equal(original, load_rollouts(path, "fp-77"));
  try {
    load_rollouts(path, "other-fp");
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("fingerprint mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
  EXPECT_THROW(load_rollouts(dir + "/does_not_exist.bin", ""), WireError);
}

}  // namespace
}  // namespace rlbf::rl
