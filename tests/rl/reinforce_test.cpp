#include "rl/reinforce.h"

#include <gtest/gtest.h>

#include <cmath>

#include "bandit_fixture.h"

namespace rlbf::rl {
namespace {

using rlbf::rl::testing::TestActorCritic;
using rlbf::rl::testing::bandit_accuracy;
using rlbf::rl::testing::collect_bandit;

// REINFORCE takes exactly one gradient step per collected batch (unlike
// PPO's 20+ reuse iterations), so the bandit tests compensate with a
// higher learning rate — at PPO's 1e-3 the policy cannot flip an
// unluckily-initialized score ordering within a test-sized budget.
TEST(Reinforce, LearnsContextualBanditWithBaseline) {
  TestActorCritic model(7);
  ReinforceConfig cfg;
  cfg.use_baseline = true;
  cfg.policy_lr = 1e-2;
  cfg.value_lr = 3e-3;
  Reinforce reinforce(model, cfg);
  util::Rng rng(11);
  for (int epoch = 0; epoch < 60; ++epoch) {
    RolloutBuffer buf = collect_bandit(model, rng, 256);
    reinforce.update(buf, rng);
  }
  EXPECT_GT(bandit_accuracy(model, rng, 500), 0.85);
}

TEST(Reinforce, LearnsContextualBanditWithoutBaseline) {
  // Raw-return REINFORCE is higher variance but the normalized weights
  // still solve the bandit, just needing more epochs than with-baseline.
  TestActorCritic model(7);
  ReinforceConfig cfg;
  cfg.use_baseline = false;
  cfg.policy_lr = 1e-2;
  Reinforce reinforce(model, cfg);
  util::Rng rng(13);
  for (int epoch = 0; epoch < 80; ++epoch) {
    RolloutBuffer buf = collect_bandit(model, rng, 256);
    reinforce.update(buf, rng);
  }
  EXPECT_GT(bandit_accuracy(model, rng, 500), 0.8);
}

TEST(Reinforce, EmptyBufferThrows) {
  TestActorCritic model(1);
  Reinforce reinforce(model, ReinforceConfig{});
  util::Rng rng(1);
  RolloutBuffer buf;
  buf.finish(1.0, 1.0);
  EXPECT_THROW(reinforce.update(buf, rng), std::invalid_argument);
}

TEST(Reinforce, StatsReportValueFittingOnlyWithBaseline) {
  util::Rng rng(5);
  {
    TestActorCritic model(3);
    ReinforceConfig cfg;
    cfg.use_baseline = true;
    cfg.value_iters = 7;
    Reinforce reinforce(model, cfg);
    RolloutBuffer buf = collect_bandit(model, rng, 64);
    const ReinforceStats stats = reinforce.update(buf, rng);
    EXPECT_EQ(stats.value_iters, 7u);
    EXPECT_TRUE(std::isfinite(stats.value_loss));
  }
  {
    TestActorCritic model(3);
    ReinforceConfig cfg;
    cfg.use_baseline = false;
    Reinforce reinforce(model, cfg);
    RolloutBuffer buf = collect_bandit(model, rng, 64);
    const ReinforceStats stats = reinforce.update(buf, rng);
    EXPECT_EQ(stats.value_iters, 0u);
    EXPECT_EQ(stats.value_loss, 0.0);
  }
}

TEST(Reinforce, StatsAreFinite) {
  TestActorCritic model(9);
  Reinforce reinforce(model, ReinforceConfig{});
  util::Rng rng(21);
  RolloutBuffer buf = collect_bandit(model, rng, 128);
  const ReinforceStats stats = reinforce.update(buf, rng);
  EXPECT_TRUE(std::isfinite(stats.policy_loss));
  EXPECT_GT(stats.entropy, 0.0);
}

TEST(Reinforce, WithoutBaselineValueParametersAreUntouched) {
  TestActorCritic model(15);
  ReinforceConfig cfg;
  cfg.use_baseline = false;
  Reinforce reinforce(model, cfg);
  util::Rng rng(8);
  std::vector<nn::Tensor> before;
  for (const auto& p : model.value_parameters()) before.push_back(p->value);
  RolloutBuffer buf = collect_bandit(model, rng, 64);
  reinforce.update(buf, rng);
  const auto params = model.value_parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i]->value, before[i]) << "value parameter " << i;
  }
}

TEST(Reinforce, DeterministicAtFixedSeeds) {
  std::vector<nn::Tensor> finals[2];
  for (int run = 0; run < 2; ++run) {
    TestActorCritic model(33);
    Reinforce reinforce(model, ReinforceConfig{});
    util::Rng collect_rng(44);
    RolloutBuffer buf = collect_bandit(model, collect_rng, 128);
    util::Rng update_rng(55);
    reinforce.update(buf, update_rng);
    for (const auto& p : model.policy_parameters()) finals[run].push_back(p->value);
    for (const auto& p : model.value_parameters()) finals[run].push_back(p->value);
  }
  ASSERT_EQ(finals[0].size(), finals[1].size());
  for (std::size_t i = 0; i < finals[0].size(); ++i) {
    EXPECT_EQ(finals[0][i], finals[1][i]) << "parameter " << i;
  }
}

TEST(Reinforce, BaselineReducesWeightVarianceProxy) {
  // Indirect check that the two weighting modes differ: train two
  // identical models one epoch each and confirm the resulting policy
  // parameters diverge (the advantage and raw-return weights disagree).
  TestActorCritic with(3), without(3);
  ReinforceConfig cfg_with;
  cfg_with.use_baseline = true;
  ReinforceConfig cfg_without;
  cfg_without.use_baseline = false;
  Reinforce r1(with, cfg_with), r2(without, cfg_without);
  util::Rng rng1(71), rng2(71);
  RolloutBuffer b1 = collect_bandit(with, rng1, 128);
  RolloutBuffer b2 = collect_bandit(without, rng2, 128);
  r1.update(b1, rng1);
  r2.update(b2, rng2);
  double diff = 0.0;
  const auto p1 = with.policy_parameters();
  const auto p2 = without.policy_parameters();
  for (std::size_t i = 0; i < p1.size(); ++i) {
    diff = std::max(diff, nn::Tensor::max_abs_diff(p1[i]->value, p2[i]->value));
  }
  EXPECT_GT(diff, 0.0);
}

}  // namespace
}  // namespace rlbf::rl
