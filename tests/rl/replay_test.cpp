#include "rl/replay.h"

#include <gtest/gtest.h>

#include <set>

namespace rlbf::rl {
namespace {

Transition make_transition(double reward, bool done = false) {
  Transition t;
  t.obs = nn::Tensor(2, 2, reward);
  t.mask = {1, 1};
  t.action = 0;
  t.reward = reward;
  if (!done) {
    t.next_obs = nn::Tensor(2, 2, reward + 1.0);
    t.next_mask = {1, 1};
  }
  t.done = done;
  return t;
}

TEST(ReplayBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(ReplayBuffer(0), std::invalid_argument);
}

TEST(ReplayBuffer, StartsEmpty) {
  ReplayBuffer buf(8);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 8u);
}

TEST(ReplayBuffer, GrowsUntilCapacity) {
  ReplayBuffer buf(4);
  for (int i = 0; i < 3; ++i) buf.add(make_transition(i));
  EXPECT_EQ(buf.size(), 3u);
  buf.add(make_transition(3));
  buf.add(make_transition(4));
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.added(), 5u);
}

TEST(ReplayBuffer, RingEvictsOldestFirst) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i) buf.add(make_transition(i));
  // Slots held rewards {0,1,2}; adds 3 and 4 overwrite slots 0 and 1.
  std::set<double> rewards;
  for (std::size_t i = 0; i < buf.size(); ++i) rewards.insert(buf[i].reward);
  EXPECT_EQ(rewards, (std::set<double>{2.0, 3.0, 4.0}));
}

TEST(ReplayBuffer, SampleFromEmptyThrows) {
  ReplayBuffer buf(4);
  util::Rng rng(1);
  EXPECT_THROW(buf.sample(2, rng), std::invalid_argument);
}

TEST(ReplayBuffer, SampleReturnsRequestedCount) {
  ReplayBuffer buf(16);
  for (int i = 0; i < 5; ++i) buf.add(make_transition(i));
  util::Rng rng(2);
  EXPECT_EQ(buf.sample(64, rng).size(), 64u);  // with replacement
}

TEST(ReplayBuffer, SampleCoversTheWholeBuffer) {
  ReplayBuffer buf(8);
  for (int i = 0; i < 8; ++i) buf.add(make_transition(i));
  util::Rng rng(3);
  std::set<double> seen;
  for (const Transition* t : buf.sample(400, rng)) seen.insert(t->reward);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ReplayBuffer, EpisodeSplitsIntoChainedTransitions) {
  Episode ep;
  for (int i = 0; i < 3; ++i) {
    Step s;
    s.policy_obs = nn::Tensor(2, 2, static_cast<double>(i));
    s.mask = {1, 1};
    s.action = static_cast<std::size_t>(i % 2);
    s.reward = static_cast<double>(i) * 10.0;
    ep.steps.push_back(std::move(s));
  }
  ReplayBuffer buf(16);
  buf.add_episode(ep);
  ASSERT_EQ(buf.size(), 3u);

  // Step i's successor observation is step i+1's observation.
  EXPECT_FALSE(buf[0].done);
  EXPECT_EQ(buf[0].next_obs.at(0, 0), 1.0);
  EXPECT_FALSE(buf[1].done);
  EXPECT_EQ(buf[1].next_obs.at(0, 0), 2.0);
  // The final step is terminal with no successor.
  EXPECT_TRUE(buf[2].done);
  EXPECT_EQ(buf[2].next_obs.size(), 0u);
  EXPECT_TRUE(buf[2].next_mask.empty());
  // Rewards and actions carry through.
  EXPECT_EQ(buf[1].reward, 10.0);
  EXPECT_EQ(buf[1].action, 1u);
}

TEST(ReplayBuffer, EmptyEpisodeAddsNothing) {
  ReplayBuffer buf(4);
  buf.add_episode(Episode{});
  EXPECT_TRUE(buf.empty());
}

}  // namespace
}  // namespace rlbf::rl
