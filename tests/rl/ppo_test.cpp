#include "rl/ppo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"

#include "bandit_fixture.h"

namespace rlbf::rl {
namespace {

TEST(MaskedCategorical, SampleRespectsMask) {
  nn::Tensor logits(3, 1);
  logits.at(0, 0) = 100.0;  // masked out: must never be sampled
  logits.at(1, 0) = 0.0;
  logits.at(2, 0) = 0.0;
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto s = sample_masked(logits, {0, 1, 1}, rng);
    EXPECT_NE(s.action, 0u);
    EXPECT_NEAR(s.log_prob, std::log(0.5), 1e-9);
  }
}

TEST(MaskedCategorical, SampleFrequenciesFollowSoftmax) {
  nn::Tensor logits(2, 1);
  logits.at(0, 0) = std::log(3.0);
  logits.at(1, 0) = 0.0;  // p = [0.75, 0.25]
  util::Rng rng(2);
  int zero = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    zero += sample_masked(logits, {1, 1}, rng).action == 0 ? 1 : 0;
  }
  EXPECT_NEAR(zero / static_cast<double>(n), 0.75, 0.01);
}

TEST(MaskedCategorical, SampleThrowsWhenAllMasked) {
  nn::Tensor logits(2, 1);
  util::Rng rng(1);
  EXPECT_THROW(sample_masked(logits, {0, 0}, rng), std::invalid_argument);
}

TEST(MaskedCategorical, ArgmaxSkipsMasked) {
  nn::Tensor logits(3, 1);
  logits.at(0, 0) = 10.0;
  logits.at(1, 0) = 5.0;
  logits.at(2, 0) = 1.0;
  EXPECT_EQ(argmax_masked(logits, {1, 1, 1}), 0u);
  EXPECT_EQ(argmax_masked(logits, {0, 1, 1}), 1u);
  EXPECT_THROW(argmax_masked(logits, {0, 0, 0}), std::invalid_argument);
}

TEST(MaskedCategorical, ShapeMismatchThrows) {
  nn::Tensor logits(3, 1);
  util::Rng rng(1);
  EXPECT_THROW(sample_masked(logits, {1, 1}, rng), std::invalid_argument);
  EXPECT_THROW(argmax_masked(logits, {1, 1}), std::invalid_argument);
}

using rlbf::rl::testing::TestActorCritic;
using rlbf::rl::testing::bandit_accuracy;
using rlbf::rl::testing::collect_bandit;

TEST(Ppo, LearnsContextualBandit) {
  TestActorCritic model(7);
  PpoConfig cfg;
  cfg.train_iters = 20;
  cfg.minibatch_size = 0;  // full batch
  cfg.target_kl = 0.0;     // run all iterations
  Ppo ppo(model, cfg);
  util::Rng rng(11);

  const double before = bandit_accuracy(model, rng, 500);
  for (int epoch = 0; epoch < 10; ++epoch) {
    RolloutBuffer buf = collect_bandit(model, rng, 256);
    ppo.update(buf, rng);
  }
  const double after = bandit_accuracy(model, rng, 500);
  EXPECT_GT(after, 0.9) << "before=" << before;
}

TEST(Ppo, ParallelUpdateAlsoLearns) {
  TestActorCritic model(7);
  PpoConfig cfg;
  cfg.train_iters = 20;
  cfg.minibatch_size = 0;
  cfg.target_kl = 0.0;
  util::ThreadPool pool(4);
  Ppo ppo(model, cfg, &pool);
  util::Rng rng(13);
  for (int epoch = 0; epoch < 10; ++epoch) {
    RolloutBuffer buf = collect_bandit(model, rng, 256);
    ppo.update(buf, rng);
  }
  EXPECT_GT(bandit_accuracy(model, rng, 500), 0.9);
}

TEST(Ppo, UpdateReportsStats) {
  TestActorCritic model(3);
  PpoConfig cfg;
  cfg.train_iters = 5;
  cfg.target_kl = 0.0;
  Ppo ppo(model, cfg);
  util::Rng rng(5);
  RolloutBuffer buf = collect_bandit(model, rng, 64);
  const PpoStats stats = ppo.update(buf, rng);
  EXPECT_EQ(stats.policy_iters, 5u);
  EXPECT_EQ(stats.value_iters, 5u);
  EXPECT_GT(stats.entropy, 0.0);
  EXPECT_TRUE(std::isfinite(stats.policy_loss));
  EXPECT_TRUE(std::isfinite(stats.value_loss));
}

TEST(Ppo, KlEarlyStoppingLimitsPolicyIterations) {
  TestActorCritic model(3);
  PpoConfig cfg;
  cfg.train_iters = 80;
  cfg.target_kl = 1e-7;  // absurdly tight: stop almost immediately
  cfg.policy_lr = 0.05;  // move fast so KL blows through the target
  Ppo ppo(model, cfg);
  util::Rng rng(5);
  RolloutBuffer buf = collect_bandit(model, rng, 128);
  const PpoStats stats = ppo.update(buf, rng);
  EXPECT_LT(stats.policy_iters, 80u);
  EXPECT_EQ(stats.value_iters, 80u);  // value loop unaffected
}

TEST(Ppo, ValueLossDecreasesOnFixedTargets) {
  TestActorCritic model(9);
  PpoConfig cfg;
  cfg.train_iters = 40;
  cfg.target_kl = 0.0;
  Ppo ppo(model, cfg);
  util::Rng rng(21);
  RolloutBuffer first = collect_bandit(model, rng, 128);
  const double initial_loss = ppo.update(first, rng).value_loss;
  // Re-collect with the (slightly) trained critic: loss should be lower
  // after another pass over similar targets.
  RolloutBuffer second = collect_bandit(model, rng, 128);
  const double later_loss = ppo.update(second, rng).value_loss;
  EXPECT_LT(later_loss, initial_loss * 1.5);
}

TEST(Ppo, UpdateIsDeterministicAtFixedSeeds) {
  // Two identical models + identical buffers + identical rngs must end
  // with bitwise-identical parameters (serial path).
  PpoConfig cfg;
  cfg.train_iters = 8;
  cfg.minibatch_size = 64;
  cfg.target_kl = 0.0;

  std::vector<nn::Tensor> finals[2];
  for (int run = 0; run < 2; ++run) {
    TestActorCritic model(33);
    Ppo ppo(model, cfg);
    util::Rng collect_rng(44);
    RolloutBuffer buf = collect_bandit(model, collect_rng, 128);
    util::Rng update_rng(55);
    ppo.update(buf, update_rng);
    for (const auto& p : model.policy_parameters()) finals[run].push_back(p->value);
    for (const auto& p : model.value_parameters()) finals[run].push_back(p->value);
  }
  ASSERT_EQ(finals[0].size(), finals[1].size());
  for (std::size_t i = 0; i < finals[0].size(); ++i) {
    EXPECT_EQ(finals[0][i], finals[1][i]) << "parameter " << i;
  }
}

TEST(Ppo, CriticLearnsStateDependentValues) {
  // Feed the critic observations whose target is a deterministic
  // function of the input; after training, predictions must correlate.
  TestActorCritic model(17);
  PpoConfig cfg;
  cfg.train_iters = 60;
  cfg.target_kl = 0.0;
  cfg.value_lr = 3e-3;
  Ppo ppo(model, cfg);
  util::Rng rng(18);
  for (int epoch = 0; epoch < 8; ++epoch) {
    RolloutBuffer buf;
    for (int e = 0; e < 128; ++e) {
      Step s;
      s.policy_obs = nn::Tensor(2, 2);
      s.mask = {1, 1};
      s.action = 0;
      s.log_prob = std::log(0.5);
      const double x = rng.uniform(-1.0, 1.0);
      s.value_obs = nn::Tensor(1, 4, x);
      s.value = model.value_nograd(s.value_obs);
      s.reward = 2.0 * x;  // target value = 2x
      Episode ep;
      ep.steps.push_back(std::move(s));
      buf.add_episode(std::move(ep));
    }
    ppo.update(buf, rng);
  }
  const double lo = model.value_nograd(nn::Tensor(1, 4, -0.8));
  const double hi = model.value_nograd(nn::Tensor(1, 4, 0.8));
  EXPECT_GT(hi - lo, 1.0);  // monotone response approximating 2x
  EXPECT_NEAR(hi, 1.6, 0.8);
}

TEST(Ppo, MinibatchSamplingRespectsConfiguredSize) {
  // With a minibatch smaller than the buffer, stats.n per iteration is
  // bounded by the configured size; we can observe this indirectly via a
  // one-iteration update on a large buffer not exploding in time, and
  // directly by the entropy being finite (sanity).
  TestActorCritic model(3);
  PpoConfig cfg;
  cfg.train_iters = 1;
  cfg.minibatch_size = 32;
  cfg.target_kl = 0.0;
  Ppo ppo(model, cfg);
  util::Rng rng(9);
  RolloutBuffer buf = collect_bandit(model, rng, 512);
  const PpoStats stats = ppo.update(buf, rng);
  EXPECT_TRUE(std::isfinite(stats.entropy));
  EXPECT_EQ(stats.policy_iters, 1u);
}

TEST(Ppo, EmptyBufferThrows) {
  TestActorCritic model(1);
  PpoConfig cfg;
  Ppo ppo(model, cfg);
  util::Rng rng(1);
  RolloutBuffer buf;
  buf.finish(1.0, 1.0);
  EXPECT_THROW(ppo.update(buf, rng), std::invalid_argument);
}

}  // namespace
}  // namespace rlbf::rl
