// Shared test fixture for the RL algorithms (PPO, REINFORCE, DQN): a
// minimal kernel-style ActorCritic plus a contextual-bandit environment
// whose optimal policy is known, so each algorithm's learning can be
// asserted directly.
#pragma once

#include "nn/layers.h"
#include "rl/ppo.h"
#include "rl/rollout.h"
#include "util/rng.h"

namespace rlbf::rl::testing {

/// Minimal kernel-style ActorCritic: scores each observation row with a
/// tiny MLP; the critic reads a fixed 1x4 vector.
class TestActorCritic final : public ActorCritic {
 public:
  explicit TestActorCritic(std::uint64_t seed)
      : rng_(seed),
        policy_({2, 8, 1}, nn::Activation::Tanh, rng_),
        value_({4, 8, 1}, nn::Activation::Tanh, rng_) {}

  TestActorCritic(nn::Mlp p, nn::Mlp v)
      : rng_(0), policy_(std::move(p)), value_(std::move(v)) {}

  nn::VarPtr policy_logits(const nn::Tensor& obs) const override {
    return policy_.forward(nn::constant(obs));
  }
  nn::VarPtr value(const nn::Tensor& obs) const override {
    return value_.forward(nn::constant(obs));
  }
  nn::Tensor policy_logits_nograd(const nn::Tensor& obs) const override {
    return policy_.forward_value(obs);
  }
  double value_nograd(const nn::Tensor& obs) const override {
    return value_.forward_value(obs).item();
  }
  std::vector<nn::VarPtr> policy_parameters() const override {
    return policy_.parameters();
  }
  std::vector<nn::VarPtr> value_parameters() const override {
    return value_.parameters();
  }
  std::unique_ptr<ActorCritic> clone() const override {
    return std::make_unique<TestActorCritic>(policy_.clone(), value_.clone());
  }
  void sync_from(const ActorCritic& other) override {
    const auto& o = dynamic_cast<const TestActorCritic&>(other);
    policy_.copy_parameters_from(o.policy_);
    value_.copy_parameters_from(o.value_);
  }

 private:
  util::Rng rng_;
  nn::Mlp policy_;
  nn::Mlp value_;
};

/// One contextual-bandit observation: 4 candidate rows, exactly one of
/// which carries feature[0] = 1; picking it yields reward +1.
inline nn::Tensor bandit_obs(util::Rng& rng, std::size_t& good_out) {
  nn::Tensor obs(4, 2);
  const auto good = static_cast<std::size_t>(rng.uniform_int(0, 3));
  for (std::size_t r = 0; r < 4; ++r) {
    obs.at(r, 0) = r == good ? 1.0 : 0.0;
    obs.at(r, 1) = rng.uniform(-0.1, 0.1);
  }
  good_out = good;
  return obs;
}

/// Collect single-step bandit episodes with softmax-sampled actions.
inline RolloutBuffer collect_bandit(TestActorCritic& model, util::Rng& rng,
                                    std::size_t episodes) {
  RolloutBuffer buf;
  for (std::size_t e = 0; e < episodes; ++e) {
    std::size_t good;
    const nn::Tensor obs = bandit_obs(rng, good);
    const std::vector<std::uint8_t> mask = {1, 1, 1, 1};
    const auto logits = model.policy_logits_nograd(obs);
    const auto sample = sample_masked(logits, mask, rng);

    Step s;
    s.policy_obs = obs;
    s.mask = mask;
    s.action = sample.action;
    s.log_prob = sample.log_prob;
    s.value_obs = nn::Tensor(1, 4, 0.25);
    s.value = model.value_nograd(s.value_obs);
    s.reward = sample.action == good ? 1.0 : 0.0;
    Episode ep;
    ep.steps.push_back(std::move(s));
    buf.add_episode(std::move(ep));
  }
  return buf;
}

/// Collect bandit episodes with epsilon-greedy actions (the DQN regime).
inline RolloutBuffer collect_bandit_eps(TestActorCritic& model, util::Rng& rng,
                                        std::size_t episodes, double epsilon) {
  RolloutBuffer buf;
  for (std::size_t e = 0; e < episodes; ++e) {
    std::size_t good;
    const nn::Tensor obs = bandit_obs(rng, good);
    const std::vector<std::uint8_t> mask = {1, 1, 1, 1};
    std::size_t action;
    if (rng.bernoulli(epsilon)) {
      action = static_cast<std::size_t>(rng.uniform_int(0, 3));
    } else {
      action = argmax_masked(model.policy_logits_nograd(obs), mask);
    }
    Step s;
    s.policy_obs = obs;
    s.mask = mask;
    s.action = action;
    s.log_prob = 0.0;
    s.value_obs = nn::Tensor(1, 4, 0.25);
    s.value = 0.0;
    s.reward = action == good ? 1.0 : 0.0;
    Episode ep;
    ep.steps.push_back(std::move(s));
    buf.add_episode(std::move(ep));
  }
  return buf;
}

/// Greedy accuracy of the model on fresh bandit draws.
inline double bandit_accuracy(TestActorCritic& model, util::Rng& rng,
                              std::size_t trials) {
  std::size_t hits = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    std::size_t good;
    const nn::Tensor obs = bandit_obs(rng, good);
    if (argmax_masked(model.policy_logits_nograd(obs), {1, 1, 1, 1}) == good) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace rlbf::rl::testing
