// ThreadCollector contract tests: results come back indexed by
// sequence in sequence order, each sequence sees its own pre-drawn
// seed, the replica-slot assignment is the pre-seam t % slots mapping,
// and none of it depends on the pool size — the property the trainers
// rely on for byte-identical epochs at any --threads.
#include "rl/collect.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/thread_pool.h"

namespace rlbf::rl {
namespace {

CollectionPlan plan_with_seeds(std::size_t n) {
  CollectionPlan plan;
  for (std::size_t i = 0; i < n; ++i) {
    plan.seeds.push_back(1000 + 7 * static_cast<std::uint64_t>(i));
  }
  plan.epoch = 3;
  return plan;
}

/// A pure synthetic sequence body: encodes (index, seed) into the
/// diagnostics so the test can check routing from the results alone.
SequenceResult stamp(std::size_t index, std::uint64_t seed) {
  SequenceResult r;
  r.bsld = static_cast<double>(index);
  r.baseline_bsld = static_cast<double>(seed);
  return r;
}

TEST(ThreadCollectorTest, SlotsClampToSequenceCount) {
  util::ThreadPool big(8);
  util::ThreadPool small(2);
  EXPECT_EQ(ThreadCollector(big).slots(3), 3u);
  EXPECT_EQ(ThreadCollector(big).slots(20), 8u);
  EXPECT_EQ(ThreadCollector(small).slots(5), 2u);
}

TEST(ThreadCollectorTest, ResultsComeBackInSequenceOrderWithTheirSeeds) {
  util::ThreadPool pool(4);
  ThreadCollector collector(pool);
  const CollectionPlan plan = plan_with_seeds(13);
  const std::vector<SequenceResult> results = collector.collect(
      plan, [](std::size_t index, std::uint64_t seed, std::size_t) {
        return stamp(index, seed);
      });
  ASSERT_EQ(results.size(), 13u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].bsld, static_cast<double>(i));
    EXPECT_EQ(results[i].baseline_bsld, static_cast<double>(plan.seeds[i]));
  }
}

TEST(ThreadCollectorTest, SlotAssignmentIsSequenceModuloSlots) {
  // The exact replica mapping the pre-seam trainers used: sequence t
  // reads replica t % slots. Slots address caller-provisioned model
  // copies, so the mapping (not just the result order) is part of the
  // bit-identity contract.
  util::ThreadPool pool(3);
  ThreadCollector collector(pool);
  const CollectionPlan plan = plan_with_seeds(11);
  const std::size_t n_slots = collector.slots(plan.seeds.size());
  std::vector<std::size_t> slot_of(plan.seeds.size());
  collector.collect(plan,
                    [&](std::size_t index, std::uint64_t seed, std::size_t slot) {
                      slot_of[index] = slot;  // distinct index per call: safe
                      return stamp(index, seed);
                    });
  for (std::size_t i = 0; i < slot_of.size(); ++i) {
    EXPECT_EQ(slot_of[i], i % n_slots) << "sequence " << i;
    EXPECT_LT(slot_of[i], n_slots);
  }
}

TEST(ThreadCollectorTest, PoolSizeNeverChangesTheResults) {
  const CollectionPlan plan = plan_with_seeds(17);
  const SequenceFn fn = [](std::size_t index, std::uint64_t seed, std::size_t) {
    return stamp(index, seed * 31 + index);
  };
  util::ThreadPool p1(1);
  util::ThreadPool p4(4);
  util::ThreadPool p9(9);
  const std::vector<SequenceResult> a = ThreadCollector(p1).collect(plan, fn);
  const std::vector<SequenceResult> b = ThreadCollector(p4).collect(plan, fn);
  const std::vector<SequenceResult> c = ThreadCollector(p9).collect(plan, fn);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bsld, b[i].bsld);
    EXPECT_EQ(a[i].baseline_bsld, b[i].baseline_bsld);
    EXPECT_EQ(a[i].bsld, c[i].bsld);
    EXPECT_EQ(a[i].baseline_bsld, c[i].baseline_bsld);
  }
}

TEST(ThreadCollectorTest, EmptyPlanYieldsNoResultsAndNoCalls) {
  util::ThreadPool pool(2);
  ThreadCollector collector(pool);
  bool called = false;
  const std::vector<SequenceResult> results = collector.collect(
      CollectionPlan{}, [&](std::size_t, std::uint64_t, std::size_t) {
        called = true;
        return SequenceResult{};
      });
  EXPECT_TRUE(results.empty());
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace rlbf::rl
