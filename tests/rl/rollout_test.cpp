#include "rl/rollout.h"

#include <gtest/gtest.h>

namespace rlbf::rl {
namespace {

Step make_step(double reward, double value) {
  Step s;
  s.policy_obs = nn::Tensor(2, 3);
  s.mask = {1, 1};
  s.value_obs = nn::Tensor(1, 6);
  s.reward = reward;
  s.value = value;
  return s;
}

Episode make_episode(std::initializer_list<double> rewards) {
  Episode e;
  for (double r : rewards) e.steps.push_back(make_step(r, 0.1));
  return e;
}

TEST(Rollout, EpisodeTotalReward) {
  EXPECT_DOUBLE_EQ(make_episode({0.0, -2.0, 0.5}).total_reward(), -1.5);
  EXPECT_DOUBLE_EQ(Episode{}.total_reward(), 0.0);
}

TEST(Rollout, CountsEpisodesAndSteps) {
  RolloutBuffer buf;
  buf.add_episode(make_episode({0.0, 1.0}));
  buf.add_episode(make_episode({0.5}));
  EXPECT_EQ(buf.episode_count(), 2u);
  EXPECT_EQ(buf.step_count(), 3u);
  EXPECT_FALSE(buf.finished());
}

TEST(Rollout, FinishComputesGaePerEpisode) {
  RolloutBuffer buf;
  buf.add_episode(make_episode({0.0, 1.0}));
  buf.finish(1.0, 1.0, /*normalize_advantages=*/false);
  const auto& steps = buf.episodes()[0].steps;
  // gamma=lambda=1: adv_t = future rewards - value.
  EXPECT_DOUBLE_EQ(steps[0].advantage, 1.0 - 0.1);
  EXPECT_DOUBLE_EQ(steps[1].advantage, 1.0 - 0.1);
  EXPECT_DOUBLE_EQ(steps[0].ret, 1.0);
}

TEST(Rollout, NormalizationSpansEpisodes) {
  RolloutBuffer buf;
  buf.add_episode(make_episode({1.0}));
  buf.add_episode(make_episode({-1.0}));
  buf.finish(1.0, 1.0, /*normalize_advantages=*/true);
  double sum = 0.0;
  for (const auto& e : buf.episodes()) {
    for (const auto& s : e.steps) sum += s.advantage;
  }
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(Rollout, FlatStepsSpanAllEpisodesInOrder) {
  RolloutBuffer buf;
  buf.add_episode(make_episode({1.0, 2.0}));
  buf.add_episode(make_episode({3.0}));
  buf.finish(1.0, 1.0);
  const auto flat = buf.flat_steps();
  ASSERT_EQ(flat.size(), 3u);
  EXPECT_DOUBLE_EQ(flat[0]->reward, 1.0);
  EXPECT_DOUBLE_EQ(flat[2]->reward, 3.0);
}

TEST(Rollout, LifecycleGuards) {
  RolloutBuffer buf;
  EXPECT_THROW(buf.flat_steps(), std::logic_error);
  buf.add_episode(make_episode({1.0}));
  buf.finish(1.0, 1.0);
  EXPECT_THROW(buf.finish(1.0, 1.0), std::logic_error);
  EXPECT_THROW(buf.add_episode(make_episode({1.0})), std::logic_error);
}

TEST(Rollout, ClearResetsEverything) {
  RolloutBuffer buf;
  buf.add_episode(make_episode({1.0}));
  buf.finish(1.0, 1.0);
  buf.clear();
  EXPECT_EQ(buf.episode_count(), 0u);
  EXPECT_FALSE(buf.finished());
  buf.add_episode(make_episode({2.0}));  // usable again
  EXPECT_EQ(buf.step_count(), 1u);
}

TEST(Rollout, MeanEpisodeReward) {
  RolloutBuffer buf;
  EXPECT_DOUBLE_EQ(buf.mean_episode_reward(), 0.0);
  buf.add_episode(make_episode({1.0, 1.0}));
  buf.add_episode(make_episode({-4.0}));
  EXPECT_DOUBLE_EQ(buf.mean_episode_reward(), (2.0 - 4.0) / 2.0);
}

}  // namespace
}  // namespace rlbf::rl
