#include "rl/gae.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rlbf::rl {
namespace {

TEST(Gae, RejectsMismatchedLengths) {
  EXPECT_THROW(compute_gae({1.0}, {1.0, 2.0}, 0.99, 0.95), std::invalid_argument);
}

TEST(Gae, EmptySequences) {
  const GaeResult r = compute_gae({}, {}, 0.99, 0.95);
  EXPECT_TRUE(r.advantages.empty());
  EXPECT_TRUE(r.returns.empty());
}

TEST(Gae, SingleStepIsDelta) {
  // Terminal after one step: adv = r - V(s).
  const GaeResult r = compute_gae({2.0}, {0.5}, 0.99, 0.95);
  EXPECT_DOUBLE_EQ(r.advantages[0], 1.5);
  EXPECT_DOUBLE_EQ(r.returns[0], 2.0);
}

TEST(Gae, LambdaOneGivesMonteCarloAdvantage) {
  // With lambda = 1 and gamma = 1, advantage = sum(future rewards) - V.
  const std::vector<double> rewards = {1.0, 2.0, 3.0};
  const std::vector<double> values = {0.5, 0.25, 0.125};
  const GaeResult r = compute_gae(rewards, values, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.advantages[0], 6.0 - 0.5);
  EXPECT_DOUBLE_EQ(r.advantages[1], 5.0 - 0.25);
  EXPECT_DOUBLE_EQ(r.advantages[2], 3.0 - 0.125);
  EXPECT_DOUBLE_EQ(r.returns[0], 6.0);
}

TEST(Gae, LambdaZeroGivesOneStepTd) {
  const std::vector<double> rewards = {1.0, 1.0};
  const std::vector<double> values = {2.0, 3.0};
  const GaeResult r = compute_gae(rewards, values, 0.9, 0.0);
  EXPECT_DOUBLE_EQ(r.advantages[0], 1.0 + 0.9 * 3.0 - 2.0);
  EXPECT_DOUBLE_EQ(r.advantages[1], 1.0 - 3.0);
}

TEST(Gae, RecurrenceMatchesHandComputation) {
  const double gamma = 0.9, lambda = 0.8;
  const std::vector<double> rewards = {0.0, 0.0, 10.0};
  const std::vector<double> values = {1.0, 2.0, 3.0};
  const double d2 = 10.0 - 3.0;
  const double d1 = 0.0 + gamma * 3.0 - 2.0;
  const double d0 = 0.0 + gamma * 2.0 - 1.0;
  const double a2 = d2;
  const double a1 = d1 + gamma * lambda * a2;
  const double a0 = d0 + gamma * lambda * a1;
  const GaeResult r = compute_gae(rewards, values, gamma, lambda);
  EXPECT_NEAR(r.advantages[0], a0, 1e-12);
  EXPECT_NEAR(r.advantages[1], a1, 1e-12);
  EXPECT_NEAR(r.advantages[2], a2, 1e-12);
  EXPECT_NEAR(r.returns[1], a1 + 2.0, 1e-12);
}

TEST(Gae, TerminalOnlyRewardPropagatesBackUndiscounted) {
  // The paper's setting: zero rewards until the last step, gamma = 1.
  const std::vector<double> rewards = {0.0, 0.0, 0.0, 0.8};
  const std::vector<double> values = {0.0, 0.0, 0.0, 0.0};
  const GaeResult r = compute_gae(rewards, values, 1.0, 1.0);
  for (double a : r.advantages) EXPECT_DOUBLE_EQ(a, 0.8);
}

TEST(DiscountedReturns, KnownValues) {
  const auto r = discounted_returns({1.0, 2.0, 4.0}, 0.5);
  EXPECT_DOUBLE_EQ(r[2], 4.0);
  EXPECT_DOUBLE_EQ(r[1], 2.0 + 0.5 * 4.0);
  EXPECT_DOUBLE_EQ(r[0], 1.0 + 0.5 * 4.0);
}

TEST(Normalize, ZeroMeanUnitStd) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  normalize(xs);
  double mean = 0.0;
  for (double x : xs) mean += x;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  double var = 0.0;
  for (double x : xs) var += x * x;
  EXPECT_NEAR(var / static_cast<double>(xs.size()), 1.0, 1e-6);
}

TEST(Normalize, HandlesDegenerateInputs) {
  std::vector<double> empty;
  normalize(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<double> constant = {5.0, 5.0, 5.0};
  normalize(constant);
  for (double x : constant) EXPECT_NEAR(x, 0.0, 1e-9);
}

}  // namespace
}  // namespace rlbf::rl
