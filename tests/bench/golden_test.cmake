# Golden byte-identity harness for the bench programs.
#
# Runs one bench binary twice at a tiny fixed budget — first at
# --threads=1 against a fresh model store (training every arm), then at
# --threads=2 against the SAME store (every training must be a cache
# hit) — and requires:
#
#   1. both runs' stdout byte-identical (thread-count independence AND
#      cache-hit stats recovered from the store, not live training);
#   2. no store entry rewritten by the second run (the cache-hit proof:
#      *.model mtimes are pinned to an old date between runs);
#   3. stdout and every CSV byte-identical to the checked-in goldens
#      under tests/bench/goldens/.
#
# Invocation (see the rlbf_golden_bench() helper in the top-level
# CMakeLists.txt):
#
#   cmake -DBENCH=<binary> -DNAME=<bench name> -DCSVS=<a.csv,b.csv>
#         -DGOLDEN_DIR=<repo>/tests/bench/goldens -DWORK_DIR=<scratch>
#         [-DUPDATE=1] -P golden_test.cmake
#
# Regenerating goldens after an intentional output change:
#   cmake --build build --target update_goldens          # all benches
#   RLBF_UPDATE_GOLDENS=1 ctest --test-dir build -L golden   # same, via ctest

foreach(var BENCH NAME GOLDEN_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "golden_test.cmake: -D${var}=... is required")
  endif()
endforeach()
if(NOT DEFINED CSVS)
  set(CSVS "")
endif()
string(REPLACE "," ";" CSV_LIST "${CSVS}")
if(NOT DEFINED UPDATE)
  set(UPDATE 0)
endif()
if(DEFINED ENV{RLBF_UPDATE_GOLDENS} AND NOT "$ENV{RLBF_UPDATE_GOLDENS}" STREQUAL ""
   AND NOT "$ENV{RLBF_UPDATE_GOLDENS}" STREQUAL "0")
  set(UPDATE 1)
endif()

# The golden protocol: one shared tiny budget, fixed seed. Small enough
# that the full suite trains in CI without the paper budgets, large
# enough that every bench exercises real training, storage, and
# evaluation. Changing any value is a golden-format change — regenerate.
set(GOLDEN_ARGS
    --trace-jobs=800 --epochs=2 --trajectories=3 --traj-jobs=64
    --samples=2 --sample-jobs=128 --seed=1)

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_bench threads outfile)
  execute_process(
    COMMAND "${BENCH}" ${GOLDEN_ARGS} --threads=${threads}
    WORKING_DIRECTORY "${WORK_DIR}"
    OUTPUT_FILE "${outfile}"
    ERROR_FILE "${outfile}.stderr"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    file(READ "${outfile}.stderr" err)
    message(FATAL_ERROR
            "golden ${NAME}: '${BENCH}' (threads=${threads}) exited ${rc}\n${err}")
  endif()
endfunction()

function(require_identical a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    # Print this host's libm sentinel values with the failure: goldens
    # are generated on one platform, and a libm whose pow/exp drift by
    # an ulp can change a 2-4 decimal rendering. An operator comparing
    # fingerprints across the two hosts sees immediately whether this is
    # real output drift or per-platform golden pinning territory.
    execute_process(COMMAND "${BENCH}" --libm-fingerprint
                    OUTPUT_VARIABLE libm_report ERROR_QUIET
                    RESULT_VARIABLE libm_rc)
    if(NOT libm_rc EQUAL 0)
      set(libm_report "libm fingerprint unavailable (bench exited ${libm_rc})\n")
    endif()
    message(FATAL_ERROR
            "golden ${NAME}: ${what} differs:\n  ${a}\n  ${b}\n"
            "${libm_report}"
            "If the fingerprint above differs from the golden-generating "
            "host's, this is per-platform libm drift, not a code change.\n"
            "If the change is intentional, regenerate the goldens: "
            "`cmake --build <build> --target update_goldens` or "
            "`RLBF_UPDATE_GOLDENS=1 ctest -L golden`, then commit them.")
  endif()
endfunction()

# Run 1: fresh store at --threads=1 — trains every arm the bench needs.
run_bench(1 "${WORK_DIR}/run1.out")

# Pin every committed model to an old mtime so a retrain (rewrite) by the
# second run is detectable. `touch` is POSIX; skip the pin (not the
# byte-identity checks) where it is unavailable.
file(GLOB models "${WORK_DIR}/bench_models/*.model")
set(mtime_pinned 0)
if(models)
  execute_process(COMMAND touch -t 200001010000 ${models} RESULT_VARIABLE rc)
  if(rc EQUAL 0)
    set(mtime_pinned 1)
  endif()
endif()

# Run 2: same store at --threads=2 — cache hits only, identical bytes.
run_bench(2 "${WORK_DIR}/run2.out")
require_identical("${WORK_DIR}/run1.out" "${WORK_DIR}/run2.out"
                  "stdout across thread counts (cache-hit rerun)")
# A retrain can also surface as a NEW entry (e.g. a thread count leaking
# into the fingerprint forks the key), which the mtime pin on run-1's
# files cannot see — so the entry set must be unchanged too.
file(GLOB models_after "${WORK_DIR}/bench_models/*.model")
list(SORT models)
list(SORT models_after)
if(NOT "${models}" STREQUAL "${models_after}")
  message(FATAL_ERROR
          "golden ${NAME}: the second run changed the store entry set — "
          "expected cache hits only.\n  before: ${models}\n  after: ${models_after}")
endif()
if(mtime_pinned)
  foreach(model ${models})
    file(TIMESTAMP "${model}" stamp "%Y")
    if(NOT stamp STREQUAL "2000")
      message(FATAL_ERROR
              "golden ${NAME}: ${model} was rewritten by the second run — "
              "expected a store cache hit, got a retrain")
    endif()
  endforeach()
endif()

if(UPDATE)
  file(MAKE_DIRECTORY "${GOLDEN_DIR}")
  configure_file("${WORK_DIR}/run1.out" "${GOLDEN_DIR}/${NAME}.out" COPYONLY)
  foreach(csv ${CSV_LIST})
    configure_file("${WORK_DIR}/${csv}" "${GOLDEN_DIR}/${csv}" COPYONLY)
  endforeach()
  message(STATUS "golden ${NAME}: goldens regenerated under ${GOLDEN_DIR}")
else()
  require_identical("${WORK_DIR}/run1.out" "${GOLDEN_DIR}/${NAME}.out"
                    "stdout vs checked-in golden")
  foreach(csv ${CSV_LIST})
    require_identical("${WORK_DIR}/${csv}" "${GOLDEN_DIR}/${csv}"
                      "${csv} vs checked-in golden")
  endforeach()
endif()
