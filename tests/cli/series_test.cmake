# The time-series telemetry acceptance proof, end to end through the
# rlbf_run binary (label: smoke):
#
#   1. `--series_out` changes ZERO bytes of a run's stdout or result
#      files — the determinism contract of the obs flags, extended to
#      the series recorder.
#   2. The same holds for `train` (store bytes included: the curves in
#      store meta are written whether or not a series file is) and for
#      an orchestrated sweep (worker sidecar series files + merge).
#   3. Two independent `train --series_out` runs produce series files
#      whose `curves` rendering is byte-identical — the recorded curve
#      VALUES are deterministic even though wall-clock microseconds in
#      the raw files are not.
#   4. `rlbf_run curves` itself is byte-deterministic across reruns, in
#      every format, on raw series files and on store-meta curves.
#   5. The merged fleet series carries the supervisor's per-job series,
#      and the strict reader rejects garbage with a named error.
#
#   cmake -DRLBF_RUN=<binary> -DWORK_DIR=<scratch> -P series_test.cmake

foreach(var RLBF_RUN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "series_test.cmake: -D${var}=... is required")
  endif()
endforeach()
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(failures 0)

# run_case(<case> <expected rc> <stdout var> ...argv): run rlbf_run,
# require the exit code, capture stdout.
function(run_case case expect_rc out_var)
  execute_process(
    COMMAND "${RLBF_RUN}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL ${expect_rc})
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    message(WARNING "${case}: expected exit ${expect_rc}, got '${rc}'\n${out}\n${err}")
  else()
    message(STATUS "${case}: ok (exit ${rc})")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# expect_same_stdout(<case> <text a> <text b>): byte-equal stdout after
# the caller already normalized away intended differences.
function(expect_same_stdout case a b)
  if(NOT a STREQUAL b)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    message(WARNING "${case}: stdout differs:\n--- first\n${a}\n--- second\n${b}")
  else()
    message(STATUS "${case}: stdout byte-identical")
  endif()
endfunction()

# expect_same_tree(<case> <dir a> <dir b>): same file set, every file
# byte-identical.
function(expect_same_tree case a b)
  file(GLOB_RECURSE a_files RELATIVE "${a}" "${a}/*")
  file(GLOB_RECURSE b_files RELATIVE "${b}" "${b}/*")
  list(SORT a_files)
  list(SORT b_files)
  if(NOT "${a_files}" STREQUAL "${b_files}")
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    message(WARNING "${case}: file sets differ: [${a_files}] vs [${b_files}]")
    return()
  endif()
  set(ok 1)
  foreach(f ${a_files})
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files "${a}/${f}" "${b}/${f}"
      RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
      set(ok 0)
      message(WARNING "${case}: ${f} differs")
    endif()
  endforeach()
  if(NOT ok)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
  else()
    message(STATUS "${case}: result files byte-identical")
  endif()
endfunction()

# expect_match(<case> <text> <needle regex>)
function(expect_match case text needle)
  if(NOT text MATCHES "${needle}")
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    message(WARNING "${case}: missing '${needle}' in:\n${text}")
  else()
    message(STATUS "${case}: found '${needle}'")
  endif()
endfunction()

# ---- 1. `run --series_out` changes zero output bytes ------------------
set(run_args run --scenario=sdsc-easy --jobs=300 --seed=7 --threads=2
    --format=both)
run_case("run with series" 0 run_a
         ${run_args} --out_dir=run_a --series_out=run.series.jsonl)
run_case("run without series" 0 run_b ${run_args} --out_dir=run_b)
string(REPLACE "run_a/" "OUT/" run_a_norm "${run_a}")
string(REPLACE "run_b/" "OUT/" run_b_norm "${run_b}")
expect_same_stdout("run: --series_out on/off" "${run_a_norm}" "${run_b_norm}")
expect_same_tree("run: --series_out on/off"
                 "${WORK_DIR}/run_a" "${WORK_DIR}/run_b")
# Without metrics enabled the sampler latches nothing, but the file
# still opens with the meta header — never empty, trivially mergeable.
if(NOT EXISTS "${WORK_DIR}/run.series.jsonl")
  math(EXPR failures "${failures} + 1")
  message(WARNING "run did not write --series_out")
else()
  file(STRINGS "${WORK_DIR}/run.series.jsonl" series_head LIMIT_COUNT 1)
  expect_match("run series meta header" "${series_head}" "\"meta\": \"series\"")
endif()

# ---- 2. `train --series_out` changes zero stdout/store bytes ----------
set(budget --epochs=2 --trajectories=2 --traj_jobs=64 --jobs=800)
run_case("train with series" 0 train_on
         train --spec=sdsc-tiny --store=store_a ${budget} --quiet
         --series_out=train.series.jsonl)
run_case("train without series" 0 train_off
         train --spec=sdsc-tiny --store=store_b ${budget} --quiet)
string(REPLACE "store_a" "STORE" train_on_norm "${train_on}")
string(REPLACE "store_b" "STORE" train_off_norm "${train_off}")
expect_same_stdout("train: --series_out on/off"
                   "${train_on_norm}" "${train_off_norm}")
expect_same_tree("train: --series_out on/off"
                 "${WORK_DIR}/store_a" "${WORK_DIR}/store_b")
file(READ "${WORK_DIR}/train.series.jsonl" train_series)
expect_match("train series records the loss curve" "${train_series}"
             "\"series\": \"train\\.")

# ---- 3. curve values are deterministic across independent runs --------
run_case("train again with series" 0 train_again
         train --spec=sdsc-tiny --store=store_again ${budget} --quiet
         --series_out=train2.series.jsonl)
run_case("curves (first run)" 0 curves_a curves train.series.jsonl)
run_case("curves (rerun, same file)" 0 curves_b curves train.series.jsonl)
expect_same_stdout("curves rerun" "${curves_a}" "${curves_b}")
run_case("curves (independent train)" 0 curves_c curves train2.series.jsonl)
# wall_us differs between the two raw files; the rendered curves do not.
expect_same_stdout("curves across independent trains"
                   "${curves_a}" "${curves_c}")
expect_match("curves table header" "${curves_a}" "step")
expect_match("curves footer counts the series" "${curves_a}" "# [1-9][0-9]* series")

# ---- 4. curves formats + store-meta curves ----------------------------
run_case("curves CSV" 0 curves_csv curves train.series.jsonl --format=csv)
expect_match("curves CSV names the series" "${curves_csv}" "train\\.")
run_case("curves JSON" 0 curves_json curves train.series.jsonl --format=json)
expect_match("curves JSON shape" "${curves_json}" "\"series\"")
run_case("curves --out writes a file" 0 curves_out_stdout
         curves train.series.jsonl --format=csv --out=curves.csv)
if(NOT EXISTS "${WORK_DIR}/curves.csv")
  math(EXPR failures "${failures} + 1")
  message(WARNING "curves did not write --out")
endif()
run_case("curves compare self" 0 compare_out
         curves --compare=train.series.jsonl,train2.series.jsonl)
expect_match("compare footer" "${compare_out}" "# curves compare")
run_case("store-meta curves (first run)" 0 store_curves_a
         curves --store=store_a --spec=sdsc-tiny)
run_case("store-meta curves (rerun)" 0 store_curves_b
         curves --store=store_a --spec=sdsc-tiny)
expect_same_stdout("store-meta curves rerun"
                   "${store_curves_a}" "${store_curves_b}")
expect_match("store-meta eval curve" "${store_curves_a}" "eval_curve")

# ---- 5. orchestrated sweep: sidecar series merge, zero result bytes ---
set(orch_args orchestrate --scenario=sdsc-easy --jobs=300 --seed=7
    --threads=2 --sweep=load=0.8,1.0 --format=both --workers=2 --quiet)
run_case("orchestrate with series" 0 orch_a
         ${orch_args} --out_dir=orch_a --series_out=fleet.series.jsonl)
run_case("orchestrate without series" 0 orch_b
         ${orch_args} --out_dir=orch_b)
string(REPLACE "orch_a/" "OUT/" orch_a_norm "${orch_a}")
string(REPLACE "orch_b/" "OUT/" orch_b_norm "${orch_b}")
expect_same_stdout("orchestrate: --series_out on/off"
                   "${orch_a_norm}" "${orch_b_norm}")
expect_same_tree("orchestrate: --series_out on/off"
                 "${WORK_DIR}/orch_a" "${WORK_DIR}/orch_b")
file(READ "${WORK_DIR}/fleet.series.jsonl" fleet_series)
expect_match("fleet series carries job durations" "${fleet_series}"
             "dist\\.job_seconds")
expect_match("fleet series tags the supervisor" "${fleet_series}"
             "\"source\": \"supervisor\"")
run_case("curves on the fleet series" 0 fleet_curves curves fleet.series.jsonl)
expect_match("fleet curves show tagged labels" "${fleet_curves}"
             "supervisor/dist\\.job_seconds")

# ---- 6. the strict reader names garbage ------------------------------
file(WRITE "${WORK_DIR}/garbage.jsonl" "this is not a series file\n")
run_case("curves rejects garbage" 1 garbage_out curves garbage.jsonl)

if(failures GREATER 0)
  message(FATAL_ERROR "series smoke: ${failures} case(s) failed")
endif()
message(STATUS "series smoke: all checks passed")
