# Schema sanity for `rlbf_run bench`: run a CI-sized bench, then parse
# the emitted JSON report, the metrics registry dump, and the Chrome
# trace with CMake's own JSON parser (string(JSON), CMake >= 3.19) and
# check every field the BENCH_PR<n>.json perf trajectory relies on.
#
#   cmake -DRLBF_RUN=<binary> -DWORK_DIR=<scratch> -P bench_json_test.cmake

foreach(var RLBF_RUN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_json_test.cmake: -D${var}=... is required")
  endif()
endforeach()
if(CMAKE_VERSION VERSION_LESS 3.19)
  message(STATUS "bench_json_test: CMake ${CMAKE_VERSION} lacks string(JSON); "
                 "skipping schema validation")
  return()
endif()
cmake_policy(SET CMP0057 NEW)  # IN_LIST in if(); script mode sets no policies
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${RLBF_RUN}" bench --quick --jobs=500 --dist_jobs=100
          --out=bench.json --metrics_out=metrics.json --trace_out=trace.json
  WORKING_DIRECTORY "${WORK_DIR}"
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rlbf_run bench failed (exit ${rc}):\n${err}")
endif()

set(failures 0)

# require(<json var> <description> [MEMBER <path...>] [GE <value> <path...>])
# Small assertion helpers over string(JSON); any parse error fails the
# case with the path named.
function(require_member doc_var desc)
  string(JSON value ERROR_VARIABLE json_err GET "${${doc_var}}" ${ARGN})
  if(json_err)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    message(WARNING "${desc}: missing ${ARGN} (${json_err})")
  else()
    string(SUBSTRING "${value}" 0 40 value)  # objects print as one line
    string(REPLACE "\n" "" value "${value}")
    message(STATUS "${desc}: ${ARGN} = ${value}")
  endif()
endfunction()

function(require_positive doc_var desc)
  string(JSON value ERROR_VARIABLE json_err GET "${${doc_var}}" ${ARGN})
  if(json_err OR NOT value GREATER 0)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    message(WARNING "${desc}: ${ARGN} should be > 0, got '${value}' ${json_err}")
  else()
    message(STATUS "${desc}: ${ARGN} = ${value}")
  endif()
endfunction()

# ---- the bench report: the pinned perf-trajectory fields.
file(READ "${WORK_DIR}/bench.json" bench)
# Schema v3: version stamp + provenance block (tag, toolchain/platform,
# libm fingerprint id) so two checked-in reports are comparable, plus
# the deterministic work-counter section.
string(JSON schema_version ERROR_VARIABLE json_err GET "${bench}" schema_version)
if(json_err OR NOT schema_version EQUAL 3)
  math(EXPR failures "${failures} + 1")
  message(WARNING "bench report: schema_version should be 3, got "
                  "'${schema_version}' ${json_err}")
else()
  message(STATUS "bench report: schema_version = 3")
endif()
require_member(bench "bench report" source tag)
require_member(bench "bench report" source platform)
require_member(bench "bench report" source libm)
require_member(bench "bench report" config scenario)
require_member(bench "bench report" config seed)
require_positive(bench "bench report" sim runs)
require_positive(bench "bench report" sim wall_seconds_total)
require_positive(bench "bench report" sim wall_seconds_min)
require_positive(bench "bench report" sim events_processed)
require_positive(bench "bench report" sim events_per_second)
require_positive(bench "bench report" trace_cache hits)
require_positive(bench "bench report" trace_cache misses)
require_member(bench "bench report" trace_cache evictions)
require_positive(bench "bench report" train epochs_run)
require_positive(bench "bench report" train wall_seconds)
require_positive(bench "bench report" train epoch_seconds_mean)
require_positive(bench "bench report" sweep instances)
require_positive(bench "bench report" dist jobs)
require_positive(bench "bench report" dist job_seconds_total)
require_positive(bench "bench report" dist worker_utilization)
# Schema v3 counters: the train phase exercises the NN hot paths (batched
# forwards included) and the sim phase maintains its queue incrementally.
# sim.schedule_recomputations counts only ACTUAL full sorts — with the
# bench's time-invariant priority policies (FCFS/SJF) it is rightly 0,
# so it is member-checked, not positivity-checked.
require_positive(bench "bench report" counters nn.forward_calls)
require_positive(bench "bench report" counters nn.forward_value_calls)
require_positive(bench "bench report" counters nn.batched_forward_calls)
require_positive(bench "bench report" counters nn.batched_forward_rows)
require_positive(bench "bench report" counters nn.backward_calls)
require_member(bench "bench report" counters sim.schedule_recomputations)
require_positive(bench "bench report" counters sim.queue_incremental_inserts)
require_member(bench "bench report" counters sim.backfill_decisions)

# ---- the metrics registry dump: the three sections, and a counter from
# every instrumented layer.
file(READ "${WORK_DIR}/metrics.json" metrics)
require_member(metrics "metrics dump" counters)
require_member(metrics "metrics dump" gauges)
require_member(metrics "metrics dump" histograms)
require_positive(metrics "metrics dump" counters sim.events_processed)
require_positive(metrics "metrics dump" counters rl.epochs)
require_positive(metrics "metrics dump" counters sweep.instances)
require_positive(metrics "metrics dump" counters dist.jobs)
require_positive(metrics "metrics dump" counters exp.trace_cache.hits)
require_positive(metrics "metrics dump" histograms sim.simulate_seconds count)
require_positive(metrics "metrics dump" histograms rl.epoch_seconds count)

# ---- the Chrome trace: valid JSON, spans from all four layers, and
# the wall-clock anchor obs::merge uses to align processes.
file(READ "${WORK_DIR}/trace.json" trace)
require_positive(trace "trace" epochAnchorUs)
string(JSON n_events ERROR_VARIABLE json_err LENGTH "${trace}" traceEvents)
if(json_err OR NOT n_events GREATER 0)
  math(EXPR failures "${failures} + 1")
  message(WARNING "trace: no traceEvents array (${json_err})")
else()
  message(STATUS "trace: ${n_events} event(s)")
  set(seen_cats "")
  math(EXPR last "${n_events} - 1")
  foreach(i RANGE ${last})
    string(JSON cat GET "${trace}" traceEvents ${i} cat)
    string(JSON ph GET "${trace}" traceEvents ${i} ph)
    if(NOT ph STREQUAL "X")
      math(EXPR failures "${failures} + 1")
      message(WARNING "trace: event ${i} is not a complete event (ph=${ph})")
    endif()
    list(APPEND seen_cats "${cat}")
  endforeach()
  foreach(cat sim train sweep dist)
    if(NOT "${cat}" IN_LIST seen_cats)
      math(EXPR failures "${failures} + 1")
      message(WARNING "trace: no spans from the '${cat}' layer")
    else()
      message(STATUS "trace: '${cat}' layer spans present")
    endif()
  endforeach()
endif()

if(failures GREATER 0)
  message(FATAL_ERROR "bench JSON schema: ${failures} check(s) failed")
endif()
message(STATUS "bench JSON schema: all checks passed")
