# The distributed-execution acceptance proof, driven end to end through
# the rlbf_run binary (label: smoke):
#
#   1. A parameter sweep run as --shard=0/3, 1/3, 2/3 and merged must be
#      byte-identical — summary CSV, summary JSON, and every per-job
#      CSV — to the unsharded run at the same seed.
#   2. An agent trained on "machine A" and shipped through
#      models --export_bundle / --import_bundle must resolve in the
#      fresh store and reproduce its eval metrics exactly, including
#      after an LRU eviction pass (--max_store_bytes) that must respect
#      referenced entries.
#
#   cmake -DRLBF_RUN=<binary> -DWORK_DIR=<scratch> -P shard_merge_test.cmake

foreach(var RLBF_RUN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "shard_merge_test.cmake: -D${var}=... is required")
  endif()
endforeach()
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(failures 0)

function(run_or_fail case)
  execute_process(
    COMMAND "${RLBF_RUN}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    message(WARNING "${case}: expected exit 0, got '${rc}'\n${out}\n${err}")
  else()
    message(STATUS "${case}: ok")
  endif()
  set(last_stdout "${out}" PARENT_SCOPE)
endfunction()

# compare_trees(<case> <dir A> <dir B>): every file in A must exist in B
# with identical bytes, and vice versa.
function(compare_trees case a b)
  file(GLOB_RECURSE a_files RELATIVE "${a}" "${a}/*")
  file(GLOB_RECURSE b_files RELATIVE "${b}" "${b}/*")
  set(ok 1)
  if(NOT "${a_files}" STREQUAL "${b_files}")
    set(ok 0)
    message(WARNING "${case}: file sets differ: [${a_files}] vs [${b_files}]")
  else()
    foreach(f ${a_files})
      execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files "${a}/${f}" "${b}/${f}"
        RESULT_VARIABLE same)
      if(NOT same EQUAL 0)
        set(ok 0)
        message(WARNING "${case}: ${f} differs between ${a} and ${b}")
      endif()
    endforeach()
  endif()
  if(NOT ok)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
  else()
    message(STATUS "${case}: byte-identical")
  endif()
endfunction()

# ---- 1. shard-union byte identity -----------------------------------
# (the \; keeps the two-axis grid one argument in CMake's list model)
set(sweep_grid "load=0.8,1.0\;policy=FCFS,SJF")
run_or_fail("unsharded sweep" run --scenario=sdsc-easy --jobs=300 --seed=7
            --threads=2 "--sweep=${sweep_grid}" --format=both
            --out_dir=unsharded)
foreach(i RANGE 2)
  run_or_fail("shard ${i}/3" sweep --scenario=sdsc-easy --jobs=300 --seed=7
              --threads=2 "--sweep=${sweep_grid}" --format=both --shard=${i}/3
              --out_dir=shard${i})
endforeach()
run_or_fail("merge shards" merge --inputs=shard0,shard1,shard2
            --out_dir=merged)
compare_trees("merged 3-shard sweep vs unsharded"
              "${WORK_DIR}/unsharded" "${WORK_DIR}/merged")

# ---- 2. store bundle round trip + LRU eviction ----------------------
# Train on "machine A", evaluate there, pack the store into a bundle.
run_or_fail("train on A" train --spec=sdsc-tiny --store=store_a --quiet)
run_or_fail("evaluate on A" run --scenario=sdsc-tiny-rlbf --store=store_a
            --seed=1 --out_dir=run_a)
run_or_fail("export bundle" models --store=store_a --export_bundle=bundle)
# Import into an empty "machine B" store; the import re-verifies every
# fingerprint, and the entry must come back out as a resolvable agent.
run_or_fail("import bundle on B" models --store=store_b
            --import_bundle=bundle)
if(NOT last_stdout MATCHES "# imported 1 entry")
  math(EXPR failures "${failures} + 1")
  message(WARNING "import did not report 1 imported entry:\n${last_stdout}")
endif()
# An aggressive LRU pass must spare the referenced sdsc-tiny entry (it
# backs the sdsc-tiny-rlbf scenario) even though the store exceeds 1 byte.
run_or_fail("LRU pass on B" models --store=store_b --max_store_bytes=1)
if(NOT last_stdout MATCHES "0 evicted")
  math(EXPR failures "${failures} + 1")
  message(WARNING "LRU pass evicted a referenced entry:\n${last_stdout}")
endif()
run_or_fail("evaluate on B" run --scenario=sdsc-tiny-rlbf --store=store_b
            --seed=1 --out_dir=run_b)
compare_trees("trained-on-A vs bundle-imported-on-B eval"
              "${WORK_DIR}/run_a" "${WORK_DIR}/run_b")

if(failures GREATER 0)
  message(FATAL_ERROR "shard/merge smoke: ${failures} case(s) failed")
endif()
