# CLI behavior tests for the rlbf_run driver: malformed invocations must
# produce a NONZERO exit code and a NAMED error on stderr — never a
# crash, never a silent success. Driven by ctest (label: smoke):
#
#   cmake -DRLBF_RUN=<binary> -DWORK_DIR=<scratch> -P rlbf_run_cli_test.cmake

foreach(var RLBF_RUN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "rlbf_run_cli_test.cmake: -D${var}=... is required")
  endif()
endforeach()
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(failures 0)

# expect_failure(<case name> <stderr must match this regex> <args...>)
#
# Exit codes 1 (runtime error) and 2 (usage error) are the contract;
# anything else — in particular the 128+signal codes of a crash — fails.
function(expect_failure case pattern)
  execute_process(
    COMMAND "${RLBF_RUN}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  set(ok 1)
  if(NOT rc EQUAL 1 AND NOT rc EQUAL 2)
    set(ok 0)
    message(WARNING "${case}: expected exit 1 or 2, got '${rc}' "
                    "(a signal name or 128+ code means a crash)")
  endif()
  if(NOT "${err}" MATCHES "${pattern}")
    set(ok 0)
    message(WARNING "${case}: stderr does not name the error "
                    "(wanted regex '${pattern}', got: ${err})")
  endif()
  if(NOT ok)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
  else()
    message(STATUS "${case}: ok (exit ${rc})")
  endif()
endfunction()

# expect_success(<case name> <args...>)
function(expect_success case)
  execute_process(
    COMMAND "${RLBF_RUN}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    message(WARNING "${case}: expected exit 0, got '${rc}'\n${err}")
  else()
    message(STATUS "${case}: ok")
  endif()
endfunction()

# Unknown subcommand.
expect_failure("unknown command" "unknown command 'frobnicate'" frobnicate)
# Unknown scenario name, as a run error naming the catalog.
expect_failure("unknown scenario" "unknown scenario 'no-such-scenario'"
               run --scenario=no-such-scenario)
# Unknown scenario inside a comma list.
expect_failure("unknown scenario in list" "unknown scenario 'nope'"
               run --scenario=sdsc-easy,nope)
# Empty name inside a comma list.
expect_failure("empty scenario name" "empty name" run --scenario=sdsc-easy,)
# Unknown flag (ArgParser usage error).
expect_failure("unknown flag" "--bogus" run --bogus=1)
# Missing required --scenario.
expect_failure("missing scenario" "--scenario" run)
# Bad --format value.
expect_failure("bad format" "--format must be" run --scenario=sdsc-easy --format=yaml)
# Unknown training spec.
expect_failure("unknown training spec" "unknown training spec 'no-such-spec'"
               train --spec=no-such-spec)
# Unresolvable agent reference (names the store it searched).
expect_failure("unknown agent" "cannot resolve agent reference 'no-such-agent'"
               run --scenario=sdsc-easy --jobs=200 --agent=no-such-agent
               --store=cli_models)
# Unknown sweep parameter.
expect_failure("unknown sweep param" "unknown parameter 'warp'"
               run --scenario=sdsc-easy --sweep=warp=9)
# Malformed sweep axis (missing '=').
expect_failure("malformed sweep axis" "missing '='"
               run --scenario=sdsc-easy --sweep=load)
# Bad numeric flag value.
expect_failure("bad numeric flag" "--seed" run --scenario=sdsc-easy --seed=twelve)

# Malformed --shard specs: junk, missing '/', index out of range, zero
# count — each fails nonzero with a named shard error before any work runs.
expect_failure("shard junk" "malformed shard spec 'x/y'"
               run --scenario=sdsc-easy --shard=x/y)
expect_failure("shard missing slash" "malformed shard spec '2'"
               run --scenario=sdsc-easy --shard=2)
expect_failure("shard index out of range" "shard index 3 out of range"
               run --scenario=sdsc-easy --shard=3/2)
expect_failure("shard zero count" "shard count must be >= 1"
               run --scenario=sdsc-easy --shard=0/0)
expect_failure("shard negative" "malformed shard spec '-1/3'"
               run --scenario=sdsc-easy --shard=-1/3)
# merge without usable inputs: missing flags, then an empty directory.
expect_failure("merge missing flags" "--inputs" merge)
file(MAKE_DIRECTORY "${WORK_DIR}/empty_shards")
expect_failure("merge empty dir" "no shard summaries found"
               merge --inputs=empty_shards --out_dir=merged_nothing)

# --shard=0/1 is a valid single-shard run whose tagged output merges into
# a file identical to the unsharded run's; shard_count > instance count
# yields an empty shard that merge still accepts.
expect_success("single-shard run" run --scenario=sdsc-easy --jobs=200 --seed=5
               --shard=0/1 --out_dir=one_shard)
expect_success("merge single shard"
               merge --inputs=one_shard --out_dir=one_merged)
expect_success("unsharded reference" run --scenario=sdsc-easy --jobs=200 --seed=5
               --out_dir=one_reference)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/one_merged/summary.csv"
          "${WORK_DIR}/one_reference/summary.csv"
  RESULT_VARIABLE one_shard_same)
if(NOT one_shard_same EQUAL 0)
  math(EXPR failures "${failures} + 1")
  message(WARNING "merged 0/1 shard differs from the unsharded summary")
else()
  message(STATUS "merged 0/1 shard == unsharded summary: ok")
endif()
# 2 instances over 3 shards: shard 2 is empty; the merged union of all
# three must still byte-match the unsharded sweep.
expect_success("unsharded small sweep" run --scenario=sdsc-easy --jobs=200
               --seed=5 --sweep=policy=FCFS,SJF --out_dir=small_reference)
foreach(i RANGE 2)
  expect_success("shard ${i}/3 of small sweep" run --scenario=sdsc-easy
                 --jobs=200 --seed=5 --sweep=policy=FCFS,SJF --shard=${i}/3
                 --out_dir=small_shard${i})
endforeach()
expect_success("merge with empty shard"
               merge --inputs=small_shard0,small_shard1,small_shard2
               --out_dir=small_merged)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/small_merged/summary.csv"
          "${WORK_DIR}/small_reference/summary.csv"
  RESULT_VARIABLE small_same)
if(NOT small_same EQUAL 0)
  math(EXPR failures "${failures} + 1")
  message(WARNING "merged 3-shard sweep (one empty shard) differs from the "
                  "unsharded summary")
else()
  message(STATUS "merged 3-shard sweep (one empty shard) == unsharded: ok")
endif()
# An incomplete shard set must fail with the missing shard named.
expect_failure("merge incomplete shard set" "missing shard 2/3"
               merge --inputs=small_shard0,small_shard1 --out_dir=small_bad)

# Orchestration failure paths: malformed hosts/templates and a worker
# that always fails must exit nonzero with named errors — the failing
# worker's stderr tail must appear in the orchestrator's failure log.
expect_failure("orchestrate missing scenario" "--scenario"
               orchestrate --out_dir=o_none)
expect_failure("orchestrate template without hosts"
               "--command_template needs --hosts"
               orchestrate --scenario=sdsc-easy --out_dir=o_none
               --command_template=any)
expect_failure("orchestrate hosts without template"
               "--hosts needs --command_template"
               orchestrate --scenario=sdsc-easy --out_dir=o_none --hosts=a,b)
expect_failure("orchestrate empty host element" "empty host name"
               orchestrate --scenario=sdsc-easy --jobs=200 --out_dir=o_none
               --hosts=a,,b "--command_template=ssh {host} {command}")
expect_failure("orchestrate template missing {command}"
               "no .command. \\(or .qcommand.\\) placeholder"
               orchestrate --scenario=sdsc-easy --jobs=200 --out_dir=o_none
               --hosts=a "--command_template=ssh {host}")
expect_failure("orchestrate unknown placeholder"
               "unknown placeholder '.hots.'"
               orchestrate --scenario=sdsc-easy --jobs=200 --out_dir=o_none
               --hosts=a "--command_template=ssh {hots} {command}")
expect_failure("orchestrate malformed inject_fail"
               "malformed --inject_fail entry"
               orchestrate --scenario=sdsc-easy --jobs=200 --out_dir=o_none
               --workers=2 --inject_fail=x:y)
expect_failure("orchestrate zero workers" "--workers must be >= 1"
               orchestrate --scenario=sdsc-easy --out_dir=o_none --workers=0)
file(WRITE "${WORK_DIR}/fake_worker.sh"
     "#!/bin/sh\necho 'fake worker: cannot reach cluster' >&2\nexit 3\n")
# chmod via execute_process: file(CHMOD) needs CMake >= 3.19.
execute_process(COMMAND chmod +x "${WORK_DIR}/fake_worker.sh")
expect_failure("orchestrate failing fake worker"
               "fake worker: cannot reach cluster"
               orchestrate --scenario=sdsc-easy --jobs=200 --workers=2
               --retries=1 --worker_binary=${WORK_DIR}/fake_worker.sh
               --out_dir=o_fail --quiet)
expect_failure("orchestrate failing worker names exit code" "exit 3"
               orchestrate --scenario=sdsc-easy --jobs=200 --workers=2
               --retries=0 --worker_binary=${WORK_DIR}/fake_worker.sh
               --out_dir=o_fail --quiet)

# train sharding and fan-out argument validation.
expect_failure("train workers+shard exclusive" "exclusive"
               train --spec=sdsc-tiny --workers=2 --shard=0/2)
expect_failure("train workers+export_bundle exclusive" "exclusive"
               train --spec=sdsc-tiny --workers=2 --export_bundle=eb)
# A warm-start source missing from the fanned-out grid cannot resolve in
# a private worker store — named up front, before any worker launches.
expect_failure("train workers orphan warm start" "warm-starts from"
               train --spec=abl-transfer-finetune --workers=2)
expect_failure("train malformed shard" "malformed shard spec 'x'"
               train --spec=sdsc-tiny --shard=x)
expect_failure("train shard out of range" "shard index 5 out of range"
               train --spec=sdsc-tiny --shard=5/2)

# profile and the bench gate: every bad input is a named error with the
# documented exit code (1 = error, 2 = usage; the gate's exit 3 is
# exercised in obs_fleet_test.cmake).
expect_failure("profile without a trace" "pass a trace file" profile)
expect_failure("profile missing trace" "cannot open sidecar file"
               profile no_such.trace.json)
file(WRITE "${WORK_DIR}/broken.trace.json" "{\"traceEvents\": [")
expect_failure("profile malformed trace" "broken.trace.json"
               profile broken.trace.json)
expect_failure("bench candidate without compare" "--candidate needs --compare"
               bench --candidate=whatever.json)
expect_failure("bench compare missing baseline" "cannot open bench report"
               bench --compare=no_such_base.json --candidate=no_such_base.json)
expect_failure("bench non-positive threshold" "--threshold must be > 0"
               bench --compare=a.json --candidate=b.json --threshold=0)

# Multi-bundle import: a directory with no bundle anywhere is a named
# error, not a silent zero-import.
file(MAKE_DIRECTORY "${WORK_DIR}/not_a_bundle")
expect_failure("import non-bundle dir" "holds no bundle"
               models --store=mb_store --import_bundle=not_a_bundle)
expect_failure("import missing dir" "is not a directory"
               models --store=mb_store --import_bundle=no_such_dir)

# Consolidated help: overview, per-command usage, --help alias, and an
# unknown command both in help and at the top level.
expect_success("help overview" help)
expect_success("help run" help run)
expect_success("help orchestrate" help orchestrate)
expect_success("top-level --help" --help)
expect_failure("help unknown command" "unknown command 'frob'" help frob)
expect_failure("unknown command lists help" "help"
               definitely-not-a-command)

# Sanity: the catalog listings still succeed from this harness.
expect_success("run --list" run --list)
expect_success("train --list" train --list)
expect_success("legacy bare --list" --list)

# Observability is deterministic-output-safe: the SAME run with metrics,
# tracing, and elapsed-time logging enabled must leave stdout and every
# result file byte-identical — instrumentation writes only to its own
# sinks (the named files, and status lines on stderr).
# Identical command lines (same --out_dir) from two working directories,
# so even the "# results written to ..." stdout line must match.
file(MAKE_DIRECTORY "${WORK_DIR}/obs_off" "${WORK_DIR}/obs_on")
execute_process(
  COMMAND "${RLBF_RUN}" run --scenario=sdsc-easy --jobs=200 --seed=5
          --out_dir=results
  WORKING_DIRECTORY "${WORK_DIR}/obs_off"
  OUTPUT_FILE "${WORK_DIR}/obs_off.stdout"
  ERROR_VARIABLE obs_off_err
  RESULT_VARIABLE obs_off_rc)
execute_process(
  COMMAND "${RLBF_RUN}" run --scenario=sdsc-easy --jobs=200 --seed=5
          --out_dir=results --metrics_out=obs_metrics.json
          --trace_out=obs_trace.json --log_elapsed
  WORKING_DIRECTORY "${WORK_DIR}/obs_on"
  OUTPUT_FILE "${WORK_DIR}/obs_on.stdout"
  ERROR_VARIABLE obs_on_err
  RESULT_VARIABLE obs_on_rc)
if(NOT obs_off_rc EQUAL 0 OR NOT obs_on_rc EQUAL 0)
  math(EXPR failures "${failures} + 1")
  message(WARNING "obs byte-identity: runs failed (off=${obs_off_rc} "
                  "on=${obs_on_rc})\n${obs_off_err}\n${obs_on_err}")
else()
  set(obs_ok 1)
  foreach(pair "obs_off.stdout|obs_on.stdout"
               "obs_off/results/summary.csv|obs_on/results/summary.csv")
    string(REPLACE "|" ";" pair "${pair}")
    list(GET pair 0 lhs)
    list(GET pair 1 rhs)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              "${WORK_DIR}/${lhs}" "${WORK_DIR}/${rhs}"
      RESULT_VARIABLE obs_same)
    if(NOT obs_same EQUAL 0)
      set(obs_ok 0)
      message(WARNING "obs byte-identity: ${lhs} differs from ${rhs} — "
                      "instrumentation leaked into a result stream")
    endif()
  endforeach()
  # The sinks themselves must exist and carry the instrumented layers.
  file(READ "${WORK_DIR}/obs_on/obs_metrics.json" obs_metrics)
  if(NOT obs_metrics MATCHES "sim\\.events_processed")
    set(obs_ok 0)
    message(WARNING "obs: metrics dump lacks sim.events_processed")
  endif()
  file(READ "${WORK_DIR}/obs_on/obs_trace.json" obs_trace)
  if(NOT obs_trace MATCHES "traceEvents" OR NOT obs_trace MATCHES "\"cat\": \"sim\"")
    set(obs_ok 0)
    message(WARNING "obs: trace dump lacks traceEvents / sim spans")
  endif()
  # --log_elapsed routes [+N.NNNs] prefixes to stderr only.
  if(NOT obs_on_err MATCHES "\\[\\+[0-9]+\\.[0-9]+s\\]")
    set(obs_ok 0)
    message(WARNING "obs: --log_elapsed produced no [+N.NNNs] stderr prefix")
  endif()
  if(obs_ok)
    message(STATUS "obs byte-identity + sink contents: ok")
  else()
    math(EXPR failures "${failures} + 1")
  endif()
endif()
# A metrics sink that cannot be written is a loud exit-1 failure, after
# the run's real work.
expect_failure("unwritable metrics_out" "cannot write --metrics_out"
               run --scenario=sdsc-easy --jobs=200
               --metrics_out=no_such_dir/metrics.json)

if(failures GREATER 0)
  message(FATAL_ERROR "rlbf_run CLI: ${failures} case(s) failed")
endif()
