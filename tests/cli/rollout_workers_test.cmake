# The actor/learner acceptance proof, end to end through the rlbf_run
# binary (label: smoke):
#
#   1. `train --spec=sdsc-tiny` run sequentially (--rollout_workers=0),
#      with one worker process (--rollout_workers=1), and with three
#      worker processes plus one injected, retried worker failure
#      (--rollout_workers=3 --inject_fail=1:1) produces byte-identical
#      stores: same keys (= content-address fingerprints), same .model
#      bytes, same .spec bytes.
#   2. The injected failure and its retry show up in the supervisor log,
#      and the rollout scratch directory is cleaned up on success
#      (kept under --keep_work, holding the worker obs sidecars).
#   3. Malformed transports are usage errors (exit 2) before anything
#      trains: --rollout_workers with --workers, --command_template
#      without --hosts, --rollout_workers over a multi-spec grid.
#
#   cmake -DRLBF_RUN=<binary> -DWORK_DIR=<scratch> -P rollout_workers_test.cmake

foreach(var RLBF_RUN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "rollout_workers_test.cmake: -D${var}=... is required")
  endif()
endforeach()
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(failures 0)

function(run_or_fail case)
  execute_process(
    COMMAND "${RLBF_RUN}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    message(WARNING "${case}: expected exit 0, got '${rc}'\n${out}\n${err}")
  else()
    message(STATUS "${case}: ok")
  endif()
  set(last_stdout "${out}" PARENT_SCOPE)
endfunction()

# A malformed invocation must be a usage error (exit 2) naming the
# problem — never a crash, never a partial run.
function(expect_usage_error case pattern)
  execute_process(
    COMMAND "${RLBF_RUN}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 2)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    message(WARNING "${case}: expected exit 2, got '${rc}'\n${out}\n${err}")
  elseif(NOT "${out}${err}" MATCHES "${pattern}")
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    message(WARNING "${case}: exit 2 but no '${pattern}' in:\n${out}\n${err}")
  else()
    message(STATUS "${case}: rejected as expected")
  endif()
endfunction()

# store_signature(<out var> <store dir>): the sorted key column of
# index.tsv — keys ARE the content-address fingerprints. (The last_used
# column is volatile, so the file itself is never byte-compared.)
function(store_signature out_var store)
  file(STRINGS "${store}/index.tsv" lines)
  set(keys "")
  foreach(line ${lines})
    if(line MATCHES "^rlbf-model-store")
      continue()
    endif()
    string(REPLACE "\t" ";" fields "${line}")
    list(GET fields 0 key)
    list(APPEND keys "${key}")
  endforeach()
  list(SORT keys)
  set(${out_var} "${keys}" PARENT_SCOPE)
endfunction()

# compare_store_payload(<case> <store A> <store B>): every .model/.spec
# file in A must exist in B with identical bytes — the model parameters
# crossed a process (or retry) boundary without a bit changing.
function(compare_store_payload case a b)
  file(GLOB payload RELATIVE "${a}" "${a}/*.model" "${a}/*.spec")
  set(ok 1)
  if("${payload}" STREQUAL "")
    set(ok 0)
    message(WARNING "${case}: no payload files in ${a} — nothing was proven")
  endif()
  foreach(f ${payload})
    if(NOT EXISTS "${b}/${f}")
      set(ok 0)
      message(WARNING "${case}: ${f} missing from ${b}")
      continue()
    endif()
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files "${a}/${f}" "${b}/${f}"
      RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
      set(ok 0)
      message(WARNING "${case}: ${f} differs between ${a} and ${b}")
    endif()
  endforeach()
  if(NOT ok)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
  else()
    message(STATUS "${case}: byte-identical")
  endif()
endfunction()

# ---- 1. sequential ≡ 1 worker ≡ 3 workers (with a retried failure) ---
run_or_fail("sequential train" train --spec=sdsc-tiny --store=store_seq
            --quiet)
# One worker, kept scratch: proves the obs sidecar plumbing (the worker
# writes its own metrics file, the supervisor merges a fleet view).
run_or_fail("1 rollout worker" train --spec=sdsc-tiny --store=store_w1
            --rollout_workers=1 --quiet --keep_work
            --metrics_out=fleet_metrics.json)
# Worker job 0's first attempt (epoch 1) is forced to fail with a real
# nonzero exit and must be retried to success on attempt 2.
run_or_fail("3 rollout workers, 1 injected failure" train --spec=sdsc-tiny
            --store=store_w3 --rollout_workers=3 --retries=1 --inject_fail=0:1)
if(NOT last_stdout MATCHES "injected failure")
  math(EXPR failures "${failures} + 1")
  message(WARNING "supervisor log does not show the injected failure:\n${last_stdout}")
endif()
if(NOT last_stdout MATCHES "retrying")
  math(EXPR failures "${failures} + 1")
  message(WARNING "supervisor log does not show the retry:\n${last_stdout}")
endif()

store_signature(seq_sig "${WORK_DIR}/store_seq")
store_signature(w1_sig "${WORK_DIR}/store_w1")
store_signature(w3_sig "${WORK_DIR}/store_w3")
list(LENGTH seq_sig seq_n)
if(seq_n EQUAL 0)
  math(EXPR failures "${failures} + 1")
  message(WARNING "sequential store is empty — nothing was proven")
endif()
foreach(arm w1 w3)
  if("${seq_sig}" STREQUAL "${${arm}_sig}")
    message(STATUS "${arm} keys+fingerprints == sequential: ok")
  else()
    math(EXPR failures "${failures} + 1")
    message(WARNING "store keys differ:\nseq: ${seq_sig}\n${arm}: ${${arm}_sig}")
  endif()
  compare_store_payload("${arm} store payload vs sequential"
                        "${WORK_DIR}/store_seq" "${WORK_DIR}/store_${arm}")
endforeach()

# ---- 2. scratch lifecycle and worker observability sidecars ----------
if(EXISTS "${WORK_DIR}/store_w3.rollouts")
  math(EXPR failures "${failures} + 1")
  message(WARNING "rollout scratch was not cleaned up after success")
endif()
if(NOT EXISTS "${WORK_DIR}/store_w1.rollouts/worker0.metrics.json")
  math(EXPR failures "${failures} + 1")
  message(WARNING "--keep_work did not retain the worker obs sidecar")
endif()
if(NOT EXISTS "${WORK_DIR}/fleet_metrics.json")
  math(EXPR failures "${failures} + 1")
  message(WARNING "supervisor did not write the merged fleet metrics")
endif()

# ---- 3. malformed transports fail fast -------------------------------
expect_usage_error("rollout_workers excludes process fan-out"
                   "--rollout_workers"
                   train --spec=sdsc-tiny --store=store_x
                   --rollout_workers=2 --workers=3)
expect_usage_error("command template needs hosts" "--hosts"
                   train --spec=sdsc-tiny --store=store_x --rollout_workers=2
                   "--command_template=ssh {host} {qcommand}")
expect_usage_error("one spec per rollout run" "exactly one"
                   train --ablations --store=store_x --rollout_workers=2)

if(failures GREATER 0)
  message(FATAL_ERROR "rollout workers smoke: ${failures} case(s) failed")
endif()
