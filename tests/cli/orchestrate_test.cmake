# The distributed-orchestration acceptance proof, end to end through
# the rlbf_run binary (label: smoke):
#
#   1. A 3-worker `rlbf_run orchestrate` — with one injected worker
#      failure that must be retried — produces merged sweep output
#      byte-identical to the single-process unsharded run.
#   2. An orchestrated `rlbf_run train --workers=3` over the full
#      ablation grid yields a store whose keys (= content-address
#      fingerprints) and spec names equal the sequential
#      `train --ablations` run's, with the warm-start chain resolved
#      inside one worker.
#   3. The collected worker bundles re-import through the multi-bundle
#      `models --import_bundle` forms (comma list and
#      directory-of-bundles) with per-bundle counts.
#
#   cmake -DRLBF_RUN=<binary> -DWORK_DIR=<scratch> -P orchestrate_test.cmake

foreach(var RLBF_RUN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "orchestrate_test.cmake: -D${var}=... is required")
  endif()
endforeach()
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(failures 0)

function(run_or_fail case)
  execute_process(
    COMMAND "${RLBF_RUN}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    message(WARNING "${case}: expected exit 0, got '${rc}'\n${out}\n${err}")
  else()
    message(STATUS "${case}: ok")
  endif()
  set(last_stdout "${out}" PARENT_SCOPE)
endfunction()

# compare_trees(<case> <dir A> <dir B>): every file in A must exist in B
# with identical bytes, and vice versa.
function(compare_trees case a b)
  file(GLOB_RECURSE a_files RELATIVE "${a}" "${a}/*")
  file(GLOB_RECURSE b_files RELATIVE "${b}" "${b}/*")
  set(ok 1)
  if(NOT "${a_files}" STREQUAL "${b_files}")
    set(ok 0)
    message(WARNING "${case}: file sets differ: [${a_files}] vs [${b_files}]")
  else()
    foreach(f ${a_files})
      execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files "${a}/${f}" "${b}/${f}"
        RESULT_VARIABLE same)
      if(NOT same EQUAL 0)
        set(ok 0)
        message(WARNING "${case}: ${f} differs between ${a} and ${b}")
      endif()
    endforeach()
  endif()
  if(NOT ok)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
  else()
    message(STATUS "${case}: byte-identical")
  endif()
endfunction()

# store_signature(<out var> <store dir>): the sorted key column of
# index.tsv — keys ARE the content-address fingerprints, so equal
# signatures mean equal keys AND equal fingerprints. (Entry *names* are
# deliberately not compared: two registered arms can share one content
# address — abl-control and abl-transfer-scratch do — and which name a
# shared entry carries depends on who trained it first.)
function(store_signature out_var store)
  file(STRINGS "${store}/index.tsv" lines)
  set(keys "")
  foreach(line ${lines})
    if(line MATCHES "^rlbf-model-store")
      continue()
    endif()
    string(REPLACE "\t" ";" fields "${line}")
    list(GET fields 0 key)
    list(APPEND keys "${key}")
  endforeach()
  list(SORT keys)
  set(${out_var} "${keys}" PARENT_SCOPE)
endfunction()

# ---- 1. orchestrated sweep ≡ unsharded, through an injected failure --
set(sweep_grid "load=0.8,1.0\;policy=FCFS,SJF")
run_or_fail("unsharded sweep" run --scenario=sdsc-easy --jobs=300 --seed=7
            --threads=2 "--sweep=${sweep_grid}" --format=both
            --out_dir=unsharded)
# Worker job 1's first attempt is forced to fail (a real nonzero exit
# with a named error) and must be retried to success.
run_or_fail("orchestrate 3 workers, 1 injected failure"
            orchestrate --scenario=sdsc-easy --jobs=300 --seed=7 --threads=2
            "--sweep=${sweep_grid}" --format=both --workers=3 --retries=1
            --inject_fail=1:1 --out_dir=orchestrated)
if(NOT last_stdout MATCHES "injected failure")
  math(EXPR failures "${failures} + 1")
  message(WARNING "orchestrate log does not show the injected failure:\n${last_stdout}")
endif()
if(NOT last_stdout MATCHES "retrying")
  math(EXPR failures "${failures} + 1")
  message(WARNING "orchestrate log does not show the retry:\n${last_stdout}")
endif()
if(NOT last_stdout MATCHES "4 attempt")
  math(EXPR failures "${failures} + 1")
  message(WARNING "expected 4 attempts (3 jobs + 1 retry):\n${last_stdout}")
endif()
compare_trees("orchestrated 3-worker sweep vs unsharded"
              "${WORK_DIR}/unsharded" "${WORK_DIR}/orchestrated")
# The scratch directory is cleaned up after a successful merge.
if(EXISTS "${WORK_DIR}/orchestrated.work")
  math(EXPR failures "${failures} + 1")
  message(WARNING "orchestrate left its scratch directory behind")
endif()

# ---- 2. orchestrated train --workers=3 ≡ sequential --ablations ------
set(budget --epochs=1 --trajectories=2 --traj_jobs=64 --jobs=800)
run_or_fail("sequential ablation grid" train --ablations --store=store_seq
            ${budget} --quiet)
run_or_fail("orchestrated ablation grid" train --ablations --store=store_par
            --workers=3 ${budget} --quiet --keep_work --work_dir=train_work)
store_signature(seq_sig "${WORK_DIR}/store_seq")
store_signature(par_sig "${WORK_DIR}/store_par")
list(LENGTH seq_sig seq_n)
if(seq_n EQUAL 0)
  math(EXPR failures "${failures} + 1")
  message(WARNING "sequential store is empty — nothing was proven")
endif()
if("${seq_sig}" STREQUAL "${par_sig}")
  message(STATUS "orchestrated train: ${seq_n} keys+fingerprints == sequential: ok")
else()
  math(EXPR failures "${failures} + 1")
  message(WARNING "store signatures differ:\nseq: ${seq_sig}\npar: ${par_sig}")
endif()

# An EMPTY train shard must export a zero-entry bundle even when its
# store is full — never "all entries" (which would leak unrelated store
# contents into collection when a worker store is reused).
run_or_fail("empty shard exports empty bundle" train --spec=abl-control
            --shard=1/2 --store=store_seq --export_bundle=empty_bundle
            ${budget} --quiet)
if(NOT last_stdout MATCHES "# exported 0 entries")
  math(EXPR failures "${failures} + 1")
  message(WARNING "empty shard did not export an empty bundle:\n${last_stdout}")
endif()
run_or_fail("empty bundle imports cleanly" models --store=store_empty
            --import_bundle=empty_bundle)
if(NOT last_stdout MATCHES "# imported 0 entries")
  math(EXPR failures "${failures} + 1")
  message(WARNING "empty bundle import was not a clean zero:\n${last_stdout}")
endif()

# ---- 3. multi-bundle import of the collected worker bundles ----------
run_or_fail("multi-import comma list" models --store=store_multi
            --import_bundle=train_work/worker0/bundle,train_work/worker1/bundle,train_work/worker2/bundle)
if(NOT last_stdout MATCHES "from 3 bundle\\(s\\)")
  math(EXPR failures "${failures} + 1")
  message(WARNING "comma-list import did not report 3 bundles:\n${last_stdout}")
endif()
store_signature(multi_sig "${WORK_DIR}/store_multi")
if(NOT "${multi_sig}" STREQUAL "${seq_sig}")
  math(EXPR failures "${failures} + 1")
  message(WARNING "comma-list import differs from the sequential store")
endif()
# Directory-of-bundles form: one directory whose subdirectories each
# hold a bundle (the collected layout), imported in one flag.
file(MAKE_DIRECTORY "${WORK_DIR}/collected")
foreach(i RANGE 2)
  file(COPY "${WORK_DIR}/train_work/worker${i}/bundle"
       DESTINATION "${WORK_DIR}/collected")
  file(RENAME "${WORK_DIR}/collected/bundle" "${WORK_DIR}/collected/w${i}")
endforeach()
run_or_fail("multi-import directory of bundles" models --store=store_dir
            --import_bundle=collected)
if(NOT last_stdout MATCHES "from 3 bundle\\(s\\)")
  math(EXPR failures "${failures} + 1")
  message(WARNING "directory import did not report 3 bundles:\n${last_stdout}")
endif()
# The kept work dir imports directly too (bundles live two levels down
# at worker<i>/bundle — the documented orchestrator layout).
run_or_fail("multi-import kept work dir" models --store=store_work
            --import_bundle=train_work)
if(NOT last_stdout MATCHES "from 3 bundle\\(s\\)")
  math(EXPR failures "${failures} + 1")
  message(WARNING "work-dir import did not find 3 bundles:\n${last_stdout}")
endif()
# Re-importing into an existing store is idempotent: everything skips.
run_or_fail("multi-import idempotent" models --store=store_dir
            --import_bundle=collected)
if(NOT last_stdout MATCHES "# imported 0 entries")
  math(EXPR failures "${failures} + 1")
  message(WARNING "re-import was not a clean skip:\n${last_stdout}")
endif()

if(failures GREATER 0)
  message(FATAL_ERROR "orchestrate smoke: ${failures} case(s) failed")
endif()
