# The fleet-observability acceptance proof, end to end through the
# rlbf_run binary (label: smoke):
#
#   1. A 3-worker `rlbf_run orchestrate --metrics_out` produces a merged
#      metrics report whose summed counters EQUAL the single-process
#      run's counters — aggregation invents and loses nothing.
#   2. Turning the obs flags on does not change a byte of the
#      orchestrated run's stdout or result files (the determinism
#      contract, extended across process boundaries).
#   3. The merged Chrome trace carries the wall-clock epoch anchor,
#      per-worker process_name metadata, remapped pids, and the
#      supervisor's per-job spans.
#   4. `rlbf_run profile` on that trace is byte-deterministic.
#   5. `rlbf_run bench --compare` exits 3 on a synthetically regressed
#      candidate report, 0 on a self-compare, and writes a verdict JSON.
#
#   cmake -DRLBF_RUN=<binary> -DWORK_DIR=<scratch> -P obs_fleet_test.cmake

foreach(var RLBF_RUN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "obs_fleet_test.cmake: -D${var}=... is required")
  endif()
endforeach()
if(CMAKE_VERSION VERSION_LESS 3.19)
  message(STATUS "obs_fleet_test: CMake ${CMAKE_VERSION} lacks string(JSON); "
                 "skipping")
  return()
endif()
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(failures 0)

# run_case(<case> <expected rc> <stdout var> ...argv): run rlbf_run,
# require the exit code, capture stdout.
function(run_case case expect_rc out_var)
  execute_process(
    COMMAND "${RLBF_RUN}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL ${expect_rc})
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    message(WARNING "${case}: expected exit ${expect_rc}, got '${rc}'\n${out}\n${err}")
  else()
    message(STATUS "${case}: ok (exit ${rc})")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# counter_at(<out var> <metrics json text> <counter name>): a counter
# value, from either a registry dump or a merged fleet report — both
# keep counters under a top-level "counters" object.
function(counter_at out_var doc name)
  string(JSON value ERROR_VARIABLE json_err GET "${doc}" counters ${name})
  if(json_err)
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    message(WARNING "counter ${name}: ${json_err}")
    set(value "-1")
  endif()
  set(${out_var} "${value}" PARENT_SCOPE)
endfunction()

# One sweep dimension (no ';'), so the grid survives CMake list
# re-expansion through run_case's ARGN without escape gymnastics.
set(sweep_grid "load=0.6,0.8,1.0")
set(sweep_args run --scenario=sdsc-easy --jobs=300 --seed=7 --threads=2
    --sweep=${sweep_grid} --format=both)
set(orch_args orchestrate --scenario=sdsc-easy --jobs=300 --seed=7 --threads=2
    --sweep=${sweep_grid} --format=both --workers=3 --quiet)

# ---- 1. merged fleet counters == single-process counters -------------
run_case("single-process reference" 0 ref_out
         ${sweep_args} --out_dir=ref --metrics_out=ref.metrics.json)
run_case("orchestrate 3 workers with sidecars" 0 fleet_out
         ${orch_args} --out_dir=fleet
         --metrics_out=fleet.metrics.json --trace_out=fleet.trace.json)
file(READ "${WORK_DIR}/ref.metrics.json" ref_metrics)
file(READ "${WORK_DIR}/fleet.metrics.json" fleet_metrics)
foreach(name sim.events_processed sim.schedule_recomputations sweep.instances)
  counter_at(ref_value "${ref_metrics}" ${name})
  counter_at(fleet_value "${fleet_metrics}" ${name})
  if(ref_value EQUAL -1 OR NOT ref_value EQUAL fleet_value)
    math(EXPR failures "${failures} + 1")
    message(WARNING "counter ${name}: single-process ${ref_value} != "
                    "merged fleet ${fleet_value}")
  else()
    message(STATUS "counter ${name}: fleet == single-process (${ref_value})")
  endif()
endforeach()
# The merged report names every source: 3 workers + the supervisor.
string(JSON n_sources ERROR_VARIABLE json_err LENGTH "${fleet_metrics}" sources)
if(json_err OR NOT n_sources EQUAL 4)
  math(EXPR failures "${failures} + 1")
  message(WARNING "merged metrics should name 4 sources, got '${n_sources}'")
endif()
# Gauges carry their writing source; the supervisor owns utilization.
string(JSON util_src ERROR_VARIABLE json_err GET "${fleet_metrics}"
       gauges dist.worker_utilization source)
if(json_err OR NOT util_src STREQUAL "supervisor")
  math(EXPR failures "${failures} + 1")
  message(WARNING "dist.worker_utilization should be tagged 'supervisor', "
                  "got '${util_src}' ${json_err}")
endif()

# ---- 2. obs flags change no result byte, even orchestrated ------------
run_case("orchestrate with obs OFF" 0 plain_out ${orch_args} --out_dir=plain)
# The two runs' stdout differs only by the out_dir name they report.
string(REPLACE "-> fleet/" "-> OUT/" fleet_norm "${fleet_out}")
string(REPLACE "-> plain/" "-> OUT/" plain_norm "${plain_out}")
if(NOT fleet_norm STREQUAL plain_norm)
  math(EXPR failures "${failures} + 1")
  message(WARNING "obs flags changed orchestrate stdout:\n--- obs on\n"
                  "${fleet_out}\n--- obs off\n${plain_out}")
else()
  message(STATUS "orchestrate stdout: byte-identical with obs on/off")
endif()
file(GLOB_RECURSE fleet_files RELATIVE "${WORK_DIR}/fleet" "${WORK_DIR}/fleet/*")
file(GLOB_RECURSE plain_files RELATIVE "${WORK_DIR}/plain" "${WORK_DIR}/plain/*")
if(NOT "${fleet_files}" STREQUAL "${plain_files}")
  math(EXPR failures "${failures} + 1")
  message(WARNING "obs flags changed the output file set: "
                  "[${fleet_files}] vs [${plain_files}]")
else()
  foreach(f ${fleet_files})
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              "${WORK_DIR}/fleet/${f}" "${WORK_DIR}/plain/${f}"
      RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
      math(EXPR failures "${failures} + 1")
      message(WARNING "obs flags changed result file ${f}")
    endif()
  endforeach()
  message(STATUS "orchestrate result files: byte-identical with obs on/off")
endif()

# ---- 3. the merged trace is a fleet timeline --------------------------
file(READ "${WORK_DIR}/fleet.trace.json" trace)
string(JSON anchor ERROR_VARIABLE json_err GET "${trace}" epochAnchorUs)
if(json_err OR NOT anchor GREATER 0)
  math(EXPR failures "${failures} + 1")
  message(WARNING "merged trace: epochAnchorUs should be > 0, got "
                  "'${anchor}' ${json_err}")
else()
  message(STATUS "merged trace: epochAnchorUs = ${anchor}")
endif()
# Chrome process rows for supervisor + workers, and spans from a pid
# other than the supervisor's 1 (the remap happened).
foreach(needle "\"process_name\"" "\"supervisor\"" "\"worker0\"" "job sweep-shard")
  if(NOT trace MATCHES "${needle}")
    math(EXPR failures "${failures} + 1")
    message(WARNING "merged trace: missing ${needle}")
  endif()
endforeach()
if(NOT trace MATCHES "\"pid\": [2-9]")
  math(EXPR failures "${failures} + 1")
  message(WARNING "merged trace: no events on a remapped pid > 1")
else()
  message(STATUS "merged trace: process rows + remapped pids present")
endif()

# ---- 4. profile is byte-deterministic ---------------------------------
run_case("profile (first run)" 0 profile_a
         profile fleet.trace.json --csv_out=profile.csv)
run_case("profile (second run)" 0 profile_b profile fleet.trace.json)
if(NOT profile_a MATCHES "span +count +self_s" OR NOT profile_a MATCHES "job sweep-shard")
  math(EXPR failures "${failures} + 1")
  message(WARNING "profile output lacks the table or the job spans:\n${profile_a}")
endif()
string(REPLACE "# profile CSV written to profile.csv\n" "" profile_a "${profile_a}")
if(NOT profile_a STREQUAL profile_b)
  math(EXPR failures "${failures} + 1")
  message(WARNING "profile is not byte-deterministic:\n--- first\n${profile_a}"
                  "\n--- second\n${profile_b}")
else()
  message(STATUS "profile: byte-identical across repeated runs")
endif()
if(NOT EXISTS "${WORK_DIR}/profile.csv")
  math(EXPR failures "${failures} + 1")
  message(WARNING "profile did not write --csv_out")
endif()

# ---- 5. the bench regression gate -------------------------------------
run_case("quick bench baseline" 0 bench_out
         bench --quick --jobs=500 --dist_jobs=100 --tag=smoke --out=base.json)
# Self-compare: a report never regresses against itself.
run_case("bench self-compare" 0 self_out
         bench --compare=base.json --candidate=base.json
         --verdict_out=self.verdict.json)
file(READ "${WORK_DIR}/self.verdict.json" verdict)
string(JSON self_verdict ERROR_VARIABLE json_err GET "${verdict}" verdict)
if(json_err OR NOT self_verdict STREQUAL "ok")
  math(EXPR failures "${failures} + 1")
  message(WARNING "self-compare verdict should be 'ok', got "
                  "'${self_verdict}' ${json_err}")
endif()
# Synthetic regression: halve throughput far beyond any threshold. The
# gate must exit 3 (regression), distinct from error (1) and usage (2).
file(READ "${WORK_DIR}/base.json" base_report)
string(JSON regressed SET "${base_report}" sim events_per_second 1)
file(WRITE "${WORK_DIR}/regressed.json" "${regressed}")
run_case("bench compare flags regression" 3 gate_out
         bench --compare=base.json --candidate=regressed.json
         --verdict_out=gate.verdict.json)
if(NOT gate_out MATCHES "REGRESSION")
  math(EXPR failures "${failures} + 1")
  message(WARNING "compare table does not flag the REGRESSION:\n${gate_out}")
endif()
file(READ "${WORK_DIR}/gate.verdict.json" verdict)
string(JSON gate_verdict ERROR_VARIABLE json_err GET "${verdict}" verdict)
string(JSON n_regressions ERROR_VARIABLE json_err2 GET "${verdict}" regressions)
if(json_err OR NOT gate_verdict STREQUAL "regression" OR NOT n_regressions GREATER 0)
  math(EXPR failures "${failures} + 1")
  message(WARNING "gate verdict JSON should say regression (> 0), got "
                  "'${gate_verdict}'/'${n_regressions}' ${json_err} ${json_err2}")
else()
  message(STATUS "bench gate: exit 3 + verdict JSON on a regressed candidate")
endif()

if(failures GREATER 0)
  message(FATAL_ERROR "obs fleet smoke: ${failures} case(s) failed")
endif()
message(STATUS "obs fleet smoke: all checks passed")
