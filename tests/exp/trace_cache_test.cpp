// The exp trace cache under pressure: LRU eviction at the 32-entry cap,
// stat accounting, and the multi-arm-sweep sharing pattern the ablation
// benches rely on (many scheduler/agent variants over one workload must
// build exactly one trace).
#include <gtest/gtest.h>

#include "exp/scenario.h"
#include "exp/sweep.h"

namespace rlbf::exp {
namespace {

ScenarioSpec tiny_spec(std::size_t jobs) {
  ScenarioSpec spec;
  spec.workload = "SDSC-SP2";
  spec.trace_jobs = jobs;
  return spec;
}

TEST(TraceCacheLru, EvictsLeastRecentlyUsedBeyondTheCap) {
  clear_trace_cache();
  // 33 distinct keys (cap is 32): jobs = 100 .. 132.
  for (std::size_t i = 0; i <= 32; ++i) {
    build_trace_cached(tiny_spec(100 + i), 1);
  }
  TraceCacheStats stats = trace_cache_stats();
  EXPECT_EQ(stats.entries, 32u);
  EXPECT_EQ(stats.misses, 33u);
  EXPECT_EQ(stats.hits, 0u);

  // The oldest entry (jobs=100) was evicted: re-getting it is a miss...
  build_trace_cached(tiny_spec(100), 1);
  stats = trace_cache_stats();
  EXPECT_EQ(stats.misses, 34u);
  EXPECT_EQ(stats.entries, 32u);
  // ...which in turn evicted jobs=101, while the most recent key from
  // the fill (jobs=132) is still resident.
  build_trace_cached(tiny_spec(132), 1);
  EXPECT_EQ(trace_cache_stats().hits, 1u);
  build_trace_cached(tiny_spec(101), 1);
  EXPECT_EQ(trace_cache_stats().misses, 35u);

  // A cache hit refreshes recency: touch jobs=103 (currently the LRU
  // survivor from the fill), insert a fresh key, and the eviction victim
  // must be jobs=104 — not the just-touched 103.
  build_trace_cached(tiny_spec(103), 1);
  const std::size_t hits_after_touch = trace_cache_stats().hits;
  build_trace_cached(tiny_spec(500), 1);  // evicts 104
  build_trace_cached(tiny_spec(103), 1);  // still resident -> hit
  EXPECT_EQ(trace_cache_stats().hits, hits_after_touch + 1);
  build_trace_cached(tiny_spec(104), 1);  // evicted -> miss
  EXPECT_EQ(trace_cache_stats().misses, 37u);

  clear_trace_cache();
  stats = trace_cache_stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(TraceCacheLru, SeedForksTheKey) {
  clear_trace_cache();
  build_trace_cached(tiny_spec(200), 1);
  build_trace_cached(tiny_spec(200), 2);
  const TraceCacheStats stats = trace_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

// The ablation-sweep sharing pattern: expanding one base scenario over
// scheduler axes (the moral equivalent of sweeping ablation arms) runs
// many instances but builds the workload exactly once.
TEST(TraceCacheLru, MultiArmSweepBuildsOneTraceAndHitsForTheRest) {
  clear_trace_cache();
  ScenarioSpec base = find_scenario("sdsc-easy");
  base.trace_jobs = 300;
  const auto axes = parse_sweep("backfill=easy,easy-sjf,cons;policy=FCFS,SJF");
  const std::vector<ScenarioSpec> specs = expand_grid(base, axes);
  ASSERT_EQ(specs.size(), 6u);

  SweepOptions options;
  options.seed = 5;
  options.threads = 1;  // deterministic stat accounting (no racing misses)
  const auto runs = run_sweep(specs, options);
  ASSERT_EQ(runs.size(), 6u);

  const TraceCacheStats stats = trace_cache_stats();
  EXPECT_EQ(stats.misses, 1u) << "every instance should share one build";
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.entries, 1u);
  // All six instances really saw the same jobs.
  for (const auto& run : runs) EXPECT_EQ(run.jobs, runs[0].jobs);
}

}  // namespace
}  // namespace rlbf::exp
