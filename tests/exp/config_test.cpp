#include "exp/config.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace rlbf::exp {
namespace {

TEST(ArgParser, BindsTypedFlags) {
  std::string name = "default";
  std::size_t jobs = 10;
  double load = 1.0;
  std::uint64_t seed = 1;
  bool retrain = false;
  ArgParser parser("test");
  parser.add("--name", &name, "a string");
  parser.add("--jobs", &jobs, "a count");
  parser.add("--load", &load, "a factor");
  parser.add("--seed", &seed, "a seed");
  parser.add_flag("--retrain", &retrain, "a switch");

  std::string error;
  EXPECT_TRUE(parser.parse({"--name=x", "--jobs=42", "--load=1.5",
                            "--seed=7", "--retrain"},
                           &error))
      << error;
  EXPECT_EQ(name, "x");
  EXPECT_EQ(jobs, 42u);
  EXPECT_DOUBLE_EQ(load, 1.5);
  EXPECT_EQ(seed, 7u);
  EXPECT_TRUE(retrain);
}

TEST(ArgParser, SwitchAcceptsExplicitValue) {
  bool quick = false;
  ArgParser parser("test");
  parser.add_flag("--quick", &quick, "switch");
  EXPECT_TRUE(parser.parse({"--quick=false"}));
  EXPECT_FALSE(quick);
  EXPECT_TRUE(parser.parse({"--quick=yes"}));
  EXPECT_TRUE(quick);
}

TEST(ArgParser, UnknownFlagFails) {
  ArgParser parser("test");
  std::string error;
  EXPECT_FALSE(parser.parse({"--nope=1"}, &error));
  EXPECT_NE(error.find("--nope"), std::string::npos);
}

TEST(ArgParser, MalformedValueFails) {
  std::size_t jobs = 0;
  ArgParser parser("test");
  parser.add("--jobs", &jobs, "count");
  std::string error;
  EXPECT_FALSE(parser.parse({"--jobs=12x"}, &error));
  EXPECT_NE(error.find("--jobs"), std::string::npos);
}

TEST(ArgParser, ValuelessNonSwitchFails) {
  std::size_t jobs = 0;
  ArgParser parser("test");
  parser.add("--jobs", &jobs, "count");
  std::string error;
  EXPECT_FALSE(parser.parse({"--jobs"}, &error));
}

TEST(ArgParser, PositionalsBindInOrder) {
  std::string trace = "SDSC-SP2", jobs = "3000";
  ArgParser parser("test");
  parser.add_positional("trace", &trace, "trace name");
  parser.add_positional("jobs", &jobs, "job count");
  EXPECT_TRUE(parser.parse({"HPC2N", "500"}));
  EXPECT_EQ(trace, "HPC2N");
  EXPECT_EQ(jobs, "500");

  std::string error;
  EXPECT_FALSE(parser.parse({"a", "b", "c"}, &error));
  EXPECT_NE(error.find("unexpected"), std::string::npos);
}

TEST(ArgParser, DashAndUnderscoreSpellingsAreInterchangeable) {
  std::size_t jobs = 0;
  ArgParser parser("test");
  parser.add("--sample_jobs", &jobs, "count");
  EXPECT_TRUE(parser.parse({"--sample-jobs=7"}));
  EXPECT_EQ(jobs, 7u);
  EXPECT_TRUE(parser.parse({"--sample_jobs=9"}));
  EXPECT_EQ(jobs, 9u);
}

TEST(ArgParser, HelpIsAlwaysAccepted) {
  ArgParser parser("test");
  EXPECT_TRUE(parser.parse({"--help"}));
  EXPECT_TRUE(parser.help_requested());
}

TEST(ArgParser, UsageListsFlagsAndDefaults) {
  std::size_t jobs = 123;
  ArgParser parser("mytool", "does things");
  parser.add("--jobs", &jobs, "how many jobs");
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("mytool"), std::string::npos);
  EXPECT_NE(usage.find("--jobs"), std::string::npos);
  EXPECT_NE(usage.find("how many jobs"), std::string::npos);
  EXPECT_NE(usage.find("123"), std::string::npos);
}

TEST(ParseNumber, RejectsJunkAndAcceptsWhole) {
  double d = 0.0;
  EXPECT_TRUE(parse_number("1.25", &d));
  EXPECT_DOUBLE_EQ(d, 1.25);
  EXPECT_FALSE(parse_number("", &d));
  EXPECT_FALSE(parse_number("1.2x", &d));

  std::uint64_t u = 0;
  EXPECT_TRUE(parse_number("18446744073709551615", &u));
  EXPECT_EQ(u, ~std::uint64_t{0});
  EXPECT_FALSE(parse_number("-3", &u));

  std::int64_t i = 0;
  EXPECT_TRUE(parse_number("-42", &i));
  EXPECT_EQ(i, -42);
}

// Regression: strtod reports ERANGE for subnormal results exactly like
// it does for overflow, and the old blanket `errno != 0` check rejected
// perfectly valid tiny inputs. Finite-but-tiny parses; true overflow
// still fails.
TEST(ParseNumber, AcceptsSubnormalsRejectsOverflow) {
  double v = -1.0;
  EXPECT_TRUE(parse_number("1e-320", &v));  // subnormal: ERANGE + finite
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1e-300);
  EXPECT_TRUE(parse_number("5e-324", &v));  // smallest denormal
  EXPECT_GT(v, 0.0);
  EXPECT_TRUE(parse_number("-1e-320", &v));
  EXPECT_LT(v, 0.0);
  EXPECT_TRUE(parse_number("1e-5000", &v));  // underflows all the way to 0
  EXPECT_EQ(v, 0.0);

  EXPECT_FALSE(parse_number("1e400", &v));   // overflow: ERANGE + infinite
  EXPECT_FALSE(parse_number("-1e400", &v));
}

TEST(ParseNumber, RoundTripsExactFormatting) {
  // format_double_exact -> parse_number is lossless, subnormals included
  // (the fingerprint/cache-key contract).
  for (const double original : {3.14, 1e-320, 5e-324, -0.0, 1e308, 1.0 / 3.0}) {
    double parsed = 42.0;
    ASSERT_TRUE(parse_number(format_double_exact(original), &parsed))
        << format_double_exact(original);
    EXPECT_EQ(parsed, original) << format_double_exact(original);
  }
}

TEST(ParseBool, AcceptsCommonSpellings) {
  bool b = false;
  for (const char* t : {"1", "true", "YES", "on"}) {
    EXPECT_TRUE(parse_bool(t, &b)) << t;
    EXPECT_TRUE(b) << t;
  }
  for (const char* t : {"0", "False", "no", "OFF"}) {
    EXPECT_TRUE(parse_bool(t, &b)) << t;
    EXPECT_FALSE(b) << t;
  }
  EXPECT_FALSE(parse_bool("maybe", &b));
}

}  // namespace
}  // namespace rlbf::exp
