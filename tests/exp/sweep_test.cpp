#include "exp/sweep.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rlbf::exp {
namespace {

ScenarioSpec small_base() {
  ScenarioSpec spec = find_scenario("sdsc-easy");
  spec.trace_jobs = 200;
  return spec;
}

TEST(ParseSweep, ParsesAxesAndValues) {
  const auto axes = parse_sweep("load=0.5,1.0,1.5; policy = FCFS , SJF");
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0].param, "load");
  EXPECT_EQ(axes[0].values, (std::vector<std::string>{"0.5", "1.0", "1.5"}));
  EXPECT_EQ(axes[1].param, "policy");
  EXPECT_EQ(axes[1].values, (std::vector<std::string>{"FCFS", "SJF"}));
}

TEST(ParseSweep, EmptyTextMeansNoAxes) {
  EXPECT_TRUE(parse_sweep("").empty());
  EXPECT_TRUE(parse_sweep("  ").empty());
}

TEST(ParseSweep, RejectsMalformedAxes) {
  EXPECT_THROW(parse_sweep("loadvalues"), std::invalid_argument);
  EXPECT_THROW(parse_sweep("=1,2"), std::invalid_argument);
  EXPECT_THROW(parse_sweep("load=1,,2"), std::invalid_argument);
}

TEST(ApplyParam, SetsEveryDocumentedParameter) {
  ScenarioSpec spec = small_base();
  apply_param(spec, "workload", "HPC2N");
  apply_param(spec, "jobs", "5000");
  apply_param(spec, "procs", "256");
  apply_param(spec, "load", "1.25");
  apply_param(spec, "tail", "0.1");
  apply_param(spec, "tail_alpha", "2.5");
  apply_param(spec, "flurry", "true");
  apply_param(spec, "flurry_count", "77");
  apply_param(spec, "scrub", "1");
  apply_param(spec, "policy", "SJF");
  apply_param(spec, "backfill", "conservative");
  apply_param(spec, "estimate", "actual");
  apply_param(spec, "kill", "true");
  apply_param(spec, "max_backfills", "4");

  EXPECT_EQ(spec.workload, "HPC2N");
  EXPECT_EQ(spec.trace_jobs, 5000u);
  EXPECT_EQ(spec.machine_procs, 256);
  EXPECT_DOUBLE_EQ(spec.load_factor, 1.25);
  EXPECT_DOUBLE_EQ(spec.heavy_tail_prob, 0.1);
  EXPECT_DOUBLE_EQ(spec.heavy_tail_alpha, 2.5);
  EXPECT_TRUE(spec.inject_flurry);
  EXPECT_EQ(spec.flurry_count, 77u);
  EXPECT_TRUE(spec.scrub_flurries);
  EXPECT_EQ(spec.scheduler.policy, "SJF");
  EXPECT_EQ(spec.scheduler.backfill, sched::BackfillKind::Conservative);
  EXPECT_EQ(spec.scheduler.estimate, sched::EstimateKind::ActualRuntime);
  EXPECT_TRUE(spec.kill_exceeding_request);
  EXPECT_EQ(spec.max_backfills, 4u);
}

TEST(ApplyParam, NoiseSwitchesToNoisyEstimates) {
  ScenarioSpec spec = small_base();
  apply_param(spec, "noise", "0.2");
  EXPECT_EQ(spec.scheduler.estimate, sched::EstimateKind::Noisy);
  EXPECT_DOUBLE_EQ(spec.scheduler.noise_fraction, 0.2);
}

TEST(ApplyParam, AgentSetsAndClearsTheReference) {
  ScenarioSpec spec = small_base();
  apply_param(spec, "agent", "sdsc-fcfs");
  EXPECT_EQ(spec.scheduler.agent, "sdsc-fcfs");
  EXPECT_TRUE(spec.scheduler.uses_agent());
  apply_param(spec, "agent", "none");
  EXPECT_FALSE(spec.scheduler.uses_agent());
}

TEST(ApplyParam, RejectsUnknownParamAndBadValues) {
  ScenarioSpec spec = small_base();
  EXPECT_THROW(apply_param(spec, "bogus", "1"), std::invalid_argument);
  EXPECT_THROW(apply_param(spec, "load", "fast"), std::invalid_argument);
  EXPECT_THROW(apply_param(spec, "kill", "maybe"), std::invalid_argument);
  EXPECT_THROW(apply_param(spec, "backfill", "bogus"), std::invalid_argument);
}

TEST(ExpandGrid, CartesianProductInDeterministicOrder) {
  const auto specs = expand_grid(
      small_base(), parse_sweep("load=0.5,1.5;policy=FCFS,SJF"));
  ASSERT_EQ(specs.size(), 4u);
  // First axis varies slowest; names record the full assignment.
  EXPECT_EQ(specs[0].name, "sdsc-easy/load=0.5,policy=FCFS");
  EXPECT_EQ(specs[1].name, "sdsc-easy/load=0.5,policy=SJF");
  EXPECT_EQ(specs[2].name, "sdsc-easy/load=1.5,policy=FCFS");
  EXPECT_EQ(specs[3].name, "sdsc-easy/load=1.5,policy=SJF");
  EXPECT_DOUBLE_EQ(specs[0].load_factor, 0.5);
  EXPECT_EQ(specs[3].scheduler.policy, "SJF");
}

TEST(ExpandGrid, NoAxesYieldsTheBase) {
  const auto specs = expand_grid(small_base(), {});
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].name, "sdsc-easy");
}

TEST(RunSweep, ResultsComeBackInSpecOrder) {
  const auto specs =
      expand_grid(small_base(), parse_sweep("policy=FCFS,SJF,WFP3"));
  SweepOptions options;
  options.seed = 3;
  options.threads = 2;
  const auto runs = run_sweep(specs, options);
  ASSERT_EQ(runs.size(), 3u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].scenario, specs[i].name);
    EXPECT_EQ(runs[i].seed, 3u);
    EXPECT_EQ(runs[i].jobs, 200u);
  }
}

TEST(RunSweep, ReplicationSeedsAreSplitDeterministically) {
  const std::vector<ScenarioSpec> specs = {small_base()};
  SweepOptions options;
  options.seed = 5;
  options.replications = 3;
  const auto a = run_sweep(specs, options);
  const auto b = run_sweep(specs, options);
  ASSERT_EQ(a.size(), 3u);
  // Replication 0 runs at the master seed; others at split seeds.
  EXPECT_EQ(a[0].seed, 5u);
  EXPECT_NE(a[1].seed, a[0].seed);
  EXPECT_NE(a[2].seed, a[1].seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_DOUBLE_EQ(a[i].metrics.avg_bounded_slowdown,
                     b[i].metrics.avg_bounded_slowdown);
  }
}

}  // namespace
}  // namespace rlbf::exp
