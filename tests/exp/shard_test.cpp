#include "exp/shard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "exp/sweep.h"

namespace rlbf::exp {
namespace {

namespace fs = std::filesystem;

TEST(ParseShard, ParsesValidSpecs) {
  const ShardSpec all = parse_shard("0/1");
  EXPECT_EQ(all.index, 0u);
  EXPECT_EQ(all.count, 1u);
  EXPECT_TRUE(all.is_all());
  const ShardSpec two = parse_shard("2/5");
  EXPECT_EQ(two.index, 2u);
  EXPECT_EQ(two.count, 5u);
  EXPECT_FALSE(two.is_all());
  EXPECT_EQ(two.label(), "2/5");
}

TEST(ParseShard, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_shard(""), std::invalid_argument);
  EXPECT_THROW(parse_shard("3"), std::invalid_argument);        // no '/'
  EXPECT_THROW(parse_shard("x/y"), std::invalid_argument);      // junk
  EXPECT_THROW(parse_shard("1.5/3"), std::invalid_argument);    // non-integer
  EXPECT_THROW(parse_shard("-1/3"), std::invalid_argument);     // negative
  EXPECT_THROW(parse_shard("0/0"), std::invalid_argument);      // count 0
  EXPECT_THROW(parse_shard("3/3"), std::invalid_argument);      // out of range
  EXPECT_THROW(parse_shard("1/2/3"), std::invalid_argument);    // extra field
}

TEST(ShardIndices, SingleShardOwnsEverythingInOrder) {
  const auto indices = shard_instance_indices(5, parse_shard("0/1"));
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ShardIndices, PartitionIsDisjointCompleteAndOrdered) {
  const std::size_t total = 11;
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < 3; ++i) {
    ShardSpec shard;
    shard.index = i;
    shard.count = 3;
    const auto indices = shard_instance_indices(total, shard);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      EXPECT_LT(indices[k], total);
      if (k > 0) EXPECT_LT(indices[k - 1], indices[k]);  // ascending
      EXPECT_TRUE(seen.insert(indices[k]).second)
          << "instance " << indices[k] << " owned by two shards";
    }
  }
  EXPECT_EQ(seen.size(), total);  // no gaps
}

TEST(ShardIndices, ShardsBeyondInstanceCountComeBackEmpty) {
  ShardSpec last;
  last.index = 4;
  last.count = 5;
  EXPECT_TRUE(shard_instance_indices(3, last).empty());
  EXPECT_TRUE(shard_instance_indices(0, last).empty());
}

TEST(RunSweepInstances, RejectsBadShardConfigurations) {
  SweepOptions options;
  options.shard_count = 0;
  EXPECT_THROW(run_sweep_instances(4, options), std::invalid_argument);
  options.shard_count = 2;
  options.shard_index = 2;
  EXPECT_THROW(run_sweep_instances(4, options), std::invalid_argument);
}

TEST(RunSweepInstances, CoversTheReplicatedGrid) {
  SweepOptions options;
  options.replications = 3;
  options.shard_index = 1;
  options.shard_count = 2;
  // 2 specs x 3 replications = 6 instances; shard 1/2 owns the odd ones.
  EXPECT_EQ(run_sweep_instances(2, options),
            (std::vector<std::size_t>{1, 3, 5}));
}

// The distributed-execution contract: running every shard and stitching
// the results back together in global order reproduces the unsharded
// sweep byte for byte (the seeds are fixed before partitioning).
TEST(RunSweep, ShardUnionIsByteIdenticalToUnshardedRun) {
  ScenarioSpec base = find_scenario("sdsc-easy");
  base.trace_jobs = 200;
  const auto specs = expand_grid(base, parse_sweep("policy=FCFS,SJF"));

  SweepOptions options;
  options.seed = 11;
  options.threads = 2;
  options.replications = 2;
  const std::vector<ScenarioRun> full = run_sweep(specs, options);
  ASSERT_EQ(full.size(), 4u);

  std::vector<std::string> stitched(full.size());
  for (std::size_t i = 0; i < 3; ++i) {
    SweepOptions shard_options = options;
    shard_options.shard_index = i;
    shard_options.shard_count = 3;
    const auto instances = run_sweep_instances(specs.size(), shard_options);
    const auto runs = run_sweep(specs, shard_options);
    ASSERT_EQ(runs.size(), instances.size());
    for (std::size_t k = 0; k < runs.size(); ++k) {
      stitched[instances[k]] = summary_csv_row(summarize(runs[k]));
    }
  }
  for (std::size_t g = 0; g < full.size(); ++g) {
    EXPECT_EQ(stitched[g], summary_csv_row(summarize(full[g])))
        << "instance " << g << " differs between sharded and unsharded runs";
  }
}

// ---- shard file round trip + merge ----

SummaryRow row_for(std::size_t g) {
  SummaryRow row;
  row.scenario = "scn/load=" + std::to_string(g);
  // Hostile labels: commas and quotes everywhere, and (on odd rows) an
  // embedded newline — csv_escape quotes it across physical lines, and
  // the shard reader must reassemble the logical row.
  row.label = "label, with \"quotes\"" + std::string(g % 2 ? "\nline2" : "") +
              " #" + std::to_string(g);
  row.seed = 7;
  row.jobs = 100 + g;
  row.bsld = 1.5 * static_cast<double>(g + 1);
  row.avg_wait = 3.25;
  row.utilization = 0.5;
  row.backfilled = static_cast<double>(g);
  row.killed = 0.0;
  return row;
}

struct ShardSet {
  std::string dir;
  std::vector<SummaryRow> all_rows;
  std::vector<std::string> csv_paths;
  std::vector<std::string> json_paths;
};

/// Write `total` synthetic rows as a complete `count`-way shard set.
ShardSet write_shard_set(const std::string& name, std::size_t total,
                         std::size_t count) {
  ShardSet set;
  set.dir = ::testing::TempDir() + "/rlbf_shard_" + name;
  fs::remove_all(set.dir);
  fs::create_directories(set.dir);
  for (std::size_t g = 0; g < total; ++g) set.all_rows.push_back(row_for(g));
  for (std::size_t i = 0; i < count; ++i) {
    ShardSummary summary;
    summary.shard.index = i;
    summary.shard.count = count;
    summary.total_instances = total;
    summary.instances = shard_instance_indices(total, summary.shard);
    for (const std::size_t g : summary.instances) {
      summary.rows.push_back(set.all_rows[g]);
    }
    const std::string csv =
        set.dir + "/" + shard_summary_filename(summary.shard, "csv");
    const std::string json =
        set.dir + "/" + shard_summary_filename(summary.shard, "json");
    EXPECT_TRUE(save_shard_summary_csv(csv, summary));
    EXPECT_TRUE(save_shard_summary_json(json, summary));
    set.csv_paths.push_back(csv);
    set.json_paths.push_back(json);
  }
  return set;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string canonical_csv(const std::vector<SummaryRow>& rows) {
  std::ostringstream os;
  write_summary_csv(os, rows);
  return os.str();
}

std::string canonical_json(const std::vector<SummaryRow>& rows) {
  std::ostringstream os;
  write_summary_json(os, rows);
  return os.str();
}

TEST(MergeShards, RestoresTheCanonicalFilesByteForByte) {
  const ShardSet set = write_shard_set("roundtrip", 7, 3);
  const std::string out_csv = set.dir + "/summary.csv";
  const std::string out_json = set.dir + "/summary.json";
  merge_shard_summaries_csv(set.csv_paths, out_csv);
  merge_shard_summaries_json(set.json_paths, out_json);
  EXPECT_EQ(read_file(out_csv), canonical_csv(set.all_rows));
  EXPECT_EQ(read_file(out_json), canonical_json(set.all_rows));
}

TEST(MergeShards, AcceptsEmptyShardsWhenCountExceedsInstances) {
  // 2 instances across 4 shards: shards 2 and 3 are empty but valid.
  const ShardSet set = write_shard_set("empty", 2, 4);
  const std::string out_csv = set.dir + "/summary.csv";
  merge_shard_summaries_csv(set.csv_paths, out_csv);
  EXPECT_EQ(read_file(out_csv), canonical_csv(set.all_rows));
}

/// EXPECT a merge failure whose message contains `needle`.
template <typename Fn>
void expect_merge_error(const Fn& merge_call, const std::string& needle) {
  try {
    merge_call();
    FAIL() << "expected a merge error mentioning '" << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error '" << e.what() << "' does not mention '" << needle << "'";
  }
}

TEST(MergeShards, NamesMissingShards) {
  const ShardSet set = write_shard_set("missingshard", 6, 3);
  const std::vector<std::string> partial = {set.csv_paths[0], set.csv_paths[2]};
  expect_merge_error(
      [&] { merge_shard_summaries_csv(partial, set.dir + "/out.csv"); },
      "missing shard 1/3");
}

TEST(MergeShards, NamesDuplicateShards) {
  const ShardSet set = write_shard_set("dupshard", 6, 3);
  std::vector<std::string> inputs = set.csv_paths;
  inputs.push_back(set.csv_paths[1]);
  expect_merge_error(
      [&] { merge_shard_summaries_csv(inputs, set.dir + "/out.csv"); },
      "duplicate shard 1/3");
}

/// Overwrite shard 1 of a 2-way, 4-instance set with the given claimed
/// instances (rows are synthesized to match).
void rewrite_shard1(const ShardSet& set, const std::vector<std::size_t>& owns) {
  ShardSummary summary;
  summary.shard.index = 1;
  summary.shard.count = 2;
  summary.total_instances = 4;
  summary.instances = owns;
  for (const std::size_t g : owns) summary.rows.push_back(row_for(g));
  ASSERT_TRUE(save_shard_summary_csv(set.csv_paths[1], summary));
}

TEST(MergeShards, NamesDuplicateInstances) {
  const ShardSet set = write_shard_set("dupinstance", 4, 2);
  // Shard 1 claims instance 0, which shard 0 also owns.
  rewrite_shard1(set, {0, 3});
  expect_merge_error(
      [&] { merge_shard_summaries_csv(set.csv_paths, set.dir + "/out.csv"); },
      "duplicate instance 0");
}

TEST(MergeShards, NamesGapsInTheInstanceSet) {
  const ShardSet set = write_shard_set("gap", 4, 2);
  // Shard 1 lost instance 1's row: a gap, not a missing shard.
  rewrite_shard1(set, {3});
  expect_merge_error(
      [&] { merge_shard_summaries_csv(set.csv_paths, set.dir + "/out.csv"); },
      "missing instance 1");
}

TEST(MergeShards, NamesInconsistentShardSets) {
  const ShardSet a = write_shard_set("mixed_a", 4, 2);
  const ShardSet b = write_shard_set("mixed_b", 6, 2);
  const std::vector<std::string> inputs = {a.csv_paths[0], b.csv_paths[1]};
  expect_merge_error(
      [&] { merge_shard_summaries_csv(inputs, a.dir + "/out.csv"); },
      "inconsistent shard set");
}

TEST(MergeShards, RejectsFilesWithoutShardHeaders) {
  const std::string dir = ::testing::TempDir() + "/rlbf_shard_noheader";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::ofstream(dir + "/summary-shard0of1.csv") << "scenario,label\nplain,row\n";
  expect_merge_error(
      [&] {
        merge_shard_summaries_csv({dir + "/summary-shard0of1.csv"},
                                  dir + "/out.csv");
      },
      "not a shard summary");
}

TEST(MergeShardDirs, MergesBothFamiliesAndReportsCounts) {
  const ShardSet set = write_shard_set("dirs", 5, 2);
  // Split the files across two "machines" plus a per-job artifact each —
  // named as the instances' runs would have named them (scenario + seed).
  const std::string dir_a = set.dir + "/a";
  const std::string dir_b = set.dir + "/b";
  fs::create_directories(dir_a);
  fs::create_directories(dir_b);
  for (const std::string& path : {set.csv_paths[0], set.json_paths[0]}) {
    fs::copy_file(path, dir_a + "/" + fs::path(path).filename().string());
  }
  for (const std::string& path : {set.csv_paths[1], set.json_paths[1]}) {
    fs::copy_file(path, dir_b + "/" + fs::path(path).filename().string());
  }
  // Each shard's instances contribute their per-job file (0,2,4 landed
  // on shard 0 in dir_a; 1,3 on shard 1 in dir_b).
  for (const std::size_t g : {0u, 2u, 4u}) {
    std::ofstream(dir_a + "/" + per_job_filename(row_for(g).scenario, 7))
        << "job_index\n" << g << "\n";
  }
  for (const std::size_t g : {1u, 3u}) {
    std::ofstream(dir_b + "/" + per_job_filename(row_for(g).scenario, 7))
        << "job_index\n" << g << "\n";
  }

  const std::string merged = set.dir + "/merged";
  const MergeReport report = merge_shard_dirs({dir_a, dir_b}, merged);
  EXPECT_EQ(report.shard_count, 2u);
  EXPECT_EQ(report.total_instances, 5u);
  EXPECT_TRUE(report.csv_merged);
  EXPECT_TRUE(report.json_merged);
  EXPECT_EQ(report.per_job_files_copied, 5u);
  EXPECT_EQ(read_file(merged + "/summary.csv"), canonical_csv(set.all_rows));
  EXPECT_EQ(read_file(merged + "/summary.json"), canonical_json(set.all_rows));
  for (std::size_t g = 0; g < 5; ++g) {
    EXPECT_TRUE(
        fs::exists(merged + "/" + per_job_filename(row_for(g).scenario, 7)))
        << g;
  }

  // Re-running the merge into the same directory is idempotent.
  const MergeReport again = merge_shard_dirs({dir_a, dir_b}, merged);
  EXPECT_EQ(again.per_job_files_copied, 5u);
  EXPECT_EQ(read_file(merged + "/summary.csv"), canonical_csv(set.all_rows));

  // Dropping one instance's per-job file (a lost transfer) is a named
  // error once any per-job output exists; dropping ALL of them means
  // the sweep ran without per-job output and stays valid.
  fs::remove(dir_b + "/" + per_job_filename(row_for(3).scenario, 7));
  expect_merge_error(
      [&] { merge_shard_dirs({dir_a, dir_b}, set.dir + "/merged2"); },
      "missing per-job file");
  for (const std::size_t g : {0u, 2u, 4u}) {
    fs::remove(dir_a + "/" + per_job_filename(row_for(g).scenario, 7));
  }
  fs::remove(dir_b + "/" + per_job_filename(row_for(1).scenario, 7));
  const MergeReport no_jobs = merge_shard_dirs({dir_a, dir_b}, set.dir + "/m3");
  EXPECT_EQ(no_jobs.per_job_files_copied, 0u);
}

TEST(MergeShardDirs, RejectsPerJobFilesFromAnotherSweep) {
  const ShardSet set = write_shard_set("stalejobs", 3, 1);
  const std::string dir = set.dir + "/m";
  fs::create_directories(dir);
  fs::copy_file(set.csv_paths[0],
                dir + "/" + fs::path(set.csv_paths[0]).filename().string());
  // A leftover per-job file no instance of this sweep writes (different
  // scenario/seed — e.g. the directory was reused across sweeps).
  std::ofstream(dir + "/jobs-other-sweep-s99.csv") << "job_index\n0\n";
  expect_merge_error([&] { merge_shard_dirs({dir}, set.dir + "/out"); },
                     "unexpected per-job file");
}

TEST(MergeShardDirs, FailsWhenNoShardSummariesExist) {
  const std::string dir = ::testing::TempDir() + "/rlbf_shard_none";
  fs::remove_all(dir);
  fs::create_directories(dir);
  expect_merge_error([&] { merge_shard_dirs({dir}, dir + "/out"); },
                     "no shard summaries");
}

}  // namespace
}  // namespace rlbf::exp
