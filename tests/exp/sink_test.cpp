#include "exp/sink.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <limits>
#include <locale>
#include <sstream>

#include "exp/config.h"

namespace rlbf::exp {
namespace {

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
}

// Regression: a scenario label containing control characters used to be
// emitted raw, producing invalid JSON (a literal newline inside a
// string). Every byte < 0x20 must leave as an escape.
TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("cr\rlf\n"), "cr\\rlf\\n");
  EXPECT_EQ(json_escape(std::string("nul\x01\x1f!")), "nul\\u0001\\u001f!");
}

TEST(WriteSummaryJson, InfinityRendersAsNullNotBareInf) {
  SummaryRow row;
  row.scenario = "s";
  row.label = "l";
  row.bsld = std::numeric_limits<double>::infinity();
  row.avg_wait = -std::numeric_limits<double>::infinity();
  std::ostringstream os;
  write_summary_json(os, {row});
  // "inf" has no JSON literal; a degenerate metric must not poison the
  // whole summary file.
  EXPECT_NE(os.str().find("\"bsld\": null"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("\"avg_wait\": null"), std::string::npos) << os.str();
  EXPECT_EQ(os.str().find("inf"), std::string::npos) << os.str();
}

TEST(WriteSummaryJson, HostileLabelStaysValidJson) {
  SummaryRow row;
  row.scenario = "scn\nwith\tnewline";
  row.label = "label \"quoted\" \x02";
  row.seed = 1;
  row.jobs = 10;
  row.bsld = 2.5;
  std::ostringstream os;
  write_summary_json(os, {row});
  const std::string out = os.str();
  // No raw control bytes may survive inside the emitted strings: the
  // only newlines are the structural ones between JSON lines.
  EXPECT_NE(out.find("scn\\nwith\\tnewline"), std::string::npos) << out;
  EXPECT_NE(out.find("label \\\"quoted\\\" \\u0002"), std::string::npos) << out;
  EXPECT_EQ(out.find("scn\nwith"), std::string::npos) << out;
}

TEST(Formatting, MetricAndCountRenderings) {
  EXPECT_EQ(format_metric(3.14), "3.14");
  EXPECT_EQ(format_metric(0.0), "0");
  EXPECT_EQ(format_metric(123456.75), "123457");  // %.6g rounding
  EXPECT_EQ(format_metric(std::nan("")), "");
  EXPECT_EQ(format_count(42.0), "42");
  EXPECT_EQ(format_count(std::nan("")), "");
}

// The golden-portability fix: output formatting is pinned to the C
// locale, so a host (or embedding process) running with a comma-decimal
// LC_NUMERIC cannot turn "3.14" into "3,14" in CSVs and goldens. The
// assertions run either way; when no comma-decimal locale is installed
// they still pin the C-locale behavior.
TEST(Formatting, CommaDecimalLocaleCannotLeakIntoOutput) {
  const std::string saved = std::setlocale(LC_NUMERIC, nullptr);
  const char* candidates[] = {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8",
                              "fr_FR",       "nl_NL", "C.UTF-8"};
  std::string active;
  for (const char* name : candidates) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      active = name;
      break;
    }
  }

  EXPECT_EQ(format_metric(3.14), "3.14") << "under locale " << active;
  EXPECT_EQ(format_metric(0.5), "0.5");
  EXPECT_EQ(format_count(1234.0), "1234");
  EXPECT_EQ(format_double_exact(0.5), "0.5");
  EXPECT_EQ(format_double_exact(3.5), "3.5");

  // Parsing is pinned the same way, both directions of the shard story:
  // values formatted on one host must parse on any other.
  double value = 0.0;
  EXPECT_TRUE(parse_number("3.14", &value));
  EXPECT_DOUBLE_EQ(value, 3.14);

  SummaryRow row;
  row.scenario = "s";
  row.label = "l";
  row.seed = 1;
  row.jobs = 1;
  row.bsld = 2.75;
  row.avg_wait = 1.5;
  row.utilization = 0.25;
  std::ostringstream os;
  write_summary_csv(os, {row});
  EXPECT_NE(os.str().find("2.75,1.5,0.25"), std::string::npos) << os.str();
  EXPECT_EQ(os.str().find("2,75"), std::string::npos) << os.str();

  std::setlocale(LC_NUMERIC, saved.c_str());
}

// std::locale::global (unlike setlocale) reaches C++ stream insertion:
// without pinning, seed=100000 would render as "100.000" under a
// grouping locale — a phantom CSV column. A custom facet makes the test
// independent of which OS locales are installed.
TEST(Formatting, GlobalCppLocaleGroupingCannotLeakIntoOutput) {
  struct GroupingPunct : std::numpunct<char> {
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
    char do_decimal_point() const override { return ','; }
  };
  const std::locale previous =
      std::locale::global(std::locale(std::locale::classic(), new GroupingPunct));

  SummaryRow row;
  row.scenario = "s";
  row.label = "l";
  row.seed = 100000;
  row.jobs = 12345;
  row.bsld = 2.5;
  EXPECT_NE(summary_csv_row(row).find("100000,12345,2.5"), std::string::npos)
      << summary_csv_row(row);
  EXPECT_NE(summary_json_row(row).find("\"seed\": 100000, \"jobs\": 12345"),
            std::string::npos)
      << summary_json_row(row);

  ScenarioRun run;
  sim::JobResult result;
  result.job_index = 123456;
  result.submit_time = 1000000;
  run.results.push_back(result);
  std::ostringstream os;
  write_per_job_csv(os, run);
  EXPECT_NE(os.str().find("123456,1000000"), std::string::npos) << os.str();

  std::locale::global(previous);
}

TEST(SanitizeFilename, MapsSeparatorsToUnderscores) {
  EXPECT_EQ(sanitize_filename("sdsc-easy/load=0.5,policy=SJF"),
            "sdsc-easy_load_0.5_policy_SJF");
}

}  // namespace
}  // namespace rlbf::exp
