#include "exp/scenario.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "model/train.h"

namespace rlbf::exp {
namespace {

// A tiny spec for tests that actually simulate.
ScenarioSpec small(const std::string& name, std::size_t jobs = 300) {
  ScenarioSpec spec = find_scenario(name);
  spec.trace_jobs = jobs;
  return spec;
}

TEST(ScenarioRegistry, CatalogHasAtLeastEightScenarios) {
  EXPECT_GE(scenario_names().size(), 8u);
}

TEST(ScenarioRegistry, LookupByNameReturnsMatchingSpec) {
  const ScenarioSpec& spec = find_scenario("sdsc-flurry");
  EXPECT_EQ(spec.name, "sdsc-flurry");
  EXPECT_TRUE(spec.inject_flurry);
  EXPECT_FALSE(spec.scrub_flurries);
  EXPECT_EQ(spec.workload, "SDSC-SP2");
}

TEST(ScenarioRegistry, UnknownNameThrowsWithCatalog) {
  try {
    find_scenario("no-such-scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no-such-scenario"), std::string::npos);
    // The error lists what IS available.
    EXPECT_NE(message.find("sdsc-easy"), std::string::npos);
  }
}

TEST(ScenarioRegistry, RejectsDuplicateAndEmptyNames) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "a";
  registry.add(spec);
  EXPECT_THROW(registry.add(spec), std::invalid_argument);
  spec.name.clear();
  EXPECT_THROW(registry.add(spec), std::invalid_argument);
  EXPECT_TRUE(registry.contains("a"));
  EXPECT_FALSE(registry.contains("b"));
}

TEST(ScenarioRegistry, EveryBuiltinBuildsATrace) {
  for (const std::string& name : scenario_names()) {
    ScenarioSpec spec = small(name, 120);
    const swf::Trace trace = build_trace(spec, 1);
    EXPECT_GE(trace.size(), 100u) << name;
    EXPECT_NO_THROW(trace.validate()) << name;
  }
}

TEST(Scenario, BuildTraceIsDeterministic) {
  const ScenarioSpec spec = small("sdsc-heavytail");
  const swf::Trace a = build_trace(spec, 9);
  const swf::Trace b = build_trace(spec, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].run_time, b[i].run_time);
    EXPECT_EQ(a[i].requested_time, b[i].requested_time);
  }
  // A different seed produces a different workload.
  const swf::Trace c = build_trace(spec, 10);
  bool any_diff = c.size() != a.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = a[i].run_time != c[i].run_time;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Scenario, MachineProcsOverrideRetargetsTheCluster) {
  ScenarioSpec spec = small("sdsc-easy");
  spec.machine_procs = 64;
  const swf::Trace trace = build_trace(spec, 1);
  EXPECT_EQ(trace.machine_procs(), 64);
  EXPECT_NO_THROW(trace.validate());  // no job wider than the new machine
  // Default (0) keeps the preset's cluster size.
  EXPECT_EQ(build_trace(small("sdsc-easy"), 1).machine_procs(), 128);
}

TEST(Scenario, UnknownWorkloadThrows) {
  ScenarioSpec spec = find_scenario("sdsc-easy");
  spec.workload = "NO-SUCH-TRACE";
  EXPECT_THROW(build_trace(spec, 1), std::invalid_argument);
}

TEST(Scenario, FlurryInjectionAndScrubbingChangeJobCounts) {
  const ScenarioSpec clean = small("sdsc-easy");
  ScenarioSpec flurried = small("sdsc-flurry");
  flurried.flurry_count = 100;
  ScenarioSpec scrubbed = small("sdsc-flurry-scrubbed");
  scrubbed.flurry_count = 100;

  TraceBuildInfo info;
  const std::size_t clean_jobs = build_trace(clean, 1).size();
  EXPECT_EQ(build_trace(flurried, 1).size(), clean_jobs + 100);
  const std::size_t scrubbed_jobs = build_trace(scrubbed, 1, &info).size();
  EXPECT_EQ(scrubbed_jobs, clean_jobs);
  EXPECT_EQ(info.flurry.removed_jobs, 100u);
  EXPECT_EQ(info.flurry.flagged_users, 1u);
}

TEST(Scenario, RunScenarioProducesConsistentMetrics) {
  const ScenarioRun run = run_scenario(small("sdsc-easy"), 3);
  EXPECT_EQ(run.scenario, "sdsc-easy");
  EXPECT_EQ(run.seed, 3u);
  EXPECT_EQ(run.jobs, 300u);
  EXPECT_EQ(run.results.size(), 300u);
  EXPECT_GT(run.metrics.avg_bounded_slowdown, 0.0);
  EXPECT_GT(run.metrics.utilization, 0.0);

  const ScenarioRun again = run_scenario(small("sdsc-easy"), 3);
  EXPECT_DOUBLE_EQ(run.metrics.avg_bounded_slowdown,
                   again.metrics.avg_bounded_slowdown);
  EXPECT_EQ(run.metrics.backfilled_jobs, again.metrics.backfilled_jobs);
}

TEST(Scenario, KillScenarioKillsOverrunners) {
  // Heavy-tail stretches runtimes past their (kept) requests; under the
  // kill contract those jobs must come back flagged.
  ScenarioSpec spec = small("sdsc-heavytail-kill", 600);
  spec.heavy_tail_prob = 0.3;
  const ScenarioRun run = run_scenario(spec, 5);
  EXPECT_GT(run.metrics.killed_jobs, 0u);

  ScenarioSpec no_kill = spec;
  no_kill.kill_exceeding_request = false;
  EXPECT_EQ(run_scenario(no_kill, 5).metrics.killed_jobs, 0u);
}

TEST(Scenario, NoisyEstimateSeedDerivesFromRunSeed) {
  const ScenarioSpec spec = small("sdsc-noisy20");
  const ScenarioRun a = run_scenario(spec, 11);
  const ScenarioRun b = run_scenario(spec, 11);
  EXPECT_DOUBLE_EQ(a.metrics.avg_bounded_slowdown, b.metrics.avg_bounded_slowdown);
}

TEST(Scenario, EvaluateScenarioMatchesDirectProtocolEvaluation) {
  const ScenarioSpec spec = small("sdsc-easy", 800);
  core::EvalProtocol protocol;
  protocol.samples = 3;
  protocol.sample_jobs = 200;
  protocol.seed = 2;
  const core::EvalResult via_engine = evaluate_scenario(spec, protocol);
  const core::EvalResult direct =
      core::evaluate_spec(build_trace(spec, 2), spec.scheduler, protocol);
  EXPECT_DOUBLE_EQ(via_engine.mean, direct.mean);
  ASSERT_EQ(via_engine.samples.size(), 3u);
}

TEST(TraceCache, SharedWorkloadFieldsHitOneEntry) {
  clear_trace_cache();
  ScenarioSpec spec = small("sdsc-easy", 400);
  const auto first = build_trace_cached(spec, 3);
  // A different scheduler does not change the workload-construction key.
  spec.scheduler.policy = "SJF";
  spec.scheduler.backfill = sched::BackfillKind::Conservative;
  const auto second = build_trace_cached(spec, 3);
  EXPECT_EQ(first.get(), second.get()) << "same workload fields must share a trace";

  const TraceCacheStats stats = trace_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // Different seed or workload field -> distinct entries.
  const auto other_seed = build_trace_cached(spec, 4);
  EXPECT_NE(first.get(), other_seed.get());
  spec.load_factor = 1.5;
  const auto other_load = build_trace_cached(spec, 3);
  EXPECT_NE(first.get(), other_load.get());
  EXPECT_EQ(trace_cache_stats().misses, 3u);
}

TEST(TraceCache, CachedTraceEqualsDirectBuild) {
  clear_trace_cache();
  const ScenarioSpec spec = small("sdsc-flurry-scrubbed", 400);
  TraceBuildInfo direct_info;
  const swf::Trace direct = build_trace(spec, 5, &direct_info);
  TraceBuildInfo cached_info;
  const auto cached = build_trace_cached(spec, 5, &cached_info);
  ASSERT_EQ(cached->size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ((*cached)[i].submit_time, direct[i].submit_time);
    EXPECT_EQ((*cached)[i].run_time, direct[i].run_time);
  }
  // Side data (the flurry scrub report) round-trips through the cache.
  EXPECT_EQ(cached_info.flurry.removed_jobs, direct_info.flurry.removed_jobs);
  EXPECT_EQ(cached_info.flurry.flagged_users, direct_info.flurry.flagged_users);
}

TEST(TraceCache, RunScenarioResultsUnchangedByCaching) {
  const ScenarioSpec spec = small("sdsc-easy", 400);
  clear_trace_cache();
  const ScenarioRun cold = run_scenario(spec, 9);
  const ScenarioRun warm = run_scenario(spec, 9);  // cache hit path
  EXPECT_EQ(cold.metrics.avg_bounded_slowdown, warm.metrics.avg_bounded_slowdown);
  EXPECT_EQ(cold.jobs, warm.jobs);
  EXPECT_GE(trace_cache_stats().hits, 1u);
}

TEST(Scenario, TrainedAgentScenariosAreRegistered) {
  for (const char* name :
       {"sdsc-rlbf", "sdsc-sjf-rlbf", "hpc2n-rlbf-transfer", "sdsc-tiny-rlbf"}) {
    const ScenarioSpec& spec = find_scenario(name);
    EXPECT_TRUE(spec.scheduler.uses_agent()) << name;
    EXPECT_NE(spec.label().find("RLBF"), std::string::npos) << name;
  }
  EXPECT_EQ(find_scenario("sdsc-rlbf").scheduler.agent, "sdsc-fcfs");
  EXPECT_EQ(find_scenario("hpc2n-rlbf-transfer").workload, "HPC2N");
}

// Every registered ablation arm gets a same-named evaluation scenario:
// arm workload, arm base policy, agent reference = the arm itself.
TEST(Scenario, EveryAblationArmHasAMatchingScenario) {
  const auto arms = model::ablation_arm_names();
  ASSERT_GE(arms.size(), 25u);
  for (const std::string& arm : arms) {
    ASSERT_TRUE(ScenarioRegistry::instance().contains(arm)) << arm;
    const ScenarioSpec& spec = find_scenario(arm);
    const model::TrainingSpec& training = model::find_training_spec(arm);
    EXPECT_EQ(spec.scheduler.agent, arm);
    EXPECT_EQ(spec.workload, training.workload.workload) << arm;
    EXPECT_EQ(spec.trace_jobs, training.workload.trace_jobs) << arm;
    EXPECT_EQ(spec.scheduler.policy, training.trainer.base_policy) << arm;
  }
  // Spot checks: the transfer source evaluates on its own workload.
  EXPECT_EQ(find_scenario("abl-transfer-source").workload, "Lublin-1");
  EXPECT_EQ(find_scenario("abl-control").workload, "SDSC-SP2");
}

TEST(Scenario, AgentScenarioWithEmptyStoreThrowsActionableError) {
  model::set_default_store_root(::testing::TempDir() + "/rlbf_scenario_nostore");
  model::clear_agent_cache();
  ScenarioSpec spec = find_scenario("sdsc-rlbf");
  spec.trace_jobs = 300;
  try {
    run_scenario(spec, 1);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rlbf_run train"), std::string::npos);
  }
}

TEST(Scenario, EnumNamesRoundTrip) {
  for (const auto kind :
       {sched::BackfillKind::None, sched::BackfillKind::Easy,
        sched::BackfillKind::EasySjf, sched::BackfillKind::EasyBestFit,
        sched::BackfillKind::EasyWorstFit, sched::BackfillKind::Conservative,
        sched::BackfillKind::Slack}) {
    EXPECT_EQ(parse_backfill_kind(backfill_kind_name(kind)), kind);
  }
  for (const auto kind :
       {sched::EstimateKind::RequestTime, sched::EstimateKind::ActualRuntime,
        sched::EstimateKind::Noisy}) {
    EXPECT_EQ(parse_estimate_kind(estimate_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_backfill_kind("bogus"), std::invalid_argument);
  EXPECT_THROW(parse_estimate_kind("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace rlbf::exp
