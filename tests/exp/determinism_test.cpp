// Golden-file determinism: the engine's promise is that a fixed seed
// produces BYTE-identical sink output no matter how many worker threads
// execute the sweep and no matter how often it is repeated. These tests
// diff the rendered CSV/JSON strings directly — exactly what
// `rlbf_run --out_dir` writes to disk.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "exp/sink.h"
#include "exp/sweep.h"

namespace rlbf::exp {
namespace {

std::vector<ScenarioSpec> small_grid() {
  ScenarioSpec base = find_scenario("sdsc-easy");
  base.trace_jobs = 200;
  return expand_grid(base, parse_sweep("load=0.75,1.25;policy=FCFS,SJF"));
}

std::string summary_csv(const std::vector<ScenarioRun>& runs) {
  std::vector<SummaryRow> rows;
  rows.reserve(runs.size());
  for (const ScenarioRun& run : runs) rows.push_back(summarize(run));
  std::ostringstream os;
  write_summary_csv(os, rows);
  return os.str();
}

std::string per_job_csv(const std::vector<ScenarioRun>& runs) {
  std::ostringstream os;
  for (const ScenarioRun& run : runs) write_per_job_csv(os, run);
  return os.str();
}

std::vector<ScenarioRun> run_grid(std::size_t threads, std::size_t reps = 1) {
  SweepOptions options;
  options.seed = 7;
  options.threads = threads;
  options.replications = reps;
  return run_sweep(small_grid(), options);
}

TEST(Determinism, SummaryCsvIsByteIdenticalAcrossRepeatedRuns) {
  const std::string first = summary_csv(run_grid(2));
  const std::string second = summary_csv(run_grid(2));
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("sdsc-easy/load=0.75,policy=FCFS"), std::string::npos);
}

TEST(Determinism, SummaryCsvIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = summary_csv(run_grid(1));
  const std::string parallel = summary_csv(run_grid(4));
  EXPECT_EQ(serial, parallel);
}

TEST(Determinism, PerJobCsvIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = per_job_csv(run_grid(1));
  const std::string parallel = per_job_csv(run_grid(4));
  EXPECT_EQ(serial, parallel);
  // Sanity: per-job output has one line per job plus a header per run.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(serial.begin(), serial.end(), '\n')),
            4u * (200u + 1u));
}

TEST(Determinism, MultiThreadedReplicatedSweepIsStable) {
  const std::string a = summary_csv(run_grid(4, 3));
  const std::string b = summary_csv(run_grid(3, 3));
  EXPECT_EQ(a, b);
}

TEST(Determinism, JsonSummaryIsStableToo) {
  const auto render = [](const std::vector<ScenarioRun>& runs) {
    std::vector<SummaryRow> rows;
    for (const ScenarioRun& run : runs) rows.push_back(summarize(run));
    std::ostringstream os;
    write_summary_json(os, rows);
    return os.str();
  };
  EXPECT_EQ(render(run_grid(1)), render(run_grid(4)));
}

TEST(Determinism, DifferentSeedsProduceDifferentBytes) {
  SweepOptions a7, a8;
  a7.seed = 7;
  a8.seed = 8;
  EXPECT_NE(summary_csv(run_sweep(small_grid(), a7)),
            summary_csv(run_sweep(small_grid(), a8)));
}

TEST(Sink, SanitizeFilenameKeepsSafeCharacters) {
  EXPECT_EQ(sanitize_filename("sdsc-easy/load=0.5,policy=SJF"),
            "sdsc-easy_load_0.5_policy_SJF");
  EXPECT_EQ(sanitize_filename("a b\"c"), "a_b_c");
}

TEST(Sink, SummaryCsvEscapesCommasInNames) {
  SummaryRow row;
  row.scenario = "s/load=0.5,policy=SJF";
  row.label = "plain";
  std::ostringstream os;
  write_summary_csv(os, {row});
  EXPECT_NE(os.str().find("\"s/load=0.5,policy=SJF\""), std::string::npos);
}

}  // namespace
}  // namespace rlbf::exp
