#include "sched/runtime_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "workload/presets.h"

namespace rlbf::sched {
namespace {

swf::Job make_job(std::int64_t id, std::int64_t run, std::int64_t request) {
  swf::Job j;
  j.id = id;
  j.run_time = run;
  j.requested_time = request;
  j.requested_procs = 1;
  return j;
}

TEST(Estimators, RequestTimeUsesUserEstimate) {
  RequestTimeEstimator e;
  EXPECT_EQ(e.estimate(make_job(1, 100, 3600)), 3600);
}

TEST(Estimators, RequestTimeFallsBackToRuntime) {
  RequestTimeEstimator e;
  EXPECT_EQ(e.estimate(make_job(1, 100, swf::kUnknown)), 100);
}

TEST(Estimators, RequestTimeFloorsAtOneSecond) {
  RequestTimeEstimator e;
  EXPECT_EQ(e.estimate(make_job(1, 0, swf::kUnknown)), 1);
}

TEST(Estimators, ActualRuntimeIsOracle) {
  ActualRuntimeEstimator e;
  EXPECT_EQ(e.estimate(make_job(1, 123, 99999)), 123);
  EXPECT_EQ(e.estimate(make_job(1, 0, 99999)), 1);
}

TEST(Estimators, NoisyRejectsNegativeFraction) {
  EXPECT_THROW(NoisyEstimator(-0.1, 1), std::invalid_argument);
}

TEST(Estimators, NoisyZeroFractionEqualsOracle) {
  NoisyEstimator e(0.0, 7);
  ActualRuntimeEstimator ar;
  for (int id = 1; id <= 50; ++id) {
    const auto j = make_job(id, 1000 + id, 1'000'000);
    EXPECT_EQ(e.estimate(j), ar.estimate(j));
  }
}

class NoisyFractionTest : public ::testing::TestWithParam<double> {};

TEST_P(NoisyFractionTest, EstimateWithinConfiguredBand) {
  const double frac = GetParam();
  NoisyEstimator e(frac, 13);
  for (int id = 1; id <= 500; ++id) {
    const auto j = make_job(id, 10000, 1'000'000);
    const auto est = e.estimate(j);
    EXPECT_GE(est, 10000);
    EXPECT_LE(est, static_cast<std::int64_t>(10000 * (1.0 + frac)) + 1);
  }
}

TEST_P(NoisyFractionTest, MeanInflationIsHalfTheBand) {
  const double frac = GetParam();
  NoisyEstimator e(frac, 29);
  double sum = 0.0;
  const int n = 20000;
  for (int id = 1; id <= n; ++id) {
    sum += static_cast<double>(e.estimate(make_job(id, 10000, 10'000'000)));
  }
  EXPECT_NEAR(sum / n, 10000.0 * (1.0 + frac / 2.0), 10000.0 * 0.01 + 5.0);
}

INSTANTIATE_TEST_SUITE_P(PaperNoiseLevels, NoisyFractionTest,
                         ::testing::Values(0.05, 0.10, 0.20, 0.40, 1.00));

TEST(Estimators, NoisyIsDeterministicPerJob) {
  NoisyEstimator e(0.4, 99);
  const auto j = make_job(17, 5000, 1'000'000);
  const auto first = e.estimate(j);
  for (int rep = 0; rep < 10; ++rep) EXPECT_EQ(e.estimate(j), first);
}

TEST(Estimators, NoisyDiffersAcrossJobs) {
  NoisyEstimator e(0.4, 99);
  int distinct = 0;
  std::int64_t prev = -1;
  for (int id = 1; id <= 100; ++id) {
    const auto est = e.estimate(make_job(id, 5000, 1'000'000));
    if (est != prev) ++distinct;
    prev = est;
  }
  EXPECT_GT(distinct, 50);
}

TEST(Estimators, NoisyClampsToRequestTime) {
  // Predictions never exceed the kill limit the user declared.
  NoisyEstimator e(1.0, 5);
  for (int id = 1; id <= 200; ++id) {
    const auto j = make_job(id, 5000, 6000);
    EXPECT_LE(e.estimate(j), 6000);
  }
}

TEST(Estimators, NoisyNamesIncludePercentage) {
  EXPECT_EQ(NoisyEstimator(0.2, 1).name(), "Noisy+20%");
  EXPECT_EQ(NoisyEstimator(1.0, 1).name(), "Noisy+100%");
}

namespace tsafrir {

swf::Job user_job(std::int64_t id, std::int64_t user, std::int64_t run,
                  std::int64_t request) {
  swf::Job j;
  j.id = id;
  j.submit_time = id * 10;
  j.user_id = user;
  j.run_time = run;
  j.requested_time = request;
  j.requested_procs = 1;
  return j;
}

swf::Trace history_trace() {
  // User 1 submits runs 100, 200, 400; user 2 submits one job.
  return swf::Trace("t", 8,
                    {user_job(1, 1, 100, 3600), user_job(2, 1, 200, 3600),
                     user_job(3, 1, 400, 3600), user_job(4, 2, 50, 600)});
}

TEST(TsafrirEstimator, FirstJobFallsBackToRequestTime) {
  const TsafrirEstimator e{history_trace()};
  EXPECT_EQ(e.estimate(history_trace()[0]), 3600);
  EXPECT_EQ(e.estimate(history_trace()[3]), 600);  // user 2's first job
}

TEST(TsafrirEstimator, SecondJobUsesSinglePreviousRuntime) {
  const TsafrirEstimator e{history_trace()};
  EXPECT_EQ(e.estimate(history_trace()[1]), 100);
}

TEST(TsafrirEstimator, ThirdJobAveragesLastTwo) {
  const TsafrirEstimator e{history_trace()};
  EXPECT_EQ(e.estimate(history_trace()[2]), (100 + 200) / 2);
}

TEST(TsafrirEstimator, PredictionsCappedAtRequestTime) {
  swf::Trace t("t", 8,
               {user_job(1, 1, 5000, 9000), user_job(2, 1, 5000, 9000),
                user_job(3, 1, 100, 1000)});  // history mean 5000 > request 1000
  const TsafrirEstimator e(t);
  EXPECT_EQ(e.estimate(t[2]), 1000);
}

TEST(TsafrirEstimator, CoverageCountsHistoryPredictions) {
  const TsafrirEstimator e{history_trace()};
  // Jobs 2 and 3 predicted from history out of 4 total.
  EXPECT_DOUBLE_EQ(e.coverage(), 0.5);
}

TEST(TsafrirEstimator, UnknownJobFallsBackGracefully) {
  const TsafrirEstimator e{history_trace()};
  const swf::Job stranger = user_job(999, 9, 70, 450);
  EXPECT_EQ(e.estimate(stranger), 450);
}

TEST(TsafrirEstimator, PredictsCloserThanRequestsOnRealisticTrace) {
  // On a synthetic archive-like trace, history predictions should have a
  // smaller mean absolute error vs actual runtimes than the (padded)
  // user requests do.
  const swf::Trace trace = workload::sdsc_sp2_like(55, 3000);
  const TsafrirEstimator tsafrir(trace);
  RequestTimeEstimator request;
  double err_tsafrir = 0.0, err_request = 0.0;
  for (const auto& j : trace.jobs()) {
    err_tsafrir += std::abs(static_cast<double>(tsafrir.estimate(j) - j.run_time));
    err_request += std::abs(static_cast<double>(request.estimate(j) - j.run_time));
  }
  EXPECT_LT(err_tsafrir, err_request);
  EXPECT_GT(tsafrir.coverage(), 0.9);  // 64 users over 3000 jobs
}

}  // namespace tsafrir

}  // namespace
}  // namespace rlbf::sched
