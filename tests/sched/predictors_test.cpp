#include "sched/predictors.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sched/runtime_estimator.h"
#include "workload/presets.h"

namespace rlbf::sched {
namespace {

swf::Job user_job(std::int64_t id, std::int64_t user, std::int64_t run,
                  std::int64_t request, std::int64_t exe = 1,
                  std::int64_t procs = 1) {
  swf::Job j;
  j.id = id;
  j.submit_time = id * 10;
  j.user_id = user;
  j.run_time = run;
  j.requested_time = request;
  j.requested_procs = procs;
  j.executable = exe;
  return j;
}

// ------------------------------------------------------------ RecentK --

TEST(RecentK, RejectsZeroK) {
  const swf::Trace t("t", 8, {user_job(1, 1, 100, 3600)});
  EXPECT_THROW(RecentKEstimator(t, 0), std::invalid_argument);
}

TEST(RecentK, FirstJobFallsBackToRequestTime) {
  const swf::Trace t("t", 8, {user_job(1, 1, 100, 3600)});
  const RecentKEstimator e(t, 3);
  EXPECT_EQ(e.estimate(t[0]), 3600);
  EXPECT_DOUBLE_EQ(e.coverage(), 0.0);
}

TEST(RecentK, AveragesUpToKPreviousRuntimes) {
  const swf::Trace t("t", 8,
                     {user_job(1, 1, 100, 9000), user_job(2, 1, 200, 9000),
                      user_job(3, 1, 400, 9000), user_job(4, 1, 800, 9000)});
  const RecentKEstimator e(t, 3);
  EXPECT_EQ(e.estimate(t[1]), 100);
  EXPECT_EQ(e.estimate(t[2]), 150);             // (100+200)/2
  EXPECT_EQ(e.estimate(t[3]), (100 + 200 + 400) / 3);
}

TEST(RecentK, WindowSlidesPastOldRuntimes) {
  const swf::Trace t("t", 8,
                     {user_job(1, 1, 1000, 9000), user_job(2, 1, 10, 9000),
                      user_job(3, 1, 10, 9000), user_job(4, 1, 10, 9000)});
  const RecentKEstimator e(t, 2);
  // Job 4 sees only runs {10, 10}: the 1000 has left the window.
  EXPECT_EQ(e.estimate(t[3]), 10);
}

TEST(RecentK, KOf2MatchesTsafrirOnSharedHistory) {
  const swf::Trace t = workload::sdsc_sp2_like(77, 800);
  const RecentKEstimator recent2(t, 2);
  const TsafrirEstimator tsafrir(t);
  std::size_t close = 0;
  for (const auto& j : t.jobs()) {
    // Integer rounding differs ((a+b)/2 truncation vs llround), so allow
    // one second of slack.
    if (std::llabs(recent2.estimate(j) - tsafrir.estimate(j)) <= 1) ++close;
  }
  EXPECT_EQ(close, t.size());
}

TEST(RecentK, UsersDoNotShareHistory) {
  const swf::Trace t("t", 8,
                     {user_job(1, 1, 100, 9000), user_job(2, 2, 7000, 9000),
                      user_job(3, 1, 100, 9000)});
  const RecentKEstimator e(t, 4);
  EXPECT_EQ(e.estimate(t[2]), 100);  // unaffected by user 2's 7000s job
}

TEST(RecentK, PredictionsCappedAtRequestTime) {
  const swf::Trace t("t", 8,
                     {user_job(1, 1, 5000, 9000), user_job(2, 1, 100, 600)});
  const RecentKEstimator e(t, 2);
  EXPECT_EQ(e.estimate(t[1]), 600);
}

TEST(RecentK, UnknownJobFallsBackGracefully) {
  const swf::Trace t("t", 8, {user_job(1, 1, 100, 3600)});
  const RecentKEstimator e(t, 2);
  EXPECT_EQ(e.estimate(user_job(999, 5, 70, 450)), 450);
}

class RecentKSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RecentKSweep, LargerWindowsNeverLoseToRequestsOnArchiveLikeTrace) {
  const std::size_t k = GetParam();
  const swf::Trace trace = workload::sdsc_sp2_like(55, 2000);
  const RecentKEstimator recent(trace, k);
  RequestTimeEstimator request;
  EXPECT_LT(mean_relative_error(recent, trace),
            mean_relative_error(request, trace));
  EXPECT_GT(recent.coverage(), 0.9);
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, RecentKSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

// ------------------------------------------------------- ClassAverage --

TEST(ClassAverage, FallsBackRequestThenUserThenClass) {
  const swf::Trace t("t", 8,
                     {user_job(1, 1, 100, 3600, /*exe=*/1),
                      user_job(2, 1, 200, 3600, /*exe=*/2),   // new exe: user mean
                      user_job(3, 1, 400, 3600, /*exe=*/1)}); // class history
  const ClassAverageEstimator e(t);
  EXPECT_EQ(e.estimate(t[0]), 3600);  // nothing known
  EXPECT_EQ(e.estimate(t[1]), 100);   // user mean of {100}
  EXPECT_EQ(e.estimate(t[2]), 100);   // class (user1, exe1, 1p) mean {100}
}

TEST(ClassAverage, ClassMeansAccumulate) {
  const swf::Trace t("t", 8,
                     {user_job(1, 1, 100, 9000), user_job(2, 1, 300, 9000),
                      user_job(3, 1, 500, 9000)});
  const ClassAverageEstimator e(t);
  EXPECT_EQ(e.estimate(t[2]), 200);  // (100+300)/2
}

TEST(ClassAverage, DistinguishesProcBuckets) {
  // Same user+exe but widths 1 and 16 land in different buckets.
  const swf::Trace t("t", 32,
                     {user_job(1, 1, 100, 9000, 1, 1),
                      user_job(2, 1, 7000, 9000, 1, 16),
                      user_job(3, 1, 100, 9000, 1, 1)});
  const ClassAverageEstimator e(t);
  EXPECT_EQ(e.estimate(t[2]), 100);  // 1-proc class unpolluted by the 16-proc job
}

TEST(ClassAverage, CoverageGrowsWithRepetition) {
  const swf::Trace trace = workload::sdsc_sp2_like(91, 3000);
  const ClassAverageEstimator e(trace);
  EXPECT_GT(e.class_coverage(), 0.5);
  EXPECT_LT(mean_relative_error(e, trace),
            mean_relative_error(RequestTimeEstimator{}, trace));
}

// -------------------------------------------------------------- Blend --

TEST(Blend, RejectsAlphaOutsideUnitInterval) {
  ActualRuntimeEstimator ar;
  EXPECT_THROW(BlendEstimator(ar, -0.1), std::invalid_argument);
  EXPECT_THROW(BlendEstimator(ar, 1.1), std::invalid_argument);
}

TEST(Blend, AlphaZeroIsRequestTime) {
  ActualRuntimeEstimator ar;
  const BlendEstimator e(ar, 0.0);
  EXPECT_EQ(e.estimate(user_job(1, 1, 100, 3600)), 3600);
}

TEST(Blend, AlphaOneIsInnerEstimator) {
  ActualRuntimeEstimator ar;
  const BlendEstimator e(ar, 1.0);
  EXPECT_EQ(e.estimate(user_job(1, 1, 100, 3600)), 100);
}

TEST(Blend, InterpolatesLinearly) {
  ActualRuntimeEstimator ar;
  const BlendEstimator e(ar, 0.25);
  // 0.25 * 100 + 0.75 * 3600 = 2725
  EXPECT_EQ(e.estimate(user_job(1, 1, 100, 3600)), 2725);
}

TEST(Blend, NameMentionsInnerAndAlpha) {
  ActualRuntimeEstimator ar;
  const BlendEstimator e(ar, 0.5);
  EXPECT_EQ(e.name(), "Blend(ActualRuntime,0.5)");
}

class BlendSweep : public ::testing::TestWithParam<double> {};

TEST_P(BlendSweep, ErrorDecreasesMonotonicallyTowardOracle) {
  // With the oracle inside, prediction error must shrink as alpha grows —
  // the continuous accuracy knob the predictor ablation sweeps.
  const double alpha = GetParam();
  const swf::Trace trace = workload::sdsc_sp2_like(12, 1000);
  ActualRuntimeEstimator ar;
  const BlendEstimator mid(ar, alpha);
  const BlendEstimator more(ar, std::min(1.0, alpha + 0.25));
  EXPECT_GE(mean_relative_error(mid, trace),
            mean_relative_error(more, trace) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Alphas, BlendSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75));

// --------------------------------------------------------- UnderNoisy --

TEST(UnderNoisy, RejectsFractionOutsideRange) {
  EXPECT_THROW(UnderNoisyEstimator(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(UnderNoisyEstimator(1.0, 1), std::invalid_argument);
}

TEST(UnderNoisy, ZeroFractionEqualsOracle) {
  UnderNoisyEstimator e(0.0, 7);
  EXPECT_EQ(e.estimate(user_job(1, 1, 1000, 9000)), 1000);
}

TEST(UnderNoisy, EstimatesNeverExceedActualRuntime) {
  UnderNoisyEstimator e(0.5, 3);
  for (int id = 1; id <= 300; ++id) {
    const auto j = user_job(id, 1, 10000, 1'000'000);
    const auto est = e.estimate(j);
    EXPECT_LE(est, 10000);
    EXPECT_GE(est, 5000 - 1);
  }
}

TEST(UnderNoisy, DeterministicPerJob) {
  UnderNoisyEstimator e(0.4, 99);
  const auto j = user_job(17, 1, 5000, 9000);
  const auto first = e.estimate(j);
  for (int rep = 0; rep < 10; ++rep) EXPECT_EQ(e.estimate(j), first);
}

TEST(UnderNoisy, IndependentOfOverpredictionStream) {
  // The + and - noise streams of the same job must not mirror each
  // other (they use different hash constants).
  NoisyEstimator over(0.4, 7);
  UnderNoisyEstimator under(0.4, 7);
  int mirrored = 0;
  for (int id = 1; id <= 100; ++id) {
    const auto j = user_job(id, 1, 10000, 10'000'000);
    const auto above = over.estimate(j) - 10000;
    const auto below = 10000 - under.estimate(j);
    if (std::llabs(above - below) <= 1) ++mirrored;
  }
  EXPECT_LT(mirrored, 20);
}

TEST(UnderNoisy, FloorsAtOneSecond) {
  UnderNoisyEstimator e(0.99, 5);
  for (int id = 1; id <= 50; ++id) {
    EXPECT_GE(e.estimate(user_job(id, 1, 1, 9000)), 1);
  }
}

TEST(UnderNoisy, NameIncludesPercentage) {
  EXPECT_EQ(UnderNoisyEstimator(0.2, 1).name(), "Noisy-20%");
}

// -------------------------------------------------- mean_relative_error --

TEST(MeanRelativeError, ZeroForOracle) {
  const swf::Trace trace = workload::sdsc_sp2_like(5, 300);
  ActualRuntimeEstimator ar;
  EXPECT_NEAR(mean_relative_error(ar, trace), 0.0, 1e-12);
}

TEST(MeanRelativeError, EmptyTraceIsZero) {
  ActualRuntimeEstimator ar;
  EXPECT_EQ(mean_relative_error(ar, swf::Trace("e", 8, {})), 0.0);
}

TEST(MeanRelativeError, MatchesHandComputedValue) {
  const swf::Trace t("t", 8,
                     {user_job(1, 1, 100, 200), user_job(2, 1, 100, 400)});
  RequestTimeEstimator rt;
  // |200-100|/100 = 1, |400-100|/100 = 3 -> mean 2.
  EXPECT_DOUBLE_EQ(mean_relative_error(rt, t), 2.0);
}

}  // namespace
}  // namespace rlbf::sched
