#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include "workload/presets.h"

namespace rlbf::sched {
namespace {

TEST(SchedulerSpec, LabelsMatchPaperNaming) {
  EXPECT_EQ((SchedulerSpec{"FCFS", BackfillKind::Easy, EstimateKind::RequestTime}).label(),
            "FCFS+EASY");
  EXPECT_EQ((SchedulerSpec{"SJF", BackfillKind::Easy, EstimateKind::ActualRuntime}).label(),
            "SJF+EASY-AR");
  EXPECT_EQ((SchedulerSpec{"FCFS", BackfillKind::None, EstimateKind::RequestTime}).label(),
            "FCFS+NOBF");
  EXPECT_EQ((SchedulerSpec{"WFP3", BackfillKind::Conservative, EstimateKind::RequestTime})
                .label(),
            "WFP3+CONS");
  EXPECT_EQ((SchedulerSpec{"FCFS", BackfillKind::Slack, EstimateKind::RequestTime})
                .label(),
            "FCFS+SLACK");
  SchedulerSpec noisy{"FCFS", BackfillKind::Easy, EstimateKind::Noisy};
  noisy.noise_fraction = 0.20;
  EXPECT_EQ(noisy.label(), "FCFS+EASY+20%");
}

TEST(ConfiguredScheduler, WiresPolicyAndEstimator) {
  SchedulerSpec spec{"SJF", BackfillKind::Easy, EstimateKind::ActualRuntime};
  const ConfiguredScheduler sched(spec);
  EXPECT_EQ(sched.policy().name(), "SJF");
  EXPECT_EQ(sched.estimator().name(), "ActualRuntime");
  ASSERT_NE(sched.chooser(), nullptr);
  EXPECT_EQ(sched.chooser()->name(), "EASY");
}

TEST(ConfiguredScheduler, NoneBackfillHasNullChooser) {
  SchedulerSpec spec{"FCFS", BackfillKind::None, EstimateKind::RequestTime};
  EXPECT_EQ(ConfiguredScheduler(spec).chooser(), nullptr);
}

TEST(ConfiguredScheduler, RejectsUnknownPolicy) {
  SchedulerSpec spec;
  spec.policy = "BOGUS";
  EXPECT_THROW(ConfiguredScheduler{spec}, std::invalid_argument);
}

TEST(ConfiguredScheduler, RunProducesMetrics) {
  const swf::Trace trace = workload::lublin_1(8, 400);
  SchedulerSpec spec{"FCFS", BackfillKind::Easy, EstimateKind::RequestTime};
  const auto out = ConfiguredScheduler(spec).run(trace);
  EXPECT_EQ(out.results.size(), trace.size());
  EXPECT_EQ(out.metrics.job_count, trace.size());
  EXPECT_GE(out.metrics.avg_bounded_slowdown, 1.0);
}

class SpecMatrixTest
    : public ::testing::TestWithParam<std::tuple<std::string, BackfillKind>> {};

TEST_P(SpecMatrixTest, EveryConfigurationSchedulesCompletely) {
  const auto& [policy, backfill] = GetParam();
  SchedulerSpec spec{policy, backfill, EstimateKind::RequestTime};
  const swf::Trace trace = workload::sdsc_sp2_like(12, 300);
  const auto out = ConfiguredScheduler(spec).run(trace);
  ASSERT_EQ(out.results.size(), trace.size());
  for (const auto& r : out.results) {
    EXPECT_GE(r.wait_time(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByBackfill, SpecMatrixTest,
    ::testing::Combine(::testing::Values("FCFS", "SJF", "WFP3", "F1"),
                       ::testing::Values(BackfillKind::None, BackfillKind::Easy,
                                         BackfillKind::EasySjf,
                                         BackfillKind::Conservative,
                                         BackfillKind::Slack)),
    [](const auto& info) {
      const std::string policy = std::get<0>(info.param);
      const BackfillKind backfill = std::get<1>(info.param);
      std::string b = backfill == BackfillKind::None         ? "NOBF"
                      : backfill == BackfillKind::Easy       ? "EASY"
                      : backfill == BackfillKind::EasySjf    ? "EASYSJF"
                      : backfill == BackfillKind::Conservative ? "CONS"
                                                             : "SLACK";
      return policy + "_" + b;
    });

TEST(ConfiguredScheduler, NoisyEstimatesAreSeeded) {
  SchedulerSpec a{"FCFS", BackfillKind::Easy, EstimateKind::Noisy};
  a.noise_fraction = 0.2;
  a.noise_seed = 5;
  SchedulerSpec b = a;
  const swf::Trace trace = workload::sdsc_sp2_like(13, 300);
  const auto ra = ConfiguredScheduler(a).run(trace);
  const auto rb = ConfiguredScheduler(b).run(trace);
  EXPECT_DOUBLE_EQ(ra.metrics.avg_bounded_slowdown, rb.metrics.avg_bounded_slowdown);
}

}  // namespace
}  // namespace rlbf::sched
