#include "sched/policies.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rlbf::sched {
namespace {

swf::Job make_job(std::int64_t submit, std::int64_t request, std::int64_t procs) {
  swf::Job j;
  j.submit_time = submit;
  j.requested_time = request;
  j.run_time = request;
  j.requested_procs = procs;
  return j;
}

TEST(Policies, FcfsOrdersBySubmitTime) {
  FcfsPolicy p;
  EXPECT_LT(p.score(make_job(10, 100, 1), 500), p.score(make_job(20, 1, 1), 500));
}

TEST(Policies, FcfsIgnoresRuntimeAndSize) {
  FcfsPolicy p;
  EXPECT_DOUBLE_EQ(p.score(make_job(10, 100, 1), 500),
                   p.score(make_job(10, 99999, 64), 500));
}

TEST(Policies, SjfOrdersByRequestTime) {
  SjfPolicy p;
  EXPECT_LT(p.score(make_job(50, 100, 1), 500), p.score(make_job(10, 200, 1), 500));
}

TEST(Policies, SjfFallsBackToRuntimeWithoutEstimates) {
  SjfPolicy p;
  swf::Job j = make_job(0, swf::kUnknown, 1);
  j.run_time = 77;
  EXPECT_DOUBLE_EQ(p.score(j, 0), 77.0);
}

TEST(Policies, Wfp3FavorsLongWaiters) {
  Wfp3Policy p;
  // Same job attributes; the one waiting longer must score lower (first).
  EXPECT_LT(p.score(make_job(0, 100, 4), 1000), p.score(make_job(900, 100, 4), 1000));
}

TEST(Policies, Wfp3FavorsShorterJobsAtEqualWait) {
  Wfp3Policy p;
  EXPECT_LT(p.score(make_job(0, 100, 4), 1000), p.score(make_job(0, 10000, 4), 1000));
}

TEST(Policies, Wfp3CubeAmplifiesWaitRatio) {
  Wfp3Policy p;
  const double s1 = p.score(make_job(0, 100, 1), 100);   // wt/rt = 1
  const double s2 = p.score(make_job(0, 100, 1), 200);   // wt/rt = 2
  EXPECT_DOUBLE_EQ(s1, -1.0);
  EXPECT_DOUBLE_EQ(s2, -8.0);
}

TEST(Policies, F1MatchesPublishedFormula) {
  F1Policy p;
  const swf::Job j = make_job(1000, 3600, 8);
  const double expected = std::log10(3600.0) * 8.0 + 870.0 * std::log10(1000.0);
  EXPECT_NEAR(p.score(j, 0), expected, 1e-9);
}

TEST(Policies, F1ClampsZeroSubmitTime) {
  F1Policy p;
  const swf::Job j = make_job(0, 3600, 8);
  EXPECT_NEAR(p.score(j, 0), std::log10(3600.0) * 8.0, 1e-9);
}

TEST(Policies, F1PrefersSmallShortJobs) {
  F1Policy p;
  EXPECT_LT(p.score(make_job(100, 60, 1), 0), p.score(make_job(100, 86400, 128), 0));
}

TEST(Policies, MakePolicyKnowsAllTable3Names) {
  for (const auto& name : all_policy_names()) {
    const auto p = make_policy(name);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), name);
  }
}

TEST(Policies, MakePolicyRejectsUnknown) {
  EXPECT_THROW(make_policy("LIFO"), std::invalid_argument);
  EXPECT_THROW(make_policy(""), std::invalid_argument);
}

TEST(Policies, AllNamesListsFourPolicies) {
  const auto names = all_policy_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "FCFS");
  EXPECT_EQ(names[3], "F1");
}

}  // namespace
}  // namespace rlbf::sched
