#include "sched/easy_backfill.h"

#include <gtest/gtest.h>

#include "sched/policies.h"
#include "sched/runtime_estimator.h"

namespace rlbf::sched {
namespace {

swf::Job make_job(std::int64_t id, std::int64_t run, std::int64_t procs,
                  std::int64_t submit = 0) {
  swf::Job j;
  j.id = id;
  j.submit_time = submit;
  j.run_time = run;
  j.requested_procs = procs;
  return j;
}

TEST(EasyAdmissible, FinishesBeforeShadow) {
  ActualRuntimeEstimator ar;
  sim::Reservation res{/*shadow_time=*/100, /*extra_procs=*/0};
  EXPECT_TRUE(EasyBackfillChooser::admissible(make_job(1, 50, 4), res, ar, 40));
  EXPECT_TRUE(EasyBackfillChooser::admissible(make_job(1, 60, 4), res, ar, 40));
}

TEST(EasyAdmissible, RejectedPastShadowWithoutExtraNodes) {
  ActualRuntimeEstimator ar;
  sim::Reservation res{100, 0};
  EXPECT_FALSE(EasyBackfillChooser::admissible(make_job(1, 61, 4), res, ar, 40));
}

TEST(EasyAdmissible, ExtraNodesAdmitNarrowOverhang) {
  ActualRuntimeEstimator ar;
  sim::Reservation res{100, 3};
  EXPECT_TRUE(EasyBackfillChooser::admissible(make_job(1, 10000, 3), res, ar, 40));
  EXPECT_FALSE(EasyBackfillChooser::admissible(make_job(1, 10000, 4), res, ar, 40));
}

TEST(EasyAdmissible, BoundaryExactlyAtShadow) {
  ActualRuntimeEstimator ar;
  sim::Reservation res{100, 0};
  // now + est == shadow is allowed (finishes exactly at the reservation).
  EXPECT_TRUE(EasyBackfillChooser::admissible(make_job(1, 100, 2), res, ar, 0));
  EXPECT_FALSE(EasyBackfillChooser::admissible(make_job(1, 101, 2), res, ar, 0));
}

/// Assemble a BackfillContext over explicit running/queued jobs.
struct ContextFixture {
  ContextFixture(std::vector<swf::Job> jobs, std::int64_t machine,
                 std::vector<std::pair<std::size_t, std::int64_t>> running,
                 std::vector<std::size_t> queue_order, std::int64_t now)
      : trace("fixture", machine, std::move(jobs)),
        cluster(machine),
        queue(std::move(queue_order)),
        now_(now) {
    for (const auto& [idx, start] : running) {
      cluster.start(idx, trace[idx].procs(), start, trace[idx].run_time);
    }
    for (std::size_t i = 1; i < queue.size(); ++i) {
      if (cluster.can_fit(trace[queue[i]].procs())) candidates.push_back(queue[i]);
    }
    reservation = sim::compute_reservation(cluster, trace, trace[queue[0]], est, now_);
  }

  sim::BackfillContext context() {
    return sim::BackfillContext{trace, cluster,     est,   now_,
                                queue[0], reservation, queue, candidates};
  }

  swf::Trace trace;
  sim::ClusterState cluster;
  ActualRuntimeEstimator est;
  std::vector<std::size_t> queue;
  std::vector<std::size_t> candidates;
  sim::Reservation reservation;
  std::int64_t now_;
};

TEST(EasyChooser, PicksFirstAdmissibleInQueueOrder) {
  // Machine 10: job0 runs 10 procs until 100. Queue: job1 (blocked rjob),
  // job2 (runs 200 -> inadmissible), job3 (runs 50 -> admissible).
  ContextFixture fx({make_job(1, 100, 8), make_job(2, 100, 10),
                     make_job(3, 200, 2), make_job(4, 50, 2)},
                    10, {{0, 0}}, {1, 2, 3}, 20);
  EasyBackfillChooser easy;
  auto ctx = fx.context();
  const auto pick = easy.choose(ctx);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(fx.candidates[*pick], 3u);  // job index 3 (id 4)
}

TEST(EasyChooser, ReturnsNulloptWhenNothingAdmissible) {
  ContextFixture fx({make_job(1, 100, 8), make_job(2, 100, 10),
                     make_job(3, 200, 2)},
                    10, {{0, 0}}, {1, 2}, 20);
  EasyBackfillChooser easy;
  auto ctx = fx.context();
  EXPECT_FALSE(easy.choose(ctx).has_value());
}

TEST(EasyChooser, ShortestFirstReordersCandidates) {
  // Both candidates admissible; shortest-first must pick the 10 s one
  // even though queue order lists the 50 s job first.
  ContextFixture fx({make_job(1, 100, 8), make_job(2, 100, 10),
                     make_job(3, 50, 2), make_job(4, 10, 2)},
                    10, {{0, 0}}, {1, 2, 3}, 20);
  EasyBackfillChooser sjf(BackfillOrder::ShortestFirst);
  auto ctx = fx.context();
  const auto pick = sjf.choose(ctx);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(fx.candidates[*pick], 3u);  // the 10 s job

  EasyBackfillChooser queue_order(BackfillOrder::QueueOrder);
  const auto pick2 = queue_order.choose(ctx);
  ASSERT_TRUE(pick2.has_value());
  EXPECT_EQ(fx.candidates[*pick2], 2u);  // the 50 s job (queue order)
}

TEST(EasyChooser, NamesReflectOrder) {
  EXPECT_EQ(EasyBackfillChooser(BackfillOrder::QueueOrder).name(), "EASY");
  EXPECT_EQ(EasyBackfillChooser(BackfillOrder::ShortestFirst).name(), "EASY-SJF");
}

}  // namespace
}  // namespace rlbf::sched
