// The BestFit / WorstFit EASY orderings (ablation A10's fixed rules).
#include <gtest/gtest.h>

#include "sched/easy_backfill.h"
#include "sched/policies.h"
#include "sched/runtime_estimator.h"
#include "sched/scheduler.h"
#include "workload/presets.h"

namespace rlbf::sched {
namespace {

swf::Job make_job(std::int64_t id, std::int64_t submit, std::int64_t run,
                  std::int64_t procs, std::int64_t request) {
  swf::Job j;
  j.id = id;
  j.submit_time = submit;
  j.run_time = run;
  j.requested_procs = procs;
  j.requested_time = request;
  return j;
}

// A scenario with a clear ordering decision: job 1 occupies most of the
// machine, job 2 (wide) blocks, and jobs 3 and 4 (narrow vs wide) arrive
// TOGETHER at t=2 — the simulator opens a backfilling opportunity at each
// event, so simultaneous arrival is what puts both in one candidate set.
// Both are admissible (they finish before J1's end at t=100) but cannot
// run side by side (6 + 1 + 4 > 10 processors).
//   machine: 10 procs. J1: 6 procs 100 s. J2: 10 procs (blocked).
//   J3: 1 proc, 30 s. J4: 4 procs, 90 s.
swf::Trace ordering_trace() {
  return swf::Trace("order", 10,
                    {make_job(1, 0, 100, 6, 100), make_job(2, 1, 50, 10, 50),
                     make_job(3, 2, 30, 1, 30), make_job(4, 2, 90, 4, 90)});
}

TEST(BackfillOrder, WidestFirstPicksTheWideJob) {
  FcfsPolicy fcfs;
  RequestTimeEstimator rt;
  EasyBackfillChooser chooser(BackfillOrder::WidestFirst);
  const auto results = sim::simulate(ordering_trace(), fcfs, rt, &chooser);
  // J4 (4 procs) backfills at t=2; J3 (1 proc) no longer fits beside it
  // (6 + 4 + 1 > 10) and must wait.
  EXPECT_TRUE(results[3].backfilled);
  EXPECT_EQ(results[3].start_time, 2);
  EXPECT_GT(results[2].start_time, 2);
}

TEST(BackfillOrder, NarrowestFirstPicksTheNarrowJob) {
  FcfsPolicy fcfs;
  RequestTimeEstimator rt;
  EasyBackfillChooser chooser(BackfillOrder::NarrowestFirst);
  const auto results = sim::simulate(ordering_trace(), fcfs, rt, &chooser);
  // J3 (1 proc) backfills first; J4 (4 procs, 6 + 1 + 4 > 10) waits.
  EXPECT_TRUE(results[2].backfilled);
  EXPECT_EQ(results[2].start_time, 2);
  EXPECT_GT(results[3].start_time, 2);
}

TEST(BackfillOrder, NamesIdentifyTheOrdering) {
  EXPECT_EQ(EasyBackfillChooser(BackfillOrder::WidestFirst).name(), "EASY-BestFit");
  EXPECT_EQ(EasyBackfillChooser(BackfillOrder::NarrowestFirst).name(),
            "EASY-WorstFit");
}

TEST(BackfillOrder, SpecLabelsIncludeOrdering) {
  EXPECT_EQ(SchedulerSpec({"FCFS", BackfillKind::EasyBestFit,
                           EstimateKind::RequestTime})
                .label(),
            "FCFS+EASY-BF");
  EXPECT_EQ(SchedulerSpec({"FCFS", BackfillKind::EasyWorstFit,
                           EstimateKind::RequestTime})
                .label(),
            "FCFS+EASY-WF");
}

TEST(BackfillOrder, AllOrderingsRespectAdmissibility) {
  // Whatever the ordering, no backfilled job may delay the blocked head
  // job under the estimates: with request-time estimates equal to actual
  // runtimes, the head's start must never exceed its EASY reservation.
  const swf::Trace trace = workload::sdsc_sp2_like(31, 600);
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  for (const auto order :
       {BackfillOrder::QueueOrder, BackfillOrder::ShortestFirst,
        BackfillOrder::WidestFirst, BackfillOrder::NarrowestFirst}) {
    EasyBackfillChooser chooser(order);
    const auto results = sim::simulate(trace, fcfs, ar, &chooser);
    ASSERT_EQ(results.size(), trace.size());
    for (const auto& r : results) {
      EXPECT_GE(r.start_time, r.submit_time);
    }
  }
}

class OrderingMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, BackfillOrder>> {};

TEST_P(OrderingMatrix, EveryOrderingBeatsNoBackfillingOnEveryTrace) {
  const auto& [trace_name, order] = GetParam();
  swf::Trace trace;
  if (trace_name == "sdsc") trace = workload::sdsc_sp2_like(13, 800);
  else if (trace_name == "hpc2n") trace = workload::hpc2n_like(13, 800);
  else trace = workload::lublin_1(13, 800);

  FcfsPolicy fcfs;
  RequestTimeEstimator rt;
  const auto no_bf = run_schedule(trace, fcfs, rt, nullptr);
  EasyBackfillChooser chooser(order);
  const auto with_bf = run_schedule(trace, fcfs, rt, &chooser);
  EXPECT_LT(with_bf.metrics.avg_bounded_slowdown,
            no_bf.metrics.avg_bounded_slowdown);
  EXPECT_GE(with_bf.metrics.backfilled_jobs, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    TracesAndOrders, OrderingMatrix,
    ::testing::Combine(::testing::Values("sdsc", "hpc2n", "lublin"),
                       ::testing::Values(BackfillOrder::QueueOrder,
                                         BackfillOrder::ShortestFirst,
                                         BackfillOrder::WidestFirst,
                                         BackfillOrder::NarrowestFirst)));

}  // namespace
}  // namespace rlbf::sched
