#include "sched/conservative_backfill.h"

#include <gtest/gtest.h>

#include "sched/easy_backfill.h"
#include "sched/policies.h"
#include "sched/runtime_estimator.h"
#include "sched/scheduler.h"
#include "workload/presets.h"

namespace rlbf::sched {
namespace {

TEST(Profile, FreshProfileIsFullyFree) {
  AvailabilityProfile p(100, 64);
  EXPECT_EQ(p.free_at(100), 64);
  EXPECT_EQ(p.free_at(1'000'000), 64);
}

TEST(Profile, RejectsNonPositiveCapacity) {
  EXPECT_THROW(AvailabilityProfile(0, 0), std::invalid_argument);
}

TEST(Profile, ReserveCarvesWindow) {
  AvailabilityProfile p(0, 10);
  p.reserve(100, 4, 50);
  EXPECT_EQ(p.free_at(99), 10);
  EXPECT_EQ(p.free_at(100), 6);
  EXPECT_EQ(p.free_at(149), 6);
  EXPECT_EQ(p.free_at(150), 10);
}

TEST(Profile, OverlappingReservationsStack) {
  AvailabilityProfile p(0, 10);
  p.reserve(0, 4, 100);
  p.reserve(50, 4, 100);
  EXPECT_EQ(p.free_at(0), 6);
  EXPECT_EQ(p.free_at(50), 2);
  EXPECT_EQ(p.free_at(100), 6);
  EXPECT_EQ(p.free_at(150), 10);
}

TEST(Profile, NegativeCapacityThrows) {
  AvailabilityProfile p(0, 4);
  p.reserve(0, 4, 100);
  EXPECT_THROW(p.reserve(50, 1, 10), std::runtime_error);
}

TEST(Profile, EarliestStartImmediateWhenFree) {
  AvailabilityProfile p(10, 8);
  EXPECT_EQ(p.earliest_start(8, 100), 10);
}

TEST(Profile, EarliestStartWaitsForRelease) {
  AvailabilityProfile p(0, 8);
  p.reserve(0, 8, 100);
  EXPECT_EQ(p.earliest_start(2, 10), 100);
}

TEST(Profile, EarliestStartFitsGapBetweenReservations) {
  AvailabilityProfile p(0, 8);
  p.reserve(0, 8, 50);     // busy [0,50)
  p.reserve(100, 8, 50);   // busy [100,150)
  // A 40 s job fits the [50,100) hole.
  EXPECT_EQ(p.earliest_start(4, 40), 50);
  // A 60 s job does not; it must wait until 150.
  EXPECT_EQ(p.earliest_start(4, 60), 150);
}

TEST(Profile, EarliestStartSkipsTooNarrowWindows) {
  AvailabilityProfile p(0, 8);
  p.reserve(0, 6, 100);  // only 2 free until 100
  EXPECT_EQ(p.earliest_start(4, 10), 100);
  EXPECT_EQ(p.earliest_start(2, 10), 0);
}

TEST(Profile, ImpossibleRequestThrows) {
  AvailabilityProfile p(0, 8);
  EXPECT_THROW(p.earliest_start(9, 10), std::runtime_error);
}

TEST(Profile, FromClusterUsesEstimatedEnds) {
  swf::Trace trace("t", 8, [] {
    swf::Job j;
    j.id = 1;
    j.submit_time = 0;
    j.run_time = 1000;
    j.requested_time = 50;  // estimate far below actual
    j.requested_procs = 8;
    return std::vector<swf::Job>{j};
  }());
  sim::ClusterState cluster(8);
  cluster.start(0, 8, 0, 1000);
  RequestTimeEstimator est;
  const auto profile =
      AvailabilityProfile::from_cluster(cluster, trace, est, /*now=*/200);
  // Estimate already elapsed: treated as due at now + 1.
  EXPECT_EQ(profile.free_at(200), 0);
  EXPECT_EQ(profile.free_at(201), 8);
}

TEST(Conservative, NeverDelaysAnyQueuedJobOnCongestedTrace) {
  // Conservative backfilling's defining invariant, checked end-to-end:
  // relative to no backfilling at all, no job may start later.
  const swf::Trace trace = workload::sdsc_sp2_like(31, 600);
  FcfsPolicy fcfs;
  RequestTimeEstimator est;
  ConservativeBackfillChooser cons;
  const auto with = sim::simulate(trace, fcfs, est, &cons);
  const auto without = sim::simulate(trace, fcfs, est, nullptr);
  ASSERT_EQ(with.size(), without.size());
  std::size_t backfilled = 0;
  for (std::size_t i = 0; i < with.size(); ++i) {
    if (with[i].backfilled) ++backfilled;
  }
  EXPECT_GT(backfilled, 0u);
  const auto m_with = sim::compute_metrics(with, trace.machine_procs());
  const auto m_without = sim::compute_metrics(without, trace.machine_procs());
  EXPECT_LE(m_with.avg_wait_time, m_without.avg_wait_time + 1e-9);
}

TEST(Conservative, MoreRestrictiveThanEasy) {
  const swf::Trace trace = workload::sdsc_sp2_like(32, 600);
  FcfsPolicy fcfs;
  RequestTimeEstimator est;
  ConservativeBackfillChooser cons;
  EasyBackfillChooser easy;
  const auto cons_m = sim::compute_metrics(sim::simulate(trace, fcfs, est, &cons),
                                           trace.machine_procs());
  const auto easy_m = sim::compute_metrics(sim::simulate(trace, fcfs, est, &easy),
                                           trace.machine_procs());
  // EASY may backfill at least as many jobs as conservative.
  EXPECT_GE(easy_m.backfilled_jobs, cons_m.backfilled_jobs);
}

TEST(Conservative, NameIsCons) {
  EXPECT_EQ(ConservativeBackfillChooser().name(), "CONS");
}

TEST(Slack, RejectsNegativeParameters) {
  EXPECT_THROW(SlackBackfillChooser(-0.1, 0), std::invalid_argument);
  EXPECT_THROW(SlackBackfillChooser(0.5, -1), std::invalid_argument);
}

TEST(Slack, AllowanceScalesWithEstimate) {
  const SlackBackfillChooser slack(0.5, 600);
  RequestTimeEstimator est;
  swf::Job j;
  j.requested_time = 1000;
  j.run_time = 1000;
  j.requested_procs = 1;
  EXPECT_EQ(slack.allowance(j, est), 600 + 500);
  j.requested_time = 10000;
  EXPECT_EQ(slack.allowance(j, est), 600 + 5000);
}

TEST(Slack, ZeroSlackEqualsConservative) {
  const swf::Trace trace = workload::sdsc_sp2_like(33, 500);
  FcfsPolicy fcfs;
  RequestTimeEstimator est;
  SlackBackfillChooser zero_slack(0.0, 0);
  ConservativeBackfillChooser cons;
  const auto a = sim::simulate(trace, fcfs, est, &zero_slack);
  const auto b = sim::simulate(trace, fcfs, est, &cons);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_time, b[i].start_time) << "job " << i;
  }
}

TEST(Slack, BackfillsAtLeastAsMuchAsConservative) {
  const swf::Trace trace = workload::sdsc_sp2_like(34, 600);
  FcfsPolicy fcfs;
  RequestTimeEstimator est;
  SlackBackfillChooser slack(1.0, 3600);
  ConservativeBackfillChooser cons;
  const auto slack_m = sim::compute_metrics(sim::simulate(trace, fcfs, est, &slack),
                                            trace.machine_procs());
  const auto cons_m = sim::compute_metrics(sim::simulate(trace, fcfs, est, &cons),
                                           trace.machine_procs());
  EXPECT_GE(slack_m.backfilled_jobs, cons_m.backfilled_jobs);
}

TEST(Slack, GenerousSlackAdmitsADelayingCandidate) {
  // Machine 10: running job holds 8 procs until t=100; rjob needs 10
  // (planned start 100). The 150 s, 2-proc candidate started at t=20
  // occupies 2 procs until 170, pushing the rjob to 170 (+70 s) —
  // rejected by conservative (zero allowance), admitted once the
  // allowance covers the 70 s slip.
  swf::Trace trace("t", 10, [] {
    auto mk = [](std::int64_t id, std::int64_t submit, std::int64_t run,
                 std::int64_t procs) {
      swf::Job j;
      j.id = id;
      j.submit_time = submit;
      j.run_time = run;
      j.requested_procs = procs;
      return j;
    };
    return std::vector<swf::Job>{mk(1, 0, 100, 8), mk(2, 10, 100, 10),
                                 mk(3, 20, 150, 2)};
  }());
  FcfsPolicy fcfs;
  ActualRuntimeEstimator ar;
  ConservativeBackfillChooser cons;
  const auto strict = sim::simulate(trace, fcfs, ar, &cons);
  EXPECT_FALSE(strict[2].backfilled);

  SlackBackfillChooser tight(0.0, 60);  // 60 s < the 70 s slip: still rejected
  const auto still_strict = sim::simulate(trace, fcfs, ar, &tight);
  EXPECT_FALSE(still_strict[2].backfilled);

  SlackBackfillChooser generous(0.0, 100);  // covers the slip
  const auto relaxed = sim::simulate(trace, fcfs, ar, &generous);
  EXPECT_TRUE(relaxed[2].backfilled);
  EXPECT_EQ(relaxed[2].start_time, 20);
  // The reserved job slipped, but within its allowance.
  EXPECT_LE(relaxed[1].start_time, 100 + 100);
}

}  // namespace
}  // namespace rlbf::sched
