// Cross-cutting contracts every RuntimeEstimator in the library must
// honor, swept over the full estimator family x multiple workloads:
//
//   P1 estimates are always >= 1 second (the sim's RuntimeEstimator
//      contract);
//   P2 estimates are deterministic — the same job queried twice yields
//      the same value (reservations computed at different times must
//      agree);
//   P3 *deployable* predictors (everything except the raw request time
//      and the deliberately deflating UnderNoisy) never exceed the user
//      request time, the kill limit a real system enforces;
//   P4 the oracle lower-bounds every AR-derived estimator's error.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "sched/easy_backfill.h"
#include "sched/policies.h"
#include "sched/predictors.h"
#include "sched/runtime_estimator.h"
#include "workload/presets.h"

namespace rlbf::sched {
namespace {

struct EstimatorCase {
  std::string name;
  /// Builds the estimator over a trace (history predictors need it).
  std::function<std::unique_ptr<sim::RuntimeEstimator>(const swf::Trace&)> make;
  bool capped_at_request;  // participates in P3
};

std::vector<EstimatorCase> estimator_cases() {
  return {
      {"RequestTime",
       [](const swf::Trace&) { return std::make_unique<RequestTimeEstimator>(); },
       true},  // trivially equal to the request time
      {"ActualRuntime",
       [](const swf::Trace&) { return std::make_unique<ActualRuntimeEstimator>(); },
       false},  // archive AR <= RT holds, but not by construction
      {"Noisy20",
       [](const swf::Trace&) { return std::make_unique<NoisyEstimator>(0.2, 7); },
       true},
      {"Noisy100",
       [](const swf::Trace&) { return std::make_unique<NoisyEstimator>(1.0, 7); },
       true},
      {"Under50",
       [](const swf::Trace&) { return std::make_unique<UnderNoisyEstimator>(0.5, 7); },
       false},
      {"Tsafrir",
       [](const swf::Trace& t) { return std::make_unique<TsafrirEstimator>(t); },
       true},
      {"Recent1",
       [](const swf::Trace& t) { return std::make_unique<RecentKEstimator>(t, 1); },
       true},
      {"Recent8",
       [](const swf::Trace& t) { return std::make_unique<RecentKEstimator>(t, 8); },
       true},
      {"ClassAverage",
       [](const swf::Trace& t) { return std::make_unique<ClassAverageEstimator>(t); },
       true},
  };
}

class EstimatorContractTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
 protected:
  static const EstimatorCase& find_case(const std::string& name) {
    static const auto cases = estimator_cases();
    for (const auto& c : cases) {
      if (c.name == name) return c;
    }
    throw std::logic_error("unknown estimator case " + name);
  }
};

TEST_P(EstimatorContractTest, PositiveDeterministicAndCapped) {
  const auto& [name, seed] = GetParam();
  const EstimatorCase& c = find_case(name);
  const swf::Trace trace = workload::sdsc_sp2_like(seed, 1000);
  const auto estimator = c.make(trace);
  for (const auto& job : trace.jobs()) {
    const std::int64_t est = estimator->estimate(job);
    EXPECT_GE(est, 1) << name << " job " << job.id;                       // P1
    EXPECT_EQ(estimator->estimate(job), est) << name << " job " << job.id;  // P2
    if (c.capped_at_request && job.requested_time > 0) {
      EXPECT_LE(est, job.requested_time) << name << " job " << job.id;    // P3
    }
  }
}

TEST_P(EstimatorContractTest, OracleErrorIsALowerBound) {
  const auto& [name, seed] = GetParam();
  const EstimatorCase& c = find_case(name);
  const swf::Trace trace = workload::hpc2n_like(seed, 800);
  const auto estimator = c.make(trace);
  ActualRuntimeEstimator oracle;
  EXPECT_GE(mean_relative_error(*estimator, trace) + 1e-12,
            mean_relative_error(oracle, trace));  // P4
}

INSTANTIATE_TEST_SUITE_P(
    AllEstimators, EstimatorContractTest,
    ::testing::Combine(
        ::testing::Values("RequestTime", "ActualRuntime", "Noisy20", "Noisy100",
                          "Under50", "Tsafrir", "Recent1", "Recent8",
                          "ClassAverage"),
        ::testing::Values(11u, 42u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// The estimator a schedule plans with is the one choosers see: a smoke
// sweep that every estimator produces a complete EASY schedule on every
// preset (the simulator clamps expired under-predictions internally).
class EstimatorScheduleTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EstimatorScheduleTest, EveryEstimatorDrivesACompleteEasySchedule) {
  const swf::Trace trace = workload::lublin_1(5, 500);
  const auto cases = estimator_cases();
  for (const auto& c : cases) {
    if (c.name != GetParam()) continue;
    const auto estimator = c.make(trace);
    FcfsPolicy fcfs;
    EasyBackfillChooser easy;
    const auto results = sim::simulate(trace, fcfs, *estimator, &easy);
    ASSERT_EQ(results.size(), trace.size()) << c.name;
    for (const auto& r : results) {
      EXPECT_GE(r.start_time, r.submit_time) << c.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEstimators, EstimatorScheduleTest,
                         ::testing::Values("RequestTime", "ActualRuntime",
                                           "Noisy20", "Noisy100", "Under50",
                                           "Tsafrir", "Recent1", "Recent8",
                                           "ClassAverage"));

}  // namespace
}  // namespace rlbf::sched
