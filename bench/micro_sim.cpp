// Micro-benchmarks for the simulation substrate: event loop throughput
// with and without backfilling, reservation computation, trace
// generation, and conservative backfilling's profile packing.
#include <benchmark/benchmark.h>

#include "sched/scheduler.h"
#include "workload/presets.h"

namespace {

using namespace rlbf;

const swf::Trace& shared_trace() {
  static const swf::Trace trace = workload::sdsc_sp2_like(1, 4000);
  return trace;
}

void BM_SimulateFcfsNoBackfill(benchmark::State& state) {
  const swf::Trace seq = shared_trace().prefix(static_cast<std::size_t>(state.range(0)));
  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(seq, fcfs, est, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateFcfsNoBackfill)->Arg(256)->Arg(1024)->Arg(4000);

void BM_SimulateFcfsEasy(benchmark::State& state) {
  const swf::Trace seq = shared_trace().prefix(static_cast<std::size_t>(state.range(0)));
  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  for (auto _ : state) {
    sched::EasyBackfillChooser easy;
    benchmark::DoNotOptimize(sim::simulate(seq, fcfs, est, &easy));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateFcfsEasy)->Arg(256)->Arg(1024)->Arg(4000);

void BM_SimulateSjfEasy(benchmark::State& state) {
  const swf::Trace seq = shared_trace().prefix(1024);
  sched::SjfPolicy sjf;
  sched::RequestTimeEstimator est;
  for (auto _ : state) {
    sched::EasyBackfillChooser easy;
    benchmark::DoNotOptimize(sim::simulate(seq, sjf, est, &easy));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SimulateSjfEasy);

void BM_SimulateConservative(benchmark::State& state) {
  const swf::Trace seq = shared_trace().prefix(512);
  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator est;
  for (auto _ : state) {
    sched::ConservativeBackfillChooser cons;
    benchmark::DoNotOptimize(sim::simulate(seq, fcfs, est, &cons));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_SimulateConservative);

void BM_LublinGenerate(benchmark::State& state) {
  const workload::LublinGenerator gen{workload::LublinConfig{}};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    util::Rng rng(seed++);
    benchmark::DoNotOptimize(
        gen.generate("bench", static_cast<std::size_t>(state.range(0)), rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LublinGenerate)->Arg(1000)->Arg(10000);

void BM_TraceSample(benchmark::State& state) {
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shared_trace().sample(1024, rng));
  }
}
BENCHMARK(BM_TraceSample);

}  // namespace
