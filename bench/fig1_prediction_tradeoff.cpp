// Figure 1: bsld of FCFS/WFP3/SJF/F1 + EASY backfilling on SDSC-SP2 as
// runtime-prediction accuracy varies — the oracle (Actual Runtime),
// +5/10/20/40/100% noisy predictions, and the raw user Request Time.
//
// The paper's observation to reproduce: the rows are NOT monotone in
// accuracy — some noise level often beats the oracle, and only SJF
// reliably prefers the oracle.
//
// The extra Tsafrir column (system-generated last-two-runtimes
// predictions, related work [25]) shows the flip side: *uncorrected*
// history predictions under-predict long jobs, collapsing reservations
// and starving wide jobs — the reason the original scheme includes
// online prediction correction.
#include <iostream>

#include "bench_common.h"
#include "exp/scenario.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const swf::Trace trace = bench::trace_by_name("SDSC-SP2", args.seed, args.trace_jobs);

  const std::vector<double> noise = {0.0, 0.05, 0.10, 0.20, 0.40, 1.00};
  std::vector<std::string> header = {"policy", "AR(+0%)"};
  for (std::size_t i = 1; i < noise.size(); ++i) {
    header.push_back("+" + std::to_string(static_cast<int>(noise[i] * 100)) + "%");
  }
  header.push_back("Tsafrir");
  header.push_back("RequestTime");
  util::Table table(header);

  // System-generated predictions (related work [25]): one predictor
  // shared by all policies, built from the trace's user history. This
  // column is not expressible as a SchedulerSpec (the estimator needs
  // the whole trace), so it stays on the raw run_schedule API.
  const sched::TsafrirEstimator tsafrir(trace);

  // Figure 1 schedules the whole 10K-job prefix once per configuration
  // (not the sampled-sequence protocol of Table 4). Every spec-shaped
  // cell goes through exp::run_scenario, sharing one cached trace.
  std::vector<std::vector<double>> values;  // per policy: one bsld per column
  for (const auto& policy : sched::all_policy_names()) {
    std::vector<std::string> row = {policy};
    values.emplace_back();
    const auto push = [&](double bsld) {
      row.push_back(util::Table::fmt(bsld, 2));
      values.back().push_back(bsld);
    };
    const auto run_cell = [&](const sched::SchedulerSpec& spec) {
      return exp::run_scenario(bench::scenario_for("SDSC-SP2", spec, args),
                               args.seed)
          .metrics.avg_bounded_slowdown;
    };
    for (double frac : noise) {
      sched::SchedulerSpec spec{policy, sched::BackfillKind::Easy,
                                frac == 0.0 ? sched::EstimateKind::ActualRuntime
                                            : sched::EstimateKind::Noisy};
      spec.noise_fraction = frac;
      spec.noise_seed = args.seed;
      push(run_cell(spec));
    }
    {
      const auto base_policy = sched::make_policy(policy);
      sched::EasyBackfillChooser easy;
      push(sched::run_schedule(trace, *base_policy, tsafrir, &easy)
               .metrics.avg_bounded_slowdown);
    }
    push(run_cell({policy, sched::BackfillKind::Easy,
                   sched::EstimateKind::RequestTime}));
    table.add_row(std::move(row));
  }

  std::cout << "# Figure 1: bsld vs prediction accuracy, EASY backfilling, "
            << trace.name() << " (" << trace.size() << " jobs)\n"
            << "# Lower is better. Non-monotone rows = the paper's trade-off.\n";
  table.print(std::cout);
  table.save_csv("fig1_prediction_tradeoff.csv");

  // Transposed companion (x = accuracy level, one series per policy) and
  // the gnuplot script rendering the paper's figure as line series.
  const auto policies = sched::all_policy_names();
  std::vector<std::string> plot_header = {"accuracy"};
  plot_header.insert(plot_header.end(), policies.begin(), policies.end());
  util::Table plot(plot_header);
  for (std::size_t c = 1; c < header.size(); ++c) {
    std::vector<std::string> row = {header[c]};
    for (std::size_t p = 0; p < policies.size(); ++p) {
      row.push_back(util::Table::fmt(values[p][c - 1], 2));
    }
    plot.add_row(std::move(row));
  }
  plot.save_csv("fig1_prediction_tradeoff_plot.csv");
  util::write_gnuplot_script(
      "fig1_prediction_tradeoff.gnuplot", "fig1_prediction_tradeoff_plot.csv",
      "Figure 1: bsld vs prediction accuracy (" + trace.name() + ")",
      "prediction accuracy", "average bounded slowdown", policies.size(),
      /*log_y=*/true);
  std::cout << "# CSV: fig1_prediction_tradeoff.csv (+ _plot.csv, .gnuplot)\n";
  return 0;
}
