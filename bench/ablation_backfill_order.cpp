// Ablation A10: heuristic backfill orderings vs the learned policy.
// EASY's admission test says WHICH jobs may jump the queue; the ordering
// decides WHO jumps first when several qualify. This bench compares the
// four fixed orderings (queue order, shortest-first, widest-first /
// best-fit, narrowest-first / worst-fit) against RLBackfilling on every
// Table-2 trace under the Table-4 sampling protocol.
//
// The RL agent's whole value proposition is learning an ordering (and
// when to decline) that no fixed rule encodes — it should match or beat
// the best fixed ordering per trace, and the best fixed ordering should
// differ across traces.
//
// Every cell routes through exp::evaluate_scenario (the trace cache
// dedups construction across orderings); the per-trace agents are the
// store-backed paper-protocol entries shared with table4/table5.
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  util::set_log_level(util::LogLevel::Warn);

  const std::vector<std::pair<std::string, sched::BackfillKind>> orders = {
      {"EASY (queue)", sched::BackfillKind::Easy},
      {"EASY-SJF", sched::BackfillKind::EasySjf},
      {"EASY-BestFit", sched::BackfillKind::EasyBestFit},
      {"EASY-WorstFit", sched::BackfillKind::EasyWorstFit},
  };

  std::vector<std::string> header = {"trace"};
  for (const auto& [label, kind] : orders) header.push_back(label);
  header.push_back("RLBF");
  util::Table table(header);

  for (const auto& trace_name : bench::paper_trace_names()) {
    const swf::Trace trace =
        bench::trace_by_name(trace_name, args.seed, args.trace_jobs);
    std::vector<std::string> row = {trace_name};
    for (const auto& [label, kind] : orders) {
      row.push_back(util::Table::fmt(
          bench::eval_scenario(
              bench::scenario_for(
                  trace_name, {"FCFS", kind, sched::EstimateKind::RequestTime},
                  args),
              args),
          2));
    }
    row.push_back(util::Table::fmt(
        bench::eval_agent_scenario(
            trace_name, "FCFS",
            bench::get_or_train_entry(trace, "FCFS", args).entry.key, args),
        2));
    table.add_row(std::move(row));
  }

  std::cout << "# Ablation A10: fixed backfill orderings vs RLBackfilling, "
            << "FCFS base, " << args.samples << "x" << args.sample_jobs
            << "-job samples\n"
            << "# The best fixed ordering varies per trace; RLBF should track "
            << "or beat it.\n";
  table.print(std::cout);
  table.save_csv("ablation_backfill_order.csv");
  std::cout << "# CSV: ablation_backfill_order.csv\n";
  return 0;
}
