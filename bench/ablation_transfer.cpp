// Ablation A8: transfer and fine-tuning. Table 5 shows zero-shot
// generality — a model trained on trace X deployed unchanged on trace Y.
// This bench adds the natural operational question: if a site CAN afford
// a little training on its own workload, is warm-starting from a foreign
// model better than training from scratch at equal budget?
//
// Configurations compared on the target trace (Table-4 protocol):
//   EASY / EASY-AR      — heuristic references
//   zero-shot           — source-trained agent, no target training
//   fine-tuned          — source-trained agent + K epochs on the target
//   scratch             — fresh agent, the same K epochs on the target
//   full                — fresh agent, the full training budget (reference)
//
// All four trainings go through the model store: the fine-tune run is a
// TrainingSpec with init_agent set to the source entry's content address
// (the registered "abl-transfer-*" arms mirror this protocol for
// rlbf_run). Evaluation stays on the bench protocol helpers: the target
// trace is built at seed+1 while the sampling protocol runs at --seed, a
// two-seed shape exp::evaluate_scenario's single seed cannot express.
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  util::set_log_level(util::LogLevel::Warn);

  const std::string source_name = "Lublin-1";
  const std::string target_name = "SDSC-SP2";
  const swf::Trace source = bench::trace_by_name(source_name, args.seed, args.trace_jobs);
  const swf::Trace target =
      bench::trace_by_name(target_name, args.seed + 1, args.trace_jobs);

  // The fine-tuning budget: a quarter of the full budget, >= 2 epochs.
  const std::size_t k_epochs = std::max<std::size_t>(args.epochs / 4, 2);

  const model::TrainOutcome source_outcome =
      bench::get_or_train_entry(source, "FCFS", args);
  const core::Agent source_agent =
      model::default_store().load(source_outcome.entry.key);

  util::Table table({"configuration", "target bsld", "target epochs"});
  const auto add_spec = [&](const std::string& label, sched::EstimateKind est) {
    table.add_row({label,
                   util::Table::fmt(bench::eval_spec(
                       target, {"FCFS", sched::BackfillKind::Easy, est}, args), 2),
                   "-"});
  };
  add_spec("FCFS+EASY", sched::EstimateKind::RequestTime);
  add_spec("FCFS+EASY-AR", sched::EstimateKind::ActualRuntime);

  table.add_row({"zero-shot (train " + source_name + ")",
                 util::Table::fmt(
                     bench::eval_rlbf(target, source_agent, "FCFS", args), 2),
                 "0"});

  {
    model::TrainingSpec spec =
        bench::training_spec(target_name + "-finetune", "FCFS", args);
    spec.trainer.epochs = k_epochs;
    spec.init_agent = source_outcome.entry.key;
    const model::TrainOutcome fine = bench::get_or_train(target, spec, args);
    const core::Agent agent = model::default_store().load(fine.entry.key);
    table.add_row({"fine-tuned (" + source_name + " -> " + target_name + ")",
                   util::Table::fmt(
                       bench::eval_rlbf(target, agent, "FCFS", args), 2),
                   std::to_string(k_epochs)});
  }
  {
    model::TrainingSpec spec =
        bench::training_spec(target_name + "-scratch", "FCFS", args);
    spec.trainer.epochs = k_epochs;
    const model::TrainOutcome scratch = bench::get_or_train(target, spec, args);
    const core::Agent agent = model::default_store().load(scratch.entry.key);
    table.add_row({"scratch, equal budget",
                   util::Table::fmt(
                       bench::eval_rlbf(target, agent, "FCFS", args), 2),
                   std::to_string(k_epochs)});
  }
  {
    const core::Agent full = bench::get_or_train_agent(target, "FCFS", args);
    table.add_row({"scratch, full budget",
                   util::Table::fmt(bench::eval_rlbf(target, full, "FCFS", args), 2),
                   std::to_string(args.epochs)});
  }

  std::cout << "# Ablation A8: transfer learning, " << source_name << " -> "
            << target_name << " (FCFS base)\n"
            << "# Fine-tuning should close most of the zero-shot -> full gap "
            << "at a fraction of the budget.\n";
  table.print(std::cout);
  table.save_csv("ablation_transfer.csv");
  std::cout << "# CSV: ablation_transfer.csv\n";
  return 0;
}
