// Figure 1, extended: the paper states "We conducted similar experiments
// on other job traces and got similar results." This bench runs the
// Figure-1 prediction-accuracy sweep (oracle, +5/10/20/40/100% noise,
// request time) on ALL FOUR Table-2 traces, confirming the non-monotone
// accuracy-vs-bsld relationship is not an SDSC-SP2 artifact.
//
// Synthetic Lublin traces expose only actual runtimes (their "request
// time" equals AR), so their RequestTime column coincides with the
// oracle column — matching how the paper omits EASY (request-time) rows
// for them in Table 4.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  const std::vector<double> noise = {0.0, 0.05, 0.10, 0.20, 0.40, 1.00};
  std::vector<std::string> header = {"trace", "policy", "AR(+0%)"};
  for (std::size_t i = 1; i < noise.size(); ++i) {
    header.push_back("+" + std::to_string(static_cast<int>(noise[i] * 100)) + "%");
  }
  header.push_back("RequestTime");
  util::Table table(header);

  for (const auto& trace_name : bench::paper_trace_names()) {
    const swf::Trace trace =
        bench::trace_by_name(trace_name, args.seed, args.trace_jobs);
    for (const auto& policy : sched::all_policy_names()) {
      std::vector<std::string> row = {trace_name, policy};
      for (double frac : noise) {
        sched::SchedulerSpec spec{policy, sched::BackfillKind::Easy,
                                  frac == 0.0 ? sched::EstimateKind::ActualRuntime
                                              : sched::EstimateKind::Noisy};
        spec.noise_fraction = frac;
        spec.noise_seed = args.seed;
        const auto out = sched::ConfiguredScheduler(spec).run(trace);
        row.push_back(util::Table::fmt(out.metrics.avg_bounded_slowdown, 2));
      }
      const sched::SchedulerSpec rt{policy, sched::BackfillKind::Easy,
                                    sched::EstimateKind::RequestTime};
      row.push_back(util::Table::fmt(
          sched::ConfiguredScheduler(rt).run(trace).metrics.avg_bounded_slowdown,
          2));
      table.add_row(std::move(row));
    }
  }

  std::cout << "# Figure 1 on every Table-2 trace: bsld vs prediction accuracy, "
            << "EASY backfilling\n"
            << "# Lower is better. Non-monotone rows reproduce the paper's "
            << "trade-off on each workload.\n";
  table.print(std::cout);
  table.save_csv("fig1_all_traces.csv");
  std::cout << "# CSV: fig1_all_traces.csv\n";
  return 0;
}
