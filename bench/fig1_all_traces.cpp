// Figure 1, extended: the paper states "We conducted similar experiments
// on other job traces and got similar results." This bench runs the
// Figure-1 prediction-accuracy sweep (oracle, +5/10/20/40/100% noise,
// request time) on ALL FOUR Table-2 traces, confirming the non-monotone
// accuracy-vs-bsld relationship is not an SDSC-SP2 artifact.
//
// Synthetic Lublin traces expose only actual runtimes (their "request
// time" equals AR), so their RequestTime column coincides with the
// oracle column — matching how the paper omits EASY (request-time) rows
// for them in Table 4.
//
// The whole grid is one exp::run_sweep call: cells run in parallel on
// the thread pool, one shared trace per workload via the exp trace
// cache, byte-identical output at any thread count.
#include <iostream>

#include "bench_common.h"
#include "exp/sweep.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  const std::vector<double> noise = {0.0, 0.05, 0.10, 0.20, 0.40, 1.00};
  std::vector<std::string> header = {"trace", "policy", "AR(+0%)"};
  for (std::size_t i = 1; i < noise.size(); ++i) {
    header.push_back("+" + std::to_string(static_cast<int>(noise[i] * 100)) + "%");
  }
  header.push_back("RequestTime");
  util::Table table(header);

  // One scenario instance per (trace, policy, accuracy) cell, in output
  // order: noise columns first, then the request-time column.
  std::vector<exp::ScenarioSpec> specs;
  for (const auto& trace_name : bench::paper_trace_names()) {
    for (const auto& policy : sched::all_policy_names()) {
      for (double frac : noise) {
        sched::SchedulerSpec spec{policy, sched::BackfillKind::Easy,
                                  frac == 0.0 ? sched::EstimateKind::ActualRuntime
                                              : sched::EstimateKind::Noisy};
        spec.noise_fraction = frac;
        spec.noise_seed = args.seed;
        specs.push_back(bench::scenario_for(trace_name, spec, args));
      }
      const sched::SchedulerSpec rt{policy, sched::BackfillKind::Easy,
                                    sched::EstimateKind::RequestTime};
      specs.push_back(bench::scenario_for(trace_name, rt, args));
    }
  }

  exp::SweepOptions options;
  options.seed = args.seed;
  const std::vector<exp::ScenarioRun> runs = exp::run_sweep(specs, options);

  const std::size_t cols = noise.size() + 1;
  std::size_t cell = 0;
  for (const auto& trace_name : bench::paper_trace_names()) {
    for (const auto& policy : sched::all_policy_names()) {
      std::vector<std::string> row = {trace_name, policy};
      for (std::size_t c = 0; c < cols; ++c) {
        row.push_back(
            util::Table::fmt(runs[cell++].metrics.avg_bounded_slowdown, 2));
      }
      table.add_row(std::move(row));
    }
  }

  std::cout << "# Figure 1 on every Table-2 trace: bsld vs prediction accuracy, "
            << "EASY backfilling\n"
            << "# Lower is better. Non-monotone rows reproduce the paper's "
            << "trade-off on each workload.\n";
  table.print(std::cout);
  table.save_csv("fig1_all_traces.csv");
  std::cout << "# CSV: fig1_all_traces.csv\n";
  return 0;
}
