// Ablation A11: robustness to workload anomalies. The Parallel Workloads
// Archive's experience paper (the paper's reference [10]) documents that
// single-user submission flurries can dominate aggregate metrics and
// flip scheduler comparisons. This bench measures how EASY and a trained
// RLBackfilling agent respond when a flurry is injected into the
// evaluation trace — and how much of the distortion trace scrubbing
// (workload::remove_flurries) undoes.
//
// The agent was trained on the clean trace, so the flurry is genuinely
// out-of-distribution for it. The three trace variants are the
// registered scenarios "sdsc-easy", "sdsc-flurry", and
// "sdsc-flurry-scrubbed"; the EASY arm is exactly run_scenario on them.
#include <iostream>

#include "bench_common.h"
#include "exp/scenario.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  util::set_log_level(util::LogLevel::Warn);

  const auto variant = [&](const std::string& scenario) {
    exp::ScenarioSpec spec = exp::find_scenario(scenario);
    spec.trace_jobs = args.trace_jobs;
    return spec;
  };
  const exp::ScenarioSpec clean = variant("sdsc-easy");
  const exp::ScenarioSpec flurried = variant("sdsc-flurry");
  const exp::ScenarioSpec scrubbed = variant("sdsc-flurry-scrubbed");

  const core::Agent agent =
      bench::get_or_train_agent(exp::build_trace(clean, args.seed), "FCFS", args);

  const auto easy_bsld = [&](const exp::ScenarioSpec& spec, const swf::Trace& t) {
    const sched::ConfiguredScheduler scheduler(spec.scheduler);
    return sched::run_schedule(t, scheduler.policy(), scheduler.estimator(),
                               scheduler.chooser(), exp::sim_options(spec))
        .metrics.avg_bounded_slowdown;
  };
  const auto rlbf_bsld = [&](const swf::Trace& t) {
    sched::FcfsPolicy fcfs;
    sched::RequestTimeEstimator estimator;
    core::RlBackfillChooser chooser(agent);
    return sched::run_schedule(t, fcfs, estimator, &chooser)
        .metrics.avg_bounded_slowdown;
  };

  exp::TraceBuildInfo scrub_info;
  util::Table table({"trace variant", "jobs", "FCFS+EASY bsld", "FCFS+RLBF bsld"});
  const std::pair<const char*, const exp::ScenarioSpec*> variants[] = {
      {"clean", &clean}, {"with flurry", &flurried}, {"scrubbed", &scrubbed}};
  for (const auto& [title, spec] : variants) {
    const swf::Trace trace = exp::build_trace(*spec, args.seed, &scrub_info);
    table.add_row({title, std::to_string(trace.size()),
                   util::Table::fmt(easy_bsld(*spec, trace), 2),
                   util::Table::fmt(rlbf_bsld(trace), 2)});
  }

  std::cout << "# Ablation A11: flurry robustness, SDSC-SP2 + injected 500-job "
            << "single-user burst\n"
            << "# remove_flurries cut " << scrub_info.flurry.removed_jobs
            << " jobs from " << scrub_info.flurry.flagged_users << " user(s).\n"
            << "# Scrubbed rows should return close to the clean rows; the "
            << "flurry rows show each strategy's sensitivity.\n";
  table.print(std::cout);
  table.save_csv("ablation_flurry.csv");
  std::cout << "# CSV: ablation_flurry.csv\n";
  return 0;
}
