// Ablation A11: robustness to workload anomalies. The Parallel Workloads
// Archive's experience paper (the paper's reference [10]) documents that
// single-user submission flurries can dominate aggregate metrics and
// flip scheduler comparisons. This bench measures how EASY and a trained
// RLBackfilling agent respond when a flurry is injected into the
// evaluation trace — and how much of the distortion trace scrubbing
// (workload::remove_flurries) undoes.
//
// The agent was trained on the clean trace, so the flurry is genuinely
// out-of-distribution for it.
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"
#include "workload/transforms.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace clean = bench::trace_by_name("SDSC-SP2", args.seed, args.trace_jobs);
  // Inject a 500-job, 2-second-interarrival burst one day in.
  const swf::Trace flurried = workload::inject_flurry(
      clean, /*user_id=*/424242, /*start_second=*/86400, /*count=*/500,
      /*gap_seconds=*/2, /*run_seconds=*/120);
  workload::FlurryReport report;
  const swf::Trace scrubbed = workload::remove_flurries(flurried, {}, &report);

  const core::Agent agent = bench::get_or_train_agent(clean, "FCFS", args);

  const auto easy_bsld = [&](const swf::Trace& t) {
    return sched::ConfiguredScheduler({"FCFS", sched::BackfillKind::Easy,
                                       sched::EstimateKind::RequestTime})
        .run(t)
        .metrics.avg_bounded_slowdown;
  };
  const auto rlbf_bsld = [&](const swf::Trace& t) {
    sched::FcfsPolicy fcfs;
    sched::RequestTimeEstimator estimator;
    core::RlBackfillChooser chooser(agent);
    return sched::run_schedule(t, fcfs, estimator, &chooser)
        .metrics.avg_bounded_slowdown;
  };

  util::Table table({"trace variant", "jobs", "FCFS+EASY bsld", "FCFS+RLBF bsld"});
  table.add_row({"clean", std::to_string(clean.size()),
                 util::Table::fmt(easy_bsld(clean), 2),
                 util::Table::fmt(rlbf_bsld(clean), 2)});
  table.add_row({"with flurry", std::to_string(flurried.size()),
                 util::Table::fmt(easy_bsld(flurried), 2),
                 util::Table::fmt(rlbf_bsld(flurried), 2)});
  table.add_row({"scrubbed", std::to_string(scrubbed.size()),
                 util::Table::fmt(easy_bsld(scrubbed), 2),
                 util::Table::fmt(rlbf_bsld(scrubbed), 2)});

  std::cout << "# Ablation A11: flurry robustness, SDSC-SP2 + injected 500-job "
            << "single-user burst\n"
            << "# remove_flurries cut " << report.removed_jobs << " jobs from "
            << report.flagged_users << " user(s).\n"
            << "# Scrubbed rows should return close to the clean rows; the "
            << "flurry rows show each strategy's sensitivity.\n";
  table.print(std::cout);
  table.save_csv("ablation_flurry.csv");
  std::cout << "# CSV: ablation_flurry.csv\n";
  return 0;
}
