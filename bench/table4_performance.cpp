// Table 4: RLBackfilling vs EASY / EASY-AR across base policies on all
// four traces. Protocol per the paper: 10 random 1024-job sequences per
// trace, identical sequences for every scheduler, averaged bsld.
//
// Columns: FCFS+EASY  FCFS+EASY-AR  FCFS+RLBF  SJF+EASY  SJF+EASY-AR
//          SJF+RLBF  WFP3+EASY  F1+EASY
// Synthetic traces have no user estimates, so their EASY-AR cells are
// "-" (identical to EASY), as in the paper.
//
// Everything runs through the scenario engine: heuristic cells are
// ScenarioSpecs, RLBF cells reference model-store entries trained (once,
// content-addressed) by get_or_train_entry.
#include <iostream>
#include <optional>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  util::set_log_level(util::LogLevel::Info);

  const std::vector<std::string> columns = {
      "FCFS+EASY", "FCFS+EASY-AR", "FCFS+RLBF", "SJF+EASY",
      "SJF+EASY-AR", "SJF+RLBF", "WFP3+EASY", "F1+EASY"};
  std::vector<std::string> header = {"Job Traces"};
  header.insert(header.end(), columns.begin(), columns.end());
  util::Table table(header);
  // Machine-readable companion with 95% bootstrap CIs per cell.
  util::Table csv({"trace", "scheduler", "mean_bsld", "ci95_lo", "ci95_hi"});

  for (const auto& name : bench::paper_trace_names()) {
    const swf::Trace trace = bench::trace_by_name(name, args.seed, args.trace_jobs);
    const bool has_estimates = trace.stats().has_user_estimates;

    auto heuristic = [&](const std::string& policy, sched::EstimateKind est) {
      const sched::SchedulerSpec spec{policy, sched::BackfillKind::Easy, est};
      return bench::eval_scenario_stats(bench::scenario_for(name, spec, args), args);
    };
    auto rlbf = [&](const std::string& policy, const std::string& agent_key) {
      sched::SchedulerSpec spec{policy, sched::BackfillKind::Easy,
                                sched::EstimateKind::RequestTime};
      spec.agent = agent_key;
      return bench::eval_scenario_stats(bench::scenario_for(name, spec, args), args);
    };

    const std::string fcfs_key =
        bench::get_or_train_entry(trace, "FCFS", args).entry.key;
    const std::string sjf_key =
        bench::get_or_train_entry(trace, "SJF", args).entry.key;

    std::vector<std::pair<std::string, std::optional<bench::EvalStats>>> cells;
    cells.emplace_back("FCFS+EASY",
                       heuristic("FCFS", sched::EstimateKind::RequestTime));
    cells.emplace_back("FCFS+EASY-AR",
                       has_estimates
                           ? std::optional(heuristic(
                                 "FCFS", sched::EstimateKind::ActualRuntime))
                           : std::nullopt);
    cells.emplace_back("FCFS+RLBF", rlbf("FCFS", fcfs_key));
    cells.emplace_back("SJF+EASY", heuristic("SJF", sched::EstimateKind::RequestTime));
    cells.emplace_back("SJF+EASY-AR",
                       has_estimates
                           ? std::optional(heuristic(
                                 "SJF", sched::EstimateKind::ActualRuntime))
                           : std::nullopt);
    cells.emplace_back("SJF+RLBF", rlbf("SJF", sjf_key));
    cells.emplace_back("WFP3+EASY",
                       heuristic("WFP3", sched::EstimateKind::RequestTime));
    cells.emplace_back("F1+EASY", heuristic("F1", sched::EstimateKind::RequestTime));

    std::vector<std::string> row = {name};
    for (const auto& [label, stats] : cells) {
      row.push_back(stats ? util::Table::fmt(stats->mean) : "-");
      if (stats) {
        csv.add_row({name, label, util::Table::fmt(stats->mean, 4),
                     util::Table::fmt(stats->ci_lo, 4),
                     util::Table::fmt(stats->ci_hi, 4)});
      }
    }
    table.add_row(std::move(row));
  }

  std::cout << "# Table 4: average bsld over " << args.samples << " random "
            << args.sample_jobs << "-job sequences (lower is better)\n";
  table.print(std::cout);
  csv.save_csv("table4_performance.csv");
  std::cout << "# CSV (with 95% bootstrap CIs): table4_performance.csv\n";
  return 0;
}
