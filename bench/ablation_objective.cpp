// Ablation A4 (the paper's stated future work): training objective.
// Trains one agent per RewardObjective and reports every agent on every
// metric — does optimizing average wait transfer to bsld and vice versa?
//
// The bounded-slowdown arm is the shared "abl-control" spec; the other
// objectives are "abl-obj-*" arms. All train through the model store.
// The multi-metric deployment report needs avg-wait and turnaround per
// sample, which the scenario evaluation protocol does not expose, so the
// bespoke sampling loop below stays (seeds derive from --seed exactly as
// before the port).
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  args.cap_epochs(8);
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace trace = bench::trace_by_name("SDSC-SP2", args.seed, args.trace_jobs);

  const auto evaluate = [&](sim::BackfillChooser* chooser) {
    sched::FcfsPolicy fcfs;
    sched::RequestTimeEstimator est;
    util::Rng rng(args.seed ^ 0xab1a71040b11ull);
    double bsld = 0, wait = 0, turn = 0;
    for (std::size_t i = 0; i < args.samples; ++i) {
      const swf::Trace seq = trace.sample(args.sample_jobs, rng);
      const auto out = sched::run_schedule(seq, fcfs, est, chooser);
      bsld += out.metrics.avg_bounded_slowdown;
      wait += out.metrics.avg_wait_time;
      turn += out.metrics.avg_turnaround;
    }
    const auto n = static_cast<double>(args.samples);
    return std::array<double, 3>{bsld / n, wait / n, turn / n};
  };

  util::Table table({"objective", "bsld", "avg_wait(s)", "avg_turnaround(s)"});
  sched::EasyBackfillChooser easy;
  const auto base = evaluate(&easy);
  table.add_row({"FCFS+EASY baseline", util::Table::fmt(base[0]),
                 util::Table::fmt(base[1], 0), util::Table::fmt(base[2], 0)});

  const std::vector<std::pair<std::string, std::string>> objectives = {
      {"bounded slowdown (paper)", "abl-control"},
      {"avg wait time", "abl-obj-wait"},
      {"avg turnaround", "abl-obj-turnaround"},
  };
  for (const auto& [label, arm] : objectives) {
    const model::TrainOutcome outcome =
        bench::get_or_train(trace, bench::arm_spec(arm, args), args);
    const core::Agent agent = model::default_store().load(outcome.entry.key);
    core::RlBackfillChooser chooser(agent);
    const auto m = evaluate(&chooser);
    table.add_row({label, util::Table::fmt(m[0]), util::Table::fmt(m[1], 0),
                   util::Table::fmt(m[2], 0)});
  }

  std::cout << "# Ablation A4: training objective (future work of the paper), "
            << trace.name() << ", " << args.epochs << " epochs each\n";
  table.print(std::cout);
  table.save_csv("ablation_objective.csv");
  std::cout << "# CSV: ablation_objective.csv\n";
  return 0;
}
