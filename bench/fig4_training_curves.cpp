// Figure 4: RLBackfilling training curves on the four traces with FCFS
// as the base policy. Emits one epoch-indexed series per trace (mean
// agent bsld across the epoch's trajectories, plus the SJF-backfill
// baseline and the mean reward), matching the paper's x = epoch,
// y = bsld presentation.
//
// Expected shape: synthetic traces (Lublin-1/2) converge quickly; the
// real-trace stand-ins take longer and are noisier (HPC2N especially).
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  util::set_log_level(util::LogLevel::Warn);

  util::Table table({"trace", "epoch", "mean_bsld", "baseline_bsld", "mean_reward",
                     "greedy_eval_bsld", "steps", "wall_s"});
  std::vector<std::vector<double>> curves;  // per trace: mean_bsld by epoch
  for (const auto& name : bench::paper_trace_names()) {
    const swf::Trace trace = bench::trace_by_name(name, args.seed, args.trace_jobs);
    core::Trainer trainer(trace, bench::trainer_config(args, "FCFS"));
    std::cout << "# training on " << name << " (" << args.epochs << " epochs)\n";
    curves.emplace_back();
    trainer.train([&](const core::EpochStats& s) {
      table.add_row({name, std::to_string(s.epoch), util::Table::fmt(s.mean_bsld, 2),
                     util::Table::fmt(s.mean_baseline_bsld, 2),
                     util::Table::fmt(s.mean_reward, 4),
                     util::Table::fmt(s.eval_bsld, 2),  // "-" off-cadence
                     std::to_string(s.steps),
                     util::Table::fmt(s.wall_seconds, 2)});
      curves.back().push_back(s.mean_bsld);
    });
  }
  std::cout << "# Figure 4: RLBackfilling training curves (FCFS base policy)\n";
  table.print(std::cout);
  table.save_csv("fig4_training_curves.csv");

  // Wide-format companion (x = epoch, one series per trace) plus the
  // gnuplot script that renders the figure itself.
  std::vector<std::string> plot_header = {"epoch"};
  for (const auto& name : bench::paper_trace_names()) plot_header.push_back(name);
  util::Table plot(plot_header);
  for (std::size_t e = 0; e < args.epochs; ++e) {
    std::vector<std::string> row = {std::to_string(e + 1)};
    for (const auto& curve : curves) {
      row.push_back(e < curve.size() ? util::Table::fmt(curve[e], 2) : "-");
    }
    plot.add_row(std::move(row));
  }
  plot.save_csv("fig4_training_curves_plot.csv");
  util::write_gnuplot_script("fig4_training_curves.gnuplot",
                             "fig4_training_curves_plot.csv",
                             "Figure 4: RLBackfilling training curves (FCFS base)",
                             "training epoch", "mean bsld",
                             bench::paper_trace_names().size(), /*log_y=*/true);
  std::cout << "# CSV: fig4_training_curves.csv (+ _plot.csv, .gnuplot)\n";
  return 0;
}
