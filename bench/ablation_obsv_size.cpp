// Ablation A3: MAX_OBSV_SIZE — how many queued jobs the agent observes.
// The paper defaults to 128 and notes it is configurable; this sweep
// quantifies the sensitivity (too small truncates away candidates, too
// large mostly adds padding and compute).
//
// Sizes 8..64 are the registered "abl-obsv-*" TrainingSpec arms; 128 is
// the shared "abl-control" arm (it IS the all-defaults configuration).
// Training goes through the model store, deployment bsld through
// exp::evaluate_scenario.
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  args.cap_epochs(8);
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace trace = bench::trace_by_name("SDSC-SP2", args.seed, args.trace_jobs);
  util::Table table({"max_obsv_size", "mean_bsld", "steps_last_epoch"});

  const std::vector<std::pair<std::size_t, std::string>> arms = {
      {8, "abl-obsv-8"},   {16, "abl-obsv-16"}, {32, "abl-obsv-32"},
      {64, "abl-obsv-64"}, {128, "abl-control"},
  };
  for (const auto& [size, arm] : arms) {
    const model::TrainOutcome outcome =
        bench::get_or_train(trace, bench::arm_spec(arm, args), args);
    const double bsld =
        bench::eval_agent_scenario("SDSC-SP2", "FCFS", outcome.entry.key, args);
    table.add_row({std::to_string(size), util::Table::fmt(bsld),
                   bench::entry_meta(outcome, "final_steps")});
  }

  std::cout << "# Ablation A3: MAX_OBSV_SIZE sweep, " << trace.name() << " ("
            << args.epochs << " epochs each)\n";
  table.print(std::cout);
  table.save_csv("ablation_obsv_size.csv");
  std::cout << "# CSV: ablation_obsv_size.csv\n";
  return 0;
}
