// Ablation A3: MAX_OBSV_SIZE — how many queued jobs the agent observes.
// The paper defaults to 128 and notes it is configurable; this sweep
// quantifies the sensitivity (too small truncates away candidates, too
// large mostly adds padding and compute).
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  if (args.epochs > 8) args.epochs = 8;
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace trace = bench::trace_by_name("SDSC-SP2", args.seed, args.trace_jobs);
  util::Table table({"max_obsv_size", "mean_bsld", "steps_last_epoch"});

  for (const std::size_t size : {8u, 16u, 32u, 64u, 128u}) {
    core::TrainerConfig cfg = bench::trainer_config(args, "FCFS");
    cfg.agent.obs.max_obsv_size = size;
    cfg.agent.obs.value_obsv_size = std::min<std::size_t>(size, 32);
    core::Trainer trainer(trace, cfg);
    std::size_t last_steps = 0;
    trainer.train([&](const core::EpochStats& s) { last_steps = s.steps; });
    const double bsld = bench::eval_rlbf(trace, trainer.agent(), "FCFS", args);
    table.add_row({std::to_string(size), util::Table::fmt(bsld),
                   std::to_string(last_steps)});
  }

  std::cout << "# Ablation A3: MAX_OBSV_SIZE sweep, " << trace.name() << " ("
            << args.epochs << " epochs each)\n";
  table.print(std::cout);
  table.save_csv("ablation_obsv_size.csv");
  std::cout << "# CSV: ablation_obsv_size.csv\n";
  return 0;
}
