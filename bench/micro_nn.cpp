// Micro-benchmarks for the learning substrate: kernel policy forward
// passes (the deployment hot path), full policy-gradient graph builds
// (the PPO update hot path), and Adam steps.
#include <benchmark/benchmark.h>

#include "core/networks.h"
#include "nn/optim.h"

namespace {

using namespace rlbf;

core::ObservationConfig obs_config() {
  core::ObservationConfig cfg;
  cfg.value_obsv_size = 32;
  return cfg;
}

void BM_KernelPolicyForward(benchmark::State& state) {
  util::Rng rng(1);
  const core::KernelActorCritic model(obs_config(), core::NetworkConfig{}, rng);
  const nn::Tensor obs = nn::Tensor::randn(static_cast<std::size_t>(state.range(0)),
                                           core::ObservationConfig::kFeatures, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.policy_logits_nograd(obs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KernelPolicyForward)->Arg(8)->Arg(32)->Arg(128);

void BM_ValueForward(benchmark::State& state) {
  util::Rng rng(2);
  const core::KernelActorCritic model(obs_config(), core::NetworkConfig{}, rng);
  const nn::Tensor obs = nn::Tensor::randn(1, obs_config().value_feature_dim(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.value_nograd(obs));
  }
}
BENCHMARK(BM_ValueForward);

void BM_PolicyGradientStep(benchmark::State& state) {
  // One PPO-style graph build + backward for a single decision.
  util::Rng rng(3);
  const core::KernelActorCritic model(obs_config(), core::NetworkConfig{}, rng);
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  const nn::Tensor obs =
      nn::Tensor::randn(rows, core::ObservationConfig::kFeatures, rng);
  const std::vector<std::uint8_t> mask(rows, 1);
  for (auto _ : state) {
    const auto logits = model.policy_logits(obs);
    const auto logp = nn::masked_log_softmax(logits, mask);
    const auto ratio = nn::exp_act(nn::sub(nn::pick(logp, 0, 0), nn::scalar(-1.5)));
    const auto loss = nn::neg(nn::minimum(nn::mul_scalar(ratio, 0.5),
                                          nn::mul_scalar(nn::clamp(ratio, 0.8, 1.2), 0.5)));
    nn::backward(loss);
    for (const auto& p : model.policy_parameters()) p->zero_grad();
    benchmark::DoNotOptimize(loss->value.item());
  }
}
BENCHMARK(BM_PolicyGradientStep)->Arg(8)->Arg(32)->Arg(128);

void BM_MatmulSquare(benchmark::State& state) {
  util::Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  const nn::Tensor a = nn::Tensor::randn(n, n, rng);
  const nn::Tensor b = nn::Tensor::randn(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul(b));
  }
}
BENCHMARK(BM_MatmulSquare)->Arg(32)->Arg(128);

void BM_AdamStep(benchmark::State& state) {
  util::Rng rng(5);
  core::KernelActorCritic model(obs_config(), core::NetworkConfig{}, rng);
  nn::Adam opt(model.policy_parameters(), 1e-3);
  for (const auto& p : model.policy_parameters()) {
    p->accumulate_grad(nn::Tensor::randn(p->value.rows(), p->value.cols(), rng, 0.01));
  }
  for (auto _ : state) {
    opt.step();
  }
}
BENCHMARK(BM_AdamStep);

}  // namespace
