// Shared plumbing for the table/figure benches: CLI flags, trace
// construction, agent training with an on-disk cache (so table4/table5
// reuse the same trained models), and the paper's evaluation protocol
// (mean bsld over N random 1024-job samples, fresh seeds per sample).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluation.h"
#include "core/rl_backfill.h"
#include "core/trainer.h"
#include "exp/scenario.h"
#include "model/train.h"
#include "sched/scheduler.h"
#include "workload/presets.h"

namespace rlbf::bench {

struct BenchArgs {
  std::size_t trace_jobs = 10000;   // paper: first 10K jobs per trace
  std::size_t epochs = 60;          // training epochs per agent
  std::size_t trajectories = 50;    // trajectories per epoch
  std::size_t jobs_per_trajectory = 256;  // paper: 256
  std::size_t samples = 10;         // paper: 10 evaluation repetitions
  std::size_t sample_jobs = 1024;   // paper: 1024-job test sequences
  std::uint64_t seed = 1;
  std::string model_dir = "bench_models";
  bool retrain = false;             // ignore cached models
  bool quick = false;               // --quick: tiny budgets for smoke runs
  std::size_t max_epochs = 0;       // ablation epoch cap override (0 = default)
  std::size_t threads = 0;          // training worker threads (0 = hardware;
                                    // results are identical at any value)

  /// Parse --flag=value style arguments; unknown flags abort with usage.
  /// `--libm-fingerprint` prints util::libm_fingerprint() and exits 0 —
  /// the golden harness runs it when a byte-identity check fails, so a
  /// host whose libm drifts from the golden-generating machine is
  /// diagnosed by the failure message itself.
  static BenchArgs parse(int argc, char** argv);

  /// Apply an ablation bench's epoch cap: the effective cap is
  /// --max-epochs when given, else `default_cap`. Clamping warns (with
  /// the --max-epochs escape hatch) instead of silently truncating.
  void cap_epochs(std::size_t default_cap);
};

/// Construct the Table-2 preset by name ("SDSC-SP2", ...). Throws on
/// unknown names.
swf::Trace trace_by_name(const std::string& name, std::uint64_t seed,
                         std::size_t jobs);

/// All four paper trace names in Table-2 order.
std::vector<std::string> paper_trace_names();

/// The paper's training configuration scaled by the bench flags.
core::TrainerConfig trainer_config(const BenchArgs& args,
                                   const std::string& base_policy);

/// The bench protocol as a TrainingSpec (budgets and seed from `args`).
model::TrainingSpec training_spec(const std::string& name,
                                  const std::string& base_policy,
                                  const BenchArgs& args);

/// A ScenarioSpec over the preset `workload` with the bench trace length
/// and the given scheduler; the exp trace cache dedups construction.
exp::ScenarioSpec scenario_for(const std::string& workload,
                               const sched::SchedulerSpec& scheduler,
                               const BenchArgs& args);

/// A registered ablation arm ("abl-*", model::ablation_arm_names) with
/// the bench budget overrides applied: epochs, trajectories, jobs per
/// trajectory, trace length, and seed come from `args`, everything the
/// arm varies (delay rule, observation size, network shape, features,
/// objective, algorithm) stays canonical. At default flags the result is
/// the registry arm itself. Note the store KEYS still differ between the
/// two training paths: benches train on an explicit trace
/// (train_on_trace hashes the trainer protocol + the trace content),
/// while `rlbf_run train --spec=<arm>` keys on the spec fingerprint
/// alone — mixing both in one store yields two same-named entries, which
/// name-based resolution then reports as ambiguous rather than guessing.
model::TrainingSpec arm_spec(const std::string& arm, const BenchArgs& args);

/// Train (or fetch) `spec` on an explicit trace through the model store
/// rooted at args.model_dir. The returned entry's key is what scenario
/// specs reference via scheduler.agent. --retrain forces, --threads sets
/// the worker count (never the result).
model::TrainOutcome get_or_train(const swf::Trace& trace,
                                 const model::TrainingSpec& spec,
                                 const BenchArgs& args);

/// get_or_train over the bench paper-protocol spec for (trace, policy).
model::TrainOutcome get_or_train_entry(const swf::Trace& trace,
                                       const std::string& base_policy,
                                       const BenchArgs& args);

/// Convenience form loading the stored agent back into memory.
core::Agent get_or_train_agent(const swf::Trace& trace, const std::string& base_policy,
                               const BenchArgs& args);

/// Training stats persisted with every store entry (train.cpp writes
/// them; cache hits recover them without retraining). entry_meta throws
/// a std::runtime_error naming the entry and key when absent — stores
/// written before the stats existed need --retrain once.
const std::string& entry_meta(const model::TrainOutcome& outcome,
                              const std::string& key);
/// Numeric stat ("final_reward", "final_train_bsld", "final_steps", ...).
double entry_stat(const model::TrainOutcome& outcome, const std::string& key);
/// Per-epoch greedy-eval bsld curve (NaN on non-evaluation epochs).
std::vector<double> entry_eval_curve(const model::TrainOutcome& outcome);

/// Per-configuration evaluation outcome: the mean bsld the paper reports
/// plus a 95% percentile-bootstrap confidence interval over the samples.
struct EvalStats {
  double mean = 0.0;
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  std::vector<double> samples;
};

/// Evaluate a heuristic scheduler spec over `samples` random
/// `sample_jobs`-long sequences (the Table-4 protocol). Seeds derive
/// from args.seed so every spec sees identical sequences.
EvalStats eval_spec_stats(const swf::Trace& trace, const sched::SchedulerSpec& spec,
                          const BenchArgs& args);
double eval_spec(const swf::Trace& trace, const sched::SchedulerSpec& spec,
                 const BenchArgs& args);

/// Same protocol with RLBackfilling under the given base policy.
EvalStats eval_rlbf_stats(const swf::Trace& trace, const core::Agent& agent,
                          const std::string& base_policy, const BenchArgs& args);
double eval_rlbf(const swf::Trace& trace, const core::Agent& agent,
                 const std::string& base_policy, const BenchArgs& args);

/// The same protocol routed through exp::evaluate_scenario: the spec
/// names the workload (trace construction is deduped by the exp trace
/// cache) and may reference a trained agent via scheduler.agent.
EvalStats eval_scenario_stats(const exp::ScenarioSpec& spec, const BenchArgs& args);
double eval_scenario(const exp::ScenarioSpec& spec, const BenchArgs& args);

/// Deployment bsld of a stored agent (store key or other agent
/// reference) under `policy` with EASY backfilling and request-time
/// estimates on the named workload — the scenario cell every ablation
/// bench reports for a trained arm.
double eval_agent_scenario(const std::string& workload, const std::string& policy,
                           const std::string& agent_ref, const BenchArgs& args);

}  // namespace rlbf::bench
