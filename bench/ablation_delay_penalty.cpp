// Ablation A2: how to enforce "backfilled jobs must not delay the
// selected job". The paper uses a large negative reward on violations;
// the alternative is hard-masking inadmissible candidates (the agent
// can then never delay, but also loses the trade-off freedom the paper
// argues for). Sweeps the penalty magnitude and the masking variant.
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  if (args.epochs > 8) args.epochs = 8;
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace trace = bench::trace_by_name("SDSC-SP2", args.seed, args.trace_jobs);
  util::Table table({"variant", "mean_bsld", "final_train_reward"});

  struct Variant {
    std::string label;
    double penalty;
    core::DelayRule rule;
  };
  const std::vector<Variant> variants = {
      {"estimate-penalty=0.5", 0.5, core::DelayRule::EstimatePenalty},
      {"estimate-penalty=2 (paper)", 2.0, core::DelayRule::EstimatePenalty},
      {"estimate-penalty=10 (harsh)", 10.0, core::DelayRule::EstimatePenalty},
      {"actual-delay-penalty=0.5", 0.5, core::DelayRule::ActualDelayPenalty},
      {"actual-delay-penalty=2", 2.0, core::DelayRule::ActualDelayPenalty},
      {"hard mask (default)", 0.0, core::DelayRule::HardMask},
  };
  for (const auto& v : variants) {
    core::TrainerConfig cfg = bench::trainer_config(args, "FCFS");
    cfg.env.delay_penalty = v.penalty;
    cfg.env.delay_rule = v.rule;
    core::Trainer trainer(trace, cfg);
    double final_reward = 0.0;
    trainer.train([&](const core::EpochStats& s) { final_reward = s.mean_reward; });
    const double bsld = bench::eval_rlbf(trace, trainer.agent(), "FCFS", args);
    table.add_row({v.label, util::Table::fmt(bsld), util::Table::fmt(final_reward, 4)});
  }

  std::cout << "# Ablation A2: delay-penalty reward vs hard masking, "
            << trace.name() << " (" << args.epochs << " epochs each)\n";
  table.print(std::cout);
  table.save_csv("ablation_delay_penalty.csv");
  std::cout << "# CSV: ablation_delay_penalty.csv\n";
  return 0;
}
