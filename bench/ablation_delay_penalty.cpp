// Ablation A2: how to enforce "backfilled jobs must not delay the
// selected job". The paper uses a large negative reward on violations;
// the alternative is hard-masking inadmissible candidates (the agent
// can then never delay, but also loses the trade-off freedom the paper
// argues for). Sweeps the penalty magnitude and the masking variant.
//
// Every variant is a registered "abl-delay-*" TrainingSpec arm trained
// through the model store (a second run is a cache hit; the final
// training reward is recovered from the stored entry), and deployment
// bsld comes from exp::evaluate_scenario over the arm's agent.
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  args.cap_epochs(8);
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace trace = bench::trace_by_name("SDSC-SP2", args.seed, args.trace_jobs);
  util::Table table({"variant", "mean_bsld", "final_train_reward"});

  const std::vector<std::pair<std::string, std::string>> variants = {
      {"estimate-penalty=0.5", "abl-delay-est-0.5"},
      {"estimate-penalty=2 (paper)", "abl-delay-est-2"},
      {"estimate-penalty=10 (harsh)", "abl-delay-est-10"},
      {"actual-delay-penalty=0.5", "abl-delay-act-0.5"},
      {"actual-delay-penalty=2", "abl-delay-act-2"},
      {"hard mask (default)", "abl-delay-mask"},
  };
  for (const auto& [label, arm] : variants) {
    const model::TrainOutcome outcome =
        bench::get_or_train(trace, bench::arm_spec(arm, args), args);
    const double final_reward = bench::entry_stat(outcome, "final_reward");
    const double bsld =
        bench::eval_agent_scenario("SDSC-SP2", "FCFS", outcome.entry.key, args);
    table.add_row({label, util::Table::fmt(bsld), util::Table::fmt(final_reward, 4)});
  }

  std::cout << "# Ablation A2: delay-penalty reward vs hard masking, "
            << trace.name() << " (" << args.epochs << " epochs each)\n";
  table.print(std::cout);
  table.save_csv("ablation_delay_penalty.csv");
  std::cout << "# CSV: ablation_delay_penalty.csv\n";
  return 0;
}
