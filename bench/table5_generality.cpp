// Table 5: generality of learned backfilling — an agent trained on
// trace X (RL-X) deployed on every other trace Y, for both FCFS and SJF
// base scheduling policies, against the EASY and EASY-AR baselines.
// Every cell is a ScenarioSpec; the RL-X columns reference model-store
// entries, so the agents trained by table4_performance are reused
// through their content addresses instead of ad-hoc file names.
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  util::set_log_level(util::LogLevel::Info);

  const auto names = bench::paper_trace_names();
  std::vector<swf::Trace> traces;
  traces.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    traces.push_back(bench::trace_by_name(names[i], args.seed, args.trace_jobs));
  }

  std::vector<std::string> header = {"Job Trace", "EASY", "EASY-AR"};
  for (const auto& n : names) header.push_back("RL-" + n);
  util::Table table(header);

  for (const std::string base_policy : {"FCFS", "SJF"}) {
    // Agents trained on each trace X with this base policy (store-cached).
    std::vector<std::string> agent_keys;
    agent_keys.reserve(names.size());
    for (const auto& trace : traces) {
      agent_keys.push_back(
          bench::get_or_train_entry(trace, base_policy, args).entry.key);
    }
    table.add_row({"[" + base_policy + " base policy]", "", "", "", "", "", ""});
    for (std::size_t y = 0; y < traces.size(); ++y) {
      const swf::Trace& trace = traces[y];
      const bool has_estimates = trace.stats().has_user_estimates;
      std::vector<std::string> row = {trace.name()};
      const sched::SchedulerSpec easy{base_policy, sched::BackfillKind::Easy,
                                      sched::EstimateKind::RequestTime};
      row.push_back(has_estimates
                        ? util::Table::fmt(bench::eval_scenario(
                              bench::scenario_for(names[y], easy, args), args))
                        : "-");
      const sched::SchedulerSpec easy_ar{base_policy, sched::BackfillKind::Easy,
                                         sched::EstimateKind::ActualRuntime};
      row.push_back(util::Table::fmt(bench::eval_scenario(
          bench::scenario_for(names[y], easy_ar, args), args)));
      for (std::size_t x = 0; x < agent_keys.size(); ++x) {
        sched::SchedulerSpec rlbf{base_policy, sched::BackfillKind::Easy,
                                  sched::EstimateKind::RequestTime};
        rlbf.agent = agent_keys[x];
        row.push_back(util::Table::fmt(bench::eval_scenario(
            bench::scenario_for(names[y], rlbf, args), args)));
      }
      table.add_row(std::move(row));
    }
  }

  std::cout << "# Table 5: RL-X agents applied to trace Y, average bsld over "
            << args.samples << " random " << args.sample_jobs << "-job sequences\n"
            << "# (paper convention: synthetic traces lack user estimates, so"
            << " their EASY column is '-' and EASY-AR uses actual runtimes)\n";
  table.print(std::cout);
  table.save_csv("table5_generality.csv");
  std::cout << "# CSV: table5_generality.csv\n";
  return 0;
}
