// Ablation A7: the runtime-predictor design space behind Figure 1/2.
// For each predictor — user request time, history predictors (Tsafrir,
// Recent-K, class averages), blends between a predictor and the request
// time, and the oracle — this bench reports BOTH axes of the paper's
// trade-off on the same trace:
//
//   * prediction accuracy (mean relative error vs actual runtime), and
//   * scheduling quality (bsld under FCFS+EASY with that predictor),
//
// and closes with RLBackfilling, which the paper argues sidesteps the
// trade-off by learning backfilling end-to-end instead of predicting.
//
// Expected shape: error decreases monotonically along the blend sweep,
// but bsld does NOT — the crossover is Figure 2's "backfilling area"
// shrinking faster than the reservation gain.
//
// The custom history-predictor estimators are not ScenarioSpec-
// expressible, so their rows keep the direct run_schedule protocol; the
// RLBackfilling reference trains through the model store and runs via
// exp::run_scenario over the same cached trace.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "sched/predictors.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace trace = bench::trace_by_name("SDSC-SP2", args.seed, args.trace_jobs);

  // Whole-prefix FCFS+EASY run with a given estimator (the Figure-1
  // protocol, not the sampled Table-4 protocol).
  const auto bsld_with = [&](const sim::RuntimeEstimator& est) {
    sched::FcfsPolicy fcfs;
    sched::EasyBackfillChooser easy;
    return sched::run_schedule(trace, fcfs, est, &easy)
        .metrics.avg_bounded_slowdown;
  };

  util::Table table({"estimator", "mean rel. error", "FCFS+EASY bsld"});
  const auto add = [&](const sim::RuntimeEstimator& est) {
    table.add_row({est.name(),
                   util::Table::fmt(sched::mean_relative_error(est, trace), 3),
                   util::Table::fmt(bsld_with(est), 2)});
  };

  sched::RequestTimeEstimator request;
  sched::ActualRuntimeEstimator oracle;
  const sched::TsafrirEstimator tsafrir(trace);
  const sched::RecentKEstimator recent4(trace, 4);
  const sched::RecentKEstimator recent16(trace, 16);
  const sched::ClassAverageEstimator cls(trace);

  add(request);
  add(tsafrir);
  add(recent4);
  add(recent16);
  add(cls);
  // Blend sweep: the continuous accuracy knob between the request time
  // (alpha 0) and the class-average predictor (alpha 1).
  for (const double alpha : {0.25, 0.5, 0.75, 1.0}) {
    add(sched::BlendEstimator(cls, alpha));
  }
  add(oracle);

  // RLBackfilling reference under the same whole-prefix protocol.
  {
    sched::SchedulerSpec spec{"FCFS", sched::BackfillKind::Easy,
                              sched::EstimateKind::RequestTime};
    spec.agent = bench::get_or_train_entry(trace, "FCFS", args).entry.key;
    const exp::ScenarioRun run =
        exp::run_scenario(bench::scenario_for("SDSC-SP2", spec, args), args.seed);
    table.add_row({"RLBackfilling (no predictor)", "-",
                   util::Table::fmt(run.metrics.avg_bounded_slowdown, 2)});
  }

  std::cout << "# Ablation A7: predictor accuracy vs scheduling quality, "
            << trace.name() << " (" << trace.size() << " jobs), FCFS+EASY\n"
            << "# Error column should fall monotonically down the blend sweep; "
            << "the bsld column should not.\n";
  table.print(std::cout);
  table.save_csv("ablation_predictors.csv");
  std::cout << "# CSV: ablation_predictors.csv\n";
  return 0;
}
