// Ablation A9: observation feature importance. The paper's §3.2 feature
// vector bundles waiting time, request time, width, estimated runtime,
// reservation slack, and resource availability into each job row. This
// bench retrains the agent with one feature zeroed at a time and
// compares greedy deployment bsld against the all-features agent —
// which signals is the learned backfilling policy actually using?
//
// Expected shape: dropping the reservation-slack and estimated-runtime
// features (the admissibility signals) hurts most; the waiting-time
// feature matters under FCFS-relative rewards; redundant encodings
// (procs vs fit-ratio) degrade gracefully.
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  if (args.epochs > 8) args.epochs = 8;  // 8 trainings below; keep it tractable
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace trace = bench::trace_by_name("SDSC-SP2", args.seed, args.trace_jobs);

  const double easy = bench::eval_spec(
      trace, {"FCFS", sched::BackfillKind::Easy, sched::EstimateKind::RequestTime},
      args);

  const auto train_with_mask = [&](std::uint32_t mask) {
    core::TrainerConfig cfg = bench::trainer_config(args, "FCFS");
    cfg.agent.obs.feature_mask = mask;
    core::Trainer trainer(trace, cfg);
    trainer.train();
    return bench::eval_rlbf(trace, trainer.agent(), "FCFS", args);
  };

  util::Table table({"configuration", "bsld", "delta vs all features"});
  table.add_row({"FCFS+EASY reference", util::Table::fmt(easy, 2), "-"});
  const double all_features = train_with_mask(0x3FF);
  table.add_row({"all 10 features", util::Table::fmt(all_features, 2), "0.00"});

  const std::vector<std::pair<std::size_t, std::string>> ablated = {
      {0, "waiting time"},     {1, "requested time"}, {2, "requested procs"},
      {4, "estimated runtime"}, {5, "reservation slack"},
      {6, "free fraction"},    {9, "fit ratio"},
  };
  for (const auto& [bit, label] : ablated) {
    const double bsld = train_with_mask(0x3FFu & ~(1u << bit));
    table.add_row({"without " + label, util::Table::fmt(bsld, 2),
                   util::Table::fmt(bsld - all_features, 2)});
  }

  std::cout << "# Ablation A9: observation feature importance, " << trace.name()
            << ", FCFS base, " << args.epochs << " epochs per agent\n"
            << "# Positive delta = the feature was load-bearing.\n";
  table.print(std::cout);
  table.save_csv("ablation_features.csv");
  std::cout << "# CSV: ablation_features.csv\n";
  return 0;
}
