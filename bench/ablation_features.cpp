// Ablation A9: observation feature importance. The paper's §3.2 feature
// vector bundles waiting time, request time, width, estimated runtime,
// reservation slack, and resource availability into each job row. This
// bench retrains the agent with one feature zeroed at a time and
// compares greedy deployment bsld against the all-features agent —
// which signals is the learned backfilling policy actually using?
//
// Expected shape: dropping the reservation-slack and estimated-runtime
// features (the admissibility signals) hurts most; the waiting-time
// feature matters under FCFS-relative rewards; redundant encodings
// (procs vs fit-ratio) degrade gracefully.
//
// The all-features control is the shared "abl-control" arm; each
// knockout is a registered "abl-feat-no-*" arm. Training goes through
// the model store, evaluation through exp::evaluate_scenario.
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  args.cap_epochs(8);  // 8 trainings below; keep it tractable
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace trace = bench::trace_by_name("SDSC-SP2", args.seed, args.trace_jobs);

  const double easy = bench::eval_scenario(
      bench::scenario_for("SDSC-SP2",
                          {"FCFS", sched::BackfillKind::Easy,
                           sched::EstimateKind::RequestTime},
                          args),
      args);

  const auto arm_bsld = [&](const std::string& arm) {
    const model::TrainOutcome outcome =
        bench::get_or_train(trace, bench::arm_spec(arm, args), args);
    return bench::eval_agent_scenario("SDSC-SP2", "FCFS", outcome.entry.key, args);
  };

  util::Table table({"configuration", "bsld", "delta vs all features"});
  table.add_row({"FCFS+EASY reference", util::Table::fmt(easy, 2), "-"});
  const double all_features = arm_bsld("abl-control");
  table.add_row({"all 10 features", util::Table::fmt(all_features, 2), "0.00"});

  const std::vector<std::pair<std::string, std::string>> ablated = {
      {"abl-feat-no-wait", "waiting time"},
      {"abl-feat-no-reqtime", "requested time"},
      {"abl-feat-no-procs", "requested procs"},
      {"abl-feat-no-runtime", "estimated runtime"},
      {"abl-feat-no-slack", "reservation slack"},
      {"abl-feat-no-freefrac", "free fraction"},
      {"abl-feat-no-fit", "fit ratio"},
  };
  for (const auto& [arm, label] : ablated) {
    const double bsld = arm_bsld(arm);
    table.add_row({"without " + label, util::Table::fmt(bsld, 2),
                   util::Table::fmt(bsld - all_features, 2)});
  }

  std::cout << "# Ablation A9: observation feature importance, " << trace.name()
            << ", FCFS base, " << args.epochs << " epochs per agent\n"
            << "# Positive delta = the feature was load-bearing.\n";
  table.print(std::cout);
  table.save_csv("ablation_features.csv");
  std::cout << "# CSV: ablation_features.csv\n";
  return 0;
}
