// Table 2: characteristics of the four job traces — machine size, mean
// inter-arrival time (it), mean requested runtime (rt), mean requested
// processors (nt), and which runtime columns are available. Printed for
// the generated stand-in traces next to the paper's published values.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);

  util::Table table({"Name", "size", "it(sec)", "rt(sec)", "nt", "Runtime",
                     "paper_it", "paper_rt", "paper_nt"});
  const auto all = workload::all_targets();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto& targets = all[i];
    const swf::Trace trace =
        workload::make_preset(targets, args.trace_jobs, args.seed + i);
    const swf::TraceStats s = trace.stats();
    const double rt = targets.user_estimates ? s.mean_request_time : s.mean_run_time;
    table.add_row({trace.name(), std::to_string(s.max_procs),
                   util::Table::fmt(s.mean_interarrival, 0),
                   util::Table::fmt(rt, 0),
                   util::Table::fmt(s.mean_requested_procs, 0),
                   targets.user_estimates ? "both" : "AR",
                   util::Table::fmt(targets.mean_interarrival, 0),
                   util::Table::fmt(targets.mean_request_time, 0),
                   util::Table::fmt(targets.mean_requested_procs, 0)});
  }
  std::cout << "# Table 2: generated trace characteristics vs the paper's"
            << " published values\n";
  table.print(std::cout);
  table.save_csv("table2_traces.csv");
  std::cout << "# CSV: table2_traces.csv\n";
  return 0;
}
