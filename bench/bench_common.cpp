#include "bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include <iostream>

#include "exp/config.h"
#include "util/libm_fingerprint.h"
#include "util/log.h"
#include "util/stats.h"

namespace rlbf::bench {

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  bool libm = false;
  exp::ArgParser parser("bench", "Shared bench flags (paper protocol defaults).");
  parser.add_flag("--libm-fingerprint", &libm,
                  "print this host's libm sentinel values and exit (golden "
                  "drift diagnosis)");
  parser.add("--trace-jobs", &args.trace_jobs, "jobs taken from each trace");
  parser.add("--epochs", &args.epochs, "training epochs per agent");
  parser.add("--trajectories", &args.trajectories, "trajectories per epoch");
  parser.add("--traj-jobs", &args.jobs_per_trajectory, "jobs per trajectory");
  parser.add("--samples", &args.samples, "evaluation repetitions");
  parser.add("--sample-jobs", &args.sample_jobs, "jobs per evaluation sequence");
  parser.add("--seed", &args.seed, "master seed");
  parser.add("--model-dir", &args.model_dir, "trained-agent cache directory");
  parser.add_flag("--retrain", &args.retrain, "ignore cached models");
  parser.add_flag("--quick", &args.quick, "tiny budgets for smoke runs");
  parser.add("--max-epochs", &args.max_epochs,
             "override the ablation epoch cap (0 = each bench's default)");
  parser.add("--threads", &args.threads,
             "training worker threads (0 = hardware; never changes results)");
  parser.parse_or_exit(argc, argv);
  if (libm) {
    std::cout << util::libm_fingerprint();
    std::exit(0);
  }
  if (args.quick) {
    args.trace_jobs = std::min<std::size_t>(args.trace_jobs, 3000);
    args.epochs = std::min<std::size_t>(args.epochs, 3);
    args.trajectories = std::min<std::size_t>(args.trajectories, 12);
    args.samples = std::min<std::size_t>(args.samples, 3);
    args.sample_jobs = std::min<std::size_t>(args.sample_jobs, 384);
  }
  // Benches resolve trained-agent scenario references against their own
  // model cache directory — unless the user pointed the process at a
  // shared store. Precedence: explicit --model-dir > $RLBF_MODEL_STORE >
  // the bench default.
  const char* env_store = std::getenv("RLBF_MODEL_STORE");
  const bool model_dir_overridden = args.model_dir != BenchArgs{}.model_dir;
  if (model_dir_overridden || env_store == nullptr || *env_store == '\0') {
    model::set_default_store_root(args.model_dir);
  } else {
    args.model_dir = env_store;
  }
  return args;
}

void BenchArgs::cap_epochs(std::size_t default_cap) {
  const std::size_t cap = max_epochs > 0 ? max_epochs : default_cap;
  if (epochs > cap) {
    util::log_warn("clamping --epochs=", epochs, " to the ablation cap ", cap,
                   " (pass --max-epochs to raise it)");
    epochs = cap;
  }
}

swf::Trace trace_by_name(const std::string& name, std::uint64_t seed,
                         std::size_t jobs) {
  // Route through the exp trace cache: a default-field ScenarioSpec over
  // a preset reduces to workload::make_preset, so the bench's direct
  // trace and its scenario cells share one generated copy (unknown
  // names throw from build_trace with the known-workload list).
  exp::ScenarioSpec spec;
  spec.workload = name;
  spec.trace_jobs = jobs;
  return *exp::build_trace_cached(spec, seed);
}

std::vector<std::string> paper_trace_names() {
  return {"SDSC-SP2", "HPC2N", "Lublin-1", "Lublin-2"};
}

core::TrainerConfig trainer_config(const BenchArgs& args,
                                   const std::string& base_policy) {
  core::TrainerConfig cfg;
  cfg.base_policy = base_policy;
  cfg.epochs = args.epochs;
  cfg.trajectories_per_epoch = args.trajectories;
  cfg.jobs_per_trajectory = args.jobs_per_trajectory;
  cfg.ppo.train_iters = 80;     // paper protocol
  cfg.ppo.policy_lr = 1e-3;
  cfg.ppo.value_lr = 1e-3;
  cfg.ppo.minibatch_size = 512;
  cfg.seed = args.seed;
  return cfg;
}

model::TrainingSpec training_spec(const std::string& name,
                                  const std::string& base_policy,
                                  const BenchArgs& args) {
  model::TrainingSpec spec;
  spec.name = "bench-" + name + "-" + base_policy;
  spec.workload.workload = name;
  spec.workload.trace_jobs = args.trace_jobs;
  spec.trainer = trainer_config(args, base_policy);
  return spec;
}

exp::ScenarioSpec scenario_for(const std::string& workload,
                               const sched::SchedulerSpec& scheduler,
                               const BenchArgs& args) {
  exp::ScenarioSpec spec;
  spec.name = workload + " " + scheduler.label();
  spec.workload = workload;
  spec.trace_jobs = args.trace_jobs;
  spec.scheduler = scheduler;
  return spec;
}

model::TrainingSpec arm_spec(const std::string& arm, const BenchArgs& args) {
  model::TrainingSpec spec = model::find_training_spec(arm);
  spec.workload.trace_jobs = args.trace_jobs;
  spec.trainer.epochs = args.epochs;
  spec.trainer.trajectories_per_epoch = args.trajectories;
  spec.trainer.jobs_per_trajectory = args.jobs_per_trajectory;
  spec.trainer.seed = args.seed;
  return spec;
}

model::TrainOutcome get_or_train(const swf::Trace& trace,
                                 const model::TrainingSpec& spec,
                                 const BenchArgs& args) {
  model::Store& store = model::default_store();
  model::TrainOptions options;
  options.force = args.retrain;
  options.threads = args.threads;
  const model::TrainOutcome outcome =
      model::train_on_trace(trace, spec, store, options);
  if (outcome.cache_hit) {
    util::log_info("model store hit ", outcome.entry.path, " (", spec.name,
                   " on ", trace.name(), ")");
  } else {
    util::log_info("trained ", spec.name, " on ", trace.name(), " (",
                   spec.trainer.epochs, " epochs x ",
                   spec.trainer.trajectories_per_epoch, " trajectories) -> ",
                   outcome.entry.path);
  }
  return outcome;
}

model::TrainOutcome get_or_train_entry(const swf::Trace& trace,
                                       const std::string& base_policy,
                                       const BenchArgs& args) {
  return get_or_train(trace, training_spec(trace.name(), base_policy, args), args);
}

core::Agent get_or_train_agent(const swf::Trace& trace, const std::string& base_policy,
                               const BenchArgs& args) {
  const model::TrainOutcome outcome = get_or_train_entry(trace, base_policy, args);
  return model::default_store().load(outcome.entry.key);
}

const std::string& entry_meta(const model::TrainOutcome& outcome,
                              const std::string& key) {
  const auto it = outcome.entry.meta.find(key);
  if (it == outcome.entry.meta.end()) {
    throw std::runtime_error("store entry " + outcome.entry.key +
                             " carries no '" + key +
                             "' training stat — retrain it (--retrain) once");
  }
  return it->second;
}

double entry_stat(const model::TrainOutcome& outcome, const std::string& key) {
  const std::string& text = entry_meta(outcome, key);
  double value = 0.0;
  if (!exp::parse_number(text, &value)) {
    throw std::runtime_error("store entry " + outcome.entry.key + ": bad stat " +
                             key + "='" + text + "'");
  }
  return value;
}

std::vector<double> entry_eval_curve(const model::TrainOutcome& outcome) {
  const std::string& text = entry_meta(outcome, "eval_curve");
  std::vector<double> curve;
  std::size_t start = 0;
  while (start <= text.size() && !text.empty()) {
    const std::size_t comma = text.find(',', start);
    const std::string token = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (token == "nan") {
      curve.push_back(std::numeric_limits<double>::quiet_NaN());
      continue;
    }
    double value = 0.0;
    if (!exp::parse_number(token, &value)) {
      throw std::runtime_error("store entry " + outcome.entry.key +
                               ": bad eval_curve token '" + token + "'");
    }
    curve.push_back(value);
  }
  return curve;
}

namespace {

core::EvalProtocol protocol_of(const BenchArgs& args) {
  core::EvalProtocol protocol;
  protocol.samples = args.samples;
  protocol.sample_jobs = args.sample_jobs;
  protocol.seed = args.seed;
  return protocol;
}

EvalStats to_stats(core::EvalResult result) {
  EvalStats stats;
  stats.mean = result.mean;
  stats.ci_lo = result.ci_lo;
  stats.ci_hi = result.ci_hi;
  stats.samples = std::move(result.samples);
  return stats;
}

}  // namespace

EvalStats eval_spec_stats(const swf::Trace& trace, const sched::SchedulerSpec& spec,
                          const BenchArgs& args) {
  return to_stats(core::evaluate_spec(trace, spec, protocol_of(args)));
}

double eval_spec(const swf::Trace& trace, const sched::SchedulerSpec& spec,
                 const BenchArgs& args) {
  return eval_spec_stats(trace, spec, args).mean;
}

EvalStats eval_rlbf_stats(const swf::Trace& trace, const core::Agent& agent,
                          const std::string& base_policy, const BenchArgs& args) {
  return to_stats(core::evaluate_agent(trace, agent, base_policy, protocol_of(args)));
}

double eval_rlbf(const swf::Trace& trace, const core::Agent& agent,
                 const std::string& base_policy, const BenchArgs& args) {
  return eval_rlbf_stats(trace, agent, base_policy, args).mean;
}

EvalStats eval_scenario_stats(const exp::ScenarioSpec& spec, const BenchArgs& args) {
  return to_stats(exp::evaluate_scenario(spec, protocol_of(args)));
}

double eval_scenario(const exp::ScenarioSpec& spec, const BenchArgs& args) {
  return eval_scenario_stats(spec, args).mean;
}

double eval_agent_scenario(const std::string& workload, const std::string& policy,
                           const std::string& agent_ref, const BenchArgs& args) {
  sched::SchedulerSpec spec{policy, sched::BackfillKind::Easy,
                            sched::EstimateKind::RequestTime};
  spec.agent = agent_ref;
  return eval_scenario(scenario_for(workload, spec, args), args);
}

}  // namespace rlbf::bench
