#include "bench_common.h"

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iostream>

#include "exp/config.h"
#include "util/log.h"
#include "util/stats.h"

namespace rlbf::bench {

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  exp::ArgParser parser("bench", "Shared bench flags (paper protocol defaults).");
  parser.add("--trace-jobs", &args.trace_jobs, "jobs taken from each trace");
  parser.add("--epochs", &args.epochs, "training epochs per agent");
  parser.add("--trajectories", &args.trajectories, "trajectories per epoch");
  parser.add("--traj-jobs", &args.jobs_per_trajectory, "jobs per trajectory");
  parser.add("--samples", &args.samples, "evaluation repetitions");
  parser.add("--sample-jobs", &args.sample_jobs, "jobs per evaluation sequence");
  parser.add("--seed", &args.seed, "master seed");
  parser.add("--model-dir", &args.model_dir, "trained-agent cache directory");
  parser.add_flag("--retrain", &args.retrain, "ignore cached models");
  parser.add_flag("--quick", &args.quick, "tiny budgets for smoke runs");
  parser.parse_or_exit(argc, argv);
  if (args.quick) {
    args.trace_jobs = std::min<std::size_t>(args.trace_jobs, 3000);
    args.epochs = std::min<std::size_t>(args.epochs, 3);
    args.trajectories = std::min<std::size_t>(args.trajectories, 12);
    args.samples = std::min<std::size_t>(args.samples, 3);
    args.sample_jobs = std::min<std::size_t>(args.sample_jobs, 384);
  }
  return args;
}

swf::Trace trace_by_name(const std::string& name, std::uint64_t seed,
                         std::size_t jobs) {
  for (const auto& targets : workload::all_targets()) {
    if (targets.name == name) return workload::make_preset(targets, jobs, seed);
  }
  throw std::invalid_argument("unknown paper trace: " + name);
}

std::vector<std::string> paper_trace_names() {
  return {"SDSC-SP2", "HPC2N", "Lublin-1", "Lublin-2"};
}

core::TrainerConfig trainer_config(const BenchArgs& args,
                                   const std::string& base_policy) {
  core::TrainerConfig cfg;
  cfg.base_policy = base_policy;
  cfg.epochs = args.epochs;
  cfg.trajectories_per_epoch = args.trajectories;
  cfg.jobs_per_trajectory = args.jobs_per_trajectory;
  cfg.ppo.train_iters = 80;     // paper protocol
  cfg.ppo.policy_lr = 1e-3;
  cfg.ppo.value_lr = 1e-3;
  cfg.ppo.minibatch_size = 512;
  cfg.seed = args.seed;
  return cfg;
}

core::Agent get_or_train_agent(const swf::Trace& trace, const std::string& base_policy,
                               const BenchArgs& args) {
  std::filesystem::create_directories(args.model_dir);
  const std::string path =
      args.model_dir + "/rlbf-" + trace.name() + "-" + base_policy + ".model";
  if (!args.retrain && std::filesystem::exists(path)) {
    util::log_info("loading cached agent ", path);
    return core::Agent::load(path);
  }
  util::log_info("training agent for ", trace.name(), " base=", base_policy,
                 " (", args.epochs, " epochs x ", args.trajectories,
                 " trajectories)");
  core::Trainer trainer(trace, trainer_config(args, base_policy));
  trainer.train();
  if (!trainer.agent().save(path, {{"trace", trace.name()},
                                   {"base_policy", base_policy},
                                   {"epochs", std::to_string(args.epochs)}})) {
    util::log_warn("could not cache agent at ", path);
  }
  return trainer.agent().clone();
}

namespace {

core::EvalProtocol protocol_of(const BenchArgs& args) {
  core::EvalProtocol protocol;
  protocol.samples = args.samples;
  protocol.sample_jobs = args.sample_jobs;
  protocol.seed = args.seed;
  return protocol;
}

EvalStats to_stats(core::EvalResult result) {
  EvalStats stats;
  stats.mean = result.mean;
  stats.ci_lo = result.ci_lo;
  stats.ci_hi = result.ci_hi;
  stats.samples = std::move(result.samples);
  return stats;
}

}  // namespace

EvalStats eval_spec_stats(const swf::Trace& trace, const sched::SchedulerSpec& spec,
                          const BenchArgs& args) {
  return to_stats(core::evaluate_spec(trace, spec, protocol_of(args)));
}

double eval_spec(const swf::Trace& trace, const sched::SchedulerSpec& spec,
                 const BenchArgs& args) {
  return eval_spec_stats(trace, spec, args).mean;
}

EvalStats eval_rlbf_stats(const swf::Trace& trace, const core::Agent& agent,
                          const std::string& base_policy, const BenchArgs& args) {
  return to_stats(core::evaluate_agent(trace, agent, base_policy, protocol_of(args)));
}

double eval_rlbf(const swf::Trace& trace, const core::Agent& agent,
                 const std::string& base_policy, const BenchArgs& args) {
  return eval_rlbf_stats(trace, agent, base_policy, args).mean;
}

}  // namespace rlbf::bench
