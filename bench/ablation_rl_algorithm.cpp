// Ablation A6: the RL algorithm choice. The paper adopts PPO over
// Deep-Q-Learning, citing the faster convergence assurances of policy-
// gradient methods (§2.2.1). This bench measures that design decision:
// PPO, Double-DQN, and REINFORCE (with baseline) are trained under the
// identical collection protocol (same trace, base policy, trajectories
// per epoch, reward shaping), and their greedy deployment bsld is
// reported per epoch alongside the EASY baselines.
//
// Expected shape: PPO converges fastest and most stably; DQN gets there
// eventually but noisily (terminal-only reward makes TD targets sparse);
// plain REINFORCE lags both — the ordering the paper's choice implies.
//
// Each algorithm is a registered "abl-rl-*" TrainingSpec arm trained
// through the model store; per-epoch curves are recovered from the
// stored eval_curve stat (cache hits reprint them without retraining),
// and deployment bsld comes from exp::evaluate_scenario.
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  args.cap_epochs(12);  // three trainings; keep the bench quick
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace trace = bench::trace_by_name("SDSC-SP2", args.seed, args.trace_jobs);

  // EASY baselines under the Table-4 protocol for context.
  const auto easy_bsld = [&](sched::EstimateKind est) {
    return bench::eval_scenario(
        bench::scenario_for("SDSC-SP2",
                            {"FCFS", sched::BackfillKind::Easy, est}, args),
        args);
  };
  const double easy = easy_bsld(sched::EstimateKind::RequestTime);
  const double easy_ar = easy_bsld(sched::EstimateKind::ActualRuntime);

  struct Curve {
    std::string name;
    std::vector<double> eval;  // greedy bsld at each evaluation epoch
    double final_bsld = 0.0;
  };
  std::vector<Curve> curves;

  const std::vector<std::pair<std::string, std::string>> algorithms = {
      {"PPO (paper)", "abl-rl-ppo"},
      {"Double-DQN", "abl-rl-dqn"},
      {"REINFORCE", "abl-rl-reinforce"},
  };
  for (const auto& [label, arm] : algorithms) {
    model::TrainingSpec spec = bench::arm_spec(arm, args);
    if (spec.algorithm == "dqn") {
      // Decay over half the (possibly overridden) budget, as pre-port.
      spec.dqn.epsilon_decay_epochs = std::max<std::size_t>(args.epochs / 2, 1);
    }
    const model::TrainOutcome outcome = bench::get_or_train(trace, spec, args);
    Curve c{label, bench::entry_eval_curve(outcome), 0.0};
    c.final_bsld =
        bench::eval_agent_scenario("SDSC-SP2", "FCFS", outcome.entry.key, args);
    curves.push_back(std::move(c));
  }

  // Per-epoch greedy-eval curves.
  std::vector<std::string> header = {"epoch"};
  for (const auto& c : curves) header.push_back(c.name);
  util::Table curve_table(header);
  std::size_t max_epochs = 0;
  for (const auto& c : curves) max_epochs = std::max(max_epochs, c.eval.size());
  for (std::size_t e = 0; e < max_epochs; ++e) {
    std::vector<std::string> row = {std::to_string(e + 1)};
    for (const auto& c : curves) {
      row.push_back(e < c.eval.size() ? util::Table::fmt(c.eval[e], 2) : "-");
    }
    curve_table.add_row(std::move(row));
  }

  util::Table final_table({"configuration", "bsld (10x1024 sample protocol)"});
  final_table.add_row({"FCFS+EASY", util::Table::fmt(easy, 2)});
  final_table.add_row({"FCFS+EASY-AR", util::Table::fmt(easy_ar, 2)});
  for (const auto& c : curves) {
    final_table.add_row({"FCFS+RLBF/" + c.name, util::Table::fmt(c.final_bsld, 2)});
  }

  std::cout << "# Ablation A6: RL algorithm (PPO vs DQN vs REINFORCE), "
            << trace.name() << ", FCFS base, " << args.epochs << " epochs each\n"
            << "# Greedy held-out bsld per training epoch (lower = better):\n";
  curve_table.print(std::cout);
  std::cout << "\n# Final deployment comparison:\n";
  final_table.print(std::cout);
  curve_table.save_csv("ablation_rl_algorithm_curves.csv");
  final_table.save_csv("ablation_rl_algorithm.csv");
  std::cout << "# CSV: ablation_rl_algorithm_curves.csv, ablation_rl_algorithm.csv\n";
  return 0;
}
