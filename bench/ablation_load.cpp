// Ablation A5: load robustness. An RLBackfilling agent trained at the
// trace's native offered load is deployed at 0.5x–1.5x the arrival rate
// and compared against EASY / EASY-AR at each level — does the learned
// strategy survive a shifted operating point (the deployment reality on
// production clusters)?
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"
#include "workload/transforms.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  util::set_log_level(util::LogLevel::Info);

  const swf::Trace base = bench::trace_by_name("SDSC-SP2", args.seed, args.trace_jobs);
  // Reuses the Table-4/5 cached agent (trained at the native load).
  const core::Agent agent = bench::get_or_train_agent(base, "FCFS", args);

  util::Table table({"load_factor", "offered_load", "FCFS+EASY", "FCFS+EASY-AR",
                     "FCFS+RLBF", "RLBF_vs_EASY"});
  for (const double factor : {0.5, 0.75, 1.0, 1.25, 1.5}) {
    const swf::Trace trace = workload::scale_load(base, factor);
    const sched::SchedulerSpec easy{"FCFS", sched::BackfillKind::Easy,
                                    sched::EstimateKind::RequestTime};
    const sched::SchedulerSpec easy_ar{"FCFS", sched::BackfillKind::Easy,
                                       sched::EstimateKind::ActualRuntime};
    const double easy_bsld = bench::eval_spec(trace, easy, args);
    const double easy_ar_bsld = bench::eval_spec(trace, easy_ar, args);
    const double rlbf_bsld = bench::eval_rlbf(trace, agent, "FCFS", args);
    const double gain = (easy_bsld - rlbf_bsld) / easy_bsld * 100.0;
    table.add_row({util::Table::fmt(factor, 2),
                   util::Table::fmt(workload::offered_load(trace), 3),
                   util::Table::fmt(easy_bsld), util::Table::fmt(easy_ar_bsld),
                   util::Table::fmt(rlbf_bsld),
                   util::Table::fmt(gain, 1) + "%"});
  }

  std::cout << "# Ablation A5: load robustness of an agent trained at 1.0x"
            << " (SDSC-SP2, FCFS base)\n";
  table.print(std::cout);
  table.save_csv("ablation_load.csv");
  std::cout << "# CSV: ablation_load.csv\n";
  return 0;
}
