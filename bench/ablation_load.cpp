// Ablation A5: load robustness. An RLBackfilling agent trained at the
// trace's native offered load is deployed at 0.5x–1.5x the arrival rate
// and compared against EASY / EASY-AR at each level — does the learned
// strategy survive a shifted operating point (the deployment reality on
// production clusters)?
//
// The heuristic arms run through the experiment engine: the load x
// estimate grid expands from the registered "sdsc-easy" scenario and
// each point evaluates under the paper's sampled-sequences protocol.
#include <iostream>

#include "bench_common.h"
#include "exp/scenario.h"
#include "exp/sweep.h"
#include "util/log.h"
#include "util/table.h"
#include "workload/transforms.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  util::set_log_level(util::LogLevel::Info);

  exp::ScenarioSpec base = exp::find_scenario("sdsc-easy");
  base.trace_jobs = args.trace_jobs;

  // Reuses the Table-4/5 cached agent (trained at the native load).
  const swf::Trace native = exp::build_trace(base, args.seed);
  const core::Agent agent = bench::get_or_train_agent(native, "FCFS", args);

  core::EvalProtocol protocol;
  protocol.samples = args.samples;
  protocol.sample_jobs = args.sample_jobs;
  protocol.seed = args.seed;

  const std::vector<exp::SweepAxis> axes =
      exp::parse_sweep("load=0.5,0.75,1.0,1.25,1.5");
  util::Table table({"load_factor", "offered_load", "FCFS+EASY", "FCFS+EASY-AR",
                     "FCFS+RLBF", "RLBF_vs_EASY"});
  for (const exp::ScenarioSpec& point : exp::expand_grid(base, axes)) {
    // One trace per grid point; the estimate variant doesn't affect it.
    const swf::Trace trace = exp::build_trace(point, args.seed);
    sched::SchedulerSpec easy_ar = point.scheduler;
    easy_ar.estimate = sched::EstimateKind::ActualRuntime;
    core::EvalProtocol point_protocol = protocol;
    point_protocol.options = exp::sim_options(point);
    const double easy_bsld =
        core::evaluate_spec(trace, point.scheduler, point_protocol).mean;
    const double easy_ar_bsld =
        core::evaluate_spec(trace, easy_ar, point_protocol).mean;
    const double rlbf_bsld = bench::eval_rlbf(trace, agent, "FCFS", args);
    const double gain = (easy_bsld - rlbf_bsld) / easy_bsld * 100.0;
    table.add_row({util::Table::fmt(point.load_factor, 2),
                   util::Table::fmt(workload::offered_load(trace), 3),
                   util::Table::fmt(easy_bsld), util::Table::fmt(easy_ar_bsld),
                   util::Table::fmt(rlbf_bsld),
                   util::Table::fmt(gain, 1) + "%"});
  }

  std::cout << "# Ablation A5: load robustness of an agent trained at 1.0x"
            << " (SDSC-SP2, FCFS base)\n";
  table.print(std::cout);
  table.save_csv("ablation_load.csv");
  std::cout << "# CSV: ablation_load.csv\n";
  return 0;
}
