// Ablation A1: the paper's kernel-based policy network (one MLP scoring
// each job independently; order-insensitive, tiny parameter count) vs a
// flat MLP over the whole zero-padded observation. Trains both on the
// SDSC-SP2-like trace under identical budgets and evaluates with the
// Table-4 protocol.
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  // Ablations use a reduced budget by default: they compare variants
  // against each other, not against the paper's absolute numbers.
  if (args.epochs > 8) args.epochs = 8;
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace trace = bench::trace_by_name("SDSC-SP2", args.seed, args.trace_jobs);
  util::Table table({"policy_net", "params", "mean_bsld", "final_train_bsld"});

  for (const bool kernel : {true, false}) {
    core::TrainerConfig cfg = bench::trainer_config(args, "FCFS");
    cfg.agent.kernel_policy = kernel;
    cfg.agent.obs.pad_policy_obs = !kernel;  // flat net needs fixed shape
    // Keep the flat net's observation small enough to be trainable at
    // this budget (128 x 8 = 1024 inputs would dwarf the kernel net).
    cfg.agent.obs.max_obsv_size = 32;
    core::Trainer trainer(trace, cfg);
    double final_train_bsld = 0.0;
    trainer.train([&](const core::EpochStats& s) { final_train_bsld = s.mean_bsld; });

    std::size_t params = 0;
    for (const auto& p : trainer.agent().model().policy_parameters()) {
      params += p->value.size();
    }
    const double bsld = bench::eval_rlbf(trace, trainer.agent(), "FCFS", args);
    table.add_row({kernel ? "kernel (paper)" : "flat MLP", std::to_string(params),
                   util::Table::fmt(bsld), util::Table::fmt(final_train_bsld)});
  }

  std::cout << "# Ablation A1: kernel vs flat policy network, " << trace.name()
            << ", equal training budgets (" << args.epochs << " epochs)\n";
  table.print(std::cout);
  table.save_csv("ablation_kernel_vs_flat.csv");
  std::cout << "# CSV: ablation_kernel_vs_flat.csv\n";
  return 0;
}
