// Ablation A1: the paper's kernel-based policy network (one MLP scoring
// each job independently; order-insensitive, tiny parameter count) vs a
// flat MLP over the whole zero-padded observation. Trains both on the
// SDSC-SP2-like trace under identical budgets and evaluates with the
// Table-4 protocol.
//
// The kernel variant at this observation size IS the "abl-obsv-32" arm
// (content addressing collapses equal configurations); the flat MLP is
// "abl-net-flat". Both train through the model store and evaluate via
// exp::evaluate_scenario.
#include <iostream>

#include "bench_common.h"
#include "util/log.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  // Ablations use a reduced budget by default: they compare variants
  // against each other, not against the paper's absolute numbers.
  args.cap_epochs(8);
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace trace = bench::trace_by_name("SDSC-SP2", args.seed, args.trace_jobs);
  util::Table table({"policy_net", "params", "mean_bsld", "final_train_bsld"});

  const std::vector<std::pair<bool, std::string>> arms = {
      {true, "abl-obsv-32"}, {false, "abl-net-flat"}};
  for (const auto& [kernel, arm] : arms) {
    const model::TrainOutcome outcome =
        bench::get_or_train(trace, bench::arm_spec(arm, args), args);
    const double final_train_bsld = bench::entry_stat(outcome, "final_train_bsld");

    const core::Agent agent = model::default_store().load(outcome.entry.key);
    std::size_t params = 0;
    for (const auto& p : agent.model().policy_parameters()) {
      params += p->value.size();
    }
    const double bsld =
        bench::eval_agent_scenario("SDSC-SP2", "FCFS", outcome.entry.key, args);
    table.add_row({kernel ? "kernel (paper)" : "flat MLP", std::to_string(params),
                   util::Table::fmt(bsld), util::Table::fmt(final_train_bsld)});
  }

  std::cout << "# Ablation A1: kernel vs flat policy network, " << trace.name()
            << ", equal training budgets (" << args.epochs << " epochs)\n";
  table.print(std::cout);
  table.save_csv("ablation_kernel_vs_flat.csv");
  std::cout << "# CSV: ablation_kernel_vs_flat.csv\n";
  return 0;
}
