// Transfer a backfilling policy between workloads: train on a synthetic
// Lublin trace, deploy zero-shot on an SDSC-SP2-like archive workload,
// then fine-tune for a few epochs and measure the recovered gap — the
// operational version of the paper's Table-5 generality claim.
//
//   ./transfer_learning [n_jobs] [pretrain_epochs] [finetune_epochs]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/rl_backfill.h"
#include "core/trainer.h"
#include "sched/scheduler.h"
#include "util/log.h"
#include "workload/presets.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const std::size_t n_jobs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3000;
  const std::size_t pre_epochs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;
  const std::size_t fine_epochs = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 3;
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace source = workload::lublin_1(/*seed=*/11, n_jobs);
  const swf::Trace target = workload::sdsc_sp2_like(/*seed=*/12, n_jobs);
  std::cout << "Source: " << source.name() << "  ->  Target: " << target.name()
            << " (" << n_jobs << " jobs each)\n\n";

  const auto bsld_on_target = [&](const core::Agent& agent) {
    core::RlBackfillChooser chooser(agent);
    sched::FcfsPolicy fcfs;
    sched::RequestTimeEstimator estimator;
    return sched::run_schedule(target, fcfs, estimator, &chooser)
        .metrics.avg_bounded_slowdown;
  };

  // References on the target.
  const double easy =
      sched::ConfiguredScheduler({"FCFS", sched::BackfillKind::Easy,
                                  sched::EstimateKind::RequestTime})
          .run(target)
          .metrics.avg_bounded_slowdown;
  std::cout << std::fixed << std::setprecision(2)
            << "FCFS+EASY on target:            " << easy << "\n";

  // 1. Pre-train on the source workload.
  core::TrainerConfig pre_cfg;
  pre_cfg.epochs = pre_epochs;
  pre_cfg.trajectories_per_epoch = 40;
  pre_cfg.ppo.train_iters = 40;
  pre_cfg.ppo.minibatch_size = 512;
  core::Trainer pre(source, pre_cfg);
  pre.train();
  std::cout << "zero-shot transfer:             " << bsld_on_target(pre.agent())
            << "   (trained " << pre_epochs << " epochs on " << source.name()
            << " only)\n";

  // 2. Fine-tune the transferred agent on the target workload.
  core::TrainerConfig fine_cfg = pre_cfg;
  fine_cfg.epochs = fine_epochs;
  fine_cfg.seed = 99;
  core::Trainer fine(target, fine_cfg, pre.agent());
  fine.train();
  std::cout << "fine-tuned (" << fine_epochs << " target epochs):    "
            << bsld_on_target(fine.agent()) << "\n";

  // 3. Same budget from scratch, for the comparison that matters.
  core::Trainer scratch(target, fine_cfg);
  scratch.train();
  std::cout << "scratch at equal budget:        " << bsld_on_target(scratch.agent())
            << "\n";
  return 0;
}
