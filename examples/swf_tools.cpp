// SWF workbench: inspect, generate, and schedule Standard Workload
// Format files from the command line. Real Parallel Workloads Archive
// downloads work directly.
//
//   ./swf_tools stats <file.swf>
//       Table-2-style statistics (size, it, rt, nt, load, estimates).
//   ./swf_tools generate <preset> <out.swf> [jobs] [seed]
//       Write a calibrated synthetic trace (SDSC-SP2 | HPC2N |
//       Lublin-1 | Lublin-2) as an SWF file.
//   ./swf_tools schedule <file.swf> <policy> <backfill> [model.file]
//       Schedule the trace and print metrics. policy: FCFS|SJF|WFP3|F1;
//       backfill: none|easy|easy-ar|easy-sjf|easy-bf|easy-wf|cons|slack|
//       rlbf (rlbf requires a trained model file from train_agent). Set
//       RLBF_SCHEDULE_CSV=<path> to also dump the per-job schedule.
//   ./swf_tools scrub <file.swf> <out.swf> [max_per_window=50] [window_s=3600]
//       Remove single-user submission flurries (archive-style cleaning)
//       and write the scrubbed trace.
//   ./swf_tools fairness <file.swf> <policy> <backfill>
//       Schedule and print the per-user fairness report (Jain indices,
//       spread, worst-off users).
#include <algorithm>
#include <iostream>
#include <string>

#include <cstdlib>

#include "core/rl_backfill.h"
#include "sched/scheduler.h"
#include "sim/fairness.h"
#include "sim/timeline.h"
#include "swf/parser.h"
#include "swf/writer.h"
#include "util/table.h"
#include "workload/presets.h"
#include "workload/transforms.h"

namespace {

using namespace rlbf;

int cmd_stats(const std::string& path) {
  const swf::ParseResult parsed = swf::parse_swf_file(path);
  const swf::TraceStats s = parsed.trace.stats();
  double work = 0.0;
  for (const auto& j : parsed.trace.jobs()) {
    work += static_cast<double>(j.run_time) * static_cast<double>(j.procs());
  }
  const double load =
      s.mean_interarrival > 0.0
          ? work / static_cast<double>(parsed.trace.size()) /
                (s.mean_interarrival * static_cast<double>(s.max_procs))
          : 0.0;

  util::Table t({"metric", "value"});
  t.add_row({"trace", parsed.trace.name()});
  t.add_row({"jobs", std::to_string(s.job_count)});
  t.add_row({"skipped (invalid)", std::to_string(parsed.skipped_jobs)});
  t.add_row({"processors (size)", std::to_string(s.max_procs)});
  t.add_row({"mean interarrival it (s)", util::Table::fmt(s.mean_interarrival, 1)});
  t.add_row({"mean request time rt (s)", util::Table::fmt(s.mean_request_time, 1)});
  t.add_row({"mean actual runtime (s)", util::Table::fmt(s.mean_run_time, 1)});
  t.add_row({"mean requested procs nt", util::Table::fmt(s.mean_requested_procs, 2)});
  t.add_row({"offered load", util::Table::fmt(load, 3)});
  t.add_row({"user estimates", s.has_user_estimates ? "yes (RT != AR)" : "AR only"});
  t.print(std::cout);
  return 0;
}

int cmd_generate(const std::string& preset, const std::string& out, std::size_t jobs,
                 std::uint64_t seed) {
  for (const auto& targets : workload::all_targets()) {
    if (targets.name == preset) {
      const swf::Trace trace = workload::make_preset(targets, jobs, seed);
      if (!swf::write_swf_file(out, trace)) {
        std::cerr << "cannot write " << out << "\n";
        return 1;
      }
      std::cout << "wrote " << trace.size() << " jobs to " << out << "\n";
      return 0;
    }
  }
  std::cerr << "unknown preset: " << preset << "\n";
  return 2;
}

/// Schedule `trace` under a policy/backfill named on the command line;
/// returns false (after printing to stderr) on an unknown name.
bool run_named(const swf::Trace& trace, const std::string& policy,
               const std::string& backfill, const std::string& model_path,
               sched::ScheduleOutcome& outcome, std::string& label) {
  if (backfill == "rlbf") {
    if (model_path.empty()) {
      std::cerr << "rlbf requires a model file (train one with train_agent)\n";
      return false;
    }
    const core::Agent agent = core::Agent::load(model_path);
    core::RlBackfillChooser chooser(agent);
    const auto base = sched::make_policy(policy);
    sched::RequestTimeEstimator est;
    outcome = sched::run_schedule(trace, *base, est, &chooser);
    label = policy + "+RLBF";
    return true;
  }
  sched::SchedulerSpec spec;
  spec.policy = policy;
  if (backfill == "none") spec.backfill = sched::BackfillKind::None;
  else if (backfill == "easy") spec.backfill = sched::BackfillKind::Easy;
  else if (backfill == "easy-sjf") spec.backfill = sched::BackfillKind::EasySjf;
  else if (backfill == "easy-bf") spec.backfill = sched::BackfillKind::EasyBestFit;
  else if (backfill == "easy-wf") spec.backfill = sched::BackfillKind::EasyWorstFit;
  else if (backfill == "cons") spec.backfill = sched::BackfillKind::Conservative;
  else if (backfill == "slack") spec.backfill = sched::BackfillKind::Slack;
  else if (backfill == "easy-ar") {
    spec.backfill = sched::BackfillKind::Easy;
    spec.estimate = sched::EstimateKind::ActualRuntime;
  } else {
    std::cerr << "unknown backfill: " << backfill << "\n";
    return false;
  }
  outcome = sched::ConfiguredScheduler(spec).run(trace);
  label = spec.label();
  return true;
}

int cmd_schedule(const std::string& path, const std::string& policy,
                 const std::string& backfill, const std::string& model_path) {
  const swf::Trace trace = swf::parse_swf_file(path).trace;

  sched::ScheduleOutcome outcome;
  std::string label;
  if (!run_named(trace, policy, backfill, model_path, outcome, label)) return 2;

  const auto& m = outcome.metrics;
  util::Table t({"metric", "value"});
  t.add_row({"scheduler", label});
  t.add_row({"jobs", std::to_string(m.job_count)});
  t.add_row({"avg bounded slowdown", util::Table::fmt(m.avg_bounded_slowdown, 2)});
  t.add_row({"avg slowdown", util::Table::fmt(m.avg_slowdown, 2)});
  t.add_row({"avg wait (s)", util::Table::fmt(m.avg_wait_time, 1)});
  t.add_row({"max wait (s)", util::Table::fmt(m.max_wait_time, 1)});
  t.add_row({"avg turnaround (s)", util::Table::fmt(m.avg_turnaround, 1)});
  t.add_row({"utilization", util::Table::fmt(m.utilization, 3)});
  t.add_row({"makespan (s)", std::to_string(m.makespan)});
  t.add_row({"backfilled jobs", std::to_string(m.backfilled_jobs)});
  t.add_row({"peak usage (procs)", std::to_string(sim::peak_usage(outcome.results))});
  t.print(std::cout);

  if (const char* csv = std::getenv("RLBF_SCHEDULE_CSV")) {
    if (sim::write_schedule_csv(csv, outcome.results)) {
      std::cout << "schedule written to " << csv << "\n";
    } else {
      std::cerr << "cannot write " << csv << "\n";
    }
  }
  return 0;
}

int cmd_scrub(const std::string& in, const std::string& out,
              std::size_t max_per_window, std::int64_t window_s) {
  const swf::Trace trace = swf::parse_swf_file(in).trace;
  workload::FlurryParams params;
  params.max_jobs_per_window = max_per_window;
  params.window_seconds = window_s;
  workload::FlurryReport report;
  const swf::Trace cleaned = workload::remove_flurries(trace, params, &report);
  if (!swf::write_swf_file(out, cleaned)) {
    std::cerr << "cannot write " << out << "\n";
    return 1;
  }
  std::cout << "removed " << report.removed_jobs << " flurry jobs from "
            << report.flagged_users << " user(s); wrote " << cleaned.size()
            << " jobs to " << out << "\n";
  return 0;
}

int cmd_fairness(const std::string& path, const std::string& policy,
                 const std::string& backfill) {
  const swf::Trace trace = swf::parse_swf_file(path).trace;
  sched::ScheduleOutcome outcome;
  std::string label;
  if (!run_named(trace, policy, backfill, "", outcome, label)) return 2;

  const sim::FairnessReport report = sim::fairness_report(outcome.results, trace);
  util::Table summary({"metric", "value"});
  summary.add_row({"scheduler", label});
  summary.add_row({"avg bounded slowdown",
                   util::Table::fmt(outcome.metrics.avg_bounded_slowdown, 2)});
  summary.add_row({"users", std::to_string(report.user_count)});
  summary.add_row({"bsld Jain index", util::Table::fmt(report.bsld_jain, 3)});
  summary.add_row({"wait Jain index", util::Table::fmt(report.wait_jain, 3)});
  summary.add_row({"bsld max/min spread", util::Table::fmt(report.bsld_spread, 1)});
  summary.print(std::cout);

  auto users = report.users;
  std::sort(users.begin(), users.end(),
            [](const sim::UserMetrics& a, const sim::UserMetrics& b) {
              return a.avg_bounded_slowdown > b.avg_bounded_slowdown;
            });
  std::cout << "\nworst-off users:\n";
  util::Table worst({"user", "jobs", "mean bsld", "mean wait(s)", "backfilled"});
  for (std::size_t i = 0; i < std::min<std::size_t>(users.size(), 8); ++i) {
    const auto& u = users[i];
    worst.add_row({std::to_string(u.user_id), std::to_string(u.job_count),
                   util::Table::fmt(u.avg_bounded_slowdown, 1),
                   util::Table::fmt(u.avg_wait_time, 0),
                   std::to_string(u.backfilled_jobs)});
  }
  worst.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "usage:\n"
      "  swf_tools stats <file.swf>\n"
      "  swf_tools generate <preset> <out.swf> [jobs=10000] [seed=1]\n"
      "  swf_tools schedule <file.swf> <policy> <backfill> [model.file]\n"
      "  swf_tools scrub <file.swf> <out.swf> [max_per_window=50] [window_s=3600]\n"
      "  swf_tools fairness <file.swf> <policy> <backfill>\n";
  if (argc < 2) {
    std::cerr << usage;
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "stats" && argc >= 3) return cmd_stats(argv[2]);
    if (cmd == "generate" && argc >= 4) {
      const std::size_t jobs = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 10000;
      const std::uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
      return cmd_generate(argv[2], argv[3], jobs, seed);
    }
    if (cmd == "schedule" && argc >= 5) {
      return cmd_schedule(argv[2], argv[3], argv[4], argc > 5 ? argv[5] : "");
    }
    if (cmd == "scrub" && argc >= 4) {
      const std::size_t max_per_window =
          argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 50;
      const std::int64_t window_s =
          argc > 5 ? std::strtoll(argv[5], nullptr, 10) : 3600;
      return cmd_scrub(argv[2], argv[3], max_per_window, window_s);
    }
    if (cmd == "fairness" && argc >= 5) {
      return cmd_fairness(argv[2], argv[3], argv[4]);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << usage;
  return 2;
}
