// Who pays for a lower average slowdown? Backfilling reorders waiting
// across users; this example schedules one trace under several
// strategies and prints the per-user fairness summary next to the usual
// averages — Jain's index over per-user mean bounded slowdowns, the
// max/min spread, and the worst-off users.
//
//   ./fairness_report [n_jobs]
#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "sched/scheduler.h"
#include "sim/fairness.h"
#include "util/log.h"
#include "workload/presets.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const std::size_t n_jobs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5000;
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace trace = workload::sdsc_sp2_like(/*seed=*/3, n_jobs);
  std::cout << "Trace: " << trace.name() << ", " << trace.size() << " jobs\n\n";
  std::cout << std::left << std::setw(22) << "strategy" << std::right
            << std::setw(10) << "bsld" << std::setw(12) << "bsld Jain"
            << std::setw(12) << "wait Jain" << std::setw(12) << "spread"
            << std::setw(8) << "users" << "\n";

  const std::vector<std::pair<std::string, sched::SchedulerSpec>> strategies = {
      {"FCFS (no backfill)",
       {"FCFS", sched::BackfillKind::None, sched::EstimateKind::RequestTime}},
      {"FCFS+EASY",
       {"FCFS", sched::BackfillKind::Easy, sched::EstimateKind::RequestTime}},
      {"FCFS+EASY-AR",
       {"FCFS", sched::BackfillKind::Easy, sched::EstimateKind::ActualRuntime}},
      {"FCFS+Conservative",
       {"FCFS", sched::BackfillKind::Conservative, sched::EstimateKind::RequestTime}},
      {"SJF+EASY",
       {"SJF", sched::BackfillKind::Easy, sched::EstimateKind::RequestTime}},
  };

  sim::FairnessReport worst_report;
  std::string worst_name;
  double worst_jain = 2.0;
  for (const auto& [name, spec] : strategies) {
    const auto outcome = sched::ConfiguredScheduler(spec).run(trace);
    const auto report = sim::fairness_report(outcome.results, trace);
    std::cout << std::left << std::setw(22) << name << std::right << std::fixed
              << std::setw(10) << std::setprecision(2)
              << outcome.metrics.avg_bounded_slowdown << std::setw(12)
              << std::setprecision(3) << report.bsld_jain << std::setw(12)
              << report.wait_jain << std::setw(12) << std::setprecision(1)
              << report.bsld_spread << std::setw(8) << report.user_count << "\n";
    if (report.bsld_jain < worst_jain) {
      worst_jain = report.bsld_jain;
      worst_report = report;
      worst_name = name;
    }
  }

  // Spotlight the least fair strategy's most punished users.
  auto users = worst_report.users;
  std::sort(users.begin(), users.end(),
            [](const sim::UserMetrics& a, const sim::UserMetrics& b) {
              return a.avg_bounded_slowdown > b.avg_bounded_slowdown;
            });
  std::cout << "\nLeast fair strategy: " << worst_name << " (bsld Jain "
            << std::setprecision(3) << worst_jain << ")\n"
            << "Worst-off users:\n";
  std::cout << std::setw(10) << "user" << std::setw(10) << "jobs" << std::setw(12)
            << "mean bsld" << std::setw(14) << "mean wait(s)" << std::setw(12)
            << "backfilled" << "\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(users.size(), 5); ++i) {
    const auto& u = users[i];
    std::cout << std::setw(10) << u.user_id << std::setw(10) << u.job_count
              << std::setw(12) << std::setprecision(1) << u.avg_bounded_slowdown
              << std::setw(14) << std::setprecision(0) << u.avg_wait_time
              << std::setw(12) << u.backfilled_jobs << "\n";
  }
  return 0;
}
