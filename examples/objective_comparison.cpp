// Future-work demo (paper §3.1: "We plan to explore other optimization
// goals"): train RLBackfilling agents against three different objectives
// — bounded slowdown (the paper's), average wait time, and average
// turnaround — and cross-evaluate every agent on every metric.
//
//   ./objective_comparison [n_jobs] [epochs]
#include <cstdlib>
#include <iostream>

#include "core/rl_backfill.h"
#include "core/trainer.h"
#include "sched/scheduler.h"
#include "util/log.h"
#include "util/table.h"
#include "workload/presets.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const std::size_t n_jobs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6000;
  const std::size_t epochs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 15;
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace trace = workload::sdsc_sp2_like(1, n_jobs);

  struct Objective {
    const char* label;
    core::RewardObjective objective;
  };
  const std::vector<Objective> objectives = {
      {"bsld (paper)", core::RewardObjective::BoundedSlowdown},
      {"avg wait", core::RewardObjective::AvgWaitTime},
      {"avg turnaround", core::RewardObjective::AvgTurnaround},
  };

  // Cross-evaluation protocol: the same 6 held-out sequences for everyone.
  const auto evaluate = [&](sim::BackfillChooser* chooser) {
    sched::FcfsPolicy fcfs;
    sched::RequestTimeEstimator est;
    util::Rng rng(777);
    double bsld = 0, wait = 0, turn = 0;
    const int reps = 6;
    for (int i = 0; i < reps; ++i) {
      const swf::Trace seq = trace.sample(768, rng);
      const auto out = sched::run_schedule(seq, fcfs, est, chooser);
      bsld += out.metrics.avg_bounded_slowdown;
      wait += out.metrics.avg_wait_time;
      turn += out.metrics.avg_turnaround;
    }
    return std::array<double, 3>{bsld / reps, wait / reps, turn / reps};
  };

  util::Table table({"trained for", "bsld", "avg_wait(s)", "avg_turnaround(s)"});
  sched::EasyBackfillChooser easy;
  const auto base = evaluate(&easy);
  table.add_row({"(FCFS+EASY baseline)", util::Table::fmt(base[0], 2),
                 util::Table::fmt(base[1], 0), util::Table::fmt(base[2], 0)});

  for (const auto& obj : objectives) {
    core::TrainerConfig cfg;
    cfg.epochs = epochs;
    cfg.trajectories_per_epoch = 40;
    cfg.jobs_per_trajectory = 256;
    cfg.ppo.minibatch_size = 512;
    cfg.env.objective = obj.objective;
    cfg.seed = 7;
    core::Trainer trainer(trace, cfg);
    trainer.train();
    core::RlBackfillChooser chooser(trainer.agent());
    const auto m = evaluate(&chooser);
    table.add_row({obj.label, util::Table::fmt(m[0], 2), util::Table::fmt(m[1], 0),
                   util::Table::fmt(m[2], 0)});
  }

  std::cout << "RLBackfilling trained per objective, cross-evaluated on all"
            << " metrics (" << trace.name() << ", FCFS base policy)\n\n";
  table.print(std::cout);
  return 0;
}
