// Demonstrates the paper's motivating observation (Figure 1): better
// runtime predictions do NOT monotonically improve EASY backfilling.
// Sweeps prediction noise from the oracle (+0%) through +100% and the
// raw user request time for each base policy.
//
//   ./prediction_tradeoff [n_jobs] [seed]
#include <cstdlib>
#include <iostream>

#include "sched/scheduler.h"
#include "util/table.h"
#include "workload/presets.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const std::size_t n_jobs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const swf::Trace trace = workload::sdsc_sp2_like(seed, n_jobs);
  const std::vector<double> noise_levels = {0.0, 0.05, 0.10, 0.20, 0.40, 1.00};

  std::vector<std::string> header = {"policy"};
  header.push_back("AR(+0%)");
  for (std::size_t i = 1; i < noise_levels.size(); ++i) {
    header.push_back("+" + std::to_string(static_cast<int>(noise_levels[i] * 100)) + "%");
  }
  header.push_back("RequestTime");
  util::Table table(header);

  for (const auto& policy : sched::all_policy_names()) {
    std::vector<std::string> row = {policy};
    for (double noise : noise_levels) {
      sched::SchedulerSpec spec{policy, sched::BackfillKind::Easy,
                                noise == 0.0 ? sched::EstimateKind::ActualRuntime
                                             : sched::EstimateKind::Noisy};
      spec.noise_fraction = noise;
      spec.noise_seed = seed;
      const auto out = sched::ConfiguredScheduler(spec).run(trace);
      row.push_back(util::Table::fmt(out.metrics.avg_bounded_slowdown, 2));
    }
    sched::SchedulerSpec rt_spec{policy, sched::BackfillKind::Easy,
                                 sched::EstimateKind::RequestTime};
    row.push_back(util::Table::fmt(
        sched::ConfiguredScheduler(rt_spec).run(trace).metrics.avg_bounded_slowdown, 2));
    table.add_row(std::move(row));
  }

  std::cout << "EASY backfilling bsld vs prediction accuracy ("
            << trace.name() << ", " << trace.size() << " jobs)\n"
            << "Lower is better; note the non-monotone rows — the paper's"
            << " accuracy/backfill trade-off.\n\n";
  table.print(std::cout);
  return 0;
}
