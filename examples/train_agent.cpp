// Train an RLBackfilling agent on one of the paper's four workloads and
// save the model to an explicit path — a minimal demo of the raw
// core::Trainer API. For cached, content-addressed training (train once,
// reuse from every bench/scenario) use `rlbf_run train` and the model
// store (src/model) instead.
//
//   ./train_agent <trace> [epochs] [out.model]
//     trace  : SDSC-SP2 | HPC2N | Lublin-1 | Lublin-2
//     epochs : default 50
//
// Uses the paper's training protocol: 100 trajectories per epoch, 256
// consecutive jobs per trajectory, 80 PPO update iterations, lr 1e-3.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/trainer.h"
#include "util/log.h"
#include "util/table.h"
#include "workload/presets.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <SDSC-SP2|HPC2N|Lublin-1|Lublin-2>"
              << " [epochs] [out.model]\n";
    return 2;
  }
  const std::string trace_name = argv[1];
  const std::size_t epochs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 50;
  const std::string out_path =
      argc > 3 ? argv[3] : ("rlbf-" + trace_name + ".model");
  util::set_log_level(util::LogLevel::Info);

  swf::Trace trace = [&]() -> swf::Trace {
    for (const auto& targets : workload::all_targets()) {
      if (targets.name == trace_name) return workload::make_preset(targets, 10000, 1);
    }
    std::cerr << "unknown trace: " << trace_name << "\n";
    std::exit(2);  // no fall-through: exit terminates
  }();

  core::TrainerConfig cfg;
  cfg.epochs = epochs;
  cfg.trajectories_per_epoch = 100;  // paper protocol
  cfg.jobs_per_trajectory = 256;
  cfg.ppo.train_iters = 80;
  cfg.ppo.policy_lr = 1e-3;
  cfg.ppo.value_lr = 1e-3;
  cfg.seed = 1;

  core::Trainer trainer(std::move(trace), cfg);
  util::Table curve({"epoch", "mean_reward", "mean_bsld", "baseline_bsld", "steps"});
  trainer.train([&](const core::EpochStats& s) {
    curve.add_row({std::to_string(s.epoch), util::Table::fmt(s.mean_reward, 4),
                   util::Table::fmt(s.mean_bsld, 2),
                   util::Table::fmt(s.mean_baseline_bsld, 2),
                   std::to_string(s.steps)});
  });
  curve.print(std::cout);

  if (!trainer.agent().save(out_path, {{"trace", trace_name},
                                       {"epochs", std::to_string(epochs)},
                                       {"base_policy", cfg.base_policy}})) {
    std::cerr << "failed to save " << out_path << "\n";
    return 1;
  }
  std::cout << "saved agent to " << out_path << "\n";
  return 0;
}
