// Train the same backfilling agent with three RL algorithms — PPO (the
// paper's choice), Double-DQN, and REINFORCE — and compare convergence
// and final scheduling quality. A runnable, small-budget version of
// bench/ablation_rl_algorithm.
//
//   ./compare_rl_algorithms [n_jobs] [epochs]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/alt_trainers.h"
#include "core/rl_backfill.h"
#include "core/trainer.h"
#include "sched/scheduler.h"
#include "util/log.h"
#include "workload/presets.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const std::size_t n_jobs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3000;
  const std::size_t epochs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;
  util::set_log_level(util::LogLevel::Warn);

  const swf::Trace trace = workload::sdsc_sp2_like(/*seed=*/1, n_jobs);
  std::cout << "Trace: " << trace.name() << ", " << trace.size() << " jobs\n"
            << "Budget: " << epochs << " epochs x 40 trajectories each\n\n";

  // EASY reference on the whole trace.
  const auto easy =
      sched::ConfiguredScheduler({"FCFS", sched::BackfillKind::Easy,
                                  sched::EstimateKind::RequestTime})
          .run(trace);
  std::cout << "FCFS+EASY reference bsld: " << std::fixed << std::setprecision(2)
            << easy.metrics.avg_bounded_slowdown << "\n\n";

  const auto deploy_bsld = [&](const core::Agent& agent) {
    core::RlBackfillChooser chooser(agent);
    sched::FcfsPolicy fcfs;
    sched::RequestTimeEstimator estimator;
    return sched::run_schedule(trace, fcfs, estimator, &chooser)
        .metrics.avg_bounded_slowdown;
  };

  {
    std::cout << "--- PPO (the paper's algorithm) ---\n";
    core::TrainerConfig cfg;
    cfg.epochs = epochs;
    cfg.trajectories_per_epoch = 40;
    cfg.ppo.train_iters = 40;
    cfg.ppo.minibatch_size = 512;
    cfg.eval_every = 1;
    core::Trainer trainer(trace, cfg);
    trainer.train([](const core::EpochStats& s) {
      std::cout << "  epoch " << s.epoch << ": reward " << std::setprecision(3)
                << s.mean_reward << ", greedy eval bsld " << std::setprecision(2)
                << s.eval_bsld << "\n";
    });
    std::cout << "  deployed bsld: " << deploy_bsld(trainer.agent()) << "\n\n";
  }
  {
    std::cout << "--- Double-DQN (the paper's rejected alternative) ---\n";
    core::DqnTrainerConfig cfg;
    cfg.epochs = epochs;
    cfg.trajectories_per_epoch = 40;
    cfg.dqn.epsilon_decay_epochs = std::max<std::size_t>(epochs / 2, 1);
    cfg.eval_every = 1;
    core::DqnTrainer trainer(trace, cfg);
    trainer.train([](const core::AltEpochStats& s) {
      std::cout << "  epoch " << s.epoch << ": epsilon " << std::setprecision(2)
                << s.epsilon << ", TD loss " << std::setprecision(4) << s.loss
                << ", greedy eval bsld " << std::setprecision(2) << s.eval_bsld
                << "\n";
    });
    std::cout << "  deployed bsld: " << deploy_bsld(trainer.agent()) << "\n\n";
  }
  {
    std::cout << "--- REINFORCE (the classic policy gradient) ---\n";
    core::ReinforceTrainerConfig cfg;
    cfg.epochs = epochs;
    cfg.trajectories_per_epoch = 40;
    cfg.reinforce.policy_lr = 3e-3;
    cfg.eval_every = 1;
    core::ReinforceTrainer trainer(trace, cfg);
    trainer.train([](const core::AltEpochStats& s) {
      std::cout << "  epoch " << s.epoch << ": policy loss " << std::setprecision(4)
                << s.loss << ", greedy eval bsld " << std::setprecision(2)
                << s.eval_bsld << "\n";
    });
    std::cout << "  deployed bsld: " << deploy_bsld(trainer.agent()) << "\n";
  }
  return 0;
}
