// Quickstart: generate a workload, schedule it with FCFS + EASY
// backfilling, train a small RLBackfilling agent, and compare.
//
//   ./quickstart [n_jobs] [epochs]
//
// This walks the full public API surface in ~80 lines: workload presets,
// ConfiguredScheduler, Trainer, and RlBackfillChooser.
#include <cstdlib>
#include <iostream>

#include "core/rl_backfill.h"
#include "core/trainer.h"
#include "sched/scheduler.h"
#include "util/log.h"
#include "workload/presets.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const std::size_t n_jobs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3000;
  const std::size_t epochs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 5;
  util::set_log_level(util::LogLevel::Info);

  // 1. A synthetic SDSC-SP2-like trace, calibrated to the paper's
  //    Table-2 statistics (see DESIGN.md for the substitution notes).
  const swf::Trace trace = workload::sdsc_sp2_like(/*seed=*/1, n_jobs);
  const swf::TraceStats stats = trace.stats();
  std::cout << "Trace " << trace.name() << ": " << stats.job_count << " jobs, "
            << stats.max_procs << " processors, mean interarrival "
            << stats.mean_interarrival << " s\n";

  // 2. Classic EASY backfilling with user-submitted request times.
  const sched::SchedulerSpec easy_spec{"FCFS", sched::BackfillKind::Easy,
                                       sched::EstimateKind::RequestTime};
  const auto easy = sched::ConfiguredScheduler(easy_spec).run(trace);
  std::cout << easy_spec.label() << ": avg bounded slowdown "
            << easy.metrics.avg_bounded_slowdown << ", utilization "
            << easy.metrics.utilization << ", backfilled "
            << easy.metrics.backfilled_jobs << " jobs\n";

  // 3. Train RLBackfilling on the same trace (short demo budget; see
  //    examples/train_agent.cpp for paper-scale training).
  core::TrainerConfig cfg;
  cfg.epochs = epochs;
  cfg.trajectories_per_epoch = 40;
  cfg.jobs_per_trajectory = 256;
  cfg.ppo.minibatch_size = 512;
  cfg.ppo.train_iters = 40;
  core::Trainer trainer(trace, cfg);
  trainer.train();

  // 4. Deploy the trained agent as a drop-in backfill policy.
  core::RlBackfillChooser rlbf(trainer.agent());
  sched::FcfsPolicy fcfs;
  sched::RequestTimeEstimator estimator;
  const auto rl = sched::run_schedule(trace, fcfs, estimator, &rlbf);
  std::cout << "FCFS+RLBF: avg bounded slowdown "
            << rl.metrics.avg_bounded_slowdown << ", backfilled "
            << rl.metrics.backfilled_jobs << " jobs\n";

  const double gain = (easy.metrics.avg_bounded_slowdown -
                       rl.metrics.avg_bounded_slowdown) /
                      easy.metrics.avg_bounded_slowdown;
  std::cout << "RLBackfilling improvement over EASY: " << gain * 100.0 << "%\n";
  return 0;
}
