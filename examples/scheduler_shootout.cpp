// Compare every base scheduling policy crossed with every backfilling
// strategy on a chosen workload — the paper's Table-3/4 machinery as an
// interactive tool.
//
//   ./scheduler_shootout [trace] [n_jobs]
//     trace: SDSC-SP2 (default) | HPC2N | Lublin-1 | Lublin-2
#include <cstdlib>
#include <iostream>
#include <string>

#include "sched/scheduler.h"
#include "util/table.h"
#include "workload/presets.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  const std::string trace_name = argc > 1 ? argv[1] : "SDSC-SP2";
  const std::size_t n_jobs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3000;

  swf::Trace trace = [&]() -> swf::Trace {
    for (const auto& targets : workload::all_targets()) {
      if (targets.name == trace_name) {
        return workload::make_preset(targets, n_jobs, 1);
      }
    }
    std::cerr << "unknown trace: " << trace_name << "\n";
    std::exit(2);
  }();
  const bool has_estimates = trace.stats().has_user_estimates;

  util::Table table(
      {"scheduler", "bsld", "avg_wait(s)", "utilization", "backfilled"});
  for (const auto& policy : sched::all_policy_names()) {
    std::vector<std::pair<sched::BackfillKind, sched::EstimateKind>> combos = {
        {sched::BackfillKind::None, sched::EstimateKind::RequestTime},
        {sched::BackfillKind::Easy, sched::EstimateKind::RequestTime},
        {sched::BackfillKind::Conservative, sched::EstimateKind::RequestTime},
    };
    if (has_estimates) {
      // EASY-AR only differs from EASY when RT != AR.
      combos.push_back({sched::BackfillKind::Easy, sched::EstimateKind::ActualRuntime});
    }
    for (const auto& [backfill, estimate] : combos) {
      const sched::SchedulerSpec spec{policy, backfill, estimate};
      const auto out = sched::ConfiguredScheduler(spec).run(trace);
      table.add_row({spec.label(),
                     util::Table::fmt(out.metrics.avg_bounded_slowdown, 2),
                     util::Table::fmt(out.metrics.avg_wait_time, 0),
                     util::Table::fmt(out.metrics.utilization, 3),
                     std::to_string(out.metrics.backfilled_jobs)});
    }
  }
  std::cout << "Workload: " << trace.name() << " (" << trace.size() << " jobs, "
            << trace.machine_procs() << " processors)\n\n";
  table.print(std::cout);
  return 0;
}
