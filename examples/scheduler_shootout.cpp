// Compare every base scheduling policy crossed with every backfilling
// strategy on a chosen workload — the paper's Table-3/4 machinery as an
// interactive tool, expressed as a sweep over the experiment engine so
// the combinations run in parallel.
//
//   ./scheduler_shootout [trace] [n_jobs]          (legacy positional form)
//   ./scheduler_shootout --trace=HPC2N --jobs=3000 --seed=1 --threads=8
#include <algorithm>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "exp/config.h"
#include "exp/scenario.h"
#include "exp/sink.h"
#include "exp/sweep.h"
#include "sched/scheduler.h"
#include "util/table.h"
#include "workload/presets.h"

int main(int argc, char** argv) {
  using namespace rlbf;
  std::string trace_name = "SDSC-SP2";
  std::string jobs_text = "3000";
  std::uint64_t seed = 1;
  std::size_t threads = 0;

  exp::ArgParser parser("scheduler_shootout",
                        "Cross every base policy with every backfill strategy.");
  parser.add_positional("trace", &trace_name, "workload preset name");
  parser.add_positional("n_jobs", &jobs_text, "jobs to simulate");
  parser.add("--trace", &trace_name, "workload preset name");
  parser.add("--jobs", &jobs_text, "jobs to simulate");
  parser.add("--seed", &seed, "trace-construction seed");
  parser.add("--threads", &threads, "worker threads (0 = hardware)");
  parser.parse_or_exit(argc, argv);

  std::size_t n_jobs = 0;
  if (!exp::parse_number(jobs_text, &n_jobs) || n_jobs == 0) {
    std::cerr << "bad job count: " << jobs_text << "\n";
    return 2;
  }

  const auto targets = workload::all_targets();
  const auto target =
      std::find_if(targets.begin(), targets.end(),
                   [&](const auto& t) { return t.name == trace_name; });
  if (target == targets.end()) {
    std::cerr << "unknown trace: " << trace_name << "\n";
    return 2;
  }
  const bool has_estimates = target->user_estimates;

  // One scenario instance per (policy, backfill, estimate) combination;
  // every instance rebuilds the same trace from (workload, jobs, seed).
  exp::ScenarioSpec base;
  base.name = "shootout";
  base.workload = trace_name;
  base.trace_jobs = n_jobs;
  std::vector<exp::ScenarioSpec> specs;
  for (const auto& policy : sched::all_policy_names()) {
    std::vector<std::pair<sched::BackfillKind, sched::EstimateKind>> combos = {
        {sched::BackfillKind::None, sched::EstimateKind::RequestTime},
        {sched::BackfillKind::Easy, sched::EstimateKind::RequestTime},
        {sched::BackfillKind::Conservative, sched::EstimateKind::RequestTime},
    };
    if (has_estimates) {
      // EASY-AR only differs from EASY when RT != AR.
      combos.push_back({sched::BackfillKind::Easy, sched::EstimateKind::ActualRuntime});
    }
    for (const auto& [backfill, estimate] : combos) {
      exp::ScenarioSpec spec = base;
      spec.scheduler = {policy, backfill, estimate};
      spec.name = spec.scheduler.label();
      specs.push_back(std::move(spec));
    }
  }

  exp::SweepOptions options;
  options.seed = seed;
  options.threads = threads;
  const std::vector<exp::ScenarioRun> runs = exp::run_sweep(specs, options);

  util::Table table(
      {"scheduler", "bsld", "avg_wait(s)", "utilization", "backfilled"});
  for (const exp::ScenarioRun& run : runs) {
    table.add_row({run.scenario, util::Table::fmt(run.metrics.avg_bounded_slowdown, 2),
                   util::Table::fmt(run.metrics.avg_wait_time, 0),
                   util::Table::fmt(run.metrics.utilization, 3),
                   std::to_string(run.metrics.backfilled_jobs)});
  }
  std::cout << "Workload: " << trace_name << " (" << runs.front().jobs
            << " jobs, " << target->machine_procs << " processors)\n\n";
  table.print(std::cout);
  return 0;
}
