// rlbf_run — the unified driver over the scenario & experiment engine,
// the model store, and the distributed orchestration layer.
//
//   rlbf_run help                           # every subcommand + usage
//   rlbf_run help run                       # one subcommand in detail
//
//   rlbf_run run --list                     # the scenario catalog
//   rlbf_run run --describe=sdsc-flurry    # one scenario in detail
//   rlbf_run run --scenario=sdsc-easy --seed=1 --out_dir=out
//   rlbf_run run --scenario=sdsc-easy --threads=8 --out_dir=out
//            --sweep="load=0.5,1.0,1.5;policy=FCFS,SJF"
//   rlbf_run run --scenario=sdsc-easy --samples=10 --sample_jobs=1024
//   rlbf_run run --scenario=sdsc-easy --agent=sdsc-fcfs   # RL backfilling
//
//   rlbf_run train --list                   # the training-spec catalog
//   rlbf_run train --spec=sdsc-fcfs         # train into the model store
//                                           # (second invocation: cache hit)
//   rlbf_run train --ablations              # every abl-* ablation arm
//   rlbf_run train --ablations --shard=0/3  # this machine's third of the grid
//   rlbf_run train --ablations --workers=3  # same grid, fanned out over 3
//                                           # local worker processes
//   rlbf_run run --scenario=abl-obsv-8      # evaluate a trained arm
//   rlbf_run models                         # list the store
//   rlbf_run models --prune                 # drop unreferenced entries
//
// Distributed sweeps (`sweep` is an alias of `run`): every machine runs
// one shard of the deterministic instance partition, and `merge`
// recombines the shard-tagged outputs into files byte-identical to an
// unsharded run. `orchestrate` closes that loop in one invocation — it
// plans the shard jobs, launches worker processes (local pool, or any
// ssh/batch command template over --hosts), retries failures, and
// merges the collected outputs:
//
//   rlbf_run orchestrate --scenario=sdsc-easy --sweep="load=0.5,1.0"
//            --workers=3 --out_dir=merged          # one machine, 3 workers
//   rlbf_run orchestrate ... --workers=2 --hosts=a,b
//            --command_template="ssh {host} {qcommand}"
//            --fetch_template="scp -r {host}:{remote} {local}"
//
// Model stores travel between machines as verified bundles:
//
//   rlbf_run models --export_bundle=bundle          # pack the store
//   rlbf_run models --store=other --import_bundle=bundle  # verified import
//   rlbf_run models --import_bundle=b1,b2,collected/      # several at once
//   rlbf_run models --max_store_bytes=100000000     # LRU size cap
//
// The bare legacy form (no subcommand) still works and means `run`.
//
// Output is deterministic for a given --seed at any --threads or
// --workers value: trained models, the summary CSV/JSON, and the
// per-job CSVs are byte-identical across repeated runs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/collection.h"
#include "dist/job.h"
#include "dist/launcher.h"
#include "dist/orchestrator.h"
#include "dist/rollout.h"
#include "exp/config.h"
#include "exp/scenario.h"
#include "exp/shard.h"
#include "exp/sink.h"
#include "exp/sweep.h"
#include "model/store.h"
#include "model/train.h"
#include "rl/wire.h"
#include "obs/json.h"
#include "obs/merge.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/series.h"
#include "obs/trace.h"
#include "util/libm_fingerprint.h"
#include "util/log.h"
#include "util/subprocess.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace rlbf;

/// The ORIGINAL argv[0], captured in main before subcommand dispatch
/// shifts argv (inside a subcommand, argv[0] is the subcommand name).
/// Fallback for util::current_executable when /proc/self/exe is absent.
std::string g_program_path;

void list_scenarios() {
  util::Table table({"scenario", "configuration", "description"});
  for (const std::string& name : exp::scenario_names()) {
    const exp::ScenarioSpec& spec = exp::find_scenario(name);
    table.add_row({spec.name, spec.label(), spec.description});
  }
  table.print(std::cout);
}

/// Split a comma-separated name list; empty elements are an error.
std::vector<std::string> split_names(const std::string& text,
                                     const std::string& flag) {
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string name = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (name.empty()) {
      throw std::invalid_argument("empty name in " + flag + "=" + text);
    }
    names.push_back(name);
  }
  return names;
}

void describe_scenario(const std::string& name) {
  const exp::ScenarioSpec& s = exp::find_scenario(name);
  std::cout << s.name << ": " << s.description << "\n"
            << "  workload:       " << s.workload << " (" << s.trace_jobs
            << " jobs"
            << (s.machine_procs > 0
                    ? ", " + std::to_string(s.machine_procs) + " procs"
                    : std::string())
            << ")\n"
            << "  scheduler:      " << s.scheduler.label() << " (policy="
            << s.scheduler.policy
            << " backfill=" << exp::backfill_kind_name(s.scheduler.backfill)
            << " estimate=" << exp::estimate_kind_name(s.scheduler.estimate)
            << ")\n"
            << (s.scheduler.uses_agent()
                    ? "  agent:          " + s.scheduler.agent + "\n"
                    : std::string())
            << "  load_factor:    " << s.load_factor << "\n"
            << "  heavy_tail:     prob=" << s.heavy_tail_prob
            << " alpha=" << s.heavy_tail_alpha << "\n"
            << "  flurry:         " << (s.inject_flurry ? "inject" : "off")
            << (s.scrub_flurries ? " + scrub" : "") << "\n"
            << "  kill_overrun:   " << (s.kill_exceeding_request ? "on" : "off")
            << "\n";
}

// ------------------------------------------------------------- obs flags

/// The process-wide series recorder behind --series_out. One recorder
/// per process (like the metrics Registry and the trace buffer), so the
/// trainer seam, the orchestrator's per-job duration series, and the
/// registry sampler all latch into the same document. Construction on
/// first use anchors the steady/wall pair.
obs::SeriesRecorder& series_recorder() {
  static obs::SeriesRecorder recorder;
  return recorder;
}

/// The registry sampler feeding series_recorder(). Manual-tick mode:
/// heartbeats and the final dump call sample_once(); no background
/// thread of its own. Against a registry with no enabled metrics it
/// records nothing — which is what keeps a bare --series_out run's
/// series file free of timing-dependent registry data.
obs::RegistrySampler& registry_sampler() {
  static obs::RegistrySampler sampler(series_recorder());
  return sampler;
}

/// The observability surface run/train/orchestrate (and bench) share:
/// --metrics_out / --trace_out enable the corresponding obs subsystem
/// for the process and dump its sink to a file at successful exit, and
/// --log_elapsed prefixes every stderr log line with elapsed time.
///
/// Deliberately NOT part of SweepFlags::forward(): these are
/// per-process diagnostics. Workers never inherit the supervisor's own
/// sink paths — instead the job planner gives each worker its OWN
/// sidecar files (dist::PlanOptions::worker_metrics/worker_trace) and
/// the supervisor rolls them up afterwards (save_fleet_obs). Result
/// streams stay byte-identical either way: metrics only ever write to
/// the files named here (status lines go to stderr via util::log),
/// never to stdout or result files.
struct ObsFlags {
  std::string metrics_out;
  std::string trace_out;
  std::string series_out;
  bool log_elapsed = false;

  void bind_obs(exp::ArgParser& parser) {
    parser.add("--metrics_out", &metrics_out,
               "enable metrics collection and write the registry dump "
               "(counters/gauges/histograms, deterministic JSON) here on "
               "success");
    parser.add("--trace_out", &trace_out,
               "enable span tracing and write a Chrome trace_event JSON "
               "(chrome://tracing, Perfetto) here on success");
    parser.add("--series_out", &series_out,
               "write scalar time series (training curves keyed by epoch, "
               "per-job duration series, registry samples when metrics are "
               "enabled) as JSONL here on success; read back with `rlbf_run "
               "curves`. Never changes run/store output bytes");
    parser.add_flag("--log_elapsed", &log_elapsed,
                    "prefix stderr log lines with elapsed time ([+12.034s])");
  }

  /// Flip the process-wide switches. Call immediately after parsing so
  /// every layer below sees the flags. --series_out deliberately does
  /// NOT enable metrics: the series recorder is a pure observer, and a
  /// bare --series_out run keeps an empty registry, so its series file
  /// holds only the bit-deterministic curves (the `rlbf_run curves`
  /// byte-determinism contract). Pass --metrics_out too when registry
  /// samples are wanted.
  void activate_obs() const {
    if (!metrics_out.empty()) obs::set_enabled(true);
    if (!trace_out.empty()) obs::set_tracing(true);
    if (log_elapsed) util::set_log_elapsed(true);
  }

  /// Dump the requested sinks; returns 0, or 1 on I/O failure (after a
  /// run's real work succeeded, a lost dump must still fail loudly).
  int save_obs() const {
    int rc = 0;
    if (!metrics_out.empty()) {
      if (obs::save_metrics_json(metrics_out)) {
        util::log_info("metrics written to ", metrics_out);
      } else {
        std::cerr << "rlbf_run: cannot write --metrics_out=" << metrics_out
                  << "\n";
        rc = 1;
      }
    }
    if (!trace_out.empty()) {
      if (obs::save_trace_json(trace_out)) {
        util::log_info("trace written to ", trace_out);
      } else {
        std::cerr << "rlbf_run: cannot write --trace_out=" << trace_out
                  << "\n";
        rc = 1;
      }
    }
    if (!series_out.empty()) {
      // Final registry latch first, so a metrics-enabled run's series
      // end with the closing counter deltas (no-op otherwise).
      registry_sampler().sample_once();
      const obs::SeriesRecorder& recorder = series_recorder();
      if (obs::save_series_jsonl(series_out, recorder.snapshot(),
                                 recorder.epoch_anchor_us())) {
        util::log_info("series written to ", series_out);
      } else {
        std::cerr << "rlbf_run: cannot write --series_out=" << series_out
                  << "\n";
        rc = 1;
      }
    }
    return rc;
  }
};

/// Fleet rollup for the orchestrating commands: merge every worker's
/// sidecar with the supervisor's own registry/trace into the files the
/// supervisor's --metrics_out/--trace_out name. Replaces save_obs()
/// there — dumping the raw supervisor registry would overwrite the
/// merged view. Call BEFORE scratch cleanup (the sidecars live in the
/// work dir). A missing or malformed sidecar is a named error and a
/// nonzero exit, never a crash or a silently partial merge.
int save_fleet_obs(const ObsFlags& obs_flags,
                   const std::vector<dist::JobSpec>& jobs) {
  int rc = 0;
  if (!obs_flags.metrics_out.empty()) {
    try {
      std::vector<obs::LabeledMetrics> docs;
      for (const dist::JobSpec& job : jobs) {
        if (job.metrics_path.empty()) continue;
        docs.push_back({"worker" + std::to_string(job.id),
                        obs::load_metrics_file(job.metrics_path)});
      }
      // Supervisor LAST: on a gauge collision the supervisor's view
      // (e.g. dist.worker_utilization) wins the last-write merge.
      docs.push_back({"supervisor",
                      obs::parse_metrics_json(
                          obs::Registry::instance().to_json(), "supervisor")});
      const obs::MergedMetrics merged = obs::merge_metrics(docs);
      if (obs::save_merged_metrics_json(obs_flags.metrics_out, merged)) {
        util::log_info("merged metrics (", merged.sources.size(),
                       " source(s)) written to ", obs_flags.metrics_out);
      } else {
        std::cerr << "rlbf_run: cannot write --metrics_out="
                  << obs_flags.metrics_out << "\n";
        rc = 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "rlbf_run: cannot merge worker metrics: " << e.what()
                << "\n";
      rc = 1;
    }
  }
  if (!obs_flags.trace_out.empty()) {
    try {
      std::vector<obs::LabeledTrace> docs;
      // Supervisor first: its spans take pid 1 of the merged timeline.
      obs::TraceDoc supervisor;
      for (const obs::TraceEvent& ev : obs::trace_events_snapshot()) {
        supervisor.events.push_back({ev, 1});
      }
      supervisor.epoch_anchor_us = obs::trace_epoch_anchor_us();
      docs.push_back({"supervisor", std::move(supervisor)});
      for (const dist::JobSpec& job : jobs) {
        if (job.trace_path.empty()) continue;
        docs.push_back({"worker" + std::to_string(job.id),
                        obs::load_trace_file(job.trace_path)});
      }
      const obs::SplicedTrace spliced = obs::splice_traces(docs);
      if (obs::save_spliced_trace_json(obs_flags.trace_out, spliced)) {
        util::log_info("merged trace (", spliced.processes.size(),
                       " process(es)) written to ", obs_flags.trace_out);
      } else {
        std::cerr << "rlbf_run: cannot write --trace_out="
                  << obs_flags.trace_out << "\n";
        rc = 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "rlbf_run: cannot splice worker traces: " << e.what()
                << "\n";
      rc = 1;
    }
  }
  if (!obs_flags.series_out.empty()) {
    try {
      registry_sampler().sample_once();  // closing registry latch (no-op
                                         // unless metrics are enabled)
      std::vector<obs::LabeledSeries> docs;
      // Supervisor first: its curves (training epochs, dist.* job
      // series) lead the merged document's source order.
      docs.push_back({"supervisor",
                      obs::SeriesDoc{series_recorder().snapshot(),
                                     series_recorder().epoch_anchor_us()}});
      for (const dist::JobSpec& job : jobs) {
        if (job.series_path.empty()) continue;
        docs.push_back({"worker" + std::to_string(job.id),
                        obs::load_series_file(job.series_path)});
      }
      const obs::SeriesDoc merged = obs::merge_series(docs);
      if (obs::save_series_jsonl(obs_flags.series_out, merged.series,
                                 merged.epoch_anchor_us)) {
        util::log_info("merged series (", docs.size(),
                       " source(s)) written to ", obs_flags.series_out);
      } else {
        std::cerr << "rlbf_run: cannot write --series_out="
                  << obs_flags.series_out << "\n";
        rc = 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "rlbf_run: cannot merge worker series: " << e.what()
                << "\n";
      rc = 1;
    }
  }
  return rc;
}

// ----------------------------------------------------------------- run

/// Every subcommand binds its flags in a struct whose make_parser()
/// renders the same usage text for `rlbf_run help` — one definition per
/// command, shown identically on --help, on errors, and in the
/// consolidated help listing.
///
/// SweepFlags is the result-shaping subset `run`/`sweep` and
/// `orchestrate` share. Both commands bind it from this ONE definition,
/// and forward() derives the worker argv from the same fields — so a
/// flag added here is automatically parsed by both commands AND
/// forwarded to orchestrated workers; there is no hand-written
/// forwarding list to forget, which the merged-output byte-identity
/// promise depends on.
struct SweepFlags {
  std::string scenario;
  std::string sweep;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  std::size_t replications = 1;
  std::size_t jobs = 0;
  std::size_t samples = 0;
  std::size_t sample_jobs = 1024;
  std::string format = "csv";
  bool per_job = true;
  std::string agent;
  std::string store_root;

  void bind(exp::ArgParser& parser) {
    parser.add("--scenario", &scenario, "scenario name(s), comma-separated");
    parser.add("--sweep", &sweep,
               "parameter grid, e.g. \"load=0.5,1.0;policy=FCFS,SJF\"");
    parser.add("--seed", &seed,
               "master seed (trace construction + replications)");
    parser.add("--threads", &threads, "worker threads (0 = hardware)");
    parser.add("--replications", &replications,
               "runs per instance at split seeds");
    parser.add("--jobs", &jobs,
               "override the scenario's trace length (0 = keep)");
    parser.add("--samples", &samples,
               "use the paper's sampled protocol with this many sequences "
               "(0 = one full-trace run)");
    parser.add("--sample_jobs", &sample_jobs, "jobs per sampled sequence");
    parser.add("--format", &format, "summary file format: csv | json | both");
    parser.add("--per_job", &per_job,
               "write per-job CSVs when --out_dir is set (full-run mode only)");
    parser.add("--agent", &agent,
               "trained-agent reference applied to every instance "
               "(training-spec name, store key, or model file path; 'none' "
               "clears a scenario's reference back to its heuristic)");
    parser.add("--store", &store_root,
               "model store root for agent references "
               "(default: $RLBF_MODEL_STORE or 'models')");
  }

  /// The worker argv these flags describe. Every value is forwarded
  /// explicitly (defaults included), so worker behavior is pinned by
  /// the plan, not by what the worker would happen to default to.
  std::vector<std::string> forward() const {
    std::vector<std::string> argv;
    argv.push_back("--scenario=" + scenario);
    if (!sweep.empty()) argv.push_back("--sweep=" + sweep);
    argv.push_back("--seed=" + std::to_string(seed));
    argv.push_back("--threads=" + std::to_string(threads));
    argv.push_back("--replications=" + std::to_string(replications));
    argv.push_back("--jobs=" + std::to_string(jobs));
    argv.push_back("--samples=" + std::to_string(samples));
    argv.push_back("--sample_jobs=" + std::to_string(sample_jobs));
    argv.push_back("--format=" + format);
    argv.push_back("--per_job=" + std::string(per_job ? "1" : "0"));
    if (!agent.empty()) argv.push_back("--agent=" + agent);
    if (!store_root.empty()) argv.push_back("--store=" + store_root);
    return argv;
  }
};

struct RunArgs : SweepFlags, ObsFlags {
  bool list = false;
  std::string describe;
  std::string out_dir;
  std::string shard_text;

  exp::ArgParser make_parser() {
    exp::ArgParser parser(
        "rlbf_run run", "Run named scheduling scenarios and parameter sweeps.");
    parser.add_flag("--list", &list, "list the scenario catalog and exit");
    parser.add("--describe", &describe,
               "print one scenario's full spec and exit");
    bind(parser);
    parser.add("--out_dir", &out_dir, "write summary + per-job files here");
    parser.add("--shard", &shard_text,
               "run only shard I of an N-way deterministic instance partition "
               "(\"I/N\"); --out_dir files are shard-tagged for `rlbf_run "
               "merge` (empty = unsharded)");
    bind_obs(parser);
    return parser;
  }
};

int run(int argc, char** argv) {
  RunArgs args;
  exp::ArgParser parser = args.make_parser();
  parser.parse_or_exit(argc, argv);
  args.activate_obs();
  if (!args.store_root.empty()) model::set_default_store_root(args.store_root);
  // Parsed up front so a malformed spec fails before any work runs; the
  // named std::invalid_argument propagates to main's handler.
  exp::ShardSpec shard;
  if (!args.shard_text.empty()) shard = exp::parse_shard(args.shard_text);

  if (args.list) {
    list_scenarios();
    return 0;
  }
  if (!args.describe.empty()) {
    describe_scenario(args.describe);
    return 0;
  }
  if (args.scenario.empty()) {
    std::cerr << "rlbf_run: pass --scenario=NAME (or --list)\n\n"
              << parser.usage();
    return 2;
  }
  if (args.format != "csv" && args.format != "json" && args.format != "both") {
    std::cerr << "rlbf_run: --format must be csv, json, or both\n";
    return 2;
  }

  // Expand --scenario (comma list) x --sweep into concrete instances.
  std::vector<exp::ScenarioSpec> specs;
  const std::vector<exp::SweepAxis> axes = exp::parse_sweep(args.sweep);
  for (const std::string& name : split_names(args.scenario, "--scenario")) {
    exp::ScenarioSpec base = exp::find_scenario(name);
    if (args.jobs > 0) base.trace_jobs = args.jobs;
    // Same convention as the sweep parameter ("none" = heuristic), via
    // the same tested implementation.
    if (!args.agent.empty()) exp::apply_param(base, "agent", args.agent);
    for (exp::ScenarioSpec& instance : exp::expand_grid(base, axes)) {
      specs.push_back(std::move(instance));
    }
  }

  std::vector<exp::SummaryRow> rows;
  std::vector<exp::ScenarioRun> runs;
  // Sharding metadata for tagged output: which global instance each row
  // is, out of how many in the whole (unsharded) sweep.
  std::vector<std::size_t> instances;
  std::size_t total_instances = 0;
  if (args.samples > 0) {
    // Sampled-sequences protocol: one row per instance, with CI. The
    // protocol's sampling stream already covers repetition, so
    // replications don't apply here; per-job results are not collected.
    if (args.replications > 1) {
      std::cerr << "rlbf_run: note: --replications is ignored in --samples "
                   "mode (the protocol samples internally)\n";
    }
    core::EvalProtocol protocol;
    protocol.samples = args.samples;
    protocol.sample_jobs = args.sample_jobs;
    protocol.seed = args.seed;
    total_instances = specs.size();
    instances = exp::shard_instance_indices(total_instances, shard);
    rows.resize(instances.size());
    util::ThreadPool pool(args.threads);
    pool.parallel_for(instances.size(), [&](std::size_t i) {
      const exp::ScenarioSpec& spec = specs[instances[i]];
      rows[i] =
          exp::summarize(spec, exp::evaluate_scenario(spec, protocol), args.seed);
    });
  } else {
    exp::SweepOptions options;
    options.seed = args.seed;
    options.threads = args.threads;
    options.replications = args.replications;
    options.shard_index = shard.index;
    options.shard_count = shard.count;
    total_instances =
        specs.size() *
        (args.replications == 0 ? std::size_t{1} : args.replications);
    instances = exp::run_sweep_instances(specs.size(), options);
    runs = exp::run_sweep(specs, options);
    rows.reserve(runs.size());
    for (const exp::ScenarioRun& r : runs) rows.push_back(exp::summarize(r));
  }

  // Human-readable table on stdout.
  util::Table table({"scenario", "seed", "jobs", "bsld", "avg_wait",
                     "utilization", "backfilled", "killed", "ci95"});
  for (const exp::SummaryRow& row : rows) {
    const std::string ci =
        std::isnan(row.ci_lo) ? ""
                              : "[" + exp::format_metric(row.ci_lo) + ", " +
                                    exp::format_metric(row.ci_hi) + "]";
    table.add_row({row.scenario, std::to_string(row.seed),
                   std::to_string(row.jobs), exp::format_metric(row.bsld),
                   exp::format_metric(row.avg_wait),
                   exp::format_metric(row.utilization),
                   exp::format_count(row.backfilled),
                   exp::format_count(row.killed), ci});
  }
  table.print(std::cout);

  if (!args.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(args.out_dir, ec);
    if (ec) {
      std::cerr << "rlbf_run: cannot create " << args.out_dir << ": "
                << ec.message() << "\n";
      return 1;
    }
    bool ok = true;
    if (args.shard_text.empty()) {
      if (args.format == "csv" || args.format == "both") {
        ok &= exp::save_summary_csv(args.out_dir + "/summary.csv", rows);
      }
      if (args.format == "json" || args.format == "both") {
        ok &= exp::save_summary_json(args.out_dir + "/summary.json", rows);
      }
    } else {
      // Shard-tagged artifacts: rows carry their global instance index
      // so `rlbf_run merge` can restore the unsharded order (and detect
      // gaps/duplicates) without re-parsing any numbers.
      exp::ShardSummary summary;
      summary.shard = shard;
      summary.total_instances = total_instances;
      summary.instances = instances;
      summary.rows = rows;
      if (args.format == "csv" || args.format == "both") {
        ok &= exp::save_shard_summary_csv(
            args.out_dir + "/" + exp::shard_summary_filename(shard, "csv"),
            summary);
      }
      if (args.format == "json" || args.format == "both") {
        ok &= exp::save_shard_summary_json(
            args.out_dir + "/" + exp::shard_summary_filename(shard, "json"),
            summary);
      }
    }
    if (args.per_job) {
      for (const exp::ScenarioRun& r : runs) {
        const std::string path =
            args.out_dir + "/" + exp::per_job_filename(r.scenario, r.seed);
        ok &= exp::save_per_job_csv(path, r);
      }
    }
    if (!ok) {
      std::cerr << "rlbf_run: failed writing results under " << args.out_dir
                << "\n";
      return 1;
    }
    std::cout << "# results written to " << args.out_dir << "/\n";
  }
  return args.save_obs();
}

// --------------------------------------------------------------- merge

struct MergeArgs {
  std::string inputs;
  std::string out_dir;

  exp::ArgParser make_parser() {
    exp::ArgParser parser(
        "rlbf_run merge",
        "Recombine shard-tagged sweep outputs (run/sweep --shard=I/N "
        "--out_dir=...) into the canonical unsharded files — byte-identical "
        "to a single-machine run at the same seed. Incomplete or "
        "inconsistent shard sets fail with named errors.");
    parser.add("--inputs", &inputs,
               "comma-separated shard output directories (one per shard)");
    parser.add("--out_dir", &out_dir, "where the merged files go");
    return parser;
  }
};

int merge(int argc, char** argv) {
  MergeArgs args;
  exp::ArgParser parser = args.make_parser();
  parser.parse_or_exit(argc, argv);

  if (args.inputs.empty() || args.out_dir.empty()) {
    std::cerr
        << "rlbf_run merge: pass --inputs=DIR,DIR,... and --out_dir=DIR\n\n"
        << parser.usage();
    return 2;
  }
  const exp::MergeReport report = exp::merge_shard_dirs(
      split_names(args.inputs, "--inputs"), args.out_dir);
  std::cout << "# merged " << report.shard_count << " shard(s), "
            << report.total_instances << " instance(s)";
  if (report.csv_merged) std::cout << " -> " << args.out_dir << "/summary.csv";
  if (report.json_merged) {
    std::cout << " -> " << args.out_dir << "/summary.json";
  }
  if (report.per_job_files_copied > 0) {
    std::cout << " (+" << report.per_job_files_copied << " per-job files)";
  }
  std::cout << "\n";
  return 0;
}

// --------------------------------------------------------------- train

/// The orchestration knobs `train --workers` and `orchestrate` share —
/// one definition, like SweepFlags, so the two fan-out surfaces cannot
/// drift apart flag by flag.
struct FanoutFlags {
  std::size_t workers = 1;
  std::size_t retries = 1;
  std::string worker_binary;
  std::string work_dir;
  bool keep_work = false;
  double timeout = 0.0;
  double heartbeat = 30.0;
  std::string inject_fail;

  /// `workers_help` and the scratch default named in --work_dir's help
  /// are the only per-command differences.
  void bind_fanout(exp::ArgParser& parser, const std::string& workers_help,
                   const std::string& scratch_doc) {
    parser.add("--workers", &workers, workers_help);
    parser.add("--retries", &retries, "extra attempts per failed worker job");
    parser.add("--worker_binary", &worker_binary,
               "worker executable (default: this rlbf_run)");
    parser.add("--work_dir", &work_dir,
               "scratch directory for per-worker outputs (default: " +
                   scratch_doc + ")");
    parser.add_flag("--keep_work", &keep_work,
                    "keep the scratch directory after a successful run "
                    "(a user-supplied --work_dir is never deleted)");
    parser.add("--timeout", &timeout,
               "per-attempt wall-clock limit in seconds for worker jobs "
               "(0 = none)");
    parser.add("--heartbeat", &heartbeat,
               "seconds between orchestrator heartbeat summaries while "
               "jobs run; with --series_out each heartbeat also samples "
               "the metrics registry into the series file (0 = off)");
    parser.add("--inject_fail", &inject_fail,
               "test hook: \"JOB:COUNT[,JOB:COUNT...]\" forces the first "
               "COUNT attempts of worker job JOB to fail and be retried");
  }

  /// The scratch dir this run uses: --work_dir, or the command's default.
  std::string scratch_dir(const std::string& default_dir) const {
    return work_dir.empty() ? default_dir : work_dir;
  }

  /// Post-success cleanup. Only the DEFAULTED scratch path is ours to
  /// delete — a user-supplied --work_dir may hold unrelated files.
  void cleanup_scratch(const std::string& dir) const {
    if (keep_work || !work_dir.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);  // best effort; scratch only
  }
};

/// The remote-transport knobs every fan-out surface shares —
/// `orchestrate`, `train --workers`, and `train --rollout_workers` all
/// bind this ONE definition, so they speak the same
/// --hosts/--command_template dialect and cannot drift apart.
struct TransportFlags {
  std::string hosts;
  std::string command_template;
  std::string fetch_template;

  void bind_transport(exp::ArgParser& parser) {
    parser.add("--hosts", &hosts,
               "comma-separated host list; with --command_template, jobs are "
               "assigned round-robin over it, and a retried job rotates to "
               "the next host (away from the one that just failed)");
    parser.add("--command_template", &command_template,
               "launch each job through this shell template instead of a "
               "local fork/exec; placeholders: {command} or {qcommand} "
               "(required; use {qcommand} — the command quoted once more — "
               "for transports like ssh that re-evaluate their argument in "
               "a remote shell), {host}, {job}, {id}, {out}, {{ for a "
               "literal brace — e.g. \"ssh {host} {qcommand}\"");
    parser.add("--fetch_template", &fetch_template,
               "shell template copying a finished job's output_dir back "
               "({host}, {remote}, {local}, {job}, {id}) — e.g. "
               "\"scp -r {host}:{remote} {local}\"; empty = shared filesystem");
  }

  bool remote() const { return !command_template.empty(); }

  /// "" when the pairing rule holds; otherwise the error to print.
  std::string transport_error(const std::string& command) const {
    if (!command_template.empty() && hosts.empty()) {
      return "rlbf_run " + command + ": --command_template needs --hosts";
    }
    if (!hosts.empty() && command_template.empty()) {
      // Silently running everything locally would drop an explicit
      // request to distribute — make the user say how to reach the hosts.
      return "rlbf_run " + command + ": --hosts needs --command_template " +
             "(e.g. \"ssh {host} {command}\")";
    }
    return "";
  }

  /// The launcher this transport selects: a local process pool, or the
  /// command template expanded over the host list.
  std::unique_ptr<dist::Launcher> make_launcher(double timeout) const {
    if (command_template.empty()) {
      return std::make_unique<dist::LocalLauncher>(timeout);
    }
    return std::make_unique<dist::CommandLauncher>(
        command_template, dist::parse_hosts(hosts), fetch_template, timeout);
  }
};

/// "out/" and "out" must both put the default scratch BESIDE the
/// directory, never inside it.
std::string trim_trailing_slashes(std::string path) {
  while (path.size() > 1 && path.back() == '/') path.pop_back();
  return path;
}

struct TrainArgs : FanoutFlags, TransportFlags, ObsFlags {
  bool list = false;
  std::size_t rollout_workers = 0;
  std::string spec_names;
  bool ablations = false;
  std::string store_root;
  std::size_t threads = 0;
  bool force = false;
  bool quiet = false;
  std::uint64_t seed = 0;
  std::size_t epochs = 0;
  std::size_t trajectories = 0;
  std::size_t traj_jobs = 0;
  std::size_t jobs = 0;
  std::string shard_text;
  std::string export_bundle;

  exp::ArgParser make_parser() {
    exp::ArgParser parser("rlbf_run train",
                          "Train agents from declarative specs into the model "
                          "store (content-addressed; a second identical train "
                          "is a cache hit and runs nothing).");
    parser.add_flag("--list", &list, "list the training-spec catalog and exit");
    parser.add("--spec", &spec_names, "training spec name(s), comma-separated");
    parser.add_flag("--ablations", &ablations,
                    "train every registered abl-* ablation arm (registration "
                    "order trains warm-start sources before their consumers)");
    parser.add("--store", &store_root,
               "model store root (default: $RLBF_MODEL_STORE or 'models')");
    parser.add("--threads", &threads,
               "worker threads (0 = hardware; never changes the result)");
    parser.add_flag("--force", &force, "retrain even on a store cache hit");
    parser.add_flag("--quiet", &quiet, "suppress the per-epoch progress table");
    parser.add("--seed", &seed,
               "master seed: spec seeds are pre-split from it (0 = keep each "
               "spec's own seed)");
    parser.add("--epochs", &epochs, "override every spec's epochs (0 = keep)");
    parser.add("--trajectories", &trajectories,
               "override trajectories per epoch (0 = keep)");
    parser.add("--traj_jobs", &traj_jobs,
               "override jobs per trajectory (0 = keep)");
    parser.add("--jobs", &jobs, "override the training trace length (0 = keep)");
    parser.add("--shard", &shard_text,
               "train only shard I of an N-way partition of the spec grid "
               "(\"I/N\", round-robin over warm-start dependency groups; "
               "master-seed splits cover the full grid, so the union of all "
               "shards equals the unsharded run)");
    parser.add("--export_bundle", &export_bundle,
               "after training, pack this invocation's entries into a "
               "portable bundle directory (what orchestrated workers ship "
               "back for collection)");
    parser.add("--rollout_workers", &rollout_workers,
               "actor/learner split: keep the PPO/DQN/REINFORCE update "
               "in-process but fan every epoch's rollout collection out to "
               "this many collect-rollouts worker processes (0 = in-process "
               "threads; any value trains byte-identical results)");
    bind_fanout(parser,
                "fan the spec grid out over this many concurrent worker "
                "processes (local pool, or --command_template over --hosts); "
                "their bundles are imported back into --store, "
                "byte-identical to a sequential run (1 = in-process)",
                "<store>.orchestrate");
    bind_transport(parser);
    bind_obs(parser);
    return parser;
  }
};

/// Parse "--inject_fail=1:2,3:1" into the orchestrator's job->count map.
std::map<std::size_t, std::size_t> parse_inject_fail(const std::string& text) {
  std::map<std::size_t, std::size_t> inject;
  if (text.empty()) return inject;
  for (const std::string& item : split_names(text, "--inject_fail")) {
    const std::size_t colon = item.find(':');
    std::uint64_t job = 0;
    std::uint64_t count = 1;
    const std::string job_text =
        colon == std::string::npos ? item : item.substr(0, colon);
    if (!exp::parse_uint64(job_text, &job) ||
        (colon != std::string::npos &&
         !exp::parse_uint64(item.substr(colon + 1), &count))) {
      throw std::invalid_argument("malformed --inject_fail entry '" + item +
                                  "' (want JOB or JOB:COUNT)");
    }
    inject[job] = count;
  }
  return inject;
}

/// Shared fan-out driver: run a plan through a launcher with retries
/// and return the report — the CALLER must check report.all_ok and
/// print failure_summary() before collecting (the collectors also
/// refuse incomplete runs as a backstop).
dist::OrchestrationReport run_fanout(
    const std::vector<dist::JobSpec>& jobs, dist::Launcher& launcher,
    std::size_t max_parallel, std::size_t retries, const std::string& inject,
    bool quiet, double heartbeat, bool series) {
  dist::OrchestratorOptions options;
  options.max_parallel = max_parallel;
  options.max_attempts = retries + 1;
  options.inject_failures = parse_inject_fail(inject);
  options.heartbeat_seconds = heartbeat;
  if (series) {
    // Per-job duration series plus a registry sample per heartbeat
    // (sample_once is thread-safe; the heartbeat thread calls it).
    options.series = &series_recorder();
    options.on_heartbeat = [] { registry_sampler().sample_once(); };
  }
  if (!quiet) {
    options.on_event = [](const std::string& line) {
      std::cout << "# " << line << "\n" << std::flush;
    };
  }
  return dist::run_jobs(jobs, launcher, options);
}

int train(int argc, char** argv) {
  TrainArgs args;
  exp::ArgParser parser = args.make_parser();
  parser.parse_or_exit(argc, argv);
  args.activate_obs();

  if (args.list) {
    util::Table table({"spec", "algorithm", "workload", "base", "budget",
                       "key", "description"});
    for (const std::string& name : model::training_spec_names()) {
      const model::TrainingSpec& s = model::find_training_spec(name);
      table.add_row({s.name, s.algorithm, s.workload.workload,
                     s.trainer.base_policy,
                     std::to_string(s.trainer.epochs) + "x" +
                         std::to_string(s.trainer.trajectories_per_epoch) + "x" +
                         std::to_string(s.trainer.jobs_per_trajectory),
                     model::fingerprint(s), s.description});
    }
    table.print(std::cout);
    return 0;
  }
  if (args.spec_names.empty() && !args.ablations) {
    std::cerr << "rlbf_run train: pass --spec=NAME, --ablations, or --list\n\n"
              << parser.usage();
    return 2;
  }
  // Both parsed before any work: malformed values must fail fast.
  exp::ShardSpec shard;
  if (!args.shard_text.empty()) shard = exp::parse_shard(args.shard_text);
  if (args.workers == 0) {
    std::cerr << "rlbf_run train: --workers must be >= 1\n";
    return 2;
  }
  if (args.workers > 1 && !args.shard_text.empty()) {
    std::cerr << "rlbf_run train: --workers and --shard are exclusive (the "
                 "fan-out assigns shards itself)\n";
    return 2;
  }
  if (const std::string err = args.transport_error("train"); !err.empty()) {
    std::cerr << err << "\n";
    return 2;
  }
  if (args.rollout_workers > 0 && args.workers > 1) {
    std::cerr << "rlbf_run train: --rollout_workers and --workers are "
                 "exclusive (--workers fans out whole specs to private "
                 "stores; --rollout_workers fans out each epoch's rollout "
                 "collection under one in-process learner)\n";
    return 2;
  }
  if (args.rollout_workers > 0 &&
      (args.ablations ||
       split_names(args.spec_names, "--spec").size() != 1)) {
    std::cerr << "rlbf_run train: --rollout_workers trains exactly one "
                 "--spec=NAME per invocation (the rollout scratch dir and "
                 "worker job ids are per-run)\n";
    return 2;
  }
  if (args.workers > 1 && !args.export_bundle.empty()) {
    std::cerr << "rlbf_run train: --workers and --export_bundle are exclusive "
                 "(the fan-out already collects worker bundles into --store; "
                 "export the collected store with `rlbf_run models "
                 "--export_bundle=...`)\n";
    return 2;
  }
  if (!args.store_root.empty()) model::set_default_store_root(args.store_root);

  // ---- fan-out mode: plan shard jobs, launch workers, import bundles.
  if (args.workers > 1) {
    // Warm starts resolve against each worker's PRIVATE store: an
    // init_agent naming another spec in this grid is co-located with
    // its source by the shard partition, but a reference outside the
    // grid (a store key, or a spec not being trained here) cannot
    // resolve in a fresh worker store — fail now, with the fix named,
    // instead of after every worker exhausts its retries.
    {
      std::vector<std::string> names;
      if (!args.spec_names.empty()) {
        names = split_names(args.spec_names, "--spec");
      }
      if (args.ablations) {
        for (std::string& arm : model::ablation_arm_names()) {
          names.push_back(std::move(arm));
        }
      }
      for (const std::string& name : names) {
        const std::string& init = model::find_training_spec(name).init_agent;
        if (init.empty()) continue;
        const bool in_list =
            std::find(names.begin(), names.end(), init) != names.end();
        std::error_code ec;
        if (in_list || std::filesystem::is_regular_file(init, ec)) continue;
        std::cerr << "rlbf_run train: spec '" << name
                  << "' warm-starts from '" << init
                  << "', which is not in this training list — --workers "
                     "trains into private per-worker stores, so the source "
                     "cannot resolve there. Add it to --spec (the partition "
                     "keeps the chain on one worker) or run without "
                     "--workers.\n";
        return 2;
      }
    }
    const std::string store_root = model::default_store_root();
    const std::string work_dir = args.scratch_dir(
        trim_trailing_slashes(store_root) + ".orchestrate");
    dist::PlanOptions plan;
    plan.worker = args.worker_binary.empty()
                      ? util::current_executable(g_program_path)
                      : args.worker_binary;
    plan.workers = args.workers;
    plan.work_dir = work_dir;
    // Forward exactly the training flags that shape results; each worker
    // trains its shard into a private store and exports a bundle.
    if (!args.spec_names.empty()) plan.args.push_back("--spec=" + args.spec_names);
    if (args.ablations) plan.args.push_back("--ablations");
    // N concurrent local workers each defaulting to full hardware
    // concurrency would oversubscribe the machine N-fold; split the
    // hardware between them unless the user chose a count. (Remote jobs
    // keep their own machine's default.)
    if (args.threads != 0) {
      plan.args.push_back("--threads=" + std::to_string(args.threads));
    } else if (!args.remote()) {
      plan.args.push_back("--threads=" +
                          std::to_string(std::max<std::size_t>(
                              std::thread::hardware_concurrency() / args.workers,
                              1)));
    }
    if (args.force) plan.args.push_back("--force");
    plan.args.push_back("--quiet");
    if (args.seed != 0) plan.args.push_back("--seed=" + std::to_string(args.seed));
    if (args.epochs > 0) {
      plan.args.push_back("--epochs=" + std::to_string(args.epochs));
    }
    if (args.trajectories > 0) {
      plan.args.push_back("--trajectories=" + std::to_string(args.trajectories));
    }
    if (args.traj_jobs > 0) {
      plan.args.push_back("--traj_jobs=" + std::to_string(args.traj_jobs));
    }
    if (args.jobs > 0) plan.args.push_back("--jobs=" + std::to_string(args.jobs));
    // Instrumented supervisor => per-worker sidecars, rolled up below.
    plan.worker_metrics = !args.metrics_out.empty();
    plan.worker_trace = !args.trace_out.empty();
    plan.worker_series = !args.series_out.empty();

    const std::vector<dist::JobSpec> jobs = dist::plan_train_jobs(plan);
    // Remote transports fetch bundles back under work_dir; create it up
    // front (local workers create their own output dirs).
    std::error_code work_ec;
    std::filesystem::create_directories(work_dir, work_ec);
    const std::unique_ptr<dist::Launcher> launcher =
        args.make_launcher(args.timeout);
    const dist::OrchestrationReport report = run_fanout(
        jobs, *launcher, args.workers, args.retries, args.inject_fail,
        args.quiet, args.heartbeat, !args.series_out.empty());
    if (!report.all_ok) {
      std::cerr << "rlbf_run train: fan-out failed:\n"
                << report.failure_summary() << "\n";
      return 1;
    }
    model::Store& store = model::default_store();
    const dist::BundleImportTotals totals =
        dist::collect_train_bundles(report, store);
    std::cout << "# collected " << totals.bundles << " worker bundle(s): "
              << totals.imported << " imported, " << totals.skipped_existing
              << " already present in " << store.root() << "/\n";
    // Fleet rollup first: the worker sidecars live in the scratch dir.
    const int obs_rc = save_fleet_obs(args, jobs);
    args.cleanup_scratch(work_dir);
    util::Table table({"key", "spec", "worker"});
    for (const auto& [bundle, imported] : totals.per_bundle) {
      for (const std::string& key : imported.imported) {
        const auto entry = store.lookup(key);
        table.add_row({key, entry ? entry->name : "", bundle});
      }
    }
    table.print(std::cout);
    return obs_rc;
  }

  // ---- in-process mode (optionally one shard of the grid).
  model::Store& store = model::default_store();

  std::vector<std::string> names;
  if (!args.spec_names.empty()) names = split_names(args.spec_names, "--spec");
  if (args.ablations) {
    for (std::string& arm : model::ablation_arm_names()) {
      names.push_back(std::move(arm));
    }
  }
  std::vector<model::TrainingSpec> specs;
  for (const std::string& name : names) {
    model::TrainingSpec spec = model::find_training_spec(name);
    if (args.epochs > 0) spec.trainer.epochs = args.epochs;
    if (args.trajectories > 0) {
      spec.trainer.trajectories_per_epoch = args.trajectories;
    }
    if (args.traj_jobs > 0) spec.trainer.jobs_per_trajectory = args.traj_jobs;
    if (args.jobs > 0) spec.workload.trace_jobs = args.jobs;
    specs.push_back(std::move(spec));
  }

  model::TrainOptions options;
  options.threads = args.threads;
  options.force = args.force;
  options.shard_index = shard.index;
  options.shard_count = shard.count;
  // Per-epoch training curves (policy/value loss, entropy, grad norm,
  // reward/bsld, epsilon, eval) into the process recorder — a pure
  // observer; results and store bytes are identical either way.
  if (!args.series_out.empty()) options.series = &series_recorder();

  // The actor/learner split: collection fans out to collect-rollouts
  // subprocesses, the update stays in this process. Byte-identical to
  // --rollout_workers=0 by the rl/collect.h determinism contract.
  std::string rollout_work_dir;
  if (args.rollout_workers > 0) {
    rollout_work_dir = args.scratch_dir(
        trim_trailing_slashes(model::default_store_root()) + ".rollouts");
    options.rollout.workers = args.rollout_workers;
    options.rollout.worker_binary =
        args.worker_binary.empty() ? util::current_executable(g_program_path)
                                   : args.worker_binary;
    options.rollout.work_dir = rollout_work_dir;
    // Split the hardware between concurrent local workers (the learner
    // sleeps during collection); remote workers keep their own default.
    if (args.threads != 0) {
      options.rollout.worker_threads = args.threads;
    } else if (!args.remote()) {
      options.rollout.worker_threads = std::max<std::size_t>(
          std::thread::hardware_concurrency() / args.rollout_workers, 1);
    }
    options.rollout.retries = args.retries;
    options.rollout.timeout_seconds = args.timeout;
    options.rollout.inject_failures = parse_inject_fail(args.inject_fail);
    options.rollout.worker_metrics = !args.metrics_out.empty();
    options.rollout.worker_trace = !args.trace_out.empty();
    options.rollout.worker_series = !args.series_out.empty();
    options.rollout.heartbeat_seconds = args.heartbeat;
    if (!args.series_out.empty()) {
      options.rollout.on_heartbeat = [] { registry_sampler().sample_once(); };
    }
    if (args.remote()) {
      options.rollout.hosts = dist::parse_hosts(args.hosts);
      options.rollout.command_template = args.command_template;
      options.rollout.fetch_template = args.fetch_template;
    }
    if (!args.quiet) {
      options.rollout.on_event = [](const std::string& line) {
        std::cout << "# " << line << "\n" << std::flush;
      };
    }
  }
  if (!args.quiet) {
    // Per-epoch progress goes through util::log (stderr, leveled,
    // optional elapsed prefix) like every other progress surface; the
    // result table below stays the only stdout output.
    options.on_progress = [](const model::TrainingSpec& spec,
                             const model::TrainProgress& p) {
      std::string line = spec.name + " epoch " + std::to_string(p.epoch) +
                         " reward=" + exp::format_metric(p.mean_reward) +
                         " bsld=" + exp::format_metric(p.mean_bsld) +
                         " baseline=" + exp::format_metric(p.mean_baseline_bsld) +
                         " steps=" + std::to_string(p.steps);
      if (!std::isnan(p.eval_bsld)) {
        line += " eval=" + exp::format_metric(p.eval_bsld);
      }
      util::log_info(line);
    };
  }

  const std::vector<model::TrainOutcome> outcomes =
      model::train_specs(specs, store, options, args.seed);
  util::Table table({"spec", "key", "status", "epochs", "best_eval", "path"});
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const model::TrainOutcome& out = outcomes[i];
    table.add_row({specs[out.spec_index].name, out.entry.key,
                   out.cache_hit ? "cache hit (no retraining)" : "trained",
                   std::to_string(out.epochs_run),
                   std::isnan(out.best_eval_bsld)
                       ? ""
                       : exp::format_metric(out.best_eval_bsld),
                   out.entry.path});
  }
  table.print(std::cout);
  if (!shard.is_all()) {
    std::cout << "# shard " << shard.label() << ": " << outcomes.size()
              << " of " << specs.size() << " spec(s)\n";
  }

  if (!args.export_bundle.empty()) {
    // This invocation's entries only (deduplicated — cache hits can
    // repeat keys), so a worker's bundle is exactly its shard.
    std::vector<std::string> keys;
    for (const model::TrainOutcome& out : outcomes) {
      if (std::find(keys.begin(), keys.end(), out.entry.key) == keys.end()) {
        keys.push_back(out.entry.key);
      }
    }
    // export_bundle_exact: an empty shard writes a valid ZERO-entry
    // bundle (collection imports nothing) — never "all entries", which
    // would leak unrelated contents of a reused worker store.
    const std::vector<std::string> exported =
        store.export_bundle_exact(args.export_bundle, keys);
    std::cout << "# exported " << exported.size() << " entr"
              << (exported.size() == 1 ? "y" : "ies") << " to "
              << args.export_bundle << "/\n";
  }
  if (args.rollout_workers > 0) {
    // Fleet rollup over every collect-rollouts job this run launched,
    // then scratch cleanup — same order as the fan-out modes (the
    // sidecars live in the scratch dir).
    std::vector<dist::JobSpec> rollout_jobs;
    for (const model::TrainOutcome& out : outcomes) {
      rollout_jobs.insert(rollout_jobs.end(), out.rollout_jobs.begin(),
                          out.rollout_jobs.end());
    }
    const int obs_rc = save_fleet_obs(args, rollout_jobs);
    args.cleanup_scratch(rollout_work_dir);
    return obs_rc;
  }
  return args.save_obs();
}

// --------------------------------------------------- collect-rollouts

/// The rollout worker of the actor/learner split: reconstruct one
/// registered training spec's collection setup (trace, base policy,
/// environment — mirroring the trainer constructors exactly), load the
/// learner's per-epoch model checkpoint, produce the requested seed
/// subset over an in-process thread pool, and ship the results back as
/// a fingerprinted wire file (rl/wire.h). Launched by
/// `train --rollout_workers=N` through dist::ProcessCollector.
struct CollectRolloutsArgs : ObsFlags {
  std::string spec_name;
  std::uint64_t seed = 0;
  std::size_t jobs = 0;
  std::size_t traj_jobs = 0;
  std::size_t threads = 0;
  std::string seeds_text;
  std::string model_path;
  std::string out_path;
  std::string fingerprint;
  std::size_t epoch = 0;
  double epsilon = std::numeric_limits<double>::quiet_NaN();

  exp::ArgParser make_parser() {
    exp::ArgParser parser(
        "rlbf_run collect-rollouts",
        "Rollout worker for `train --rollout_workers`: reconstruct a "
        "registered training spec's collection setup, load the learner's "
        "model checkpoint, collect the given per-sequence seeds, and "
        "write the fingerprinted rollout wire file the supervisor "
        "reassembles in sequence order.");
    parser.add("--spec", &spec_name,
               "registered training spec name (required)");
    parser.add("--seed", &seed,
               "training seed override (0 = the spec's own; the supervisor "
               "always passes the effective seed)");
    parser.add("--jobs", &jobs, "override the training trace length (0 = keep)");
    parser.add("--traj_jobs", &traj_jobs,
               "override jobs per trajectory (0 = keep)");
    parser.add("--threads", &threads,
               "collection threads (0 = hardware; never changes the result)");
    parser.add("--seeds", &seeds_text,
               "comma-separated per-sequence seeds, in sequence order "
               "(required)");
    parser.add("--model", &model_path,
               "the learner's model checkpoint to collect with (required)");
    parser.add("--epoch", &epoch, "1-based epoch being collected (labels only)");
    parser.add("--out", &out_path,
               "where the rollout wire file goes (required)");
    parser.add("--fingerprint", &fingerprint,
               "request fingerprint embedded in the wire file (the "
               "supervisor rejects a response carrying any other)");
    parser.add("--epsilon", &epsilon,
               "DQN exploration rate for this epoch (required for dqn specs)");
    bind_obs(parser);
    return parser;
  }
};

int collect_rollouts(int argc, char** argv) {
  CollectRolloutsArgs args;
  exp::ArgParser parser = args.make_parser();
  parser.parse_or_exit(argc, argv);
  args.activate_obs();
  if (args.spec_name.empty() || args.seeds_text.empty() ||
      args.model_path.empty() || args.out_path.empty()) {
    std::cerr << "rlbf_run collect-rollouts: pass --spec, --seeds, --model, "
                 "and --out\n\n"
              << parser.usage();
    return 2;
  }
  model::TrainingSpec spec = model::find_training_spec(args.spec_name);
  if (args.seed != 0) spec.trainer.seed = args.seed;
  if (args.jobs > 0) spec.workload.trace_jobs = args.jobs;
  if (args.traj_jobs > 0) spec.trainer.jobs_per_trajectory = args.traj_jobs;

  // Mirror the trainer constructors' environment forcing exactly: the
  // worker-side epoch must see the same selection mode and exploration
  // rate the in-process epoch would have (core/trainer.cpp forces
  // nothing for PPO; core/alt_trainers.cpp forces EpsilonGreedy for DQN
  // — with the decayed per-epoch rate — and SampleSoftmax for
  // REINFORCE).
  core::EnvConfig env = spec.trainer.env;
  if (spec.algorithm == "dqn") {
    if (!std::isfinite(args.epsilon)) {
      std::cerr << "rlbf_run collect-rollouts: dqn specs need --epsilon "
                   "(the supervisor passes the epoch's decayed rate)\n";
      return 2;
    }
    env.selection = core::ActionSelection::EpsilonGreedy;
    env.epsilon = args.epsilon;
  } else if (spec.algorithm == "reinforce") {
    env.selection = core::ActionSelection::SampleSoftmax;
  }

  // The agent comes entirely from the checkpoint: observation and
  // network configuration travel in the model file, so warm starts and
  // masking reconciliation are the learner's business, not ours.
  const core::Agent agent = core::Agent::load(args.model_path);
  const std::shared_ptr<const swf::Trace> trace =
      exp::build_trace_cached(spec.workload, spec.trainer.seed);
  const std::unique_ptr<sim::PriorityPolicy> policy =
      sched::make_policy(spec.trainer.base_policy);
  sched::RequestTimeEstimator estimator;

  rl::CollectionPlan plan;
  plan.seeds = dist::parse_seed_list(args.seeds_text);
  plan.epoch = args.epoch;
  plan.epsilon = args.epsilon;
  core::CollectionContext ctx;
  ctx.trace = trace.get();
  ctx.policy = policy.get();
  ctx.estimator = &estimator;
  ctx.env = env;
  ctx.jobs_per_trajectory = spec.trainer.jobs_per_trajectory;

  util::ThreadPool pool(args.threads);
  rl::ThreadCollector collector(pool);
  const std::vector<rl::SequenceResult> results =
      core::collect_sequences(collector, plan, ctx, agent);

  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(args.out_path).parent_path(), ec);
  rl::save_rollouts(args.out_path, results, args.fingerprint);
  std::cout << "# collected " << results.size() << " sequence(s) (epoch "
            << args.epoch << ") -> " << args.out_path << "\n";
  return args.save_obs();
}

// --------------------------------------------------------- orchestrate

/// The sweep being distributed is the shared SweepFlags block — bound
/// from the same definition `run` uses and forwarded to every worker
/// via SweepFlags::forward() — and the supervision knobs are the shared
/// FanoutFlags block `train --workers` also uses; only the transport
/// flags (hosts, templates) and --out_dir are orchestrate's own.
struct OrchestrateArgs : SweepFlags, FanoutFlags, TransportFlags, ObsFlags {
  std::size_t parallel = 0;
  std::string out_dir;
  bool quiet = false;

  OrchestrateArgs() { workers = 2; }

  exp::ArgParser make_parser() {
    exp::ArgParser parser(
        "rlbf_run orchestrate",
        "Plan a sweep as N shard jobs, launch them as worker processes "
        "(local pool, or a command template over --hosts), retry failures "
        "(shard outputs are idempotent), and merge the collected shards "
        "into --out_dir — byte-identical to the single-process run.");
    bind(parser);
    bind_fanout(parser,
                "number of shard jobs the sweep is partitioned into",
                "<out_dir>.work — never inside out_dir, which must diff "
                "clean against an unsharded run");
    parser.add("--parallel", &parallel,
               "jobs in flight at once (0 = all workers)");
    parser.add("--out_dir", &out_dir, "where the merged files go (required)");
    bind_transport(parser);
    parser.add("--inject_fail", &inject_fail,
               "test hook: \"JOB:COUNT[,JOB:COUNT...]\" forces the first "
               "COUNT attempts of job JOB to fail and be retried");
    parser.add_flag("--quiet", &quiet, "suppress per-job progress lines");
    bind_obs(parser);
    return parser;
  }
};

/// Slowest-K straggler table for the orchestrate summary: per-job
/// wall-clock and queue-wait timings ranked against the fleet p50/p95
/// (the same fixed-bucket histogram machinery the metrics registry
/// uses). Timing-dependent output — callers gate it on !quiet; the
/// byte-identity tests compare --quiet stdout only.
void print_straggler_table(const dist::OrchestrationReport& report,
                           std::size_t top_k) {
  if (report.jobs.empty() || top_k == 0) return;
  obs::Histogram hist(obs::duration_buckets());
  for (const dist::JobOutcome& out : report.jobs) {
    hist.observe(out.total_seconds);
  }
  const obs::Histogram::Snapshot snap = hist.snapshot();
  const double p50 = obs::percentile(snap, 0.50);
  const double p95 = obs::percentile(snap, 0.95);
  std::vector<const dist::JobOutcome*> slowest;
  slowest.reserve(report.jobs.size());
  for (const dist::JobOutcome& out : report.jobs) slowest.push_back(&out);
  std::sort(slowest.begin(), slowest.end(),
            [](const dist::JobOutcome* a, const dist::JobOutcome* b) {
              if (a->total_seconds != b->total_seconds) {
                return a->total_seconds > b->total_seconds;
              }
              return a->job.name < b->job.name;
            });
  if (slowest.size() > top_k) slowest.resize(top_k);
  std::cout << "# stragglers: slowest " << slowest.size() << " of "
            << report.jobs.size() << " job(s); fleet p50 "
            << exp::format_metric(p50) << "s, p95 " << exp::format_metric(p95)
            << "s\n";
  util::Table table({"job", "attempts", "queue_s", "total_s", "vs_p50"});
  for (const dist::JobOutcome* out : slowest) {
    const std::string ratio =
        p50 > 0.0 ? exp::format_metric(out->total_seconds / p50) + "x" : "";
    table.add_row({out->job.name, std::to_string(out->attempts),
                   exp::format_metric(out->queue_wait_seconds),
                   exp::format_metric(out->total_seconds), ratio});
  }
  table.print(std::cout);
}

int orchestrate(int argc, char** argv) {
  OrchestrateArgs args;
  exp::ArgParser parser = args.make_parser();
  parser.parse_or_exit(argc, argv);
  args.activate_obs();

  if (args.scenario.empty() || args.out_dir.empty()) {
    std::cerr << "rlbf_run orchestrate: pass --scenario=NAME and "
                 "--out_dir=DIR\n\n"
              << parser.usage();
    return 2;
  }
  if (args.workers == 0) {
    std::cerr << "rlbf_run orchestrate: --workers must be >= 1\n";
    return 2;
  }
  if (const std::string err = args.transport_error("orchestrate"); !err.empty()) {
    std::cerr << err << "\n";
    return 2;
  }
  // Deterministic CLI errors fail HERE, like `run`'s own up-front
  // validation — not as workers × attempts of guaranteed-identical
  // failures wrapped in a fan-out summary.
  if (args.format != "csv" && args.format != "json" && args.format != "both") {
    std::cerr << "rlbf_run orchestrate: --format must be csv, json, or both\n";
    return 2;
  }
  exp::parse_sweep(args.sweep);  // named error on a malformed grid
  for (const std::string& name : split_names(args.scenario, "--scenario")) {
    exp::find_scenario(name);  // named error on an unknown scenario
  }

  const std::string work_dir =
      args.scratch_dir(trim_trailing_slashes(args.out_dir) + ".work");

  // The fetch template's {local} destination is under work_dir; create
  // it up front so remote transports can copy into it (local workers
  // create their own out_dirs, but a remote worker only creates the
  // remote side).
  std::error_code work_ec;
  std::filesystem::create_directories(work_dir, work_ec);
  if (work_ec) {
    std::cerr << "rlbf_run orchestrate: cannot create work dir " << work_dir
              << ": " << work_ec.message() << "\n";
    return 1;
  }

  dist::PlanOptions plan;
  plan.worker = args.worker_binary.empty()
                    ? util::current_executable(g_program_path)
                    : args.worker_binary;
  plan.workers = args.workers;
  plan.work_dir = work_dir;
  if (args.threads == 0 && args.command_template.empty()) {
    // Local pool: split the hardware between the concurrent workers
    // instead of letting each default to full concurrency. (Remote
    // jobs keep their own machine's default.)
    const std::size_t in_flight =
        args.parallel == 0 ? args.workers : std::min(args.parallel, args.workers);
    args.threads = std::max<std::size_t>(
        std::thread::hardware_concurrency() / in_flight, 1);
  }
  // Every result-shaping flag comes from the shared SweepFlags block —
  // adding a flag there forwards it here automatically.
  plan.args = args.forward();
  // When the supervisor is instrumented, every worker writes its own
  // sidecars into the work dir; save_fleet_obs rolls them up below.
  plan.worker_metrics = !args.metrics_out.empty();
  plan.worker_trace = !args.trace_out.empty();
  plan.worker_series = !args.series_out.empty();

  const std::vector<dist::JobSpec> jobs = dist::plan_sweep_jobs(plan);

  // Choose the transport: a local process pool, or the user's command
  // template expanded over the host list.
  const std::unique_ptr<dist::Launcher> launcher =
      args.make_launcher(args.timeout);

  const std::size_t parallel =
      args.parallel == 0 ? args.workers : args.parallel;
  const dist::OrchestrationReport report = run_fanout(
      jobs, *launcher, parallel, args.retries, args.inject_fail, args.quiet,
      args.heartbeat, !args.series_out.empty());
  if (!report.all_ok) {
    std::cerr << "rlbf_run orchestrate: run failed:\n"
              << report.failure_summary() << "\n";
    return 1;
  }

  const exp::MergeReport merged = dist::collect_sweep(report, args.out_dir);
  std::cout << "# orchestrated " << jobs.size() << " job(s) ("
            << report.total_attempts << " attempt(s)); merged "
            << merged.shard_count << " shard(s), " << merged.total_instances
            << " instance(s) -> " << args.out_dir << "/\n";
  if (!args.quiet) print_straggler_table(report, 5);
  // Fleet rollup first: the worker sidecars live in the scratch dir.
  const int obs_rc = save_fleet_obs(args, jobs);
  args.cleanup_scratch(work_dir);
  return obs_rc;
}

// ------------------------------------------------------------- profile

/// Hot-path attribution from any trace file this tool writes: a
/// single-process --trace_out dump or an orchestrated run's merged
/// fleet trace. Pure function of the input file — repeated runs on the
/// same trace print byte-identical tables.
struct ProfileArgs {
  std::string trace_positional;
  std::string trace_flag;
  std::size_t top = 0;
  bool by_worker = false;
  std::string csv_out;

  exp::ArgParser make_parser() {
    exp::ArgParser parser(
        "rlbf_run profile",
        "Read a trace file (--trace_out output, single-process or merged "
        "fleet trace) and print the deterministic self-time table per span "
        "name: count, exclusive/inclusive totals, mean, p50/p95/p99.");
    parser.add_positional("trace", &trace_positional,
                          "the trace file (Chrome trace_event JSON)");
    parser.add("--trace", &trace_flag,
               "the trace file (alternative to the positional form)");
    parser.add("--top", &top, "print only the top N span names (0 = all)");
    parser.add_flag("--by_worker", &by_worker,
                    "break the report down per pid (worker) of a merged "
                    "fleet trace: one inclusive/exclusive table per "
                    "process, labeled from the trace's process names");
    parser.add("--csv_out", &csv_out,
               "also write the FULL table (never truncated) as CSV here");
    return parser;
  }
};

int profile(int argc, char** argv) {
  ProfileArgs args;
  exp::ArgParser parser = args.make_parser();
  parser.parse_or_exit(argc, argv);
  const std::string path =
      !args.trace_positional.empty() ? args.trace_positional : args.trace_flag;
  if (path.empty()) {
    std::cerr << "rlbf_run profile: pass a trace file (positional or "
                 "--trace=FILE)\n\n"
              << parser.usage();
    return 2;
  }
  // load_trace_file throws named errors for missing/empty/malformed
  // files; main's handler renders them as exit 1.
  const obs::TraceDoc doc = obs::load_trace_file(path);
  if (args.by_worker) {
    const std::vector<obs::WorkerProfile> workers =
        obs::profile_report_by_worker(doc.events, doc.process_names);
    obs::write_worker_profile_table(std::cout, workers, args.top);
    std::cout << "# " << workers.size() << " worker(s), " << doc.events.size()
              << " event(s) from " << path << "\n";
    if (!args.csv_out.empty()) {
      if (!obs::save_worker_profile_csv(args.csv_out, workers)) {
        std::cerr << "rlbf_run profile: cannot write --csv_out="
                  << args.csv_out << "\n";
        return 1;
      }
      std::cout << "# profile CSV written to " << args.csv_out << "\n";
    }
    return 0;
  }
  const std::vector<obs::ProfileRow> rows = obs::profile_report(doc.events);
  obs::write_profile_table(std::cout, rows, args.top);
  std::cout << "# " << rows.size() << " span name(s), " << doc.events.size()
            << " event(s) from " << path << "\n";
  if (!args.csv_out.empty()) {
    if (!obs::save_profile_csv(args.csv_out, rows)) {
      std::cerr << "rlbf_run profile: cannot write --csv_out=" << args.csv_out
                << "\n";
      return 1;
    }
    std::cout << "# profile CSV written to " << args.csv_out << "\n";
  }
  return 0;
}

// -------------------------------------------------------------- curves

/// Read back time series: a --series_out file (single run or merged
/// fleet document), or the training curves a `train` run persisted in
/// its store entry's meta. Every rendering excludes the wall-clock
/// field, so output is byte-deterministic across reruns and thread
/// counts whenever the underlying computation is.
struct CurvesArgs {
  std::string series_positional;
  std::string series_flag;
  std::string store_root;
  std::string spec;
  std::string format = "table";
  std::string out;
  std::string compare;

  exp::ArgParser make_parser() {
    exp::ArgParser parser(
        "rlbf_run curves",
        "Read a --series_out JSONL file (or a trained entry's store-meta "
        "curves) and print the series step-aligned as a table, CSV, or "
        "JSON. Wall-clock stamps are never printed, so deterministic "
        "series render byte-identically across reruns.");
    parser.add_positional("series", &series_positional,
                          "the series file (--series_out JSONL)");
    parser.add("--series", &series_flag,
               "the series file (alternative to the positional form)");
    parser.add("--store", &store_root,
               "with --spec: model store root (default: $RLBF_MODEL_STORE "
               "or 'models')");
    parser.add("--spec", &spec,
               "read the eval/reward/bsld curves persisted in this store "
               "entry's meta instead of a series file (training spec name "
               "or store key)");
    parser.add("--format", &format, "output format: table | csv | json");
    parser.add("--out", &out,
               "write the rendering here instead of stdout (same bytes)");
    parser.add("--compare", &compare,
               "two series files \"A,B\": per-series point counts, last "
               "values, and last-value delta (B - A) instead of a rendering");
    return parser;
  }
};

/// The column label a series renders under: "name", or "source/name"
/// once a fleet merge tagged it.
std::string series_label(const obs::Series& s) {
  return s.source.empty() ? s.name : s.source + "/" + s.name;
}

/// Step-aligned rendering: one row per step in the union of every
/// series' steps, one column per series. A series that recorded several
/// points at one step (dist.attempt_seconds under retries) shows the
/// LAST one — the full point list survives in the json format.
void render_curves_aligned(std::ostream& os,
                           const std::vector<obs::Series>& series, bool csv) {
  std::set<std::int64_t> steps;
  std::vector<std::map<std::int64_t, double>> cells(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (const obs::SeriesPoint& p : series[i].points) {
      steps.insert(p.step);
      cells[i][p.step] = p.value;  // record order: last at a step wins
    }
  }
  std::vector<std::string> headers;
  headers.push_back("step");
  for (const obs::Series& s : series) headers.push_back(series_label(s));
  if (csv) {
    for (std::size_t c = 0; c < headers.size(); ++c) {
      os << (c == 0 ? "" : ",") << headers[c];
    }
    os << "\n";
    for (const std::int64_t step : steps) {
      os << step;
      for (std::size_t i = 0; i < series.size(); ++i) {
        const auto it = cells[i].find(step);
        os << ",";
        if (it != cells[i].end()) os << obs::format_number(it->second);
      }
      os << "\n";
    }
    return;
  }
  util::Table table(headers);
  for (const std::int64_t step : steps) {
    std::vector<std::string> row;
    row.push_back(std::to_string(step));
    for (std::size_t i = 0; i < series.size(); ++i) {
      const auto it = cells[i].find(step);
      row.push_back(it != cells[i].end() ? obs::format_number(it->second)
                                         : std::string());
    }
    table.add_row(row);
  }
  table.print(os);
}

/// JSON rendering: the full point lists as [step, value] pairs — the
/// wall-clock field is deliberately absent (the determinism contract).
void render_curves_json(std::ostream& os, const obs::SeriesDoc& doc) {
  os << "{\n  \"series\": [";
  for (std::size_t i = 0; i < doc.series.size(); ++i) {
    const obs::Series& s = doc.series[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << s.name << "\"";
    if (!s.source.empty()) os << ", \"source\": \"" << s.source << "\"";
    os << ", \"points\": [";
    for (std::size_t k = 0; k < s.points.size(); ++k) {
      os << (k == 0 ? "" : ", ") << "[" << s.points[k].step << ", "
         << obs::format_number(s.points[k].value) << "]";
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
}

/// The store-meta curves of one trained entry, as 1-based-epoch series.
/// NaN entries (epochs the eval cadence skipped) are dropped, matching
/// the trainer's sparse train.eval_bsld recording.
obs::SeriesDoc store_curves(model::Store& store, const std::string& ref) {
  std::optional<model::StoreEntry> entry = store.lookup(ref);
  if (!entry.has_value()) {
    std::vector<model::StoreEntry> matches;
    for (const model::StoreEntry& e : store.list()) {
      if (e.name == ref) matches.push_back(e);
    }
    if (matches.empty()) {
      throw std::runtime_error("curves: no store entry with key or spec "
                               "name '" + ref + "' in " + store.root() + "/");
    }
    if (matches.size() > 1) {
      throw std::runtime_error(
          "curves: " + std::to_string(matches.size()) + " store entries are "
          "named '" + ref + "' — pass the 16-hex key instead");
    }
    entry = std::move(matches.front());
  }
  obs::SeriesDoc doc;
  const auto add_curve = [&](const char* meta_key) {
    const auto it = entry->meta.find(meta_key);
    if (it == entry->meta.end() || it->second.empty()) return;
    obs::Series s;
    s.name = meta_key;
    std::int64_t epoch = 0;
    for (const std::string& token : split_names(it->second, meta_key)) {
      ++epoch;
      double value = 0.0;
      if (!exp::parse_number(token, &value)) {
        throw std::runtime_error("curves: bad value '" + token +
                                 "' in store meta " + meta_key + " of " +
                                 entry->key);
      }
      if (std::isnan(value)) continue;
      s.points.push_back({epoch, value, 0});
    }
    if (!s.points.empty()) doc.series.push_back(std::move(s));
  };
  add_curve("eval_curve");
  add_curve("reward_curve");
  add_curve("bsld_curve");
  if (doc.series.empty()) {
    throw std::runtime_error("curves: store entry " + entry->key +
                             " ('" + entry->name + "') carries no curves "
                             "in its meta (trained before the telemetry "
                             "layer?)");
  }
  return doc;
}

/// Per-series diff of two series files: point counts, last values, and
/// the last-value delta (B - A). Series are matched by (name, source).
int curves_compare(const std::string& compare_text) {
  const std::vector<std::string> paths = split_names(compare_text, "--compare");
  if (paths.size() != 2) {
    std::cerr << "rlbf_run curves: --compare wants exactly two files "
                 "(\"A,B\"), got " << paths.size() << "\n";
    return 2;
  }
  const obs::SeriesDoc a = obs::load_series_file(paths[0]);
  const obs::SeriesDoc b = obs::load_series_file(paths[1]);
  std::map<std::pair<std::string, std::string>, const obs::Series*> in_a, in_b;
  for (const obs::Series& s : a.series) in_a[{s.name, s.source}] = &s;
  for (const obs::Series& s : b.series) in_b[{s.name, s.source}] = &s;
  std::set<std::pair<std::string, std::string>> keys;
  for (const auto& [key, s] : in_a) keys.insert(key);
  for (const auto& [key, s] : in_b) keys.insert(key);
  util::Table table({"series", "n_a", "n_b", "last_a", "last_b", "delta"});
  for (const auto& key : keys) {
    const auto fa = in_a.find(key);
    const auto fb = in_b.find(key);
    const obs::Series* sa = fa == in_a.end() ? nullptr : fa->second;
    const obs::Series* sb = fb == in_b.end() ? nullptr : fb->second;
    const std::string label =
        key.second.empty() ? key.first : key.second + "/" + key.first;
    const bool has_a = sa != nullptr && !sa->points.empty();
    const bool has_b = sb != nullptr && !sb->points.empty();
    table.add_row(
        {label, sa == nullptr ? "-" : std::to_string(sa->points.size()),
         sb == nullptr ? "-" : std::to_string(sb->points.size()),
         has_a ? obs::format_number(sa->points.back().value) : "-",
         has_b ? obs::format_number(sb->points.back().value) : "-",
         has_a && has_b ? obs::format_number(sb->points.back().value -
                                             sa->points.back().value)
                        : ""});
  }
  table.print(std::cout);
  std::cout << "# curves compare: " << paths[1] << " vs " << paths[0] << ": "
            << keys.size() << " series\n";
  return 0;
}

int curves(int argc, char** argv) {
  CurvesArgs args;
  exp::ArgParser parser = args.make_parser();
  parser.parse_or_exit(argc, argv);
  if (!args.compare.empty()) return curves_compare(args.compare);
  if (args.format != "table" && args.format != "csv" &&
      args.format != "json") {
    std::cerr << "rlbf_run curves: --format must be table, csv, or json\n";
    return 2;
  }

  obs::SeriesDoc doc;
  if (!args.spec.empty()) {
    if (!args.store_root.empty()) {
      model::set_default_store_root(args.store_root);
    }
    doc = store_curves(model::default_store(), args.spec);
  } else {
    const std::string path = !args.series_positional.empty()
                                 ? args.series_positional
                                 : args.series_flag;
    if (path.empty()) {
      std::cerr << "rlbf_run curves: pass a series file (positional or "
                   "--series=FILE), --spec=NAME, or --compare=A,B\n\n"
                << parser.usage();
      return 2;
    }
    // load_series_file throws named errors for missing/empty/malformed
    // files; main's handler renders them as exit 1.
    doc = obs::load_series_file(path);
  }

  std::ostringstream rendered;
  if (args.format == "json") {
    render_curves_json(rendered, doc);
  } else {
    render_curves_aligned(rendered, doc.series, args.format == "csv");
  }
  std::size_t points = 0;
  for (const obs::Series& s : doc.series) points += s.points.size();
  if (args.out.empty()) {
    std::cout << rendered.str();
    std::cout << "# " << doc.series.size() << " series, " << points
              << " point(s)\n";
  } else {
    std::ofstream os(args.out, std::ios::binary | std::ios::trunc);
    os << rendered.str();
    os.flush();
    if (!os) {
      std::cerr << "rlbf_run curves: cannot write --out=" << args.out << "\n";
      return 1;
    }
    std::cout << "# " << doc.series.size() << " series, " << points
              << " point(s) written to " << args.out << "\n";
  }
  return 0;
}

// --------------------------------------------------------------- bench

/// A pinned micro-benchmark of the three hot paths — full-trace
/// simulation, a real training run on a scratch store, and a 1-worker
/// orchestrated sweep job — reported as one JSON file (the checked-in
/// BENCH_PR<n>.json trajectory). Metrics are force-enabled for the
/// process (they ARE the measurement), and every phase leaves spans in
/// the trace, so --trace_out captures the sim, sweep, train, and dist
/// layers in one timeline.
struct BenchArgs : ObsFlags {
  std::string out = "BENCH_PR10.json";
  std::string scenario = "sdsc-easy";
  std::size_t jobs = 10000;
  std::size_t sim_repeat = 3;
  std::string train_spec = "sdsc-tiny";
  std::size_t epochs = 1;
  std::size_t dist_jobs = 400;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  bool quick = false;
  std::string tag = "dev";
  std::string compare;
  std::string candidate;
  double threshold = 0.25;
  std::string verdict_out;

  exp::ArgParser make_parser() {
    exp::ArgParser parser(
        "rlbf_run bench",
        "Time an end-to-end trace simulation, one training epoch, and a "
        "1-worker orchestrated sweep job; write the measurements as one "
        "JSON report (the checked-in BENCH_PR<n>.json perf trajectory). "
        "--compare=BASE diffs the new report against a baseline report "
        "and exits 3 on a regression beyond --threshold.");
    parser.add("--out", &out, "where the JSON report goes");
    parser.add("--tag", &tag,
               "label recorded in the report's source block (e.g. PR7, ci)");
    parser.add("--compare", &compare,
               "baseline bench report to diff the fresh report against; "
               "prints a field-by-field table and exits 3 on regression");
    parser.add("--candidate", &candidate,
               "with --compare: diff this EXISTING report instead of "
               "running the bench (pure file-vs-file mode)");
    parser.add("--threshold", &threshold,
               "relative change that counts as a regression (0.25 = 25%)");
    parser.add("--verdict_out", &verdict_out,
               "write the machine-readable comparison verdict JSON here");
    parser.add("--scenario", &scenario, "scenario timed by the sim phase");
    parser.add("--jobs", &jobs, "trace length for the sim phase");
    parser.add("--sim_repeat", &sim_repeat,
               "sim-phase repetitions (the first builds the trace, the "
               "rest hit the trace cache)");
    parser.add("--train_spec", &train_spec,
               "training spec timed by the train phase (trained into a "
               "fresh scratch store, so it always really trains)");
    parser.add("--epochs", &epochs,
               "override the train spec's epochs (0 = keep)");
    parser.add("--dist_jobs", &dist_jobs,
               "trace length of the orchestrated worker job");
    parser.add("--seed", &seed, "master seed for every phase");
    parser.add("--threads", &threads,
               "train-phase worker threads (0 = hardware); the sim phase "
               "is single-threaded by design — it times the hot loop");
    parser.add_flag("--quick", &quick, "CI-sized run: smaller every phase");
    bind_obs(parser);
    return parser;
  }
};

/// The compile-time platform tag in the bench source block — enough to
/// tell two trajectory points apart without trusting the filename.
std::string platform_string() {
  const std::string compiler =
#if defined(__clang__)
      "clang " + std::to_string(__clang_major__) + "." +
      std::to_string(__clang_minor__);
#elif defined(__GNUC__)
      "gcc " + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__);
#else
      "unknown-compiler";
#endif
  const char* arch =
#if defined(__x86_64__) || defined(_M_X64)
      "x86_64";
#elif defined(__aarch64__) || defined(_M_ARM64)
      "aarch64";
#else
      "unknown-arch";
#endif
  const char* os =
#if defined(__linux__)
      "linux";
#elif defined(__APPLE__)
      "macos";
#else
      "unknown-os";
#endif
  return compiler + ", " + arch + "-" + os;
}

/// The fields the regression gate compares. Wall-time fields only mean
/// anything when both reports measured the same workload, so they are
/// config-sensitive: skipped (named in the table) when the two config
/// blocks differ — which is what lets CI's --quick run gate against a
/// full-budget checked-in baseline on the rate fields alone.
struct CompareField {
  const char* section;
  const char* key;
  bool higher_better;
  bool config_sensitive;
};

constexpr CompareField kCompareFields[] = {
    {"sim", "wall_seconds_min", false, true},
    {"sim", "wall_seconds_mean", false, true},
    {"sim", "events_per_second", true, false},
    {"train", "wall_seconds", false, true},
    {"train", "epoch_seconds_mean", false, true},
    {"sweep", "instance_seconds_mean", false, true},
    {"dist", "job_seconds_total", false, true},
    {"dist", "worker_utilization", true, false},
    // Schema-v3 work counters (deterministic, so any same-config change
    // is real): fewer NN passes and fewer full queue sorts per identical
    // workload are the hot-path campaign's direct evidence. Against an
    // older baseline they surface as "skipped: new field" rows.
    {"counters", "nn.forward_calls", false, true},
    {"counters", "nn.forward_value_calls", false, true},
    {"counters", "sim.schedule_recomputations", false, true},
};

bool json_equal(const obs::json::Value& a, const obs::json::Value& b) {
  using Kind = obs::json::Value::Kind;
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Kind::Null: return true;
    case Kind::Bool: return a.boolean == b.boolean;
    case Kind::Number: return a.number == b.number;
    case Kind::String: return a.text == b.text;
    case Kind::Array:
      if (a.items.size() != b.items.size()) return false;
      for (std::size_t i = 0; i < a.items.size(); ++i) {
        if (!json_equal(a.items[i], b.items[i])) return false;
      }
      return true;
    case Kind::Object:
      if (a.members.size() != b.members.size()) return false;
      for (const auto& [key, value] : a.members) {
        const obs::json::Value* other = b.find(key);
        if (other == nullptr || !json_equal(value, *other)) return false;
      }
      return true;
  }
  return false;
}

std::string slurp_report(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open bench report: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  if (buf.str().empty()) {
    throw std::runtime_error("bench report is empty: " + path);
  }
  return buf.str();
}

/// Diff two bench reports field by field; 0 = clean, 3 = regression.
/// Missing fields (an older schema on either side) and config-sensitive
/// fields across differing configs are skipped BY NAME in the table —
/// a gate that silently compared nothing would always pass.
int bench_compare(const std::string& base_path, const std::string& cand_path,
                  double threshold, const std::string& verdict_out) {
  if (!(threshold > 0.0)) {
    std::cerr << "rlbf_run bench: --threshold must be > 0\n";
    return 2;
  }
  const obs::json::Value base =
      obs::json::parse(slurp_report(base_path), base_path);
  const obs::json::Value cand =
      obs::json::parse(slurp_report(cand_path), cand_path);
  const obs::json::Value* base_cfg = base.find("config");
  const obs::json::Value* cand_cfg = cand.find("config");
  const bool config_match =
      base_cfg != nullptr && cand_cfg != nullptr &&
      json_equal(*base_cfg, *cand_cfg);

  struct Row {
    std::string field;
    bool has_base = false;
    bool has_cand = false;
    double base = 0.0;
    double cand = 0.0;
    bool has_change = false;
    double change = 0.0;
    std::string status;
  };
  std::vector<Row> rows;
  std::size_t regressions = 0;
  for (const CompareField& field : kCompareFields) {
    Row row;
    row.field = std::string(field.section) + "." + field.key;
    const auto lookup = [&](const obs::json::Value& report) {
      const obs::json::Value* section = report.find(field.section);
      return section == nullptr ? nullptr : section->find(field.key);
    };
    const obs::json::Value* b = lookup(base);
    const obs::json::Value* c = lookup(cand);
    if (b != nullptr && b->is_number()) {
      row.has_base = true;
      row.base = b->number;
    }
    if (c != nullptr && c->is_number()) {
      row.has_cand = true;
      row.cand = c->number;
    }
    if (!row.has_base && row.has_cand) {
      // The candidate measures something the baseline predates. Named
      // distinctly so the table documents what the next pinned baseline
      // starts gating — and so it never divides by the absent value.
      row.status = "skipped: new field";
    } else if (!row.has_base || !row.has_cand) {
      row.status = "skipped: missing";
    } else if (field.config_sensitive && !config_match) {
      row.status = "skipped: config differs";
    } else if (!std::isfinite(row.base) || !std::isfinite(row.cand)) {
      row.status = "skipped: non-finite value";
    } else if (row.base == 0.0) {
      // A zero baseline makes relative change undefined (any nonzero
      // candidate would read as an infinite regression); verdict by
      // equality instead of dividing.
      row.status = row.cand == 0.0 ? "ok" : "skipped: zero baseline";
    } else {
      row.has_change = true;
      row.change = (row.cand - row.base) / row.base;
      const double against = field.higher_better ? -row.change : row.change;
      if (against > threshold) {
        row.status = "REGRESSION";
        ++regressions;
      } else if (-against > threshold) {
        row.status = "improved";
      } else {
        row.status = "ok";
      }
    }
    rows.push_back(std::move(row));
  }

  util::Table table({"field", "base", "candidate", "change", "status"});
  for (const Row& row : rows) {
    std::string change;
    if (row.has_change) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%+.1f%%", row.change * 100.0);
      change = buf;
    }
    table.add_row({row.field,
                   row.has_base ? exp::format_metric(row.base) : "-",
                   row.has_cand ? exp::format_metric(row.cand) : "-",
                   change, row.status});
  }
  table.print(std::cout);
  char thr[32];
  std::snprintf(thr, sizeof(thr), "%g%%", threshold * 100.0);
  std::cout << "# bench compare: " << cand_path << " vs " << base_path
            << ": " << regressions << " regression(s) at threshold " << thr
            << (config_match ? "" : " (configs differ: wall-time fields skipped)")
            << "\n";

  if (!verdict_out.empty()) {
    std::ofstream os(verdict_out, std::ios::binary | std::ios::trunc);
    os << "{\n"
       << "  \"base\": \"" << base_path << "\",\n"
       << "  \"candidate\": \"" << cand_path << "\",\n"
       << "  \"threshold\": " << exp::format_double_exact(threshold) << ",\n"
       << "  \"config_match\": " << (config_match ? "true" : "false") << ",\n"
       << "  \"fields\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      os << (i == 0 ? "\n" : ",\n") << "    {\"field\": \"" << row.field
         << "\", \"base\": "
         << (row.has_base ? exp::format_double_exact(row.base) : "null")
         << ", \"candidate\": "
         << (row.has_cand ? exp::format_double_exact(row.cand) : "null")
         << ", \"change\": "
         << (row.has_change ? exp::format_double_exact(row.change) : "null")
         << ", \"status\": \"" << row.status << "\"}";
    }
    os << "\n  ],\n"
       << "  \"regressions\": " << regressions << ",\n"
       << "  \"verdict\": \"" << (regressions == 0 ? "ok" : "regression")
       << "\"\n}\n";
    os.flush();
    if (!os) {
      std::cerr << "rlbf_run bench: cannot write --verdict_out=" << verdict_out
                << "\n";
      return 1;
    }
    std::cout << "# verdict written to " << verdict_out << "\n";
  }
  return regressions == 0 ? 0 : 3;
}

int bench(int argc, char** argv) {
  BenchArgs args;
  exp::ArgParser parser = args.make_parser();
  parser.parse_or_exit(argc, argv);
  args.activate_obs();
  // Pure file-vs-file mode: diff two existing reports, run nothing.
  if (!args.candidate.empty()) {
    if (args.compare.empty()) {
      std::cerr << "rlbf_run bench: --candidate needs --compare=BASE\n";
      return 2;
    }
    return bench_compare(args.compare, args.candidate, args.threshold,
                         args.verdict_out);
  }
  // The report is read from the metrics registry, so metrics are always
  // on here; --metrics_out additionally dumps the raw registry.
  obs::set_enabled(true);
  if (args.quick) {
    args.jobs = std::min<std::size_t>(args.jobs, 2000);
    args.sim_repeat = std::min<std::size_t>(args.sim_repeat, 2);
    args.dist_jobs = std::min<std::size_t>(args.dist_jobs, 200);
  }
  if (args.sim_repeat == 0) args.sim_repeat = 1;

  // A clean slate, so the report reflects this run only.
  obs::Registry::instance().reset();
  exp::clear_trace_cache();

  const std::string scratch = trim_trailing_slashes(args.out) + ".work";
  std::error_code scratch_ec;
  std::filesystem::create_directories(scratch + "/store", scratch_ec);
  if (scratch_ec) {
    std::cerr << "rlbf_run bench: cannot create scratch dir " << scratch
              << ": " << scratch_ec.message() << "\n";
    return 1;
  }

  // ---- phase 1: the simulator hot loop, single-threaded, repeated so
  // the trace cache serves every repetition after the first.
  util::log_info("bench: sim phase: ", args.sim_repeat, "x ", args.scenario,
                 " @ ", args.jobs, " jobs");
  exp::ScenarioSpec base = exp::find_scenario(args.scenario);
  if (args.jobs > 0) base.trace_jobs = args.jobs;
  const std::vector<exp::ScenarioSpec> sim_specs(args.sim_repeat, base);
  exp::SweepOptions sweep_options;
  sweep_options.seed = args.seed;
  sweep_options.threads = 1;
  const std::vector<exp::ScenarioRun> sim_runs =
      exp::run_sweep(sim_specs, sweep_options);
  const obs::Histogram::Snapshot sim_hist =
      obs::histogram("sim.simulate_seconds").snapshot();
  const obs::Histogram::Snapshot sweep_hist =
      obs::histogram("sweep.instance_seconds").snapshot();
  const std::uint64_t sim_events = obs::counter("sim.events_processed").value();
  const double events_per_second =
      sim_hist.sum > 0.0 ? static_cast<double>(sim_events) / sim_hist.sum : 0.0;
  const exp::TraceCacheStats cache = exp::trace_cache_stats();

  // ---- phase 2: a real training run into a fresh scratch store (a
  // populated store would turn the phase into a cache hit and time
  // nothing).
  util::log_info("bench: train phase: ", args.train_spec);
  model::TrainingSpec tspec = model::find_training_spec(args.train_spec);
  if (args.epochs > 0) tspec.trainer.epochs = args.epochs;
  if (args.quick) {
    tspec.trainer.trajectories_per_epoch =
        std::min<std::size_t>(tspec.trainer.trajectories_per_epoch, 2);
  }
  model::Store store(scratch + "/store");
  model::TrainOptions train_options;
  train_options.threads = args.threads;
  train_options.checkpoint = false;  // scratch store; nothing to resume
  train_options.on_progress = [](const model::TrainingSpec& spec,
                                 const model::TrainProgress& p) {
    util::log_info("bench: ", spec.name, " epoch ", p.epoch, " wall=",
                   exp::format_metric(p.wall_seconds), "s");
  };
  obs::ScopedTimer train_timer(obs::histogram("bench.train_wall_seconds"));
  const model::TrainOutcome outcome =
      model::train_spec(tspec, store, train_options);
  const double train_wall = train_timer.stop();
  const obs::Histogram::Snapshot epoch_hist =
      obs::histogram("rl.epoch_seconds").snapshot();

  // ---- phase 3: the orchestration layer — plan one shard job, launch
  // it as a real worker process, and time queue/run/fetch.
  util::log_info("bench: dist phase: 1-worker orchestrated sweep job");
  dist::PlanOptions plan;
  plan.worker = util::current_executable(g_program_path);
  plan.workers = 1;
  plan.work_dir = scratch + "/dist";
  plan.args = {"--scenario=" + args.scenario,
               "--jobs=" + std::to_string(args.dist_jobs),
               "--seed=" + std::to_string(args.seed),
               "--threads=1",
               "--per_job=0",
               "--format=csv"};
  const std::vector<dist::JobSpec> dist_plan = dist::plan_sweep_jobs(plan);
  dist::LocalLauncher launcher(0.0);
  dist::OrchestratorOptions dist_options;
  dist_options.on_event = [](const std::string& line) {
    util::log_info("bench: ", line);
  };
  const dist::OrchestrationReport report =
      dist::run_jobs(dist_plan, launcher, dist_options);
  if (!report.all_ok) {
    std::cerr << "rlbf_run bench: dist phase failed:\n"
              << report.failure_summary() << "\n";
    return 1;
  }
  const obs::Histogram::Snapshot dist_hist =
      obs::histogram("dist.job_seconds").snapshot();
  const double worker_utilization = obs::gauge("dist.worker_utilization").value();

  // ---- the report. Every number exact (shortest-round-trip, C locale)
  // so the schema check parses what we wrote, not a rounding of it.
  const auto num = [](double v) { return exp::format_double_exact(v); };
  const auto mean = [](const obs::Histogram::Snapshot& h) {
    return h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
  };
  std::ofstream os(args.out, std::ios::binary | std::ios::trunc);
  os << "{\n"
     << "  \"bench\": \"rlbf_run bench\",\n"
     << "  \"schema_version\": 3,\n"
     << "  \"source\": {\n"
     << "    \"tag\": \"" << args.tag << "\",\n"
     << "    \"platform\": \"" << platform_string() << "\",\n"
     << "    \"libm\": \"" << util::libm_fingerprint_id() << "\"\n"
     << "  },\n"
     << "  \"config\": {\n"
     << "    \"scenario\": \"" << base.name << "\",\n"
     << "    \"jobs\": " << args.jobs << ",\n"
     << "    \"sim_repeat\": " << args.sim_repeat << ",\n"
     << "    \"train_spec\": \"" << tspec.name << "\",\n"
     << "    \"epochs\": " << tspec.trainer.epochs << ",\n"
     << "    \"dist_jobs\": " << args.dist_jobs << ",\n"
     << "    \"seed\": " << args.seed << ",\n"
     << "    \"threads\": " << args.threads << ",\n"
     << "    \"quick\": " << (args.quick ? "true" : "false") << "\n"
     << "  },\n"
     << "  \"sim\": {\n"
     << "    \"runs\": " << sim_hist.count << ",\n"
     << "    \"trace_jobs\": " << (sim_runs.empty() ? 0 : sim_runs.front().jobs)
     << ",\n"
     << "    \"wall_seconds_total\": " << num(sim_hist.sum) << ",\n"
     << "    \"wall_seconds_min\": " << num(sim_hist.min) << ",\n"
     << "    \"wall_seconds_mean\": " << num(mean(sim_hist)) << ",\n"
     << "    \"events_processed\": " << sim_events << ",\n"
     << "    \"events_per_second\": " << num(events_per_second) << "\n"
     << "  },\n"
     << "  \"trace_cache\": {\n"
     << "    \"hits\": " << cache.hits << ",\n"
     << "    \"misses\": " << cache.misses << ",\n"
     << "    \"evictions\": " << cache.evictions << ",\n"
     << "    \"entries\": " << cache.entries << "\n"
     << "  },\n"
     << "  \"train\": {\n"
     << "    \"spec\": \"" << tspec.name << "\",\n"
     << "    \"epochs_run\": " << outcome.epochs_run << ",\n"
     << "    \"wall_seconds\": " << num(train_wall) << ",\n"
     << "    \"epoch_seconds_min\": " << num(epoch_hist.min) << ",\n"
     << "    \"epoch_seconds_mean\": " << num(mean(epoch_hist)) << "\n"
     << "  },\n"
     << "  \"sweep\": {\n"
     << "    \"instances\": " << sweep_hist.count << ",\n"
     << "    \"instance_seconds_mean\": " << num(mean(sweep_hist)) << "\n"
     << "  },\n"
     << "  \"dist\": {\n"
     << "    \"jobs\": " << report.jobs.size() << ",\n"
     << "    \"attempts\": " << report.total_attempts << ",\n"
     << "    \"job_seconds_total\": " << num(dist_hist.sum) << ",\n"
     << "    \"worker_utilization\": " << num(worker_utilization) << "\n"
     << "  },\n"
     // Schema v3: deterministic work counters across every phase — the
     // hot-path evidence (batched NN passes, skipped queue sorts) that
     // wall clocks alone cannot attribute.
     << "  \"counters\": {\n"
     << "    \"nn.forward_calls\": " << obs::counter("nn.forward_calls").value()
     << ",\n"
     << "    \"nn.forward_value_calls\": "
     << obs::counter("nn.forward_value_calls").value() << ",\n"
     << "    \"nn.batched_forward_calls\": "
     << obs::counter("nn.batched_forward_calls").value() << ",\n"
     << "    \"nn.batched_forward_rows\": "
     << obs::counter("nn.batched_forward_rows").value() << ",\n"
     << "    \"nn.backward_calls\": " << obs::counter("nn.backward_calls").value()
     << ",\n"
     << "    \"sim.schedule_recomputations\": "
     << obs::counter("sim.schedule_recomputations").value() << ",\n"
     << "    \"sim.queue_incremental_inserts\": "
     << obs::counter("sim.queue_incremental_inserts").value() << ",\n"
     << "    \"sim.backfill_decisions\": "
     << obs::counter("sim.backfill_decisions").value() << "\n"
     << "  }\n"
     << "}\n";
  os.flush();
  if (!os) {
    std::cerr << "rlbf_run bench: cannot write --out=" << args.out << "\n";
    return 1;
  }

  std::error_code cleanup_ec;
  std::filesystem::remove_all(scratch, cleanup_ec);  // best effort

  std::cout << "# bench: sim " << sim_hist.count << "x " << base.name << "@"
            << args.jobs << ": min " << exp::format_metric(sim_hist.min)
            << "s, " << exp::format_metric(events_per_second) << " events/s\n"
            << "# bench: trace cache: " << cache.hits << " hit(s), "
            << cache.misses << " miss(es)\n"
            << "# bench: train " << tspec.name << ": " << outcome.epochs_run
            << " epoch(s), mean " << exp::format_metric(mean(epoch_hist))
            << "s/epoch\n"
            << "# bench: dist " << report.jobs.size() << " job(s): "
            << exp::format_metric(dist_hist.sum) << "s (utilization "
            << exp::format_metric(worker_utilization) << ")\n"
            << "# bench report written to " << args.out << "\n";
  const int obs_rc = args.save_obs();
  // Gate last, so the fresh report and the obs dumps exist either way;
  // a regression (exit 3) outranks a failed obs dump (exit 1).
  if (!args.compare.empty()) {
    const int compared = bench_compare(args.compare, args.out, args.threshold,
                                       args.verdict_out);
    if (compared != 0) return compared;
  }
  return obs_rc;
}

// -------------------------------------------------------------- models

struct ModelsArgs {
  std::string store_root;
  bool prune = false;
  std::string import_bundles;
  std::string export_dir;
  std::string export_keys;
  std::uint64_t max_store_bytes = 0;

  exp::ArgParser make_parser() {
    exp::ArgParser parser(
        "rlbf_run models",
        "List and maintain the model store: prune, LRU size cap, and "
        "portable bundle export/import (fingerprint-verified).");
    parser.add("--store", &store_root,
               "model store root (default: $RLBF_MODEL_STORE or 'models')");
    parser.add_flag("--prune", &prune,
                    "remove entries not referenced by any registered training "
                    "spec or scenario");
    parser.add("--import_bundle", &import_bundles,
               "import bundle directories (comma-separated; a directory "
               "whose subdirectories hold bundles imports them all); every "
               "entry re-verified against its fingerprint — corrupt or "
               "mismatched models are rejected");
    parser.add("--export_bundle", &export_dir,
               "pack store entries into this portable bundle directory");
    parser.add("--keys", &export_keys,
               "comma-separated keys for --export_bundle (empty = all entries)");
    parser.add("--max_store_bytes", &max_store_bytes,
               "evict least-recently-used unreferenced entries until the store "
               "fits this many bytes (0 = no cap)");
    return parser;
  }
};

/// The keys `models --prune` / `--max_store_bytes` must never drop:
/// the fingerprint of every registered training spec, every raw store
/// key a registered scenario points at, AND every entry trained under a
/// registered spec's name — the last because resolve_agent's
/// unique-same-name fallback can serve those (e.g. CLI budget
/// overrides), so removing them would break a scenario that resolved a
/// moment earlier. Everything else is removable.
std::vector<std::string> collect_referenced(model::Store& store) {
  std::vector<std::string> referenced;
  const std::vector<std::string> referenced_names = model::training_spec_names();
  for (const std::string& name : referenced_names) {
    referenced.push_back(model::fingerprint(model::find_training_spec(name)));
  }
  for (const std::string& name : exp::scenario_names()) {
    const exp::ScenarioSpec& s = exp::find_scenario(name);
    if (!s.scheduler.uses_agent()) continue;
    if (!model::TrainingRegistry::instance().contains(s.scheduler.agent)) {
      referenced.push_back(s.scheduler.agent);  // raw key reference
    }
  }
  for (const model::StoreEntry& entry : store.list()) {
    if (std::find(referenced_names.begin(), referenced_names.end(),
                  entry.name) != referenced_names.end()) {
      referenced.push_back(entry.key);
    }
  }
  return referenced;
}

int models(int argc, char** argv) {
  ModelsArgs args;
  exp::ArgParser parser = args.make_parser();
  parser.parse_or_exit(argc, argv);

  if (!args.store_root.empty()) model::set_default_store_root(args.store_root);
  model::Store& store = model::default_store();

  if (!args.import_bundles.empty()) {
    // Each comma-separated element may itself be a directory of bundles
    // (the orchestrator's collected work dir) — resolve, then import
    // every bundle with its own per-bundle report line.
    std::size_t total_imported = 0;
    std::size_t total_skipped = 0;
    std::size_t bundle_count = 0;
    for (const std::string& arg :
         split_names(args.import_bundles, "--import_bundle")) {
      for (const std::string& dir : model::find_bundle_dirs(arg)) {
        const model::Store::ImportReport report = store.import_bundle(dir);
        ++bundle_count;
        total_imported += report.imported.size();
        total_skipped += report.skipped_existing.size();
        for (const std::string& key : report.imported) {
          std::cout << "imported " << key << "\n";
        }
        std::cout << "# bundle " << dir << "/: " << report.imported.size()
                  << " imported, " << report.skipped_existing.size()
                  << " already present\n";
      }
    }
    std::cout << "# imported " << total_imported << " entr"
              << (total_imported == 1 ? "y" : "ies") << " ("
              << total_skipped << " already present) from " << bundle_count
              << " bundle(s)\n";
  }

  // One referenced-key set serves both maintenance passes (it hashes
  // every registered spec, so don't compute it twice).
  std::vector<std::string> referenced;
  if (args.prune || args.max_store_bytes > 0) {
    referenced = collect_referenced(store);
  }

  if (args.prune) {
    const std::vector<std::string> removed = store.prune(referenced);
    for (const std::string& key : removed) {
      std::cout << "pruned " << key << "\n";
    }
    std::cout << "# pruned " << removed.size() << " unreferenced "
              << (removed.size() == 1 ? "entry" : "entries") << " from "
              << store.root() << "/\n";
  }

  if (args.max_store_bytes > 0) {
    const model::Store::EvictionResult result =
        store.evict_lru(args.max_store_bytes, referenced);
    for (const std::string& key : result.removed) {
      std::cout << "evicted " << key << "\n";
    }
    std::cout << "# store " << result.bytes_before << " -> "
              << result.bytes_after << " bytes (cap " << args.max_store_bytes
              << ", " << result.removed.size() << " evicted)\n";
  }

  if (!args.export_dir.empty()) {
    std::vector<std::string> keys;
    if (!args.export_keys.empty()) keys = split_names(args.export_keys, "--keys");
    const std::vector<std::string> exported =
        store.export_bundle(args.export_dir, keys);
    std::cout << "# exported " << exported.size() << " entr"
              << (exported.size() == 1 ? "y" : "ies") << " to "
              << args.export_dir << "/\n";
  }

  const auto meta_of = [](const model::StoreEntry& e, const char* key) {
    const auto it = e.meta.find(key);
    return it == e.meta.end() ? std::string() : it->second;
  };
  util::Table table({"key", "spec", "algorithm", "workload", "base", "epochs",
                     "best_eval"});
  for (const model::StoreEntry& entry : store.list()) {
    table.add_row({entry.key, entry.name, meta_of(entry, "algorithm"),
                   meta_of(entry, "workload"), meta_of(entry, "base_policy"),
                   meta_of(entry, "epochs"), meta_of(entry, "best_eval_bsld")});
  }
  table.print(std::cout);
  std::cout << "# " << store.list().size() << " model(s) in " << store.root()
            << "/\n";
  return 0;
}

// ---------------------------------------------------------------- help

struct Command {
  const char* name;
  const char* blurb;                      // one line for the overview
  std::string (*usage)();                 // the command's full usage text
};

/// One place enumerates every subcommand; `help`, `help <command>`, and
/// the unknown-command error all render from it, so they can never
/// drift apart.
const std::vector<Command>& command_table() {
  static const std::vector<Command> commands = {
      {"run", "run scenarios and parameter sweeps (alias: sweep)",
       [] { return RunArgs{}.make_parser().usage(); }},
      {"sweep", "alias of run (reads naturally with --shard=I/N)",
       [] { return RunArgs{}.make_parser().usage(); }},
      {"merge", "recombine shard-tagged sweep outputs",
       [] { return MergeArgs{}.make_parser().usage(); }},
      {"orchestrate", "launch, supervise, and merge a distributed sweep",
       [] { return OrchestrateArgs{}.make_parser().usage(); }},
      {"train", "train specs into the model store (sharded or fanned out)",
       [] { return TrainArgs{}.make_parser().usage(); }},
      {"collect-rollouts",
       "rollout worker behind train --rollout_workers (actor/learner split)",
       [] { return CollectRolloutsArgs{}.make_parser().usage(); }},
      {"models", "list and maintain the model store",
       [] { return ModelsArgs{}.make_parser().usage(); }},
      {"bench",
       "time the sim/train/dist hot paths into a JSON report "
       "(--compare gates against a baseline)",
       [] { return BenchArgs{}.make_parser().usage(); }},
      {"profile", "self-time table per span name from a trace file",
       [] { return ProfileArgs{}.make_parser().usage(); }},
      {"curves",
       "render --series_out time series (training curves, fleet series) "
       "as aligned table/CSV/JSON",
       [] { return CurvesArgs{}.make_parser().usage(); }},
  };
  return commands;
}

std::string known_command_names() {
  std::string names;
  for (const Command& command : command_table()) {
    names += (names.empty() ? "" : ", ") + std::string(command.name);
  }
  return names + ", help";
}

int help(int argc, char** argv) {
  if (argc > 1) {
    const std::string name = argv[1];
    for (const Command& command : command_table()) {
      if (name == command.name) {
        std::cout << command.usage();
        return 0;
      }
    }
    std::cerr << "rlbf_run help: unknown command '" << name
              << "' (known: " << known_command_names() << ")\n";
    return 2;
  }
  std::cout << "rlbf_run — scenario runs, distributed sweeps, and the model "
               "store, one driver.\n\n"
            << "Commands (rlbf_run help <command> for full usage):\n";
  for (const Command& command : command_table()) {
    const std::size_t len = std::strlen(command.name);
    const std::size_t pad = len < 13 ? 13 - len : 2;
    std::cout << "  " << command.name << std::string(pad, ' ')
              << command.blurb << "\n";
  }
  std::cout << "\nThe bare legacy flag form (no subcommand) means `run`.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc > 0) g_program_path = argv[0];
    // Subcommand dispatch; the bare legacy flag form still means `run`.
    if (argc > 1 && argv[1][0] != '-') {
      const std::string command = argv[1];
      // `sweep` is an alias of `run`: sharded grids read more naturally
      // as `rlbf_run sweep --shard=0/3` but share every flag with run.
      if (command == "run" || command == "sweep") return run(argc - 1, argv + 1);
      if (command == "merge") return merge(argc - 1, argv + 1);
      if (command == "orchestrate") return orchestrate(argc - 1, argv + 1);
      if (command == "train") return train(argc - 1, argv + 1);
      if (command == "collect-rollouts") {
        return collect_rollouts(argc - 1, argv + 1);
      }
      if (command == "models") return models(argc - 1, argv + 1);
      if (command == "bench") return bench(argc - 1, argv + 1);
      if (command == "profile") return profile(argc - 1, argv + 1);
      if (command == "curves") return curves(argc - 1, argv + 1);
      if (command == "help") return help(argc - 1, argv + 1);
      std::cerr << "rlbf_run: unknown command '" << command
                << "' (known: " << known_command_names() << ")\n";
      return 2;
    }
    // Top-level --help lists every command, like `help`.
    if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                     std::strcmp(argv[1], "-h") == 0)) {
      return help(1, argv);
    }
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "rlbf_run: " << e.what() << "\n";
    return 1;
  }
}
