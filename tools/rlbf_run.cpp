// rlbf_run — the unified driver over the scenario & experiment engine.
//
//   rlbf_run --list                         # the scenario catalog
//   rlbf_run --describe=sdsc-flurry         # one scenario in detail
//   rlbf_run --scenario=sdsc-easy --seed=1 --out_dir=out
//   rlbf_run --scenario=sdsc-easy --threads=8 --out_dir=out
//            --sweep="load=0.5,1.0,1.5;policy=FCFS,SJF"
//   rlbf_run --scenario=sdsc-easy --samples=10 --sample_jobs=1024
//
// Output is deterministic for a given --seed at any --threads value:
// the summary CSV/JSON and the per-job CSVs are byte-identical across
// repeated runs.
#include <filesystem>
#include <iostream>

#include "exp/config.h"
#include "exp/scenario.h"
#include "exp/sink.h"
#include "exp/sweep.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace rlbf;

void list_scenarios() {
  util::Table table({"scenario", "configuration", "description"});
  for (const std::string& name : exp::scenario_names()) {
    const exp::ScenarioSpec& spec = exp::find_scenario(name);
    table.add_row({spec.name, spec.label(), spec.description});
  }
  table.print(std::cout);
}

void describe_scenario(const std::string& name) {
  const exp::ScenarioSpec& s = exp::find_scenario(name);
  std::cout << s.name << ": " << s.description << "\n"
            << "  workload:       " << s.workload << " (" << s.trace_jobs
            << " jobs"
            << (s.machine_procs > 0
                    ? ", " + std::to_string(s.machine_procs) + " procs"
                    : std::string())
            << ")\n"
            << "  scheduler:      " << s.scheduler.label() << " (policy="
            << s.scheduler.policy
            << " backfill=" << exp::backfill_kind_name(s.scheduler.backfill)
            << " estimate=" << exp::estimate_kind_name(s.scheduler.estimate)
            << ")\n"
            << "  load_factor:    " << s.load_factor << "\n"
            << "  heavy_tail:     prob=" << s.heavy_tail_prob
            << " alpha=" << s.heavy_tail_alpha << "\n"
            << "  flurry:         " << (s.inject_flurry ? "inject" : "off")
            << (s.scrub_flurries ? " + scrub" : "") << "\n"
            << "  kill_overrun:   " << (s.kill_exceeding_request ? "on" : "off")
            << "\n";
}

int run(int argc, char** argv) {
  bool list = false;
  std::string describe;
  std::string scenario;
  std::string sweep;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  std::size_t replications = 1;
  std::size_t jobs = 0;
  std::size_t samples = 0;
  std::size_t sample_jobs = 1024;
  std::string out_dir;
  std::string format = "csv";
  bool per_job = true;

  exp::ArgParser parser(
      "rlbf_run", "Run named scheduling scenarios and parameter sweeps.");
  parser.add_flag("--list", &list, "list the scenario catalog and exit");
  parser.add("--describe", &describe, "print one scenario's full spec and exit");
  parser.add("--scenario", &scenario, "scenario name(s), comma-separated");
  parser.add("--sweep", &sweep,
             "parameter grid, e.g. \"load=0.5,1.0;policy=FCFS,SJF\"");
  parser.add("--seed", &seed, "master seed (trace construction + replications)");
  parser.add("--threads", &threads, "worker threads (0 = hardware)");
  parser.add("--replications", &replications,
             "runs per instance at split seeds");
  parser.add("--jobs", &jobs, "override the scenario's trace length (0 = keep)");
  parser.add("--samples", &samples,
             "use the paper's sampled protocol with this many sequences "
             "(0 = one full-trace run)");
  parser.add("--sample_jobs", &sample_jobs, "jobs per sampled sequence");
  parser.add("--out_dir", &out_dir, "write summary + per-job files here");
  parser.add("--format", &format, "summary file format: csv | json | both");
  parser.add("--per_job", &per_job,
             "write per-job CSVs when --out_dir is set (full-run mode only)");
  parser.parse_or_exit(argc, argv);

  if (list) {
    list_scenarios();
    return 0;
  }
  if (!describe.empty()) {
    describe_scenario(describe);
    return 0;
  }
  if (scenario.empty()) {
    std::cerr << "rlbf_run: pass --scenario=NAME (or --list)\n\n"
              << parser.usage();
    return 2;
  }
  if (format != "csv" && format != "json" && format != "both") {
    std::cerr << "rlbf_run: --format must be csv, json, or both\n";
    return 2;
  }

  // Expand --scenario (comma list) x --sweep into concrete instances.
  std::vector<exp::ScenarioSpec> specs;
  const std::vector<exp::SweepAxis> axes = exp::parse_sweep(sweep);
  std::size_t start = 0;
  while (start <= scenario.size()) {
    const std::size_t comma = scenario.find(',', start);
    const std::string name = scenario.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? scenario.size() + 1 : comma + 1;
    if (name.empty()) {
      std::cerr << "rlbf_run: empty scenario name in --scenario=" << scenario
                << "\n";
      return 2;
    }
    exp::ScenarioSpec base = exp::find_scenario(name);
    if (jobs > 0) base.trace_jobs = jobs;
    for (exp::ScenarioSpec& instance : exp::expand_grid(base, axes)) {
      specs.push_back(std::move(instance));
    }
  }

  std::vector<exp::SummaryRow> rows;
  std::vector<exp::ScenarioRun> runs;
  if (samples > 0) {
    // Sampled-sequences protocol: one row per instance, with CI. The
    // protocol's sampling stream already covers repetition, so
    // replications don't apply here; per-job results are not collected.
    if (replications > 1) {
      std::cerr << "rlbf_run: note: --replications is ignored in --samples "
                   "mode (the protocol samples internally)\n";
    }
    core::EvalProtocol protocol;
    protocol.samples = samples;
    protocol.sample_jobs = sample_jobs;
    protocol.seed = seed;
    rows.resize(specs.size());
    util::ThreadPool pool(threads);
    pool.parallel_for(specs.size(), [&](std::size_t i) {
      rows[i] =
          exp::summarize(specs[i], exp::evaluate_scenario(specs[i], protocol), seed);
    });
  } else {
    exp::SweepOptions options;
    options.seed = seed;
    options.threads = threads;
    options.replications = replications;
    runs = exp::run_sweep(specs, options);
    rows.reserve(runs.size());
    for (const exp::ScenarioRun& r : runs) rows.push_back(exp::summarize(r));
  }

  // Human-readable table on stdout.
  util::Table table({"scenario", "seed", "jobs", "bsld", "avg_wait",
                     "utilization", "backfilled", "killed", "ci95"});
  for (const exp::SummaryRow& row : rows) {
    const std::string ci =
        std::isnan(row.ci_lo) ? ""
                              : "[" + exp::format_metric(row.ci_lo) + ", " +
                                    exp::format_metric(row.ci_hi) + "]";
    table.add_row({row.scenario, std::to_string(row.seed),
                   std::to_string(row.jobs), exp::format_metric(row.bsld),
                   exp::format_metric(row.avg_wait),
                   exp::format_metric(row.utilization),
                   exp::format_count(row.backfilled),
                   exp::format_count(row.killed), ci});
  }
  table.print(std::cout);

  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::cerr << "rlbf_run: cannot create " << out_dir << ": " << ec.message()
                << "\n";
      return 1;
    }
    bool ok = true;
    if (format == "csv" || format == "both") {
      ok &= exp::save_summary_csv(out_dir + "/summary.csv", rows);
    }
    if (format == "json" || format == "both") {
      ok &= exp::save_summary_json(out_dir + "/summary.json", rows);
    }
    if (per_job) {
      for (const exp::ScenarioRun& r : runs) {
        const std::string path = out_dir + "/jobs-" +
                                 exp::sanitize_filename(r.scenario) + "-s" +
                                 std::to_string(r.seed) + ".csv";
        ok &= exp::save_per_job_csv(path, r);
      }
    }
    if (!ok) {
      std::cerr << "rlbf_run: failed writing results under " << out_dir << "\n";
      return 1;
    }
    std::cout << "# results written to " << out_dir << "/\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "rlbf_run: " << e.what() << "\n";
    return 1;
  }
}
