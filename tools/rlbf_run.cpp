// rlbf_run — the unified driver over the scenario & experiment engine
// and the model store.
//
//   rlbf_run run --list                     # the scenario catalog
//   rlbf_run run --describe=sdsc-flurry    # one scenario in detail
//   rlbf_run run --scenario=sdsc-easy --seed=1 --out_dir=out
//   rlbf_run run --scenario=sdsc-easy --threads=8 --out_dir=out
//            --sweep="load=0.5,1.0,1.5;policy=FCFS,SJF"
//   rlbf_run run --scenario=sdsc-easy --samples=10 --sample_jobs=1024
//   rlbf_run run --scenario=sdsc-easy --agent=sdsc-fcfs   # RL backfilling
//
//   rlbf_run train --list                   # the training-spec catalog
//   rlbf_run train --spec=sdsc-fcfs         # train into the model store
//                                           # (second invocation: cache hit)
//   rlbf_run train --ablations              # every abl-* ablation arm
//   rlbf_run run --scenario=abl-obsv-8      # evaluate a trained arm
//   rlbf_run models                         # list the store
//   rlbf_run models --prune                 # drop unreferenced entries
//
// Distributed sweeps (`sweep` is an alias of `run`): every machine runs
// one shard of the deterministic instance partition, and `merge`
// recombines the shard-tagged outputs into files byte-identical to an
// unsharded run. Model stores travel between machines as verified
// bundles:
//
//   rlbf_run sweep --scenario=sdsc-easy --sweep="load=0.5,1.0"
//            --shard=0/2 --out_dir=shard0        # machine A
//   rlbf_run sweep ... --shard=1/2 --out_dir=shard1   # machine B
//   rlbf_run merge --inputs=shard0,shard1 --out_dir=merged
//   rlbf_run models --export_bundle=bundle          # pack the store
//   rlbf_run models --store=other --import_bundle=bundle  # verified import
//   rlbf_run models --max_store_bytes=100000000     # LRU size cap
//
// The bare legacy form (no subcommand) still works and means `run`.
//
// Output is deterministic for a given --seed at any --threads value:
// trained models, the summary CSV/JSON, and the per-job CSVs are
// byte-identical across repeated runs.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <stdexcept>

#include "exp/config.h"
#include "exp/scenario.h"
#include "exp/shard.h"
#include "exp/sink.h"
#include "exp/sweep.h"
#include "model/store.h"
#include "model/train.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace rlbf;

void list_scenarios() {
  util::Table table({"scenario", "configuration", "description"});
  for (const std::string& name : exp::scenario_names()) {
    const exp::ScenarioSpec& spec = exp::find_scenario(name);
    table.add_row({spec.name, spec.label(), spec.description});
  }
  table.print(std::cout);
}

/// Split a comma-separated name list; empty elements are an error.
std::vector<std::string> split_names(const std::string& text,
                                     const std::string& flag) {
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string name = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (name.empty()) {
      throw std::invalid_argument("empty name in " + flag + "=" + text);
    }
    names.push_back(name);
  }
  return names;
}

void describe_scenario(const std::string& name) {
  const exp::ScenarioSpec& s = exp::find_scenario(name);
  std::cout << s.name << ": " << s.description << "\n"
            << "  workload:       " << s.workload << " (" << s.trace_jobs
            << " jobs"
            << (s.machine_procs > 0
                    ? ", " + std::to_string(s.machine_procs) + " procs"
                    : std::string())
            << ")\n"
            << "  scheduler:      " << s.scheduler.label() << " (policy="
            << s.scheduler.policy
            << " backfill=" << exp::backfill_kind_name(s.scheduler.backfill)
            << " estimate=" << exp::estimate_kind_name(s.scheduler.estimate)
            << ")\n"
            << (s.scheduler.uses_agent()
                    ? "  agent:          " + s.scheduler.agent + "\n"
                    : std::string())
            << "  load_factor:    " << s.load_factor << "\n"
            << "  heavy_tail:     prob=" << s.heavy_tail_prob
            << " alpha=" << s.heavy_tail_alpha << "\n"
            << "  flurry:         " << (s.inject_flurry ? "inject" : "off")
            << (s.scrub_flurries ? " + scrub" : "") << "\n"
            << "  kill_overrun:   " << (s.kill_exceeding_request ? "on" : "off")
            << "\n";
}

int run(int argc, char** argv) {
  bool list = false;
  std::string describe;
  std::string scenario;
  std::string sweep;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  std::size_t replications = 1;
  std::size_t jobs = 0;
  std::size_t samples = 0;
  std::size_t sample_jobs = 1024;
  std::string out_dir;
  std::string format = "csv";
  bool per_job = true;
  std::string agent;
  std::string store_root;
  std::string shard_text;

  exp::ArgParser parser(
      "rlbf_run run", "Run named scheduling scenarios and parameter sweeps.");
  parser.add_flag("--list", &list, "list the scenario catalog and exit");
  parser.add("--describe", &describe, "print one scenario's full spec and exit");
  parser.add("--scenario", &scenario, "scenario name(s), comma-separated");
  parser.add("--sweep", &sweep,
             "parameter grid, e.g. \"load=0.5,1.0;policy=FCFS,SJF\"");
  parser.add("--seed", &seed, "master seed (trace construction + replications)");
  parser.add("--threads", &threads, "worker threads (0 = hardware)");
  parser.add("--replications", &replications,
             "runs per instance at split seeds");
  parser.add("--jobs", &jobs, "override the scenario's trace length (0 = keep)");
  parser.add("--samples", &samples,
             "use the paper's sampled protocol with this many sequences "
             "(0 = one full-trace run)");
  parser.add("--sample_jobs", &sample_jobs, "jobs per sampled sequence");
  parser.add("--out_dir", &out_dir, "write summary + per-job files here");
  parser.add("--format", &format, "summary file format: csv | json | both");
  parser.add("--per_job", &per_job,
             "write per-job CSVs when --out_dir is set (full-run mode only)");
  parser.add("--agent", &agent,
             "trained-agent reference applied to every instance "
             "(training-spec name, store key, or model file path; 'none' "
             "clears a scenario's reference back to its heuristic)");
  parser.add("--store", &store_root,
             "model store root for agent references "
             "(default: $RLBF_MODEL_STORE or 'models')");
  parser.add("--shard", &shard_text,
             "run only shard I of an N-way deterministic instance partition "
             "(\"I/N\"); --out_dir files are shard-tagged for `rlbf_run "
             "merge` (empty = unsharded)");
  parser.parse_or_exit(argc, argv);
  if (!store_root.empty()) model::set_default_store_root(store_root);
  // Parsed up front so a malformed spec fails before any work runs; the
  // named std::invalid_argument propagates to main's handler.
  exp::ShardSpec shard;
  if (!shard_text.empty()) shard = exp::parse_shard(shard_text);

  if (list) {
    list_scenarios();
    return 0;
  }
  if (!describe.empty()) {
    describe_scenario(describe);
    return 0;
  }
  if (scenario.empty()) {
    std::cerr << "rlbf_run: pass --scenario=NAME (or --list)\n\n"
              << parser.usage();
    return 2;
  }
  if (format != "csv" && format != "json" && format != "both") {
    std::cerr << "rlbf_run: --format must be csv, json, or both\n";
    return 2;
  }

  // Expand --scenario (comma list) x --sweep into concrete instances.
  std::vector<exp::ScenarioSpec> specs;
  const std::vector<exp::SweepAxis> axes = exp::parse_sweep(sweep);
  for (const std::string& name : split_names(scenario, "--scenario")) {
    exp::ScenarioSpec base = exp::find_scenario(name);
    if (jobs > 0) base.trace_jobs = jobs;
    // Same convention as the sweep parameter ("none" = heuristic), via
    // the same tested implementation.
    if (!agent.empty()) exp::apply_param(base, "agent", agent);
    for (exp::ScenarioSpec& instance : exp::expand_grid(base, axes)) {
      specs.push_back(std::move(instance));
    }
  }

  std::vector<exp::SummaryRow> rows;
  std::vector<exp::ScenarioRun> runs;
  // Sharding metadata for tagged output: which global instance each row
  // is, out of how many in the whole (unsharded) sweep.
  std::vector<std::size_t> instances;
  std::size_t total_instances = 0;
  if (samples > 0) {
    // Sampled-sequences protocol: one row per instance, with CI. The
    // protocol's sampling stream already covers repetition, so
    // replications don't apply here; per-job results are not collected.
    if (replications > 1) {
      std::cerr << "rlbf_run: note: --replications is ignored in --samples "
                   "mode (the protocol samples internally)\n";
    }
    core::EvalProtocol protocol;
    protocol.samples = samples;
    protocol.sample_jobs = sample_jobs;
    protocol.seed = seed;
    total_instances = specs.size();
    instances = exp::shard_instance_indices(total_instances, shard);
    rows.resize(instances.size());
    util::ThreadPool pool(threads);
    pool.parallel_for(instances.size(), [&](std::size_t i) {
      const exp::ScenarioSpec& spec = specs[instances[i]];
      rows[i] = exp::summarize(spec, exp::evaluate_scenario(spec, protocol), seed);
    });
  } else {
    exp::SweepOptions options;
    options.seed = seed;
    options.threads = threads;
    options.replications = replications;
    options.shard_index = shard.index;
    options.shard_count = shard.count;
    total_instances =
        specs.size() * (replications == 0 ? std::size_t{1} : replications);
    instances = exp::run_sweep_instances(specs.size(), options);
    runs = exp::run_sweep(specs, options);
    rows.reserve(runs.size());
    for (const exp::ScenarioRun& r : runs) rows.push_back(exp::summarize(r));
  }

  // Human-readable table on stdout.
  util::Table table({"scenario", "seed", "jobs", "bsld", "avg_wait",
                     "utilization", "backfilled", "killed", "ci95"});
  for (const exp::SummaryRow& row : rows) {
    const std::string ci =
        std::isnan(row.ci_lo) ? ""
                              : "[" + exp::format_metric(row.ci_lo) + ", " +
                                    exp::format_metric(row.ci_hi) + "]";
    table.add_row({row.scenario, std::to_string(row.seed),
                   std::to_string(row.jobs), exp::format_metric(row.bsld),
                   exp::format_metric(row.avg_wait),
                   exp::format_metric(row.utilization),
                   exp::format_count(row.backfilled),
                   exp::format_count(row.killed), ci});
  }
  table.print(std::cout);

  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::cerr << "rlbf_run: cannot create " << out_dir << ": " << ec.message()
                << "\n";
      return 1;
    }
    bool ok = true;
    if (shard_text.empty()) {
      if (format == "csv" || format == "both") {
        ok &= exp::save_summary_csv(out_dir + "/summary.csv", rows);
      }
      if (format == "json" || format == "both") {
        ok &= exp::save_summary_json(out_dir + "/summary.json", rows);
      }
    } else {
      // Shard-tagged artifacts: rows carry their global instance index
      // so `rlbf_run merge` can restore the unsharded order (and detect
      // gaps/duplicates) without re-parsing any numbers.
      exp::ShardSummary summary;
      summary.shard = shard;
      summary.total_instances = total_instances;
      summary.instances = instances;
      summary.rows = rows;
      if (format == "csv" || format == "both") {
        ok &= exp::save_shard_summary_csv(
            out_dir + "/" + exp::shard_summary_filename(shard, "csv"), summary);
      }
      if (format == "json" || format == "both") {
        ok &= exp::save_shard_summary_json(
            out_dir + "/" + exp::shard_summary_filename(shard, "json"), summary);
      }
    }
    if (per_job) {
      for (const exp::ScenarioRun& r : runs) {
        const std::string path =
            out_dir + "/" + exp::per_job_filename(r.scenario, r.seed);
        ok &= exp::save_per_job_csv(path, r);
      }
    }
    if (!ok) {
      std::cerr << "rlbf_run: failed writing results under " << out_dir << "\n";
      return 1;
    }
    std::cout << "# results written to " << out_dir << "/\n";
  }
  return 0;
}

int merge(int argc, char** argv) {
  std::string inputs;
  std::string out_dir;

  exp::ArgParser parser(
      "rlbf_run merge",
      "Recombine shard-tagged sweep outputs (run/sweep --shard=I/N "
      "--out_dir=...) into the canonical unsharded files — byte-identical "
      "to a single-machine run at the same seed. Incomplete or "
      "inconsistent shard sets fail with named errors.");
  parser.add("--inputs", &inputs,
             "comma-separated shard output directories (one per shard)");
  parser.add("--out_dir", &out_dir, "where the merged files go");
  parser.parse_or_exit(argc, argv);

  if (inputs.empty() || out_dir.empty()) {
    std::cerr << "rlbf_run merge: pass --inputs=DIR,DIR,... and --out_dir=DIR\n\n"
              << parser.usage();
    return 2;
  }
  const exp::MergeReport report =
      exp::merge_shard_dirs(split_names(inputs, "--inputs"), out_dir);
  std::cout << "# merged " << report.shard_count << " shard(s), "
            << report.total_instances << " instance(s)";
  if (report.csv_merged) std::cout << " -> " << out_dir << "/summary.csv";
  if (report.json_merged) std::cout << " -> " << out_dir << "/summary.json";
  if (report.per_job_files_copied > 0) {
    std::cout << " (+" << report.per_job_files_copied << " per-job files)";
  }
  std::cout << "\n";
  return 0;
}

int train(int argc, char** argv) {
  bool list = false;
  std::string spec_names;
  std::string store_root;
  std::size_t threads = 0;
  bool force = false;
  bool quiet = false;
  std::uint64_t seed = 0;
  std::size_t epochs = 0;
  std::size_t trajectories = 0;
  std::size_t traj_jobs = 0;
  std::size_t jobs = 0;

  exp::ArgParser parser("rlbf_run train",
                        "Train agents from declarative specs into the model "
                        "store (content-addressed; a second identical train "
                        "is a cache hit and runs nothing).");
  bool ablations = false;
  parser.add_flag("--list", &list, "list the training-spec catalog and exit");
  parser.add("--spec", &spec_names, "training spec name(s), comma-separated");
  parser.add_flag("--ablations", &ablations,
                  "train every registered abl-* ablation arm (registration "
                  "order trains warm-start sources before their consumers)");
  parser.add("--store", &store_root,
             "model store root (default: $RLBF_MODEL_STORE or 'models')");
  parser.add("--threads", &threads,
             "worker threads (0 = hardware; never changes the result)");
  parser.add_flag("--force", &force, "retrain even on a store cache hit");
  parser.add_flag("--quiet", &quiet, "suppress the per-epoch progress table");
  parser.add("--seed", &seed,
             "master seed: spec seeds are pre-split from it (0 = keep each "
             "spec's own seed)");
  parser.add("--epochs", &epochs, "override every spec's epochs (0 = keep)");
  parser.add("--trajectories", &trajectories,
             "override trajectories per epoch (0 = keep)");
  parser.add("--traj_jobs", &traj_jobs,
             "override jobs per trajectory (0 = keep)");
  parser.add("--jobs", &jobs, "override the training trace length (0 = keep)");
  parser.parse_or_exit(argc, argv);

  if (list) {
    util::Table table({"spec", "algorithm", "workload", "base", "budget",
                       "key", "description"});
    for (const std::string& name : model::training_spec_names()) {
      const model::TrainingSpec& s = model::find_training_spec(name);
      table.add_row({s.name, s.algorithm, s.workload.workload,
                     s.trainer.base_policy,
                     std::to_string(s.trainer.epochs) + "x" +
                         std::to_string(s.trainer.trajectories_per_epoch) + "x" +
                         std::to_string(s.trainer.jobs_per_trajectory),
                     model::fingerprint(s), s.description});
    }
    table.print(std::cout);
    return 0;
  }
  if (spec_names.empty() && !ablations) {
    std::cerr << "rlbf_run train: pass --spec=NAME, --ablations, or --list\n\n"
              << parser.usage();
    return 2;
  }
  if (!store_root.empty()) model::set_default_store_root(store_root);
  model::Store& store = model::default_store();

  std::vector<std::string> names;
  if (!spec_names.empty()) names = split_names(spec_names, "--spec");
  if (ablations) {
    for (std::string& arm : model::ablation_arm_names()) {
      names.push_back(std::move(arm));
    }
  }
  std::vector<model::TrainingSpec> specs;
  for (const std::string& name : names) {
    model::TrainingSpec spec = model::find_training_spec(name);
    if (epochs > 0) spec.trainer.epochs = epochs;
    if (trajectories > 0) spec.trainer.trajectories_per_epoch = trajectories;
    if (traj_jobs > 0) spec.trainer.jobs_per_trajectory = traj_jobs;
    if (jobs > 0) spec.workload.trace_jobs = jobs;
    specs.push_back(std::move(spec));
  }

  model::TrainOptions options;
  options.threads = threads;
  options.force = force;
  if (!quiet) {
    options.on_progress = [](const model::TrainingSpec& spec,
                             const model::TrainProgress& p) {
      std::cout << spec.name << " epoch " << p.epoch
                << " reward=" << exp::format_metric(p.mean_reward)
                << " bsld=" << exp::format_metric(p.mean_bsld)
                << " baseline=" << exp::format_metric(p.mean_baseline_bsld)
                << " steps=" << p.steps;
      if (!std::isnan(p.eval_bsld)) {
        std::cout << " eval=" << exp::format_metric(p.eval_bsld);
      }
      std::cout << "\n";
    };
  }

  const std::vector<model::TrainOutcome> outcomes =
      model::train_specs(specs, store, options, seed);
  util::Table table({"spec", "key", "status", "epochs", "best_eval", "path"});
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const model::TrainOutcome& out = outcomes[i];
    table.add_row({specs[i].name, out.entry.key,
                   out.cache_hit ? "cache hit (no retraining)" : "trained",
                   std::to_string(out.epochs_run),
                   std::isnan(out.best_eval_bsld)
                       ? ""
                       : exp::format_metric(out.best_eval_bsld),
                   out.entry.path});
  }
  table.print(std::cout);
  return 0;
}

/// The keys `models --prune` / `--max_store_bytes` must never drop:
/// the fingerprint of every registered training spec, every raw store
/// key a registered scenario points at, AND every entry trained under a
/// registered spec's name — the last because resolve_agent's
/// unique-same-name fallback can serve those (e.g. CLI budget
/// overrides), so removing them would break a scenario that resolved a
/// moment earlier. Everything else is removable.
std::vector<std::string> collect_referenced(model::Store& store) {
  std::vector<std::string> referenced;
  const std::vector<std::string> referenced_names = model::training_spec_names();
  for (const std::string& name : referenced_names) {
    referenced.push_back(model::fingerprint(model::find_training_spec(name)));
  }
  for (const std::string& name : exp::scenario_names()) {
    const exp::ScenarioSpec& s = exp::find_scenario(name);
    if (!s.scheduler.uses_agent()) continue;
    if (!model::TrainingRegistry::instance().contains(s.scheduler.agent)) {
      referenced.push_back(s.scheduler.agent);  // raw key reference
    }
  }
  for (const model::StoreEntry& entry : store.list()) {
    if (std::find(referenced_names.begin(), referenced_names.end(),
                  entry.name) != referenced_names.end()) {
      referenced.push_back(entry.key);
    }
  }
  return referenced;
}

int models(int argc, char** argv) {
  std::string store_root;
  bool prune = false;
  std::string import_dir;
  std::string export_dir;
  std::string export_keys;
  std::uint64_t max_store_bytes = 0;

  exp::ArgParser parser(
      "rlbf_run models",
      "List and maintain the model store: prune, LRU size cap, and "
      "portable bundle export/import (fingerprint-verified).");
  parser.add("--store", &store_root,
             "model store root (default: $RLBF_MODEL_STORE or 'models')");
  parser.add_flag("--prune", &prune,
                  "remove entries not referenced by any registered training "
                  "spec or scenario");
  parser.add("--import_bundle", &import_dir,
             "import a bundle directory (every entry re-verified against its "
             "fingerprint; corrupt or mismatched models are rejected)");
  parser.add("--export_bundle", &export_dir,
             "pack store entries into this portable bundle directory");
  parser.add("--keys", &export_keys,
             "comma-separated keys for --export_bundle (empty = all entries)");
  parser.add("--max_store_bytes", &max_store_bytes,
             "evict least-recently-used unreferenced entries until the store "
             "fits this many bytes (0 = no cap)");
  parser.parse_or_exit(argc, argv);

  if (!store_root.empty()) model::set_default_store_root(store_root);
  model::Store& store = model::default_store();

  if (!import_dir.empty()) {
    const model::Store::ImportReport report = store.import_bundle(import_dir);
    for (const std::string& key : report.imported) {
      std::cout << "imported " << key << "\n";
    }
    std::cout << "# imported " << report.imported.size() << " entr"
              << (report.imported.size() == 1 ? "y" : "ies") << " ("
              << report.skipped_existing.size() << " already present) from "
              << import_dir << "/\n";
  }

  // One referenced-key set serves both maintenance passes (it hashes
  // every registered spec, so don't compute it twice).
  std::vector<std::string> referenced;
  if (prune || max_store_bytes > 0) referenced = collect_referenced(store);

  if (prune) {
    const std::vector<std::string> removed = store.prune(referenced);
    for (const std::string& key : removed) {
      std::cout << "pruned " << key << "\n";
    }
    std::cout << "# pruned " << removed.size() << " unreferenced "
              << (removed.size() == 1 ? "entry" : "entries") << " from "
              << store.root() << "/\n";
  }

  if (max_store_bytes > 0) {
    const model::Store::EvictionResult result =
        store.evict_lru(max_store_bytes, referenced);
    for (const std::string& key : result.removed) {
      std::cout << "evicted " << key << "\n";
    }
    std::cout << "# store " << result.bytes_before << " -> "
              << result.bytes_after << " bytes (cap " << max_store_bytes
              << ", " << result.removed.size() << " evicted)\n";
  }

  if (!export_dir.empty()) {
    std::vector<std::string> keys;
    if (!export_keys.empty()) keys = split_names(export_keys, "--keys");
    const std::vector<std::string> exported = store.export_bundle(export_dir, keys);
    std::cout << "# exported " << exported.size() << " entr"
              << (exported.size() == 1 ? "y" : "ies") << " to " << export_dir
              << "/\n";
  }

  const auto meta_of = [](const model::StoreEntry& e, const char* key) {
    const auto it = e.meta.find(key);
    return it == e.meta.end() ? std::string() : it->second;
  };
  util::Table table({"key", "spec", "algorithm", "workload", "base", "epochs",
                     "best_eval"});
  for (const model::StoreEntry& entry : store.list()) {
    table.add_row({entry.key, entry.name, meta_of(entry, "algorithm"),
                   meta_of(entry, "workload"), meta_of(entry, "base_policy"),
                   meta_of(entry, "epochs"), meta_of(entry, "best_eval_bsld")});
  }
  table.print(std::cout);
  std::cout << "# " << store.list().size() << " model(s) in " << store.root()
            << "/\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Subcommand dispatch; the bare legacy flag form still means `run`.
    if (argc > 1 && argv[1][0] != '-') {
      const std::string command = argv[1];
      // `sweep` is an alias of `run`: sharded grids read more naturally
      // as `rlbf_run sweep --shard=0/3` but share every flag with run.
      if (command == "run" || command == "sweep") return run(argc - 1, argv + 1);
      if (command == "merge") return merge(argc - 1, argv + 1);
      if (command == "train") return train(argc - 1, argv + 1);
      if (command == "models") return models(argc - 1, argv + 1);
      std::cerr << "rlbf_run: unknown command '" << command
                << "' (known: run, sweep, merge, train, models)\n";
      return 2;
    }
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "rlbf_run: " << e.what() << "\n";
    return 1;
  }
}
