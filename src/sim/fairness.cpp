#include "sim/fairness.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace rlbf::sim {

std::vector<UserMetrics> per_user_metrics(const std::vector<JobResult>& results,
                                          const swf::Trace& trace) {
  struct Accum {
    std::size_t n = 0;
    double bsld = 0.0;
    double wait = 0.0;
    double max_wait = 0.0;
    std::size_t backfilled = 0;
  };
  std::map<std::int64_t, Accum> by_user;
  for (const auto& r : results) {
    if (r.job_index >= trace.size()) {
      throw std::invalid_argument("per_user_metrics: result references a job "
                                  "outside the trace");
    }
    Accum& a = by_user[trace[r.job_index].user_id];
    ++a.n;
    a.bsld += r.bounded_slowdown();
    a.wait += static_cast<double>(r.wait_time());
    a.max_wait = std::max(a.max_wait, static_cast<double>(r.wait_time()));
    if (r.backfilled) ++a.backfilled;
  }

  std::vector<UserMetrics> out;
  out.reserve(by_user.size());
  for (const auto& [user, a] : by_user) {
    UserMetrics m;
    m.user_id = user;
    m.job_count = a.n;
    const auto n = static_cast<double>(a.n);
    m.avg_bounded_slowdown = a.bsld / n;
    m.avg_wait_time = a.wait / n;
    m.max_wait_time = a.max_wait;
    m.backfilled_jobs = a.backfilled;
    out.push_back(m);
  }
  return out;
}

double jain_fairness_index(const std::vector<double>& values) {
  double sum = 0.0, sum_sq = 0.0;
  for (double v : values) {
    if (v < 0.0) throw std::invalid_argument("jain_fairness_index: negative value");
    sum += v;
    sum_sq += v * v;
  }
  if (values.empty() || sum_sq == 0.0) return 1.0;
  const auto n = static_cast<double>(values.size());
  return (sum * sum) / (n * sum_sq);
}

FairnessReport fairness_report(const std::vector<JobResult>& results,
                               const swf::Trace& trace) {
  FairnessReport report;
  report.users = per_user_metrics(results, trace);
  report.user_count = report.users.size();
  if (report.users.empty()) return report;

  std::vector<double> bslds, waits;
  bslds.reserve(report.users.size());
  waits.reserve(report.users.size());
  double bsld_min = report.users.front().avg_bounded_slowdown;
  double bsld_max = bsld_min;
  for (const auto& u : report.users) {
    bslds.push_back(u.avg_bounded_slowdown);
    waits.push_back(u.avg_wait_time);
    bsld_min = std::min(bsld_min, u.avg_bounded_slowdown);
    bsld_max = std::max(bsld_max, u.avg_bounded_slowdown);
  }
  report.bsld_jain = jain_fairness_index(bslds);
  report.wait_jain = jain_fairness_index(waits);
  // bsld >= 1 by definition, so the ratio is well-defined.
  report.bsld_spread = bsld_min > 0.0 ? bsld_max / bsld_min : 1.0;
  return report;
}

}  // namespace rlbf::sim
