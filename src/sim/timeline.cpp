#include "sim/timeline.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <stdexcept>

namespace rlbf::sim {

std::vector<TimelinePoint> usage_timeline(const std::vector<JobResult>& results) {
  // Sweep line: +procs at start, -procs at end, then prefix-sum.
  std::map<std::int64_t, std::int64_t> deltas;
  for (const auto& r : results) {
    if (r.run_time() == 0) continue;  // zero-length jobs occupy no interval
    deltas[r.start_time] += r.procs;
    deltas[r.end_time] -= r.procs;
  }
  std::vector<TimelinePoint> timeline;
  timeline.reserve(deltas.size());
  std::int64_t used = 0;
  for (const auto& [time, delta] : deltas) {
    used += delta;
    if (!timeline.empty() && timeline.back().used == used) continue;  // merge
    timeline.push_back({time, used});
  }
  // Trailing zero point is meaningful (usage returns to 0); keep it.
  return timeline;
}

std::int64_t peak_usage(const std::vector<JobResult>& results) {
  std::int64_t peak = 0;
  for (const auto& p : usage_timeline(results)) peak = std::max(peak, p.used);
  return peak;
}

std::vector<double> utilization_histogram(const std::vector<JobResult>& results,
                                          std::int64_t total_procs,
                                          std::int64_t bucket_seconds) {
  if (total_procs <= 0) throw std::invalid_argument("histogram: total_procs <= 0");
  if (bucket_seconds <= 0) throw std::invalid_argument("histogram: bucket <= 0");
  if (results.empty()) return {};

  std::int64_t span_start = results.front().start_time;
  std::int64_t span_end = results.front().end_time;
  for (const auto& r : results) {
    span_start = std::min(span_start, r.start_time);
    span_end = std::max(span_end, r.end_time);
  }
  if (span_end <= span_start) return {};
  const auto buckets =
      static_cast<std::size_t>((span_end - span_start + bucket_seconds - 1) /
                               bucket_seconds);
  std::vector<double> busy(buckets, 0.0);
  for (const auto& r : results) {
    // Distribute this job's proc-seconds over the buckets it overlaps.
    std::int64_t t = r.start_time;
    while (t < r.end_time) {
      const auto b = static_cast<std::size_t>((t - span_start) / bucket_seconds);
      const std::int64_t bucket_end = span_start +
          static_cast<std::int64_t>(b + 1) * bucket_seconds;
      const std::int64_t upto = std::min(bucket_end, r.end_time);
      busy[b] += static_cast<double>((upto - t)) * static_cast<double>(r.procs);
      t = upto;
    }
  }
  const double capacity =
      static_cast<double>(total_procs) * static_cast<double>(bucket_seconds);
  for (auto& b : busy) b /= capacity;
  return busy;
}

bool write_schedule_csv(const std::string& path,
                        const std::vector<JobResult>& results) {
  std::ofstream out(path);
  if (!out) return false;
  out << "job,submit,start,end,procs,wait,bounded_slowdown,backfilled\n";
  for (const auto& r : results) {
    out << r.job_index << ',' << r.submit_time << ',' << r.start_time << ','
        << r.end_time << ',' << r.procs << ',' << r.wait_time() << ','
        << r.bounded_slowdown() << ',' << (r.backfilled ? 1 : 0) << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace rlbf::sim
