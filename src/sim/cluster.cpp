#include "sim/cluster.h"

namespace rlbf::sim {

ClusterState::ClusterState(std::int64_t total_procs)
    : total_procs_(total_procs), free_procs_(total_procs) {
  if (total_procs <= 0) throw std::invalid_argument("cluster: total_procs <= 0");
}

void ClusterState::start(std::size_t job_index, std::int64_t procs, std::int64_t now,
                         std::int64_t actual_runtime) {
  if (procs <= 0) throw std::invalid_argument("cluster: job with procs <= 0");
  if (actual_runtime < 0) throw std::invalid_argument("cluster: negative runtime");
  if (procs > free_procs_) throw std::runtime_error("cluster: oversubscription");
  free_procs_ -= procs;
  running_.push(RunningJob{job_index, procs, now, now + actual_runtime});
}

std::int64_t ClusterState::next_completion_time() const {
  if (running_.empty()) throw std::runtime_error("cluster: nothing running");
  return running_.top().end_time;
}

std::vector<RunningJob> ClusterState::complete_until(std::int64_t now) {
  std::vector<RunningJob> done;
  while (!running_.empty() && running_.top().end_time <= now) {
    done.push_back(running_.top());
    running_.pop();
    free_procs_ += done.back().procs;
  }
  return done;
}

std::vector<RunningJob> ClusterState::running_jobs() const {
  // priority_queue has no iteration; copy and drain. Running sets are
  // small (bounded by machine size), so this is cheap and keeps the
  // invariant-holding heap untouched.
  std::vector<RunningJob> out;
  out.reserve(running_.size());
  auto copy = running_;
  while (!copy.empty()) {
    out.push_back(copy.top());
    copy.pop();
  }
  return out;
}

}  // namespace rlbf::sim
