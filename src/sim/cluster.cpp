#include "sim/cluster.h"

#include <algorithm>

namespace rlbf::sim {

ClusterState::ClusterState(std::int64_t total_procs)
    : total_procs_(total_procs), free_procs_(total_procs) {
  if (total_procs <= 0) throw std::invalid_argument("cluster: total_procs <= 0");
}

void ClusterState::start(std::size_t job_index, std::int64_t procs, std::int64_t now,
                         std::int64_t actual_runtime) {
  if (procs <= 0) throw std::invalid_argument("cluster: job with procs <= 0");
  if (actual_runtime < 0) throw std::invalid_argument("cluster: negative runtime");
  if (procs > free_procs_) throw std::runtime_error("cluster: oversubscription");
  free_procs_ -= procs;
  running_.push_back(RunningJob{job_index, procs, now, now + actual_runtime});
  std::push_heap(running_.begin(), running_.end(), ByEndTime{});
}

std::int64_t ClusterState::next_completion_time() const {
  if (running_.empty()) throw std::runtime_error("cluster: nothing running");
  return running_.front().end_time;
}

std::vector<RunningJob> ClusterState::complete_until(std::int64_t now) {
  std::vector<RunningJob> done;
  while (!running_.empty() && running_.front().end_time <= now) {
    std::pop_heap(running_.begin(), running_.end(), ByEndTime{});
    done.push_back(running_.back());
    running_.pop_back();
    free_procs_ += done.back().procs;
  }
  return done;
}

std::vector<RunningJob> ClusterState::running_jobs() const {
  std::vector<RunningJob> out;
  running_jobs_into(out);
  return out;
}

void ClusterState::running_jobs_into(std::vector<RunningJob>& out) const {
  // sort_heap performs exactly the pop_heap sequence the old copy-and-
  // drain loop did, leaving elements in descending pop order; reversing
  // restores pop order (ascending end_time, heap tie behavior intact).
  out = running_;
  std::sort_heap(out.begin(), out.end(), ByEndTime{});
  std::reverse(out.begin(), out.end());
}

}  // namespace rlbf::sim
