// Event-driven HPC scheduling simulation.
//
// Time advances between job arrivals and (actual) job completions; at
// every event the base policy picks the highest-priority queued job. If
// it fits, it starts; if not, a *backfilling opportunity* opens and the
// installed BackfillChooser is consulted repeatedly — one candidate per
// call — until it declines or no candidate fits. This is exactly the
// decision structure RLBackfilling trains on: heuristic backfillers
// (EASY, conservative) and the RL agent implement the same BackfillChooser
// interface, so every strategy is evaluated under identical semantics.
//
// Two clocks coexist by design: resources release at the job's *actual*
// runtime, while choosers only see *estimates* through the
// RuntimeEstimator. The gap between the two is the paper's subject.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/metrics.h"
#include "swf/trace.h"

namespace rlbf::sim {

/// Base scheduling policy: lower score = scheduled first (Table 3 of the
/// paper: FCFS scores by submit time, SJF by request time, ...).
class PriorityPolicy {
 public:
  virtual ~PriorityPolicy() = default;
  virtual double score(const swf::Job& job, std::int64_t now) const = 0;
  virtual std::string name() const = 0;
  /// True when score() ignores `now` (FCFS, SJF). The simulator then
  /// keeps the queue sorted incrementally — binary-inserting arrivals —
  /// instead of re-sorting at every scheduling pass. Policies whose
  /// scores drift with time (WFP3, F1) must leave this false.
  virtual bool time_invariant() const { return false; }
};

/// Source of the runtime estimates schedulers plan with.
class RuntimeEstimator {
 public:
  virtual ~RuntimeEstimator() = default;
  /// Estimated runtime in seconds, always >= 1.
  virtual std::int64_t estimate(const swf::Job& job) const = 0;
  virtual std::string name() const = 0;
};

/// EASY-style reservation for the blocked head job: the shadow time at
/// which, by the estimates, enough processors will have been released,
/// and the processors spare at that moment beyond the head job's need.
struct Reservation {
  std::int64_t shadow_time = 0;
  std::int64_t extra_procs = 0;
};

/// The scheduler-visible release time of a running job: its estimated
/// end, clamped to now + 1 when the estimate already elapsed (an
/// under-prediction counts as "due immediately"). Every planner that
/// projects the running set (EASY reservations, conservative profiles)
/// must apply this to a SNAPSHOT of the running job, never back into the
/// cluster: the cluster's own end_time is the job's *actual* completion,
/// which drives event advancement — persisting the estimated view there
/// would corrupt completion order and the simulation's two-clock design.
std::int64_t estimated_release(const RunningJob& r, std::int64_t estimate,
                               std::int64_t now);

/// Per-simulation memo for values that are pure functions of one job:
/// runtime estimates (NoisyEstimator rebuilds an RNG per call — the
/// dominant per-decision cost) and the log-scaled observation features
/// derived from them, plus the submit-time-sorted queue shared by every
/// observation built for the same decision. Owned by the simulation run;
/// choosers reach it through BackfillContext::cache and must also work
/// when it is null (contexts built outside the simulator, e.g. tests).
/// Memoization is exact: re-reading a cached value yields the identical
/// bits the direct computation would.
class FeatureCache {
 public:
  explicit FeatureCache(std::size_t trace_size)
      : estimates_(trace_size, -1),
        log_request_(trace_size, -1.0),
        log_estimate_(trace_size, -1.0) {}

  /// Memoized estimator.estimate(trace[job_index]) (always >= 1).
  std::int64_t estimate(const RuntimeEstimator& estimator, const swf::Trace& trace,
                        std::size_t job_index) {
    std::int64_t& slot = estimates_[job_index];
    if (slot < 0) slot = estimator.estimate(trace[job_index]);
    return slot;
  }

  /// Raw memo slots for the observation layer's per-job log-scaled
  /// features (strictly positive when computed; < 0 means unset). The
  /// core layer owns the formula; the cache only owns the storage.
  double& log_request_slot(std::size_t job_index) { return log_request_[job_index]; }
  double& log_estimate_slot(std::size_t job_index) { return log_estimate_[job_index]; }

  /// The full pending queue sorted by submit time is identical for every
  /// observation of one decision; the simulator invalidates it before
  /// each chooser consultation.
  void begin_decision() { sorted_queue_valid_ = false; }
  const std::vector<std::size_t>* sorted_queue() const {
    return sorted_queue_valid_ ? &sorted_queue_ : nullptr;
  }
  std::vector<std::size_t>& mutable_sorted_queue() {
    sorted_queue_valid_ = true;
    return sorted_queue_;
  }

 private:
  std::vector<std::int64_t> estimates_;
  std::vector<double> log_request_;
  std::vector<double> log_estimate_;
  std::vector<std::size_t> sorted_queue_;
  bool sorted_queue_valid_ = false;
};

/// Compute the reservation for `rjob` against the current running set.
/// Estimated ends that already elapsed (under-predictions) are treated as
/// "due now" (clamped to now + 1).
Reservation compute_reservation(const ClusterState& cluster, const swf::Trace& trace,
                                const swf::Job& rjob, const RuntimeEstimator& estimator,
                                std::int64_t now);

/// Hot-path variant: reuses a caller-owned snapshot buffer and (when
/// `cache` is non-null) memoized runtime estimates. Bit-identical to the
/// plain overload — the snapshot preserves heap pop order, so the
/// unstable sort over estimated ends sees the same input sequence.
Reservation compute_reservation(const ClusterState& cluster, const swf::Trace& trace,
                                const swf::Job& rjob, const RuntimeEstimator& estimator,
                                std::int64_t now, FeatureCache* cache,
                                std::vector<RunningJob>& scratch);

/// Everything a chooser may inspect when picking a backfill candidate.
struct BackfillContext {
  const swf::Trace& trace;
  const ClusterState& cluster;
  const RuntimeEstimator& estimator;
  std::int64_t now = 0;
  std::size_t rjob = 0;            // blocked head job (trace index)
  Reservation reservation;         // rjob's current EASY reservation
  /// All pending jobs in base-policy priority order; front() == rjob.
  const std::vector<std::size_t>& queue;
  /// Jobs that fit the free processors right now, priority order,
  /// excluding rjob. Never empty when choose() is called.
  const std::vector<std::size_t>& candidates;
  /// Per-simulation feature memo; null for contexts built outside the
  /// simulator. Trailing + defaulted so existing aggregate initializers
  /// keep working.
  FeatureCache* cache = nullptr;
};

/// Runtime estimate for trace[job_index], memoized through the context's
/// cache when present.
inline std::int64_t context_estimate(const BackfillContext& ctx, std::size_t job_index) {
  return ctx.cache != nullptr
             ? ctx.cache->estimate(ctx.estimator, ctx.trace, job_index)
             : ctx.estimator.estimate(ctx.trace[job_index]);
}

/// Strategy consulted at backfilling opportunities.
class BackfillChooser {
 public:
  virtual ~BackfillChooser() = default;
  /// Pick an index INTO ctx.candidates, or nullopt to end this
  /// opportunity without (further) backfilling.
  virtual std::optional<std::size_t> choose(const BackfillContext& ctx) = 0;
  virtual std::string name() const = 0;
  /// Episode hooks; RL choosers use them to delimit trajectories.
  virtual void episode_begin(const swf::Trace& trace) { (void)trace; }
  virtual void episode_end(const std::vector<JobResult>& results) { (void)results; }
};

struct SimulationOptions {
  /// Safety cap on backfills per opportunity; 0 = unlimited.
  std::size_t max_backfills_per_opportunity = 0;
  /// Enforce the paper's §2.1.2 contract — "the scheduler will cancel or
  /// kill jobs that surpass their Request Time": a job whose actual
  /// runtime exceeds its request time runs only until the request time
  /// and its JobResult is flagged killed. Off by default because archive
  /// traces record AR <= RT for completed jobs; it matters for traces
  /// with recorded overruns and for what-if studies that shrink request
  /// times below the actual runtime.
  bool kill_exceeding_request = false;
};

/// Run one trace to completion and return per-job results ordered by
/// trace index. `chooser` may be null (no backfilling). Throws
/// std::runtime_error if the trace is unschedulable (e.g. a job wider
/// than the machine).
std::vector<JobResult> simulate(const swf::Trace& trace, const PriorityPolicy& policy,
                                const RuntimeEstimator& estimator,
                                BackfillChooser* chooser,
                                const SimulationOptions& options = {});

}  // namespace rlbf::sim
