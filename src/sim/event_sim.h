// Event-driven HPC scheduling simulation.
//
// Time advances between job arrivals and (actual) job completions; at
// every event the base policy picks the highest-priority queued job. If
// it fits, it starts; if not, a *backfilling opportunity* opens and the
// installed BackfillChooser is consulted repeatedly — one candidate per
// call — until it declines or no candidate fits. This is exactly the
// decision structure RLBackfilling trains on: heuristic backfillers
// (EASY, conservative) and the RL agent implement the same BackfillChooser
// interface, so every strategy is evaluated under identical semantics.
//
// Two clocks coexist by design: resources release at the job's *actual*
// runtime, while choosers only see *estimates* through the
// RuntimeEstimator. The gap between the two is the paper's subject.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/metrics.h"
#include "swf/trace.h"

namespace rlbf::sim {

/// Base scheduling policy: lower score = scheduled first (Table 3 of the
/// paper: FCFS scores by submit time, SJF by request time, ...).
class PriorityPolicy {
 public:
  virtual ~PriorityPolicy() = default;
  virtual double score(const swf::Job& job, std::int64_t now) const = 0;
  virtual std::string name() const = 0;
};

/// Source of the runtime estimates schedulers plan with.
class RuntimeEstimator {
 public:
  virtual ~RuntimeEstimator() = default;
  /// Estimated runtime in seconds, always >= 1.
  virtual std::int64_t estimate(const swf::Job& job) const = 0;
  virtual std::string name() const = 0;
};

/// EASY-style reservation for the blocked head job: the shadow time at
/// which, by the estimates, enough processors will have been released,
/// and the processors spare at that moment beyond the head job's need.
struct Reservation {
  std::int64_t shadow_time = 0;
  std::int64_t extra_procs = 0;
};

/// Compute the reservation for `rjob` against the current running set.
/// Estimated ends that already elapsed (under-predictions) are treated as
/// "due now" (clamped to now + 1).
Reservation compute_reservation(const ClusterState& cluster, const swf::Trace& trace,
                                const swf::Job& rjob, const RuntimeEstimator& estimator,
                                std::int64_t now);

/// Everything a chooser may inspect when picking a backfill candidate.
struct BackfillContext {
  const swf::Trace& trace;
  const ClusterState& cluster;
  const RuntimeEstimator& estimator;
  std::int64_t now = 0;
  std::size_t rjob = 0;            // blocked head job (trace index)
  Reservation reservation;         // rjob's current EASY reservation
  /// All pending jobs in base-policy priority order; front() == rjob.
  const std::vector<std::size_t>& queue;
  /// Jobs that fit the free processors right now, priority order,
  /// excluding rjob. Never empty when choose() is called.
  const std::vector<std::size_t>& candidates;
};

/// Strategy consulted at backfilling opportunities.
class BackfillChooser {
 public:
  virtual ~BackfillChooser() = default;
  /// Pick an index INTO ctx.candidates, or nullopt to end this
  /// opportunity without (further) backfilling.
  virtual std::optional<std::size_t> choose(const BackfillContext& ctx) = 0;
  virtual std::string name() const = 0;
  /// Episode hooks; RL choosers use them to delimit trajectories.
  virtual void episode_begin(const swf::Trace& trace) { (void)trace; }
  virtual void episode_end(const std::vector<JobResult>& results) { (void)results; }
};

struct SimulationOptions {
  /// Safety cap on backfills per opportunity; 0 = unlimited.
  std::size_t max_backfills_per_opportunity = 0;
  /// Enforce the paper's §2.1.2 contract — "the scheduler will cancel or
  /// kill jobs that surpass their Request Time": a job whose actual
  /// runtime exceeds its request time runs only until the request time
  /// and its JobResult is flagged killed. Off by default because archive
  /// traces record AR <= RT for completed jobs; it matters for traces
  /// with recorded overruns and for what-if studies that shrink request
  /// times below the actual runtime.
  bool kill_exceeding_request = false;
};

/// Run one trace to completion and return per-job results ordered by
/// trace index. `chooser` may be null (no backfilling). Throws
/// std::runtime_error if the trace is unschedulable (e.g. a job wider
/// than the machine).
std::vector<JobResult> simulate(const swf::Trace& trace, const PriorityPolicy& policy,
                                const RuntimeEstimator& estimator,
                                BackfillChooser* chooser,
                                const SimulationOptions& options = {});

}  // namespace rlbf::sim
