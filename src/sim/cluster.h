// Homogeneous cluster resource state: a processor pool plus the set of
// running jobs ordered by completion time. Matches the paper's resource
// model ("we assume the HPC environment is homogeneous... availability is
// a percentage of available computing nodes").
//
// Completion uses the job's *actual* runtime; schedulers only ever see
// runtime estimates through a RuntimeEstimator. Keeping that asymmetry
// here is what reproduces the paper's accuracy-vs-backfill trade-off.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace rlbf::sim {

/// A job occupying processors until its actual end time.
struct RunningJob {
  std::size_t job_index = 0;   // index into the scheduled trace
  std::int64_t procs = 0;
  std::int64_t start_time = 0;
  std::int64_t end_time = 0;   // start + actual runtime
};

class ClusterState {
 public:
  explicit ClusterState(std::int64_t total_procs);

  std::int64_t total_procs() const { return total_procs_; }
  std::int64_t free_procs() const { return free_procs_; }
  std::int64_t used_procs() const { return total_procs_ - free_procs_; }
  /// Fraction of processors currently free, in [0, 1].
  double free_fraction() const {
    return static_cast<double>(free_procs_) / static_cast<double>(total_procs_);
  }

  bool can_fit(std::int64_t procs) const { return procs <= free_procs_; }
  std::size_t running_count() const { return running_.size(); }

  /// Allocate and record a running job. Throws if it does not fit or has
  /// non-positive size/runtime < 0.
  void start(std::size_t job_index, std::int64_t procs, std::int64_t now,
             std::int64_t actual_runtime);

  /// Earliest actual completion time; throws if nothing is running.
  std::int64_t next_completion_time() const;

  /// Remove and return all jobs with end_time <= now (ascending order).
  std::vector<RunningJob> complete_until(std::int64_t now);

  /// Snapshot of running jobs in heap pop order (ascending end_time,
  /// ties resolved exactly as repeated pops would resolve them).
  std::vector<RunningJob> running_jobs() const;

  /// Same snapshot written into a caller-owned scratch vector, so hot
  /// paths that take one snapshot per scheduling decision reuse a single
  /// allocation instead of constructing a fresh vector each time.
  void running_jobs_into(std::vector<RunningJob>& out) const;

 private:
  struct ByEndTime {
    bool operator()(const RunningJob& a, const RunningJob& b) const {
      return a.end_time > b.end_time;  // min-heap on end_time
    }
  };

  std::int64_t total_procs_;
  std::int64_t free_procs_;
  // Explicit heap (std::push_heap/std::pop_heap over ByEndTime) rather
  // than std::priority_queue: identical ordering behavior, but the
  // backing vector stays inspectable, which lets running_jobs_into()
  // reproduce pop order via sort_heap without draining a copy of the
  // queue element-by-element.
  std::vector<RunningJob> running_;
};

}  // namespace rlbf::sim
