#include "sim/metrics.h"

#include <algorithm>
#include <cmath>

namespace rlbf::sim {

double JobResult::bounded_slowdown(double threshold) const {
  const double wait = static_cast<double>(wait_time());
  const double run = static_cast<double>(run_time());
  const double denom = std::max(run, threshold);
  return std::max(1.0, (wait + run) / denom);
}

double JobResult::slowdown() const {
  // turnaround / runtime, with the denominator clamped so zero-length
  // archive jobs do not divide by zero.
  const double turnaround_s = static_cast<double>(turnaround());
  const double run = std::max<double>(static_cast<double>(run_time()), 1.0);
  return turnaround_s / run;
}

ScheduleMetrics compute_metrics(const std::vector<JobResult>& results,
                                std::int64_t total_procs) {
  ScheduleMetrics m;
  m.job_count = results.size();
  if (results.empty() || total_procs <= 0) return m;

  double sum_bsld = 0.0, sum_sld = 0.0, sum_wait = 0.0, sum_turn = 0.0;
  double busy = 0.0;
  std::int64_t first_submit = results.front().submit_time;
  std::int64_t last_end = results.front().end_time;
  for (const auto& r : results) {
    sum_bsld += r.bounded_slowdown();
    sum_sld += r.slowdown();
    sum_wait += static_cast<double>(r.wait_time());
    sum_turn += static_cast<double>(r.turnaround());
    m.max_wait_time = std::max(m.max_wait_time, static_cast<double>(r.wait_time()));
    busy += static_cast<double>(r.run_time()) * static_cast<double>(r.procs);
    first_submit = std::min(first_submit, r.submit_time);
    last_end = std::max(last_end, r.end_time);
    if (r.backfilled) ++m.backfilled_jobs;
    if (r.killed) ++m.killed_jobs;
  }
  const auto n = static_cast<double>(results.size());
  m.avg_bounded_slowdown = sum_bsld / n;
  m.avg_slowdown = sum_sld / n;
  m.avg_wait_time = sum_wait / n;
  m.avg_turnaround = sum_turn / n;
  m.makespan = last_end - first_submit;
  if (m.makespan > 0) {
    busy = std::min(busy, static_cast<double>(m.makespan) *
                              static_cast<double>(total_procs));
    m.utilization = busy / (static_cast<double>(m.makespan) *
                            static_cast<double>(total_procs));
  }
  return m;
}

}  // namespace rlbf::sim
