// Post-scheduling analysis: turn a set of JobResults into a processor-
// usage step function, per-interval utilization histograms, and a
// per-job CSV (Gantt-style) export. Used by the swf_tools example and
// handy when debugging why one backfilling strategy beats another.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/metrics.h"

namespace rlbf::sim {

/// One breakpoint of the processors-in-use step function: `used` procs
/// are busy from `time` until the next point's time.
struct TimelinePoint {
  std::int64_t time = 0;
  std::int64_t used = 0;
};

/// Build the step function of processors in use over time. Points are
/// strictly increasing in time; the function is 0 before the first and
/// after the last point. Empty input yields an empty timeline.
std::vector<TimelinePoint> usage_timeline(const std::vector<JobResult>& results);

/// Highest simultaneous processor usage (0 for empty input).
std::int64_t peak_usage(const std::vector<JobResult>& results);

/// Mean utilization per fixed-width bucket across the schedule's span:
/// bucket[i] = busy proc-seconds in [start + i*w, start + (i+1)*w) /
/// (total_procs * w). Requires total_procs > 0 and bucket_seconds > 0.
std::vector<double> utilization_histogram(const std::vector<JobResult>& results,
                                          std::int64_t total_procs,
                                          std::int64_t bucket_seconds);

/// Write one CSV row per job: index, submit, start, end, procs, wait,
/// bounded slowdown, backfilled. Returns false on I/O failure.
bool write_schedule_csv(const std::string& path,
                        const std::vector<JobResult>& results);

}  // namespace rlbf::sim
