#include "sim/event_sim.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbf::sim {

std::int64_t estimated_release(const RunningJob& r, std::int64_t estimate,
                               std::int64_t now) {
  // Under-predicted jobs whose estimate already elapsed count as "due
  // immediately"; a real scheduler would see the estimate expired.
  return std::max(r.start_time + estimate, now + 1);
}

Reservation compute_reservation(const ClusterState& cluster, const swf::Trace& trace,
                                const swf::Job& rjob, const RuntimeEstimator& estimator,
                                std::int64_t now) {
  std::vector<RunningJob> scratch;
  return compute_reservation(cluster, trace, rjob, estimator, now, nullptr, scratch);
}

Reservation compute_reservation(const ClusterState& cluster, const swf::Trace& trace,
                                const swf::Job& rjob, const RuntimeEstimator& estimator,
                                std::int64_t now, FeatureCache* cache,
                                std::vector<RunningJob>& scratch) {
  Reservation res;
  const std::int64_t need = rjob.procs();
  std::int64_t free_procs = cluster.free_procs();
  if (free_procs >= need) {
    res.shadow_time = now;
    res.extra_procs = free_procs - need;
    return res;
  }
  // Walk running jobs in estimated-end order, accumulating releases
  // until the head job fits. The snapshot keeps heap pop order, so the
  // unstable sort below always sees the same input sequence and resolves
  // estimated-end ties identically across calls.
  cluster.running_jobs_into(scratch);
  for (auto& r : scratch) {
    const std::int64_t est = cache != nullptr
                                 ? cache->estimate(estimator, trace, r.job_index)
                                 : estimator.estimate(trace[r.job_index]);
    r.end_time = estimated_release(r, est, now);
  }
  std::sort(scratch.begin(), scratch.end(),
            [](const RunningJob& a, const RunningJob& b) { return a.end_time < b.end_time; });
  for (const auto& r : scratch) {
    free_procs += r.procs;
    if (free_procs >= need) {
      res.shadow_time = r.end_time;
      res.extra_procs = free_procs - need;
      return res;
    }
  }
  // Unreachable for valid traces: all jobs fit an empty machine.
  throw std::runtime_error("compute_reservation: job never fits machine");
}

namespace {

class SimRunner {
 public:
  SimRunner(const swf::Trace& trace, const PriorityPolicy& policy,
            const RuntimeEstimator& estimator, BackfillChooser* chooser,
            const SimulationOptions& options)
      : trace_(trace),
        policy_(policy),
        estimator_(estimator),
        chooser_(chooser),
        options_(options),
        cluster_(trace.machine_procs()),
        cache_(trace.size()),
        time_invariant_(policy.time_invariant()) {}

  std::vector<JobResult> run() {
    obs::Span span("simulate", "sim");
    obs::ScopedTimer timer("sim.simulate_seconds");
    trace_.validate();
    const std::size_t n = trace_.size();
    results_.resize(n);
    if (chooser_ != nullptr) chooser_->episode_begin(trace_);

    std::int64_t now = n > 0 ? trace_[0].submit_time : 0;
    while (started_ < n) {
      ++events_;
      admit_arrivals(now);
      schedule_pass(now);
      if (started_ == n) break;

      // Advance to the next event: an arrival or an actual completion.
      std::int64_t next = std::numeric_limits<std::int64_t>::max();
      if (next_arrival_ < n) next = std::min(next, trace_[next_arrival_].submit_time);
      if (cluster_.running_count() > 0) {
        next = std::min(next, cluster_.next_completion_time());
      }
      if (next == std::numeric_limits<std::int64_t>::max()) {
        throw std::runtime_error("simulate: deadlock (queued jobs, no events)");
      }
      now = std::max(now, next);
      cluster_.complete_until(now);
    }
    if (chooser_ != nullptr) chooser_->episode_end(results_);
    flush_counters();
    return std::move(results_);
  }

 private:
  /// Hot-loop instrumentation: the loop bumps plain local members (one
  /// register increment, cheaper than even a disabled-hook branch) and
  /// the shared registry is touched exactly once per simulation, here.
  void flush_counters() const {
    if (!obs::enabled()) return;
    obs::counter("sim.events_processed").add(events_);
    obs::counter("sim.schedule_recomputations").add(queue_sorts_);
    obs::counter("sim.queue_incremental_inserts").add(queue_inserts_);
    obs::counter("sim.backfill_opportunities").add(opportunities_);
    obs::counter("sim.backfill_decisions").add(decisions_);
    obs::counter("sim.jobs_backfilled").add(backfills_);
    obs::counter("sim.jobs_started").add(started_);
  }

  /// Priority comparison at a fixed instant: (score, trace index). The
  /// index tie-break makes this a strict total order, so any sorted
  /// arrangement of the queue under it is unique — which is what lets
  /// sorts be skipped and arrivals be binary-inserted without changing
  /// a single scheduling decision.
  bool queue_less(std::size_t a, std::size_t b, std::int64_t now) const {
    const double sa = policy_.score(trace_[a], now);
    const double sb = policy_.score(trace_[b], now);
    if (sa != sb) return sa < sb;
    return a < b;  // deterministic tie-break: arrival order
  }

  /// True when the queue is already in priority order for time `now`.
  bool queue_sorted_at(std::int64_t now) const {
    return queue_sorted_ && (time_invariant_ || sorted_now_ == now);
  }

  void admit_arrivals(std::int64_t now) {
    while (next_arrival_ < trace_.size() &&
           trace_[next_arrival_].submit_time <= now) {
      const std::size_t idx = next_arrival_++;
      if (queue_sorted_at(now)) {
        // Binary insertion keeps the (unique) sorted order valid; the
        // new arrival has the largest trace index, so lower_bound lands
        // exactly where a full re-sort would place it.
        const auto pos = std::lower_bound(
            queue_.begin(), queue_.end(), idx,
            [&](std::size_t a, std::size_t b) { return queue_less(a, b, now); });
        queue_.insert(pos, idx);
        sorted_now_ = now;
        ++queue_inserts_;
      } else {
        queue_.push_back(idx);
        queue_sorted_ = false;
      }
    }
  }

  void start_job(std::size_t idx, std::int64_t now, bool backfilled) {
    const auto& job = trace_[idx];
    std::int64_t run = job.run_time;
    bool killed = false;
    if (options_.kill_exceeding_request && job.request_time() < run) {
      run = job.request_time();
      killed = true;
    }
    cluster_.start(idx, job.procs(), now, run);
    JobResult r;
    r.job_index = idx;
    r.submit_time = job.submit_time;
    r.start_time = now;
    r.end_time = now + run;
    r.procs = job.procs();
    r.backfilled = backfilled;
    r.killed = killed;
    results_[idx] = r;
    ++started_;
  }

  /// Bring the queue into priority order for `now`, skipping the sort
  /// when the current order is provably already correct: the comparator
  /// is a strict total order (unique sorted sequence), erasures preserve
  /// sortedness, and arrivals are binary-inserted — so once sorted, the
  /// queue only goes stale when `now` advances under a time-varying
  /// policy. `now` is constant within one schedule_pass, making the
  /// old sort-per-iteration fully redundant.
  void sort_queue(std::int64_t now) {
    if (queue_sorted_at(now)) return;
    ++queue_sorts_;
    std::stable_sort(queue_.begin(), queue_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return queue_less(a, b, now);
                     });
    queue_sorted_ = true;
    sorted_now_ = now;
  }

  /// Start every head job that fits; on the first blocked head, open one
  /// backfilling opportunity, then yield back to the event loop.
  void schedule_pass(std::int64_t now) {
    for (;;) {
      if (queue_.empty()) return;
      sort_queue(now);
      const std::size_t head = queue_.front();
      if (cluster_.can_fit(trace_[head].procs())) {
        start_job(head, now, /*backfilled=*/false);
        queue_.erase(queue_.begin());
        continue;
      }
      if (chooser_ != nullptr && queue_.size() > 1) {
        backfill_opportunity(now, head);
      }
      return;
    }
  }

  void backfill_opportunity(std::int64_t now, std::size_t rjob) {
    ++opportunities_;
    std::size_t backfilled = 0;
    for (;;) {
      if (options_.max_backfills_per_opportunity != 0 &&
          backfilled >= options_.max_backfills_per_opportunity) {
        return;
      }
      candidates_.clear();
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        if (cluster_.can_fit(trace_[queue_[i]].procs())) {
          candidates_.push_back(queue_[i]);
        }
      }
      if (candidates_.empty()) return;
      const Reservation res = compute_reservation(
          cluster_, trace_, trace_[rjob], estimator_, now, &cache_, running_scratch_);
      cache_.begin_decision();
      const BackfillContext ctx{trace_, cluster_, estimator_, now,
                                rjob, res, queue_, candidates_, &cache_};
      ++decisions_;
      const auto pick = chooser_->choose(ctx);
      if (!pick.has_value()) return;
      if (*pick >= candidates_.size()) {
        throw std::runtime_error("backfill chooser returned out-of-range pick");
      }
      const std::size_t chosen = candidates_[*pick];
      start_job(chosen, now, /*backfilled=*/true);
      queue_.erase(std::find(queue_.begin(), queue_.end(), chosen));
      ++backfilled;
      ++backfills_;
    }
  }

  const swf::Trace& trace_;
  const PriorityPolicy& policy_;
  const RuntimeEstimator& estimator_;
  BackfillChooser* chooser_;
  SimulationOptions options_;

  ClusterState cluster_;
  std::vector<std::size_t> queue_;  // pending trace indices
  std::vector<JobResult> results_;
  std::size_t next_arrival_ = 0;
  std::size_t started_ = 0;

  // Incremental-order bookkeeping: the queue is sorted iff queue_sorted_
  // and (the policy is time-invariant or sorted_now_ == current time).
  FeatureCache cache_;
  bool time_invariant_ = false;
  bool queue_sorted_ = true;  // vacuously: the queue starts empty
  std::int64_t sorted_now_ = std::numeric_limits<std::int64_t>::min();

  // Per-decision scratch buffers, reused across the whole run.
  std::vector<std::size_t> candidates_;
  std::vector<RunningJob> running_scratch_;

  // Hot-loop counters, flushed to obs once per run (see flush_counters).
  std::uint64_t events_ = 0;
  std::uint64_t queue_sorts_ = 0;
  std::uint64_t queue_inserts_ = 0;
  std::uint64_t opportunities_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t backfills_ = 0;
};

}  // namespace

std::vector<JobResult> simulate(const swf::Trace& trace, const PriorityPolicy& policy,
                                const RuntimeEstimator& estimator,
                                BackfillChooser* chooser,
                                const SimulationOptions& options) {
  SimRunner runner(trace, policy, estimator, chooser, options);
  return runner.run();
}

}  // namespace rlbf::sim
