// Per-user scheduling-fairness analysis. Backfilling reshuffles who
// waits: a strategy can lower the *average* bounded slowdown while
// concentrating the remaining waiting on a few users (small jobs jump
// the queue; wide jobs from other users absorb the delay). These helpers
// quantify that redistribution so benches can report fairness alongside
// the paper's headline bsld.
//
// Fairness is summarized with Jain's index over per-user mean bounded
// slowdowns: 1.0 when every user experiences the same slowdown, 1/n in
// the most skewed case. (Jain, Chiu, Hawe, DEC TR-301, 1984.)
#pragma once

#include <cstdint>
#include <vector>

#include "sim/metrics.h"
#include "swf/trace.h"

namespace rlbf::sim {

/// Aggregate outcome of one user's jobs within a scheduled sequence.
struct UserMetrics {
  std::int64_t user_id = swf::kUnknown;
  std::size_t job_count = 0;
  double avg_bounded_slowdown = 0.0;
  double avg_wait_time = 0.0;
  double max_wait_time = 0.0;
  std::size_t backfilled_jobs = 0;
};

/// Group `results` by the owning job's SWF user id (kUnknown collects
/// jobs without one) and aggregate per user. Sorted by user id.
std::vector<UserMetrics> per_user_metrics(const std::vector<JobResult>& results,
                                          const swf::Trace& trace);

/// Jain's fairness index of non-negative values: (sum x)^2 / (n * sum x^2),
/// in (0, 1]. Returns 1.0 for empty or all-zero input (nothing to be
/// unfair about).
double jain_fairness_index(const std::vector<double>& values);

/// Fairness summary of one schedule.
struct FairnessReport {
  std::size_t user_count = 0;
  /// Jain's index over per-user mean bounded slowdowns.
  double bsld_jain = 1.0;
  /// Jain's index over per-user mean wait times.
  double wait_jain = 1.0;
  /// Largest per-user mean bsld divided by the smallest (>= 1); the
  /// spread a min/max summary makes visible that Jain's index compresses.
  double bsld_spread = 1.0;
  std::vector<UserMetrics> users;
};

FairnessReport fairness_report(const std::vector<JobResult>& results,
                               const swf::Trace& trace);

}  // namespace rlbf::sim
