// Scheduling-quality metrics. The paper's headline metric is the average
// bounded job slowdown (bsld, Feitelson & Rudolph JSSPP'98) with the
// usual 10-second interactive threshold; wait time, turnaround, makespan
// and utilization are also reported by the benches.
#pragma once

#include <cstdint>
#include <vector>

namespace rlbf::sim {

/// The bounded-slowdown interactive threshold, seconds.
inline constexpr double kBsldThreshold = 10.0;

/// Outcome of one job's scheduling.
struct JobResult {
  std::size_t job_index = 0;
  std::int64_t submit_time = 0;
  std::int64_t start_time = 0;
  std::int64_t end_time = 0;    // start + actual runtime
  std::int64_t procs = 0;
  /// True if the job ran via a backfill decision rather than as the
  /// base policy's selection.
  bool backfilled = false;
  /// True if the simulator killed the job at its request time because it
  /// would have run longer (SimulationOptions::kill_exceeding_request).
  /// end_time then reflects the truncated runtime.
  bool killed = false;

  std::int64_t wait_time() const { return start_time - submit_time; }
  std::int64_t run_time() const { return end_time - start_time; }
  std::int64_t turnaround() const { return end_time - submit_time; }

  /// max(1, (wait + run) / max(run, threshold)).
  double bounded_slowdown(double threshold = kBsldThreshold) const;
  /// Unbounded slowdown (run time clamped to >= 1 s to avoid division
  /// by zero on zero-length archive jobs).
  double slowdown() const;
};

/// Aggregate over a scheduled sequence.
struct ScheduleMetrics {
  std::size_t job_count = 0;
  double avg_bounded_slowdown = 0.0;
  double avg_slowdown = 0.0;
  double avg_wait_time = 0.0;
  double avg_turnaround = 0.0;
  double max_wait_time = 0.0;
  std::int64_t makespan = 0;      // last end - first submit
  double utilization = 0.0;       // busy proc-seconds / (procs * makespan)
  std::size_t backfilled_jobs = 0;
  std::size_t killed_jobs = 0;    // truncated at their request time
};

/// Compute the aggregate metrics. `total_procs` is the machine size (for
/// utilization). Returns zeros for an empty result set.
ScheduleMetrics compute_metrics(const std::vector<JobResult>& results,
                                std::int64_t total_procs);

}  // namespace rlbf::sim
