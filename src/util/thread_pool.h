// Fixed-size worker pool for parallel trajectory collection and bench
// parameter sweeps.
//
// Workers share nothing mutable with each other; tasks capture their own
// inputs (typically a split Rng and a private simulator) and write results
// to slots the caller owns. parallel_for is the main entry point.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rlbf::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future resolves when it finishes. Exceptions
  /// propagate through the future.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, n), distributed across the pool, and wait.
  /// The first exception thrown by any task is rethrown here.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace rlbf::util
