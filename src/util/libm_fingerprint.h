// Sentinel libm values for diagnosing golden-file drift across hosts.
//
// The golden suite pins numeric *formatting* to the C locale, but the
// doubles being formatted still come out of the platform's libm — a
// different pow/exp/log implementation can perturb last-ulp results
// enough to change a 2–4 decimal rendering. When a golden comparison
// fails, printing this fingerprint alongside the diff tells immediately
// whether the host's libm agrees bit-for-bit with the one the goldens
// were generated on (identical fingerprint: the drift is a real code
// change; different fingerprint: the goldens need per-platform pinning
// or regeneration on this host).
#pragma once

#include <string>

namespace rlbf::util {

/// A small multi-line report of exactly-rendered (%.17g) sentinel
/// std::pow / std::exp / std::log / std::tanh values chosen from the
/// ranges the simulator and the NN actually evaluate. Byte-identical
/// output means bit-identical libm results for these probes.
std::string libm_fingerprint();

/// One-token digest of the full report (FNV-1a 64 over its bytes,
/// rendered as 16 hex digits) — for machine-readable reports like the
/// bench "source" block, where a multi-line dump doesn't fit. Equal
/// ids <=> byte-identical reports <=> bit-identical libm probes.
std::string libm_fingerprint_id();

}  // namespace rlbf::util
