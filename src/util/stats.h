// Descriptive statistics helpers used by the metrics module, the benches
// (mean bsld over seeded samples, bootstrap confidence intervals), and the
// workload-model calibration tests.
#pragma once

#include <cstddef>
#include <vector>

namespace rlbf::util {
class Rng;

/// Arithmetic mean; 0 for an empty input.
double mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
double variance(const std::vector<double>& xs);

/// sqrt(variance).
double stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100]. Throws on empty input.
double percentile(std::vector<double> xs, double p);

/// Median (50th percentile).
double median(std::vector<double> xs);

/// Minimum / maximum. Throw on empty input.
double min(const std::vector<double>& xs);
double max(const std::vector<double>& xs);

/// Pearson correlation coefficient; 0 if either side is constant.
/// Throws if sizes differ or inputs are empty.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

struct BootstrapCi {
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile-bootstrap confidence interval for the mean.
BootstrapCi bootstrap_mean_ci(const std::vector<double>& xs, Rng& rng,
                              std::size_t resamples = 1000, double confidence = 0.95);

/// Streaming accumulator (Welford) for mean/variance without storing samples.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  // unbiased; 0 for n < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rlbf::util
