// Deterministic, splittable random number generation.
//
// Every stochastic component in this library (workload models, trace
// sampling, neural-network initialization, PPO exploration) draws from a
// util::Rng that is seeded explicitly by the caller. There is no global
// RNG state, so experiments are reproducible bit-for-bit from a seed, and
// parallel rollout workers can each own an independent stream obtained via
// split().
#pragma once

#include <cstdint>
#include <vector>

namespace rlbf::util {

/// xoshiro256** PRNG seeded through SplitMix64.
///
/// Small, fast, and high quality (passes BigCrush). Satisfies the
/// UniformRandomBitGenerator concept so it can also drive <random>
/// distributions, though the built-in helpers below are preferred because
/// their sequences are stable across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  std::uint64_t operator()();

  /// Derive an independent stream. The child is seeded from this stream's
  /// output, so split() from the same parent state yields the same child.
  Rng split();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (stateless variant: two uniforms/draw).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with given rate (lambda > 0).
  double exponential(double rate);

  /// Gamma(shape alpha > 0, scale theta > 0) via Marsaglia-Tsang.
  double gamma(double alpha, double theta);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Sample an index from a discrete distribution given non-negative
  /// weights. Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace rlbf::util
