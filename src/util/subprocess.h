// Synchronous subprocess execution with captured output.
//
// The distributed launcher (dist/launcher.h) runs every worker —
// `rlbf_run sweep --shard=I/N`, an `ssh host ...` wrapper, a batch
// submit — through this one primitive: fork/exec, both output streams
// captured in full, a wall-clock timeout that kills the whole process
// group, and an exit status that distinguishes "exited nonzero" from
// "died on a signal" from "could not be spawned at all". run() blocks;
// concurrency comes from calling it on several util::ThreadPool workers,
// which is safe because a Subprocess shares no mutable state.
#pragma once

#include <string>
#include <vector>

namespace rlbf::util {

struct SubprocessOptions {
  /// Kill the process group and report timed_out after this many
  /// seconds (0 = no limit).
  double timeout_seconds = 0.0;
  /// Child working directory ("" = inherit).
  std::string chdir;
};

struct SubprocessResult {
  /// WEXITSTATUS when the child exited; -1 otherwise (signal, timeout,
  /// spawn failure). exec failure inside the child surfaces as 127 with
  /// the reason on stderr, like a shell.
  int exit_code = -1;
  /// Terminating signal number, 0 when the child exited normally.
  int term_signal = 0;
  bool timed_out = false;
  /// fork/pipe failed before any child ran; `error` names the call.
  bool spawn_failed = false;
  std::string error;
  std::string stdout_text;
  std::string stderr_text;

  bool ok() const {
    return !spawn_failed && !timed_out && term_signal == 0 && exit_code == 0;
  }
  /// "exit 3" | "signal 9" | "timeout after 5s" | "spawn failed: ..."
  std::string status() const;
};

/// Run `argv` (argv[0] is the program, resolved through PATH) to
/// completion and return its captured output and status. Throws
/// std::invalid_argument on an empty argv; every runtime failure is
/// reported through the result, never thrown, so a retrying caller
/// handles "host unreachable" and "worker crashed" the same way.
SubprocessResult run_subprocess(const std::vector<std::string>& argv,
                                const SubprocessOptions& options = {});

/// POSIX-shell single-quote `arg` so command templates ("ssh {host}
/// {command}") can embed worker argv elements verbatim.
std::string shell_quote(const std::string& arg);

/// The last `lines` lines of `text` (all of it when it has fewer) —
/// failure logs quote the tail of a worker's stderr, not megabytes.
std::string tail_lines(const std::string& text, std::size_t lines);

/// Absolute path of the running executable (/proc/self/exe when
/// available, else `fallback_argv0`). The orchestrator uses it as the
/// default worker binary: the driver launches copies of itself.
std::string current_executable(const std::string& fallback_argv0);

}  // namespace rlbf::util
