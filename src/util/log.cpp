#include "util/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace rlbf::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_io_mu;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::lock_guard lock(g_io_mu);
  std::cerr << "[" << level_tag(level) << "] " << msg << '\n';
}

}  // namespace rlbf::util
