#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>

namespace rlbf::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::atomic<bool> g_elapsed{false};
std::mutex g_io_mu;

/// Latched on the first prefixed line, so `[+0.000s]` marks the moment
/// elapsed logging started rather than static-init time.
std::chrono::steady_clock::time_point log_anchor() {
  static const auto anchor = std::chrono::steady_clock::now();
  return anchor;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_elapsed(bool on) {
  if (on) log_anchor();  // latch the anchor when elapsed logging starts
  g_elapsed.store(on, std::memory_order_relaxed);
}

bool log_elapsed() { return g_elapsed.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  char prefix[32] = "";
  if (log_elapsed()) {
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - log_anchor())
                         .count();
    std::snprintf(prefix, sizeof(prefix), "[+%.3fs] ", s);
  }
  std::lock_guard lock(g_io_mu);
  std::cerr << prefix << "[" << level_tag(level) << "] " << msg << '\n';
}

}  // namespace rlbf::util
