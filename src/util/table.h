// Minimal table / CSV emitters so benches can print the same rows the
// paper's tables report and also dump machine-readable CSV next to them.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace rlbf::util {

/// Column-aligned text table with a header row, rendered like:
///
///   Job Traces   FCFS+EASY   FCFS+EASY-AR   FCFS+RLBF
///   SDSC-SP2        292.82         169.24      142.93
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision, "-" for NaN.
  static std::string fmt(double v, int precision = 2);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }

  /// Render with padded columns.
  void print(std::ostream& os) const;

  /// Render as CSV (no padding, comma-separated, quoted when needed).
  void print_csv(std::ostream& os) const;

  /// Write CSV to a file path; returns false on I/O failure.
  bool save_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Write a self-contained gnuplot script that renders a wide-format CSV
/// (as produced by Table::save_csv: one header row, column 1 = x values,
/// every further column = one series named by its header) into
/// `<csv_path minus .csv>.png`. Running `gnuplot <script>` regenerates
/// the figure; the fig1/fig4 benches emit one per plot so the paper's
/// figures are reproducible end-to-end, not just their data. Non-numeric
/// cells ("-") are treated as missing by gnuplot.
/// `series_count` = number of y columns (CSV columns 2..series_count+1).
/// Returns false on I/O failure.
bool write_gnuplot_script(const std::string& script_path, const std::string& csv_path,
                          const std::string& title, const std::string& x_label,
                          const std::string& y_label, std::size_t series_count,
                          bool log_y = false);

}  // namespace rlbf::util
