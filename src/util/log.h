// Tiny leveled logger. Benches and the trainer use it for progress lines;
// tests silence it by setting the level to Error.
#pragma once

#include <sstream>
#include <string>

namespace rlbf::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level (default Info). Backed by a std::atomic:
/// safe to change from any thread at any time; a concurrent logger sees
/// either the old or the new level, never a torn value.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Opt-in elapsed-time prefix (default off): when enabled every line
/// carries `[+12.034s]` — seconds since the first prefixed line — so
/// long bench/orchestration logs read as a timeline. Atomic, like the
/// level.
void set_log_elapsed(bool on);
bool log_elapsed();

/// Emit a line to stderr if `level` >= the global level.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() > LogLevel::Debug) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::Debug, os.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() > LogLevel::Info) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::Info, os.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() > LogLevel::Warn) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::Warn, os.str());
}

template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() > LogLevel::Error) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(LogLevel::Error, os.str());
}

}  // namespace rlbf::util
