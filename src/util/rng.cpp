#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rlbf::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::split() { return Rng((*this)()); }

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  // Box-Muller; guard against log(0).
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate <= 0");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::gamma(double alpha, double theta) {
  if (alpha <= 0.0 || theta <= 0.0) {
    throw std::invalid_argument("gamma: non-positive parameter");
  }
  // Marsaglia-Tsang squeeze method; boost alpha < 1 with the power trick.
  if (alpha < 1.0) {
    const double u = std::max(uniform(), 1e-300);
    return gamma(alpha + 1.0, theta) * std::pow(u, 1.0 / alpha);
  }
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * theta;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * theta;
    }
  }
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("categorical: zero total weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the last entry
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace rlbf::util
