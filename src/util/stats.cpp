#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace rlbf::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double min(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("min: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("max: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("pearson: size mismatch");
  if (xs.empty()) throw std::invalid_argument("pearson: empty input");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

BootstrapCi bootstrap_mean_ci(const std::vector<double>& xs, Rng& rng,
                              std::size_t resamples, double confidence) {
  if (xs.empty()) throw std::invalid_argument("bootstrap_mean_ci: empty input");
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("bootstrap_mean_ci: confidence out of (0,1)");
  }
  std::vector<double> means;
  means.reserve(resamples);
  const auto n = static_cast<std::int64_t>(xs.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    double s = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      s += xs[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    means.push_back(s / static_cast<double>(n));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  BootstrapCi ci;
  ci.lo = percentile(means, 100.0 * alpha);
  ci.hi = percentile(std::move(means), 100.0 * (1.0 - alpha));
  return ci;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace rlbf::util
