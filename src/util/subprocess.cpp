#include "util/subprocess.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace rlbf::util {

namespace {

/// Read whatever is available on `fd` into `out`; returns false on EOF.
bool drain_fd(int fd, std::string* out) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out->append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;                    // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // treat unexpected read errors as EOF
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

std::string SubprocessResult::status() const {
  if (spawn_failed) return "spawn failed: " + error;
  if (timed_out) return "timeout";
  if (term_signal != 0) return "signal " + std::to_string(term_signal);
  return "exit " + std::to_string(exit_code);
}

SubprocessResult run_subprocess(const std::vector<std::string>& argv,
                                const SubprocessOptions& options) {
  if (argv.empty()) {
    throw std::invalid_argument("run_subprocess: empty argv");
  }
  SubprocessResult result;

  // O_CLOEXEC: run_subprocess is called concurrently from pool workers,
  // so a child forked by thread A inherits whatever pipe fds thread B
  // has in flight. Without close-on-exec those write ends survive B's
  // exec and A's poll loop would not see EOF until the UNRELATED worker
  // exits. The child's own ends are preserved across exec by dup2 onto
  // fds 1/2, which clears the flag on the duplicates.
  int out_pipe[2];
  int err_pipe[2];
  if (::pipe2(out_pipe, O_CLOEXEC) != 0) {
    result.spawn_failed = true;
    result.error = std::string("pipe: ") + std::strerror(errno);
    return result;
  }
  if (::pipe2(err_pipe, O_CLOEXEC) != 0) {
    result.spawn_failed = true;
    result.error = std::string("pipe: ") + std::strerror(errno);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    return result;
  }

  // The child's argv must outlive fork/exec; build it before forking so
  // the child does nothing but async-signal-safe calls.
  std::vector<char*> child_argv;
  child_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    child_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  child_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    result.spawn_failed = true;
    result.error = std::string("fork: ") + std::strerror(errno);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    return result;
  }

  if (pid == 0) {
    // Child. Own process group, so a timeout kill reaches grandchildren
    // (ssh, shells) too.
    ::setpgid(0, 0);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::dup2(err_pipe[1], STDERR_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    if (!options.chdir.empty() && ::chdir(options.chdir.c_str()) != 0) {
      const char* msg = "run_subprocess: cannot chdir to working directory\n";
      (void)!::write(STDERR_FILENO, msg, std::strlen(msg));
      ::_exit(127);
    }
    ::execvp(child_argv[0], child_argv.data());
    // Shell convention: 127 = command not found / not executable.
    const char* prefix = "run_subprocess: exec failed: ";
    (void)!::write(STDERR_FILENO, prefix, std::strlen(prefix));
    const char* reason = std::strerror(errno);
    (void)!::write(STDERR_FILENO, reason, std::strlen(reason));
    (void)!::write(STDERR_FILENO, "\n", 1);
    ::_exit(127);
  }

  // Parent.
  ::close(out_pipe[1]);
  ::close(err_pipe[1]);
  set_nonblocking(out_pipe[0]);
  set_nonblocking(err_pipe[0]);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options.timeout_seconds));
  bool out_open = true;
  bool err_open = true;
  while (out_open || err_open) {
    struct pollfd fds[2];
    nfds_t nfds = 0;
    if (out_open) fds[nfds++] = {out_pipe[0], POLLIN, 0};
    if (err_open) fds[nfds++] = {err_pipe[0], POLLIN, 0};

    int wait_ms = -1;
    if (options.timeout_seconds > 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      // Checked here, not only via poll()==0: a child spamming output
      // keeps every poll() ready, which must not starve the deadline.
      if (left.count() <= 0) {
        result.timed_out = true;
        ::kill(-pid, SIGKILL);
        ::kill(pid, SIGKILL);  // in case setpgid lost the race
        break;
      }
      wait_ms = static_cast<int>(left.count());
    }
    const int ready = ::poll(fds, nfds, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // fall through to waitpid; pipes drain below on EOF
    }
    if (ready == 0) continue;  // deadline re-checked at the loop top
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const bool is_out = fds[i].fd == out_pipe[0];
      std::string* sink = is_out ? &result.stdout_text : &result.stderr_text;
      if (!drain_fd(fds[i].fd, sink)) {
        if (is_out) {
          out_open = false;
        } else {
          err_open = false;
        }
      }
    }
  }
  // Final drain after EOF/kill: whatever the child flushed before dying.
  drain_fd(out_pipe[0], &result.stdout_text);
  drain_fd(err_pipe[0], &result.stderr_text);
  ::close(out_pipe[0]);
  ::close(err_pipe[0]);

  int status = 0;
  pid_t reaped = -1;
  if (options.timeout_seconds > 0 && !result.timed_out) {
    // The poll loop only bounds the pipes; a child that closed its
    // stdio but keeps running (a daemonizing wrapper) would otherwise
    // hang the blocking waitpid past the deadline. Reap non-blockingly
    // until the deadline, then kill the group like a pipe timeout.
    for (;;) {
      reaped = ::waitpid(pid, &status, WNOHANG);
      if (reaped == pid || (reaped < 0 && errno != EINTR)) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        result.timed_out = true;
        ::kill(-pid, SIGKILL);
        ::kill(pid, SIGKILL);
        reaped = -1;
        break;
      }
      struct timespec nap = {0, 10 * 1000 * 1000};  // 10ms
      ::nanosleep(&nap, nullptr);
    }
  }
  if (reaped != pid) {
    do {
      reaped = ::waitpid(pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
  }
  if (reaped == pid) {
    if (WIFEXITED(status)) {
      result.exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      result.term_signal = WTERMSIG(status);
    }
  }
  return result;
}

std::string shell_quote(const std::string& arg) {
  std::string quoted = "'";
  for (const char c : arg) {
    if (c == '\'') {
      quoted += "'\\''";
    } else {
      quoted += c;
    }
  }
  quoted += "'";
  return quoted;
}

std::string tail_lines(const std::string& text, std::size_t lines) {
  if (lines == 0 || text.empty()) return "";
  // Ignore one trailing newline so "a\nb\n" is two lines, not three.
  std::size_t end = text.size();
  if (text[end - 1] == '\n') --end;
  std::size_t start = end;
  std::size_t seen = 0;
  while (start > 0) {
    if (text[start - 1] == '\n' && ++seen == lines) break;
    --start;
  }
  return text.substr(start, text.size() - start);
}

std::string current_executable(const std::string& fallback_argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return fallback_argv0;
}

}  // namespace rlbf::util
