#include "util/libm_fingerprint.h"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>

namespace rlbf::util {

namespace {

/// Deliberately the same locale-INDEPENDENT rendering rule as
/// exp::format_double_exact (%.17g semantics via std::to_chars,
/// duplicated here so util stays below exp in the layering): a
/// fingerprint comparing two hosts' libm must never fork on LC_NUMERIC
/// instead.
std::string exact(double value) {
  char buf[64];
  const auto res =
      std::to_chars(buf, buf + sizeof(buf), value, std::chars_format::general, 17);
  return std::string(buf, res.ptr);
}

}  // namespace

std::string libm_fingerprint() {
  // Probes from the regions the code exercises: Pareto tails (pow with
  // fractional exponents), softmax/logits (exp, log), and tanh
  // activations. Plain arithmetic is IEEE-exact everywhere, so only
  // transcendentals can differ between hosts.
  std::string report = "libm fingerprint (bit-exact sentinel values):\n";
  report += "  pow(1.25, 2.5)      = " + exact(std::pow(1.25, 2.5)) + "\n";
  report += "  pow(10.0, -3.7)     = " + exact(std::pow(10.0, -3.7)) + "\n";
  report += "  exp(1.0)            = " + exact(std::exp(1.0)) + "\n";
  report += "  exp(-12.345)        = " + exact(std::exp(-12.345)) + "\n";
  report += "  log(3.14159)        = " + exact(std::log(3.14159)) + "\n";
  report += "  log1p(1e-05)        = " + exact(std::log1p(1e-05)) + "\n";
  report += "  tanh(0.75)          = " + exact(std::tanh(0.75)) + "\n";
  report += "  sqrt(2.0)           = " + exact(std::sqrt(2.0)) + "\n";
  return report;
}

std::string libm_fingerprint_id() {
  const std::string report = libm_fingerprint();
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a 64
  for (const char c : report) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace rlbf::util
