// Scalar time series for the observability layer: training curves,
// periodic registry samples, and per-job duration series, recorded
// against INTEGER STEP KEYS (epoch, decision, sample ordinal) with the
// wall clock carried only as an auxiliary field. Keying on steps — not
// timestamps — is what makes the data comparable across reruns, thread
// counts, and hosts: two bit-identical training runs produce the same
// (step, value) pairs no matter how long each epoch took.
//
// Design contract (the --series_out on/off byte-identity tests depend
// on it, exactly like obs/metrics.h):
//
//   * A SeriesRecorder only ever writes to its own buffers and the file
//     the CLI flag names — never to result streams — so enabling series
//     output cannot perturb a single byte of simulation, sweep,
//     training, or store output.
//   * Producers that may run without a recorder attached hold a plain
//     nullable pointer and skip recording entirely when it is null: the
//     disabled path performs no allocation and no clock read.
//   * Every rendering that feeds comparisons (`rlbf_run curves`)
//     excludes the wall-clock field, so series from deterministic
//     computations render byte-identically across reruns.
//
// The on-disk format is JSONL: one self-contained JSON object per line,
// so a writer can append samples as they happen and a partially written
// sidecar fails at the exact offending line. The first line is a meta
// header carrying the recorder's wall-clock epoch anchor:
//
//   {"meta": "series", "version": 1, "epoch_anchor_us": 1700000000000000}
//   {"series": "train.policy_loss", "step": 1, "value": 0.25, "wall_us": ...}
//   {"series": "dist.job_seconds", "step": 0, "value": 1.5, "wall_us": ...,
//    "source": "worker0"}
//
// The wall stamp uses the same steady/wall anchor pattern as
// obs::trace_epoch_anchor_us(): one (steady_clock, system_clock) pair
// latched together at recorder construction, every sample stamped as
// anchor + steady elapsed — monotonic within a process and placeable on
// a cross-process timebase.
//
// Like the rest of obs, this depends on the standard library only.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace rlbf::obs {

/// One sample. `step` is the key (epoch, decision, or sample ordinal);
/// `wall_us` is auxiliary display data and never participates in
/// alignment, merging, or comparison.
struct SeriesPoint {
  std::int64_t step = 0;
  double value = 0.0;
  std::int64_t wall_us = 0;
};

/// A named series. `source` is empty until a fleet merge tags it with
/// the producing worker's label ("worker0", "supervisor").
struct Series {
  std::string name;
  std::string source;
  std::vector<SeriesPoint> points;  // record order
};

/// Thread-safe in-memory recorder. Construction latches the steady/wall
/// anchor pair; record() stamps each point's wall_us from it.
class SeriesRecorder {
 public:
  SeriesRecorder();

  /// Append (step, value) to the named series, stamping wall_us now.
  void record(const std::string& name, std::int64_t step, double value);

  /// All series sorted by name, points in record order.
  std::vector<Series> snapshot() const;

  bool empty() const;

  /// The wall-clock instant the steady anchor was latched at — the
  /// series-file analogue of trace_epoch_anchor_us().
  std::int64_t epoch_anchor_us() const { return epoch_anchor_us_; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<SeriesPoint>> series_;
  std::chrono::steady_clock::time_point steady_anchor_;
  std::int64_t epoch_anchor_us_ = 0;
};

// ------------------------------------------------------------- file IO

/// Write the JSONL document: the meta header line, then every series in
/// input order, points in order. Numbers use the shared shortest-round-
/// trip rendering (obs::format_number), so identical data writes
/// identical bytes.
void write_series_jsonl(std::ostream& os, const std::vector<Series>& series,
                        std::int64_t epoch_anchor_us);
bool save_series_jsonl(const std::string& path,
                       const std::vector<Series>& series,
                       std::int64_t epoch_anchor_us);

/// A parsed series document: the series plus the meta header's anchor
/// (0 when the producing recorder predates anchoring).
struct SeriesDoc {
  std::vector<Series> series;  // sorted by (name, source)
  std::int64_t epoch_anchor_us = 0;
};

/// Strict line-by-line parse. Every error is std::runtime_error naming
/// `origin` and the 1-based line number: a truncated final line, a
/// non-object line, a missing/mistyped field, or trailing garbage all
/// fail loudly — a malformed worker sidecar can never fold silently
/// into a merge. Points for one (name, source) are kept in file order.
SeriesDoc parse_series_jsonl(const std::string& text,
                             const std::string& origin);

/// Read + parse. Missing, unreadable, or empty files raise
/// std::runtime_error naming the path (same contract as
/// obs::load_metrics_file).
SeriesDoc load_series_file(const std::string& path);

// --------------------------------------------------------------- merge

/// One worker's series tagged with its label, mirroring
/// obs::LabeledMetrics.
struct LabeledSeries {
  std::string label;
  SeriesDoc doc;
};

/// Merge worker documents into one: a series whose source is empty is
/// tagged with its document's label; a series already carrying a source
/// (a re-merged document) keeps it — which is what makes the merge
/// associative: merge(merge(A, B), C) == merge(A, merge(B, C)). Two
/// inputs contributing the same (name, source) concatenate their points
/// in input order. The merged anchor is the earliest nonzero input
/// anchor. Throws std::invalid_argument on an empty input or a
/// duplicate label.
SeriesDoc merge_series(const std::vector<LabeledSeries>& docs);

// ------------------------------------------------------------- sampler

/// Periodically latches Registry counter/gauge values into series:
/// counters as per-interval DELTAS (series "<prefix><name>"), gauges as
/// instantaneous values. Each sample is keyed by its ordinal (0, 1,
/// ...) — the sample INDEX is the step; the wall clock rides along as
/// wall_us only — so two runs registering the same metrics produce
/// step-aligned series regardless of timing jitter.
///
/// sample_once() is the unit of work and is safe to call from any
/// thread (an orchestrator heartbeat, a test, the final dump). start()
/// adds a background thread firing it every interval; stop() (and the
/// destructor) joins it.
class RegistrySampler {
 public:
  struct Options {
    std::string prefix = "registry.";
    /// Background sampling interval; <= 0 means manual sample_once()
    /// calls only (start() is then a no-op).
    double interval_seconds = 0.0;
  };

  explicit RegistrySampler(SeriesRecorder& recorder)
      : RegistrySampler(recorder, Options()) {}
  RegistrySampler(SeriesRecorder& recorder, Options options);
  ~RegistrySampler();

  RegistrySampler(const RegistrySampler&) = delete;
  RegistrySampler& operator=(const RegistrySampler&) = delete;

  /// Record one sample of every registered counter (delta since the
  /// previous sample; the first sample's delta is the absolute value)
  /// and gauge at the next step ordinal. A registry with no registered
  /// metrics records nothing — and does not consume a step — so a run
  /// that never enabled metrics leaves the series file free of
  /// nondeterministic registry data.
  void sample_once();

  void start();
  void stop();

 private:
  SeriesRecorder& recorder_;
  Options options_;
  std::mutex sample_mu_;
  std::map<std::string, std::uint64_t> last_counters_;
  std::int64_t next_step_ = 0;
  std::mutex thread_mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace rlbf::obs
