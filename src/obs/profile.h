// Hot-path attribution from a trace: which span NAMES does the fleet
// actually spend its time in?
//
// profile_report() consumes trace events (a single process's trace or
// an obs::merge spliced fleet trace — the input is just events) and
// produces one row per span name with:
//
//   * count          — number of spans
//   * total (incl.)  — wall time inside the span, children included
//   * self  (excl.)  — wall time inside the span MINUS time spent in
//                      spans nested within it on the same thread
//   * mean, p50/p95/p99 of the inclusive duration (percentiles come
//     from the same fixed-bucket histogram machinery the metrics
//     registry uses, so they are deterministic for identical input)
//
// Nesting is recovered per (pid, tid) with a stack sweep: events are
// sorted by start time (ties: longer span first, so a parent precedes
// the children that start at the same microsecond), and each event
// subtracts its duration from the nearest enclosing span. Partially
// overlapping spans (possible across the merge's clock alignment)
// only subtract the overlapping part — self time never goes negative.
//
// The report is deterministic: identical input events produce a
// byte-identical table, regardless of input order.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/merge.h"

namespace rlbf::obs {

struct ProfileRow {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0.0;  // inclusive
  double self_seconds = 0.0;   // exclusive
  double mean_seconds = 0.0;   // inclusive mean
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

/// Rows sorted by self time descending (ties: total descending, then
/// name ascending — fully deterministic). Zero-duration marks count
/// toward `count` but contribute no time.
std::vector<ProfileRow> profile_report(const std::vector<PidTraceEvent>& events);

/// Column-aligned text table (fixed 6-decimal seconds — byte-stable
/// for identical rows). `top` limits the row count (0 = all); a
/// truncation note names how many rows were dropped, so a shortened
/// table can never read as the whole profile.
void write_profile_table(std::ostream& os, const std::vector<ProfileRow>& rows,
                         std::size_t top = 0);

/// Machine-readable CSV of every row (never truncated).
void write_profile_csv(std::ostream& os, const std::vector<ProfileRow>& rows);
bool save_profile_csv(const std::string& path,
                      const std::vector<ProfileRow>& rows);

/// One worker's (pid's) slice of a fleet profile.
struct WorkerProfile {
  std::uint32_t pid = 0;
  /// The pid's process_name from the spliced trace ("supervisor",
  /// "worker0"), or "pid<N>" when the trace carries no name for it.
  std::string name;
  std::vector<ProfileRow> rows;  // profile_report order
};

/// Per-worker attribution on a merged fleet trace: the event set split
/// by pid, each slice profiled independently (nesting already never
/// crosses pids), ordered by pid ascending — so self time is charged to
/// the worker that actually spent it instead of pooling under one span
/// name. `process_names` normally comes from TraceDoc::process_names.
std::vector<WorkerProfile> profile_report_by_worker(
    const std::vector<PidTraceEvent>& events,
    const std::map<std::uint32_t, std::string>& process_names);

/// One table section per worker ("== worker0 (pid 2) =="), each
/// rendered by write_profile_table with the same `top` cap.
void write_worker_profile_table(std::ostream& os,
                                const std::vector<WorkerProfile>& workers,
                                std::size_t top = 0);

/// CSV of every worker's rows with leading pid/worker columns.
void write_worker_profile_csv(std::ostream& os,
                              const std::vector<WorkerProfile>& workers);
bool save_worker_profile_csv(const std::string& path,
                             const std::vector<WorkerProfile>& workers);

}  // namespace rlbf::obs
