// Process-wide observability metrics: counters, gauges, and histograms
// with fixed bucket layouts, collected in one registry and dumped as
// deterministic JSON (--metrics_out).
//
// Design contract (the golden byte-identity tests depend on it):
//
//   * Instrumentation hooks are branch-on-atomic-flag no-ops while
//     metrics are disabled (the default): `if (!obs::enabled()) return;`
//     guards every hook, so the disabled path performs no allocation,
//     no registration, and no clock read.
//   * Metrics only ever write to their own sinks — the registry and the
//     files the CLI flags name — never to result streams, so enabling
//     them cannot perturb a single byte of simulation, sweep, training,
//     or store output.
//   * The registry hands out references with stable addresses for the
//     registry's lifetime, and hot paths hold an obs::CachedCounter: one
//     registration on first enabled use, a relaxed atomic update
//     afterwards, and automatic re-resolution if the registry is ever
//     cleared/swapped (a `static obs::Counter&` latch would keep
//     counting into the old generation's node):
//
//       if (obs::enabled()) {
//         static obs::CachedCounter c("sim.events");
//         c.add(n);
//       }
//
// ScopedTimer is the RAII timing primitive: it aggregates on the owning
// thread (its state lives on that thread's stack — no shared writes
// while the scope runs) and merges into the shared histogram exactly
// once, at scope exit.
//
// This layer depends on the standard library only, so every subsystem
// (util included) may instrument itself without dependency cycles.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace rlbf::obs {

/// Global metrics switch (default off). Hooks test it with one relaxed
/// atomic load; flipping it mid-run only affects subsequent hook calls.
bool enabled();
void set_enabled(bool on);

/// Monotonically increasing event count. Relaxed atomics: totals are
/// exact, ordering between distinct counters is not promised.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (utilization, cache residency).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// A histogram's fixed bucket layout: ascending finite upper bounds; an
/// implicit +inf bucket always terminates the list. The layout is fixed
/// at registration — re-registering a name with a different layout
/// throws, so two call sites can never silently split one metric.
struct HistogramLayout {
  std::vector<double> upper_bounds;
};

/// `count` buckets at start, start*factor, start*factor^2, ...
/// (factor > 1, start > 0, count >= 1; throws std::invalid_argument).
HistogramLayout exponential_buckets(double start, double factor,
                                    std::size_t count);

/// The default layout for wall-clock durations in seconds: 1us to ~100s
/// in x4 steps (14 finite buckets + inf).
const HistogramLayout& duration_buckets();

/// Fixed-bucket histogram with exact sum/count/min/max. Thread-safe via
/// per-field relaxed atomics; a snapshot taken while writers run is a
/// consistent-enough view for reporting (each field is itself exact).
class Histogram {
 public:
  explicit Histogram(HistogramLayout layout);

  void observe(double value);

  struct Snapshot {
    std::vector<double> upper_bounds;       // finite bounds; inf implied
    std::vector<std::uint64_t> bucket_counts;  // upper_bounds.size() + 1
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;
  };
  Snapshot snapshot() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return layout_.upper_bounds; }

  void reset();

 private:
  HistogramLayout layout_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // layout size + inf
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Deterministic percentile estimate (q in [0, 1]) from a snapshot's
/// bucket counts: linear interpolation inside the covering bucket,
/// clamped to the exact [min, max] the histogram tracked. 0 when the
/// histogram is empty. Used by the registry dump (p50/p95/p99), the
/// cross-worker merge report, and `rlbf_run profile`.
double percentile(const Histogram::Snapshot& snapshot, double q);

/// Bucket-merge two snapshots of the SAME layout (counts added, sums
/// added, min/max combined over non-empty sides). Associative and
/// commutative up to floating-point sum ordering. Throws
/// std::invalid_argument when the bucket layouts differ — two call
/// sites can never silently fold different metrics together.
Histogram::Snapshot merge_histogram(const Histogram::Snapshot& a,
                                    const Histogram::Snapshot& b);

/// Shortest-round-trip C-locale number rendering shared by every obs
/// JSON writer ("null" for NaN, "1e999" for +/-inf).
std::string format_number(double value);

/// Render one histogram snapshot exactly as the registry dump does:
/// {"count": .., "sum": .., "min": .., "max": .., "p50": .., "p95": ..,
/// "p99": .., "buckets": [{"le": "..", "count": ..}, ...]}.
void write_histogram_json(std::ostream& os, const Histogram::Snapshot& snap);

/// The process-wide registry. Lookup registers on first use; returned
/// references stay valid for the process lifetime. Iteration order in
/// every dump is lexicographic by name — deterministic regardless of
/// registration order or thread interleaving.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Layout applies on first registration; a later call with a
  /// different layout throws std::invalid_argument naming the metric.
  Histogram& histogram(const std::string& name, const HistogramLayout& layout);

  /// Registered names (sorted), one list per kind — for tests and docs.
  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// Deterministic JSON dump: {"counters":{...},"gauges":{...},
  /// "histograms":{...}}, keys sorted, numbers rendered shortest-round-
  /// trip in the C locale.
  void write_json(std::ostream& os) const;
  std::string to_json() const;

  /// Zero every metric (names stay registered). Tests and bench repeats.
  void reset();

  /// Monotonic generation stamp, bumped whenever previously handed-out
  /// metric references are invalidated (clear_for_testing). CachedCounter
  /// re-resolves when it observes a new generation.
  std::uint64_t generation() const;

  /// Drop every registered metric — references obtained earlier DANGLE
  /// afterwards. Strictly a test hook for exercising the re-resolution
  /// path; production code only ever reset()s.
  void clear_for_testing();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Shorthands for Registry::instance(). NOT gated on enabled() — call
/// sites own that branch so the disabled path never reaches the map.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name,
                     const HistogramLayout& layout = duration_buckets());

/// Hot-path counter handle: resolves its registry node on first use and
/// caches the pointer, revalidating against Registry::generation() so a
/// cleared/swapped registry (tests, embedders) can never leave it
/// counting into a stale — or dangling — node the way a function-local
/// `static obs::Counter&` latch would. Safe to share across threads
/// (function-local static in practice): the cache is a release-stored
/// pointer published by an acquire-read generation stamp, and a racing
/// re-resolution lands on the same registry node.
class CachedCounter {
 public:
  /// `name` must outlive the handle (a string literal in practice).
  explicit CachedCounter(const char* name) : name_(name) {}

  void add(std::uint64_t n = 1) {
    const std::uint64_t gen = Registry::instance().generation();
    Counter* c = nullptr;
    if (generation_.load(std::memory_order_acquire) == gen) {
      c = cached_.load(std::memory_order_relaxed);
    }
    if (c == nullptr) {
      c = &Registry::instance().counter(name_);
      cached_.store(c, std::memory_order_relaxed);
      generation_.store(gen, std::memory_order_release);
    }
    c->add(n);
  }

  const char* name() const { return name_; }

 private:
  const char* name_;
  std::atomic<Counter*> cached_{nullptr};
  // Starts at the never-issued sentinel so the first add() resolves.
  std::atomic<std::uint64_t> generation_{~std::uint64_t{0}};
};

/// Write the registry dump to `path`; false on I/O error. Writes even
/// when metrics are disabled (the dump is then empty-or-stale, which
/// the caller asked for).
bool save_metrics_json(const std::string& path);

/// RAII wall-clock timer. Inactive (no clock read, no allocation) when
/// metrics are disabled at construction. The elapsed time accumulates
/// in this object — thread-local by construction, it lives on the
/// owning thread's stack — and merges into the named histogram once, at
/// scope exit (or at an explicit stop()).
class ScopedTimer {
 public:
  /// `name` must outlive the timer (string literals in practice): the
  /// histogram is resolved at merge time, so an inactive timer never
  /// touches the registry.
  explicit ScopedTimer(const char* name);
  /// Pre-resolved form for call sites that already hold the histogram.
  explicit ScopedTimer(Histogram& sink);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Merge now and deactivate; returns the elapsed seconds (0.0 when
  /// inactive). Idempotent.
  double stop();

  bool active() const { return active_; }

 private:
  const char* name_ = nullptr;
  Histogram* sink_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
  bool active_ = false;
};

}  // namespace rlbf::obs
