// Span emission in Chrome trace_event JSON format (--trace_out).
//
// Spans are RAII complete events ("ph":"X"): construction stamps the
// start, destruction stamps the duration, and the finished event is
// appended to a per-thread buffer — no shared write on the hot path
// beyond one uncontended mutex. save_trace_json() merges every thread's
// buffer into one {"traceEvents":[...]} document that loads directly in
// chrome://tracing and Perfetto.
//
// Same contract as obs/metrics.h: with tracing disabled (the default)
// every hook is a branch-on-atomic-flag no-op — no clock read, no
// allocation, no buffer registration — and spans only ever write to
// their own buffers, never to result streams.
//
// Timestamps are microseconds on std::chrono::steady_clock, anchored at
// the first enabled use in the process, so a trace always starts near
// t=0. Thread ids are small integers assigned in first-span order.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace rlbf::obs {

/// Global tracing switch (default off), independent of the metrics
/// switch — a run may collect either, both, or neither.
bool tracing_enabled();
void set_tracing(bool on);

/// One finished span, as it will render into the JSON document.
struct TraceEvent {
  std::string name;
  std::string category;
  std::int64_t ts_us = 0;   // start, microseconds since the trace anchor
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;    // small integer, first-span order
};

/// RAII span. The const char* form is the hot-path hook: inactive
/// construction (tracing disabled) does no work at all. For dynamic
/// labels use labeled(), which only materializes the string when a span
/// will actually be recorded.
class Span {
 public:
  /// `name` and `category` must outlive the span (string literals).
  Span(const char* name, const char* category);
  ~Span();

  /// Dynamic-name form; `name` is copied only when tracing is enabled.
  static Span labeled(const std::string& name, const char* category);

  Span(Span&& other) noexcept;
  Span& operator=(Span&&) = delete;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Finish early; idempotent (the destructor becomes a no-op).
  void end();

  bool active() const { return active_; }

 private:
  Span() = default;

  const char* name_ = nullptr;       // static-name form
  std::string label_;                // dynamic-name form (name_ == nullptr)
  const char* category_ = "";
  std::int64_t start_us_ = 0;
  bool active_ = false;
};

/// Record a zero-duration marker span (retries, evictions, failures).
void trace_mark(const std::string& name, const char* category);

/// Microseconds since the trace anchor — for callers that correlate
/// their own logs with the trace (0 when tracing is disabled).
std::int64_t trace_now_us();

/// The wall-clock instant (microseconds since the Unix epoch, system
/// clock) latched TOGETHER with the steady-clock trace anchor — so
/// `anchor + ts_us` places any span on the wall clock. This is what
/// lets obs::merge align traces from different processes: steady-clock
/// timestamps are process-relative and meaningless across workers, the
/// epoch anchor is shared ground truth (up to host clock sync). 0 when
/// tracing was never enabled in this process.
std::int64_t trace_epoch_anchor_us();

/// Merge every thread's buffer (event order: thread registration, then
/// emission order within a thread) — for tests.
std::vector<TraceEvent> trace_events_snapshot();

/// Write the Chrome trace_event document. `write_trace_json` always
/// writes a valid document (possibly with an empty traceEvents array);
/// save_trace_json returns false on I/O error.
void write_trace_json(std::ostream& os);
bool save_trace_json(const std::string& path);

/// Drop every buffered event (tests, bench repeats).
void clear_trace();

}  // namespace rlbf::obs
