#include "obs/merge.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/json.h"

namespace rlbf::obs {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Locale-independent double parse for the "le" bound strings the
/// histogram dump emits ("1e999" overflow maps back to inf).
double parse_bound(const std::string& text, const std::string& origin) {
  double value = 0.0;
  const auto res =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (res.ec == std::errc::result_out_of_range) {
    return text[0] == '-' ? -std::numeric_limits<double>::infinity()
                          : std::numeric_limits<double>::infinity();
  }
  if (res.ec != std::errc() || res.ptr != text.data() + text.size()) {
    throw std::runtime_error(origin + ": malformed bucket bound '" + text +
                             "'");
  }
  return value;
}

std::uint64_t as_count(const json::Value& v, const std::string& origin,
                       const std::string& what) {
  if (!v.is_number() || v.number < 0) {
    throw std::runtime_error(origin + ": " + what +
                             " is not a non-negative number");
  }
  return static_cast<std::uint64_t>(v.number);
}

Histogram::Snapshot parse_histogram(const json::Value& v,
                                    const std::string& origin,
                                    const std::string& name) {
  if (!v.is_object()) {
    throw std::runtime_error(origin + ": histogram '" + name +
                             "' is not an object");
  }
  Histogram::Snapshot snap;
  snap.count = as_count(v.at("count"), origin, "histogram '" + name + "' count");
  snap.sum = v.number_at("sum");
  snap.min = v.number_at("min");
  snap.max = v.number_at("max");
  const json::Value& buckets = v.at("buckets");
  if (!buckets.is_array() || buckets.items.empty()) {
    throw std::runtime_error(origin + ": histogram '" + name +
                             "' has no buckets");
  }
  for (std::size_t i = 0; i < buckets.items.size(); ++i) {
    const json::Value& bucket = buckets.items[i];
    const std::string& le = bucket.string_at("le");
    const bool terminal = i + 1 == buckets.items.size();
    if (le == "inf") {
      if (!terminal) {
        throw std::runtime_error(origin + ": histogram '" + name +
                                 "' has a non-terminal inf bucket");
      }
    } else {
      if (terminal) {
        throw std::runtime_error(origin + ": histogram '" + name +
                                 "' is missing the terminal inf bucket");
      }
      snap.upper_bounds.push_back(parse_bound(le, origin));
    }
    snap.bucket_counts.push_back(
        as_count(bucket.at("count"), origin, "histogram '" + name + "' bucket"));
  }
  return snap;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("cannot open sidecar file: " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  if (!is.good() && !is.eof()) {
    throw std::runtime_error("cannot read sidecar file: " + path);
  }
  std::string text = buf.str();
  if (text.empty()) {
    throw std::runtime_error("sidecar file is empty: " + path);
  }
  return text;
}

}  // namespace

// ------------------------------------------------------------- metrics

MetricsDoc parse_metrics_json(const std::string& text,
                              const std::string& origin) {
  const json::Value root = json::parse(text, origin);
  if (!root.is_object()) {
    throw std::runtime_error(origin + ": metrics document is not an object");
  }
  MetricsDoc doc;
  if (const json::Value* counters = root.find("counters")) {
    for (const auto& [name, value] : counters->members) {
      doc.counters[name] = as_count(value, origin, "counter '" + name + "'");
    }
  }
  if (const json::Value* gauges = root.find("gauges")) {
    for (const auto& [name, value] : gauges->members) {
      if (!value.is_number()) {
        throw std::runtime_error(origin + ": gauge '" + name +
                                 "' is not a number");
      }
      doc.gauges[name] = value.number;
    }
  }
  if (const json::Value* histograms = root.find("histograms")) {
    for (const auto& [name, value] : histograms->members) {
      doc.histograms[name] = parse_histogram(value, origin, name);
    }
  }
  return doc;
}

MetricsDoc load_metrics_file(const std::string& path) {
  return parse_metrics_json(read_file(path), path);
}

MergedMetrics merge_metrics(const std::vector<LabeledMetrics>& docs) {
  if (docs.empty()) {
    throw std::invalid_argument("merge_metrics: no documents to merge");
  }
  MergedMetrics merged;
  std::set<std::string> seen;
  for (const LabeledMetrics& labeled : docs) {
    if (!seen.insert(labeled.label).second) {
      throw std::invalid_argument("merge_metrics: duplicate source label '" +
                                  labeled.label + "'");
    }
    merged.sources.push_back(labeled.label);
    for (const auto& [name, value] : labeled.doc.counters) {
      merged.counters[name] += value;
    }
    // Last write wins: docs are merged in input order, so whichever
    // source comes later owns the gauge — and the tag records it.
    for (const auto& [name, value] : labeled.doc.gauges) {
      merged.gauges[name] = MergedMetrics::TaggedGauge{value, labeled.label};
    }
    for (const auto& [name, snap] : labeled.doc.histograms) {
      const auto it = merged.histograms.find(name);
      if (it == merged.histograms.end()) {
        merged.histograms.emplace(name, snap);
        continue;
      }
      try {
        it->second = merge_histogram(it->second, snap);
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument("merge_metrics: histogram '" + name +
                                    "' from source '" + labeled.label +
                                    "': " + e.what());
      }
    }
  }
  return merged;
}

void write_merged_metrics_json(std::ostream& os, const MergedMetrics& merged) {
  os << "{\n  \"sources\": [";
  for (std::size_t i = 0; i < merged.sources.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "\"" << escape(merged.sources[i]) << "\"";
  }
  os << "],\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : merged.counters) {
    os << (first ? "\n" : ",\n") << "    \"" << escape(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : merged.gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << escape(name)
       << "\": {\"value\": " << format_number(gauge.value) << ", \"source\": \""
       << escape(gauge.source) << "\"}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, snap] : merged.histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << escape(name) << "\": ";
    write_histogram_json(os, snap);
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

bool save_merged_metrics_json(const std::string& path,
                              const MergedMetrics& merged) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_merged_metrics_json(os, merged);
  os.flush();
  return static_cast<bool>(os);
}

// --------------------------------------------------------------- trace

TraceDoc parse_trace_json(const std::string& text, const std::string& origin) {
  const json::Value root = json::parse(text, origin);
  if (!root.is_object()) {
    throw std::runtime_error(origin + ": trace document is not an object");
  }
  TraceDoc doc;
  if (const json::Value* anchor = root.find("epochAnchorUs")) {
    if (!anchor->is_number()) {
      throw std::runtime_error(origin + ": epochAnchorUs is not a number");
    }
    doc.epoch_anchor_us = static_cast<std::int64_t>(anchor->number);
  }
  const json::Value& events = root.at("traceEvents");
  if (!events.is_array()) {
    throw std::runtime_error(origin + ": traceEvents is not an array");
  }
  for (const json::Value& ev : events.items) {
    if (!ev.is_object()) {
      throw std::runtime_error(origin + ": trace event is not an object");
    }
    // Metadata events (ph "M") carry no timing and never splice as
    // spans — but a process_name row from an earlier splice is the
    // pid's worker attribution, which `profile --by_worker` needs, so
    // it is kept as a pid -> name entry instead of a timed event.
    if (const json::Value* ph = ev.find("ph")) {
      if (ph->is_string() && ph->text == "M") {
        const json::Value* name = ev.find("name");
        const json::Value* pid = ev.find("pid");
        if (name != nullptr && name->is_string() &&
            name->text == "process_name" && pid != nullptr &&
            pid->is_number() && pid->number >= 0) {
          if (const json::Value* args = ev.find("args")) {
            if (const json::Value* label = args->find("name")) {
              if (label->is_string()) {
                doc.process_names[static_cast<std::uint32_t>(pid->number)] =
                    label->text;
              }
            }
          }
        }
        continue;
      }
    }
    PidTraceEvent out;
    out.event.name = ev.string_at("name");
    if (const json::Value* cat = ev.find("cat")) {
      if (cat->is_string()) out.event.category = cat->text;
    }
    out.event.ts_us = static_cast<std::int64_t>(ev.number_at("ts"));
    if (const json::Value* dur = ev.find("dur")) {
      if (dur->is_number()) {
        out.event.dur_us = static_cast<std::int64_t>(dur->number);
      }
    }
    if (const json::Value* tid = ev.find("tid")) {
      if (tid->is_number() && tid->number >= 0) {
        out.event.tid = static_cast<std::uint32_t>(tid->number);
      }
    }
    if (const json::Value* pid = ev.find("pid")) {
      if (pid->is_number() && pid->number >= 0) {
        out.pid = static_cast<std::uint32_t>(pid->number);
      }
    }
    doc.events.push_back(std::move(out));
  }
  return doc;
}

TraceDoc load_trace_file(const std::string& path) {
  return parse_trace_json(read_file(path), path);
}

SplicedTrace splice_traces(const std::vector<LabeledTrace>& docs) {
  if (docs.empty()) {
    throw std::invalid_argument("splice_traces: no documents to splice");
  }
  {
    std::set<std::string> seen;
    for (const LabeledTrace& labeled : docs) {
      if (!seen.insert(labeled.label).second) {
        throw std::invalid_argument(
            "splice_traces: duplicate source label '" + labeled.label + "'");
      }
    }
  }
  // The earliest anchored document defines t=0 of the merged timeline;
  // every anchored source shifts by (its anchor - earliest). A source
  // without an anchor has no cross-process timebase to place it on —
  // its spans stay where they were.
  std::int64_t base_anchor = 0;
  bool have_anchor = false;
  for (const LabeledTrace& labeled : docs) {
    if (labeled.doc.epoch_anchor_us == 0) continue;
    if (!have_anchor || labeled.doc.epoch_anchor_us < base_anchor) {
      base_anchor = labeled.doc.epoch_anchor_us;
    }
    have_anchor = true;
  }
  SplicedTrace spliced;
  spliced.epoch_anchor_us = have_anchor ? base_anchor : 0;
  std::uint32_t next_pid = 1;
  for (const LabeledTrace& labeled : docs) {
    const std::int64_t shift = labeled.doc.epoch_anchor_us == 0
                                   ? 0
                                   : labeled.doc.epoch_anchor_us - base_anchor;
    // Every distinct source pid gets its own fresh output pid, so two
    // workers both reporting pid 1 never collapse into one process row.
    std::map<std::uint32_t, std::uint32_t> pid_map;
    for (const PidTraceEvent& ev : labeled.doc.events) {
      const auto it = pid_map.find(ev.pid);
      std::uint32_t out_pid;
      if (it != pid_map.end()) {
        out_pid = it->second;
      } else {
        out_pid = next_pid++;
        pid_map.emplace(ev.pid, out_pid);
      }
      PidTraceEvent out = ev;
      out.pid = out_pid;
      out.event.ts_us += shift;
      spliced.events.push_back(std::move(out));
    }
    if (pid_map.empty()) {
      // A source with no events still gets a process row: an empty
      // worker trace should be visible in the merged view, not vanish.
      pid_map.emplace(1, next_pid++);
    }
    for (const auto& [src_pid, out_pid] : pid_map) {
      SplicedTrace::Process proc;
      proc.pid = out_pid;
      proc.name = pid_map.size() == 1
                      ? labeled.label
                      : labeled.label + "/pid" + std::to_string(src_pid);
      spliced.processes.push_back(std::move(proc));
    }
  }
  std::sort(spliced.processes.begin(), spliced.processes.end(),
            [](const SplicedTrace::Process& a, const SplicedTrace::Process& b) {
              return a.pid < b.pid;
            });
  return spliced;
}

void write_spliced_trace_json(std::ostream& os, const SplicedTrace& spliced) {
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const SplicedTrace::Process& proc : spliced.processes) {
    os << (first ? "\n" : ",\n") << "  {\"name\": \"process_name\", "
       << "\"ph\": \"M\", \"pid\": " << proc.pid
       << ", \"args\": {\"name\": \"" << escape(proc.name) << "\"}}";
    first = false;
  }
  for (const PidTraceEvent& ev : spliced.events) {
    os << (first ? "\n" : ",\n") << "  {\"name\": \"" << escape(ev.event.name)
       << "\", \"cat\": \"" << escape(ev.event.category)
       << "\", \"ph\": \"X\", \"ts\": " << ev.event.ts_us
       << ", \"dur\": " << ev.event.dur_us << ", \"pid\": " << ev.pid
       << ", \"tid\": " << ev.event.tid << "}";
    first = false;
  }
  os << (first ? "" : "\n") << "], \"epochAnchorUs\": "
     << spliced.epoch_anchor_us << "}\n";
}

bool save_spliced_trace_json(const std::string& path,
                             const SplicedTrace& spliced) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_spliced_trace_json(os, spliced);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace rlbf::obs
